package repro_test

// integration_test.go exercises the whole public surface together — every
// feature enabled at once — the way a demanding consumer would.

import (
	"strings"
	"testing"

	"repro"
)

// TestFullPipelineAllFeatures runs correlations + parallel search + bounded
// fan-out + ranking + refinement end to end and checks the invariants hold
// at each step.
func TestFullPipelineAllFeatures(t *testing.T) {
	rel := repro.DemoDataset(8000, 11)
	sys, err := repro.NewSystem(rel, repro.Config{
		WorkloadSQL:  repro.DemoWorkloadSQL(5000, 12),
		Intervals:    repro.DemoIntervals(),
		Correlations: true,
		Options: repro.Options{
			M:             15,
			MaxCategories: 6,
			Parallel:      true,
			AutoBuckets:   true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	res, err := sys.Query(homesSQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("empty result")
	}

	tree, err := res.Categorize()
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("invalid tree: %v", err)
	}

	// Fan-out bound: no node exceeds 6 children on categorical levels.
	tree.Root.Walk(func(n *repro.Node, _ int) bool {
		if len(n.Children) > 0 && n.Children[0].Label.Kind == repro.LabelValue {
			if len(n.Children) > 6 {
				t.Errorf("node %q has %d children; MaxCategories=6", n.Label, len(n.Children))
			}
		}
		return true
	})

	// Ranking preserves membership and validity.
	repro.RankTree(sys.Ranker(), tree)
	if err := tree.Validate(); err != nil {
		t.Fatalf("ranked tree invalid: %v", err)
	}

	// Refinement: drill into the first two levels and re-execute.
	node := tree.Root
	path := []int{}
	for depth := 0; depth < 2 && !node.IsLeaf(); depth++ {
		path = append(path, 0)
		node = node.Children[0]
	}
	refined, err := tree.RefineQuery(res.Query, path)
	if err != nil {
		t.Fatal(err)
	}
	res2 := sys.QueryParsed(refined)
	if res2.Len() != node.Size() {
		t.Fatalf("refined result %d != node size %d (sql: %s)", res2.Len(), node.Size(), refined)
	}

	// The refined result categorizes again (different level attributes are
	// fine; validity is the contract).
	tree2, err := res2.Categorize()
	if err != nil {
		t.Fatal(err)
	}
	if err := tree2.Validate(); err != nil {
		t.Fatal(err)
	}

	// Simulated exploration over the refined tree finds everything.
	intent := &repro.Intent{Query: refined}
	out := repro.SimulateAll(tree2, intent)
	if out.RelevantFound != out.RelevantTotal || out.RelevantTotal != res2.Len() {
		t.Fatalf("refined exploration found %d of %d (result %d)",
			out.RelevantFound, out.RelevantTotal, res2.Len())
	}
}

// TestTechniqueOrderingUnderAllFeatures confirms the headline comparison
// survives with every feature on: estimated cost-based ≤ no-cost.
func TestTechniqueOrderingUnderAllFeatures(t *testing.T) {
	rel := repro.DemoDataset(6000, 21)
	sys, err := repro.NewSystem(rel, repro.Config{
		WorkloadSQL:  repro.DemoWorkloadSQL(4000, 22),
		Intervals:    repro.DemoIntervals(),
		Correlations: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query(homesSQL)
	if err != nil {
		t.Fatal(err)
	}
	opts := repro.Options{M: 20, Parallel: true}
	cb, err := res.CategorizeWith(repro.CostBased, opts)
	if err != nil {
		t.Fatal(err)
	}
	nc, err := res.CategorizeWith(repro.NoCost, opts)
	if err != nil {
		t.Fatal(err)
	}
	if repro.EstimateCostAll(cb) > repro.EstimateCostAll(nc)+1e-9 {
		t.Fatalf("cost-based (%.1f) worse than no-cost (%.1f) with all features on",
			repro.EstimateCostAll(cb), repro.EstimateCostAll(nc))
	}
}

// TestAdaptivePersonalizeCompose: an adaptive system layered on a
// personalized one keeps learning.
func TestAdaptivePersonalizeCompose(t *testing.T) {
	rel := repro.DemoDataset(2000, 31)
	base, err := repro.NewSystem(rel, repro.Config{
		WorkloadSQL: repro.DemoWorkloadSQL(1500, 32),
		Intervals:   repro.DemoIntervals(),
	})
	if err != nil {
		t.Fatal(err)
	}
	personal, err := base.Personalize([]string{
		"SELECT * FROM ListProperty WHERE yearbuilt <= 1950",
	}, 100)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := personal.Adaptive()
	if err != nil {
		t.Fatal(err)
	}
	before := adaptive.WorkloadSize()
	if _, _, err := adaptive.Explore(homesSQL, repro.CostBased, repro.Options{M: 25}, true); err != nil {
		t.Fatal(err)
	}
	if adaptive.WorkloadSize() != before+1 {
		t.Fatal("personalized adaptive system did not learn")
	}
}

// TestDeterminismAcrossRuns: identical seeds produce identical trees, SQL
// renderings and costs — the reproducibility contract behind every number in
// EXPERIMENTS.md.
func TestDeterminismAcrossRuns(t *testing.T) {
	build := func() (string, float64) {
		rel := repro.DemoDataset(3000, 41)
		sys, err := repro.NewSystem(rel, repro.Config{
			WorkloadSQL: repro.DemoWorkloadSQL(2000, 42),
			Intervals:   repro.DemoIntervals(),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Query(homesSQL)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := res.Categorize()
		if err != nil {
			t.Fatal(err)
		}
		return repro.RenderTree(tree, repro.RenderOptions{}), repro.EstimateCostAll(tree)
	}
	r1, c1 := build()
	r2, c2 := build()
	if r1 != r2 || c1 != c2 {
		i := 0
		for i < len(r1) && i < len(r2) && r1[i] == r2[i] {
			i++
		}
		lo := i - 40
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("non-deterministic output near %q vs %q (costs %v, %v)",
			r1[lo:min(i+40, len(r1))], r2[lo:min(i+40, len(r2))], c1, c2)
	}
	if !strings.HasPrefix(r1, "ALL (") {
		t.Fatal("render sanity check failed")
	}
}
