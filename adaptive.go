package repro

import (
	"fmt"
	"sync"

	"repro/internal/sqlparse"
)

// AdaptiveSystem wraps a System and learns from the queries it serves: every
// explored query is folded into the workload statistics incrementally, so
// the count tables — and therefore future category trees — track the live
// query stream instead of a frozen log. This is the online continuation of
// the paper's offline preprocessing phase. All methods are safe for
// concurrent use.
type AdaptiveSystem struct {
	mu  sync.RWMutex
	sys *System
	// learned counts queries folded in since construction.
	learned int
}

// Adaptive wraps the system for online learning. The system must have been
// built from a raw workload (WorkloadSQL or WorkloadReader): incremental
// updates need the preprocessing configuration and, when correlations are
// enabled, the retained per-query conditions.
func (s *System) Adaptive() (*AdaptiveSystem, error) {
	if s.wl == nil {
		return nil, fmt.Errorf("repro: Adaptive requires a system built from a raw workload")
	}
	return &AdaptiveSystem{sys: s}, nil
}

// Explore runs one query end to end under the read lock: execute, build the
// tree with the given technique and options, and return the tree plus the
// result size. Passing learn folds the query into the statistics afterwards.
func (a *AdaptiveSystem) Explore(sql string, tech Technique, opts Options, learn bool) (*Tree, int, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, 0, err
	}
	a.mu.RLock()
	res := a.sys.QueryParsed(q)
	tree, err := res.CategorizeWith(tech, opts)
	a.mu.RUnlock()
	if err != nil {
		return nil, 0, err
	}
	if learn {
		a.learn(q)
	}
	return tree, res.Len(), nil
}

// Learn folds one query into the workload statistics without executing it
// (e.g. queries observed elsewhere in the application).
func (a *AdaptiveSystem) Learn(sql string) error {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return err
	}
	a.learn(q)
	return nil
}

func (a *AdaptiveSystem) learn(q *Query) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sys.stats.AddQuery(q, a.sys.wcfg)
	a.sys.wl.Queries = append(a.sys.wl.Queries, q)
	if a.sys.corr != nil {
		a.sys.corr.Add(q, a.sys.wcfg)
	}
	a.learned++
}

// Learned reports how many queries have been folded in since construction.
func (a *AdaptiveSystem) Learned() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.learned
}

// WorkloadSize returns the current number of mined queries (original
// workload plus everything learned).
func (a *AdaptiveSystem) WorkloadSize() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.sys.stats.N()
}

// Snapshot runs f under the read lock with the underlying System, for
// read-only operations beyond Explore (rendering stats, building rankers).
// f must not retain the *System or mutate it.
func (a *AdaptiveSystem) Snapshot(f func(*System)) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	f(a.sys)
}
