package repro

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/sqlparse"
)

// AdaptiveSystem wraps a System and learns from the queries it serves: every
// explored query is folded into the workload statistics, so the count tables
// — and therefore future category trees — track the live query stream
// instead of a frozen log. This is the online continuation of the paper's
// offline preprocessing phase.
//
// Concurrency model: readers never block. The current System — relation,
// statistics, derived count tables, and a generation counter — is an
// immutable snapshot behind an atomic pointer. Learn clones the statistics
// off the hot path, folds the new queries into the clone, and publishes the
// result with one atomic store; in-flight explorations keep the snapshot
// they loaded. The generation counter stamps every snapshot, so the tree
// cache's keys from superseded generations simply stop matching (see
// DESIGN.md §8). All methods are safe for concurrent use.
type AdaptiveSystem struct {
	// learnMu serializes writers (clone → fold → publish); readers never
	// take it.
	learnMu sync.Mutex
	cur     atomic.Pointer[System]
	// learned counts queries folded in since construction.
	learned atomic.Int64
	// warm is the running predictive pre-warmer, nil when warming is off.
	// Always read through the atomic pointer (StartWarmer/StopWarmer swap
	// it); warmer code itself must go through System()/Snapshot for the
	// current snapshot, never through cur directly.
	warm atomic.Pointer[Warmer]
}

// Adaptive wraps the system for online learning. The system must have been
// built from a raw workload (WorkloadSQL or WorkloadReader): incremental
// updates need the preprocessing configuration and, when correlations are
// enabled, the retained per-query conditions.
func (s *System) Adaptive() (*AdaptiveSystem, error) {
	if s.wl == nil {
		return nil, fmt.Errorf("repro: Adaptive requires a system built from a raw workload")
	}
	a := &AdaptiveSystem{}
	a.cur.Store(s)
	return a, nil
}

// Explore runs one query end to end against the current snapshot: execute,
// build the tree with the given technique and options (through the tree
// cache when the system has one), and return the tree plus the result size.
// Passing learn folds the query into the statistics afterwards.
func (a *AdaptiveSystem) Explore(sql string, tech Technique, opts Options, learn bool) (*Tree, int, error) {
	tree, n, _, err := a.ExploreCtx(context.Background(), sql, tech, opts, learn)
	return tree, n, err
}

// ExploreCtx is Explore honoring a request context and reporting whether the
// tree came from the cache. Cancellation abandons the categorization (no
// partial trees) and skips learning.
func (a *AdaptiveSystem) ExploreCtx(ctx context.Context, sql string, tech Technique, opts Options, learn bool) (*Tree, int, bool, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, 0, false, err
	}
	out, err := a.ExploreParsedWith(ctx, q, tech, opts, ServePolicy{}, learn)
	if err != nil {
		return nil, 0, false, err
	}
	return out.Tree, out.Tree.Root.Size(), out.Hit, nil
}

// ExploreParsedWith is the policy-honoring exploration over an already-parsed
// query: serve through the current snapshot under the resilience policy
// (server deadline, degradation ladder — see System.ServeParsedWith), then
// optionally fold the query into the statistics. Degraded serves still learn:
// the user asked the query either way, and learning cost is independent of
// how the tree was built.
func (a *AdaptiveSystem) ExploreParsedWith(ctx context.Context, q *Query, tech Technique, opts Options, pol ServePolicy, learn bool) (ServeOutcome, error) {
	sys := a.cur.Load()
	out, err := sys.ServeParsedWith(ctx, q, tech, opts, pol)
	if err != nil {
		return out, err
	}
	if learn {
		a.learn(q)
	}
	return out, nil
}

// LearnQuery folds one already-parsed query into the workload statistics —
// the learning half of ExploreParsedWith, for callers that served the tree
// another way (e.g. the HTTP layer's cache-hit fast path).
func (a *AdaptiveSystem) LearnQuery(q *Query) {
	if q != nil {
		a.learn(q)
	}
}

// Learn folds one query into the workload statistics without executing it
// (e.g. queries observed elsewhere in the application).
func (a *AdaptiveSystem) Learn(sql string) error {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return err
	}
	a.learn(q)
	return nil
}

// LearnBatch folds several queries in one snapshot swap, amortizing the
// clone. It fails on the first malformed query without learning any.
func (a *AdaptiveSystem) LearnBatch(sqls []string) error {
	qs := make([]*sqlparse.Query, len(sqls))
	for i, sql := range sqls {
		q, err := sqlparse.Parse(sql)
		if err != nil {
			return fmt.Errorf("repro: batch query %d: %w", i, err)
		}
		qs[i] = q
	}
	if len(qs) > 0 {
		a.learn(qs...)
	}
	return nil
}

// learn clones the current snapshot's mutable state, folds the queries in,
// and publishes the successor snapshot. Readers racing with the swap keep
// whichever snapshot they loaded — both are internally consistent.
func (a *AdaptiveSystem) learn(qs ...*sqlparse.Query) {
	a.learnMu.Lock()
	defer a.learnMu.Unlock()
	old := a.cur.Load()
	next := &System{
		rel:     old.rel,
		stats:   old.stats.Clone(),
		opts:    old.opts,
		wl:      old.wl.Clone(),
		wcfg:    old.wcfg,
		cache:   old.cache,
		gen:     old.gen + 1,
		resil:   old.resil,
		shardc:  old.shardc,
		repairc: old.repairc,
		dur:     old.dur,
	}
	if old.corr != nil {
		next.corr = old.corr.Clone()
	}
	for _, q := range qs {
		next.stats.AddQuery(q, next.wcfg)
		next.wl.Queries = append(next.wl.Queries, q)
		if next.corr != nil {
			next.corr.Add(q, next.wcfg)
		}
	}
	a.cur.Store(next)
	a.learned.Add(int64(len(qs)))
	if w := a.warm.Load(); w != nil {
		// After the publish, so the warmer's cycle sees the new snapshot.
		w.observe(qs)
	}
}

// Learned reports how many queries have been folded in since construction.
func (a *AdaptiveSystem) Learned() int {
	return int(a.learned.Load())
}

// WorkloadSize returns the current number of mined queries (original
// workload plus everything learned).
func (a *AdaptiveSystem) WorkloadSize() int {
	return a.cur.Load().stats.N()
}

// Generation returns the current snapshot's generation counter: 0 at
// construction, +1 per published Learn/LearnBatch/learning-Explore.
func (a *AdaptiveSystem) Generation() uint64 {
	return a.cur.Load().gen
}

// Snapshot runs f with the current immutable System snapshot, for read-only
// operations beyond Explore (rendering stats, building rankers). The
// snapshot stays valid — but possibly stale — after f returns; f must not
// mutate it.
func (a *AdaptiveSystem) Snapshot(f func(*System)) {
	f(a.cur.Load())
}

// System returns the current immutable snapshot directly.
func (a *AdaptiveSystem) System() *System {
	return a.cur.Load()
}
