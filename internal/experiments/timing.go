package experiments

import (
	"fmt"
	"time"

	"repro/internal/category"
	"repro/internal/datagen"
	"repro/internal/sqlparse"
	"repro/internal/stats"
)

// TimingPoint is one Figure 13 bar: the average wall-clock of the cost-based
// categorization algorithm for one value of M.
type TimingPoint struct {
	M          int
	AvgSeconds float64
	AvgNodes   float64
}

// TimingResult is the Figure 13 series.
type TimingResult struct {
	Points        []TimingPoint
	QueriesTimed  int
	AvgResultSize float64
}

// ExecutionTime measures the categorization algorithm over nQueries
// broadened workload queries (the paper averages over 100 queries with
// result sets around 2000 tuples) for each M in ms. Selection time is
// excluded: the paper times categorization, not query execution.
func ExecutionTime(env *Env, ms []int, nQueries int) (*TimingResult, error) {
	var (
		rowsList [][]int
		qwList   []*sqlparse.Query
		sizes    []float64
	)
	for _, w := range env.W.Queries {
		qw, ok := datagen.Broaden(w)
		if !ok {
			continue
		}
		rows := env.R.Select(qw.Predicate())
		if len(rows) == 0 {
			continue
		}
		rowsList = append(rowsList, rows)
		qwList = append(qwList, qw)
		sizes = append(sizes, float64(len(rows)))
		if len(rowsList) == nQueries {
			break
		}
	}
	if len(rowsList) == 0 {
		return nil, fmt.Errorf("experiments: no broadenable queries for timing")
	}

	res := &TimingResult{QueriesTimed: len(rowsList), AvgResultSize: stats.Mean(sizes)}
	for _, m := range ms {
		cat := category.NewCategorizer(env.FullStats, category.Options{M: m, K: env.Cfg.K, X: env.Cfg.X})
		var (
			total time.Duration
			nodes float64
		)
		for i := range rowsList {
			start := time.Now()
			tree, err := cat.CategorizeRows(env.R, qwList[i], rowsList[i])
			total += time.Since(start)
			if err != nil {
				return nil, err
			}
			nodes += float64(tree.NodeCount())
		}
		res.Points = append(res.Points, TimingPoint{
			M:          m,
			AvgSeconds: total.Seconds() / float64(len(rowsList)),
			AvgNodes:   nodes / float64(len(rowsList)),
		})
	}
	return res, nil
}
