package experiments

import (
	"fmt"

	"repro/internal/category"
	"repro/internal/datagen"
	"repro/internal/explore"
	"repro/internal/stats"
	"repro/internal/workload"
)

// CorrelationAblation compares the paper's independence assumption with the
// §5.2 correlation refinement on one cross-validation split: the same
// held-out explorations are replayed over trees whose probabilities (and
// therefore structure) come from either model.
type CorrelationAblation struct {
	N int
	// IndepR / CondR correlate estimated with actual cost under each model.
	IndepR, CondR float64
	// IndepFrac / CondFrac are the average fractions of the result set
	// examined.
	IndepFrac, CondFrac float64
	// IndepEst / CondEst are the average estimated costs (the conditional
	// model usually predicts cheaper exploration when correlations exist).
	IndepEst, CondEst float64
	// IndepOne / CondOne are the average ONE-scenario actual costs; the
	// conditional model's category ordering (by path-conditional P) reaches
	// the first relevant tuple sooner when attributes correlate.
	IndepOne, CondOne float64
}

// AblationCorrelation holds out the first n broadenable workload queries,
// builds both independent and conditional trees on the remaining workload,
// and measures estimate quality and exploration cost for both.
func AblationCorrelation(env *Env, n int) (*CorrelationAblation, error) {
	cfg := env.Cfg
	held := map[int]bool{}
	count := 0
	for i, q := range env.W.Queries {
		if _, ok := datagen.Broaden(q); ok {
			held[i] = true
			count++
			if count == n {
				break
			}
		}
	}
	if count == 0 {
		return nil, fmt.Errorf("experiments: no broadenable queries for correlation ablation")
	}
	remaining, _ := env.W.Split(func(i int) bool { return !held[i] })
	wcfg := workload.Config{Table: datagen.TableName, Intervals: datagen.Intervals()}
	st := workload.Preprocess(remaining, wcfg)
	idx := workload.NewCondIndex(remaining, wcfg)

	opts := category.Options{M: cfg.M, K: cfg.K, X: cfg.X}
	indepCat := category.NewCategorizer(st, opts)
	condCat := category.NewCategorizer(st, opts)
	condCat.Corr = idx

	type pair struct{ est, act, frac, one float64 }
	var indep, cond []pair
	explorer := &explore.Explorer{K: cfg.K}
	treeCache := map[string][2]*category.Tree{}
	rowsCache := map[string][]int{}
	for qi := range env.W.Queries {
		if !held[qi] {
			continue
		}
		w := env.W.Queries[qi]
		qw, _ := datagen.Broaden(w)
		region, _ := datagen.RegionOf(qw.Cond(datagen.AttrNeighborhood).Values[0])
		rows, ok := rowsCache[region.Name]
		if !ok {
			rows = env.R.Select(qw.Predicate())
			rowsCache[region.Name] = rows
		}
		if len(rows) == 0 {
			continue
		}
		trees, ok := treeCache[region.Name]
		if !ok {
			ti, err := indepCat.CategorizeRows(env.R, qw, rows)
			if err != nil {
				return nil, err
			}
			tc, err := condCat.CategorizeRows(env.R, qw, rows)
			if err != nil {
				return nil, err
			}
			trees = [2]*category.Tree{ti, tc}
			treeCache[region.Name] = trees
		}
		in := &explore.Intent{Query: w}
		for k, tree := range trees {
			act := explorer.All(tree, in).Cost(cfg.K)
			one := explorer.One(tree, in).Cost(cfg.K)
			p := pair{est: category.TreeCostAll(tree), act: act, frac: act / float64(len(rows)), one: one}
			if k == 0 {
				indep = append(indep, p)
			} else {
				cond = append(cond, p)
			}
		}
	}
	out := &CorrelationAblation{N: len(indep)}
	fill := func(pairs []pair, r, frac, est, one *float64) {
		var es, as, fs, os []float64
		for _, p := range pairs {
			es = append(es, p.est)
			as = append(as, p.act)
			fs = append(fs, p.frac)
			os = append(os, p.one)
		}
		if v, ok := stats.Correlate(es, as); ok {
			*r = v
		}
		*frac = stats.Mean(fs)
		*est = stats.Mean(es)
		*one = stats.Mean(os)
	}
	fill(indep, &out.IndepR, &out.IndepFrac, &out.IndepEst, &out.IndepOne)
	fill(cond, &out.CondR, &out.CondFrac, &out.CondEst, &out.CondOne)
	return out, nil
}
