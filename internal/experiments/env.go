// Package experiments reproduces the paper's evaluation (§6): the
// large-scale simulated user study over held-out workload queries
// (Figure 7, Table 1, Figure 8), the real-life user study with simulated
// subjects (Tables 2-4, Figures 9-12), the execution-time measurement
// (Figure 13), and ablations of the design choices DESIGN.md calls out.
// Both bench_test.go and cmd/benchrunner drive this package, so the printed
// rows and the benchmarked numbers come from the same code.
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/datagen"
	"repro/internal/relation"
	"repro/internal/workload"
)

// Config scales an experiment environment. Zero fields take defaults sized
// so the average broadened result set is ≈2000 tuples, matching the paper's
// reported query sizes.
type Config struct {
	// Rows is the synthetic ListProperty size. Default 20000.
	Rows int
	// Queries is the synthetic workload size. Default 10000.
	Queries int
	// Seed drives the dataset; Seed+1 drives the workload; study subjects
	// derive their own streams from it. Default 1.
	Seed int64
	// M is the max-tuples-per-category threshold. Default 20 (the paper's
	// study setting).
	M int
	// K is the label-examination cost. Default 1.
	K float64
	// X is the attribute-elimination threshold. Default 0.4.
	X float64
	// Subsets and PerSubset shape the §6.2 cross-validation: Subsets
	// disjoint groups of PerSubset held-out queries. Defaults 8 and 100.
	Subsets   int
	PerSubset int
	// Subjects is the §6.3 panel size. Default 11.
	Subjects int
}

func (c Config) withDefaults() Config {
	if c.Rows == 0 {
		c.Rows = 20000
	}
	if c.Queries == 0 {
		c.Queries = 10000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.M == 0 {
		c.M = 20
	}
	if c.K == 0 {
		c.K = 1
	}
	if c.X == 0 {
		c.X = 0.4
	}
	if c.Subsets == 0 {
		c.Subsets = 8
	}
	if c.PerSubset == 0 {
		c.PerSubset = 100
	}
	if c.Subjects == 0 {
		c.Subjects = 11
	}
	return c
}

// Env is a fully generated experiment environment: dataset, workload, and
// count tables over the complete workload.
type Env struct {
	Cfg       Config
	R         *relation.Relation
	W         *workload.Workload
	FullStats *workload.Stats
}

// NewEnv generates the environment for cfg.
func NewEnv(cfg Config) (*Env, error) {
	cfg = cfg.withDefaults()
	r := datagen.Dataset(datagen.DatasetConfig{Rows: cfg.Rows, Seed: cfg.Seed})
	// Index the attributes the experiments select on (neighborhood filters
	// dominate the broadened queries).
	if err := r.BuildIndex(datagen.AttrNeighborhood, datagen.AttrPrice, datagen.AttrBedrooms); err != nil {
		return nil, err
	}
	sql := datagen.WorkloadSQL(datagen.WorkloadConfig{Queries: cfg.Queries, Seed: cfg.Seed + 1})
	w, err := workload.ParseStrings(sql)
	if err != nil {
		return nil, fmt.Errorf("experiments: workload generation produced unparseable SQL: %w", err)
	}
	stats := workload.Preprocess(w, workload.Config{
		Table:     datagen.TableName,
		Intervals: datagen.Intervals(),
	})
	return &Env{Cfg: cfg, R: r, W: w, FullStats: stats}, nil
}

var (
	defaultEnvOnce sync.Once
	defaultEnv     *Env
	defaultEnvErr  error
)

// DefaultEnv returns a shared environment at bench scale (smaller subsets so
// `go test -bench=.` stays fast); it is built once per process.
func DefaultEnv() (*Env, error) {
	defaultEnvOnce.Do(func() {
		defaultEnv, defaultEnvErr = NewEnv(Config{PerSubset: 25})
	})
	return defaultEnv, defaultEnvErr
}
