package experiments

import (
	"fmt"
	"time"

	"repro/internal/category"
	"repro/internal/datagen"
	"repro/internal/relation"
	"repro/internal/stats"
)

// Ablations probe the design choices the paper motivates but does not
// isolate: category ordering (Appendix A vs the P-ordering heuristic),
// goodness-driven splitpoints vs equi-width buckets, the attribute
// elimination threshold x, and the label cost K.

// sampleTrees builds cost-based trees for the first n broadened workload
// queries, returning trees plus their user queries.
func sampleTrees(env *Env, n int, opts category.Options) ([]*category.Tree, error) {
	cat := category.NewCategorizer(env.FullStats, opts)
	est := &category.Estimator{Stats: env.FullStats}
	var trees []*category.Tree
	seen := map[string]bool{}
	for _, w := range env.W.Queries {
		qw, ok := datagen.Broaden(w)
		if !ok {
			continue
		}
		region := qw.Cond(datagen.AttrNeighborhood).Values[0]
		if seen[region] {
			continue // one tree per region keeps the sample diverse
		}
		rows := env.R.Select(qw.Predicate())
		if len(rows) == 0 {
			continue
		}
		tree, err := cat.CategorizeRows(env.R, qw, rows)
		if err != nil {
			return nil, err
		}
		est.Annotate(tree)
		trees = append(trees, tree)
		seen[region] = true
		if len(trees) == n {
			break
		}
	}
	if len(trees) == 0 {
		return nil, fmt.Errorf("experiments: no trees for ablation sample")
	}
	return trees, nil
}

// OrderingAblation compares the expected ONE-scenario cost of three child
// orderings on the same trees: the construction order (P-descending for
// categorical levels, value-ascending for numeric — the paper's heuristic),
// the Appendix-A optimal order, and the reverse of the optimal (a worst-ish
// case).
type OrderingAblation struct {
	Heuristic float64 // avg CostOne, construction order
	Optimal   float64 // avg CostOne, K/P+Cost ascending
	Reversed  float64 // avg CostOne, optimal order reversed
	Trees     int
}

// AblationOrdering measures the OrderingAblation over sample trees.
func AblationOrdering(env *Env, n int) (*OrderingAblation, error) {
	opts := category.Options{M: env.Cfg.M, K: env.Cfg.K, X: env.Cfg.X}
	trees, err := sampleTrees(env, n, opts)
	if err != nil {
		return nil, err
	}
	out := &OrderingAblation{Trees: len(trees)}
	frac := 0.5
	for _, tree := range trees {
		out.Heuristic += category.TreeCostOne(tree, frac)
		category.OrderTreeOptimalOne(tree, frac)
		out.Optimal += category.TreeCostOne(tree, frac)
		reverseTree(tree)
		out.Reversed += category.TreeCostOne(tree, frac)
	}
	f := float64(len(trees))
	out.Heuristic /= f
	out.Optimal /= f
	out.Reversed /= f
	return out, nil
}

func reverseTree(t *category.Tree) {
	t.Root.Walk(func(n *category.Node, _ int) bool {
		for i, j := 0, len(n.Children)-1; i < j; i, j = i+1, j-1 {
			n.Children[i], n.Children[j] = n.Children[j], n.Children[i]
		}
		return true
	})
}

// SplitAblation compares goodness-driven numeric partitioning against
// equi-width and equi-depth buckets while holding the attribute sequence
// fixed: the naive trees are built by the No-cost partitioner constrained to
// the cost-based tree's own level attributes.
type SplitAblation struct {
	GoodnessCost float64 // avg estimated CostAll, cost-based partitions
	EquiWidth    float64 // avg estimated CostAll, equi-width partitions
	EquiDepth    float64 // avg estimated CostAll, equi-depth partitions
	Trees        int
}

// AblationSplitpoints measures the SplitAblation over sample trees.
func AblationSplitpoints(env *Env, n int) (*SplitAblation, error) {
	opts := category.Options{M: env.Cfg.M, K: env.Cfg.K, X: env.Cfg.X}
	est := &category.Estimator{Stats: env.FullStats}
	out := &SplitAblation{}
	seen := map[string]bool{}
	cat := category.NewCategorizer(env.FullStats, opts)
	for _, w := range env.W.Queries {
		qw, ok := datagen.Broaden(w)
		if !ok {
			continue
		}
		region := qw.Cond(datagen.AttrNeighborhood).Values[0]
		if seen[region] {
			continue
		}
		rows := env.R.Select(qw.Predicate())
		if len(rows) == 0 {
			continue
		}
		good, err := cat.CategorizeRows(env.R, qw, rows)
		if err != nil {
			return nil, err
		}
		est.Annotate(good)
		if len(good.LevelAttrs) == 0 {
			continue
		}
		naiveOpts := opts
		naiveOpts.CandidateAttrs = good.LevelAttrs
		width, err := (&category.Baseline{Stats: env.FullStats, Opts: naiveOpts, Kind: category.NoCost}).
			CategorizeRows(env.R, qw, rows)
		if err != nil {
			return nil, err
		}
		est.Annotate(width)
		depthOpts := naiveOpts
		depthOpts.EquiDepth = true
		depth, err := (&category.Baseline{Stats: env.FullStats, Opts: depthOpts, Kind: category.NoCost}).
			CategorizeRows(env.R, qw, rows)
		if err != nil {
			return nil, err
		}
		est.Annotate(depth)
		out.GoodnessCost += category.TreeCostAll(good)
		out.EquiWidth += category.TreeCostAll(width)
		out.EquiDepth += category.TreeCostAll(depth)
		out.Trees++
		seen[region] = true
		if out.Trees == n {
			break
		}
	}
	if out.Trees == 0 {
		return nil, fmt.Errorf("experiments: no trees for splitpoint ablation")
	}
	f := float64(out.Trees)
	out.GoodnessCost /= f
	out.EquiWidth /= f
	out.EquiDepth /= f
	return out, nil
}

// XPoint is one attribute-elimination sweep point.
type XPoint struct {
	X          float64
	Candidates int     // attributes surviving elimination
	AvgCost    float64 // avg estimated CostAll of the resulting trees
	AvgBuild   float64 // avg categorization seconds
}

// AblationX sweeps the elimination threshold: small x admits many cold
// attributes (slower search, rarely better trees); large x starves the
// categorizer of attributes.
func AblationX(env *Env, xs []float64, n int) ([]XPoint, error) {
	var out []XPoint
	for _, x := range xs {
		opts := category.Options{M: env.Cfg.M, K: env.Cfg.K, X: x}
		if x == 0 {
			opts.X = 1e-9 // zero means "default" to Options; ~0 admits all seen attrs
		}
		cat := category.NewCategorizer(env.FullStats, opts)
		var (
			cost  float64
			build time.Duration
			count int
		)
		seen := map[string]bool{}
		est := &category.Estimator{Stats: env.FullStats}
		for _, w := range env.W.Queries {
			qw, ok := datagen.Broaden(w)
			if !ok {
				continue
			}
			region := qw.Cond(datagen.AttrNeighborhood).Values[0]
			if seen[region] {
				continue
			}
			rows := env.R.Select(qw.Predicate())
			if len(rows) == 0 {
				continue
			}
			start := time.Now()
			tree, err := cat.CategorizeRows(env.R, qw, rows)
			build += time.Since(start)
			if err != nil {
				return nil, err
			}
			est.Annotate(tree)
			cost += category.TreeCostAll(tree)
			count++
			seen[region] = true
			if count == n {
				break
			}
		}
		if count == 0 {
			return nil, fmt.Errorf("experiments: no trees for x=%v", x)
		}
		out = append(out, XPoint{
			X:          x,
			Candidates: len(env.FullStats.Retained(opts.X)),
			AvgCost:    cost / float64(count),
			AvgBuild:   build.Seconds() / float64(count),
		})
	}
	return out, nil
}

// KPoint is one label-cost sweep point: how the chosen level-1 attribute and
// the estimated cost respond to K.
type KPoint struct {
	K          float64
	Level1Attr string
	AvgCost    float64
	AvgDepth   float64
}

// AblationK sweeps the label-examination cost K. Larger K penalizes wide
// SHOWCAT levels, pushing the optimizer toward coarser trees.
func AblationK(env *Env, ks []float64, n int) ([]KPoint, error) {
	var out []KPoint
	for _, k := range ks {
		opts := category.Options{M: env.Cfg.M, K: k, X: env.Cfg.X}
		trees, err := sampleTrees(env, n, opts)
		if err != nil {
			return nil, err
		}
		var (
			cost, depth float64
			attr        string
		)
		for _, tree := range trees {
			cost += category.TreeCostAll(tree)
			depth += float64(tree.Depth())
			if attr == "" && len(tree.LevelAttrs) > 0 {
				attr = tree.LevelAttrs[0]
			}
		}
		out = append(out, KPoint{
			K:          k,
			Level1Attr: attr,
			AvgCost:    cost / float64(len(trees)),
			AvgDepth:   depth / float64(len(trees)),
		})
	}
	return out, nil
}

// OrderingGapSummary reports how often and by how much the heuristic
// ordering trails the optimal one, as a fraction.
func (o *OrderingAblation) OrderingGapSummary() string {
	if o.Optimal == 0 {
		return "n/a"
	}
	gap := (o.Heuristic - o.Optimal) / o.Optimal
	return fmt.Sprintf("heuristic +%.2f%% vs optimal; reversed +%.2f%%",
		100*gap, 100*(o.Reversed-o.Optimal)/o.Optimal)
}

// GreedyOptimality measures how close the Figure 6 greedy gets to the §5
// enumerative optimum on down-sampled instances (the exhaustive search is
// only feasible on small inputs).
type GreedyOptimality struct {
	Instances  int
	AvgRatio   float64 // mean greedy/optimal CostAll
	WorstRatio float64
	TreesTried int // total trees the enumerations evaluated
}

// AblationGreedyOptimal subsamples n region queries down to sampleRows
// tuples each and compares the greedy tree's cost with the bounded
// exhaustive optimum.
func AblationGreedyOptimal(env *Env, n, sampleRows int) (*GreedyOptimality, error) {
	opts := category.Options{
		M: env.Cfg.M, K: env.Cfg.K, X: env.Cfg.X,
		MaxBuckets: 3, MinBucket: 1,
		CandidateAttrs: []string{datagen.AttrNeighborhood, datagen.AttrPrice, datagen.AttrBedrooms},
	}
	cat := category.NewCategorizer(env.FullStats, opts)
	out := &GreedyOptimality{}
	seen := map[string]bool{}
	var ratios []float64
	for _, w := range env.W.Queries {
		qw, ok := datagen.Broaden(w)
		if !ok {
			continue
		}
		region := qw.Cond(datagen.AttrNeighborhood).Values[0]
		if seen[region] {
			continue
		}
		rows := env.R.Select(qw.Predicate())
		if len(rows) == 0 {
			continue
		}
		if len(rows) > sampleRows {
			rows = rows[:sampleRows]
		}
		// Build a standalone sub-relation so the enumeration's Select(nil)
		// sees exactly the sample.
		sub := subRelation(env, rows)
		tree, err := cat.CategorizeRows(sub, qw, sub.Select(nil))
		if err != nil {
			return nil, err
		}
		best, trees, err := cat.OptimalCostAll(sub, qw, category.EnumerateLimits{MaxSplitpoints: 4, MaxTrees: 100000})
		if err != nil {
			return nil, err
		}
		greedy := category.TreeCostAll(tree)
		ratio := greedy / best
		ratios = append(ratios, ratio)
		if ratio > out.WorstRatio {
			out.WorstRatio = ratio
		}
		out.TreesTried += trees
		out.Instances++
		seen[region] = true
		if out.Instances == n {
			break
		}
	}
	if out.Instances == 0 {
		return nil, fmt.Errorf("experiments: no instances for greedy-vs-optimal ablation")
	}
	out.AvgRatio = stats.Mean(ratios)
	return out, nil
}

// subRelation copies the given rows of the environment's relation into a
// fresh relation (same schema), so row indices run 0..n-1.
func subRelation(env *Env, rows []int) *relation.Relation {
	sub := relation.New(env.R.Name, env.R.Schema())
	sub.Grow(len(rows))
	for _, i := range rows {
		sub.MustAppend(env.R.Row(i))
	}
	return sub
}
