package experiments

import (
	"fmt"

	"repro/internal/category"
	"repro/internal/datagen"
	"repro/internal/explore"
	"repro/internal/sqlparse"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Techniques lists the three §6 techniques in the paper's comparison order.
func Techniques() []category.Technique {
	return []category.Technique{category.CostBased, category.AttrCost, category.NoCost}
}

// Exploration is one synthetic exploration of §6.2: a held-out workload
// query W replayed over the tree generated for its broadened user query Qw.
type Exploration struct {
	Subset    int
	W         *sqlparse.Query
	Region    string
	ResultLen int
	// Estimated and Actual cost per technique (ALL scenario).
	Estimated map[category.Technique]float64
	Actual    map[category.Technique]float64
}

// SubsetResult aggregates one cross-validation subset.
type SubsetResult struct {
	Index int
	N     int
	// PearsonR correlates estimated vs actual cost for the cost-based
	// technique (Table 1).
	PearsonR float64
	// FracCost is AVG CostAll(W,T)/|Result(Qw)| per technique (Figure 8).
	FracCost map[category.Technique]float64
}

// SyntheticResult is the full §6.2 study output.
type SyntheticResult struct {
	Subsets []SubsetResult
	// Explorations holds every (W, costs) pair, subset by subset.
	Explorations []Exploration
	// Slope is the zero-intercept trend of actual on estimated cost for the
	// cost-based technique (Figure 7's y = 1.1002x).
	Slope float64
	// OverallR is Pearson's r across all explorations (Table 1's "All").
	OverallR float64
}

// EstActPairs returns the cost-based (estimated, actual) vectors.
func (s *SyntheticResult) EstActPairs() (est, act []float64) {
	for _, e := range s.Explorations {
		est = append(est, e.Estimated[category.CostBased])
		act = append(act, e.Actual[category.CostBased])
	}
	return est, act
}

// SyntheticStudy runs the large-scale simulated user study: it holds out
// Subsets disjoint groups of PerSubset workload queries, rebuilds the count
// tables on the remaining workload for each group, generates the category
// tree for every broadened query under each technique, and replays the
// original query as a deterministic exploration to measure actual cost.
func SyntheticStudy(env *Env) (*SyntheticResult, error) {
	cfg := env.Cfg
	need := cfg.Subsets * cfg.PerSubset
	candidates := make([]int, 0, need)
	for i, q := range env.W.Queries {
		if _, ok := datagen.Broaden(q); ok {
			candidates = append(candidates, i)
			if len(candidates) == need {
				break
			}
		}
	}
	if len(candidates) < need {
		return nil, fmt.Errorf("experiments: only %d broadenable workload queries, need %d", len(candidates), need)
	}

	out := &SyntheticResult{}
	explorer := &explore.Explorer{K: cfg.K}
	for si := 0; si < cfg.Subsets; si++ {
		held := map[int]bool{}
		for _, qi := range candidates[si*cfg.PerSubset : (si+1)*cfg.PerSubset] {
			held[qi] = true
		}
		remaining, _ := env.W.Split(func(i int) bool { return !held[i] })
		st := workload.Preprocess(remaining, workload.Config{
			Table:     datagen.TableName,
			Intervals: datagen.Intervals(),
		})
		// All W broadening to the same region share Qw, hence the tree;
		// cache per region × technique.
		type key struct {
			region string
			tech   category.Technique
		}
		treeCache := map[key]*category.Tree{}
		rowsCache := map[string][]int{}

		sub := SubsetResult{Index: si, FracCost: map[category.Technique]float64{}}
		var est, act []float64
		fracSum := map[category.Technique]float64{}
		for qi := range env.W.Queries {
			if !held[qi] {
				continue
			}
			w := env.W.Queries[qi]
			qw, _ := datagen.Broaden(w)
			region, _ := datagen.RegionOf(qw.Cond(datagen.AttrNeighborhood).Values[0])
			rows, ok := rowsCache[region.Name]
			if !ok {
				rows = env.R.Select(qw.Predicate())
				rowsCache[region.Name] = rows
			}
			if len(rows) == 0 {
				continue
			}
			exp := Exploration{
				Subset: si, W: w, Region: region.Name, ResultLen: len(rows),
				Estimated: map[category.Technique]float64{},
				Actual:    map[category.Technique]float64{},
			}
			for _, tech := range Techniques() {
				tree, ok := treeCache[key{region.Name, tech}]
				if !ok {
					var err error
					tree, err = buildTree(st, env, tech, qw, rows)
					if err != nil {
						return nil, err
					}
					treeCache[key{region.Name, tech}] = tree
				}
				exp.Estimated[tech] = category.TreeCostAll(tree)
				outAll := explorer.All(tree, &explore.Intent{Query: w})
				exp.Actual[tech] = outAll.Cost(cfg.K)
				fracSum[tech] += exp.Actual[tech] / float64(len(rows))
			}
			est = append(est, exp.Estimated[category.CostBased])
			act = append(act, exp.Actual[category.CostBased])
			out.Explorations = append(out.Explorations, exp)
			sub.N++
		}
		if r, ok := stats.Correlate(est, act); ok {
			sub.PearsonR = r
		}
		for _, tech := range Techniques() {
			if sub.N > 0 {
				sub.FracCost[tech] = fracSum[tech] / float64(sub.N)
			}
		}
		out.Subsets = append(out.Subsets, sub)
	}
	allEst, allAct := out.EstActPairs()
	if r, ok := stats.Correlate(allEst, allAct); ok {
		out.OverallR = r
	}
	if slope, err := stats.FitThroughOrigin(allEst, allAct); err == nil {
		out.Slope = slope
	}
	return out, nil
}

// buildTree constructs and annotates the tree for one technique.
func buildTree(st *workload.Stats, env *Env, tech category.Technique, q *sqlparse.Query, rows []int) (*category.Tree, error) {
	opts := category.Options{M: env.Cfg.M, K: env.Cfg.K, X: env.Cfg.X}
	var (
		tree *category.Tree
		err  error
	)
	if tech == category.CostBased {
		tree, err = category.NewCategorizer(st, opts).CategorizeRows(env.R, q, rows)
	} else {
		// The baselines draw from the paper's predefined attribute set.
		opts.CandidateAttrs = baselineAttrs()
		b := &category.Baseline{Stats: st, Opts: opts, Kind: tech}
		tree, err = b.CategorizeRows(env.R, q, rows)
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: %v tree: %w", tech, err)
	}
	(&category.Estimator{Stats: st}).Annotate(tree)
	return tree, nil
}

// baselineAttrs is §6.1's predefined candidate set: neighborhood,
// property-type, bedroomcount, price, year-built and square-footage, in that
// (arbitrary) order.
func baselineAttrs() []string {
	return []string{
		datagen.AttrNeighborhood, datagen.AttrPropertyType, datagen.AttrBedrooms,
		datagen.AttrPrice, datagen.AttrYearBuilt, datagen.AttrSqft,
	}
}
