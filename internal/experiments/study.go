package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/category"
	"repro/internal/datagen"
	"repro/internal/explore"
	"repro/internal/stats"
)

// Assignment is one subject × task × technique exploration of the §6.3
// study, with its measurements.
type Assignment struct {
	Subject   int
	Task      int // 0-based
	Technique category.Technique

	Estimated     float64 // CostAll(T), the analytical prediction
	ActualAll     float64 // items examined until all relevant tuples found
	ActualOne     float64 // items examined until the first relevant tuple
	RelevantFound int
	RelevantTotal int
	Normalized    float64 // items per relevant tuple (Inf when none found)
}

// UserCorrelation is one Table 2 row.
type UserCorrelation struct {
	Subject int
	R       float64
	OK      bool // false when the subject's sample was degenerate
	N       int
}

// CellKey addresses a task × technique aggregate.
type CellKey struct {
	Task      int
	Technique category.Technique
}

// StudyResult is the full §6.3 output.
type StudyResult struct {
	Assignments []Assignment
	// PerUser is Table 2: estimated-vs-actual correlation per subject.
	PerUser []UserCorrelation
	// AvgUserR is Table 2's "average" row (over subjects with defined r).
	AvgUserR float64
	// CostAll / Relevant / Normalized / CostOne are Figures 9-12: averages
	// per task × technique.
	CostAll    map[CellKey]float64
	Relevant   map[CellKey]float64
	Normalized map[CellKey]float64
	CostOne    map[CellKey]float64
	// ResultSizes is |Result(task)| per task — the "No categorization" cost
	// of Table 3.
	ResultSizes []int
	// Votes is Table 4: which technique each responding subject called best.
	Votes map[category.Technique]int
	// NoResponse counts subjects without a defined preference.
	NoResponse int
}

// subjectNoise returns one subject's behavioural imperfection. Subjects
// differ: most are careful (small noise), a couple are sloppy — the paper's
// panel likewise contained one subject (U9) whose behaviour did not track
// the model at all.
func subjectNoise(subject int) (explore, ignore, showcat, fatigue float64) {
	switch subject % 5 {
	case 0:
		return 0.01, 0.02, 0.02, 0.5
	case 1:
		return 0.03, 0.05, 0.05, 0.9
	case 2:
		return 0.02, 0.03, 0.08, 0.7
	case 3:
		return 0.05, 0.10, 0.10, 1.4
	default:
		return 0.12, 0.20, 0.22, 2.2 // the sloppy subject
	}
}

// AssignStudy builds the task-technique schedule under the paper's
// constraints: no subject performs a task more than once, the techniques a
// subject sees are varied, and every task × technique combination is
// performed by at least minPer subjects. Each returned pair is (subject,
// task*techniques+tech).
func AssignStudy(subjects, tasks, techniques, minPer int) ([][2]int, error) {
	type slot struct{ task, tech int }
	var slots []slot
	for rep := 0; rep < minPer; rep++ {
		for task := 0; task < tasks; task++ {
			for tech := 0; tech < techniques; tech++ {
				slots = append(slots, slot{task, tech})
			}
		}
	}
	doneTask := make([]map[int]bool, subjects)
	techCount := make([]map[int]int, subjects)
	load := make([]int, subjects)
	for i := range doneTask {
		doneTask[i] = map[int]bool{}
		techCount[i] = map[int]int{}
	}
	schedule := make([][3]int, 0, len(slots))
	for si, sl := range slots {
		placed := false
		// Prefer: hasn't done the task, balanced technique exposure, light load.
		for pass := 0; pass < 2 && !placed; pass++ {
			bestSubj, bestScore := -1, math.MaxInt32
			for s := 0; s < subjects; s++ {
				u := (si + s) % subjects
				if doneTask[u][sl.task] || load[u] >= tasks {
					continue
				}
				score := load[u]*10 + techCount[u][sl.tech]*100
				if pass == 0 && techCount[u][sl.tech] > 0 {
					continue // first pass: strict technique variety
				}
				if score < bestScore {
					bestScore, bestSubj = score, u
				}
			}
			if bestSubj >= 0 {
				doneTask[bestSubj][sl.task] = true
				techCount[bestSubj][sl.tech]++
				load[bestSubj]++
				schedule = append(schedule, [3]int{bestSubj, sl.task, sl.tech})
				placed = true
			}
		}
		if !placed {
			return nil, fmt.Errorf("experiments: cannot place task %d technique %d (subjects exhausted)", sl.task, sl.tech)
		}
	}
	result := make([][2]int, len(schedule))
	for i, row := range schedule {
		result[i] = [2]int{row[0], row[1]*techniques + row[2]}
	}
	return result, nil
}

// RealLifeStudy runs the simulated §6.3 panel: Subjects noisy users over the
// four tasks and three techniques.
func RealLifeStudy(env *Env) (*StudyResult, error) {
	cfg := env.Cfg
	tasks := datagen.Tasks()
	techniques := Techniques()

	schedule, err := AssignStudy(cfg.Subjects, len(tasks), len(techniques), 3)
	if err != nil {
		return nil, err
	}

	// Build the 12 trees once (full workload stats: the tasks are not
	// workload queries).
	trees := map[CellKey]*category.Tree{}
	taskRows := make([][]int, len(tasks))
	for ti, task := range tasks {
		taskRows[ti] = env.R.Select(task.Predicate())
		for _, tech := range techniques {
			tree, err := buildTree(env.FullStats, env, tech, task, taskRows[ti])
			if err != nil {
				return nil, err
			}
			trees[CellKey{ti, tech}] = tree
		}
	}

	out := &StudyResult{
		CostAll:    map[CellKey]float64{},
		Relevant:   map[CellKey]float64{},
		Normalized: map[CellKey]float64{},
		CostOne:    map[CellKey]float64{},
		Votes:      map[category.Technique]int{},
	}
	for _, rows := range taskRows {
		out.ResultSizes = append(out.ResultSizes, len(rows))
	}

	explorer := &explore.Explorer{K: cfg.K}
	counts := map[CellKey]int{}
	for _, pair := range schedule {
		subject := pair[0]
		task := pair[1] / len(techniques)
		tech := techniques[pair[1]%len(techniques)]
		tree := trees[CellKey{task, tech}]

		rng := rand.New(rand.NewSource(cfg.Seed*7919 + int64(subject)*131 + int64(task)*17))
		interest := datagen.Narrow(tasks[task], rng)
		eNoise, iNoise, sNoise, fatigue := subjectNoise(subject)
		intent := &explore.Intent{
			Query: interest, Rng: rng,
			ExploreNoise: eNoise, IgnoreNoise: iNoise, ShowCatNoise: sNoise,
			ScanFatigue: fatigue,
		}
		allOut := explorer.All(tree, intent)
		// A fresh rng stream for the ONE pass keeps it independent but
		// reproducible.
		intent.Rng = rand.New(rand.NewSource(cfg.Seed*104729 + int64(subject)*131 + int64(task)*17))
		oneOut := explorer.One(tree, intent)

		a := Assignment{
			Subject: subject, Task: task, Technique: tech,
			Estimated:     category.TreeCostAll(tree),
			ActualAll:     allOut.Cost(cfg.K),
			ActualOne:     oneOut.Cost(cfg.K),
			RelevantFound: allOut.RelevantFound,
			RelevantTotal: allOut.RelevantTotal,
			Normalized:    allOut.NormalizedCost(cfg.K),
		}
		out.Assignments = append(out.Assignments, a)
		key := CellKey{task, tech}
		counts[key]++
		out.CostAll[key] += a.ActualAll
		out.Relevant[key] += float64(a.RelevantFound)
		if !math.IsInf(a.Normalized, 1) {
			out.Normalized[key] += a.Normalized
		}
		out.CostOne[key] += a.ActualOne
	}
	for key, n := range counts {
		f := float64(n)
		out.CostAll[key] /= f
		out.Relevant[key] /= f
		out.Normalized[key] /= f
		out.CostOne[key] /= f
	}

	// Table 2: per-subject correlation between estimated and actual cost.
	var rs []float64
	for u := 0; u < cfg.Subjects; u++ {
		var est, act []float64
		for _, a := range out.Assignments {
			if a.Subject == u {
				est = append(est, a.Estimated)
				act = append(act, a.ActualAll)
			}
		}
		r, ok := stats.Correlate(est, act)
		out.PerUser = append(out.PerUser, UserCorrelation{Subject: u, R: r, OK: ok, N: len(est)})
		if ok {
			rs = append(rs, r)
		}
	}
	out.AvgUserR = stats.Mean(rs)

	// Table 4: each subject votes for the technique that worked best for
	// them. Because a subject sees each technique on a different task, the
	// comparison is task-difficulty adjusted: an exploration's normalized
	// cost is divided by its task's mean normalized cost before averaging.
	taskMean := map[int]float64{}
	taskN := map[int]int{}
	for _, a := range out.Assignments {
		if !math.IsInf(a.Normalized, 1) {
			taskMean[a.Task] += a.Normalized
			taskN[a.Task]++
		}
	}
	for task, n := range taskN {
		taskMean[task] /= float64(n)
	}
	for u := 0; u < cfg.Subjects; u++ {
		sums := map[category.Technique]float64{}
		ns := map[category.Technique]int{}
		for _, a := range out.Assignments {
			if a.Subject != u || math.IsInf(a.Normalized, 1) || taskMean[a.Task] == 0 {
				continue
			}
			sums[a.Technique] += a.Normalized / taskMean[a.Task]
			ns[a.Technique]++
		}
		best, bestVal := category.Technique(-1), math.Inf(1)
		for tech, sum := range sums {
			avg := sum / float64(ns[tech])
			if avg < bestVal {
				best, bestVal = tech, avg
			}
		}
		if best < 0 || len(ns) < 2 {
			out.NoResponse++
			continue
		}
		out.Votes[best]++
	}
	return out, nil
}

// Table3Row compares the cost-based technique against no categorization for
// one task: the paper reports normalized cost ≈5-10 items per relevant tuple
// versus the full result-set size.
type Table3Row struct {
	Task              int
	CostBasedNormCost float64
	NoCategorization  int // |Result(task)|
}

// Table3 derives the Table 3 rows from a study result.
func Table3(res *StudyResult) []Table3Row {
	rows := make([]Table3Row, 0, len(res.ResultSizes))
	for ti, size := range res.ResultSizes {
		rows = append(rows, Table3Row{
			Task:              ti + 1,
			CostBasedNormCost: res.Normalized[CellKey{ti, category.CostBased}],
			NoCategorization:  size,
		})
	}
	return rows
}
