package experiments

import (
	"fmt"

	"repro/internal/category"
	"repro/internal/datagen"
	"repro/internal/explore"
	"repro/internal/ranking"
	"repro/internal/stats"
)

// RankingAblation measures the §2 complementarity claim as a 2×2: the
// ONE-scenario cost (items to the first relevant tuple) with and without
// categorization, with and without workload-popularity ranking.
type RankingAblation struct {
	N int
	// Average ONE-scenario cost for each presentation.
	Flat, FlatRanked, Tree, TreeRanked float64
	// Found counts explorations where the user reached a relevant tuple
	// (identical across presentations; reported for context).
	Found int
}

// AblationRanking replays the first n broadenable held-out workload queries
// as ONE-scenario users over the four presentations.
func AblationRanking(env *Env, n int) (*RankingAblation, error) {
	cfg := env.Cfg
	cat := category.NewCategorizer(env.FullStats, category.Options{M: cfg.M, K: cfg.K, X: cfg.X})
	rk := ranking.New(env.FullStats, env.R.Schema())
	explorer := &explore.Explorer{K: cfg.K}

	type trees struct{ plain, ranked *category.Tree }
	treeCache := map[string]trees{}
	rowsCache := map[string][]int{}
	rankedRows := map[string][]int{}

	var flat, flatRanked, tree, treeRanked []float64
	found := 0
	count := 0
	for _, w := range env.W.Queries {
		qw, ok := datagen.Broaden(w)
		if !ok {
			continue
		}
		region, _ := datagen.RegionOf(qw.Cond(datagen.AttrNeighborhood).Values[0])
		rows, ok := rowsCache[region.Name]
		if !ok {
			rows = env.R.Select(qw.Predicate())
			rowsCache[region.Name] = rows
			rankedRows[region.Name] = rk.Rank(env.R, rows)
		}
		if len(rows) == 0 {
			continue
		}
		tr, ok := treeCache[region.Name]
		if !ok {
			plain, err := cat.CategorizeRows(env.R, qw, rows)
			if err != nil {
				return nil, err
			}
			ranked, err := cat.CategorizeRows(env.R, qw, rows)
			if err != nil {
				return nil, err
			}
			ranking.RankTree(rk, ranked)
			tr = trees{plain: plain, ranked: ranked}
			treeCache[region.Name] = tr
		}
		in := &explore.Intent{Query: w}
		// Flat scans: simulate over a one-node pseudo tree by reusing
		// FlatOne against the plain tree (root tset = rows) and a ranked
		// variant via the ranked tree's root (RankTree reordered it).
		fo := explore.FlatOne(tr.plain, in)
		fr := explore.FlatOne(tr.ranked, in)
		to := explorer.One(tr.plain, in)
		trk := explorer.One(tr.ranked, in)
		flat = append(flat, fo.Cost(cfg.K))
		flatRanked = append(flatRanked, fr.Cost(cfg.K))
		tree = append(tree, to.Cost(cfg.K))
		treeRanked = append(treeRanked, trk.Cost(cfg.K))
		if to.Found {
			found++
		}
		count++
		if count == n {
			break
		}
	}
	if count == 0 {
		return nil, fmt.Errorf("experiments: no explorations for ranking ablation")
	}
	return &RankingAblation{
		N:          count,
		Flat:       stats.Mean(flat),
		FlatRanked: stats.Mean(flatRanked),
		Tree:       stats.Mean(tree),
		TreeRanked: stats.Mean(treeRanked),
		Found:      found,
	}, nil
}
