package experiments

import (
	"math"
	"testing"

	"repro/internal/category"
)

// testEnv is a small shared environment; building it once keeps the package
// tests fast.
var testEnvCache *Env

func testEnv(t testing.TB) *Env {
	t.Helper()
	if testEnvCache == nil {
		env, err := NewEnv(Config{Rows: 8000, Queries: 4000, Subsets: 3, PerSubset: 20, Seed: 1})
		if err != nil {
			t.Fatalf("NewEnv: %v", err)
		}
		testEnvCache = env
	}
	return testEnvCache
}

func TestNewEnvDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Rows != 20000 || cfg.Queries != 10000 || cfg.M != 20 || cfg.K != 1 ||
		cfg.X != 0.4 || cfg.Subsets != 8 || cfg.PerSubset != 100 || cfg.Subjects != 11 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestEnvShape(t *testing.T) {
	env := testEnv(t)
	if env.R.Len() != 8000 {
		t.Errorf("rows = %d", env.R.Len())
	}
	if env.W.Len() != 4000 {
		t.Errorf("queries = %d", env.W.Len())
	}
	if got := len(env.FullStats.Retained(0.4)); got != 6 {
		t.Errorf("retained attributes = %d; want the paper's 6", got)
	}
}

func TestSyntheticStudyShape(t *testing.T) {
	env := testEnv(t)
	res, err := SyntheticStudy(env)
	if err != nil {
		t.Fatalf("SyntheticStudy: %v", err)
	}
	if len(res.Subsets) != env.Cfg.Subsets {
		t.Fatalf("subsets = %d; want %d", len(res.Subsets), env.Cfg.Subsets)
	}
	total := 0
	for _, s := range res.Subsets {
		total += s.N
		if s.N == 0 {
			t.Errorf("subset %d has no explorations", s.Index)
		}
	}
	if total != len(res.Explorations) {
		t.Fatalf("exploration count mismatch: %d vs %d", total, len(res.Explorations))
	}

	// Figure 7 / Table 1 shape: strong positive overall correlation and a
	// trend slope in a sane band.
	if res.OverallR < 0.3 {
		t.Errorf("overall Pearson r = %.3f; want strong positive correlation", res.OverallR)
	}
	if res.Slope <= 0.2 || res.Slope >= 3 {
		t.Errorf("trend slope = %.3f; want positive and near 1", res.Slope)
	}

	// Figure 8 shape: cost-based beats No-cost by a clear factor in every
	// subset; all fractions are in (0, 1+ε].
	for _, s := range res.Subsets {
		cb := s.FracCost[category.CostBased]
		nc := s.FracCost[category.NoCost]
		if cb <= 0 || nc <= 0 {
			t.Errorf("subset %d: non-positive fractional cost cb=%v nc=%v", s.Index, cb, nc)
		}
		if nc < 1.5*cb {
			t.Errorf("subset %d: No-cost (%.3f) not clearly worse than cost-based (%.3f)", s.Index, nc, cb)
		}
	}

	// Every exploration must carry all three techniques and positive costs.
	for i, e := range res.Explorations {
		for _, tech := range Techniques() {
			if e.Estimated[tech] <= 0 || e.Actual[tech] <= 0 {
				t.Fatalf("exploration %d: non-positive cost for %v", i, tech)
			}
			// Actual exploration cannot examine more items than the result
			// set plus all labels; bound loosely by 3x result size.
			if e.Actual[tech] > 3*float64(e.ResultLen)+1000 {
				t.Fatalf("exploration %d: actual %v cost %.0f implausible for %d tuples",
					i, tech, e.Actual[tech], e.ResultLen)
			}
		}
	}
}

func TestSyntheticStudyDeterministic(t *testing.T) {
	env := testEnv(t)
	a, err := SyntheticStudy(env)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SyntheticStudy(env)
	if err != nil {
		t.Fatal(err)
	}
	if a.OverallR != b.OverallR || a.Slope != b.Slope {
		t.Fatalf("synthetic study not deterministic: (%v,%v) vs (%v,%v)",
			a.OverallR, a.Slope, b.OverallR, b.Slope)
	}
}

func TestSyntheticStudyNeedsEnoughQueries(t *testing.T) {
	env, err := NewEnv(Config{Rows: 2000, Queries: 50, Subsets: 8, PerSubset: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SyntheticStudy(env); err == nil {
		t.Fatal("expected error with too few broadenable queries")
	}
}

func TestAssignStudyConstraints(t *testing.T) {
	schedule, err := AssignStudy(11, 4, 3, 3)
	if err != nil {
		t.Fatalf("AssignStudy: %v", err)
	}
	if len(schedule) != 36 {
		t.Fatalf("schedule has %d slots; want 36", len(schedule))
	}
	perSubjectTask := map[[2]int]int{}
	comboCount := map[int]int{}
	subjTechs := map[int]map[int]int{}
	for _, pair := range schedule {
		subject, combo := pair[0], pair[1]
		task, tech := combo/3, combo%3
		perSubjectTask[[2]int{subject, task}]++
		comboCount[combo]++
		if subjTechs[subject] == nil {
			subjTechs[subject] = map[int]int{}
		}
		subjTechs[subject][tech]++
	}
	for key, n := range perSubjectTask {
		if n > 1 {
			t.Errorf("subject %d performs task %d %d times", key[0], key[1], n)
		}
	}
	for combo := 0; combo < 12; combo++ {
		if comboCount[combo] < 2 {
			t.Errorf("combo %d performed by %d subjects; want ≥ 2", combo, comboCount[combo])
		}
	}
	for subject, techs := range subjTechs {
		if len(techs) < 2 {
			t.Errorf("subject %d saw only %d technique(s); want variety", subject, len(techs))
		}
	}
}

func TestAssignStudyInfeasible(t *testing.T) {
	// 1 subject cannot host 4 tasks × 3 techniques once each.
	if _, err := AssignStudy(1, 4, 3, 3); err == nil {
		t.Fatal("expected infeasibility error")
	}
}

func TestRealLifeStudyShape(t *testing.T) {
	env := testEnv(t)
	res, err := RealLifeStudy(env)
	if err != nil {
		t.Fatalf("RealLifeStudy: %v", err)
	}
	if len(res.PerUser) != env.Cfg.Subjects {
		t.Fatalf("per-user rows = %d; want %d", len(res.PerUser), env.Cfg.Subjects)
	}
	if len(res.ResultSizes) != 4 {
		t.Fatalf("result sizes = %v; want 4 tasks", res.ResultSizes)
	}
	// Table 2 shape: average correlation clearly positive.
	if res.AvgUserR < 0.3 {
		t.Errorf("average user correlation %.3f; want positive (paper: 0.67)", res.AvgUserR)
	}
	// Figures 9-12 shape: every cell filled for every task × technique.
	for ti := 0; ti < 4; ti++ {
		for _, tech := range Techniques() {
			key := CellKey{ti, tech}
			if res.CostAll[key] <= 0 {
				t.Errorf("Figure 9 cell %v empty", key)
			}
			if res.CostOne[key] <= 0 {
				t.Errorf("Figure 12 cell %v empty", key)
			}
		}
	}
	// Table 3 shape: cost-based normalized cost is orders of magnitude below
	// the result size.
	for _, row := range Table3(res) {
		if math.IsInf(row.CostBasedNormCost, 1) {
			t.Errorf("task %d: no relevant tuples found at all", row.Task)
			continue
		}
		if row.CostBasedNormCost*5 > float64(row.NoCategorization) {
			t.Errorf("task %d: normalized cost %.1f not ≪ result size %d",
				row.Task, row.CostBasedNormCost, row.NoCategorization)
		}
	}
	// Table 4 shape: every subject either votes or abstains; cost-based is
	// the plurality winner.
	votes := 0
	for _, n := range res.Votes {
		votes += n
	}
	if votes+res.NoResponse != env.Cfg.Subjects {
		t.Errorf("votes %d + no-response %d != subjects %d", votes, res.NoResponse, env.Cfg.Subjects)
	}
	best, bestN := category.Technique(-1), -1
	for tech, n := range res.Votes {
		if n > bestN {
			best, bestN = tech, n
		}
	}
	if best != category.CostBased {
		t.Errorf("vote winner = %v (%d votes; full map %v); want Cost-based", best, bestN, res.Votes)
	}
}

func TestRealLifeStudyDeterministic(t *testing.T) {
	env := testEnv(t)
	a, _ := RealLifeStudy(env)
	b, _ := RealLifeStudy(env)
	if a.AvgUserR != b.AvgUserR || len(a.Assignments) != len(b.Assignments) {
		t.Fatal("study not deterministic")
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatalf("assignment %d differs: %+v vs %+v", i, a.Assignments[i], b.Assignments[i])
		}
	}
}

func TestExecutionTime(t *testing.T) {
	env := testEnv(t)
	res, err := ExecutionTime(env, []int{10, 50}, 6)
	if err != nil {
		t.Fatalf("ExecutionTime: %v", err)
	}
	if len(res.Points) != 2 || res.QueriesTimed == 0 {
		t.Fatalf("result = %+v", res)
	}
	for _, p := range res.Points {
		if p.AvgSeconds < 0 || p.AvgNodes <= 0 {
			t.Errorf("point %+v malformed", p)
		}
	}
	// Smaller M means more nodes.
	if res.Points[0].AvgNodes <= res.Points[1].AvgNodes {
		t.Errorf("M=10 nodes (%.0f) should exceed M=50 nodes (%.0f)",
			res.Points[0].AvgNodes, res.Points[1].AvgNodes)
	}
	if res.AvgResultSize <= 0 {
		t.Error("average result size missing")
	}
}

func TestAblationOrdering(t *testing.T) {
	env := testEnv(t)
	res, err := AblationOrdering(env, 5)
	if err != nil {
		t.Fatalf("AblationOrdering: %v", err)
	}
	if res.Trees == 0 {
		t.Fatal("no trees sampled")
	}
	// Optimal must be the cheapest; the construction heuristic must be at
	// least as good as the reversed order.
	if res.Optimal > res.Heuristic+1e-9 {
		t.Errorf("optimal (%.2f) worse than heuristic (%.2f)", res.Optimal, res.Heuristic)
	}
	if res.Heuristic > res.Reversed+1e-9 {
		t.Errorf("heuristic (%.2f) worse than reversed (%.2f)", res.Heuristic, res.Reversed)
	}
	if s := res.OrderingGapSummary(); s == "" {
		t.Error("empty gap summary")
	}
}

func TestAblationSplitpoints(t *testing.T) {
	env := testEnv(t)
	res, err := AblationSplitpoints(env, 5)
	if err != nil {
		t.Fatalf("AblationSplitpoints: %v", err)
	}
	if res.Trees == 0 {
		t.Fatal("no trees sampled")
	}
	if res.GoodnessCost > res.EquiWidth+1e-6 {
		t.Errorf("goodness partitions (%.1f) cost more than equi-width (%.1f)",
			res.GoodnessCost, res.EquiWidth)
	}
}

func TestAblationX(t *testing.T) {
	env := testEnv(t)
	points, err := AblationX(env, []float64{0.1, 0.4, 0.7}, 4)
	if err != nil {
		t.Fatalf("AblationX: %v", err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Candidate count must be non-increasing in x.
	for i := 1; i < len(points); i++ {
		if points[i].Candidates > points[i-1].Candidates {
			t.Errorf("candidates rose with x: %+v", points)
		}
	}
}

func TestAblationK(t *testing.T) {
	env := testEnv(t)
	points, err := AblationK(env, []float64{0.5, 2}, 4)
	if err != nil {
		t.Fatalf("AblationK: %v", err)
	}
	for _, p := range points {
		if p.AvgCost <= 0 || p.Level1Attr == "" {
			t.Errorf("malformed K point %+v", p)
		}
	}
}

func TestTechniquesOrder(t *testing.T) {
	techs := Techniques()
	if len(techs) != 3 || techs[0] != category.CostBased || techs[2] != category.NoCost {
		t.Fatalf("Techniques() = %v", techs)
	}
}

func TestAblationCorrelation(t *testing.T) {
	env := testEnv(t)
	res, err := AblationCorrelation(env, 40)
	if err != nil {
		t.Fatalf("AblationCorrelation: %v", err)
	}
	if res.N == 0 {
		t.Fatal("no explorations measured")
	}
	if res.IndepEst <= 0 || res.CondEst <= 0 || res.IndepFrac <= 0 || res.CondFrac <= 0 {
		t.Fatalf("malformed result %+v", res)
	}
	// The conditional model conditions on real workload structure; its
	// estimate should not be wildly above the independent one.
	if res.CondEst > 2*res.IndepEst {
		t.Errorf("conditional estimate %v implausibly above independent %v", res.CondEst, res.IndepEst)
	}
	t.Logf("correlation ablation: indep r=%.3f frac=%.3f est=%.1f | cond r=%.3f frac=%.3f est=%.1f",
		res.IndepR, res.IndepFrac, res.IndepEst, res.CondR, res.CondFrac, res.CondEst)
}

func TestAblationRanking(t *testing.T) {
	env := testEnv(t)
	res, err := AblationRanking(env, 60)
	if err != nil {
		t.Fatalf("AblationRanking: %v", err)
	}
	if res.N == 0 || res.Found == 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	if res.Flat <= 0 || res.Tree <= 0 {
		t.Fatalf("non-positive costs %+v", res)
	}
	// Categorization must beat the unranked flat scan on average.
	if res.Tree > res.Flat {
		t.Errorf("tree ONE cost %.1f exceeds flat %.1f", res.Tree, res.Flat)
	}
	t.Logf("ranking ablation: flat=%.1f flat+rank=%.1f tree=%.1f tree+rank=%.1f (n=%d)",
		res.Flat, res.FlatRanked, res.Tree, res.TreeRanked, res.N)
}

func TestAblationGreedyOptimal(t *testing.T) {
	env := testEnv(t)
	res, err := AblationGreedyOptimal(env, 3, 120)
	if err != nil {
		t.Fatalf("AblationGreedyOptimal: %v", err)
	}
	if res.Instances == 0 || res.TreesTried == 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	if res.AvgRatio < 0.99 {
		t.Errorf("greedy beat the bounded optimum on average (%.3f): enumeration space too small", res.AvgRatio)
	}
	if res.WorstRatio > 2.0 {
		t.Errorf("greedy up to %.2fx worse than optimal; should be near 1", res.WorstRatio)
	}
	t.Logf("greedy/optimal: avg %.3f worst %.3f over %d instances (%d trees)",
		res.AvgRatio, res.WorstRatio, res.Instances, res.TreesTried)
}
