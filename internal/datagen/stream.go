package datagen

import (
	"bufio"
	"io"
	"strconv"

	"repro/internal/relation"
)

// StreamCSV writes the synthetic ListProperty dataset as CSV (header row
// first) directly to w, one generated row at a time. Output is
// byte-identical to Dataset(cfg) followed by Relation.WriteCSV — pinned by
// TestStreamCSVMatchesWriteCSV — but memory use stays constant in cfg.Rows,
// so paper-scale (and beyond) files can be produced without materializing
// the relation. Returns the number of rows written.
func StreamCSV(w io.Writer, cfg DatasetConfig) (int, error) {
	cfg = cfg.withDefaults()
	schema := Schema(cfg)
	bw := bufio.NewWriter(w)
	header := make([]string, schema.Len())
	for i := range header {
		header[i] = schema.Attr(i).Name
	}
	if err := relation.WriteCSVRecord(bw, header); err != nil {
		return 0, err
	}
	rows := 0
	record := make([]string, schema.Len())
	err := Stream(cfg, func(_ int, t relation.Tuple) error {
		for j := range record {
			if schema.Attr(j).Type == relation.Categorical {
				record[j] = t[j].Str
			} else {
				record[j] = strconv.FormatFloat(t[j].Num, 'f', -1, 64)
			}
		}
		if err := relation.WriteCSVRecord(bw, record); err != nil {
			return err
		}
		rows++
		return nil
	})
	if err != nil {
		return rows, err
	}
	return rows, bw.Flush()
}
