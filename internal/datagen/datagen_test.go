package datagen

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/relation"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

func TestDatasetDeterministic(t *testing.T) {
	a := Dataset(DatasetConfig{Rows: 200, Seed: 5})
	b := Dataset(DatasetConfig{Rows: 200, Seed: 5})
	if a.Len() != 200 || b.Len() != 200 {
		t.Fatalf("lens = %d, %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("row %d col %d differs: %v vs %v", i, j, ra[j], rb[j])
			}
		}
	}
	c := Dataset(DatasetConfig{Rows: 200, Seed: 6})
	same := true
	for i := 0; i < 20 && same; i++ {
		for j := range a.Row(i) {
			if a.Row(i)[j] != c.Row(i)[j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical prefixes")
	}
}

func TestDatasetSchemaWidth(t *testing.T) {
	r := Dataset(DatasetConfig{Rows: 10})
	if got := r.Schema().Len(); got != 53 {
		t.Fatalf("schema width = %d; want 53 (10 primary + 43 filler)", got)
	}
	for _, name := range []string{AttrNeighborhood, AttrPrice, AttrBedrooms, AttrBaths, AttrPropertyType, AttrSqft} {
		if _, ok := r.Schema().Lookup(name); !ok {
			t.Errorf("missing attribute %q", name)
		}
	}
}

func TestDatasetValueSanity(t *testing.T) {
	r := Dataset(DatasetConfig{Rows: 3000, Seed: 9})
	pPos, _ := r.Schema().Lookup(AttrPrice)
	bPos, _ := r.Schema().Lookup(AttrBedrooms)
	sPos, _ := r.Schema().Lookup(AttrSqft)
	yPos, _ := r.Schema().Lookup(AttrYearBuilt)
	hPos, _ := r.Schema().Lookup(AttrNeighborhood)
	tPos, _ := r.Schema().Lookup(AttrPropertyType)
	typeSet := map[string]bool{}
	for _, pt := range PropertyTypes() {
		typeSet[pt] = true
	}
	for i := 0; i < r.Len(); i++ {
		row := r.Row(i)
		if p := row[pPos].Num; p < 40000 || p > 5000000 {
			t.Fatalf("row %d price %v out of range", i, p)
		}
		if b := row[bPos].Num; b < 1 || b > 9 {
			t.Fatalf("row %d bedrooms %v out of range", i, b)
		}
		if s := row[sPos].Num; s < 300 {
			t.Fatalf("row %d sqft %v too small", i, s)
		}
		if y := row[yPos].Num; y < 1900 || y > 2004 {
			t.Fatalf("row %d year %v out of range", i, y)
		}
		if _, ok := RegionOf(row[hPos].Str); !ok {
			t.Fatalf("row %d neighborhood %q not in any region", i, row[hPos].Str)
		}
		if !typeSet[row[tPos].Str] {
			t.Fatalf("row %d property type %q unknown", i, row[tPos].Str)
		}
	}
}

func TestDatasetPriceSizeCorrelation(t *testing.T) {
	r := Dataset(DatasetConfig{Rows: 5000, Seed: 3})
	pPos, _ := r.Schema().Lookup(AttrPrice)
	sPos, _ := r.Schema().Lookup(AttrSqft)
	// Within one region (fixed base price), bigger homes must cost more on
	// average: compare mean price of small vs large homes in Seattle.
	hPos, _ := r.Schema().Lookup(AttrNeighborhood)
	var small, large []float64
	for i := 0; i < r.Len(); i++ {
		row := r.Row(i)
		if !strings.HasSuffix(row[hPos].Str, ", WA") {
			continue
		}
		if row[sPos].Num < 1200 {
			small = append(small, row[pPos].Num)
		} else if row[sPos].Num > 2200 {
			large = append(large, row[pPos].Num)
		}
	}
	if len(small) < 20 || len(large) < 20 {
		t.Fatalf("too few samples: %d small, %d large", len(small), len(large))
	}
	if mean(large) <= mean(small) {
		t.Fatalf("price not correlated with size: large %.0f <= small %.0f", mean(large), mean(small))
	}
}

func mean(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

func TestWorkloadSQLParses(t *testing.T) {
	queries := WorkloadSQL(WorkloadConfig{Queries: 500, Seed: 11})
	if len(queries) != 500 {
		t.Fatalf("got %d queries", len(queries))
	}
	w, err := workload.ParseStrings(queries)
	if err != nil {
		t.Fatalf("generated workload failed to parse: %v", err)
	}
	if w.Len() != 500 {
		t.Fatalf("parsed %d of 500", w.Len())
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	a := WorkloadSQL(WorkloadConfig{Queries: 100, Seed: 4})
	b := WorkloadSQL(WorkloadConfig{Queries: 100, Seed: 4})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d differs:\n%s\n%s", i, a[i], b[i])
		}
	}
}

// TestWorkloadEliminationMatchesPaper is the Figure 4 shape check: with
// x = 0.4 exactly the paper's six attributes survive, and neighborhood is
// the most used.
func TestWorkloadEliminationMatchesPaper(t *testing.T) {
	queries := WorkloadSQL(WorkloadConfig{Queries: 8000, Seed: 2})
	w, err := workload.ParseStrings(queries)
	if err != nil {
		t.Fatal(err)
	}
	stats := workload.Preprocess(w, workload.Config{Table: TableName, Intervals: Intervals()})
	retained := stats.Retained(0.4)
	want := map[string]bool{
		AttrNeighborhood: true, AttrPrice: true, AttrBedrooms: true,
		AttrBaths: true, AttrPropertyType: true, AttrSqft: true,
	}
	if len(retained) != 6 {
		t.Fatalf("Retained(0.4) = %v; want the paper's 6 attributes", retained)
	}
	for _, a := range retained {
		if !want[strings.ToLower(a)] {
			t.Fatalf("unexpected retained attribute %q", a)
		}
	}
	if !strings.EqualFold(retained[0], AttrNeighborhood) {
		t.Fatalf("most-used attribute = %q; want neighborhood (Figure 4a)", retained[0])
	}
	if frac := stats.UsageFraction(AttrYearBuilt); frac >= 0.4 {
		t.Fatalf("yearbuilt usage %.2f; must fall below x=0.4", frac)
	}
}

// TestWorkloadSplitpointGoodnessConcentrated: price endpoints snap to 25000
// multiples most of the time, so high-goodness splitpoints exist.
func TestWorkloadSplitpointGoodnessConcentrated(t *testing.T) {
	queries := WorkloadSQL(WorkloadConfig{Queries: 4000, Seed: 2})
	w, _ := workload.ParseStrings(queries)
	stats := workload.Preprocess(w, workload.Config{Table: TableName, Intervals: Intervals()})
	st := stats.Splits(AttrPrice)
	if st == nil {
		t.Fatal("no price split table")
	}
	cands := st.Candidates(50000, 2000000, false, 0)
	if len(cands) == 0 {
		t.Fatal("no scored splitpoints")
	}
	best := cands[0]
	if best.Goodness < 50 {
		t.Fatalf("best splitpoint goodness = %d; expected strong concentration", best.Goodness)
	}
	if int(best.Value)%25000 != 0 {
		t.Fatalf("best splitpoint %v not on the 25000 grid", best.Value)
	}
}

func TestBroaden(t *testing.T) {
	w := sqlparse.MustParse("SELECT * FROM ListProperty WHERE neighborhood IN ('Bellevue, WA','Redmond, WA') AND price BETWEEN 200000 AND 300000 AND bedroomcount >= 3")
	q, ok := Broaden(w)
	if !ok {
		t.Fatal("Broaden failed")
	}
	if len(q.Conds) != 1 {
		t.Fatalf("broadened query should keep only the neighborhood condition, got %d", len(q.Conds))
	}
	c := q.Cond(AttrNeighborhood)
	if len(c.Values) != 10 {
		t.Fatalf("broadened to %d neighborhoods; want all 10 of Seattle/Bellevue", len(c.Values))
	}
	// The original's neighborhoods must be included.
	set := map[string]bool{}
	for _, v := range c.Values {
		set[v] = true
	}
	if !set["Bellevue, WA"] || !set["Redmond, WA"] {
		t.Fatal("broadened set must contain the original neighborhoods")
	}
}

func TestBroadenNoHood(t *testing.T) {
	w := sqlparse.MustParse("SELECT * FROM ListProperty WHERE price BETWEEN 1 AND 2")
	if _, ok := Broaden(w); ok {
		t.Fatal("Broaden should fail without a neighborhood condition")
	}
	w2 := sqlparse.MustParse("SELECT * FROM ListProperty WHERE neighborhood IN ('Atlantis, XX')")
	if _, ok := Broaden(w2); ok {
		t.Fatal("Broaden should fail for unknown neighborhoods")
	}
}

// TestBroadenSubsumes: every tuple matching W also matches Broaden(W).
func TestBroadenSubsumes(t *testing.T) {
	r := Dataset(DatasetConfig{Rows: 2000, Seed: 8})
	queries := WorkloadSQL(WorkloadConfig{Queries: 50, Seed: 13})
	for _, src := range queries {
		w := sqlparse.MustParse(src)
		q, ok := Broaden(w)
		if !ok {
			continue
		}
		wRows := r.Select(w.Predicate())
		qSet := map[int]bool{}
		for _, i := range r.Select(q.Predicate()) {
			qSet[i] = true
		}
		for _, i := range wRows {
			if !qSet[i] {
				t.Fatalf("broadened query does not subsume %q at row %d", src, i)
			}
		}
	}
}

// TestNarrowImpliesTask: every tuple matching Narrow(task) matches task.
func TestNarrowImpliesTask(t *testing.T) {
	r := Dataset(DatasetConfig{Rows: 3000, Seed: 14})
	rng := rand.New(rand.NewSource(21))
	for ti, task := range Tasks() {
		for trial := 0; trial < 5; trial++ {
			interest := Narrow(task, rng)
			taskSet := map[int]bool{}
			for _, i := range r.Select(task.Predicate()) {
				taskSet[i] = true
			}
			for _, i := range r.Select(interest.Predicate()) {
				if !taskSet[i] {
					t.Fatalf("task %d trial %d: narrowed interest not contained in task", ti+1, trial)
				}
			}
		}
	}
}

func TestTasksShape(t *testing.T) {
	tasks := Tasks()
	if len(tasks) != 4 {
		t.Fatalf("want 4 tasks, got %d", len(tasks))
	}
	if c := tasks[2].Cond(AttrNeighborhood); c == nil || len(c.Values) != 15 {
		t.Fatal("task 3 must name 15 NYC neighborhoods")
	}
	if c := tasks[3].Cond(AttrBedrooms); c == nil || c.Lo != 3 || c.Hi != 4 {
		t.Fatal("task 4 must constrain bedrooms 3-4")
	}
	r := Dataset(DatasetConfig{Rows: 5000, Seed: 1})
	for i, task := range tasks {
		if n := len(r.Select(task.Predicate())); n == 0 {
			t.Errorf("task %d matches no homes in the synthetic dataset", i+1)
		}
	}
}

func TestRegionOf(t *testing.T) {
	reg, ok := RegionOf("Kirkland, WA")
	if !ok || reg.Name != "Seattle/Bellevue" {
		t.Fatalf("RegionOf(Kirkland) = %v, %v", reg.Name, ok)
	}
	if _, ok := RegionOf("Nowhere, ZZ"); ok {
		t.Fatal("unknown neighborhood should not resolve")
	}
}

func TestRegionWeightsAndUniqueness(t *testing.T) {
	seen := map[string]bool{}
	total := 0.0
	for _, reg := range Regions() {
		total += reg.Weight
		if reg.Weight <= 0 {
			t.Errorf("region %s has non-positive weight", reg.Name)
		}
		for _, h := range reg.Neighborhoods {
			if seen[h] {
				t.Errorf("neighborhood %q appears in two regions", h)
			}
			seen[h] = true
			if !strings.HasSuffix(h, ", "+reg.State) {
				t.Errorf("neighborhood %q does not carry state %s", h, reg.State)
			}
		}
	}
	if total < 0.95 || total > 1.05 {
		t.Errorf("region weights sum to %v; want ≈1", total)
	}
}

func TestZipStable(t *testing.T) {
	if zipFor("Bellevue, WA", 0) != zipFor("Bellevue, WA", 0) {
		t.Fatal("zipFor not deterministic")
	}
	if zipFor("Bellevue, WA", 0) == zipFor("Bellevue, WA", 1) {
		t.Fatal("zip variants should differ")
	}
	if len(zipFor("X", 0)) != 5 {
		t.Fatal("zip must be 5 digits")
	}
}

func TestSchemaTypes(t *testing.T) {
	s := Schema(DatasetConfig{})
	if typ, _ := s.TypeOf(AttrPrice); typ != relation.Numeric {
		t.Error("price must be numeric")
	}
	if typ, _ := s.TypeOf(AttrNeighborhood); typ != relation.Categorical {
		t.Error("neighborhood must be categorical")
	}
}
