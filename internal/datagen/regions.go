// Package datagen synthesizes the evaluation substrate the paper used but
// we cannot obtain: the MSN House&Home ListProperty table (1.7M homes, 53
// attributes) and its workload of 176,262 real buyer queries. The generator
// reproduces the structural properties the algorithms depend on — regional
// neighborhood clustering, price/size/bedroom correlation, many
// rarely-queried attributes, attribute-usage skew matching Figure 4, and
// range endpoints clustering on round numbers so splitpoint goodness is
// informative — without any proprietary data. Everything is deterministic
// given a seed.
package datagen

// Region is one metro market: its neighborhoods share a price level and are
// co-requested in buyer queries.
type Region struct {
	// Name identifies the metro, e.g. "Seattle/Bellevue".
	Name string
	// Neighborhoods are rendered as "City, ST" strings, the IN-clause values
	// of workload queries.
	Neighborhoods []string
	// State is the two-letter state code.
	State string
	// BasePrice is the metro's median asking price; listing prices are
	// log-normally spread around it.
	BasePrice float64
	// Weight is the metro's share of buyer attention in the workload.
	Weight float64
}

// Regions returns the ten synthetic metro markets. The first entries mirror
// the regions the paper's tasks name (Seattle/Bellevue, Bay Area, NYC).
func Regions() []Region {
	return []Region{
		{
			Name:  "Seattle/Bellevue",
			State: "WA",
			Neighborhoods: []string{
				"Seattle, WA", "Bellevue, WA", "Redmond, WA", "Kirkland, WA",
				"Issaquah, WA", "Sammamish, WA", "Renton, WA", "Bothell, WA",
				"Mercer Island, WA", "Woodinville, WA",
			},
			BasePrice: 350000,
			Weight:    0.4,
		},
		{
			Name:  "Bay Area - Penin/SanJose",
			State: "CA",
			Neighborhoods: []string{
				"San Jose, CA", "Palo Alto, CA", "Mountain View, CA", "Sunnyvale, CA",
				"Cupertino, CA", "Santa Clara, CA", "Menlo Park, CA", "Redwood City, CA",
				"Campbell, CA", "Los Gatos, CA", "Milpitas, CA",
			},
			BasePrice: 550000,
			Weight:    0.22,
		},
		{
			Name:  "NYC - Manhattan, Bronx",
			State: "NY",
			Neighborhoods: []string{
				"Upper East Side, NY", "Upper West Side, NY", "Harlem, NY", "Chelsea, NY",
				"Greenwich Village, NY", "Tribeca, NY", "SoHo, NY", "Riverdale, NY",
				"Fordham, NY", "Pelham Bay, NY", "Morris Park, NY", "Midtown, NY",
				"Battery Park, NY", "Inwood, NY", "Washington Heights, NY",
			},
			BasePrice: 650000,
			Weight:    0.13,
		},
		{
			Name:  "Chicago",
			State: "IL",
			Neighborhoods: []string{
				"Lincoln Park, IL", "Lakeview, IL", "Wicker Park, IL", "Hyde Park, IL",
				"Evanston, IL", "Oak Park, IL", "Naperville, IL", "Schaumburg, IL",
			},
			BasePrice: 280000,
			Weight:    0.08,
		},
		{
			Name:  "Boston",
			State: "MA",
			Neighborhoods: []string{
				"Back Bay, MA", "Cambridge, MA", "Somerville, MA", "Brookline, MA",
				"Newton, MA", "Quincy, MA", "Medford, MA", "Waltham, MA",
			},
			BasePrice: 420000,
			Weight:    0.055,
		},
		{
			Name:  "Austin",
			State: "TX",
			Neighborhoods: []string{
				"Downtown Austin, TX", "Hyde Park Austin, TX", "Round Rock, TX",
				"Cedar Park, TX", "Pflugerville, TX", "Westlake, TX", "Mueller, TX",
			},
			BasePrice: 220000,
			Weight:    0.04,
		},
		{
			Name:  "Denver",
			State: "CO",
			Neighborhoods: []string{
				"Capitol Hill, CO", "Highlands, CO", "Cherry Creek, CO", "Aurora, CO",
				"Lakewood, CO", "Littleton, CO", "Arvada, CO",
			},
			BasePrice: 260000,
			Weight:    0.03,
		},
		{
			Name:  "Atlanta",
			State: "GA",
			Neighborhoods: []string{
				"Midtown Atlanta, GA", "Buckhead, GA", "Decatur, GA", "Sandy Springs, GA",
				"Marietta, GA", "Alpharetta, GA", "Smyrna, GA",
			},
			BasePrice: 190000,
			Weight:    0.02,
		},
		{
			Name:  "Phoenix",
			State: "AZ",
			Neighborhoods: []string{
				"Scottsdale, AZ", "Tempe, AZ", "Mesa, AZ", "Chandler, AZ",
				"Glendale, AZ", "Gilbert, AZ", "Peoria, AZ",
			},
			BasePrice: 170000,
			Weight:    0.015,
		},
		{
			Name:  "Minneapolis",
			State: "MN",
			Neighborhoods: []string{
				"Uptown, MN", "Northeast Minneapolis, MN", "St. Paul, MN", "Edina, MN",
				"Bloomington, MN", "Plymouth, MN", "Maple Grove, MN",
			},
			BasePrice: 210000,
			Weight:    0.01,
		},
	}
}

// HoodPriceFactor returns the intra-region price multiplier of the i-th of
// n neighborhoods: prominent (early-listed) neighborhoods are pricier, the
// tail cheaper — real metros have this spread, buyers know it (their price
// ranges correlate with the neighborhoods they pick), and it is exactly the
// hood↔price correlation the §5.2 conditional probability model exploits.
func HoodPriceFactor(i, n int) float64 {
	if n <= 1 {
		return 1
	}
	return 1.35 - 0.7*float64(i)/float64(n-1)
}

// RegionOf returns the region containing the given neighborhood and whether
// one exists.
func RegionOf(neighborhood string) (Region, bool) {
	for _, r := range Regions() {
		for _, n := range r.Neighborhoods {
			if n == neighborhood {
				return r, true
			}
		}
	}
	return Region{}, false
}

// PropertyTypes are the categorical property-type domain values, most common
// first.
func PropertyTypes() []string {
	return []string{"Single Family", "Condo", "Townhouse", "Multi-Family", "Mobile Home", "Land"}
}
