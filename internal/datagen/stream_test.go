package datagen

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/relation"
)

// TestStreamMatchesDataset pins the streaming contract: Stream's row i is
// identical to Dataset's row i for the same config — same rng sequence,
// same values, same arity.
func TestStreamMatchesDataset(t *testing.T) {
	cfg := DatasetConfig{Rows: 500, Seed: 11}
	want := Dataset(cfg)
	n := 0
	err := Stream(cfg, func(i int, tup relation.Tuple) error {
		if i != n {
			t.Fatalf("emit index %d, want %d", i, n)
		}
		row := want.Row(i)
		if len(tup) != len(row) {
			t.Fatalf("row %d: arity %d, want %d", i, len(tup), len(row))
		}
		for j := range row {
			if tup[j] != row[j] {
				t.Fatalf("row %d col %d: %v, want %v", i, j, tup[j], row[j])
			}
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != cfg.Rows {
		t.Fatalf("emitted %d rows, want %d", n, cfg.Rows)
	}
}

// TestStreamStopsOnError checks a non-nil emit error halts generation and
// propagates.
func TestStreamStopsOnError(t *testing.T) {
	sentinel := errors.New("stop")
	calls := 0
	err := Stream(DatasetConfig{Rows: 100, Seed: 3}, func(i int, _ relation.Tuple) error {
		calls++
		if i == 6 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if calls != 7 {
		t.Fatalf("emit called %d times, want 7", calls)
	}
}

// TestStreamCSVMatchesWriteCSV pins byte-identity between the constant-memory
// CSV path and materialize-then-WriteCSV.
func TestStreamCSVMatchesWriteCSV(t *testing.T) {
	cfg := DatasetConfig{Rows: 300, Seed: 4}
	var want bytes.Buffer
	if err := Dataset(cfg).WriteCSV(&want); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	n, err := StreamCSV(&got, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n != cfg.Rows {
		t.Fatalf("StreamCSV rows = %d, want %d", n, cfg.Rows)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("streamed CSV differs from materialized CSV (%d vs %d bytes)",
			got.Len(), want.Len())
	}
}

// TestDatasetSegmentRows checks DatasetConfig.SegmentRows reaches the
// relation: at 64-row segments a 300-row dataset seals 4 segments.
func TestDatasetSegmentRows(t *testing.T) {
	r := Dataset(DatasetConfig{Rows: 300, Seed: 2, SegmentRows: 64})
	st := r.StorageStats()
	if st.SegmentRows != 64 {
		t.Fatalf("SegmentRows = %d, want 64", st.SegmentRows)
	}
	if st.Segments != 4 || st.SealedRows != 256 || st.TailRows != 44 {
		t.Fatalf("stats = %+v, want 4 segments / 256 sealed / 44 tail", st)
	}
}
