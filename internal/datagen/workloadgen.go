package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/sqlparse"
)

// WorkloadConfig controls the synthetic buyer-query generator.
type WorkloadConfig struct {
	// Queries is the number of SQL strings to emit. Default 20000.
	Queries int
	// Seed makes generation deterministic. Default 2.
	Seed int64
	// FillerAttrs must match the dataset's so cold-attribute conditions
	// reference real columns. Default 43.
	FillerAttrs int
}

func (c WorkloadConfig) withDefaults() WorkloadConfig {
	if c.Queries == 0 {
		c.Queries = 20000
	}
	if c.Seed == 0 {
		c.Seed = 2
	}
	if c.FillerAttrs == 0 {
		c.FillerAttrs = 43
	}
	return c
}

// Grid spacings for range endpoints: buyers think in round numbers, which is
// what gives workload splitpoints their goodness mass (Figure 5). These
// equal the paper's separation intervals for price/sqft/year.
const (
	PriceGrid = 25000
	SqftGrid  = 250
	YearGrid  = 5
)

// Intervals returns the splitpoint separation intervals to preprocess the
// workload with — the paper's settings (price 5000, square footage 100,
// year-built 5) plus unit grids for the small integer attributes.
func Intervals() map[string]float64 {
	return map[string]float64{
		AttrPrice:     5000,
		AttrSqft:      100,
		AttrYearBuilt: 5,
		AttrBedrooms:  1,
		AttrBaths:     1,
	}
}

// attribute inclusion probabilities, tuned so that with x = 0.4 exactly the
// paper's six attributes survive elimination (neighborhood, price,
// bedroomcount, bathcount, property-type, square footage) and usage order
// mirrors Figure 4(a): neighborhood > bedrooms > price > sqft > year-built.
const (
	pHood  = 0.78
	pBeds  = 0.66
	pPrice = 0.58
	pSqft  = 0.47
	pBath  = 0.44
	pType  = 0.42
	pYear  = 0.24
	pFill  = 0.004
)

// WorkloadSQL generates buyer query strings over ListProperty. Each query
// focuses on one metro region and constrains a random subset of attributes,
// with range endpoints snapped to round-number grids.
func WorkloadSQL(cfg WorkloadConfig) []string {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	regions := Regions()
	out := make([]string, 0, cfg.Queries)
	for len(out) < cfg.Queries {
		q := genQuery(rng, regions, cfg.FillerAttrs)
		if q != "" {
			out = append(out, q)
		}
	}
	return out
}

func genQuery(rng *rand.Rand, regions []Region, fillers int) string {
	reg := pickRegion(rng, regions)
	var conds []string

	// Buyers who target pricier neighborhoods shop pricier bands: the
	// hood↔price correlation of real workloads.
	hoodFactor := 1.0
	if rng.Float64() < pHood {
		k := 2 + rng.Intn(4)
		if k > len(reg.Neighborhoods) {
			k = len(reg.Neighborhoods)
		}
		picked := pickHoods(rng, len(reg.Neighborhoods), k)
		quoted := make([]string, k)
		sum := 0.0
		for i, p := range picked {
			quoted[i] = "'" + strings.ReplaceAll(reg.Neighborhoods[p], "'", "''") + "'"
			sum += HoodPriceFactor(p, len(reg.Neighborhoods))
		}
		hoodFactor = sum / float64(k)
		conds = append(conds, fmt.Sprintf("%s IN (%s)", AttrNeighborhood, strings.Join(quoted, ", ")))
	}
	if rng.Float64() < pPrice {
		lo, hi := priceBand(rng, reg.BasePrice*hoodFactor)
		conds = append(conds, fmt.Sprintf("%s BETWEEN %d AND %d", AttrPrice, int(lo), int(hi)))
	}
	if rng.Float64() < pBeds {
		lo := 1 + rng.Intn(4)
		hi := lo + rng.Intn(3)
		if rng.Float64() < 0.35 {
			conds = append(conds, fmt.Sprintf("%s >= %d", AttrBedrooms, lo))
		} else {
			conds = append(conds, fmt.Sprintf("%s BETWEEN %d AND %d", AttrBedrooms, lo, hi))
		}
	}
	if rng.Float64() < pBath {
		conds = append(conds, fmt.Sprintf("%s >= %d", AttrBaths, 1+rng.Intn(3)))
	}
	if rng.Float64() < pType {
		types := PropertyTypes()
		k := 1 + rng.Intn(2)
		perm := rng.Perm(3)[:k] // buyers mostly pick among the common types
		quoted := make([]string, k)
		for i, p := range perm {
			quoted[i] = "'" + types[p] + "'"
		}
		conds = append(conds, fmt.Sprintf("%s IN (%s)", AttrPropertyType, strings.Join(quoted, ", ")))
	}
	if rng.Float64() < pSqft {
		lo := float64(750 + rng.Intn(8)*SqftGrid)
		hi := lo + float64((2+rng.Intn(8))*SqftGrid)
		conds = append(conds, fmt.Sprintf("%s BETWEEN %d AND %d", AttrSqft, int(lo), int(hi)))
	}
	if rng.Float64() < pYear {
		lo := 1940 + rng.Intn(12)*YearGrid
		conds = append(conds, fmt.Sprintf("%s >= %d", AttrYearBuilt, lo))
	}
	for f := 0; f < fillers; f++ {
		if rng.Float64() < pFill {
			if fillerIsNumeric(f) {
				lo := rng.Intn(500)
				conds = append(conds, fmt.Sprintf("%s BETWEEN %d AND %d", fillerName(f), lo, lo+100))
			} else {
				conds = append(conds, fmt.Sprintf("%s = 'opt%d'", fillerName(f), rng.Intn(8)))
			}
		}
	}
	if len(conds) == 0 {
		return ""
	}
	return fmt.Sprintf("SELECT * FROM %s WHERE %s", TableName, strings.Join(conds, " AND "))
}

// pickHoods samples k distinct neighborhood indexes with popularity skew:
// earlier-listed neighborhoods (the prominent ones) are requested roughly
// harmonically more often, mirroring real hood-demand skew. The result is
// sorted ascending so the emitted SQL is deterministic per draw.
func pickHoods(rng *rand.Rand, n, k int) []int {
	picked := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		// Inverse-CDF of a harmonic-ish weight: squaring the uniform draw
		// biases toward low indexes.
		u := rng.Float64()
		idx := int(u * u * float64(n))
		if idx >= n {
			idx = n - 1
		}
		if picked[idx] {
			// Fall back to the next free slot to guarantee progress.
			for j := 0; j < n; j++ {
				cand := (idx + j) % n
				if !picked[cand] {
					idx = cand
					break
				}
			}
		}
		picked[idx] = true
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

// priceBand returns a buyer's price range around a region's base price, with
// endpoints snapped to the PriceGrid (mostly) or to 5000 (sometimes) — the
// round-number habit that concentrates splitpoint goodness.
func priceBand(rng *rand.Rand, base float64) (lo, hi float64) {
	center := base * (0.6 + rng.Float64()*0.9)
	width := base * (0.15 + rng.Float64()*0.5)
	grid := float64(PriceGrid)
	switch r := rng.Float64(); {
	case r < 0.35:
		grid = 5000
	case r < 0.50:
		grid = 10000
	}
	lo = math.Max(grid, math.Round((center-width/2)/grid)*grid)
	hi = math.Max(lo+grid, math.Round((center+width/2)/grid)*grid)
	return lo, hi
}

// Broaden derives the user query Qw from a synthetic exploration W per §6.2:
// the neighborhood IN-list is expanded to every neighborhood in W's region
// and all other selection conditions are dropped. It reports false when W
// carries no neighborhood condition (such W are skipped as study
// explorations, since the broadening strategy is region-based).
func Broaden(w *sqlparse.Query) (*sqlparse.Query, bool) {
	cond := w.Cond(AttrNeighborhood)
	if cond == nil || cond.IsRange || len(cond.Values) == 0 {
		return nil, false
	}
	reg, ok := RegionOf(cond.Values[0])
	if !ok {
		return nil, false
	}
	q := &sqlparse.Query{Table: w.Table}
	q.SetCond(&sqlparse.Condition{
		Attr:   AttrNeighborhood,
		Values: append([]string(nil), reg.Neighborhoods...),
	})
	return q, true
}

// Narrow derives a simulated subject's private interest from a study task:
// a random subset of the task's neighborhoods, a tighter price band, and a
// bedroom preference. The result always implies the task query, so every
// tuple the subject deems relevant lies in the task's result set.
func Narrow(task *sqlparse.Query, rng *rand.Rand) *sqlparse.Query {
	q := task.Clone()
	if c := q.Cond(AttrNeighborhood); c != nil && !c.IsRange && len(c.Values) > 1 {
		k := 1 + rng.Intn(minInt(3, len(c.Values)))
		perm := rng.Perm(len(c.Values))[:k]
		sort.Ints(perm)
		vals := make([]string, k)
		for i, p := range perm {
			vals[i] = c.Values[p]
		}
		q.SetCond(&sqlparse.Condition{Attr: AttrNeighborhood, Values: vals})
	}
	if c := q.Cond(AttrPrice); c != nil && c.IsRange && c.LoSet && c.HiSet && c.Hi-c.Lo > 2*PriceGrid {
		span := c.Hi - c.Lo
		lo := c.Lo + math.Floor(rng.Float64()*span/2/PriceGrid)*PriceGrid
		hi := lo + math.Max(PriceGrid, math.Floor(span/2/PriceGrid)*PriceGrid)
		if hi > c.Hi {
			hi = c.Hi
		}
		q.SetCond(&sqlparse.Condition{Attr: AttrPrice, IsRange: true, Lo: lo, LoSet: true, Hi: hi, HiSet: true})
	}
	if q.Cond(AttrBedrooms) == nil && rng.Float64() < 0.6 {
		lo := 2 + rng.Intn(3)
		q.SetCond(&sqlparse.Condition{Attr: AttrBedrooms, IsRange: true,
			Lo: float64(lo), LoSet: true, Hi: float64(lo + 1), HiSet: true})
	}
	return q
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Tasks returns the four §6.3 real-life study tasks, phrased over the
// synthetic regions. Price bounds are scaled to the synthetic price levels
// but keep the paper's shape (an upper bound, a band, a band plus bedrooms).
func Tasks() []*sqlparse.Query {
	regions := Regions()
	seattle := regions[0]
	bay := regions[1]
	nyc := regions[2]
	mk := func(hoods []string, conds ...*sqlparse.Condition) *sqlparse.Query {
		q := &sqlparse.Query{Table: TableName}
		q.SetCond(&sqlparse.Condition{Attr: AttrNeighborhood, Values: append([]string(nil), hoods...)})
		for _, c := range conds {
			q.SetCond(c)
		}
		return q
	}
	price := func(lo, hi float64) *sqlparse.Condition {
		c := &sqlparse.Condition{Attr: AttrPrice, IsRange: true}
		if lo > 0 {
			c.Lo, c.LoSet = lo, true
		}
		if hi > 0 {
			c.Hi, c.HiSet = hi, true
		}
		return c
	}
	return []*sqlparse.Query{
		// Task 1: any Seattle/Bellevue neighborhood, price < 1M.
		mk(seattle.Neighborhoods, price(0, 1000000)),
		// Task 2: Bay Area, price between 300K and 500K.
		mk(bay.Neighborhoods, price(300000, 500000)),
		// Task 3: 15 selected NYC neighborhoods, price < 1M.
		mk(nyc.Neighborhoods[:15], price(0, 1000000)),
		// Task 4: Seattle/Bellevue, price 200K-400K, 3-4 bedrooms.
		mk(seattle.Neighborhoods, price(200000, 400000),
			&sqlparse.Condition{Attr: AttrBedrooms, IsRange: true, Lo: 3, LoSet: true, Hi: 4, HiSet: true}),
	}
}
