package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/relation"
)

// TableName is the fact table name used by dataset and workload alike.
const TableName = "ListProperty"

// Primary attribute names (the six the paper's x=0.4 elimination retains,
// plus the locational and temporal ones).
const (
	AttrNeighborhood = "neighborhood"
	AttrCity         = "city"
	AttrState        = "state"
	AttrZipcode      = "zipcode"
	AttrPrice        = "price"
	AttrBedrooms     = "bedroomcount"
	AttrBaths        = "bathcount"
	AttrYearBuilt    = "yearbuilt"
	AttrPropertyType = "propertytype"
	AttrSqft         = "squarefootage"
)

// DatasetConfig controls the synthetic ListProperty generator.
type DatasetConfig struct {
	// Rows is the number of homes to generate. Default 100000.
	Rows int
	// Seed makes generation deterministic. Default 1.
	Seed int64
	// FillerAttrs is the number of additional rarely-queried attributes
	// (mirroring the 53-attribute MSN table of which only 6 survive
	// elimination). Default 43, giving 53 attributes total.
	FillerAttrs int
	// SegmentRows, when non-zero, sets the sealed-segment size of the
	// relation Dataset materializes (relation.SetSegmentRows). Zero keeps
	// relation.DefaultSegmentRows. Ignored by the streaming paths, which
	// never build a relation.
	SegmentRows int
}

func (c DatasetConfig) withDefaults() DatasetConfig {
	if c.Rows == 0 {
		c.Rows = 100000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.FillerAttrs == 0 {
		c.FillerAttrs = 43
	}
	return c
}

// fillerName returns the i-th filler attribute name. The first few carry
// realistic names so example output reads naturally; the rest are numbered.
func fillerName(i int) string {
	named := []string{
		"lotsize", "garagespaces", "stories", "hoafee", "heatingtype",
		"coolingtype", "fireplacecount", "haspool", "viewtype", "waterfront",
		"basementtype", "rooftype", "flooring", "parkingtype", "schooldistrict",
		"listingagent",
	}
	if i < len(named) {
		return named[i]
	}
	return fmt.Sprintf("feature%02d", i-len(named)+1)
}

// fillerIsNumeric alternates filler types so both partitioners see cold
// attributes.
func fillerIsNumeric(i int) bool { return i%2 == 0 }

// Schema returns the ListProperty schema for the given config.
func Schema(cfg DatasetConfig) *relation.Schema {
	cfg = cfg.withDefaults()
	attrs := []relation.Attribute{
		{Name: AttrNeighborhood, Type: relation.Categorical},
		{Name: AttrCity, Type: relation.Categorical},
		{Name: AttrState, Type: relation.Categorical},
		{Name: AttrZipcode, Type: relation.Categorical},
		{Name: AttrPrice, Type: relation.Numeric},
		{Name: AttrBedrooms, Type: relation.Numeric},
		{Name: AttrBaths, Type: relation.Numeric},
		{Name: AttrYearBuilt, Type: relation.Numeric},
		{Name: AttrPropertyType, Type: relation.Categorical},
		{Name: AttrSqft, Type: relation.Numeric},
	}
	for i := 0; i < cfg.FillerAttrs; i++ {
		typ := relation.Categorical
		if fillerIsNumeric(i) {
			typ = relation.Numeric
		}
		attrs = append(attrs, relation.Attribute{Name: fillerName(i), Type: typ})
	}
	return relation.MustSchema(attrs...)
}

// Stream generates the synthetic ListProperty rows one at a time, handing
// each freshly allocated tuple to emit without materializing a relation —
// memory use is constant in cfg.Rows. The rng call sequence is exactly
// Dataset's, so row i of Stream equals row i of Dataset(cfg) for the same
// config (pinned by TestStreamMatchesDataset). A non-nil error from emit
// stops generation and is returned.
func Stream(cfg DatasetConfig, emit func(i int, t relation.Tuple) error) error {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	regions := Regions()
	types := PropertyTypes()
	typeWeights := []float64{0.52, 0.22, 0.12, 0.07, 0.04, 0.03}
	for i := 0; i < cfg.Rows; i++ {
		reg := pickRegion(rng, regions)
		hoodIdx := rng.Intn(len(reg.Neighborhoods))
		hood := reg.Neighborhoods[hoodIdx]
		city, state := splitHood(hood)
		zip := zipFor(hood, rng.Intn(3))

		beds := pickBedrooms(rng)
		ptype := types[pickWeighted(rng, typeWeights)]
		// Sqft scales with bedrooms plus noise; condos run smaller.
		sqft := 450 + beds*420 + rng.NormFloat64()*320
		if ptype == "Condo" {
			sqft *= 0.72
		}
		if sqft < 350 {
			sqft = 350 + rng.Float64()*150
		}
		sqft = math.Round(sqft/10) * 10
		// Price: log-normal around the region base, boosted by size and the
		// neighborhood's intra-region price level.
		sizeBoost := sqft / (450 + 3.2*420) // ≈1 for an average home
		price := reg.BasePrice * HoodPriceFactor(hoodIdx, len(reg.Neighborhoods)) *
			sizeBoost * math.Exp(rng.NormFloat64()*0.45)
		if price < 40000 {
			price = 40000 + rng.Float64()*20000
		}
		if price > 5000000 {
			price = 5000000
		}
		price = math.Round(price/100) * 100
		baths := 1 + math.Floor(beds/2) + float64(rng.Intn(2))
		year := pickYear(rng)

		tuple := relation.Tuple{
			relation.StringValue(hood),
			relation.StringValue(city),
			relation.StringValue(state),
			relation.StringValue(zip),
			relation.NumberValue(price),
			relation.NumberValue(beds),
			relation.NumberValue(baths),
			relation.NumberValue(year),
			relation.StringValue(ptype),
			relation.NumberValue(sqft),
		}
		for f := 0; f < cfg.FillerAttrs; f++ {
			if fillerIsNumeric(f) {
				tuple = append(tuple, relation.NumberValue(float64(rng.Intn(1000))))
			} else {
				tuple = append(tuple, relation.StringValue(fmt.Sprintf("opt%d", rng.Intn(8))))
			}
		}
		if err := emit(i, tuple); err != nil {
			return err
		}
	}
	return nil
}

// Dataset generates the synthetic ListProperty relation: Rows homes across
// the metro regions with correlated price, size and bedroom counts. It is
// the materializing wrapper around Stream.
func Dataset(cfg DatasetConfig) *relation.Relation {
	cfg = cfg.withDefaults()
	r := relation.New(TableName, Schema(cfg))
	if cfg.SegmentRows > 0 {
		if err := r.SetSegmentRows(cfg.SegmentRows); err != nil {
			panic(err) // unreachable: the relation is empty and SegmentRows ≥ 1
		}
	}
	r.Grow(cfg.Rows)
	if err := Stream(cfg, func(_ int, t relation.Tuple) error {
		return r.Append(t)
	}); err != nil {
		panic(err) // unreachable: tuples match Schema(cfg) by construction
	}
	return r
}

func pickRegion(rng *rand.Rand, regions []Region) Region {
	total := 0.0
	for _, r := range regions {
		total += r.Weight
	}
	x := rng.Float64() * total
	for _, r := range regions {
		x -= r.Weight
		if x <= 0 {
			return r
		}
	}
	return regions[len(regions)-1]
}

func pickWeighted(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

// pickBedrooms skews toward 3-4 bedroom homes (1..9).
func pickBedrooms(rng *rand.Rand) float64 {
	weights := []float64{0.06, 0.16, 0.30, 0.26, 0.12, 0.06, 0.02, 0.01, 0.01}
	return float64(1 + pickWeighted(rng, weights))
}

// pickYear skews toward recent construction, 1900-2004.
func pickYear(rng *rand.Rand) float64 {
	u := rng.Float64()
	return math.Round(1900 + 104*math.Pow(u, 0.55))
}

func splitHood(hood string) (city, state string) {
	for i := len(hood) - 1; i >= 0; i-- {
		if hood[i] == ',' {
			return hood[:i], hood[i+2:]
		}
	}
	return hood, ""
}

// zipFor derives a stable pseudo-zipcode from the neighborhood name.
func zipFor(hood string, variant int) string {
	h := uint32(2166136261)
	for i := 0; i < len(hood); i++ {
		h ^= uint32(hood[i])
		h *= 16777619
	}
	return fmt.Sprintf("%05d", 10000+(h%80000)+uint32(variant))
}
