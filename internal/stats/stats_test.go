package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func close(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPearsonPerfectPositive(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(x, y)
	if err != nil || !close(r, 1) {
		t.Fatalf("Pearson = %v, %v; want 1", r, err)
	}
}

func TestPearsonPerfectNegative(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{8, 6, 4, 2}
	r, _ := Pearson(x, y)
	if !close(r, -1) {
		t.Fatalf("Pearson = %v; want -1", r)
	}
}

func TestPearsonKnownValue(t *testing.T) {
	// Hand-checked example.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 3, 2, 5, 4}
	r, _ := Pearson(x, y)
	if !close(r, 0.8) {
		t.Fatalf("Pearson = %v; want 0.8", r)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	r, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(r) {
		t.Fatalf("Pearson with constant x = %v; want NaN", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
}

// TestPearsonBounds is the |r| ≤ 1 property.
func TestPearsonBounds(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 100
			y[i] = rng.NormFloat64() * 100
		}
		r, err := Pearson(x, y)
		if err != nil {
			return false
		}
		return math.IsNaN(r) || (r >= -1-1e-9 && r <= 1+1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPearsonInvariantToAffine: r is invariant under positive affine
// transforms of either variable.
func TestPearsonInvariantToAffine(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64() * 100
			y[i] = x[i]*3 + rng.NormFloat64()*10
		}
		r1, _ := Pearson(x, y)
		scaled := make([]float64, n)
		for i := range x {
			scaled[i] = 7*x[i] + 40
		}
		r2, _ := Pearson(scaled, y)
		if math.IsNaN(r1) || math.IsNaN(r2) {
			return true
		}
		return math.Abs(r1-r2) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFitThroughOrigin(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{2.2, 4.4, 6.6}
	b, err := FitThroughOrigin(x, y)
	if err != nil || !close(b, 2.2) {
		t.Fatalf("slope = %v, %v; want 2.2", b, err)
	}
}

func TestFitThroughOriginErrors(t *testing.T) {
	if _, err := FitThroughOrigin([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("all-zero x should error")
	}
	if _, err := FitThroughOrigin([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
}

// TestFitResidualOrthogonality: for the least-squares slope, Σx(y−bx) = 0.
func TestFitResidualOrthogonality(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		x := make([]float64, n)
		y := make([]float64, n)
		ok := false
		for i := range x {
			x[i] = rng.Float64()*100 - 50
			y[i] = rng.Float64()*100 - 50
			if x[i] != 0 {
				ok = true
			}
		}
		if !ok {
			return true
		}
		b, err := FitThroughOrigin(x, y)
		if err != nil {
			return true
		}
		dot := 0.0
		for i := range x {
			dot += x[i] * (y[i] - b*x[i])
		}
		return math.Abs(dot) < 1e-6*float64(n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanMedianStdDev(t *testing.T) {
	x := []float64{4, 1, 3, 2}
	if !close(Mean(x), 2.5) {
		t.Errorf("Mean = %v", Mean(x))
	}
	if !close(Median(x), 2.5) {
		t.Errorf("Median = %v", Median(x))
	}
	if !close(Median([]float64{3, 1, 2}), 2) {
		t.Errorf("odd Median = %v", Median([]float64{3, 1, 2}))
	}
	if !close(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2) {
		t.Errorf("StdDev = %v; want 2", StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
	if Mean(nil) != 0 || Median(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty-slice helpers should return 0")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	x := []float64{3, 1, 2}
	Median(x)
	if x[0] != 3 || x[1] != 1 || x[2] != 2 {
		t.Fatalf("Median mutated input: %v", x)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || !close(s.Mean, 2.5) || !close(s.Median, 2.5) || s.Min != 1 || s.Max != 4 {
		t.Fatalf("Summary = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty Summarize = %+v", z)
	}
}

func TestCorrelate(t *testing.T) {
	if r, ok := Correlate([]float64{1, 2, 3}, []float64{2, 4, 6}); !ok || !close(r, 1) {
		t.Fatalf("Correlate = %v,%v", r, ok)
	}
	if _, ok := Correlate([]float64{1}, []float64{2}); ok {
		t.Fatal("Correlate with one point should report !ok")
	}
	if _, ok := Correlate([]float64{1, 1}, []float64{2, 4}); ok {
		t.Fatal("Correlate with zero variance should report !ok")
	}
}
