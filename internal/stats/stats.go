// Package stats provides the small statistical toolkit the paper's
// evaluation uses: Pearson's correlation coefficient (Tables 1 and 2), the
// zero-intercept least-squares trend line of Figure 7, and summary helpers
// for averaging costs across explorations.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Pearson returns Pearson's correlation coefficient between x and y. It
// returns an error when the lengths differ or fewer than two points are
// given; it returns NaN when either variable has zero variance (the
// coefficient is undefined there).
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, fmt.Errorf("stats: need at least 2 points, got %d", len(x))
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN(), nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// FitThroughOrigin returns the slope b of the least-squares line y = b·x
// with zero intercept (the Figure 7 trend line). It returns an error on
// length mismatch or when x is identically zero.
func FitThroughOrigin(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(x), len(y))
	}
	var sxy, sxx float64
	for i := range x {
		sxy += x[i] * y[i]
		sxx += x[i] * x[i]
	}
	if sxx == 0 {
		return 0, fmt.Errorf("stats: x has no variation through the origin")
	}
	return sxy / sxx, nil
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	return sum / float64(len(x))
}

// StdDev returns the population standard deviation, or 0 for fewer than two
// points.
func StdDev(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var ss float64
	for _, v := range x {
		ss += (v - m) * (v - m)
	}
	return math.Sqrt(ss / float64(len(x)))
}

// Median returns the median, or 0 for an empty slice. The input is not
// modified.
func Median(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Summary bundles descriptive statistics of one series.
type Summary struct {
	N            int
	Mean, Median float64
	Min, Max     float64
	StdDev       float64
}

// Summarize computes a Summary. The zero Summary is returned for an empty
// series.
func Summarize(x []float64) Summary {
	if len(x) == 0 {
		return Summary{}
	}
	s := Summary{
		N:      len(x),
		Mean:   Mean(x),
		Median: Median(x),
		Min:    x[0],
		Max:    x[0],
		StdDev: StdDev(x),
	}
	for _, v := range x {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	return s
}

// Correlate is Pearson over paired (estimated, actual) cost samples,
// tolerating the degenerate cases the user studies hit (a subject with too
// few explorations): it returns 0 and false instead of an error.
func Correlate(est, act []float64) (float64, bool) {
	r, err := Pearson(est, act)
	if err != nil || math.IsNaN(r) {
		return 0, false
	}
	return r, true
}
