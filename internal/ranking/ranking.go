// Package ranking implements workload-based tuple ranking — the technique
// the paper names as categorization's complement (§2, citing Agrawal,
// Chaudhuri & Das, "Automated Ranking of Database Query Results"). Tuples
// whose attribute values past users requested often rank higher, following
// the query-frequency (QF) similarity idea of that work: the workload is
// evidence of global preference.
//
// Ranking composes with categorization two ways: ordering a flat result list
// (the search-engine presentation), and ordering the tuples *inside* each
// leaf category so the ONE-scenario user meets a popular tuple sooner.
package ranking

import (
	"math"
	"sort"

	"repro/internal/relation"
	"repro/internal/workload"
)

// Ranker scores tuples by workload popularity. Build one per
// (stats, relation-schema) pair; it precomputes per-attribute normalizers
// and is read-only afterwards (safe for concurrent use).
type Ranker struct {
	stats *workload.Stats
	// attrs lists the schema attributes that the workload ever filters on,
	// with their positions and type; others contribute nothing to scores.
	attrs []rankAttr
}

type rankAttr struct {
	name    string
	pos     int
	numeric bool
	// weight is the attribute's share of workload attention (NAttr/N); an
	// attribute nobody filters on cannot express preference.
	weight float64
	// maxOcc normalizes categorical QF scores.
	maxOcc float64
}

// New builds a Ranker for relations with the given schema.
func New(stats *workload.Stats, schema *relation.Schema) *Ranker {
	r := &Ranker{stats: stats}
	for i := 0; i < schema.Len(); i++ {
		a := schema.Attr(i)
		w := stats.UsageFraction(a.Name)
		if w == 0 {
			continue
		}
		ra := rankAttr{
			name:    a.Name,
			pos:     i,
			numeric: a.Type == relation.Numeric,
			weight:  w,
		}
		r.attrs = append(r.attrs, ra)
	}
	return r
}

// Score returns the tuple's workload-popularity score: the weighted sum,
// over the attributes past users filter on, of how requested the tuple's
// value is. Categorical values contribute their relative occurrence count
// occ(v)/NAttr (the QF fraction); numeric values contribute the fraction of
// workload ranges on the attribute that contain them.
func (r *Ranker) Score(rel *relation.Relation, row int) float64 {
	t := rel.Row(row)
	score := 0.0
	for _, a := range r.attrs {
		nAttr := r.stats.NAttr(a.name)
		if nAttr == 0 {
			continue
		}
		var qf float64
		if a.numeric {
			v := t[a.pos].Num
			qf = float64(r.stats.NOverlapRange(a.name, v, math.Nextafter(v, math.Inf(1)))) / float64(nAttr)
		} else {
			qf = float64(r.stats.Occ(a.name, t[a.pos].Str)) / float64(nAttr)
		}
		score += a.weight * qf
	}
	return score
}

// Rank returns the row indices reordered by descending score; ties keep
// their input order (stable), so ranking is deterministic. The input slice
// is not modified.
func (r *Ranker) Rank(rel *relation.Relation, rows []int) []int {
	type scored struct {
		row   int
		score float64
	}
	out := make([]scored, len(rows))
	for i, row := range rows {
		out[i] = scored{row: row, score: r.Score(rel, row)}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].score > out[j].score })
	ranked := make([]int, len(rows))
	for i, s := range out {
		ranked[i] = s.row
	}
	return ranked
}
