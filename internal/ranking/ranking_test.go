package ranking

import (
	"fmt"
	"testing"

	"repro/internal/category"
	"repro/internal/explore"
	"repro/internal/relation"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

func rankSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Attribute{Name: "neighborhood", Type: relation.Categorical},
		relation.Attribute{Name: "price", Type: relation.Numeric},
	)
}

// rankStats: Bellevue is requested 3× more than Seattle; prices cluster in
// 200-250k.
func rankStats(t *testing.T) *workload.Stats {
	t.Helper()
	var queries []string
	for i := 0; i < 30; i++ {
		queries = append(queries, "SELECT * FROM T WHERE neighborhood IN ('Bellevue, WA') AND price BETWEEN 200000 AND 250000")
	}
	for i := 0; i < 10; i++ {
		queries = append(queries, "SELECT * FROM T WHERE neighborhood IN ('Seattle, WA')")
	}
	w, err := workload.ParseStrings(queries)
	if err != nil {
		t.Fatal(err)
	}
	return workload.Preprocess(w, workload.Config{Intervals: map[string]float64{"price": 25000}})
}

func rankRelation() *relation.Relation {
	r := relation.New("T", rankSchema())
	rows := []struct {
		n string
		p float64
	}{
		{"Seattle, WA", 400000},  // 0: unpopular hood, unpopular price
		{"Bellevue, WA", 220000}, // 1: popular hood, popular price
		{"Seattle, WA", 230000},  // 2: unpopular hood, popular price
		{"Bellevue, WA", 500000}, // 3: popular hood, unpopular price
	}
	for _, row := range rows {
		r.MustAppend(relation.Tuple{relation.StringValue(row.n), relation.NumberValue(row.p)})
	}
	return r
}

func TestScoreOrdering(t *testing.T) {
	stats := rankStats(t)
	rel := rankRelation()
	rk := New(stats, rel.Schema())
	s := make([]float64, rel.Len())
	for i := range s {
		s[i] = rk.Score(rel, i)
	}
	// Popular hood + popular price must dominate; unpopular both must trail.
	if !(s[1] > s[3] && s[1] > s[2] && s[1] > s[0]) {
		t.Fatalf("tuple 1 should rank best: scores %v", s)
	}
	if !(s[0] < s[2] && s[0] < s[3]) {
		t.Fatalf("tuple 0 should rank worst: scores %v", s)
	}
}

func TestRankStableAndNonMutating(t *testing.T) {
	stats := rankStats(t)
	rel := rankRelation()
	rk := New(stats, rel.Schema())
	rows := []int{0, 1, 2, 3}
	ranked := rk.Rank(rel, rows)
	if rows[0] != 0 || rows[3] != 3 {
		t.Fatal("Rank mutated its input")
	}
	if ranked[0] != 1 {
		t.Fatalf("ranked[0] = %d; want tuple 1", ranked[0])
	}
	if len(ranked) != 4 {
		t.Fatalf("ranked length %d", len(ranked))
	}
	again := rk.Rank(rel, rows)
	for i := range ranked {
		if ranked[i] != again[i] {
			t.Fatal("Rank not deterministic")
		}
	}
}

func TestRankerIgnoresUnfilteredAttrs(t *testing.T) {
	// A workload that never filters: every tuple scores 0 and order is
	// preserved (stable).
	w, _ := workload.ParseStrings([]string{"SELECT * FROM T"})
	stats := workload.Preprocess(w, workload.Config{})
	rel := rankRelation()
	rk := New(stats, rel.Schema())
	ranked := rk.Rank(rel, []int{2, 0, 3, 1})
	want := []int{2, 0, 3, 1}
	for i := range want {
		if ranked[i] != want[i] {
			t.Fatalf("order not preserved under zero scores: %v", ranked)
		}
	}
}

// bigRankFixture builds a relation + tree + workload where popularity
// correlates with a typical user's interest.
func bigRankFixture(t *testing.T) (*workload.Stats, *relation.Relation, *category.Tree) {
	t.Helper()
	var queries []string
	for i := 0; i < 60; i++ {
		queries = append(queries, fmt.Sprintf(
			"SELECT * FROM T WHERE neighborhood IN ('Bellevue, WA') AND price BETWEEN %d AND %d",
			200000+(i%2)*25000, 225000+(i%2)*25000))
	}
	for i := 0; i < 20; i++ {
		queries = append(queries, "SELECT * FROM T WHERE neighborhood IN ('Seattle, WA') AND price BETWEEN 300000 AND 400000")
	}
	w, err := workload.ParseStrings(queries)
	if err != nil {
		t.Fatal(err)
	}
	stats := workload.Preprocess(w, workload.Config{Intervals: map[string]float64{"price": 25000}})

	rel := relation.New("T", rankSchema())
	hoods := []string{"Bellevue, WA", "Seattle, WA"}
	for i := 0; i < 400; i++ {
		rel.MustAppend(relation.Tuple{
			relation.StringValue(hoods[i%2]),
			relation.NumberValue(200000 + float64((i*7)%40)*5000),
		})
	}
	cat := category.NewCategorizer(stats, category.Options{M: 25, X: 0.1})
	tree, err := cat.Categorize(rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	return stats, rel, tree
}

func TestRankTreePreservesMembership(t *testing.T) {
	stats, rel, tree := bigRankFixture(t)
	before := map[*category.Node]map[int]bool{}
	tree.Root.Walk(func(n *category.Node, _ int) bool {
		set := make(map[int]bool, len(n.Tset))
		for _, i := range n.Tset {
			set[i] = true
		}
		before[n] = set
		return true
	})
	RankTree(New(stats, rel.Schema()), tree)
	if err := tree.Validate(); err != nil {
		t.Fatalf("ranked tree invalid: %v", err)
	}
	tree.Root.Walk(func(n *category.Node, _ int) bool {
		if len(n.Tset) != len(before[n]) {
			t.Fatalf("node %q tset size changed", n.Label)
		}
		for _, i := range n.Tset {
			if !before[n][i] {
				t.Fatalf("node %q gained tuple %d", n.Label, i)
			}
		}
		return true
	})
}

func TestRankTreeOrdersLeavesByScore(t *testing.T) {
	stats, rel, tree := bigRankFixture(t)
	rk := New(stats, rel.Schema())
	RankTree(rk, tree)
	tree.Root.Walk(func(n *category.Node, _ int) bool {
		for i := 1; i < len(n.Tset); i++ {
			if rk.Score(rel, n.Tset[i]) > rk.Score(rel, n.Tset[i-1])+1e-12 {
				t.Fatalf("node %q tuples not in descending score order", n.Label)
			}
		}
		return true
	})
}

// TestRankingImprovesOneScenario reproduces the §2 complementarity claim:
// for a user whose interest matches the workload majority, ranking the flat
// list (and the tree leaves) lowers the ONE-scenario cost.
func TestRankingImprovesOneScenario(t *testing.T) {
	stats, rel, tree := bigRankFixture(t)
	rk := New(stats, rel.Schema())

	// The majority-taste user: Bellevue, 200-225k — matches the dominant
	// workload queries, so popular tuples are relevant to her.
	intent := &explore.Intent{Query: sqlparse.MustParse(
		"SELECT * FROM T WHERE neighborhood IN ('Bellevue, WA') AND price BETWEEN 200000 AND 225000")}
	ex := &explore.Explorer{K: 1}

	flatBefore := explore.FlatOne(tree, intent)
	treeBefore := ex.One(tree, intent)
	RankTree(rk, tree)
	// Rank the flat presentation too: root tset is the whole result.
	treeAfter := ex.One(tree, intent)
	flatAfter := explore.FlatOne(tree, intent)

	if !flatBefore.Found || !flatAfter.Found || !treeBefore.Found || !treeAfter.Found {
		t.Fatal("user should always find a relevant tuple")
	}
	if flatAfter.TuplesExamined > flatBefore.TuplesExamined {
		t.Errorf("ranking worsened the flat scan: %d -> %d tuples",
			flatBefore.TuplesExamined, flatAfter.TuplesExamined)
	}
	if treeAfter.Cost(1) > treeBefore.Cost(1) {
		t.Errorf("ranking worsened the tree exploration: %.0f -> %.0f",
			treeBefore.Cost(1), treeAfter.Cost(1))
	}
}
