package ranking

import (
	"sort"

	"repro/internal/category"
	"repro/internal/relation"
)

// RankTree reorders the tuple-set of every category in the tree by
// descending workload popularity. Category membership is untouched — only
// the presentation order within each tset changes — so a ONE-scenario user
// doing SHOWTUPLES anywhere in the tree reaches globally popular tuples
// first. This is the "categorization and ranking in complement" composition
// of §2.
func RankTree(r *Ranker, tree *category.Tree) {
	// Score each distinct tuple once; nodes share tuples with ancestors.
	scores := make(map[int]float64, len(tree.Root.Tset))
	for _, row := range tree.Root.Tset {
		scores[row] = r.Score(tree.R, row)
	}
	tree.Root.Walk(func(n *category.Node, _ int) bool {
		sortByScore(n.Tset, scores)
		return true
	})
}

// sortByScore stable-sorts rows by descending precomputed score.
func sortByScore(rows []int, scores map[int]float64) {
	type pair struct {
		row   int
		score float64
	}
	tmp := make([]pair, len(rows))
	for i, row := range rows {
		tmp[i] = pair{row, scores[row]}
	}
	sort.SliceStable(tmp, func(i, j int) bool { return tmp[i].score > tmp[j].score })
	for i, p := range tmp {
		rows[i] = p.row
	}
}

// RankRows is Rank over an arbitrary row set of rel — the flat ranked-list
// presentation.
func RankRows(r *Ranker, rel *relation.Relation, rows []int) []int {
	return r.Rank(rel, rows)
}
