package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/resilience/faultinject"
)

// The chaos suite (`make chaos`, DESIGN.md §10): hammer the resilient
// serving path under seeded fault injection — latency, stalls, and panics at
// every named site, plus client hang-ups — and assert the safety properties
// that matter:
//
//   - the process survives and every request resolves to 200, 499, 503, or 504;
//   - a cache hit is never a degraded tree (degraded results are not stored);
//   - no waiter is stranded (the hammer drains) and no goroutines leak;
//   - the limiter returns to idle and the server still serves cleanly after
//     the faults stop.

// chaosStatuses are the only statuses the resilient serving path may emit
// for well-formed requests, whatever faults fire underneath.
var chaosStatuses = map[int]bool{
	http.StatusOK:                 true,
	StatusClientClosedRequest:     true,
	http.StatusServiceUnavailable: true,
	http.StatusGatewayTimeout:     true,
}

func TestChaosServing(t *testing.T) {
	srv, err := New(Config{
		System:        newServeSystem(t, true),
		Learn:         true,
		MaxDepth:      3,
		MaxChildren:   8,
		MaxConcurrent: 4,
		MaxQueue:      8,
		Deadline:      300 * time.Millisecond,
		SoftBudget:    100 * time.Millisecond,
		Degrade:       true,
	})
	if err != nil {
		t.Fatal(err)
	}

	inj := faultinject.New(42)
	inj.Set(faultinject.SiteCategorizeStart, faultinject.Rule{P: 0.2, Latency: 5 * time.Millisecond})
	inj.Set(faultinject.SiteCategorizeLevel, faultinject.Rule{P: 0.1, Latency: 3 * time.Millisecond})
	inj.Set(faultinject.SiteBaseline, faultinject.Rule{P: 0.1, Latency: 2 * time.Millisecond})
	inj.Set(faultinject.SiteCacheCompute, faultinject.Rule{P: 0.05, Panic: true})
	inj.Set(faultinject.SiteServeBuild, faultinject.Rule{P: 0.03, Stall: true})
	restore := faultinject.Activate(inj)
	defer restore()

	mix := append(append([]string{}, spellings...), distinctSQL...)
	mix = append(mix, "SELECT * FROM ListProperty WHERE bedroomcount >= 3")

	post := func(ctx context.Context, sql string) (int, http.Header) {
		raw, _ := json.Marshal(queryRequest{SQL: sql})
		req := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(raw)).WithContext(ctx)
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		return rec.Code, rec.Header()
	}

	baseline := runtime.NumGoroutine()

	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	problems := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctx := context.Background()
				if (w+i)%7 == 0 {
					// A slice of the traffic hangs up early, like real clients.
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, 20*time.Millisecond)
					defer cancel()
				}
				code, hdr := post(ctx, mix[(w*perWorker+i)%len(mix)])
				if !chaosStatuses[code] {
					problems <- fmt.Errorf("worker %d req %d: status %d outside {200,499,503,504}", w, i, code)
				}
				if code == http.StatusOK && hdr.Get("X-Cache") == "hit" && hdr.Get("X-Degraded") != "" {
					problems <- fmt.Errorf("worker %d req %d: cache hit served a degraded tree (%s)", w, i, hdr.Get("X-Degraded"))
				}
			}
		}(w)
	}

	// The hammer must drain: a stranded waiter would hang here.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("chaos hammer did not drain — stranded waiter or deadlock")
	}
	close(problems)
	for err := range problems {
		t.Error(err)
	}

	// The limiter returns to idle.
	stats := srv.limiter.Stats()
	if stats.InFlight != 0 || stats.QueueDepth != 0 {
		t.Errorf("limiter not idle after drain: %+v", stats)
	}

	// Bounded goroutine count after drain: injected stalls hold compute
	// goroutines only until their last waiter leaves, so the count must
	// settle back near the pre-hammer baseline.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+8 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Deterministic aftermath: a certain panic is a 503 and the process
	// survives it; with the faults gone the same server serves 200s again.
	certain := faultinject.New(1)
	certain.Set(faultinject.SiteCategorizeStart, faultinject.Rule{Panic: true})
	restore2 := faultinject.Activate(certain)
	if code, _ := post(context.Background(), distinctSQL[0]); code != http.StatusServiceUnavailable {
		t.Errorf("certain panic: status %d; want 503", code)
	}
	restore2()
	restore()
	if code, _ := post(context.Background(), distinctSQL[0]); code != http.StatusOK {
		t.Errorf("after faults removed: status %d; want 200", code)
	}

	// Health endpoint is intact and reports the carnage.
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz after chaos: %d", rec.Code)
	}
	var health struct {
		Resilience healthResilience `json:"resilience"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Resilience.Serving.Panics == 0 {
		t.Error("healthz reports zero panics after a certain injected panic")
	}
	if health.Resilience.Admission.Admitted == 0 {
		t.Error("healthz reports zero admitted requests after the hammer")
	}
}
