package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/resilience/faultinject"
)

// Tests for the resilient serving path (DESIGN.md §10): degradation under an
// exhausted budget, the 504/499 split, admission shedding, panic isolation,
// and drain mode.

// healthResilience decodes /healthz's resilience block.
type healthResilience struct {
	Serving struct {
		Panics           uint64 `json:"panics"`
		DegradedAttrCost uint64 `json:"degradedAttrCost"`
		DegradedFlat     uint64 `json:"degradedFlat"`
	} `json:"serving"`
	Admission struct {
		InFlight   int    `json:"inFlight"`
		QueueDepth int    `json:"queueDepth"`
		Admitted   uint64 `json:"admitted"`
		Shed       uint64 `json:"shed"`
	} `json:"admission"`
	Draining bool `json:"draining"`
}

func getResilience(t *testing.T, url string) healthResilience {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Resilience healthResilience `json:"resilience"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.Resilience
}

// TestDegradedNeverCached: with an unmeetable soft budget every request
// degrades to the flat tree, carries the degraded markers, and is never
// memoized — a later request misses again instead of being served the
// overload artifact as a full-fidelity tree.
func TestDegradedNeverCached(t *testing.T) {
	hs := newServeServer(t, Config{
		System:     newServeSystem(t, true),
		SoftBudget: time.Nanosecond,
		Degrade:    true,
	})
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, hs.URL+"/v1/query", queryRequest{SQL: spellings[0]})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Degraded"); got != "flat" {
			t.Errorf("request %d: X-Degraded = %q; want flat", i, got)
		}
		if got := resp.Header.Get("X-Cache"); got != "miss" {
			t.Errorf("request %d: X-Cache = %q; want miss (degraded trees are not cached)", i, got)
		}
		var qr queryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		if qr.Degraded != "flat" {
			t.Errorf("request %d: body degraded = %q; want flat", i, qr.Degraded)
		}
		// NodeCount excludes the root, and the flat tree is only a root.
		if qr.Categories != 0 || len(qr.Levels) != 0 {
			t.Errorf("request %d: flat tree should be a bare root: categories=%d levels=%v", i, qr.Categories, qr.Levels)
		}
		if qr.ResultCount == 0 {
			t.Errorf("request %d: flat tree lost the result set", i)
		}
	}
	if entries, _, _ := cacheStats(t, hs.URL); entries != 0 {
		t.Errorf("degraded serves left %d cache entries; want 0", entries)
	}
	if res := getResilience(t, hs.URL); res.Serving.DegradedFlat != 3 {
		t.Errorf("degradedFlat = %d; want 3", res.Serving.DegradedFlat)
	}
}

// TestDegradationIsInvisibleWhenFast: a comfortable budget serves the full
// tree with no degradation markers — the policy is pay-as-you-go.
func TestDegradationIsInvisibleWhenFast(t *testing.T) {
	hs := newServeServer(t, Config{
		System:     newServeSystem(t, true),
		SoftBudget: time.Minute,
		Degrade:    true,
	})
	resp, body := postJSON(t, hs.URL+"/v1/query", queryRequest{SQL: spellings[0]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Degraded"); got != "" {
		t.Errorf("X-Degraded = %q; want absent", got)
	}
	if bytes.Contains(body, []byte(`"degraded"`)) {
		t.Errorf("body carries a degraded field on a full-fidelity serve: %s", body)
	}
	// And it cached normally.
	resp, _ = postJSON(t, hs.URL+"/v1/query", queryRequest{SQL: spellings[0]})
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("X-Cache = %q; want hit", got)
	}
}

// TestServerDeadline504 pins the server-imposed-deadline status: 504, not
// the 499 reserved for clients hanging up.
func TestServerDeadline504(t *testing.T) {
	for _, cached := range []bool{false, true} {
		hs := newServeServer(t, Config{
			System:   newServeSystem(t, cached),
			Deadline: time.Nanosecond,
		})
		resp, body := postJSON(t, hs.URL+"/v1/query", queryRequest{SQL: spellings[0]})
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Errorf("cached=%v: status = %d (%s); want 504", cached, resp.StatusCode, body)
		}
	}
}

// TestRequestTimeoutTightens: a request's timeoutMs imposes a deadline on a
// server that has none configured.
func TestRequestTimeoutTightens(t *testing.T) {
	hs := newServeServer(t, Config{System: newServeSystem(t, true)})
	// timeoutMs can't express sub-millisecond budgets, so stall the build to
	// guarantee the deadline fires first.
	inj := faultinject.New(1)
	inj.Set(faultinject.SiteServeBuild, faultinject.Rule{Stall: true})
	defer faultinject.Activate(inj)()
	resp, body := postJSON(t, hs.URL+"/v1/query", queryRequest{SQL: spellings[0], TimeoutMs: 20})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status = %d (%s); want 504", resp.StatusCode, body)
	}
}

// TestAdmissionShed: with one slot, no queue, and a stalled build, a second
// request is shed immediately with 503 + Retry-After while the first is
// still computing; canceling the first frees the slot.
func TestAdmissionShed(t *testing.T) {
	sys := newServeSystem(t, true)
	srv, err := New(Config{System: sys, MaxConcurrent: 1, MaxQueue: -1})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)

	inj := faultinject.New(1)
	inj.Set(faultinject.SiteServeBuild, faultinject.Rule{Stall: true})
	defer faultinject.Activate(inj)()

	// First request occupies the only slot, stalled in its build.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	first := make(chan int, 1)
	go func() {
		raw, _ := json.Marshal(queryRequest{SQL: spellings[0]})
		req := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(raw)).WithContext(ctx)
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		first <- rec.Code
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.limiter.Stats().InFlight != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never took the slot")
		}
		time.Sleep(time.Millisecond)
	}

	// Second request: distinct query (no singleflight join), no slot, no
	// queue → shed.
	resp, body := postJSON(t, hs.URL+"/v1/query", queryRequest{SQL: distinctSQL[1]})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed status = %d (%s); want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}

	cancel()
	if code := <-first; code != StatusClientClosedRequest {
		t.Errorf("stalled request finished with %d; want %d", code, StatusClientClosedRequest)
	}
	res := getResilience(t, hs.URL)
	if res.Admission.Shed != 1 {
		t.Errorf("shed = %d; want 1", res.Admission.Shed)
	}
	if res.Admission.InFlight != 0 {
		t.Errorf("inFlight = %d after drain; want 0", res.Admission.InFlight)
	}
}

// TestCacheHitBypassesAdmission: a saturated limiter must not block hits —
// they cost no computation.
func TestCacheHitBypassesAdmission(t *testing.T) {
	srv, err := New(Config{System: newServeSystem(t, true), MaxConcurrent: 1, MaxQueue: -1})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)

	// Warm the cache, then saturate the limiter out-of-band.
	resp, body := postJSON(t, hs.URL+"/v1/query", queryRequest{SQL: spellings[0]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm: status %d: %s", resp.StatusCode, body)
	}
	release, err := srv.limiter.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	resp, body = postJSON(t, hs.URL+"/v1/query", queryRequest{SQL: spellings[1]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hit under saturation: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("X-Cache = %q; want hit", got)
	}
}

// TestPanicIsolated: an injected categorizer panic becomes a 503, the
// process survives, the cache is not poisoned, and the panic counter moves.
func TestPanicIsolated(t *testing.T) {
	hs := newServeServer(t, Config{System: newServeSystem(t, true)})

	inj := faultinject.New(1)
	inj.Set(faultinject.SiteCategorizeStart, faultinject.Rule{Panic: true})
	restore := faultinject.Activate(inj)
	resp, body := postJSON(t, hs.URL+"/v1/query", queryRequest{SQL: spellings[0]})
	restore()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("panicked request: status %d (%s); want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("panicked request missing Retry-After")
	}
	if res := getResilience(t, hs.URL); res.Serving.Panics == 0 {
		t.Error("panic counter did not move")
	}
	// The key is not poisoned: the same query now serves normally.
	resp, body = postJSON(t, hs.URL+"/v1/query", queryRequest{SQL: spellings[0]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after restore: status %d: %s", resp.StatusCode, body)
	}
}

// TestDrainMode: BeginShutdown sheds new categorization work with 503 but
// keeps health reporting alive.
func TestDrainMode(t *testing.T) {
	srv, err := New(Config{System: newServeSystem(t, true)})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)

	srv.BeginShutdown()
	for _, path := range []string{"/v1/query", "/v1/refine"} {
		resp, body := postJSON(t, hs.URL+path, queryRequest{SQL: spellings[0]})
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s while draining: status %d (%s); want 503", path, resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s while draining: missing Retry-After", path)
		}
	}
	res := getResilience(t, hs.URL)
	if !res.Draining {
		t.Error("healthz does not report draining")
	}
}

// TestAttributesReflectLearning: /v1/attributes must serve from the current
// snapshot, so usage fractions move as the server learns.
func TestAttributesReflectLearning(t *testing.T) {
	hs := newServeServer(t, Config{System: newServeSystem(t, true), Learn: true})

	usage := func() map[string]float64 {
		resp, err := http.Get(hs.URL + "/v1/attributes")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var attrs []attributeInfo
		if err := json.NewDecoder(resp.Body).Decode(&attrs); err != nil {
			t.Fatal(err)
		}
		out := make(map[string]float64, len(attrs))
		for _, a := range attrs {
			out[a.Name] = a.UsageFraction
		}
		return out
	}

	before := usage()
	// Learn a run of bedroomcount-only queries; its usage fraction must rise.
	for i := 0; i < 20; i++ {
		resp, body := postJSON(t, hs.URL+"/v1/query", queryRequest{
			SQL: "SELECT * FROM ListProperty WHERE bedroomcount >= 3",
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("learn %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	after := usage()
	if after["bedroomcount"] <= before["bedroomcount"] {
		t.Errorf("bedroomcount usage fraction did not rise with learning: before=%v after=%v",
			before["bedroomcount"], after["bedroomcount"])
	}
}
