package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/relation"
	"repro/internal/relation/durable"
)

// The disk-backed serving path (DESIGN.md §15): a System built over a
// recovered durable store reports the store's counters in healthz's
// "durability" block, and — when recovery quarantined corrupt segments —
// flips the health status to "degraded" and stamps every tree response with
// X-Degraded: storage while still serving the surviving rows.

const durSegRows = 16

// seedDurableDir creates a 4-segment store (64 rows, no tail) in a temp dir
// and closes it cleanly.
func seedDurableDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	schema := relation.MustSchema(
		relation.Attribute{Name: "neighborhood", Type: relation.Categorical},
		relation.Attribute{Name: "price", Type: relation.Numeric},
	)
	st, err := durable.Create(dir, schema, durable.Options{SegmentRows: durSegRows})
	if err != nil {
		t.Fatal(err)
	}
	hoods := []string{"Seattle, WA", "Bellevue, WA", "Redmond, WA", "Kirkland, WA"}
	for i := 0; i < 4*durSegRows; i++ {
		err := st.Append(relation.Tuple{
			relation.StringValue(hoods[i%len(hoods)]),
			relation.NumberValue(200000 + float64(i)*1000),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// durableServer reopens the store in dir and serves a System backed by it.
func durableServer(t *testing.T, dir string) (*httptest.Server, *durable.Store) {
	t.Helper()
	st, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	rel, err := st.Relation("ListProperty")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := repro.NewSystem(rel, repro.Config{
		WorkloadSQL: []string{
			"SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA')",
			"SELECT * FROM ListProperty WHERE price BETWEEN 200000 AND 240000",
		},
		Intervals: map[string]float64{"price": 10000},
		Durable:   st,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{System: sys, MaxDepth: 4, MaxChildren: 50})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return hs, st
}

// healthBody is the subset of /healthz the durability tests read.
type healthBody struct {
	Status     string `json:"status"`
	Rows       int    `json:"rows"`
	Durability *struct {
		Degraded        bool `json:"degraded"`
		Segments        int  `json:"segments"`
		SealedRows      int  `json:"sealedRows"`
		QuarantinedRows int  `json:"quarantinedRows"`
		Quarantined     []struct {
			File   string `json:"file"`
			Lo, Hi int
			Reason string `json:"reason"`
		} `json:"quarantined"`
	} `json:"durability"`
}

func getHealth(t *testing.T, url string) healthBody {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var body healthBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body
}

func TestHealthzDurabilityClean(t *testing.T) {
	hs, _ := durableServer(t, seedDurableDir(t))
	body := getHealth(t, hs.URL)
	if body.Status != "ok" || body.Rows != 4*durSegRows {
		t.Fatalf("status=%q rows=%d, want ok/%d", body.Status, body.Rows, 4*durSegRows)
	}
	d := body.Durability
	if d == nil {
		t.Fatal("healthz has no durability block for a disk-backed system")
	}
	if d.Degraded || d.Segments != 4 || d.SealedRows != 4*durSegRows {
		t.Fatalf("durability = %+v, want clean 4-segment store", d)
	}

	resp, _ := postJSON(t, hs.URL+"/v1/query", map[string]any{
		"sql": "SELECT * FROM ListProperty WHERE price BETWEEN 200000 AND 300000"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	for _, v := range resp.Header.Values("X-Degraded") {
		if v == "storage" {
			t.Fatal("clean store stamped X-Degraded: storage")
		}
	}
}

// TestHealthzDurabilityDegraded corrupts one segment's column page, reopens,
// and checks that the server keeps serving the surviving rows while
// reporting the quarantine everywhere it must.
func TestHealthzDurabilityDegraded(t *testing.T) {
	dir := seedDurableDir(t)
	// Flip the final byte (a column-page checksum) of the second segment.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*"))
	if err != nil || len(segs) != 4 {
		t.Fatalf("segment files = %v (err %v), want 4", segs, err)
	}
	raw, err := os.ReadFile(segs[1])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x41
	if err := os.WriteFile(segs[1], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	hs, st := durableServer(t, dir)
	if !st.Degraded() {
		t.Fatal("store not degraded after materializing a corrupt segment")
	}

	body := getHealth(t, hs.URL)
	if body.Status != "degraded" {
		t.Fatalf("healthz status = %q, want degraded", body.Status)
	}
	if want := 3 * durSegRows; body.Rows != want {
		t.Fatalf("rows = %d, want the %d survivors", body.Rows, want)
	}
	d := body.Durability
	if d == nil || !d.Degraded || d.QuarantinedRows != durSegRows || len(d.Quarantined) != 1 {
		t.Fatalf("durability = %+v, want one quarantined segment of %d rows", d, durSegRows)
	}
	if !strings.Contains(d.Quarantined[0].Reason, "corrupt") &&
		!strings.Contains(d.Quarantined[0].Reason, "checksum") {
		t.Errorf("quarantine reason %q does not name the corruption", d.Quarantined[0].Reason)
	}

	resp, raw2 := postJSON(t, hs.URL+"/v1/query", map[string]any{
		"sql": "SELECT * FROM ListProperty WHERE price BETWEEN 0 AND 10000000"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, raw2)
	}
	storage := false
	for _, v := range resp.Header.Values("X-Degraded") {
		if v == "storage" {
			storage = true
		}
	}
	if !storage {
		t.Fatalf("degraded store response lacks X-Degraded: storage (got %v)", resp.Header.Values("X-Degraded"))
	}
	var qr struct {
		ResultCount int `json:"resultCount"`
	}
	if err := json.Unmarshal(raw2, &qr); err != nil {
		t.Fatal(err)
	}
	if want := 3 * durSegRows; qr.ResultCount != want {
		t.Fatalf("resultCount = %d, want the %d surviving rows", qr.ResultCount, want)
	}
}
