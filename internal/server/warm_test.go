package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro"
)

func warmTestServer(t *testing.T, warmTopK int) (*Server, *httptest.Server) {
	t.Helper()
	rel := repro.DemoDataset(1500, 1)
	sys, err := repro.NewSystem(rel, repro.Config{
		WorkloadSQL:      repro.DemoWorkloadSQL(1000, 2),
		Intervals:        repro.DemoIntervals(),
		TreeCacheEntries: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{System: sys, Learn: true, WarmTopK: warmTopK, MaxConcurrent: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.BeginShutdown()
		hs.Close()
	})
	return srv, hs
}

func TestNewWarmRequiresLearn(t *testing.T) {
	rel := repro.DemoDataset(200, 1)
	sys, err := repro.NewSystem(rel, repro.Config{
		WorkloadSQL: repro.DemoWorkloadSQL(100, 2),
		Intervals:   repro.DemoIntervals(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{System: sys, WarmTopK: 4}); err == nil {
		t.Fatal("WarmTopK without Learn should error")
	}
}

// TestHealthzRepairAndWarmerShape drives a learn-churn sequence through the
// HTTP path and pins the /healthz JSON contract for the new observability
// blocks: the cache block's stale/repaired counters, the repair block, and
// the warmer block.
func TestHealthzRepairAndWarmerShape(t *testing.T) {
	srv, hs := warmTestServer(t, 4)

	// Serve → learn (the serve itself learns) → serve again: the second serve
	// of the same signature finds the first generation's entry stale.
	for i := 0; i < 2; i++ {
		resp, _ := postJSON(t, hs.URL+"/v1/query", map[string]any{"sql": testSQL})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d", i, resp.StatusCode)
		}
	}

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Cache *struct {
			Hits      *uint64 `json:"hits"`
			Misses    *uint64 `json:"misses"`
			Shared    *uint64 `json:"shared"`
			Evictions *uint64 `json:"evictions"`
			Stale     *uint64 `json:"stale"`
			Repaired  *uint64 `json:"repaired"`
			Panics    *uint64 `json:"panics"`
			Entries   *int    `json:"entries"`
			Bytes     *int64  `json:"bytes"`
		} `json:"cache"`
		Repair *struct {
			Reused       *uint64 `json:"reused"`
			Repaired     *uint64 `json:"repaired"`
			Rebuilt      *uint64 `json:"rebuilt"`
			CopiedNodes  *uint64 `json:"copiedNodes"`
			RebuiltNodes *uint64 `json:"rebuiltNodes"`
		} `json:"repair"`
		Warmer *repro.WarmerStats `json:"warmer"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Cache == nil {
		t.Fatal("healthz has no cache block")
	}
	for name, p := range map[string]bool{
		"hits": body.Cache.Hits != nil, "misses": body.Cache.Misses != nil,
		"shared": body.Cache.Shared != nil, "evictions": body.Cache.Evictions != nil,
		"stale": body.Cache.Stale != nil, "repaired": body.Cache.Repaired != nil,
		"panics": body.Cache.Panics != nil, "entries": body.Cache.Entries != nil,
		"bytes": body.Cache.Bytes != nil,
	} {
		if !p {
			t.Errorf("cache block missing %q", name)
		}
	}
	if body.Repair == nil {
		t.Fatal("healthz has no repair block")
	}
	for name, p := range map[string]bool{
		"reused": body.Repair.Reused != nil, "repaired": body.Repair.Repaired != nil,
		"rebuilt": body.Repair.Rebuilt != nil, "copiedNodes": body.Repair.CopiedNodes != nil,
		"rebuiltNodes": body.Repair.RebuiltNodes != nil,
	} {
		if !p {
			t.Errorf("repair block missing %q", name)
		}
	}
	if body.Warmer == nil {
		t.Fatal("healthz has no warmer block")
	}
	if body.Warmer.TopK != 4 {
		t.Errorf("warmer topK = %d, want 4", body.Warmer.TopK)
	}
	// The second serve hit a stale first-generation entry; it must have been
	// counted, and satisfied by reuse/repair or rebuild — never silently.
	if *body.Cache.Stale == 0 {
		t.Error("no stale-offer counted after learn churn")
	}
	if *body.Repair.Reused+*body.Repair.Repaired+*body.Repair.Rebuilt == 0 {
		t.Error("stale miss not accounted by the repair counters")
	}

	// BeginShutdown stops the warmer; the block disappears from /healthz.
	srv.BeginShutdown()
	resp2, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var after struct {
		Warmer *repro.WarmerStats `json:"warmer"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&after); err != nil {
		t.Fatal(err)
	}
	if after.Warmer != nil {
		t.Error("warmer block still reported after shutdown began")
	}
}

// TestWarmerWarmsThroughServer checks the end-to-end loop: HTTP serves learn,
// learning wakes the warmer, and the warmer lands the hot signature in the
// cache so a later request is a hit even though the generation moved.
func TestWarmerWarmsThroughServer(t *testing.T) {
	srv, hs := warmTestServer(t, 4)

	// Serve the signature a few times so it dominates the warmer's top-K,
	// each serve learning and bumping the generation.
	for i := 0; i < 3; i++ {
		resp, _ := postJSON(t, hs.URL+"/v1/query", map[string]any{"sql": testSQL})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d", i, resp.StatusCode)
		}
	}

	q, err := repro.ParseQuery(testSQL)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		// The warmer must catch the current generation up on its own: no
		// /v1/query requests from here on, only cache probes.
		if _, ok := srv.adaptive.System().Peek(q, repro.CostBased, srv.cfg.Options); ok {
			break
		}
		if time.Now().After(deadline) {
			ws, ok := srv.adaptive.WarmerStats()
			t.Fatalf("warmer never caught up (stats ok=%v %+v)", ok, ws)
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, _ := postJSON(t, hs.URL+"/v1/query", map[string]any{"sql": testSQL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final query: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("X-Cache = %q after warming, want hit", got)
	}
}
