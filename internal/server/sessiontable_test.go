package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func tableIDs(t *sessionTable) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make([]string, 0, t.ll.Len())
	for el := t.ll.Front(); el != nil; el = el.Next() {
		ids = append(ids, el.Value.(*sessionEntry).id)
	}
	return ids
}

func TestSessionTableEvictsLeastRecentlyTouched(t *testing.T) {
	tab := newSessionTable(3, time.Hour)
	for i := 0; i < 3; i++ {
		tab.put(fmt.Sprintf("s%d", i), &liveSession{})
	}
	// Touch s0 so s1 becomes the coldest.
	if _, ok := tab.get("s0"); !ok {
		t.Fatal("s0 missing before cap")
	}
	tab.put("s3", &liveSession{})
	if _, ok := tab.get("s1"); ok {
		t.Fatal("s1 should have been evicted as least-recently-touched")
	}
	for _, id := range []string{"s0", "s2", "s3"} {
		if _, ok := tab.get(id); !ok {
			t.Fatalf("%s should have survived eviction", id)
		}
	}
	if n := tab.len(); n != 3 {
		t.Fatalf("len = %d; want 3", n)
	}
}

func TestSessionTableEvictionOrder(t *testing.T) {
	tab := newSessionTable(2, time.Hour)
	tab.put("a", &liveSession{})
	tab.put("b", &liveSession{})
	tab.put("c", &liveSession{}) // evicts a
	if got := tableIDs(tab); len(got) != 2 || got[0] != "c" || got[1] != "b" {
		t.Fatalf("order = %v; want [c b]", got)
	}
	tab.put("d", &liveSession{}) // evicts b
	if _, ok := tab.get("b"); ok {
		t.Fatal("b should have been evicted before c")
	}
	if _, ok := tab.get("c"); !ok {
		t.Fatal("c should still be live")
	}
}

func TestSessionTableTTL(t *testing.T) {
	clock := time.Unix(0, 0)
	tab := newSessionTable(10, time.Minute)
	tab.now = func() time.Time { return clock }

	tab.put("old", &liveSession{})
	clock = clock.Add(30 * time.Second)
	tab.put("young", &liveSession{})

	// old is 61s idle: expired; young is 31s idle: alive.
	clock = clock.Add(31 * time.Second)
	if _, ok := tab.get("old"); ok {
		t.Fatal("old should have expired")
	}
	if _, ok := tab.get("young"); !ok {
		t.Fatal("young should still be live")
	}
	// The get above refreshed young's clock; another 59s keeps it alive.
	clock = clock.Add(59 * time.Second)
	if _, ok := tab.get("young"); !ok {
		t.Fatal("young should have been refreshed by the earlier get")
	}
	// put expires stale entries from the cold end.
	clock = clock.Add(2 * time.Minute)
	tab.put("new", &liveSession{})
	if n := tab.len(); n != 1 {
		t.Fatalf("len = %d after expiry sweep; want 1", n)
	}
}

// TestSessionEvictionOverHTTP creates more sessions than the cap through the
// API and asserts the oldest ones were evicted in creation order.
func TestSessionEvictionOverHTTP(t *testing.T) {
	testServer(t) // populate tsSys

	// The shared testServer has the default cap; use a dedicated server
	// with a small one.
	small, err := New(Config{System: tsSys, MaxSessions: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs2 := httptest.NewServer(small.Handler())
	t.Cleanup(hs2.Close)

	var ids []string
	for i := 0; i < 4; i++ {
		resp, body := postJSON(t, hs2.URL+"/v1/session", sessionCreateRequest{SQL: testSQL})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("create %d: status %d: %s", i, resp.StatusCode, body)
		}
		var created sessionCreateResponse
		if err := json.Unmarshal(body, &created); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		ids = append(ids, created.ID)
	}
	// Cap 2: the two oldest (ids[0], ids[1]) are gone, the two newest live.
	for i, id := range ids {
		resp, err := http.Get(hs2.URL + "/v1/session/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		wantLive := i >= 2
		if gotLive := resp.StatusCode == http.StatusOK; gotLive != wantLive {
			t.Errorf("session %d (%s): live=%v; want %v", i, id, gotLive, wantLive)
		}
	}
}
