package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro"
)

var (
	tsOnce sync.Once
	tsSys  *repro.System
	tsErr  error
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	tsOnce.Do(func() {
		rel := repro.DemoDataset(4000, 1)
		tsSys, tsErr = repro.NewSystem(rel, repro.Config{
			WorkloadSQL: repro.DemoWorkloadSQL(2000, 2),
			Intervals:   repro.DemoIntervals(),
		})
	})
	if tsErr != nil {
		t.Fatalf("system: %v", tsErr)
	}
	srv, err := New(Config{System: tsSys, MaxDepth: 4, MaxChildren: 50})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return hs
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

const testSQL = "SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA','Bellevue, WA','Redmond, WA','Kirkland, WA') AND price BETWEEN 150000 AND 400000"

func TestNewRequiresSystem(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without System should error")
	}
}

func TestHealthz(t *testing.T) {
	hs := testServer(t)
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body struct {
		Status string `json:"status"`
		Rows   int    `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || body.Rows != 4000 {
		t.Fatalf("body = %+v", body)
	}
}

// TestHealthzSelectStats drives one query through the serving path and checks
// that /healthz reports the vectorized-selection counters (DESIGN.md §9).
func TestHealthzSelectStats(t *testing.T) {
	hs := testServer(t)
	resp, _ := postJSON(t, hs.URL+"/v1/query", map[string]any{"sql": testSQL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	hresp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var body struct {
		Select *repro.SelectStats `json:"select"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Select == nil {
		t.Fatal("healthz has no select field")
	}
	if body.Select.Selects == 0 || body.Select.Vectorized == 0 {
		t.Fatalf("select stats not counting: %+v", *body.Select)
	}
	if body.Select.ConjunctHits+body.Select.ConjunctMisses == 0 {
		t.Fatalf("conjunct cache untouched: %+v", *body.Select)
	}
}

// TestHealthzStorageStats pins the segmented-storage block (DESIGN.md §14):
// the exact JSON key set and the row accounting sealedRows+tailRows == rows.
func TestHealthzStorageStats(t *testing.T) {
	hs := testServer(t)
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Rows    float64                    `json:"rows"`
		Storage map[string]json.RawMessage `json:"storage"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Storage == nil {
		t.Fatal("healthz has no storage field")
	}
	want := []string{
		"segmentRows", "segments", "sealedRows", "tailRows",
		"sealedBytes", "seals", "zonePruned", "zoneScanned",
	}
	for _, k := range want {
		if _, ok := body.Storage[k]; !ok {
			t.Errorf("storage block missing key %q", k)
		}
	}
	if len(body.Storage) != len(want) {
		t.Errorf("storage block has %d keys, want %d: %v", len(body.Storage), len(want), body.Storage)
	}
	var st repro.StorageStats
	raw, _ := json.Marshal(body.Storage)
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.SegmentRows < 1 {
		t.Errorf("segmentRows = %d", st.SegmentRows)
	}
	if got := st.SealedRows + st.TailRows; got != int(body.Rows) {
		t.Errorf("sealedRows+tailRows = %d, want rows = %v", got, body.Rows)
	}
	if st.Segments != st.SealedRows/st.SegmentRows {
		t.Errorf("segments = %d, want %d", st.Segments, st.SealedRows/st.SegmentRows)
	}
}

func TestAttributes(t *testing.T) {
	hs := testServer(t)
	resp, err := http.Get(hs.URL + "/v1/attributes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var attrs []attributeInfo
	if err := json.NewDecoder(resp.Body).Decode(&attrs); err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 53 {
		t.Fatalf("attributes = %d; want 53", len(attrs))
	}
	byName := map[string]attributeInfo{}
	for _, a := range attrs {
		byName[a.Name] = a
	}
	if byName["neighborhood"].UsageFraction < 0.4 {
		t.Errorf("neighborhood usage = %v; want hot", byName["neighborhood"].UsageFraction)
	}
	if byName["price"].Type != "numeric" {
		t.Errorf("price type = %q", byName["price"].Type)
	}
}

func TestQueryEndpoint(t *testing.T) {
	hs := testServer(t)
	resp, body := postJSON(t, hs.URL+"/v1/query", queryRequest{SQL: testSQL, MaxDepth: 2, MaxChildren: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.ResultCount == 0 || qr.Categories == 0 || qr.EstCostAll <= 0 {
		t.Fatalf("response = %+v", qr)
	}
	if qr.Tree.Label != "ALL" || qr.Tree.Count != qr.ResultCount {
		t.Fatalf("root = %+v", qr.Tree)
	}
	if len(qr.Tree.Children) == 0 {
		t.Fatal("tree has no children")
	}
	if len(qr.Tree.Children) > 5 {
		t.Fatalf("maxChildren not honored: %d", len(qr.Tree.Children))
	}
	// Paths must address children positionally.
	if qr.Tree.Children[0].Path[0] != 0 {
		t.Fatalf("child path = %v", qr.Tree.Children[0].Path)
	}
	// Depth bound: grandchildren may exist (depth 2) but no deeper.
	for _, c := range qr.Tree.Children {
		for _, g := range c.Children {
			if len(g.Children) != 0 {
				t.Fatalf("depth bound violated at %v", g.Path)
			}
		}
	}
}

func TestQueryTechniqueAndErrors(t *testing.T) {
	hs := testServer(t)
	for _, tech := range []string{"cost-based", "attr-cost", "no-cost"} {
		resp, body := postJSON(t, hs.URL+"/v1/query", queryRequest{SQL: testSQL, Technique: tech})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("technique %s: status %d: %s", tech, resp.StatusCode, body)
		}
	}
	resp, _ := postJSON(t, hs.URL+"/v1/query", queryRequest{SQL: testSQL, Technique: "bogus"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus technique: status %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, hs.URL+"/v1/query", queryRequest{SQL: "DROP TABLE x"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad SQL: status %d", resp.StatusCode)
	}
	req, err := http.Post(hs.URL+"/v1/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	req.Body.Close()
	if req.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", req.StatusCode)
	}
}

func TestQueryMethodNotAllowed(t *testing.T) {
	hs := testServer(t)
	resp, err := http.Get(hs.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/query status %d; want 405", resp.StatusCode)
	}
}

func TestRefineEndpoint(t *testing.T) {
	hs := testServer(t)
	// First fetch the tree so the path is meaningful.
	resp, body := postJSON(t, hs.URL+"/v1/query", queryRequest{SQL: testSQL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Tree.Children) == 0 {
		t.Skip("trivial tree")
	}
	child := qr.Tree.Children[0]

	resp, body = postJSON(t, hs.URL+"/v1/refine", refineRequest{SQL: testSQL, Path: child.Path})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refine: %d %s", resp.StatusCode, body)
	}
	var rr refineResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.ResultCount != child.Count {
		t.Fatalf("refined count %d != category count %d (sql %s)", rr.ResultCount, child.Count, rr.SQL)
	}
	// The refined SQL must itself be servable.
	resp, body = postJSON(t, hs.URL+"/v1/query", queryRequest{SQL: rr.SQL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-query of refined SQL: %d %s", resp.StatusCode, body)
	}
}

func TestRefineBadPath(t *testing.T) {
	hs := testServer(t)
	resp, _ := postJSON(t, hs.URL+"/v1/refine", refineRequest{SQL: testSQL, Path: []int{9999}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad path: status %d", resp.StatusCode)
	}
}

func TestLearningServer(t *testing.T) {
	rel := repro.DemoDataset(2000, 3)
	sys, err := repro.NewSystem(rel, repro.Config{
		WorkloadSQL: repro.DemoWorkloadSQL(1000, 4),
		Intervals:   repro.DemoIntervals(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{System: sys, Learn: true})
	if err != nil {
		t.Fatalf("New(Learn): %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	before := healthField(t, hs.URL, "workloadQueries")
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, hs.URL+"/v1/query", queryRequest{SQL: testSQL})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: %d %s", i, resp.StatusCode, body)
		}
	}
	after := healthField(t, hs.URL, "workloadQueries")
	if after != before+3 {
		t.Fatalf("workload %v -> %v; want +3 learned queries", before, after)
	}
	if got := healthField(t, hs.URL, "learned"); got != 3 {
		t.Fatalf("learned = %v; want 3", got)
	}
}

func healthField(t *testing.T, url, field string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	v, ok := body[field].(float64)
	if !ok {
		t.Fatalf("health field %q missing: %v", field, body)
	}
	return v
}

func TestLearningServerRequiresRawWorkload(t *testing.T) {
	rel := repro.DemoDataset(100, 1)
	base, err := repro.NewSystem(rel, repro.Config{WorkloadSQL: repro.DemoWorkloadSQL(50, 2)})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := repro.SaveStats(base.Stats(), &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := repro.LoadStats(&buf)
	if err != nil {
		t.Fatal(err)
	}
	statsOnly, err := repro.NewSystem(rel, repro.Config{Stats: loaded})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{System: statsOnly, Learn: true}); err == nil {
		t.Fatal("Learn over stats-only system should error")
	}
}

func TestSessionWorkflow(t *testing.T) {
	hs := testServer(t)
	// Create a session.
	resp, body := postJSON(t, hs.URL+"/v1/session", sessionCreateRequest{SQL: testSQL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	var created sessionCreateResponse
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if created.ID == "" || created.ResultCount == 0 || len(created.RootLabels) == 0 {
		t.Fatalf("create response = %+v", created)
	}

	// Expand the first child, then show its tuples and click one.
	opURL := hs.URL + "/v1/session/" + created.ID + "/op"
	resp, body = postJSON(t, opURL, sessionOpRequest{Op: "expand", Path: []int{0}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("expand: %d %s", resp.StatusCode, body)
	}
	var opResp sessionOpResponse
	if err := json.Unmarshal(body, &opResp); err != nil {
		t.Fatal(err)
	}
	if opResp.Summary.LabelsExamined <= len(created.RootLabels) {
		t.Fatalf("expanding a child must add labels: %+v", opResp.Summary)
	}

	resp, body = postJSON(t, opURL, sessionOpRequest{Op: "showtuples", Path: []int{0, 0}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("showtuples: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &opResp); err != nil {
		t.Fatal(err)
	}
	if len(opResp.Rows) == 0 {
		t.Fatal("showtuples returned no rows")
	}
	row := opResp.Rows[0]

	resp, body = postJSON(t, opURL, sessionOpRequest{Op: "click", Row: row})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("click: %d %s", resp.StatusCode, body)
	}

	// Status reports the full log and the click.
	getResp, err := http.Get(hs.URL + "/v1/session/" + created.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer getResp.Body.Close()
	var status sessionStatusResponse
	if err := json.NewDecoder(getResp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Summary.RelevantFound != 1 || len(status.Relevant) != 1 || status.Relevant[0] != row {
		t.Fatalf("status = %+v", status)
	}
	// create's implicit root expand + 3 ops.
	if len(status.Log) != 4 {
		t.Fatalf("log has %d ops; want 4", len(status.Log))
	}
	if status.Log[0].Op != "expand" || status.Log[3].Op != "click" {
		t.Fatalf("log order wrong: %+v", status.Log)
	}
}

func TestSessionErrorsHTTP(t *testing.T) {
	hs := testServer(t)
	resp, _ := postJSON(t, hs.URL+"/v1/session/nope/op", sessionOpRequest{Op: "expand"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: %d", resp.StatusCode)
	}
	getResp, err := http.Get(hs.URL + "/v1/session/nope")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session status: %d", getResp.StatusCode)
	}
	resp, body := postJSON(t, hs.URL+"/v1/session", sessionCreateRequest{SQL: testSQL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	var created sessionCreateResponse
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	opURL := hs.URL + "/v1/session/" + created.ID + "/op"
	resp, _ = postJSON(t, opURL, sessionOpRequest{Op: "teleport"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown op: %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, opURL, sessionOpRequest{Op: "expand", Path: []int{999}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad path: %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, opURL, sessionOpRequest{Op: "click", Row: 0})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("click before showtuples: %d", resp.StatusCode)
	}
}
