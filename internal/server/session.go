package server

import (
	"container/list"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro"
	"repro/internal/session"
)

// Interactive sessions: the treeview workflow of §6.3 over HTTP. A client
// creates a session for a query, then drives it with expand/collapse/
// showtuples/click operations; the server keeps the §4.1 item accounting
// and the §6.3-style operation log.

type liveSession struct {
	sess *session.Session
	tree *repro.Tree
	sql  string
}

// sessionTable is the bounded in-memory session store: a cap with
// least-recently-touched eviction plus a TTL, so an abandoned browser tab
// cannot pin server memory and a session flood cannot grow the table
// without limit. Every get refreshes the session's recency and TTL clock.
type sessionTable struct {
	mu  sync.Mutex
	cap int
	ttl time.Duration
	now func() time.Time // injectable for TTL tests

	ll   *list.List // front = most recently touched
	byID map[string]*list.Element
}

type sessionEntry struct {
	id      string
	s       *liveSession
	touched time.Time
}

func newSessionTable(capacity int, ttl time.Duration) *sessionTable {
	return &sessionTable{
		cap:  capacity,
		ttl:  ttl,
		now:  time.Now,
		ll:   list.New(),
		byID: make(map[string]*list.Element),
	}
}

// put stores a new session, first expiring stale entries and then, at the
// cap, evicting the least-recently-touched one.
func (t *sessionTable) put(id string, s *liveSession) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	t.expireLocked(now)
	for t.ll.Len() >= t.cap {
		t.evictBackLocked()
	}
	t.byID[id] = t.ll.PushFront(&sessionEntry{id: id, s: s, touched: now})
}

// get returns the live session, refreshing its recency; expired sessions
// are dropped and reported missing.
func (t *sessionTable) get(id string) (*liveSession, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	el, ok := t.byID[id]
	if !ok {
		return nil, false
	}
	e := el.Value.(*sessionEntry)
	now := t.now()
	if t.ttl > 0 && now.Sub(e.touched) > t.ttl {
		t.removeLocked(el)
		return nil, false
	}
	e.touched = now
	t.ll.MoveToFront(el)
	return e.s, true
}

// len reports the current number of live sessions.
func (t *sessionTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ll.Len()
}

// expireLocked drops sessions idle past the TTL, scanning from the cold end.
func (t *sessionTable) expireLocked(now time.Time) {
	if t.ttl <= 0 {
		return
	}
	for el := t.ll.Back(); el != nil; el = t.ll.Back() {
		if now.Sub(el.Value.(*sessionEntry).touched) <= t.ttl {
			return
		}
		t.removeLocked(el)
	}
}

func (t *sessionTable) evictBackLocked() {
	if el := t.ll.Back(); el != nil {
		t.removeLocked(el)
	}
}

func (t *sessionTable) removeLocked(el *list.Element) {
	t.ll.Remove(el)
	delete(t.byID, el.Value.(*sessionEntry).id)
}

func newSessionID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable for id generation; fall back
		// to a counter-free constant would collide, so panic loudly.
		panic(fmt.Sprintf("server: session id generation: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// sessionCreateRequest starts an exploration.
type sessionCreateRequest struct {
	SQL       string  `json:"sql"`
	Technique string  `json:"technique,omitempty"`
	M         int     `json:"m,omitempty"`
	K         float64 `json:"k,omitempty"`
	X         float64 `json:"x,omitempty"`
}

type sessionCreateResponse struct {
	ID          string   `json:"id"`
	ResultCount int      `json:"resultCount"`
	Levels      []string `json:"levels"`
	RootLabels  []string `json:"rootLabels"`
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req sessionCreateRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	tech, err := parseTechnique(req.Technique)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts := s.cfg.Options
	if req.M > 0 {
		opts.M = req.M
	}
	if req.K > 0 {
		opts.K = req.K
	}
	if req.X > 0 {
		opts.X = req.X
	}
	var (
		tree        *repro.Tree
		resultCount int
		hit         bool
	)
	if s.adaptive != nil {
		tree, resultCount, hit, err = s.adaptive.ExploreCtx(r.Context(), req.SQL, tech, opts, true)
	} else {
		tree, resultCount, hit, err = s.cfg.System.Serve(r.Context(), req.SQL, tech, opts)
	}
	if err != nil {
		writeServeErr(w, r.Context(), err, http.StatusBadRequest)
		return
	}
	sess := session.New(tree, tree.K)
	labels, err := sess.Expand(nil)
	if err != nil {
		// Trivial tree (root is a leaf): no labels, session still usable
		// through showtuples on the root.
		labels = nil
	}
	id := newSessionID()
	s.sessions.put(id, &liveSession{sess: sess, tree: tree, sql: req.SQL})
	setCacheHeader(w, hit)
	writeJSON(w, http.StatusOK, sessionCreateResponse{
		ID:          id,
		ResultCount: resultCount,
		Levels:      tree.LevelAttrs,
		RootLabels:  labels,
	})
}

// sessionOpRequest applies one treeview operation.
type sessionOpRequest struct {
	Op   string `json:"op"` // expand | collapse | showtuples | click
	Path []int  `json:"path,omitempty"`
	Row  int    `json:"row,omitempty"`
}

type sessionOpResponse struct {
	Labels  []string        `json:"labels,omitempty"`
	Rows    []int           `json:"rows,omitempty"`
	Summary session.Summary `json:"summary"`
}

func (s *Server) handleSessionOp(w http.ResponseWriter, r *http.Request) {
	live, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown session %q", r.PathValue("id"))
		return
	}
	var req sessionOpRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	resp := sessionOpResponse{}
	var err error
	switch req.Op {
	case "expand":
		resp.Labels, err = live.sess.Expand(req.Path)
	case "collapse":
		err = live.sess.Collapse(req.Path)
	case "showtuples":
		resp.Rows, err = live.sess.ShowTuples(req.Path)
	case "click":
		err = live.sess.MarkRelevant(req.Row)
	default:
		writeErr(w, http.StatusBadRequest, "unknown op %q (want expand, collapse, showtuples, or click)", req.Op)
		return
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp.Summary = live.sess.Summary()
	writeJSON(w, http.StatusOK, resp)
}

// sessionStatusResponse reports a session's log and measurements.
type sessionStatusResponse struct {
	SQL      string          `json:"sql"`
	Summary  session.Summary `json:"summary"`
	Relevant []int           `json:"relevant"`
	Log      []sessionLogOp  `json:"log"`
}

type sessionLogOp struct {
	Seq  int    `json:"seq"`
	Op   string `json:"op"`
	Path []int  `json:"path,omitempty"`
	Row  int    `json:"row,omitempty"`
}

func (s *Server) handleSessionStatus(w http.ResponseWriter, r *http.Request) {
	live, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown session %q", r.PathValue("id"))
		return
	}
	log := live.sess.Log()
	out := sessionStatusResponse{
		SQL:      live.sql,
		Summary:  live.sess.Summary(),
		Relevant: live.sess.Relevant(),
		Log:      make([]sessionLogOp, len(log)),
	}
	for i, op := range log {
		out.Log[i] = sessionLogOp{Seq: op.Seq, Op: op.Kind.String(), Path: op.Path, Row: op.Row}
	}
	writeJSON(w, http.StatusOK, out)
}
