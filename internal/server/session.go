package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro"
	"repro/internal/session"
)

// Interactive sessions: the treeview workflow of §6.3 over HTTP. A client
// creates a session for a query, then drives it with expand/collapse/
// showtuples/click operations; the server keeps the §4.1 item accounting
// and the §6.3-style operation log.

// maxSessions bounds the in-memory session table; the oldest session is
// evicted when the bound is hit.
const maxSessions = 1024

type liveSession struct {
	sess *session.Session
	tree *repro.Tree
	sql  string
}

type sessionTable struct {
	mu    sync.Mutex
	byID  map[string]*liveSession
	order []string
}

func newSessionTable() *sessionTable {
	return &sessionTable{byID: map[string]*liveSession{}}
}

func (t *sessionTable) put(id string, s *liveSession) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.order) >= maxSessions {
		oldest := t.order[0]
		t.order = t.order[1:]
		delete(t.byID, oldest)
	}
	t.byID[id] = s
	t.order = append(t.order, id)
}

func (t *sessionTable) get(id string) (*liveSession, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.byID[id]
	return s, ok
}

func newSessionID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable for id generation; fall back
		// to a counter-free constant would collide, so panic loudly.
		panic(fmt.Sprintf("server: session id generation: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// sessionCreateRequest starts an exploration.
type sessionCreateRequest struct {
	SQL       string  `json:"sql"`
	Technique string  `json:"technique,omitempty"`
	M         int     `json:"m,omitempty"`
	K         float64 `json:"k,omitempty"`
	X         float64 `json:"x,omitempty"`
}

type sessionCreateResponse struct {
	ID          string   `json:"id"`
	ResultCount int      `json:"resultCount"`
	Levels      []string `json:"levels"`
	RootLabels  []string `json:"rootLabels"`
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req sessionCreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "malformed JSON: %v", err)
		return
	}
	tech, err := parseTechnique(req.Technique)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts := s.cfg.Options
	if req.M > 0 {
		opts.M = req.M
	}
	if req.K > 0 {
		opts.K = req.K
	}
	if req.X > 0 {
		opts.X = req.X
	}
	var (
		tree        *repro.Tree
		resultCount int
	)
	if s.adaptive != nil {
		tree, resultCount, err = s.adaptive.Explore(req.SQL, tech, opts, true)
	} else {
		var res *repro.Result
		res, err = s.cfg.System.Query(req.SQL)
		if err == nil {
			tree, err = res.CategorizeWith(tech, opts)
			if res != nil {
				resultCount = res.Len()
			}
		}
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	sess := session.New(tree, tree.K)
	labels, err := sess.Expand(nil)
	if err != nil {
		// Trivial tree (root is a leaf): no labels, session still usable
		// through showtuples on the root.
		labels = nil
	}
	id := newSessionID()
	s.sessions.put(id, &liveSession{sess: sess, tree: tree, sql: req.SQL})
	writeJSON(w, http.StatusOK, sessionCreateResponse{
		ID:          id,
		ResultCount: resultCount,
		Levels:      tree.LevelAttrs,
		RootLabels:  labels,
	})
}

// sessionOpRequest applies one treeview operation.
type sessionOpRequest struct {
	Op   string `json:"op"` // expand | collapse | showtuples | click
	Path []int  `json:"path,omitempty"`
	Row  int    `json:"row,omitempty"`
}

type sessionOpResponse struct {
	Labels  []string        `json:"labels,omitempty"`
	Rows    []int           `json:"rows,omitempty"`
	Summary session.Summary `json:"summary"`
}

func (s *Server) handleSessionOp(w http.ResponseWriter, r *http.Request) {
	live, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown session %q", r.PathValue("id"))
		return
	}
	var req sessionOpRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "malformed JSON: %v", err)
		return
	}
	resp := sessionOpResponse{}
	var err error
	switch req.Op {
	case "expand":
		resp.Labels, err = live.sess.Expand(req.Path)
	case "collapse":
		err = live.sess.Collapse(req.Path)
	case "showtuples":
		resp.Rows, err = live.sess.ShowTuples(req.Path)
	case "click":
		err = live.sess.MarkRelevant(req.Row)
	default:
		writeErr(w, http.StatusBadRequest, "unknown op %q (want expand, collapse, showtuples, or click)", req.Op)
		return
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp.Summary = live.sess.Summary()
	writeJSON(w, http.StatusOK, resp)
}

// sessionStatusResponse reports a session's log and measurements.
type sessionStatusResponse struct {
	SQL      string          `json:"sql"`
	Summary  session.Summary `json:"summary"`
	Relevant []int           `json:"relevant"`
	Log      []sessionLogOp  `json:"log"`
}

type sessionLogOp struct {
	Seq  int    `json:"seq"`
	Op   string `json:"op"`
	Path []int  `json:"path,omitempty"`
	Row  int    `json:"row,omitempty"`
}

func (s *Server) handleSessionStatus(w http.ResponseWriter, r *http.Request) {
	live, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown session %q", r.PathValue("id"))
		return
	}
	log := live.sess.Log()
	out := sessionStatusResponse{
		SQL:      live.sql,
		Summary:  live.sess.Summary(),
		Relevant: live.sess.Relevant(),
		Log:      make([]sessionLogOp, len(log)),
	}
	for i, op := range log {
		out.Log[i] = sessionLogOp{Seq: op.Seq, Op: op.Kind.String(), Path: op.Path, Row: op.Row}
	}
	writeJSON(w, http.StatusOK, out)
}
