package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro"
)

// Serving-path benchmarks over httptest: the full HTTP round trip including
// JSON decode, serve (cache hit or categorize), tree render, and encode.
// `make servebench` folds these with cmd/catload's load-test lines into
// BENCH_serve.json.

var (
	benchOnce sync.Once
	benchSys  map[bool]*repro.System // keyed by cached
)

func benchServer(b *testing.B, cached bool) *httptest.Server {
	b.Helper()
	benchOnce.Do(func() {
		benchSys = make(map[bool]*repro.System)
		for _, c := range []bool{false, true} {
			benchSys[c] = newServeSystem(b, c)
		}
	})
	srv, err := New(Config{System: benchSys[cached], MaxDepth: 3, MaxChildren: 8})
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	b.Cleanup(hs.Close)
	return hs
}

func benchPost(b *testing.B, client *http.Client, url string, raw []byte) {
	b.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d: %s", resp.StatusCode, buf.Bytes())
	}
}

func benchQuery(b *testing.B, cached bool, parallel bool) {
	hs := benchServer(b, cached)
	raw, _ := json.Marshal(queryRequest{SQL: spellings[0], MaxDepth: 3})
	// Warm: the first request computes the tree; the cached variant then
	// measures the hit path, the uncached variant the full categorization.
	benchPost(b, http.DefaultClient, hs.URL+"/v1/query", raw)
	b.ResetTimer()
	if parallel {
		b.RunParallel(func(pb *testing.PB) {
			client := &http.Client{}
			for pb.Next() {
				benchPost(b, client, hs.URL+"/v1/query", raw)
			}
		})
		return
	}
	for i := 0; i < b.N; i++ {
		benchPost(b, http.DefaultClient, hs.URL+"/v1/query", raw)
	}
}

func BenchmarkQueryEndpoint(b *testing.B) {
	b.Run("uncached", func(b *testing.B) { benchQuery(b, false, false) })
	b.Run("cached", func(b *testing.B) { benchQuery(b, true, false) })
}

func BenchmarkQueryEndpointParallel(b *testing.B) {
	b.Run("uncached", func(b *testing.B) { benchQuery(b, false, true) })
	b.Run("cached", func(b *testing.B) { benchQuery(b, true, true) })
}

// BenchmarkQueryEndpointMix cycles distinct queries so the cached variant
// exercises LRU lookups across entries, not one hot key.
func BenchmarkQueryEndpointMix(b *testing.B) {
	mixBodies := func() [][]byte {
		sqls := append(append([]string{}, spellings...), distinctSQL...)
		out := make([][]byte, len(sqls))
		for i, sql := range sqls {
			out[i], _ = json.Marshal(queryRequest{SQL: sql, MaxDepth: 3})
		}
		return out
	}
	for _, cached := range []bool{false, true} {
		name := "uncached"
		if cached {
			name = "cached"
		}
		b.Run(name, func(b *testing.B) {
			hs := benchServer(b, cached)
			bodies := mixBodies()
			for _, raw := range bodies {
				benchPost(b, http.DefaultClient, hs.URL+"/v1/query", raw)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchPost(b, http.DefaultClient, hs.URL+"/v1/query", bodies[i%len(bodies)])
			}
		})
	}
}
