package server

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro"
)

// Tests for the concurrent serving path: the singleflight tree cache must be
// invisible in the served bytes (same JSON with and without it, for every
// spelling of a query), spelling variants must collapse to one cache entry,
// and learning must invalidate by generation bump.

var updateGolden = flag.Bool("update-golden", false, "rewrite golden served-JSON fixtures")

// newServeSystem builds a deterministic system, optionally with the tree
// cache enabled. Every call sees the same dataset and workload, so two
// systems built here are byte-for-byte interchangeable.
func newServeSystem(t testing.TB, cached bool) *repro.System {
	t.Helper()
	cfg := repro.Config{
		WorkloadSQL: repro.DemoWorkloadSQL(2000, 2),
		Intervals:   repro.DemoIntervals(),
	}
	if cached {
		cfg.TreeCacheEntries = 128
		cfg.TreeCacheBytes = 32 << 20
	}
	sys, err := repro.NewSystem(repro.DemoDataset(4000, 1), cfg)
	if err != nil {
		t.Fatalf("system: %v", err)
	}
	return sys
}

func newServeServer(t testing.TB, cfg Config) *httptest.Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return hs
}

// spellings are semantically identical queries written differently: attribute
// case, conjunct order, IN-list order and duplicates, and BETWEEN vs
// explicit bounds all vary. The canonical signature maps them to one key.
var spellings = []string{
	"SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA','Bellevue, WA','Redmond, WA','Kirkland, WA') AND price BETWEEN 150000 AND 400000",
	"SELECT * FROM ListProperty WHERE price BETWEEN 150000 AND 400000 AND neighborhood IN ('Kirkland, WA','Redmond, WA','Bellevue, WA','Seattle, WA')",
	"SELECT * FROM ListProperty WHERE NEIGHBORHOOD IN ('Bellevue, WA','Seattle, WA','Seattle, WA','Redmond, WA','Kirkland, WA') AND PRICE >= 150000 AND PRICE <= 400000",
	"select * from listproperty where Price between 150000 and 400000 and Neighborhood in ('Redmond, WA','Kirkland, WA','Seattle, WA','Bellevue, WA')",
}

// distinctSQL are queries that must NOT share cache entries with spellings
// or each other.
var distinctSQL = []string{
	"SELECT * FROM ListProperty WHERE price BETWEEN 150000 AND 400001 AND neighborhood IN ('Seattle, WA','Bellevue, WA','Redmond, WA','Kirkland, WA')",
	"SELECT * FROM ListProperty WHERE bedrooms >= 3",
	"SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA') AND bedrooms BETWEEN 2 AND 4",
}

func cacheStats(t *testing.T, url string) (entries int, hits, misses uint64) {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Cache struct {
			Entries int    `json:"entries"`
			Hits    uint64 `json:"hits"`
			Misses  uint64 `json:"misses"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.Cache.Entries, body.Cache.Hits, body.Cache.Misses
}

// TestServedJSONCacheInvisible drives every spelling through a cached and an
// uncached server and requires byte-identical bodies, while the cached
// server must collapse all spellings into a single cache entry.
func TestServedJSONCacheInvisible(t *testing.T) {
	cached := newServeServer(t, Config{System: newServeSystem(t, true), MaxDepth: 3, MaxChildren: 8})
	uncached := newServeServer(t, Config{System: newServeSystem(t, false), MaxDepth: 3, MaxChildren: 8})

	for i, sql := range spellings {
		respC, bodyC := postJSON(t, cached.URL+"/v1/query", queryRequest{SQL: sql})
		respU, bodyU := postJSON(t, uncached.URL+"/v1/query", queryRequest{SQL: sql})
		if respC.StatusCode != http.StatusOK || respU.StatusCode != http.StatusOK {
			t.Fatalf("spelling %d: status cached=%d uncached=%d", i, respC.StatusCode, respU.StatusCode)
		}
		if !bytes.Equal(bodyC, bodyU) {
			t.Fatalf("spelling %d: served JSON differs with cache:\ncached:   %s\nuncached: %s", i, bodyC, bodyU)
		}
		wantCache := "miss"
		if i > 0 {
			wantCache = "hit"
		}
		if got := respC.Header.Get("X-Cache"); got != wantCache {
			t.Errorf("spelling %d: X-Cache = %q; want %q", i, got, wantCache)
		}
		if got := respU.Header.Get("X-Cache"); got != "miss" {
			t.Errorf("spelling %d: uncached X-Cache = %q; want miss", i, got)
		}
	}

	entries, hits, misses := cacheStats(t, cached.URL)
	if entries != 1 {
		t.Errorf("spelling variants created %d cache entries; want 1", entries)
	}
	if misses != 1 || hits != uint64(len(spellings)-1) {
		t.Errorf("hits=%d misses=%d; want %d/1", hits, misses, len(spellings)-1)
	}

	// Distinct queries are distinct entries — and still byte-identical.
	for i, sql := range distinctSQL {
		_, bodyC := postJSON(t, cached.URL+"/v1/query", queryRequest{SQL: sql})
		_, bodyU := postJSON(t, uncached.URL+"/v1/query", queryRequest{SQL: sql})
		if !bytes.Equal(bodyC, bodyU) {
			t.Fatalf("distinct %d: served JSON differs with cache", i)
		}
	}
	if entries, _, _ = cacheStats(t, cached.URL); entries != 1+len(distinctSQL) {
		t.Errorf("entries = %d; want %d", entries, 1+len(distinctSQL))
	}

	// Refine must also serve from the cache and agree byte-for-byte.
	refC, bodyC := postJSON(t, cached.URL+"/v1/refine", refineRequest{SQL: spellings[1], Path: []int{0}})
	refU, bodyU := postJSON(t, uncached.URL+"/v1/refine", refineRequest{SQL: spellings[1], Path: []int{0}})
	if refC.StatusCode != http.StatusOK || refU.StatusCode != http.StatusOK {
		t.Fatalf("refine status cached=%d uncached=%d: %s", refC.StatusCode, refU.StatusCode, bodyC)
	}
	if !bytes.Equal(bodyC, bodyU) {
		t.Fatalf("refine JSON differs with cache:\ncached:   %s\nuncached: %s", bodyC, bodyU)
	}
	if got := refC.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("refine X-Cache = %q; want hit (tree cached by earlier /v1/query)", got)
	}
}

// TestGoldenServedJSON pins the served JSON at the HTTP layer — the
// externally visible contract of the serving path — across representative
// request shapes. Regenerate with -update-golden only for intentional
// behaviour changes.
func TestGoldenServedJSON(t *testing.T) {
	hs := newServeServer(t, Config{System: newServeSystem(t, true), MaxDepth: 3, MaxChildren: 6})

	scenarios := []struct {
		name string
		path string
		body any
	}{
		{"query-costbased", "/v1/query", queryRequest{SQL: spellings[0]}},
		{"query-costbased-respelled", "/v1/query", queryRequest{SQL: spellings[2]}},
		{"query-attrcost", "/v1/query", queryRequest{SQL: spellings[0], Technique: "attr-cost"}},
		{"query-nocost-shallow", "/v1/query", queryRequest{SQL: distinctSQL[2], Technique: "no-cost", MaxDepth: 2}},
		{"refine-first-child", "/v1/refine", refineRequest{SQL: spellings[0], Path: []int{0}}},
	}

	got := make(map[string]json.RawMessage, len(scenarios))
	for _, sc := range scenarios {
		resp, body := postJSON(t, hs.URL+sc.path, sc.body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", sc.name, resp.StatusCode, body)
		}
		got[sc.name] = json.RawMessage(bytes.TrimSpace(body))
	}

	golden := filepath.Join("testdata", "golden_serve.json")
	if *updateGolden {
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d scenarios)", golden, len(got))
		return
	}

	raw, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	var want map[string]json.RawMessage
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden has %d scenarios; test produced %d", len(want), len(got))
	}
	compact := func(raw json.RawMessage) string {
		var buf bytes.Buffer
		if err := json.Compact(&buf, raw); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	for name, wantBody := range want {
		if compact(wantBody) != compact(got[name]) {
			t.Errorf("%s: served JSON drifted from golden\ngot:  %s\nwant: %s", name, got[name], wantBody)
		}
	}
}

// TestConcurrentServeWithLearning hammers /v1/query on a learning server —
// cached and uncached side by side — with a mix of identical and distinct
// queries. Run under -race this exercises the snapshot swap against the
// singleflight cache. Afterwards both servers have folded the same query
// multiset (workload statistics are commutative counts), so probing them in
// the same order must produce byte-identical trees.
func TestConcurrentServeWithLearning(t *testing.T) {
	cached := newServeServer(t, Config{System: newServeSystem(t, true), Learn: true, MaxDepth: 3, MaxChildren: 8})
	uncached := newServeServer(t, Config{System: newServeSystem(t, false), Learn: true, MaxDepth: 3, MaxChildren: 8})

	// The workload each server sees: every worker sends the same mix, so
	// both servers learn the same multiset regardless of interleaving.
	// Attribute case is uniform across requests because first-seen case
	// wins in the statistics' display table.
	mix := append([]string{}, spellings[0], spellings[1], distinctSQL[0], distinctSQL[1], distinctSQL[2], spellings[0])

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*2*len(mix))
	hammer := func(url string) {
		defer wg.Done()
		for _, sql := range mix {
			resp, body := postJSONerr(url+"/v1/query", queryRequest{SQL: sql})
			if resp == nil {
				errs <- fmt.Errorf("no response for %q", sql)
				continue
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d for %q: %s", resp.StatusCode, sql, body)
			}
		}
	}
	for i := 0; i < workers; i++ {
		wg.Add(2)
		go hammer(cached.URL)
		go hammer(uncached.URL)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Both learned workers×len(mix) queries; generations must agree.
	genOf := func(url string) uint64 {
		resp, err := http.Get(url + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Generation uint64 `json:"generation"`
			Learned    int64  `json:"learned"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		if body.Learned != int64(workers*len(mix)) {
			t.Errorf("%s learned %d; want %d", url, body.Learned, workers*len(mix))
		}
		return body.Generation
	}
	if gc, gu := genOf(cached.URL), genOf(uncached.URL); gc != gu {
		t.Fatalf("generations diverged: cached=%d uncached=%d", gc, gu)
	}

	// Probe serially in lockstep: identical stats → byte-identical trees,
	// cache or no cache.
	for i, sql := range append(append([]string{}, spellings...), distinctSQL...) {
		_, bodyC := postJSON(t, cached.URL+"/v1/query", queryRequest{SQL: sql})
		_, bodyU := postJSON(t, uncached.URL+"/v1/query", queryRequest{SQL: sql})
		if !bytes.Equal(bodyC, bodyU) {
			t.Fatalf("probe %d (%q): served JSON differs after concurrent learning:\ncached:   %s\nuncached: %s", i, sql, bodyC, bodyU)
		}
	}
}

// postJSONerr is postJSON without the test dependency, for goroutines.
func postJSONerr(url string, body any) (*http.Response, []byte) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, nil
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return nil, nil
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return resp, nil
	}
	return resp, buf.Bytes()
}

// TestGenerationBumpInvalidatesCache shows learning invalidates by key: a
// learning server never re-serves a tree computed under superseded
// statistics, because the bumped generation is part of the cache key.
func TestGenerationBumpInvalidatesCache(t *testing.T) {
	hs := newServeServer(t, Config{System: newServeSystem(t, true), Learn: true})
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, hs.URL+"/v1/query", queryRequest{SQL: spellings[0]})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, body)
		}
		// Each request learns after serving, so the next identical request
		// runs under a new generation: always a miss.
		if got := resp.Header.Get("X-Cache"); got != "miss" {
			t.Errorf("request %d: X-Cache = %q; want miss (generation bumped)", i, got)
		}
	}
	if _, hits, misses := cacheStats(t, hs.URL); hits != 0 || misses != 3 {
		t.Errorf("hits=%d misses=%d; want 0/3", hits, misses)
	}
}

// TestRequestBodyTooLarge pins the 413 from MaxBytesReader.
func TestRequestBodyTooLarge(t *testing.T) {
	srv, err := New(Config{System: newServeSystem(t, false), MaxBodyBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)

	big := queryRequest{SQL: "SELECT * FROM ListProperty WHERE neighborhood IN ('" + strings.Repeat("x", 512) + "')"}
	for _, path := range []string{"/v1/query", "/v1/refine", "/v1/session"} {
		resp, body := postJSON(t, hs.URL+path, big)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status %d (%s); want 413", path, resp.StatusCode, body)
		}
	}
}

// TestClientCancellation pins the 499 path: a request whose context is
// already canceled must not run a categorization and must report the
// client-closed-request status.
func TestClientCancellation(t *testing.T) {
	for _, cachedSys := range []bool{false, true} {
		srv, err := New(Config{System: newServeSystem(t, cachedSys)})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		raw, _ := json.Marshal(queryRequest{SQL: spellings[0]})
		req := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(raw)).WithContext(ctx)
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		if rec.Code != StatusClientClosedRequest {
			t.Errorf("cached=%v: status = %d; want %d", cachedSys, rec.Code, StatusClientClosedRequest)
		}
	}
}
