// Package server exposes the categorizer as an HTTP/JSON service — the
// web-facing shape of the paper's treeview application: a client POSTs a
// SQL query and receives the categorized result tree, explores it, and can
// turn any category path back into a refined query.
//
// Endpoints:
//
//	GET  /healthz        liveness plus dataset/workload sizes
//	GET  /v1/attributes  schema with per-attribute workload usage
//	POST /v1/query       {"sql": …, "technique": …, …} → categorized tree
//	POST /v1/refine      {"sql": …, "path": [0,2]} → refined SQL
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/resilience"
)

// StatusClientClosedRequest is the (nginx-conventional) status reported when
// the client abandoned the request before the categorization finished.
const StatusClientClosedRequest = 499

// Config configures a Server.
type Config struct {
	// System is the query/categorization engine to serve. Required. Build
	// it with repro.Config.TreeCacheEntries/TreeCacheBytes to memoize served
	// trees; the server reports hits via the X-Cache response header.
	System *repro.System
	// Options are the default categorizer parameters; per-request options
	// override individual fields.
	Options repro.Options
	// MaxDepth / MaxChildren bound the JSON tree payload (0 = no bound).
	MaxDepth    int
	MaxChildren int
	// Learn folds every served /v1/query into the workload statistics, so
	// the system's trees adapt to its own query stream. Requires a System
	// built from a raw workload.
	Learn bool
	// MaxBodyBytes bounds request bodies (413 beyond it). Default 1 MiB.
	MaxBodyBytes int64
	// MaxSessions caps the in-memory exploration-session table; the
	// least-recently-touched session is evicted at the cap. Default 1024.
	MaxSessions int
	// SessionTTL expires sessions untouched for this long. Default 30m.
	SessionTTL time.Duration

	// MaxConcurrent bounds how many /v1/query and /v1/refine requests may
	// compute categorizations at once (cache hits bypass the limiter — they
	// cost no computation). 0 disables admission control.
	MaxConcurrent int
	// MaxQueue bounds how many requests may wait for a computation slot
	// beyond MaxConcurrent; overflow is shed immediately with 503 and
	// Retry-After. 0 defaults to 2×MaxConcurrent; negative means no queue.
	MaxQueue int
	// Deadline is the server-imposed wall budget per categorization request;
	// when it fires the request fails with 504 (unlike a client hang-up,
	// which is 499). 0 means no server deadline. Requests may tighten it via
	// "timeoutMs".
	Deadline time.Duration
	// SoftBudget is the budget granted to the full-fidelity categorization
	// before Degrade kicks in; 0 defaults to half the effective deadline.
	SoftBudget time.Duration
	// Degrade serves cheaper approximations instead of 504s when the soft
	// budget is blown: first the Attr-Cost baseline, finally a flat
	// SHOWTUPLES tree. Degraded responses carry X-Degraded and a "degraded"
	// body field, and are never cached as full-fidelity trees.
	Degrade bool

	// WarmTopK enables predictive cache pre-warming (DESIGN.md §13): after
	// each published learn, a background worker re-categorizes the WarmTopK
	// most-requested signatures into the new generation, taking only idle
	// admission slots so it never competes with foreground traffic. Requires
	// Learn; 0 disables warming.
	WarmTopK int
	// WarmBudget is the wall budget per warming build. Default 2s.
	WarmBudget time.Duration
}

// Server handles the HTTP API.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	adaptive *repro.AdaptiveSystem // non-nil when Learn is enabled
	sessions *sessionTable
	limiter  *resilience.Limiter // nil when admission control is off
	draining atomic.Bool         // set by BeginShutdown
}

// New builds a Server. It errors when no System is configured, or when
// Learn is requested on a system that cannot learn.
func New(cfg Config) (*Server, error) {
	if cfg.System == nil {
		return nil, errors.New("server: config requires a System")
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 1024
	}
	if cfg.SessionTTL <= 0 {
		cfg.SessionTTL = 30 * time.Minute
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 2 * cfg.MaxConcurrent
	}
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		sessions: newSessionTable(cfg.MaxSessions, cfg.SessionTTL),
		limiter:  resilience.NewLimiter(cfg.MaxConcurrent, cfg.MaxQueue),
	}
	if cfg.Learn {
		a, err := cfg.System.Adaptive()
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.adaptive = a
		if cfg.WarmTopK > 0 {
			a.StartWarmer(repro.WarmerConfig{
				TopK:    cfg.WarmTopK,
				Budget:  cfg.WarmBudget,
				Opts:    cfg.Options,
				Limiter: s.limiter,
			})
		}
	} else if cfg.WarmTopK > 0 {
		return nil, errors.New("server: WarmTopK requires Learn")
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/attributes", s.handleAttributes)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/refine", s.handleRefine)
	s.mux.HandleFunc("POST /v1/session", s.handleSessionCreate)
	s.mux.HandleFunc("POST /v1/session/{id}/op", s.handleSessionOp)
	s.mux.HandleFunc("GET /v1/session/{id}", s.handleSessionStatus)
	return s, nil
}

// Handler returns the root http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginShutdown puts the server into drain mode: new categorization requests
// are shed with 503 (a load balancer should retry elsewhere), learning stops
// so the statistics quiesce while in-flight requests finish, and the
// pre-warmer is stopped (nothing left to warm for). Call it before
// http.Server.Shutdown; it is safe to call more than once.
func (s *Server) BeginShutdown() {
	s.draining.Store(true)
	if s.adaptive != nil {
		s.adaptive.StopWarmer()
	}
}

// rejectDraining sheds the request with 503 when the server is draining.
func (s *Server) rejectDraining(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	w.Header().Set("Retry-After", "1")
	writeErr(w, http.StatusServiceUnavailable, "server is draining")
	return true
}

// apiError is the uniform error payload.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header cannot be reported to the client.
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// currentSystem returns the system snapshot to serve this request from: the
// adaptive system's latest published snapshot, or the fixed base system.
func (s *Server) currentSystem() *repro.System {
	if s.adaptive != nil {
		return s.adaptive.System()
	}
	return s.cfg.System
}

// decodeBody bounds and decodes a JSON request body, writing the error
// response itself (413 for oversized bodies, 400 otherwise) and reporting
// whether the handler may proceed.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, "request body over %d bytes", tooBig.Limit)
			return false
		}
		writeErr(w, http.StatusBadRequest, "malformed JSON: %v", err)
		return false
	}
	return true
}

// writeServeErr maps a serving-path error to a status. A shed request is 503
// with Retry-After (the server did no work; retry is cheap), as is a
// recovered categorizer panic (transient: the process survived and the entry
// is not poisoned). A *server-imposed* deadline — recognized by the
// resilience.ErrServerTimeout cancellation cause, either tagged on the error
// by the serving path or still on ctx for errors raised before it — is 504;
// plain context cancellation/deadline is the client's doing and stays 499.
// Everything else is the caller's fallback (bad SQL, unknown technique, …).
func writeServeErr(w http.ResponseWriter, ctx context.Context, err error, fallback int) {
	var pe *resilience.PanicError
	ctxErr := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	switch {
	case errors.Is(err, resilience.ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
	case errors.As(err, &pe):
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, "transient categorization failure: %v", err)
	case errors.Is(err, resilience.ErrServerTimeout),
		ctxErr && errors.Is(context.Cause(ctx), resilience.ErrServerTimeout):
		writeErr(w, http.StatusGatewayTimeout, "server deadline exceeded: %v", err)
	case ctxErr:
		writeErr(w, StatusClientClosedRequest, "request abandoned: %v", err)
	default:
		writeErr(w, fallback, "%v", err)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	sys := s.currentSystem()
	body := map[string]any{
		"status":     "ok",
		"rows":       sys.Relation().Len(),
		"generation": sys.Generation(),
	}
	if s.adaptive != nil {
		body["workloadQueries"] = s.adaptive.WorkloadSize()
		body["learned"] = s.adaptive.Learned()
	} else {
		body["workloadQueries"] = sys.Stats().N()
	}
	if sys.CacheEnabled() {
		body["cache"] = sys.CacheStats()
		// Incremental-repair counters (DESIGN.md §13): how stale-generation
		// misses were satisfied — reused outright, repaired in place, or
		// rebuilt from scratch — plus the node-level copy/rebuild split.
		body["repair"] = sys.RepairStats()
	}
	if s.adaptive != nil {
		if ws, ok := s.adaptive.WarmerStats(); ok {
			body["warmer"] = ws
		}
	}
	// Selection-engine counters (DESIGN.md §9): vectorized vs fallback path
	// counts, cumulative Select wall time, and the conjunct-bitmap cache's
	// hits/misses/occupancy.
	body["select"] = sys.SelectStats()
	// Segmented-storage counters (DESIGN.md §14): sealed segments and bytes,
	// tail occupancy, seal count, and zone-map segments pruned vs scanned.
	body["storage"] = sys.StorageStats()
	// Durable-store state (DESIGN.md §15), present only for disk-backed
	// systems: WAL/segment/fsync counters, recovery outcome, and — when
	// recovery quarantined corrupt segments — the degraded flag plus the
	// quarantined files and row ranges. Degraded storage also flips the
	// top-level status so naive health probes notice.
	if ds, ok := sys.DurabilityStats(); ok {
		body["durability"] = ds
		if ds.Degraded {
			body["status"] = "degraded"
		}
	}
	// Shard-parallel build counters (DESIGN.md §12), plus GOMAXPROCS and the
	// active shard count so capacity debugging needs no flag archaeology.
	body["sharding"] = sys.ShardingStats()
	// Resilience counters (DESIGN.md §10): admission queue/shed, degradation
	// ladder activations, recovered panics, drain state.
	res := map[string]any{
		"serving":  sys.ResilienceStats(),
		"draining": s.draining.Load(),
	}
	if s.limiter != nil {
		res["admission"] = s.limiter.Stats()
	}
	body["resilience"] = res
	writeJSON(w, http.StatusOK, body)
}

// attributeInfo is one /v1/attributes row.
type attributeInfo struct {
	Name          string  `json:"name"`
	Type          string  `json:"type"`
	UsageFraction float64 `json:"usageFraction"`
}

func (s *Server) handleAttributes(w http.ResponseWriter, _ *http.Request) {
	// The current snapshot, not the construction-time system: with Learn on,
	// the reported usage fractions must reflect the learned workload.
	sys := s.currentSystem()
	schema := sys.Relation().Schema()
	out := make([]attributeInfo, 0, schema.Len())
	for i := 0; i < schema.Len(); i++ {
		a := schema.Attr(i)
		out = append(out, attributeInfo{
			Name:          a.Name,
			Type:          a.Type.String(),
			UsageFraction: sys.Stats().UsageFraction(a.Name),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// queryRequest is the /v1/query payload.
type queryRequest struct {
	SQL string `json:"sql"`
	// Technique: "cost-based" (default), "attr-cost", or "no-cost".
	Technique string `json:"technique,omitempty"`
	// M/K/X override the server's default categorizer options when > 0.
	M int     `json:"m,omitempty"`
	K float64 `json:"k,omitempty"`
	X float64 `json:"x,omitempty"`
	// MaxDepth / MaxChildren bound the returned tree (≤ server bounds).
	MaxDepth    int `json:"maxDepth,omitempty"`
	MaxChildren int `json:"maxChildren,omitempty"`
	// TimeoutMs tightens the server's deadline for this request (it can
	// never loosen a configured one).
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

// treeNode is the JSON rendering of one category.
type treeNode struct {
	Label    string     `json:"label"`
	Attr     string     `json:"attr,omitempty"`
	Count    int        `json:"count"`
	P        float64    `json:"p"`
	Pw       float64    `json:"pw"`
	Path     []int      `json:"path"`
	Children []treeNode `json:"children,omitempty"`
	// Elided counts children omitted due to depth/width bounds.
	Elided int `json:"elided,omitempty"`
}

// queryResponse is the /v1/query result.
type queryResponse struct {
	ResultCount int      `json:"resultCount"`
	Levels      []string `json:"levels"`
	EstCostAll  float64  `json:"estCostAll"`
	EstCostOne  float64  `json:"estCostOne"`
	Categories  int      `json:"categories"`
	// Degraded is set ("attr-cost" or "flat") when the deadline budget
	// forced a cheaper presentation than the requested technique.
	Degraded string   `json:"degraded,omitempty"`
	Tree     treeNode `json:"tree"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	var req queryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	tech, err := parseTechnique(req.Technique)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	q, err := repro.ParseQuery(req.SQL)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts := s.cfg.Options
	if req.M > 0 {
		opts.M = req.M
	}
	if req.K > 0 {
		opts.K = req.K
	}
	if req.X > 0 {
		opts.X = req.X
	}
	out, ok := s.serveTree(w, r, q, tech, opts, req.TimeoutMs, true, http.StatusBadRequest)
	if !ok {
		return
	}
	tree := out.Tree
	setCacheHeader(w, out.Hit)
	setDegradedHeader(w, out.Degraded)
	setStorageHeader(w, s.currentSystem())
	maxDepth := boundOrDefault(req.MaxDepth, s.cfg.MaxDepth)
	maxChildren := boundOrDefault(req.MaxChildren, s.cfg.MaxChildren)
	writeJSON(w, http.StatusOK, queryResponse{
		ResultCount: tree.Root.Size(),
		Levels:      tree.LevelAttrs,
		EstCostAll:  repro.EstimateCostAll(tree),
		EstCostOne:  repro.EstimateCostOne(tree, 0.5),
		Categories:  tree.NodeCount(),
		Degraded:    out.Degraded.String(),
		Tree:        toJSONTree(tree.Root, nil, maxDepth, maxChildren),
	})
}

// serveTree is the resilient serving path shared by /v1/query and
// /v1/refine (DESIGN.md §10): probe the cache first (hits bypass admission
// control — they cost no computation), then acquire a concurrency slot,
// then serve under the deadline/degradation policy. On failure it writes
// the error response and reports ok = false.
func (s *Server) serveTree(w http.ResponseWriter, r *http.Request, q *repro.Query, tech repro.Technique, opts repro.Options, timeoutMs int, learn bool, fallback int) (repro.ServeOutcome, bool) {
	sys := s.currentSystem()
	if tree, ok := sys.Peek(q, tech, opts); ok {
		if learn && s.adaptive != nil && !s.draining.Load() {
			s.adaptive.LearnQuery(q)
		}
		return repro.ServeOutcome{Tree: tree, Hit: true}, true
	}
	ctx := r.Context()
	deadline := tightest(s.cfg.Deadline, time.Duration(timeoutMs)*time.Millisecond)
	if deadline > 0 {
		// The deadline wraps the whole computation, queue wait included: a
		// request that spends its budget waiting for a slot 504s like one
		// that spends it categorizing.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, deadline, resilience.ErrServerTimeout)
		defer cancel()
	}
	release, err := s.limiter.Acquire(ctx)
	if err != nil {
		writeServeErr(w, ctx, err, http.StatusServiceUnavailable)
		return repro.ServeOutcome{}, false
	}
	defer release()
	pol := repro.ServePolicy{SoftBudget: s.cfg.SoftBudget, Degrade: s.cfg.Degrade}
	if pol.Degrade && pol.SoftBudget <= 0 && deadline > 0 {
		pol.SoftBudget = deadline / 2
	}
	var out repro.ServeOutcome
	if s.adaptive != nil {
		out, err = s.adaptive.ExploreParsedWith(ctx, q, tech, opts, pol, learn && !s.draining.Load())
	} else {
		out, err = s.cfg.System.ServeParsedWith(ctx, q, tech, opts, pol)
	}
	if err != nil {
		writeServeErr(w, ctx, err, fallback)
		return out, false
	}
	if out.Tree == nil {
		writeErr(w, http.StatusInternalServerError, "categorization produced no tree")
		return out, false
	}
	return out, true
}

// tightest combines the configured deadline with the per-request one: the
// request may only tighten a configured deadline, and may impose one when
// the server has none.
func tightest(def, req time.Duration) time.Duration {
	switch {
	case req <= 0:
		return def
	case def > 0 && req > def:
		return def
	default:
		return req
	}
}

// setDegradedHeader reports the degradation rung, if any, to clients.
func setDegradedHeader(w http.ResponseWriter, d repro.Degradation) {
	if d != repro.DegradeNone {
		w.Header().Set("X-Degraded", d.String())
	}
}

// setStorageHeader marks responses served from a degraded durable store
// (quarantined segments: the rows are correct but incomplete, DESIGN.md §15).
// Added — not Set — so a response can carry both a ladder rung and "storage".
func setStorageHeader(w http.ResponseWriter, sys *repro.System) {
	if sys.StorageDegraded() {
		w.Header().Add("X-Degraded", "storage")
	}
}

// setCacheHeader reports cache disposition to clients (and to the catload
// generator, which splits latency percentiles on it).
func setCacheHeader(w http.ResponseWriter, hit bool) {
	if hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
}

// boundOrDefault combines the request bound with the server bound: the
// request may only tighten.
func boundOrDefault(req, def int) int {
	if req <= 0 {
		return def
	}
	if def > 0 && req > def {
		return def
	}
	return req
}

func toJSONTree(n *repro.Node, path []int, maxDepth, maxChildren int) treeNode {
	out := treeNode{
		Label: n.Label.String(),
		Attr:  n.Label.Attr,
		Count: n.Size(),
		P:     n.P,
		Pw:    n.Pw,
		Path:  append([]int(nil), path...),
	}
	if out.Path == nil {
		out.Path = []int{}
	}
	if n.IsLeaf() {
		return out
	}
	if maxDepth > 0 && len(path) >= maxDepth {
		out.Elided = len(n.Children)
		return out
	}
	limit := len(n.Children)
	if maxChildren > 0 && limit > maxChildren {
		limit = maxChildren
		out.Elided = len(n.Children) - limit
	}
	for i := 0; i < limit; i++ {
		out.Children = append(out.Children, toJSONTree(n.Children[i], append(path, i), maxDepth, maxChildren))
	}
	return out
}

// refineRequest is the /v1/refine payload.
type refineRequest struct {
	SQL  string `json:"sql"`
	Path []int  `json:"path"`
	// Technique/M/K/X must match the original /v1/query call for the path
	// to address the same node.
	Technique string  `json:"technique,omitempty"`
	M         int     `json:"m,omitempty"`
	K         float64 `json:"k,omitempty"`
	X         float64 `json:"x,omitempty"`
	// TimeoutMs tightens the server's deadline for this request.
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

// refineResponse carries the narrowed query.
type refineResponse struct {
	SQL         string `json:"sql"`
	ResultCount int    `json:"resultCount"`
}

func (s *Server) handleRefine(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	var req refineRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	tech, err := parseTechnique(req.Technique)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	q, err := repro.ParseQuery(req.SQL)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts := s.cfg.Options
	if req.M > 0 {
		opts.M = req.M
	}
	if req.K > 0 {
		opts.K = req.K
	}
	if req.X > 0 {
		opts.X = req.X
	}
	// Refining does not learn: the client is navigating a tree /v1/query
	// already folded in, not issuing a new query.
	out, ok := s.serveTree(w, r, q, tech, opts, req.TimeoutMs, false, http.StatusInternalServerError)
	if !ok {
		return
	}
	refined, err := out.Tree.RefineQuery(q, req.Path)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	setCacheHeader(w, out.Hit)
	setDegradedHeader(w, out.Degraded)
	sys := s.currentSystem()
	setStorageHeader(w, sys)
	writeJSON(w, http.StatusOK, refineResponse{
		SQL:         refined.String(),
		ResultCount: len(sys.Relation().Select(refined.Predicate())),
	})
}

func parseTechnique(s string) (repro.Technique, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "cost-based", "cost", "costbased":
		return repro.CostBased, nil
	case "attr-cost", "attr", "attrcost":
		return repro.AttrCost, nil
	case "no-cost", "nocost", "no":
		return repro.NoCost, nil
	default:
		return 0, fmt.Errorf("unknown technique %q (want cost-based, attr-cost, or no-cost)", s)
	}
}
