// Package server exposes the categorizer as an HTTP/JSON service — the
// web-facing shape of the paper's treeview application: a client POSTs a
// SQL query and receives the categorized result tree, explores it, and can
// turn any category path back into a refined query.
//
// Endpoints:
//
//	GET  /healthz        liveness plus dataset/workload sizes
//	GET  /v1/attributes  schema with per-attribute workload usage
//	POST /v1/query       {"sql": …, "technique": …, …} → categorized tree
//	POST /v1/refine      {"sql": …, "path": [0,2]} → refined SQL
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro"
)

// StatusClientClosedRequest is the (nginx-conventional) status reported when
// the client abandoned the request before the categorization finished.
const StatusClientClosedRequest = 499

// Config configures a Server.
type Config struct {
	// System is the query/categorization engine to serve. Required. Build
	// it with repro.Config.TreeCacheEntries/TreeCacheBytes to memoize served
	// trees; the server reports hits via the X-Cache response header.
	System *repro.System
	// Options are the default categorizer parameters; per-request options
	// override individual fields.
	Options repro.Options
	// MaxDepth / MaxChildren bound the JSON tree payload (0 = no bound).
	MaxDepth    int
	MaxChildren int
	// Learn folds every served /v1/query into the workload statistics, so
	// the system's trees adapt to its own query stream. Requires a System
	// built from a raw workload.
	Learn bool
	// MaxBodyBytes bounds request bodies (413 beyond it). Default 1 MiB.
	MaxBodyBytes int64
	// MaxSessions caps the in-memory exploration-session table; the
	// least-recently-touched session is evicted at the cap. Default 1024.
	MaxSessions int
	// SessionTTL expires sessions untouched for this long. Default 30m.
	SessionTTL time.Duration
}

// Server handles the HTTP API.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	adaptive *repro.AdaptiveSystem // non-nil when Learn is enabled
	sessions *sessionTable
}

// New builds a Server. It errors when no System is configured, or when
// Learn is requested on a system that cannot learn.
func New(cfg Config) (*Server, error) {
	if cfg.System == nil {
		return nil, errors.New("server: config requires a System")
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 1024
	}
	if cfg.SessionTTL <= 0 {
		cfg.SessionTTL = 30 * time.Minute
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux(), sessions: newSessionTable(cfg.MaxSessions, cfg.SessionTTL)}
	if cfg.Learn {
		a, err := cfg.System.Adaptive()
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.adaptive = a
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/attributes", s.handleAttributes)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/refine", s.handleRefine)
	s.mux.HandleFunc("POST /v1/session", s.handleSessionCreate)
	s.mux.HandleFunc("POST /v1/session/{id}/op", s.handleSessionOp)
	s.mux.HandleFunc("GET /v1/session/{id}", s.handleSessionStatus)
	return s, nil
}

// Handler returns the root http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// apiError is the uniform error payload.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header cannot be reported to the client.
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// currentSystem returns the system snapshot to serve this request from: the
// adaptive system's latest published snapshot, or the fixed base system.
func (s *Server) currentSystem() *repro.System {
	if s.adaptive != nil {
		return s.adaptive.System()
	}
	return s.cfg.System
}

// decodeBody bounds and decodes a JSON request body, writing the error
// response itself (413 for oversized bodies, 400 otherwise) and reporting
// whether the handler may proceed.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, "request body over %d bytes", tooBig.Limit)
			return false
		}
		writeErr(w, http.StatusBadRequest, "malformed JSON: %v", err)
		return false
	}
	return true
}

// writeServeErr maps a serving-path error to a status: cancellation of the
// request context becomes 499 (client closed request), everything else is
// the caller's fallback (bad SQL, unknown technique, …).
func writeServeErr(w http.ResponseWriter, err error, fallback int) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		writeErr(w, StatusClientClosedRequest, "request abandoned: %v", err)
		return
	}
	writeErr(w, fallback, "%v", err)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	sys := s.currentSystem()
	body := map[string]any{
		"status":     "ok",
		"rows":       sys.Relation().Len(),
		"generation": sys.Generation(),
	}
	if s.adaptive != nil {
		body["workloadQueries"] = s.adaptive.WorkloadSize()
		body["learned"] = s.adaptive.Learned()
	} else {
		body["workloadQueries"] = sys.Stats().N()
	}
	if sys.CacheEnabled() {
		body["cache"] = sys.CacheStats()
	}
	// Selection-engine counters (DESIGN.md §9): vectorized vs fallback path
	// counts, cumulative Select wall time, and the conjunct-bitmap cache's
	// hits/misses/occupancy.
	body["select"] = sys.SelectStats()
	writeJSON(w, http.StatusOK, body)
}

// attributeInfo is one /v1/attributes row.
type attributeInfo struct {
	Name          string  `json:"name"`
	Type          string  `json:"type"`
	UsageFraction float64 `json:"usageFraction"`
}

func (s *Server) handleAttributes(w http.ResponseWriter, _ *http.Request) {
	sys := s.cfg.System
	schema := sys.Relation().Schema()
	out := make([]attributeInfo, 0, schema.Len())
	for i := 0; i < schema.Len(); i++ {
		a := schema.Attr(i)
		out = append(out, attributeInfo{
			Name:          a.Name,
			Type:          a.Type.String(),
			UsageFraction: sys.Stats().UsageFraction(a.Name),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// queryRequest is the /v1/query payload.
type queryRequest struct {
	SQL string `json:"sql"`
	// Technique: "cost-based" (default), "attr-cost", or "no-cost".
	Technique string `json:"technique,omitempty"`
	// M/K/X override the server's default categorizer options when > 0.
	M int     `json:"m,omitempty"`
	K float64 `json:"k,omitempty"`
	X float64 `json:"x,omitempty"`
	// MaxDepth / MaxChildren bound the returned tree (≤ server bounds).
	MaxDepth    int `json:"maxDepth,omitempty"`
	MaxChildren int `json:"maxChildren,omitempty"`
}

// treeNode is the JSON rendering of one category.
type treeNode struct {
	Label    string     `json:"label"`
	Attr     string     `json:"attr,omitempty"`
	Count    int        `json:"count"`
	P        float64    `json:"p"`
	Pw       float64    `json:"pw"`
	Path     []int      `json:"path"`
	Children []treeNode `json:"children,omitempty"`
	// Elided counts children omitted due to depth/width bounds.
	Elided int `json:"elided,omitempty"`
}

// queryResponse is the /v1/query result.
type queryResponse struct {
	ResultCount int      `json:"resultCount"`
	Levels      []string `json:"levels"`
	EstCostAll  float64  `json:"estCostAll"`
	EstCostOne  float64  `json:"estCostOne"`
	Categories  int      `json:"categories"`
	Tree        treeNode `json:"tree"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	tech, err := parseTechnique(req.Technique)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts := s.cfg.Options
	if req.M > 0 {
		opts.M = req.M
	}
	if req.K > 0 {
		opts.K = req.K
	}
	if req.X > 0 {
		opts.X = req.X
	}
	var (
		tree        *repro.Tree
		resultCount int
		hit         bool
	)
	if s.adaptive != nil {
		tree, resultCount, hit, err = s.adaptive.ExploreCtx(r.Context(), req.SQL, tech, opts, true)
	} else {
		tree, resultCount, hit, err = s.cfg.System.Serve(r.Context(), req.SQL, tech, opts)
	}
	if err != nil {
		writeServeErr(w, err, http.StatusBadRequest)
		return
	}
	if tree == nil {
		writeErr(w, http.StatusInternalServerError, "categorization produced no tree")
		return
	}
	setCacheHeader(w, hit)
	maxDepth := boundOrDefault(req.MaxDepth, s.cfg.MaxDepth)
	maxChildren := boundOrDefault(req.MaxChildren, s.cfg.MaxChildren)
	writeJSON(w, http.StatusOK, queryResponse{
		ResultCount: resultCount,
		Levels:      tree.LevelAttrs,
		EstCostAll:  repro.EstimateCostAll(tree),
		EstCostOne:  repro.EstimateCostOne(tree, 0.5),
		Categories:  tree.NodeCount(),
		Tree:        toJSONTree(tree.Root, nil, maxDepth, maxChildren),
	})
}

// setCacheHeader reports cache disposition to clients (and to the catload
// generator, which splits latency percentiles on it).
func setCacheHeader(w http.ResponseWriter, hit bool) {
	if hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
}

// boundOrDefault combines the request bound with the server bound: the
// request may only tighten.
func boundOrDefault(req, def int) int {
	if req <= 0 {
		return def
	}
	if def > 0 && req > def {
		return def
	}
	return req
}

func toJSONTree(n *repro.Node, path []int, maxDepth, maxChildren int) treeNode {
	out := treeNode{
		Label: n.Label.String(),
		Attr:  n.Label.Attr,
		Count: n.Size(),
		P:     n.P,
		Pw:    n.Pw,
		Path:  append([]int(nil), path...),
	}
	if out.Path == nil {
		out.Path = []int{}
	}
	if n.IsLeaf() {
		return out
	}
	if maxDepth > 0 && len(path) >= maxDepth {
		out.Elided = len(n.Children)
		return out
	}
	limit := len(n.Children)
	if maxChildren > 0 && limit > maxChildren {
		limit = maxChildren
		out.Elided = len(n.Children) - limit
	}
	for i := 0; i < limit; i++ {
		out.Children = append(out.Children, toJSONTree(n.Children[i], append(path, i), maxDepth, maxChildren))
	}
	return out
}

// refineRequest is the /v1/refine payload.
type refineRequest struct {
	SQL  string `json:"sql"`
	Path []int  `json:"path"`
	// Technique/M/K/X must match the original /v1/query call for the path
	// to address the same node.
	Technique string  `json:"technique,omitempty"`
	M         int     `json:"m,omitempty"`
	K         float64 `json:"k,omitempty"`
	X         float64 `json:"x,omitempty"`
}

// refineResponse carries the narrowed query.
type refineResponse struct {
	SQL         string `json:"sql"`
	ResultCount int    `json:"resultCount"`
}

func (s *Server) handleRefine(w http.ResponseWriter, r *http.Request) {
	var req refineRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	tech, err := parseTechnique(req.Technique)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Refine against the snapshot /v1/query currently serves, so the path
	// addresses the same tree the client is looking at.
	sys := s.currentSystem()
	q, err := repro.ParseQuery(req.SQL)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts := s.cfg.Options
	if req.M > 0 {
		opts.M = req.M
	}
	if req.K > 0 {
		opts.K = req.K
	}
	if req.X > 0 {
		opts.X = req.X
	}
	tree, hit, err := sys.ServeParsed(r.Context(), q, tech, opts)
	if err != nil {
		writeServeErr(w, err, http.StatusInternalServerError)
		return
	}
	refined, err := tree.RefineQuery(q, req.Path)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	setCacheHeader(w, hit)
	writeJSON(w, http.StatusOK, refineResponse{
		SQL:         refined.String(),
		ResultCount: len(sys.Relation().Select(refined.Predicate())),
	})
}

func parseTechnique(s string) (repro.Technique, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "cost-based", "cost", "costbased":
		return repro.CostBased, nil
	case "attr-cost", "attr", "attrcost":
		return repro.AttrCost, nil
	case "no-cost", "nocost", "no":
		return repro.NoCost, nil
	default:
		return 0, fmt.Errorf("unknown technique %q (want cost-based, attr-cost, or no-cost)", s)
	}
}
