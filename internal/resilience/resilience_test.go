package resilience

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDegradationString(t *testing.T) {
	cases := []struct {
		d    Degradation
		want string
	}{
		{DegradeNone, ""},
		{DegradeAttrCost, "attr-cost"},
		{DegradeFlat, "flat"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("Degradation(%d).String() = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestPolicyEffective(t *testing.T) {
	// Degrade with a deadline but no explicit soft budget: half the deadline.
	p := Policy{Deadline: 2 * time.Second, Degrade: true}.Effective()
	if p.SoftBudget != time.Second {
		t.Errorf("SoftBudget = %v, want 1s", p.SoftBudget)
	}
	// Explicit soft budget survives.
	p = Policy{Deadline: 2 * time.Second, SoftBudget: 100 * time.Millisecond, Degrade: true}.Effective()
	if p.SoftBudget != 100*time.Millisecond {
		t.Errorf("SoftBudget = %v, want 100ms", p.SoftBudget)
	}
	// No deadline: nothing to derive from.
	p = Policy{Degrade: true}.Effective()
	if p.SoftBudget != 0 {
		t.Errorf("SoftBudget = %v, want 0", p.SoftBudget)
	}
	// No degradation: soft budget untouched (it would be unused anyway).
	p = Policy{Deadline: 2 * time.Second}.Effective()
	if p.SoftBudget != 0 {
		t.Errorf("SoftBudget = %v, want 0", p.SoftBudget)
	}
}

func TestPanicError(t *testing.T) {
	err := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = NewPanicError(p)
			}
		}()
		panic("boom")
	}()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a *PanicError", err)
	}
	if pe.Value != "boom" {
		t.Errorf("Value = %v, want boom", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "TestPanicError") {
		t.Errorf("Stack missing capture site:\n%s", pe.Stack)
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Errorf("Error() = %q, want it to mention the panic value", err.Error())
	}
}

func TestServerTimeoutCause(t *testing.T) {
	// The 504-vs-499 distinction rests on the cancellation cause surviving
	// the context tree.
	ctx, cancel := context.WithTimeoutCause(context.Background(), time.Nanosecond, ErrServerTimeout)
	defer cancel()
	<-ctx.Done()
	if !errors.Is(context.Cause(ctx), ErrServerTimeout) {
		t.Errorf("cause = %v, want ErrServerTimeout", context.Cause(ctx))
	}
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Errorf("ctx.Err() = %v, want DeadlineExceeded", ctx.Err())
	}
}
