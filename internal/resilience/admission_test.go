package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilLimiterAdmitsEverything(t *testing.T) {
	var l *Limiter
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("nil limiter: %v", err)
	}
	release()
	if s := l.Stats(); s != (AdmissionStats{}) {
		t.Errorf("nil limiter stats = %+v, want zeroes", s)
	}
}

func TestLimiterDisabledByConfig(t *testing.T) {
	if l := NewLimiter(0, 10); l != nil {
		t.Errorf("NewLimiter(0, _) = %v, want nil", l)
	}
	if l := NewLimiter(-1, 10); l != nil {
		t.Errorf("NewLimiter(-1, _) = %v, want nil", l)
	}
}

func TestLimiterShedsBeyondQueue(t *testing.T) {
	l := NewLimiter(1, 0) // one slot, no queue
	r1, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second acquire err = %v, want ErrOverloaded", err)
	}
	s := l.Stats()
	if s.Shed != 1 || s.Admitted != 1 || s.InFlight != 1 {
		t.Errorf("stats = %+v, want shed=1 admitted=1 inFlight=1", s)
	}
	r1()
	r1() // idempotent
	r2, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	r2()
	if s := l.Stats(); s.InFlight != 0 {
		t.Errorf("inFlight = %d after releases, want 0", s.InFlight)
	}
}

func TestLimiterQueueAbsorbsThenSheds(t *testing.T) {
	l := NewLimiter(1, 1)
	r1, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	// One waiter fits in the queue.
	got := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		close(started)
		r, err := l.Acquire(context.Background())
		if err == nil {
			defer r()
		}
		got <- err
	}()
	<-started
	waitFor(t, func() bool { return l.Stats().QueueDepth == 1 })
	// A second waiter overflows the queue and is shed immediately.
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow acquire err = %v, want ErrOverloaded", err)
	}
	r1()
	if err := <-got; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
}

func TestLimiterHonorsContextWhileQueued(t *testing.T) {
	l := NewLimiter(1, 4)
	r1, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	defer r1()
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := l.Acquire(ctx)
		got <- err
	}()
	waitFor(t, func() bool { return l.Stats().QueueDepth == 1 })
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued acquire err = %v, want context.Canceled", err)
	}
	waitFor(t, func() bool { return l.Stats().QueueDepth == 0 })
}

func TestLimiterRejectsDeadContextWithoutQueueing(t *testing.T) {
	l := NewLimiter(1, 4)
	r1, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	defer r1()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := l.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead-ctx acquire err = %v, want context.Canceled", err)
	}
	if s := l.Stats(); s.QueueDepth != 0 || s.Shed != 0 {
		t.Errorf("stats = %+v, want no queueing and no shed for a dead request", s)
	}
}

func TestLimiterConcurrencyBound(t *testing.T) {
	const slots, workers = 3, 20
	l := NewLimiter(slots, workers)
	var (
		mu      sync.Mutex
		cur     int
		maxSeen int
	)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := l.Acquire(context.Background())
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			defer release()
			mu.Lock()
			cur++
			if cur > maxSeen {
				maxSeen = cur
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			cur--
			mu.Unlock()
		}()
	}
	wg.Wait()
	if maxSeen > slots {
		t.Errorf("observed %d concurrent holders, limit %d", maxSeen, slots)
	}
	if s := l.Stats(); s.Admitted != workers || s.InFlight != 0 {
		t.Errorf("stats = %+v, want admitted=%d inFlight=0", s, workers)
	}
}

// waitFor polls until cond holds or the test times out — for observing
// another goroutine's queue position without sleeping a fixed amount.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTryAcquireIdle(t *testing.T) {
	var nilL *Limiter
	release, ok := nilL.TryAcquireIdle()
	if !ok {
		t.Fatal("nil limiter refused idle acquire")
	}
	release()

	l := NewLimiter(1, 1)

	// Idle: a free slot, nobody queued.
	release, ok = l.TryAcquireIdle()
	if !ok {
		t.Fatal("idle limiter refused")
	}
	// All slots busy: refuse without queueing or shedding.
	if _, ok := l.TryAcquireIdle(); ok {
		t.Fatal("busy limiter granted an idle acquire")
	}
	s := l.Stats()
	if s.QueueDepth != 0 || s.Shed != 0 {
		t.Fatalf("idle refusal queued or shed: %+v", s)
	}
	release()
	release() // idempotent

	// Slot free but a foreground request is queued: still refuse — the
	// queued request owns the next slot.
	fgRelease, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	queuedIn := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		close(queuedIn)
		r, err := l.Acquire(context.Background())
		if err != nil {
			t.Errorf("queued foreground request: %v", err)
			return
		}
		r()
	}()
	<-queuedIn
	for l.Stats().QueueDepth == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, ok := l.TryAcquireIdle(); ok {
		t.Fatal("idle acquire granted while a request was queued")
	}
	fgRelease()
	<-done
}
