package faultinject

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// The site registry used to be a hand-maintained list in a doc comment,
// which is exactly how chaos sites go dead: a new Inject call lands with a
// new site name, no rule ever targets it, and the chaos suite silently stops
// covering the code it was written for. This test closes the loop from both
// ends: every Site* constant declared in this package must be returned by
// Sites(), and every faultinject.Inject/InjectWrite call in the module must
// name one of those constants (never a string literal, which would dodge the
// registry entirely).

// declaredSites parses this package's non-test files and extracts every
// string constant whose name starts with "Site".
func declaredSites(t *testing.T) map[string]string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatalf("parsing package: %v", err)
	}
	sites := make(map[string]string)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if !strings.HasPrefix(name.Name, "Site") || i >= len(vs.Values) {
							continue
						}
						lit, ok := vs.Values[i].(*ast.BasicLit)
						if !ok || lit.Kind != token.STRING {
							continue
						}
						v, err := strconv.Unquote(lit.Value)
						if err != nil {
							t.Fatalf("unquoting %s: %v", lit.Value, err)
						}
						sites[name.Name] = v
					}
				}
			}
		}
	}
	if len(sites) == 0 {
		t.Fatal("no Site* constants found in package faultinject")
	}
	return sites
}

func TestSitesCoversEveryDeclaredConstant(t *testing.T) {
	registered := make(map[string]bool)
	for _, s := range Sites() {
		if registered[s] {
			t.Errorf("Sites() lists %q twice", s)
		}
		registered[s] = true
	}
	decls := declaredSites(t)
	for name, value := range decls {
		if !registered[value] {
			t.Errorf("constant %s = %q is not returned by Sites()", name, value)
		}
	}
	if got, want := len(Sites()), len(decls); got != want {
		t.Errorf("Sites() returns %d names, package declares %d Site* constants", got, want)
	}
}

// injectCall matches a call to faultinject.Inject or faultinject.InjectWrite
// (or a bare Inject/InjectWrite inside this package) and returns its site
// argument expression.
func injectCall(n ast.Node) (site ast.Expr, ok bool) {
	call, isCall := n.(*ast.CallExpr)
	if !isCall || len(call.Args) < 2 {
		return nil, false
	}
	var fn string
	switch f := call.Fun.(type) {
	case *ast.SelectorExpr:
		pkg, isIdent := f.X.(*ast.Ident)
		if !isIdent || pkg.Name != "faultinject" {
			return nil, false
		}
		fn = f.Sel.Name
	case *ast.Ident:
		fn = f.Name
	default:
		return nil, false
	}
	if fn != "Inject" && fn != "InjectWrite" {
		return nil, false
	}
	return call.Args[1], true
}

func TestEveryInjectCallSiteRegistered(t *testing.T) {
	decls := declaredSites(t)
	registered := make(map[string]bool)
	for _, s := range Sites() {
		registered[s] = true
	}

	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	calls := 0
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Fixture mirrors under testdata are not production call sites.
			if d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			site, ok := injectCall(n)
			if !ok {
				return true
			}
			calls++
			pos := fset.Position(site.Pos())
			switch s := site.(type) {
			case *ast.SelectorExpr:
				if v, ok := decls[s.Sel.Name]; !ok {
					t.Errorf("%s: Inject call names unknown constant %s", pos, s.Sel.Name)
				} else if !registered[v] {
					t.Errorf("%s: Inject call site %q is not in Sites()", pos, v)
				}
			case *ast.Ident:
				if v, ok := decls[s.Name]; !ok {
					t.Errorf("%s: Inject call names unknown constant %s", pos, s.Name)
				} else if !registered[v] {
					t.Errorf("%s: Inject call site %q is not in Sites()", pos, v)
				}
			case *ast.BasicLit:
				t.Errorf("%s: Inject call uses a string literal site %s; declare a Site* constant and register it in Sites()", pos, s.Value)
			default:
				t.Errorf("%s: Inject call site is not a named Site* constant", pos)
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatalf("walking %s: %v", root, err)
	}
	if calls == 0 {
		t.Fatal("found no faultinject.Inject call sites in the tree — the scanner is broken")
	}
}
