// Package faultinject is the deterministic, seeded fault-injection hook
// behind the chaos suite (`make chaos`, DESIGN.md §10). Hot-path code calls
// Inject(ctx, site) at named sites; with no injector activated that is one
// atomic load and a nil check, so the hooks stay in production builds. Tests
// activate an Injector whose per-site rules add latency, stall until the
// context dies, return an error, or panic — the shapes that must not crash
// the server, strand a singleflight waiter, or poison the tree cache.
//
// I/O sites (the durable store, DESIGN.md §15) additionally call
// InjectWrite, which can model a *torn* write: the rule fires, the caller is
// told to persist only a prefix of the bytes it was about to write, and the
// injected error then aborts the ingest exactly as a crash would — leaving a
// short, checksummed-invalid record on disk for recovery to detect.
//
// Determinism: firing decisions come from one seeded PRNG, so a single-
// threaded traversal sequence reproduces exactly; under concurrency the
// per-request interleaving varies but the sampled fault mix does not.
package faultinject

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// The named sites. Keep these in sync with DESIGN.md §10's fault-site table
// (serving sites) and §15's I/O-site table (durable sites); Sites() is the
// machine-readable registry, and TestEveryInjectCallSiteRegistered pins that
// every Inject/InjectWrite call in the tree names a registered site.
const (
	// SiteCategorizeStart fires once per cost-based categorization, before
	// any work.
	SiteCategorizeStart = "categorize.start"
	// SiteCategorizeLevel fires once per level of the cost-based level loop.
	SiteCategorizeLevel = "categorize.level"
	// SiteBaseline fires once per baseline (Attr-Cost / No-Cost) build — the
	// degradation ladder's middle rung.
	SiteBaseline = "baseline.categorize"
	// SiteCacheCompute fires inside the tree cache's singleflight compute
	// goroutine, before the computation.
	SiteCacheCompute = "treecache.compute"
	// SiteServeBuild fires at the top of the serving path's build ladder.
	SiteServeBuild = "serve.build"

	// SiteDurableWrite fires before every data write of the durable store
	// (WAL records, segment pages, manifest bytes). Rules with ShortWrite
	// model torn writes: a prefix of the payload reaches disk, then the
	// error aborts the writer mid-record.
	SiteDurableWrite = "durable.write"
	// SiteDurableFsync fires before every fsync the durable store issues
	// (WAL, segment file, manifest file, directory).
	SiteDurableFsync = "durable.fsync"
	// SiteDurableManifest fires at the top of every atomic manifest replace
	// (write-temp, fsync, rename, fsync-dir).
	SiteDurableManifest = "durable.manifest"
	// SiteDurableRecover fires during durable.Open's recovery sequence —
	// before the WAL replay and before recovery's own repair write (the
	// torn-tail truncation) — so a crash *during* recovery is reachable.
	SiteDurableRecover = "durable.recover"
)

// Sites returns every registered site name, in stable order. New Inject call
// sites must add their constant here; the faultinject package's registration
// test walks the source tree and fails on any call naming an unregistered
// site, so dead chaos sites cannot land silently.
func Sites() []string {
	return []string{
		SiteCategorizeStart,
		SiteCategorizeLevel,
		SiteBaseline,
		SiteCacheCompute,
		SiteServeBuild,
		SiteDurableWrite,
		SiteDurableFsync,
		SiteDurableManifest,
		SiteDurableRecover,
	}
}

// Rule is one site's fault: fire with probability P (a non-positive P means
// always), then apply the configured effects in order — sleep Latency, stall
// until ctx dies, panic, return Err. SkipFirst delays arming: the rule
// ignores the site's first SkipFirst hits, which is how the crash-recovery
// chaos suite kills an ingest at exactly its k-th I/O operation.
type Rule struct {
	P       float64
	Latency time.Duration
	Stall   bool
	Panic   bool
	Err     error
	// SkipFirst arms the rule only after the site has been hit this many
	// times; the firing probability applies from hit SkipFirst+1 on.
	SkipFirst uint64
	// ShortWrite applies to InjectWrite sites: when the rule fires, the
	// caller is told to write a strict prefix of its payload (length drawn
	// from the injector's seeded PRNG) before returning the error — a torn
	// write, as left behind by a crash mid-record.
	ShortWrite bool
}

// Fault is the value a Panic rule panics with, so recover() boundaries and
// tests can recognize injected panics.
type Fault struct{ Site string }

func (f *Fault) String() string { return fmt.Sprintf("injected panic at %s", f.Site) }

// Injector holds the active rule set and a seeded PRNG.
type Injector struct {
	mu sync.Mutex
	//lint:guardedby mu
	rng *rand.Rand
	//lint:guardedby mu
	rules map[string]Rule
	//lint:guardedby mu
	fired map[string]uint64
	//lint:guardedby mu
	hits map[string]uint64
}

// New builds an injector with a deterministic seed and no rules.
func New(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[string]Rule),
		fired: make(map[string]uint64),
		hits:  make(map[string]uint64),
	}
}

// Set installs (or replaces) the rule for a site. A non-positive P is
// normalized to 1 (always fire).
func (i *Injector) Set(site string, r Rule) {
	if r.P <= 0 {
		r.P = 1
	}
	i.mu.Lock()
	i.rules[site] = r
	i.mu.Unlock()
}

// Fired reports how many times the site's rule has fired.
func (i *Injector) Fired(site string) uint64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.fired[site]
}

// Hits reports how many times the site has been reached at all, rules or
// not. The crash chaos suite counts a clean run's hits first, then replays
// the ingest once per hit index with a SkipFirst rule targeting it.
func (i *Injector) Hits(site string) uint64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.hits[site]
}

// active is the process-wide injector; nil means every Inject is a no-op.
var active atomic.Pointer[Injector]

// Activate installs inj as the process-wide injector and returns a restore
// function that reinstates the previous one — defer it in tests.
func Activate(inj *Injector) (restore func()) {
	prev := active.Swap(inj)
	return func() { active.Store(prev) }
}

// Inject is the hook point: apply the active injector's rule for site, if
// any. With no injector activated it costs one atomic load.
func Inject(ctx context.Context, site string) error {
	inj := active.Load()
	if inj == nil {
		return nil
	}
	_, err := inj.inject(ctx, site, 0)
	return err
}

// InjectWrite is the hook point for data writes of n bytes: like Inject,
// but when the firing rule has ShortWrite set the caller must write exactly
// `keep` bytes of its payload (0 ≤ keep < n) before acting on the returned
// error — leaving a torn record behind, as a crash mid-write would. With no
// injector (or no firing rule) keep == n and err == nil.
func InjectWrite(ctx context.Context, site string, n int) (keep int, err error) {
	inj := active.Load()
	if inj == nil {
		return n, nil
	}
	return inj.inject(ctx, site, n)
}

func (i *Injector) inject(ctx context.Context, site string, n int) (int, error) {
	i.mu.Lock()
	i.hits[site]++
	hit := i.hits[site]
	r, ok := i.rules[site]
	fire := ok && hit > r.SkipFirst && (r.P >= 1 || i.rng.Float64() < r.P)
	keep := n
	if fire {
		i.fired[site]++
		// Only an aborting rule tears the write: the caller acts on keep
		// solely alongside a non-nil error (or a panic/stall), so a
		// latency-only rule must leave the payload intact.
		if aborts := r.Err != nil || r.Stall || r.Panic; aborts {
			keep = 0
			if r.ShortWrite && n > 0 {
				keep = i.rng.Intn(n) // strict prefix: the record is always torn
			}
		}
	}
	i.mu.Unlock()
	if !fire {
		return n, nil
	}
	if r.Latency > 0 {
		t := time.NewTimer(r.Latency)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return keep, ctx.Err()
		}
	}
	if r.Stall {
		<-ctx.Done()
		return keep, ctx.Err()
	}
	if r.Panic {
		panic(&Fault{Site: site})
	}
	return keep, r.Err
}
