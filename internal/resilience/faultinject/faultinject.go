// Package faultinject is the deterministic, seeded fault-injection hook
// behind the chaos suite (`make chaos`, DESIGN.md §10). Hot-path code calls
// Inject(ctx, site) at named sites; with no injector activated that is one
// atomic load and a nil check, so the hooks stay in production builds. Tests
// activate an Injector whose per-site rules add latency, stall until the
// context dies, return an error, or panic — the shapes that must not crash
// the server, strand a singleflight waiter, or poison the tree cache.
//
// Determinism: firing decisions come from one seeded PRNG, so a single-
// threaded traversal sequence reproduces exactly; under concurrency the
// per-request interleaving varies but the sampled fault mix does not.
package faultinject

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// The named sites. Keep these in sync with DESIGN.md §10's fault-site table.
const (
	// SiteCategorizeStart fires once per cost-based categorization, before
	// any work.
	SiteCategorizeStart = "categorize.start"
	// SiteCategorizeLevel fires once per level of the cost-based level loop.
	SiteCategorizeLevel = "categorize.level"
	// SiteBaseline fires once per baseline (Attr-Cost / No-Cost) build — the
	// degradation ladder's middle rung.
	SiteBaseline = "baseline.categorize"
	// SiteCacheCompute fires inside the tree cache's singleflight compute
	// goroutine, before the computation.
	SiteCacheCompute = "treecache.compute"
	// SiteServeBuild fires at the top of the serving path's build ladder.
	SiteServeBuild = "serve.build"
)

// Rule is one site's fault: fire with probability P (a non-positive P means
// always), then apply the configured effects in order — sleep Latency, stall
// until ctx dies, panic, return Err.
type Rule struct {
	P       float64
	Latency time.Duration
	Stall   bool
	Panic   bool
	Err     error
}

// Fault is the value a Panic rule panics with, so recover() boundaries and
// tests can recognize injected panics.
type Fault struct{ Site string }

func (f *Fault) String() string { return fmt.Sprintf("injected panic at %s", f.Site) }

// Injector holds the active rule set and a seeded PRNG.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules map[string]Rule
	fired map[string]uint64
}

// New builds an injector with a deterministic seed and no rules.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), rules: make(map[string]Rule), fired: make(map[string]uint64)}
}

// Set installs (or replaces) the rule for a site. A non-positive P is
// normalized to 1 (always fire).
func (i *Injector) Set(site string, r Rule) {
	if r.P <= 0 {
		r.P = 1
	}
	i.mu.Lock()
	i.rules[site] = r
	i.mu.Unlock()
}

// Fired reports how many times the site's rule has fired.
func (i *Injector) Fired(site string) uint64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.fired[site]
}

// active is the process-wide injector; nil means every Inject is a no-op.
var active atomic.Pointer[Injector]

// Activate installs inj as the process-wide injector and returns a restore
// function that reinstates the previous one — defer it in tests.
func Activate(inj *Injector) (restore func()) {
	prev := active.Swap(inj)
	return func() { active.Store(prev) }
}

// Inject is the hook point: apply the active injector's rule for site, if
// any. With no injector activated it costs one atomic load.
func Inject(ctx context.Context, site string) error {
	inj := active.Load()
	if inj == nil {
		return nil
	}
	return inj.inject(ctx, site)
}

func (i *Injector) inject(ctx context.Context, site string) error {
	i.mu.Lock()
	r, ok := i.rules[site]
	fire := ok && (r.P >= 1 || i.rng.Float64() < r.P)
	if fire {
		i.fired[site]++
	}
	i.mu.Unlock()
	if !fire {
		return nil
	}
	if r.Latency > 0 {
		t := time.NewTimer(r.Latency)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	if r.Stall {
		<-ctx.Done()
		return ctx.Err()
	}
	if r.Panic {
		panic(&Fault{Site: site})
	}
	return r.Err
}
