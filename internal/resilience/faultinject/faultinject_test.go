package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestInjectNoopWithoutInjector(t *testing.T) {
	if err := Inject(context.Background(), SiteCategorizeStart); err != nil {
		t.Fatalf("no injector: %v", err)
	}
}

func TestActivateRestore(t *testing.T) {
	inj := New(1)
	wantErr := errors.New("injected")
	inj.Set(SiteBaseline, Rule{Err: wantErr})
	restore := Activate(inj)
	if err := Inject(context.Background(), SiteBaseline); !errors.Is(err, wantErr) {
		t.Fatalf("active injector err = %v, want %v", err, wantErr)
	}
	if got := inj.Fired(SiteBaseline); got != 1 {
		t.Errorf("Fired = %d, want 1", got)
	}
	restore()
	if err := Inject(context.Background(), SiteBaseline); err != nil {
		t.Fatalf("after restore: %v", err)
	}
	if got := inj.Fired(SiteBaseline); got != 1 {
		t.Errorf("Fired after restore = %d, want still 1", got)
	}
}

func TestUnruledSiteDoesNotFire(t *testing.T) {
	inj := New(1)
	inj.Set(SiteBaseline, Rule{Err: errors.New("x")})
	defer Activate(inj)()
	if err := Inject(context.Background(), SiteCacheCompute); err != nil {
		t.Fatalf("unruled site: %v", err)
	}
	if got := inj.Fired(SiteCacheCompute); got != 0 {
		t.Errorf("Fired = %d, want 0", got)
	}
}

func TestProbabilityDeterministic(t *testing.T) {
	fire := func(seed int64) uint64 {
		inj := New(seed)
		inj.Set(SiteServeBuild, Rule{P: 0.3, Err: errors.New("x")})
		defer Activate(inj)()
		for i := 0; i < 1000; i++ {
			_ = Inject(context.Background(), SiteServeBuild)
		}
		return inj.Fired(SiteServeBuild)
	}
	a, b := fire(42), fire(42)
	if a != b {
		t.Errorf("same seed fired %d vs %d times", a, b)
	}
	if a == 0 || a == 1000 {
		t.Errorf("P=0.3 fired %d/1000 times — not sampling", a)
	}
}

func TestPanicRuleCarriesSite(t *testing.T) {
	inj := New(1)
	inj.Set(SiteCategorizeLevel, Rule{Panic: true})
	defer Activate(inj)()
	defer func() {
		p := recover()
		f, ok := p.(*Fault)
		if !ok {
			t.Fatalf("recovered %v (%T), want *Fault", p, p)
		}
		if f.Site != SiteCategorizeLevel {
			t.Errorf("Site = %q, want %q", f.Site, SiteCategorizeLevel)
		}
	}()
	_ = Inject(context.Background(), SiteCategorizeLevel)
	t.Fatal("expected panic")
}

func TestStallHonorsContext(t *testing.T) {
	inj := New(1)
	inj.Set(SiteCacheCompute, Rule{Stall: true})
	defer Activate(inj)()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Inject(ctx, SiteCacheCompute) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("stall err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stall did not release on context cancellation")
	}
}

func TestLatencyAbortsOnContext(t *testing.T) {
	inj := New(1)
	inj.Set(SiteServeBuild, Rule{Latency: time.Hour})
	defer Activate(inj)()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Inject(ctx, SiteServeBuild) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("latency err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("latency sleep did not abort on context cancellation")
	}
}
