// Package resilience keeps the serving path alive under overload and
// failure (DESIGN.md §10). The paper computes category trees at query time
// (§5), so a slow or crashing categorization is user-visible latency — not an
// offline batch hiccup. This package supplies the three mechanisms the
// serving layer composes:
//
//   - admission control: a concurrency Limiter with a bounded wait queue in
//     front of the categorizing endpoints; overflow is shed immediately
//     (ErrOverloaded → 503) instead of queueing without bound.
//   - deadline budgeting: a Policy carries the server-imposed wall budget
//     (hard deadline → ErrServerTimeout → 504) and the soft budget that
//     triggers the degradation ladder (full cost-based tree → Attr-Cost
//     baseline → the paper's flat SHOWTUPLES presentation, §3.2).
//   - panic isolation: PanicError converts a categorizer panic captured at a
//     recover() boundary into an ordinary error carrying the stack, so one
//     poisoned request cannot tear down the process or its singleflight
//     waiters.
package resilience

import (
	"errors"
	"fmt"
	"runtime/debug"
	"time"
)

// ErrServerTimeout is the cancellation cause installed by a server-imposed
// deadline, distinguishing "the server gave up" (504) from "the client went
// away" (499). Install it with context.WithTimeoutCause and test with
// errors.Is against context.Cause.
var ErrServerTimeout = errors.New("resilience: server deadline exceeded")

// ErrOverloaded is returned by Limiter.Acquire when both the concurrency
// slots and the wait queue are full: the request is shed without doing any
// work (503 with Retry-After).
var ErrOverloaded = errors.New("resilience: overloaded, request shed")

// Degradation says how far down the ladder a served tree was built.
type Degradation int

const (
	// DegradeNone is the full-fidelity cost-based tree.
	DegradeNone Degradation = iota
	// DegradeAttrCost replaced the cost-based search with the cheaper
	// Attr-Cost baseline after the soft budget was blown.
	DegradeAttrCost
	// DegradeFlat is the paper's degenerate no-categorization presentation
	// (§3.2 SHOWTUPLES): a single root category holding the whole result set.
	DegradeFlat
)

// String renders the ladder rung the way the X-Degraded header spells it;
// DegradeNone is the empty string so JSON omitempty drops it.
func (d Degradation) String() string {
	switch d {
	case DegradeAttrCost:
		return "attr-cost"
	case DegradeFlat:
		return "flat"
	default:
		return ""
	}
}

// Policy is the per-request resilience budget the serving path honors.
// The zero value disables both mechanisms (no deadline, no degradation) —
// exactly the pre-resilience behavior.
type Policy struct {
	// Deadline is the server-imposed wall budget for the whole request.
	// When it fires the request fails with ErrServerTimeout as the
	// cancellation cause. 0 means no server deadline.
	Deadline time.Duration
	// SoftBudget is the wall budget granted to the full-fidelity
	// categorization before the serving path degrades one rung. 0 with
	// Degrade set defaults to half the Deadline.
	SoftBudget time.Duration
	// Degrade enables the stepwise ladder: cost-based → attr-cost → flat.
	// Without it a blown budget is an error, not an approximation.
	Degrade bool
}

// Effective fills the derived defaults: a degradation policy without an
// explicit soft budget gets half the hard deadline.
func (p Policy) Effective() Policy {
	if p.Degrade && p.SoftBudget <= 0 && p.Deadline > 0 {
		p.SoftBudget = p.Deadline / 2
	}
	return p
}

// PanicError is a panic captured at a recover() boundary, demoted to an
// ordinary error: the panic value plus the goroutine stack at capture time.
type PanicError struct {
	Value any
	Stack []byte
}

// NewPanicError wraps a recovered panic value, capturing the current stack.
func NewPanicError(v any) *PanicError {
	return &PanicError{Value: v, Stack: debug.Stack()}
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// Protect is the uniform recover() boundary for the serving path: it runs fn
// and demotes a panic anywhere below it to a *PanicError, invoking onPanic
// (may be nil) with the captured error first — the hook is where boundaries
// bump their panic counters. catlint's recoverbound check holds the rest of
// the tree to this helper: recover() appears in this package only, so every
// boundary demotes panics the same way and is visible in the same counters.
func Protect[T any](onPanic func(*PanicError), fn func() (T, error)) (val T, err error) {
	defer func() {
		if p := recover(); p != nil {
			perr := NewPanicError(p)
			if onPanic != nil {
				onPanic(perr)
			}
			var zero T
			val, err = zero, perr
		}
	}()
	return fn()
}
