package resilience

import (
	"context"
	"sync"
	"sync/atomic"
)

// Limiter is the admission controller: at most maxConcurrent requests hold a
// slot at once, at most maxQueue more wait for one, and everything beyond
// that is shed immediately with ErrOverloaded. Slots are granted in select
// order (not strict FIFO), which is fine for a shed-don't-queue design: the
// queue exists to absorb jitter, not to promise fairness.
//
// A nil *Limiter admits everything — callers need no "is admission on?"
// branches.
type Limiter struct {
	sem      chan struct{}
	maxQueue int
	queued   atomic.Int64
	admitted atomic.Uint64
	shed     atomic.Uint64
}

// NewLimiter builds a limiter with maxConcurrent slots and a wait queue of
// maxQueue. maxConcurrent <= 0 returns nil (admission disabled); maxQueue
// <= 0 means no queue — a request either gets a slot immediately or is shed.
func NewLimiter(maxConcurrent, maxQueue int) *Limiter {
	if maxConcurrent <= 0 {
		return nil
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Limiter{sem: make(chan struct{}, maxConcurrent), maxQueue: maxQueue}
}

// Acquire obtains a concurrency slot, waiting in the bounded queue when all
// slots are busy. It returns a release function that must be called exactly
// once when the request's work is done (it is idempotent, so a defer is
// safe). Errors: ErrOverloaded when the queue is full (shed), ctx.Err() when
// the caller's context dies while waiting.
func (l *Limiter) Acquire(ctx context.Context) (release func(), err error) {
	if l == nil {
		return func() {}, nil
	}
	select {
	case l.sem <- struct{}{}:
		l.admitted.Add(1)
		return l.releaseFunc(), nil
	default:
	}
	if err := ctx.Err(); err != nil {
		return nil, err // dead requests don't occupy queue positions
	}
	if l.queued.Add(1) > int64(l.maxQueue) {
		l.queued.Add(-1)
		l.shed.Add(1)
		return nil, ErrOverloaded
	}
	defer l.queued.Add(-1)
	select {
	case l.sem <- struct{}{}:
		l.admitted.Add(1)
		return l.releaseFunc(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TryAcquireIdle obtains a slot only when the limiter is genuinely idle: a
// free slot exists AND nobody is waiting in the queue. It never queues and
// never sheds anybody — ok=false just means "busy, come back later". This is
// the admission mode for strictly-background work (cache pre-warming): a
// warmer using Acquire would take queue positions and slots that foreground
// requests are about to need, turning warming into self-inflicted shedding.
// The idle check is advisory (a foreground request can arrive right after),
// but a background task holding a slot is indistinguishable from any other
// admitted request, so the steady-state invariant — foreground traffic is
// never shed because of warming — holds whenever warming concurrency is 1.
func (l *Limiter) TryAcquireIdle() (release func(), ok bool) {
	if l == nil {
		return func() {}, true
	}
	if l.queued.Load() > 0 {
		return nil, false
	}
	select {
	case l.sem <- struct{}{}:
		l.admitted.Add(1)
		return l.releaseFunc(), true
	default:
		return nil, false
	}
}

func (l *Limiter) releaseFunc() func() {
	var once sync.Once
	return func() { once.Do(func() { <-l.sem }) }
}

// AdmissionStats is a point-in-time snapshot of the limiter's counters.
type AdmissionStats struct {
	// MaxConcurrent and MaxQueue echo the configuration (0/0 when admission
	// is disabled).
	MaxConcurrent int `json:"maxConcurrent"`
	MaxQueue      int `json:"maxQueue"`
	// InFlight is the number of slots currently held; QueueDepth the number
	// of requests currently waiting for one.
	InFlight   int `json:"inFlight"`
	QueueDepth int `json:"queueDepth"`
	// Admitted counts granted slots; Shed counts requests rejected with
	// ErrOverloaded because the queue was full.
	Admitted uint64 `json:"admitted"`
	Shed     uint64 `json:"shed"`
}

// Stats snapshots the limiter; a nil limiter reports zeroes.
func (l *Limiter) Stats() AdmissionStats {
	if l == nil {
		return AdmissionStats{}
	}
	return AdmissionStats{
		MaxConcurrent: cap(l.sem),
		MaxQueue:      l.maxQueue,
		InFlight:      len(l.sem),
		QueueDepth:    int(l.queued.Load()),
		Admitted:      l.admitted.Load(),
		Shed:          l.shed.Load(),
	}
}
