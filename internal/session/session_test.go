package session

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/category"
	"repro/internal/relation"
)

// fixture builds the Figure 1 shaped two-level tree over 9 tuples.
func fixture(t *testing.T) *category.Tree {
	t.Helper()
	schema := relation.MustSchema(
		relation.Attribute{Name: "neighborhood", Type: relation.Categorical},
		relation.Attribute{Name: "price", Type: relation.Numeric},
	)
	r := relation.New("T", schema)
	hoods := []string{"Bellevue, WA", "Bellevue, WA", "Bellevue, WA", "Bellevue, WA",
		"Redmond, WA", "Redmond, WA", "Redmond, WA", "Seattle, WA", "Seattle, WA"}
	prices := []float64{210000, 240000, 260000, 290000, 220000, 250000, 280000, 230000, 270000}
	for i := range hoods {
		r.MustAppend(relation.Tuple{relation.StringValue(hoods[i]), relation.NumberValue(prices[i])})
	}
	lo := &category.Node{Label: category.Label{Kind: category.LabelRange, Attr: "price", Lo: 200000, Hi: 250000},
		Tset: []int{0, 1}, P: 0.5, Pw: 1}
	hi := &category.Node{Label: category.Label{Kind: category.LabelRange, Attr: "price", Lo: 250000, Hi: 300000, HiInc: true},
		Tset: []int{2, 3}, P: 0.5, Pw: 1}
	bellevue := &category.Node{Label: category.Label{Kind: category.LabelValue, Attr: "neighborhood", Value: "Bellevue, WA"},
		Children: []*category.Node{lo, hi}, Tset: []int{0, 1, 2, 3}, SubAttr: "price", P: 0.6, Pw: 0.4}
	redmond := &category.Node{Label: category.Label{Kind: category.LabelValue, Attr: "neighborhood", Value: "Redmond, WA"},
		Tset: []int{4, 5, 6}, P: 0.3, Pw: 1}
	seattle := &category.Node{Label: category.Label{Kind: category.LabelValue, Attr: "neighborhood", Value: "Seattle, WA"},
		Tset: []int{7, 8}, P: 0.1, Pw: 1}
	root := &category.Node{Label: category.Label{Kind: category.LabelAll},
		Children: []*category.Node{bellevue, redmond, seattle},
		Tset:     []int{0, 1, 2, 3, 4, 5, 6, 7, 8}, SubAttr: "neighborhood", P: 1, Pw: 0.2}
	tree := &category.Tree{Root: root, R: r, K: 1, LevelAttrs: []string{"neighborhood", "price"}}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	return tree
}

// TestExample31Accounting replays the paper's Example 3.1/4.1 exploration
// and checks the item accounting: 3 labels at the root, 2+1 labels under
// the first hood (fixture has 2 price buckets), then the tuples of one
// bucket.
func TestExample31Accounting(t *testing.T) {
	s := New(fixture(t), 1)
	labels, err := s.Expand(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 3 || !strings.HasPrefix(labels[0], "neighborhood: Bellevue") {
		t.Fatalf("root labels = %v", labels)
	}
	if _, err := s.Expand([]int{0}); err != nil {
		t.Fatal(err)
	}
	rows, err := s.ShowTuples([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("bucket rows = %v", rows)
	}
	sum := s.Summary()
	// 3 root labels + 2 bucket labels + 2 tuples = cost 7.
	if sum.LabelsExamined != 5 || sum.TuplesExamined != 2 || sum.Cost != 7 {
		t.Fatalf("summary = %+v; want 5 labels, 2 tuples, cost 7", sum)
	}
}

func TestRepeatOperationsDoNotDoubleCount(t *testing.T) {
	s := New(fixture(t), 1)
	if _, err := s.Expand(nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Collapse(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Expand(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ShowTuples([]int{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ShowTuples([]int{1}); err != nil {
		t.Fatal(err)
	}
	sum := s.Summary()
	if sum.LabelsExamined != 3 || sum.TuplesExamined != 3 {
		t.Fatalf("summary = %+v; re-reading must be free", sum)
	}
	if sum.Ops != 5 {
		t.Fatalf("ops = %d; every operation must be logged", sum.Ops)
	}
}

func TestMarkRelevantRequiresShown(t *testing.T) {
	s := New(fixture(t), 1)
	if err := s.MarkRelevant(4); err == nil {
		t.Fatal("clicking an unshown tuple must fail")
	}
	if _, err := s.ShowTuples([]int{1}); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkRelevant(4); err != nil {
		t.Fatalf("MarkRelevant: %v", err)
	}
	if err := s.MarkRelevant(4); err != nil {
		t.Fatalf("re-clicking: %v", err)
	}
	if got := s.Summary().RelevantFound; got != 1 {
		t.Fatalf("RelevantFound = %d; duplicate clicks must not double-count", got)
	}
	if rows := s.Relevant(); len(rows) != 1 || rows[0] != 4 {
		t.Fatalf("Relevant = %v", rows)
	}
}

func TestSessionErrors(t *testing.T) {
	s := New(fixture(t), 1)
	if _, err := s.Expand([]int{99}); err == nil {
		t.Error("bad path should error")
	}
	if _, err := s.Expand([]int{1}); err == nil {
		t.Error("expanding a leaf should error")
	}
	if err := s.Collapse(nil); err == nil {
		t.Error("collapsing an unexpanded node should error")
	}
	if _, err := s.ShowTuples([]int{0, 9}); err == nil {
		t.Error("bad nested path should error")
	}
}

func TestExpandedStateAndLog(t *testing.T) {
	s := New(fixture(t), 1)
	if s.Expanded(nil) {
		t.Fatal("root should start collapsed")
	}
	if _, err := s.Expand(nil); err != nil {
		t.Fatal(err)
	}
	if !s.Expanded(nil) {
		t.Fatal("root should be expanded")
	}
	if err := s.Collapse(nil); err != nil {
		t.Fatal(err)
	}
	if s.Expanded(nil) {
		t.Fatal("root should be collapsed again")
	}
	log := s.Log()
	if len(log) != 2 || log[0].Kind != OpExpand || log[1].Kind != OpCollapse {
		t.Fatalf("log = %+v", log)
	}
	if log[0].Seq != 0 || log[1].Seq != 1 {
		t.Fatalf("sequence numbers wrong: %+v", log)
	}
}

func TestOpKindString(t *testing.T) {
	names := map[OpKind]string{
		OpExpand: "expand", OpCollapse: "collapse",
		OpShowTuples: "showtuples", OpMarkRelevant: "click",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q; want %q", k, k.String(), want)
		}
	}
	if !strings.Contains(OpKind(9).String(), "9") {
		t.Error("unknown op kind should render its number")
	}
}

func TestSessionConcurrent(t *testing.T) {
	s := New(fixture(t), 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				switch g % 3 {
				case 0:
					_, _ = s.Expand(nil)
				case 1:
					_, _ = s.ShowTuples([]int{g % 3})
				default:
					s.Summary()
				}
			}
		}(g)
	}
	wg.Wait()
	sum := s.Summary()
	if sum.LabelsExamined != 3 {
		t.Fatalf("labels = %d; want 3 (single charge)", sum.LabelsExamined)
	}
}
