// Package session implements the interactive side of the paper's treeview
// client (§6.3): a stateful exploration of one category tree that records
// every expand/collapse/show-tuples/click operation — exactly the log the
// study recorded ("the click/expand/collapse operations on the treeview
// nodes and the clicks on the data tuples") — while keeping a running count
// of the items the user has examined.
//
// Accounting follows the exploration models of §3.2: expanding a node
// examines the labels of all its subcategories (option SHOWCAT), showing a
// node's tuples examines all of them (option SHOWTUPLES). Repeating an
// operation on the same node does not double-count — the user has already
// read those items.
package session

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/category"
)

// OpKind enumerates the treeview operations.
type OpKind int

const (
	// OpExpand reveals a node's subcategory labels (SHOWCAT).
	OpExpand OpKind = iota
	// OpCollapse hides a node's subtree (no cost; recorded for the log).
	OpCollapse
	// OpShowTuples lists a node's tuples (SHOWTUPLES).
	OpShowTuples
	// OpMarkRelevant records a click on a data tuple.
	OpMarkRelevant
)

// String names the operation as the study logs did.
func (k OpKind) String() string {
	switch k {
	case OpExpand:
		return "expand"
	case OpCollapse:
		return "collapse"
	case OpShowTuples:
		return "showtuples"
	case OpMarkRelevant:
		return "click"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one logged operation.
type Op struct {
	Seq  int
	Kind OpKind
	// Path addresses the node (child indexes from the root); empty for the
	// root. Unused for OpMarkRelevant.
	Path []int
	// Row is the clicked tuple for OpMarkRelevant.
	Row int
}

// Summary is the running measurement of the exploration.
type Summary struct {
	LabelsExamined int
	TuplesExamined int
	RelevantFound  int
	Ops            int
	// Cost is tuples + K·labels, the §4.1 item count.
	Cost float64
}

// Session is one user's exploration of one tree. Safe for concurrent use.
type Session struct {
	mu   sync.Mutex
	tree *category.Tree
	k    float64

	ops        []Op
	expanded   map[string]bool
	labelsSeen map[string]bool // nodes whose children labels were examined
	tuplesSeen map[string]bool // nodes whose tuples were examined
	shown      map[int]bool    // rows currently revealed by some OpShowTuples
	relevant   map[int]bool

	labels, tuples int
}

// New starts a session over the tree with label cost k (use the tree's K).
func New(tree *category.Tree, k float64) *Session {
	return &Session{
		tree:       tree,
		k:          k,
		expanded:   map[string]bool{},
		labelsSeen: map[string]bool{},
		tuplesSeen: map[string]bool{},
		shown:      map[int]bool{},
		relevant:   map[int]bool{},
	}
}

func pathKey(path []int) string {
	if len(path) == 0 {
		return "/"
	}
	parts := make([]string, len(path))
	for i, p := range path {
		parts[i] = strconv.Itoa(p)
	}
	return strings.Join(parts, "/")
}

// node resolves a path, or errors.
func (s *Session) node(path []int) (*category.Node, error) {
	n := s.tree.Root
	for step, i := range path {
		if i < 0 || i >= len(n.Children) {
			return nil, fmt.Errorf("session: path step %d (%d) out of range (node %q has %d children)",
				step, i, n.Label, len(n.Children))
		}
		n = n.Children[i]
	}
	return n, nil
}

// Expand reveals the node's subcategory labels. The first expansion of a
// node charges K per child label.
func (s *Session) Expand(path []int) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.node(path)
	if err != nil {
		return nil, err
	}
	if n.IsLeaf() {
		return nil, fmt.Errorf("session: cannot expand leaf category %q", n.Label)
	}
	key := pathKey(path)
	s.expanded[key] = true
	if !s.labelsSeen[key] {
		s.labelsSeen[key] = true
		s.labels += len(n.Children)
	}
	s.ops = append(s.ops, Op{Seq: len(s.ops), Kind: OpExpand, Path: append([]int(nil), path...)})
	labels := make([]string, len(n.Children))
	for i, c := range n.Children {
		labels[i] = fmt.Sprintf("%s (%d)", c.Label, c.Size())
	}
	return labels, nil
}

// Collapse hides an expanded node. Free: the labels were already read.
func (s *Session) Collapse(path []int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.node(path); err != nil {
		return err
	}
	key := pathKey(path)
	if !s.expanded[key] {
		return fmt.Errorf("session: node %s is not expanded", key)
	}
	delete(s.expanded, key)
	s.ops = append(s.ops, Op{Seq: len(s.ops), Kind: OpCollapse, Path: append([]int(nil), path...)})
	return nil
}

// ShowTuples lists the node's tuple rows. The first showing of a node
// charges every tuple in its tset.
func (s *Session) ShowTuples(path []int) ([]int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.node(path)
	if err != nil {
		return nil, err
	}
	key := pathKey(path)
	if !s.tuplesSeen[key] {
		s.tuplesSeen[key] = true
		s.tuples += n.Size()
	}
	for _, row := range n.Tset {
		s.shown[row] = true
	}
	s.ops = append(s.ops, Op{Seq: len(s.ops), Kind: OpShowTuples, Path: append([]int(nil), path...)})
	return append([]int(nil), n.Tset...), nil
}

// MarkRelevant records a click on a revealed tuple.
func (s *Session) MarkRelevant(row int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.shown[row] {
		return fmt.Errorf("session: tuple %d has not been shown", row)
	}
	s.relevant[row] = true
	s.ops = append(s.ops, Op{Seq: len(s.ops), Kind: OpMarkRelevant, Row: row})
	return nil
}

// Summary returns the running measurements.
func (s *Session) Summary() Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Summary{
		LabelsExamined: s.labels,
		TuplesExamined: s.tuples,
		RelevantFound:  len(s.relevant),
		Ops:            len(s.ops),
		Cost:           float64(s.tuples) + s.k*float64(s.labels),
	}
}

// Log returns a copy of the operation log.
func (s *Session) Log() []Op {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Op(nil), s.ops...)
}

// Relevant returns the clicked rows.
func (s *Session) Relevant() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.relevant))
	for row := range s.relevant {
		out = append(out, row)
	}
	return out
}

// Expanded reports whether the node at path is currently expanded.
func (s *Session) Expanded(path []int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.expanded[pathKey(path)]
}
