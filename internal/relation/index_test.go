package relation

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func indexedRelation(t *testing.T, n int) *Relation {
	t.Helper()
	r := relationOfSize(n, 7)
	if err := r.BuildIndex(); err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	return r
}

func relationOfSize(n int, seed int64) *Relation {
	rng := rand.New(rand.NewSource(seed))
	r := New("homes", MustSchema(
		Attribute{Name: "neighborhood", Type: Categorical},
		Attribute{Name: "price", Type: Numeric},
		Attribute{Name: "bedrooms", Type: Numeric},
	))
	hoods := []string{"Bellevue, WA", "Redmond, WA", "Seattle, WA", "Issaquah, WA"}
	for i := 0; i < n; i++ {
		r.MustAppend(Tuple{
			StringValue(hoods[rng.Intn(len(hoods))]),
			NumberValue(float64(200000 + rng.Intn(50)*5000)),
			NumberValue(float64(1 + rng.Intn(6))),
		})
	}
	return r
}

func TestBuildIndexUnknownAttr(t *testing.T) {
	r := relationOfSize(10, 1)
	if err := r.BuildIndex("missing"); err == nil {
		t.Fatal("indexing a missing attribute should error")
	}
}

func TestIndexedFlag(t *testing.T) {
	r := relationOfSize(10, 1)
	if r.Indexed("price") {
		t.Fatal("no index should exist before BuildIndex")
	}
	if err := r.BuildIndex("price", "neighborhood"); err != nil {
		t.Fatal(err)
	}
	if !r.Indexed("price") || !r.Indexed("NEIGHBORHOOD") {
		t.Fatal("Indexed should report built indexes case-insensitively")
	}
	if r.Indexed("bedrooms") {
		t.Fatal("bedrooms was not indexed")
	}
}

func TestAppendExtendsIndexes(t *testing.T) {
	r := indexedRelation(t, 20)
	r.MustAppend(Tuple{StringValue("Bellevue, WA"), NumberValue(250000), NumberValue(3)})
	if !r.Indexed("price") {
		t.Fatal("Append must keep indexes for incremental extension")
	}
	// Select must cover the appended row through the extended index.
	got := r.Select(NewIn("neighborhood", "Bellevue, WA"))
	if len(got) == 0 || got[len(got)-1] != r.Len()-1 {
		t.Fatalf("post-append select missed the new row: %v", got)
	}
	// The candidate machinery itself must see the appended row once the set
	// is brought current.
	set := r.currentIndexes()
	if set == nil || set.n != r.Len() {
		t.Fatalf("index set not extended to %d rows", r.Len())
	}
	cands, ok := set.catCandidates(NewIn("neighborhood", "Bellevue, WA"))
	if !ok || len(cands) == 0 || cands[len(cands)-1] != r.Len()-1 {
		t.Fatalf("extended cat index missed the new row: %v", cands)
	}
	nc, ok := set.numCandidates(NewClosedRange("price", 250000, 250000))
	if !ok {
		t.Fatal("numeric index missing after extension")
	}
	found := false
	for _, i := range nc {
		found = found || i == r.Len()-1
	}
	if !found {
		t.Fatalf("extended num index missed the new row: %v", nc)
	}
}

// TestExtendedIndexMatchesRebuild pins merge-extension ≡ from-scratch
// rebuild: after interleaved appends (duplicate values included, forcing
// tie handling), the extended numeric index must hold exactly the arrays a
// cold BuildIndex produces, and the cat index the same value lists.
func TestExtendedIndexMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mk := func() Tuple {
		hoods := []string{"Bellevue, WA", "Redmond, WA", "Seattle, WA"}
		return Tuple{
			StringValue(hoods[rng.Intn(len(hoods))]),
			NumberValue(float64(200000 + rng.Intn(8)*5000)), // few distinct values: many ties
			NumberValue(float64(1 + rng.Intn(4))),
		}
	}
	ext := indexedRelation(t, 50)
	fresh := relationOfSize(50, 7)
	for i := 0; i < 75; i++ {
		row := mk()
		ext.MustAppend(row)
		fresh.MustAppend(row)
		if i%13 == 0 {
			// Interleave reads so extension happens in several batches.
			ext.Select(NewRange("price", 205000, 230000))
		}
	}
	if err := fresh.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	a, b := ext.currentIndexes(), fresh.currentIndexes()
	if a.n != b.n {
		t.Fatalf("coverage %d != %d", a.n, b.n)
	}
	for key, bi := range b.num {
		ai := a.num[key]
		if ai == nil {
			t.Fatalf("extended set missing numeric index %q", key)
		}
		if !reflect.DeepEqual(ai.vals, bi.vals) || !reflect.DeepEqual(ai.rows, bi.rows) || ai.hasNaN != bi.hasNaN {
			t.Fatalf("numeric index %q diverged from rebuild", key)
		}
	}
	for key, bi := range b.cat {
		ai := a.cat[key]
		if !reflect.DeepEqual(map[string][]int(ai), map[string][]int(bi)) {
			t.Fatalf("cat index %q diverged from rebuild", key)
		}
	}
}

// TestIndexedSelectMatchesScan is the equivalence property: indexed and
// unindexed Select return identical results for arbitrary predicates.
func TestIndexedSelectMatchesScan(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(300)
		plain := relationOfSize(n, seed)
		indexed := relationOfSize(n, seed)
		if err := indexed.BuildIndex(); err != nil {
			return false
		}
		hoods := []string{"Bellevue, WA", "Redmond, WA", "Seattle, WA", "Issaquah, WA", "Nowhere"}
		for trial := 0; trial < 12; trial++ {
			var pred Predicate
			switch trial % 4 {
			case 0:
				pred = NewIn("neighborhood", hoods[rng.Intn(len(hoods))], hoods[rng.Intn(len(hoods))])
			case 1:
				lo := float64(200000 + rng.Intn(50)*5000)
				pred = NewRange("price", lo, lo+float64(rng.Intn(20))*5000)
			case 2:
				lo := float64(200000 + rng.Intn(50)*5000)
				pred = NewClosedRange("price", lo, lo+50000)
			case 3:
				pred = NewAnd(
					NewIn("neighborhood", hoods[rng.Intn(len(hoods))]),
					NewClosedRange("bedrooms", float64(1+rng.Intn(3)), float64(3+rng.Intn(4))),
					NewRange("price", 210000, 400000),
				)
			}
			a := plain.Select(pred)
			b := indexed.Select(pred)
			if !reflect.DeepEqual(a, b) {
				t.Logf("seed %d trial %d: scan %v != indexed %v for %v", seed, trial, a, b, pred)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexedSelectResultsSorted(t *testing.T) {
	r := indexedRelation(t, 500)
	got := r.Select(NewAnd(NewIn("neighborhood", "Seattle, WA", "Bellevue, WA"), NewRange("price", 220000, 380000)))
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("indexed select not in ascending row order at %d: %v", i, got[:i+1])
		}
	}
}

func TestJoinStarSchema(t *testing.T) {
	fact := New("listings", MustSchema(
		Attribute{Name: "hoodid", Type: Categorical},
		Attribute{Name: "price", Type: Numeric},
	))
	fact.MustAppend(Tuple{StringValue("h1"), NumberValue(250000)})
	fact.MustAppend(Tuple{StringValue("h2"), NumberValue(300000)})
	fact.MustAppend(Tuple{StringValue("h3"), NumberValue(100000)}) // no dim match
	fact.MustAppend(Tuple{StringValue("h1"), NumberValue(275000)})

	dim := New("hoods", MustSchema(
		Attribute{Name: "id", Type: Categorical},
		Attribute{Name: "name", Type: Categorical},
		Attribute{Name: "walkscore", Type: Numeric},
	))
	dim.MustAppend(Tuple{StringValue("h1"), StringValue("Bellevue"), NumberValue(70)})
	dim.MustAppend(Tuple{StringValue("h2"), StringValue("Seattle"), NumberValue(90)})

	wide, err := Join(fact, "hoodid", dim, "id")
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if wide.Len() != 3 {
		t.Fatalf("joined rows = %d; want 3 (inner join drops h3)", wide.Len())
	}
	if wide.Schema().Len() != 4 {
		t.Fatalf("joined schema width = %d; want 4", wide.Schema().Len())
	}
	pos, ok := wide.Schema().Lookup("name")
	if !ok {
		t.Fatal("dimension attribute missing from joined schema")
	}
	if wide.Row(0)[pos].Str != "Bellevue" || wide.Row(1)[pos].Str != "Seattle" {
		t.Fatalf("dimension values misaligned: %v %v", wide.Row(0)[pos], wide.Row(1)[pos])
	}
	// The wide table is selectable like any relation.
	got := wide.Select(NewIn("name", "Bellevue"))
	if len(got) != 2 {
		t.Fatalf("select over joined relation = %v", got)
	}
}

func TestJoinErrors(t *testing.T) {
	fact := New("f", MustSchema(
		Attribute{Name: "k", Type: Categorical},
		Attribute{Name: "v", Type: Numeric},
	))
	dimDup := New("d", MustSchema(
		Attribute{Name: "k", Type: Categorical},
		Attribute{Name: "extra", Type: Numeric},
	))
	dimDup.MustAppend(Tuple{StringValue("a"), NumberValue(1)})
	dimDup.MustAppend(Tuple{StringValue("a"), NumberValue(2)})
	if _, err := Join(fact, "k", dimDup, "k"); err == nil {
		t.Error("duplicate dimension key should error")
	}
	if _, err := Join(fact, "missing", dimDup, "k"); err == nil {
		t.Error("missing fact key should error")
	}
	if _, err := Join(fact, "k", dimDup, "missing"); err == nil {
		t.Error("missing dim key should error")
	}
	dimNum := New("d2", MustSchema(
		Attribute{Name: "k", Type: Numeric},
		Attribute{Name: "x", Type: Numeric},
	))
	if _, err := Join(fact, "k", dimNum, "k"); err == nil {
		t.Error("key type mismatch should error")
	}
}

func TestJoinNameCollision(t *testing.T) {
	fact := New("f", MustSchema(
		Attribute{Name: "k", Type: Categorical},
		Attribute{Name: "price", Type: Numeric},
	))
	fact.MustAppend(Tuple{StringValue("a"), NumberValue(10)})
	dim := New("d", MustSchema(
		Attribute{Name: "id", Type: Categorical},
		Attribute{Name: "price", Type: Numeric}, // collides with fact.price
	))
	dim.MustAppend(Tuple{StringValue("a"), NumberValue(99)})
	wide, err := Join(fact, "k", dim, "id")
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if _, ok := wide.Schema().Lookup("d_price"); !ok {
		t.Fatalf("collided attribute not prefixed: %v", wide.Schema().Attrs())
	}
}

func TestProject(t *testing.T) {
	r := relationOfSize(10, 3)
	p, err := Project(r, "price", "neighborhood")
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if p.Schema().Len() != 2 || p.Len() != 10 {
		t.Fatalf("projection shape %d×%d", p.Len(), p.Schema().Len())
	}
	if p.Schema().Attr(0).Name != "price" {
		t.Fatal("projection order not honored")
	}
	for i := 0; i < p.Len(); i++ {
		origPricePos, _ := r.Schema().Lookup("price")
		if p.Row(i)[0] != r.Row(i)[origPricePos] {
			t.Fatalf("row %d price mismatch", i)
		}
	}
	if _, err := Project(r, "nope"); err == nil {
		t.Error("projecting a missing attribute should error")
	}
	if _, err := Project(r); err == nil {
		t.Error("empty projection should error")
	}
	if _, err := Project(r, "price", "price"); err == nil {
		t.Error("duplicate projection should error")
	}
}
