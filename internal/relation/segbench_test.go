package relation

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// segBenchSchema is the lean shape the storage benchmarks run on: a monotone
// timestamp (zone maps prune it hard), a uniform noise attribute (zone maps
// cannot prune it at all), and a categorical whose values arrive in runs
// (segment-local value sets stay small, the realistic ingest pattern).
func segBenchSchema() *Schema {
	return MustSchema(
		Attribute{Name: "ts", Type: Numeric},
		Attribute{Name: "noise", Type: Numeric},
		Attribute{Name: "kind", Type: Categorical},
	)
}

func segBenchTuple(rng *rand.Rand, i int) Tuple {
	return Tuple{
		NumberValue(float64(i)),
		NumberValue(rng.Float64()),
		StringValue(fmt.Sprintf("k%d", (i/4096)%16)),
	}
}

// segBenchRelation builds an n-row relation on the storage-benchmark shape.
// segRows 0 keeps DefaultSegmentRows; segRows > n yields a tail-only
// relation — no sealed segments, no zone maps — which is the unpruned
// baseline with byte-identical data and code paths.
func segBenchRelation(tb testing.TB, n, segRows int) *Relation {
	tb.Helper()
	r := New("events", segBenchSchema())
	if segRows > 0 {
		if err := r.SetSegmentRows(segRows); err != nil {
			tb.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(42))
	r.Grow(n)
	for i := 0; i < n; i++ {
		r.MustAppend(segBenchTuple(rng, i))
	}
	return r
}

// BenchmarkSegmentAppendSteady measures the steady-state per-row Append cost
// on relations preloaded to different sizes with columns, conjunct bitmaps,
// and indexes all live. Sealing only touches the segment directory, so the
// per-row cost must be independent of the total row count — this is the
// number the drop-everything design made O(rows) to recover.
func BenchmarkSegmentAppendSteady(b *testing.B) {
	for _, n := range []int{10000, 100000, 1000000} {
		b.Run(fmt.Sprintf("preload=%d", n), func(b *testing.B) {
			r := segBenchRelation(b, n, 0)
			if err := r.BuildIndex(); err != nil {
				b.Fatal(err)
			}
			if len(r.Select(segBenchSelective(n))) == 0 {
				b.Fatal("empty warmup selection")
			}
			rng := rand.New(rand.NewSource(43))
			// Reserve capacity for the appends under measurement: slice
			// growth is amortized O(1) regardless of size, and folding a
			// realloc copy into a small b.N run would misread as per-row
			// cost scaling with the preload.
			r.Grow(n + b.N)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.MustAppend(segBenchTuple(rng, n+i))
			}
		})
	}
}

// segBenchSelective targets the newest rows carrying the newest kind: the ts
// range rules out every sealed segment below the tail window (numeric zone
// maps), and the kind IN rules out every segment whose value run doesn't
// include the newest cluster (categorical zone maps) — both conjunct kinds
// prune.
func segBenchSelective(n int) Predicate {
	return NewAnd(
		NewClosedRange("ts", float64(n-20000), float64(n)),
		NewIn("kind", fmt.Sprintf("k%d", ((n-1)/4096)%16)),
	)
}

// segBenchUnselective matches every row: no zone map can rule any segment
// out, so the pruned path pays the zone checks and must stay within noise of
// the unpruned scan.
func segBenchUnselective(n int) Predicate {
	return NewAnd(
		NewClosedRange("ts", 0, float64(n)),
		NewClosedRange("noise", -1, 2),
	)
}

// BenchmarkSegmentAppendThenRead is the headline incremental-maintenance
// number: one appended row followed by a warm multi-conjunct Select on a
// preloaded 100k relation. mode=incremental is the live path — projections,
// conjunct bitmaps, and indexes extend by exactly the appended suffix.
// mode=dropEverything replays the pre-segment design by invalidating all
// three after the append, so the Select pays full O(rows) rebuilds.
func BenchmarkSegmentAppendThenRead(b *testing.B) {
	const n = 100000
	for _, mode := range []string{"incremental", "dropEverything"} {
		b.Run("rows=100000/mode="+mode, func(b *testing.B) {
			r := segBenchRelation(b, n, 0)
			if err := r.BuildIndex(); err != nil {
				b.Fatal(err)
			}
			// Narrower than segBenchSelective so the measured delta is the
			// maintenance work, not materializing a large result slice.
			pred := NewAnd(
				NewClosedRange("ts", float64(n-2000), float64(n)),
				NewClosedRange("noise", 0, 1),
			)
			if len(r.Select(pred)) == 0 {
				b.Fatal("empty warmup selection")
			}
			rng := rand.New(rand.NewSource(44))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.MustAppend(segBenchTuple(rng, n+i))
				if mode == "dropEverything" {
					r.dropColumns()
					r.dropConjuncts()
					r.dropIndexes()
				}
				if len(r.Select(pred)) == 0 {
					b.Fatal("empty selection")
				}
			}
		})
	}
}

// The paper-scale zone benchmark relations are built once per binary: the
// pruned relation seals 1.7M/DefaultSegmentRows segments with zone maps, the
// unpruned one holds every row in the tail (segRows > n) so the identical
// select path runs with nothing to prune against.
var zoneBench struct {
	once     sync.Once
	pruned   *Relation
	unpruned *Relation
}

const zoneBenchRows = 1700000

func zoneBenchRelations(b *testing.B) (pruned, unpruned *Relation) {
	zoneBench.once.Do(func() {
		zoneBench.pruned = segBenchRelation(b, zoneBenchRows, 0)
		zoneBench.unpruned = segBenchRelation(b, zoneBenchRows, zoneBenchRows+1)
	})
	if zoneBench.pruned == nil || zoneBench.unpruned == nil {
		b.Fatal("zone benchmark relations failed to build")
	}
	return zoneBench.pruned, zoneBench.unpruned
}

// BenchmarkSegmentZoneSelect measures cold conjunct-bitmap builds (the cache
// is dropped every iteration) at paper scale, with zone-map pruning live
// (zones=pruned) and structurally disabled (zones=unpruned, tail-only
// storage of the same rows). The selective predicate covers the newest ~5
// segments, so pruning skips ~99% of the relation; the unselective predicate
// covers everything, pinning the zone-check overhead.
func BenchmarkSegmentZoneSelect(b *testing.B) {
	pruned, unpruned := zoneBenchRelations(b)
	cases := []struct {
		name string
		rel  *Relation
		pred Predicate
		want int
	}{
		// 160 rows: the ts window [n-20000, n) intersected with the single
		// 4096-row segment whose kind cluster is the newest one.
		{"rows=1700000/pred=selective/zones=pruned", pruned, segBenchSelective(zoneBenchRows), 160},
		{"rows=1700000/pred=selective/zones=unpruned", unpruned, segBenchSelective(zoneBenchRows), 160},
		{"rows=1700000/pred=unselective/zones=pruned", pruned, segBenchUnselective(zoneBenchRows), zoneBenchRows},
		{"rows=1700000/pred=unselective/zones=unpruned", unpruned, segBenchUnselective(zoneBenchRows), zoneBenchRows},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.rel.dropConjuncts()
				if got := len(c.rel.Select(c.pred)); got != c.want {
					b.Fatalf("selected %d rows, want %d", got, c.want)
				}
			}
		})
	}
}
