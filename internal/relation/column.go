package relation

import (
	"fmt"
	"slices"
	"sort"
	"sync"
)

// Columnar projections. The categorizer's level-by-level search reads the
// same one or two attributes for every tuple of every frontier node, per
// candidate attribute, per level — a column-at-a-time access pattern that
// row-wise Tuple storage serves badly (every read drags the whole row
// through the cache and hashes strings). A projection materializes one
// attribute as a dense, cache-friendly array:
//
//   - numeric attributes project to a []float64 indexed by row id;
//   - categorical attributes project to dictionary codes: a []uint32 per
//     row plus a sorted value table, so partitioning becomes integer
//     counting-sort instead of string hashing.
//
// Projections are immutable snapshots, built lazily on first access (or
// eagerly by BuildIndex/BuildColumns) and cached on the Relation. Appending
// a row invalidates them together with the secondary indexes; the next
// access rebuilds. Concurrent readers are safe: the cache is mutex-guarded
// and the returned slices are never mutated after publication.

// CatColumn is the dictionary-encoded projection of one categorical
// attribute. Codes[i] is the code of row i's value; Dict is sorted
// ascending, so codes compare in lexicographic value order. Both slices are
// shared snapshots — callers must not modify them.
type CatColumn struct {
	Codes []uint32
	Dict  []string
}

// Value decodes row i's value.
func (c *CatColumn) Value(i int) string { return c.Dict[c.Codes[i]] }

// Card returns the number of distinct values (the dictionary size).
func (c *CatColumn) Card() int { return len(c.Dict) }

// Code returns the dictionary code of v and whether v occurs in the column.
func (c *CatColumn) Code(v string) (uint32, bool) {
	i := sort.SearchStrings(c.Dict, v)
	if i < len(c.Dict) && c.Dict[i] == v {
		return uint32(i), true
	}
	return 0, false
}

// columnCache holds the lazily-built projections of a Relation.
type columnCache struct {
	mu     sync.Mutex
	cat    map[string]*CatColumn // keyed by lower-cased attribute name
	num    map[string][]float64
	sorted map[string]*numSorted
	// identity is the cached full row list [0, 1, …, n-1] that Select(nil)
	// and Browse return; a shared snapshot, never modified after build.
	identity []int
}

// identityRows returns the cached identity row list, building it on first
// use. The returned slice is shared — callers must treat it as read-only.
func (r *Relation) identityRows() []int {
	r.cols.mu.Lock()
	defer r.cols.mu.Unlock()
	if r.cols.identity == nil {
		id := make([]int, r.Len())
		for i := range id {
			id[i] = i
		}
		r.cols.identity = id
	}
	return r.cols.identity
}

// catColumnIfBuilt peeks the projection cache for column pos without
// triggering a build.
func (r *Relation) catColumnIfBuilt(pos int) *CatColumn {
	key := lower(r.schema.Attr(pos).Name)
	r.cols.mu.Lock()
	defer r.cols.mu.Unlock()
	return r.cols.cat[key]
}

// numSorted is the whole relation ordered by one numeric attribute.
type numSorted struct {
	rows []int
	vals []float64
}

// SortByValue returns tset's rows ordered by ascending col value, together
// with the parallel value slice. The permutation is exactly what pdqsort
// produces over tset with a plain `<` comparator — the categorizer's
// historical per-node sort — but runs over packed (value, row) pairs, so no
// comparison gathers through the column. Ties therefore land in the same
// (deterministic) order as before the columnar rewrite, and — because the
// numeric path is never sharded (DESIGN.md §12) — that order is identical
// at every Options.Shards setting.
func SortByValue(col []float64, tset []int) (rows []int, vals []float64) {
	pairs := pairsFor(len(tset))
	for k, i := range tset {
		pairs[k] = valRow{v: col[i], row: int32(i)}
	}
	sortValRows(pairs)
	rows = make([]int, len(pairs))
	vals = make([]float64, len(pairs))
	for k, p := range pairs {
		rows[k] = int(p.row)
		vals[k] = p.v
	}
	pairPool.Put(&pairs)
	return rows, vals
}

// pairPool recycles the transient (value, row) buffers of SortByValue: the
// level-by-level search sorts one buffer per (node, attribute) pair and
// discards it immediately, so without pooling the sort loop dominates the
// allocator.
var pairPool = sync.Pool{New: func() any { s := make([]valRow, 0, 1024); return &s }}

func pairsFor(n int) []valRow {
	p := pairPool.Get().(*[]valRow)
	if cap(*p) < n {
		*p = make([]valRow, n)
	}
	return (*p)[:n]
}

type valRow struct {
	v   float64
	row int32
}

func sortValRows(pairs []valRow) {
	// slices.SortFunc is the same pdqsort as sort.Slice minus the
	// reflection; with this comparator its comparison outcomes — and hence
	// the final permutation, ties included — match the historical
	// sort.Slice(idx, func(a,b) { col[idx[a]] < col[idx[b]] }) exactly.
	// Do NOT break ties (e.g. on row id) to make the order total: a
	// tie-aware comparator defeats pdqsort's equal-element partitioning
	// and costs >2x on the low-cardinality columns the categorizer loves.
	slices.SortFunc(pairs, func(a, b valRow) int {
		switch {
		case a.v < b.v:
			return -1
		case b.v < a.v:
			return 1
		default:
			return 0
		}
	})
}

// NumSorted returns the relation's rows ordered by the named numeric
// attribute, with the parallel sorted values — the full-relation case of
// SortByValue, built once and cached (browsing-mode categorization sorts
// the entire result set at its root for every numeric candidate, on every
// request). The returned slices are shared snapshots; callers must not
// modify them.
func (r *Relation) NumSorted(attr string) (rows []int, vals []float64, err error) {
	col, err := r.NumColumn(attr)
	if err != nil {
		return nil, nil, err
	}
	key := lower(r.schema.Attr(mustPos(r.schema, attr)).Name)
	r.cols.mu.Lock()
	defer r.cols.mu.Unlock()
	if s, ok := r.cols.sorted[key]; ok {
		return s.rows, s.vals, nil
	}
	pairs := pairsFor(len(col))
	for i, v := range col {
		pairs[i] = valRow{v: v, row: int32(i)}
	}
	sortValRows(pairs)
	s := &numSorted{rows: make([]int, len(pairs)), vals: make([]float64, len(pairs))}
	for k, p := range pairs {
		s.rows[k] = int(p.row)
		s.vals[k] = p.v
	}
	pairPool.Put(&pairs)
	if r.cols.sorted == nil {
		r.cols.sorted = make(map[string]*numSorted)
	}
	r.cols.sorted[key] = s
	return s.rows, s.vals, nil
}

func mustPos(s *Schema, attr string) int {
	pos, _ := s.Lookup(attr)
	return pos
}

// CatColumn returns the dictionary-encoded projection of the named
// categorical attribute, building and caching it on first use. It errors if
// the attribute is missing or numeric.
func (r *Relation) CatColumn(attr string) (*CatColumn, error) {
	pos, ok := r.schema.Lookup(attr)
	if !ok {
		return nil, fmt.Errorf("relation %s: no attribute %q to project", r.Name, attr)
	}
	if r.schema.Attr(pos).Type != Categorical {
		return nil, fmt.Errorf("relation %s: attribute %q is not categorical", r.Name, attr)
	}
	key := lower(r.schema.Attr(pos).Name)
	r.cols.mu.Lock()
	defer r.cols.mu.Unlock()
	if c, ok := r.cols.cat[key]; ok {
		return c, nil
	}
	c := r.buildCatColumn(pos)
	if r.cols.cat == nil {
		r.cols.cat = make(map[string]*CatColumn)
	}
	r.cols.cat[key] = c
	return c, nil
}

// NumColumn returns the dense projection of the named numeric attribute,
// building and caching it on first use. It errors if the attribute is
// missing or categorical.
func (r *Relation) NumColumn(attr string) ([]float64, error) {
	pos, ok := r.schema.Lookup(attr)
	if !ok {
		return nil, fmt.Errorf("relation %s: no attribute %q to project", r.Name, attr)
	}
	if r.schema.Attr(pos).Type != Numeric {
		return nil, fmt.Errorf("relation %s: attribute %q is not numeric", r.Name, attr)
	}
	key := lower(r.schema.Attr(pos).Name)
	r.cols.mu.Lock()
	defer r.cols.mu.Unlock()
	if c, ok := r.cols.num[key]; ok {
		return c, nil
	}
	rows := r.snapshot()
	c := make([]float64, len(rows))
	for i, row := range rows {
		c[i] = row[pos].Num
	}
	if r.cols.num == nil {
		r.cols.num = make(map[string][]float64)
	}
	r.cols.num[key] = c
	return c, nil
}

// BuildColumns eagerly materializes projections for the named attributes
// (all attributes when none are given), so later concurrent readers never
// pay the build inside a hot path. BuildIndex calls it for the same set.
func (r *Relation) BuildColumns(attrs ...string) error {
	if len(attrs) == 0 {
		attrs = make([]string, r.schema.Len())
		for i := range attrs {
			attrs[i] = r.schema.Attr(i).Name
		}
	}
	for _, attr := range attrs {
		pos, ok := r.schema.Lookup(attr)
		if !ok {
			return fmt.Errorf("relation %s: no attribute %q to project", r.Name, attr)
		}
		var err error
		if r.schema.Attr(pos).Type == Categorical {
			_, err = r.CatColumn(attr)
		} else {
			_, err = r.NumColumn(attr)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// buildCatColumn dictionary-encodes column pos. Called with cols.mu held.
func (r *Relation) buildCatColumn(pos int) *CatColumn {
	rows := r.snapshot()
	codeOf := make(map[string]uint32, 64)
	var dict []string
	for _, row := range rows {
		v := row[pos].Str
		if _, ok := codeOf[v]; !ok {
			codeOf[v] = 0
			dict = append(dict, v)
		}
	}
	sort.Strings(dict)
	for i, v := range dict {
		codeOf[v] = uint32(i)
	}
	codes := make([]uint32, len(rows))
	for i, row := range rows {
		codes[i] = codeOf[row[pos].Str]
	}
	return &CatColumn{Codes: codes, Dict: dict}
}

// dropColumns invalidates all cached projections (rows changed).
func (r *Relation) dropColumns() {
	r.cols.mu.Lock()
	r.cols.cat = nil
	r.cols.num = nil
	r.cols.sorted = nil
	r.cols.identity = nil
	r.cols.mu.Unlock()
}
