package relation

import (
	"fmt"
	"slices"
	"sort"
	"sync"
)

// Columnar projections. The categorizer's level-by-level search reads the
// same one or two attributes for every tuple of every frontier node, per
// candidate attribute, per level — a column-at-a-time access pattern that
// row-wise Tuple storage serves badly (every read drags the whole row
// through the cache and hashes strings). A projection materializes one
// attribute as a dense, cache-friendly array:
//
//   - numeric attributes project to a []float64 indexed by row id;
//   - categorical attributes project to dictionary codes: a []uint32 per
//     row plus a sorted value table, so partitioning becomes integer
//     counting-sort instead of string hashing.
//
// Maintenance is incremental (DESIGN.md §14): projections are immutable
// snapshots published RCU-style, and appending rows no longer invalidates
// them. A read against a stale projection extends it — new rows are encoded
// into spare capacity beyond the published length (invisible to holders of
// the older snapshot) and a longer snapshot is published. The sealed prefix
// is never re-read; per-row maintenance cost is O(1) amortized instead of
// the historical O(total rows) drop-and-rebuild. The one structural event
// is a dictionary remap: when a categorical value never seen before
// arrives, the sorted dictionary gains an entry and every code at or above
// the insertion point shifts by the insert count — a pure integer rewrite
// of the code array (no sealed row is re-read, no string is re-hashed),
// bounded by the number of distinct values ever appended.
//
// Concurrent readers are safe: the cache is mutex-guarded, published
// snapshots are cap-clamped so spare capacity is unreachable through them,
// and a snapshot's visible elements are never written again.

// CatColumn is the dictionary-encoded projection of one categorical
// attribute. Codes[i] is the code of row i's value; Dict is sorted
// ascending, so codes compare in lexicographic value order. Both slices are
// shared snapshots — callers must not modify them (catlint's segguard
// check enforces this outside internal/relation).
type CatColumn struct {
	Codes []uint32
	Dict  []string
}

// Value decodes row i's value.
func (c *CatColumn) Value(i int) string { return c.Dict[c.Codes[i]] }

// Card returns the number of distinct values (the dictionary size).
func (c *CatColumn) Card() int { return len(c.Dict) }

// Code returns the dictionary code of v and whether v occurs in the column.
func (c *CatColumn) Code(v string) (uint32, bool) {
	i := sort.SearchStrings(c.Dict, v)
	if i < len(c.Dict) && c.Dict[i] == v {
		return uint32(i), true
	}
	return 0, false
}

// catEntry is the cache slot of one categorical projection: the published
// snapshot plus the full-capacity backing array the next extension appends
// into. Invariant: e.backing[:len(e.col.Codes)] is e.col.Codes' data.
type catEntry struct {
	col     *CatColumn
	backing []uint32
}

// numEntry is the cache slot of one numeric projection.
type numEntry struct {
	col     []float64
	backing []float64
}

// columnCache holds the incrementally-maintained projections of a Relation.
type columnCache struct {
	mu sync.Mutex
	//lint:guardedby mu
	cat map[string]*catEntry // keyed by lower-cased attribute name
	//lint:guardedby mu
	num map[string]*numEntry
	//lint:guardedby mu
	sorted map[string]*numSorted
	// identity is the cached full row list [0, 1, …, n-1] that Select(nil)
	// and Browse return; extended in place (spare capacity) as rows append.
	//lint:guardedby mu
	identity []int
	//lint:guardedby mu
	idBacking []int
}

// growCap sizes a backing array for n rows with headroom, so steady-state
// appends extend in place instead of reallocating per row.
func growCap(n int) int { return n + n/4 + 64 }

// identityRows returns the cached identity row list, building or extending
// it to the current row count. The returned slice is shared — callers must
// treat it as read-only.
func (r *Relation) identityRows() []int {
	n := r.Len()
	r.cols.mu.Lock()
	defer r.cols.mu.Unlock()
	if len(r.cols.identity) == n {
		return r.cols.identity
	}
	b := r.cols.idBacking
	if cap(b) < n {
		nb := make([]int, len(b), growCap(n))
		copy(nb, b)
		b = nb
	}
	for i := len(b); i < n; i++ {
		b = append(b, i)
	}
	r.cols.idBacking = b
	r.cols.identity = b[:n:n]
	return r.cols.identity
}

// catColumnIfBuilt peeks the projection cache for column pos without
// triggering a full build; a projection that exists but lags appended rows
// is extended so the returned snapshot always covers the current rows.
func (r *Relation) catColumnIfBuilt(pos int) *CatColumn {
	key := lower(r.schema.Attr(pos).Name)
	rows := r.snapshot()
	r.cols.mu.Lock()
	defer r.cols.mu.Unlock()
	if r.cols.cat[key] == nil {
		return nil
	}
	return r.catColumnLocked(key, pos, rows)
}

// numSorted is the whole relation ordered by one numeric attribute.
type numSorted struct {
	rows []int
	vals []float64
}

// SortByValue returns tset's rows ordered by ascending col value, together
// with the parallel value slice. The permutation is exactly what pdqsort
// produces over tset with a plain `<` comparator — the categorizer's
// historical per-node sort — but runs over packed (value, row) pairs, so no
// comparison gathers through the column. Ties therefore land in the same
// (deterministic) order as before the columnar rewrite, and — because the
// numeric path is never sharded (DESIGN.md §12) — that order is identical
// at every Options.Shards setting.
func SortByValue(col []float64, tset []int) (rows []int, vals []float64) {
	pairs := pairsFor(len(tset))
	for k, i := range tset {
		pairs[k] = valRow{v: col[i], row: int32(i)}
	}
	sortValRows(pairs)
	rows = make([]int, len(pairs))
	vals = make([]float64, len(pairs))
	for k, p := range pairs {
		rows[k] = int(p.row)
		vals[k] = p.v
	}
	pairPool.Put(&pairs)
	return rows, vals
}

// pairPool recycles the transient (value, row) buffers of SortByValue: the
// level-by-level search sorts one buffer per (node, attribute) pair and
// discards it immediately, so without pooling the sort loop dominates the
// allocator.
var pairPool = sync.Pool{New: func() any { s := make([]valRow, 0, 1024); return &s }}

func pairsFor(n int) []valRow {
	p := pairPool.Get().(*[]valRow)
	if cap(*p) < n {
		*p = make([]valRow, n)
	}
	return (*p)[:n]
}

type valRow struct {
	v   float64
	row int32
}

func sortValRows(pairs []valRow) {
	// slices.SortFunc is the same pdqsort as sort.Slice minus the
	// reflection; with this comparator its comparison outcomes — and hence
	// the final permutation, ties included — match the historical
	// sort.Slice(idx, func(a,b) { col[idx[a]] < col[idx[b]] }) exactly.
	// Do NOT break ties (e.g. on row id) to make the order total: a
	// tie-aware comparator defeats pdqsort's equal-element partitioning
	// and costs >2x on the low-cardinality columns the categorizer loves.
	slices.SortFunc(pairs, func(a, b valRow) int {
		switch {
		case a.v < b.v:
			return -1
		case b.v < a.v:
			return 1
		default:
			return 0
		}
	})
}

// NumSorted returns the relation's rows ordered by the named numeric
// attribute, with the parallel sorted values — the full-relation case of
// SortByValue, built once and cached (browsing-mode categorization sorts
// the entire result set at its root for every numeric candidate, on every
// request). A cached permutation that lags appended rows is rebuilt from
// the incrementally-extended column — a full re-sort, deliberately, so the
// permutation (ties included) is bitwise what a cold build over the same
// rows produces. The returned slices are shared snapshots; callers must not
// modify them.
func (r *Relation) NumSorted(attr string) (rows []int, vals []float64, err error) {
	col, err := r.NumColumn(attr)
	if err != nil {
		return nil, nil, err
	}
	key := lower(r.schema.Attr(mustPos(r.schema, attr)).Name)
	r.cols.mu.Lock()
	defer r.cols.mu.Unlock()
	if s, ok := r.cols.sorted[key]; ok && len(s.rows) == len(col) {
		return s.rows, s.vals, nil
	}
	pairs := pairsFor(len(col))
	for i, v := range col {
		pairs[i] = valRow{v: v, row: int32(i)}
	}
	sortValRows(pairs)
	s := &numSorted{rows: make([]int, len(pairs)), vals: make([]float64, len(pairs))}
	for k, p := range pairs {
		s.rows[k] = int(p.row)
		s.vals[k] = p.v
	}
	pairPool.Put(&pairs)
	if r.cols.sorted == nil {
		r.cols.sorted = make(map[string]*numSorted)
	}
	r.cols.sorted[key] = s
	return s.rows, s.vals, nil
}

func mustPos(s *Schema, attr string) int {
	pos, _ := s.Lookup(attr)
	return pos
}

// CatColumn returns the dictionary-encoded projection of the named
// categorical attribute, building it on first use and extending it over any
// rows appended since the cached snapshot. It errors if the attribute is
// missing or numeric.
func (r *Relation) CatColumn(attr string) (*CatColumn, error) {
	pos, ok := r.schema.Lookup(attr)
	if !ok {
		return nil, fmt.Errorf("relation %s: no attribute %q to project", r.Name, attr)
	}
	if r.schema.Attr(pos).Type != Categorical {
		return nil, fmt.Errorf("relation %s: attribute %q is not categorical", r.Name, attr)
	}
	key := lower(r.schema.Attr(pos).Name)
	rows := r.snapshot()
	r.cols.mu.Lock()
	defer r.cols.mu.Unlock()
	return r.catColumnLocked(key, pos, rows), nil
}

// catColumnLocked builds or extends the categorical projection to cover
// rows. Called with cols.mu held.
func (r *Relation) catColumnLocked(key string, pos int, rows []Tuple) *CatColumn {
	e := r.cols.cat[key]
	if e == nil {
		e = buildCatEntry(rows, pos)
		if r.cols.cat == nil {
			r.cols.cat = make(map[string]*catEntry)
		}
		r.cols.cat[key] = e
		return e.col
	}
	n0, n := len(e.col.Codes), len(rows)
	if n0 == n {
		return e.col
	}
	// Collect values the sorted dictionary has never seen.
	dict := e.col.Dict
	var newVals []string
	for i := n0; i < n; i++ {
		v := rows[i][pos].Str
		if _, ok := e.col.Code(v); ok {
			continue
		}
		if j := sort.SearchStrings(newVals, v); j == len(newVals) || newVals[j] != v {
			newVals = append(newVals, "")
			copy(newVals[j+1:], newVals[j:])
			newVals[j] = v
		}
	}
	var ne *catEntry
	if newVals == nil {
		// Append-only extension: new codes land in spare capacity beyond the
		// published length; holders of the older snapshot never see them.
		backing := e.backing
		if cap(backing) < n {
			backing = make([]uint32, n0, growCap(n))
			copy(backing, e.backing)
		}
		for i := n0; i < n; i++ {
			c, _ := e.col.Code(rows[i][pos].Str)
			backing = append(backing, c)
		}
		ne = &catEntry{col: &CatColumn{Codes: backing[:n:n], Dict: dict}, backing: backing}
	} else {
		// Dictionary remap: merge the new values into the sorted dictionary
		// and shift existing codes past each insertion point. An integer
		// rewrite of the code array — sealed rows are not re-read.
		newDict := make([]string, 0, len(dict)+len(newVals))
		shift := make([]uint32, len(dict))
		i, j := 0, 0
		for i < len(dict) || j < len(newVals) {
			if j == len(newVals) || (i < len(dict) && dict[i] < newVals[j]) {
				shift[i] = uint32(len(newDict))
				newDict = append(newDict, dict[i])
				i++
			} else {
				newDict = append(newDict, newVals[j])
				j++
			}
		}
		backing := make([]uint32, n, growCap(n))
		for k, c := range e.backing[:n0] {
			backing[k] = shift[c]
		}
		nc := &CatColumn{Codes: backing[:n:n], Dict: newDict}
		for k := n0; k < n; k++ {
			c, _ := nc.Code(rows[k][pos].Str)
			backing[k] = c
		}
		ne = &catEntry{col: nc, backing: backing}
	}
	r.cols.cat[key] = ne
	return ne.col
}

// buildCatEntry dictionary-encodes column pos from scratch, with spare
// capacity for future extensions.
func buildCatEntry(rows []Tuple, pos int) *catEntry {
	codeOf := make(map[string]uint32, 64)
	var dict []string
	for _, row := range rows {
		v := row[pos].Str
		if _, ok := codeOf[v]; !ok {
			codeOf[v] = 0
			dict = append(dict, v)
		}
	}
	sort.Strings(dict)
	for i, v := range dict {
		codeOf[v] = uint32(i)
	}
	n := len(rows)
	backing := make([]uint32, n, growCap(n))
	for i, row := range rows {
		backing[i] = codeOf[row[pos].Str]
	}
	return &catEntry{col: &CatColumn{Codes: backing[:n:n], Dict: dict}, backing: backing}
}

// NumColumn returns the dense projection of the named numeric attribute,
// building it on first use and extending it over rows appended since the
// cached snapshot. It errors if the attribute is missing or categorical.
func (r *Relation) NumColumn(attr string) ([]float64, error) {
	pos, ok := r.schema.Lookup(attr)
	if !ok {
		return nil, fmt.Errorf("relation %s: no attribute %q to project", r.Name, attr)
	}
	if r.schema.Attr(pos).Type != Numeric {
		return nil, fmt.Errorf("relation %s: attribute %q is not numeric", r.Name, attr)
	}
	key := lower(r.schema.Attr(pos).Name)
	rows := r.snapshot()
	r.cols.mu.Lock()
	defer r.cols.mu.Unlock()
	e := r.cols.num[key]
	n := len(rows)
	if e != nil && len(e.col) == n {
		return e.col, nil
	}
	var backing []float64
	n0 := 0
	if e != nil {
		backing = e.backing
		n0 = len(e.col)
		if cap(backing) < n {
			backing = make([]float64, n0, growCap(n))
			copy(backing, e.backing)
		}
	} else {
		backing = make([]float64, 0, growCap(n))
	}
	for i := n0; i < n; i++ {
		backing = append(backing, rows[i][pos].Num)
	}
	ne := &numEntry{col: backing[:n:n], backing: backing}
	if r.cols.num == nil {
		r.cols.num = make(map[string]*numEntry)
	}
	r.cols.num[key] = ne
	return ne.col, nil
}

// BuildColumns eagerly materializes projections for the named attributes
// (all attributes when none are given), so later concurrent readers never
// pay the build inside a hot path. BuildIndex calls it for the same set.
func (r *Relation) BuildColumns(attrs ...string) error {
	if len(attrs) == 0 {
		attrs = make([]string, r.schema.Len())
		for i := range attrs {
			attrs[i] = r.schema.Attr(i).Name
		}
	}
	for _, attr := range attrs {
		pos, ok := r.schema.Lookup(attr)
		if !ok {
			return fmt.Errorf("relation %s: no attribute %q to project", r.Name, attr)
		}
		var err error
		if r.schema.Attr(pos).Type == Categorical {
			_, err = r.CatColumn(attr)
		} else {
			_, err = r.NumColumn(attr)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// dropColumns invalidates all cached projections. No longer on the Append
// path (maintenance is incremental); retained as the drop-everything
// baseline for the segment benchmarks and invalidation tests.
func (r *Relation) dropColumns() {
	r.cols.mu.Lock()
	r.cols.cat = nil
	r.cols.num = nil
	r.cols.sorted = nil
	r.cols.identity = nil
	r.cols.idBacking = nil
	r.cols.mu.Unlock()
}
