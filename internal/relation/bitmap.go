package relation

import "math/bits"

// Bitmap is a word-packed set of row ids in [0, Len): bit i of words[i/64]
// is row i's membership. It is the intermediate representation of the
// vectorized selection engine (vselect.go): each conjunct materializes as
// one bitmap, conjuncts combine with word-wise AND, and the final bitmap
// unpacks to the ascending []int row list the categorizer consumes.
//
// Bitmaps published through the conjunct cache are immutable; the in-place
// operations (Set, And, AndNot) are for bitmaps still owned by their
// builder.
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap returns an empty bitmap over rows [0, n).
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)>>6), n: n}
}

// Len returns the row universe size n.
func (b *Bitmap) Len() int { return b.n }

// Set adds row i.
func (b *Bitmap) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Get reports whether row i is set.
func (b *Bitmap) Get(i int) bool { return b.words[i>>6]>>(uint(i)&63)&1 != 0 }

// SetAll sets every row in [0, n).
func (b *Bitmap) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
}

// trim clears the bits above n-1 in the last word, keeping Count exact.
func (b *Bitmap) trim() {
	if rem := uint(b.n) & 63; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << rem) - 1
	}
}

// Count returns the number of set rows.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// And intersects b with o in place and returns the resulting count. The
// universes may differ by appended rows (conjunct bitmaps cached at
// different generations): rows beyond o's universe are treated as not
// matching o, so the intersection is exact over the shorter universe — the
// consistent-prefix semantics Select needs when conjuncts raced an Append.
func (b *Bitmap) And(o *Bitmap) int {
	c := 0
	m := min(len(b.words), len(o.words))
	for i := 0; i < m; i++ {
		b.words[i] &= o.words[i]
		c += bits.OnesCount64(b.words[i])
	}
	for i := m; i < len(b.words); i++ {
		b.words[i] = 0
	}
	return c
}

// AndNot removes o's rows from b in place and returns the resulting count.
// Rows beyond o's universe are kept (o does not claim them).
func (b *Bitmap) AndNot(o *Bitmap) int {
	c := 0
	m := min(len(b.words), len(o.words))
	for i := 0; i < m; i++ {
		b.words[i] &^= o.words[i]
		c += bits.OnesCount64(b.words[i])
	}
	for i := m; i < len(b.words); i++ {
		c += bits.OnesCount64(b.words[i])
	}
	return c
}

// Clone returns an independent copy.
func (b *Bitmap) Clone() *Bitmap {
	out := &Bitmap{words: make([]uint64, len(b.words)), n: b.n}
	copy(out.words, b.words)
	return out
}

// AppendRows appends the set rows to dst in ascending order and returns the
// extended slice. Iteration peels one bit per trailing-zeros step, so sparse
// bitmaps cost O(set bits), not O(n).
func (b *Bitmap) AppendRows(dst []int) []int {
	for wi, w := range b.words {
		base := wi << 6
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// Rows returns the set rows in ascending order, sized exactly.
func (b *Bitmap) Rows() []int {
	return b.AppendRows(make([]int, 0, b.Count()))
}
