package relation

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// segTestRelation builds a relation with the given segment size, appending
// n rows from the deterministic generator relationOfSize uses (seed fixed),
// so two relations with different segment sizes hold identical rows.
func segTestRelation(t *testing.T, segRows, n int) *Relation {
	t.Helper()
	r := New("homes", MustSchema(
		Attribute{Name: "neighborhood", Type: Categorical},
		Attribute{Name: "price", Type: Numeric},
		Attribute{Name: "bedrooms", Type: Numeric},
	))
	if segRows > 0 {
		if err := r.SetSegmentRows(segRows); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(7))
	hoods := []string{"Bellevue, WA", "Redmond, WA", "Seattle, WA", "Issaquah, WA"}
	for i := 0; i < n; i++ {
		r.MustAppend(Tuple{
			StringValue(hoods[rng.Intn(len(hoods))]),
			NumberValue(float64(200000 + rng.Intn(50)*5000)),
			NumberValue(float64(1 + rng.Intn(6))),
		})
	}
	return r
}

func TestSetSegmentRows(t *testing.T) {
	r := segTestRelation(t, 0, 0)
	if got := r.segmentRows(); got != DefaultSegmentRows {
		t.Fatalf("default segment size %d, want %d", got, DefaultSegmentRows)
	}
	if err := r.SetSegmentRows(0); err == nil {
		t.Fatal("segment size 0 must be rejected")
	}
	if err := r.SetSegmentRows(17); err != nil {
		t.Fatal(err)
	}
	if got := r.segmentRows(); got != 17 {
		t.Fatalf("segment size %d, want 17", got)
	}
	r.MustAppend(Tuple{StringValue("x"), NumberValue(1), NumberValue(1)})
	if err := r.SetSegmentRows(32); err == nil {
		t.Fatal("segment size must be immutable once rows exist")
	}
}

func TestSealingBoundaries(t *testing.T) {
	r := segTestRelation(t, 10, 0)
	for i := 1; i <= 35; i++ {
		r.MustAppend(Tuple{StringValue("x"), NumberValue(float64(i)), NumberValue(1)})
		wantSealed := i / 10 * 10
		if got := r.sealedRows(); got != wantSealed {
			t.Fatalf("after %d appends: sealed %d rows, want %d", i, got, wantSealed)
		}
	}
	segs := r.sealedSegments()
	if len(segs) != 3 {
		t.Fatalf("segments %d, want 3", len(segs))
	}
	for i, seg := range segs {
		if seg.lo != i*10 || seg.hi != (i+1)*10 {
			t.Fatalf("segment %d spans [%d,%d), want [%d,%d)", i, seg.lo, seg.hi, i*10, (i+1)*10)
		}
	}
	st := r.StorageStats()
	if st.SegmentRows != 10 || st.Segments != 3 || st.SealedRows != 30 || st.TailRows != 5 || st.Seals != 3 {
		t.Fatalf("storage stats %+v", st)
	}
}

// TestSegmentedSelectEquivalence is the iron contract at the Select layer:
// for every segment size — including 1, 64, a non-word-multiple, and the
// default — and at every mid-append point, the segmented vectorized path
// returns exactly the rows the naive row-wise scan does, while cached
// conjuncts extend rather than rebuild.
func TestSegmentedSelectEquivalence(t *testing.T) {
	preds := []Predicate{
		NewIn("neighborhood", "Bellevue, WA"),
		NewIn("neighborhood", "Seattle, WA", "Redmond, WA"),
		NewRange("price", 210000, 300000),
		NewClosedRange("price", 200000, 215000),
		NewAnd(NewIn("neighborhood", "Bellevue, WA"), NewClosedRange("price", 200000, 400000)),
		NewAnd(NewRange("price", 250000, 440000), NewClosedRange("bedrooms", 2, 4)),
	}
	for _, segRows := range []int{1, 37, 64, DefaultSegmentRows} {
		r := segTestRelation(t, segRows, 140)
		// Exercise each predicate cold, then across append batches that cross
		// seal boundaries, then warm.
		for batch := 0; batch < 4; batch++ {
			for _, pred := range preds {
				want := selectReference(r, pred)
				sameRows(t, r.Select(pred), want, "segmented select")
				sameRows(t, r.Select(pred), want, "segmented select warm")
			}
			rng := rand.New(rand.NewSource(int64(batch)))
			hoods := []string{"Bellevue, WA", "Redmond, WA", "Seattle, WA", "Issaquah, WA"}
			for i := 0; i < 30+batch; i++ {
				r.MustAppend(Tuple{
					StringValue(hoods[rng.Intn(len(hoods))]),
					NumberValue(float64(200000 + rng.Intn(50)*5000)),
					NumberValue(float64(1 + rng.Intn(6))),
				})
			}
		}
		if segRows == 1 {
			if st := r.StorageStats(); st.Segments != r.Len() || st.TailRows != 0 {
				t.Fatalf("segment size 1: %+v", st)
			}
		}
	}
}

// TestDictionaryRemapOnAppend pins the one structural projection event: a
// brand-new categorical value sorting before existing dictionary entries
// forces a remap; old snapshots must be untouched, the new snapshot
// consistent, and IN selections exact across the remap.
func TestDictionaryRemapOnAppend(t *testing.T) {
	r := New("homes", MustSchema(
		Attribute{Name: "city", Type: Categorical},
		Attribute{Name: "price", Type: Numeric},
	))
	if err := r.SetSegmentRows(4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		city := "mm"
		if i%2 == 0 {
			city = "zz"
		}
		r.MustAppend(Tuple{StringValue(city), NumberValue(float64(i))})
	}
	before, err := r.CatColumn("city")
	if err != nil {
		t.Fatal(err)
	}
	beforeCodes := append([]uint32{}, before.Codes...)
	pred := NewIn("city", "zz")
	want := selectReference(r, pred)
	sameRows(t, r.Select(pred), want, "pre-remap")

	// "aa" sorts before both existing values: every existing code shifts.
	r.MustAppend(Tuple{StringValue("aa"), NumberValue(99)})
	after, err := r.CatColumn("city")
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Dict) != 3 || after.Dict[0] != "aa" {
		t.Fatalf("remapped dictionary %v", after.Dict)
	}
	for i, c := range beforeCodes {
		if before.Codes[i] != c {
			t.Fatalf("old snapshot mutated at row %d", i)
		}
		if after.Dict[after.Codes[i]] != before.Dict[c] {
			t.Fatalf("row %d decodes %q after remap, was %q", i, after.Dict[after.Codes[i]], before.Dict[c])
		}
	}
	want = selectReference(r, pred)
	sameRows(t, r.Select(pred), want, "post-remap")
	sameRows(t, r.Select(NewIn("city", "aa")), []int{10}, "new value")
}

// TestZoneMapPruning checks that selective ranges over clustered data skip
// sealed segments (counted in StorageStats) without changing results, and
// that NaN/±0/±Inf rows and bounds never cause a wrong prune.
func TestZoneMapPruning(t *testing.T) {
	r := New("events", MustSchema(
		Attribute{Name: "kind", Type: Categorical},
		Attribute{Name: "ts", Type: Numeric},
	))
	if err := r.SetSegmentRows(64); err != nil {
		t.Fatal(err)
	}
	kinds := []string{"alpha", "beta", "gamma", "delta"}
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1)}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		ts := float64(i) // monotone: consecutive segments have disjoint ranges
		if i%97 == 0 {
			ts = specials[rng.Intn(len(specials))]
		}
		// Cluster kinds so categorical zone maps can prune too.
		r.MustAppend(Tuple{StringValue(kinds[i/256]), NumberValue(ts)})
	}
	if err := r.BuildColumns(); err != nil {
		t.Fatal(err)
	}
	check := func(pred Predicate, what string) {
		t.Helper()
		sameRows(t, r.Select(pred), selectReference(r, pred), what)
	}
	base := r.StorageStats().ZonePruned
	check(NewClosedRange("ts", 500, 520), "selective range")
	if got := r.StorageStats().ZonePruned; got <= base {
		t.Fatalf("selective range pruned no segments (%d -> %d)", base, got)
	}
	check(NewClosedRange("ts", math.Inf(-1), math.Inf(1)), "full range")
	check(NewRange("ts", 0, 0), "empty range")
	check(&Range{Attr: "ts", Lo: math.NaN(), Hi: 600, HiInc: true}, "NaN lower bound")
	check(&Range{Attr: "ts", Lo: 0, Hi: math.NaN(), HiInc: true}, "NaN upper bound")
	check(NewClosedRange("ts", math.Copysign(0, -1), 0), "signed zero bounds")
	base = r.StorageStats().ZonePruned
	check(NewIn("kind", "alpha"), "clustered IN")
	if got := r.StorageStats().ZonePruned; got <= base {
		t.Fatalf("clustered IN pruned no segments (%d -> %d)", base, got)
	}
	check(NewIn("kind", "nope"), "absent IN")
	check(NewAnd(NewIn("kind", "delta"), NewClosedRange("ts", 100, 900)), "conjunction")
}

// TestZoneSpansPlan unit-tests the span planner: pruned fully-covered
// segments are cut, partially-covered segments always scanned, surviving
// spans word-aligned within the window and merged when touching.
func TestZoneSpansPlan(t *testing.T) {
	r := segTestRelation(t, 100, 1000) // 100 is not a multiple of 64
	segs := r.sealedSegments()
	if len(segs) != 10 {
		t.Fatalf("segments %d, want 10", len(segs))
	}
	// Prune segments 2,3 and 7: spans must cut those, word-aligned.
	spans := r.zoneSpans(0, 1000, func(s *segment) bool {
		return !(s.lo == 200 || s.lo == 300 || s.lo == 700)
	})
	for i, sp := range spans {
		if sp.lo >= sp.hi {
			t.Fatalf("empty span %d: %+v", i, sp)
		}
		if sp.lo%64 != 0 && sp.lo != 0 {
			t.Fatalf("span %d start %d not word-aligned", i, sp.lo)
		}
		if sp.hi%64 != 0 && sp.hi != 1000 {
			t.Fatalf("span %d end %d not word-aligned", i, sp.hi)
		}
		if i > 0 && sp.lo <= spans[i-1].hi {
			t.Fatalf("spans overlap or touch unmerged: %+v", spans)
		}
	}
	covered := func(row int) bool {
		for _, sp := range spans {
			if row >= sp.lo && row < sp.hi {
				return true
			}
		}
		return false
	}
	for row := 0; row < 1000; row++ {
		pruned := (row >= 200 && row < 400) || (row >= 700 && row < 800)
		if !pruned && !covered(row) {
			t.Fatalf("row %d outside pruned segments not covered by any span", row)
		}
	}
	// A window end mid-segment: the partially-covered segment must be
	// scanned even if its zone says no match. The span start aligns down to
	// the word boundary 192, re-covering 8 rows of the pruned neighbor —
	// harmless by construction (pruned rows evaluate to no match).
	spans = r.zoneSpans(0, 250, func(*segment) bool { return false })
	if len(spans) != 1 || spans[0].lo != 192 || spans[0].hi != 250 {
		t.Fatalf("partial-coverage plan %+v, want [{192 250}]", spans)
	}
}

func TestBitmapMixedUniverses(t *testing.T) {
	b := NewBitmap(130)
	for _, i := range []int{0, 63, 64, 100, 128, 129} {
		b.Set(i)
	}
	o := NewBitmap(70)
	o.Set(0)
	o.Set(64)
	if got := b.Clone().And(o); got != 2 {
		t.Fatalf("And across universes = %d, want 2", got)
	}
	if got := b.Clone().AndNot(o); got != 4 {
		t.Fatalf("AndNot across universes = %d, want 4", got)
	}
	// Symmetric: short bitmap against long operand.
	if got := o.Clone().And(b); got != 2 {
		t.Fatalf("short.And(long) = %d, want 2", got)
	}
	if got := o.Clone().AndNot(b); got != 0 {
		t.Fatalf("short.AndNot(long) = %d, want 0", got)
	}
}

// TestShardSegmentAlignment: at segment scale, interior shard boundaries
// snap to segment multiples, coverage stays exact and near-balanced, and
// shard selects still concatenate to the parent select.
func TestShardSegmentAlignment(t *testing.T) {
	r := segTestRelation(t, 64, 64*8*3+50) // 3 segments-per-shard-minimum × n=3 + tail
	n := 3
	shards := r.Shards(n)
	// total/n = 529 ≥ 64*8: alignment active.
	if len(shards) != n {
		t.Fatalf("shard count %d", len(shards))
	}
	lo := 0
	for i, s := range shards {
		if s.Lo != lo {
			t.Fatalf("shard %d starts at %d, want %d", i, s.Lo, lo)
		}
		if i < n-1 && s.Hi%64 != 0 {
			t.Fatalf("interior boundary %d not segment-aligned", s.Hi)
		}
		lo = s.Hi
	}
	if lo != r.Len() {
		t.Fatalf("shards cover %d rows, want %d", lo, r.Len())
	}
	// Each boundary moves at most half a segment off the even split, so a
	// shard's size skews by at most one segment (both edges) plus remainder.
	even := r.Len() / n
	for i, s := range shards {
		if d := s.Len() - even; d < -65 || d > 65 {
			t.Fatalf("shard %d size %d skews %d rows from even %d", i, s.Len(), d, even)
		}
	}
	pred := NewAnd(NewIn("neighborhood", "Seattle, WA"), NewClosedRange("price", 200000, 420000))
	var cat []int
	for _, s := range shards {
		cat = append(cat, s.Select(pred)...)
	}
	sameRows(t, cat, r.Select(pred), "sharded concatenation")

	// Below segment scale the historical near-equal split is preserved.
	small := segTestRelation(t, 64, 103)
	sizes := map[int]bool{}
	lo = 0
	for _, s := range small.Shards(4) {
		if s.Lo != lo {
			t.Fatal("small-shard spans not contiguous")
		}
		sizes[s.Len()] = true
		lo = s.Hi
	}
	if lo != 103 || len(sizes) > 2 {
		t.Fatalf("small-shard split changed: covered=%d sizes=%v", lo, sizes)
	}
}

// TestConcurrentAppendSealSelect races Appends (which seal segments) with
// Selects and StorageStats under -race: every Select must return a
// consistent prefix result — exactly the reference answer over some row
// count the relation passed through.
func TestConcurrentAppendSealSelect(t *testing.T) {
	r := segTestRelation(t, 8, 100)
	if err := r.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	pred := NewAnd(NewIn("neighborhood", "Bellevue, WA"), NewClosedRange("price", 200000, 330000))
	// Reference answers for every prefix length: matches[i] is whether row i
	// matches, so wantAt(n) is the prefix-sum filter.
	const total = 600
	rows := make([]Tuple, 0, total)
	rng := rand.New(rand.NewSource(99))
	hoods := []string{"Bellevue, WA", "Redmond, WA", "Seattle, WA", "Issaquah, WA"}
	for i := 0; i < total; i++ {
		rows = append(rows, Tuple{
			StringValue(hoods[rng.Intn(len(hoods))]),
			NumberValue(float64(200000 + rng.Intn(50)*5000)),
			NumberValue(float64(1 + rng.Intn(6))),
		})
	}
	// matched[i] answers "does row i match pred" for every row the relation
	// will ever hold, precomputed so reader goroutines do no map work.
	base := 100
	matched := make([]bool, base+total)
	for i := 0; i < base; i++ {
		matched[i] = pred.Matches(r.Schema(), r.Row(i))
	}
	for i, row := range rows {
		matched[base+i] = pred.Matches(r.Schema(), row)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, row := range rows {
			r.MustAppend(row)
		}
	}()
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				got := r.Select(pred)
				// The result must be the exact answer for SOME prefix the
				// relation passed through: row ids ascending, no matching row
				// skipped before the last returned id, no non-matching row
				// included.
				last := -1
				for _, i := range got {
					if i <= last {
						panicf(t, "rows out of order: %v", got)
					}
					for j := last + 1; j < i; j++ {
						if matched[j] {
							panicf(t, "skipped matching row %d in %v", j, got)
						}
					}
					if !matched[i] {
						panicf(t, "non-matching row %d selected", i)
					}
					last = i
				}
				_ = r.StorageStats()
			}
		}()
	}
	wg.Wait()
	want := selectReference(r, pred)
	sameRows(t, r.Select(pred), want, "quiesced select")
	if st := r.StorageStats(); st.SealedRows != (base+total)/8*8 {
		t.Fatalf("sealed rows %d after quiesce, want %d", st.SealedRows, (base+total)/8*8)
	}
}

func panicf(t *testing.T, format string, args ...any) {
	t.Helper()
	t.Errorf(format, args...)
}
