package relation

import (
	"math"
	"strings"
	"testing"
)

func homesSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Attribute{Name: "neighborhood", Type: Categorical},
		Attribute{Name: "price", Type: Numeric},
		Attribute{Name: "bedrooms", Type: Numeric},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func homesRelation(t *testing.T) *Relation {
	t.Helper()
	r := New("homes", homesSchema(t))
	rows := []struct {
		n    string
		p, b float64
	}{
		{"Bellevue, WA", 250000, 3},
		{"Redmond, WA", 220000, 2},
		{"Seattle, WA", 310000, 4},
		{"Bellevue, WA", 280000, 5},
		{"Issaquah, WA", 205000, 3},
	}
	for _, row := range rows {
		r.MustAppend(Tuple{StringValue(row.n), NumberValue(row.p), NumberValue(row.b)})
	}
	return r
}

func TestNewSchemaRejectsDuplicates(t *testing.T) {
	_, err := NewSchema(
		Attribute{Name: "price", Type: Numeric},
		Attribute{Name: "Price", Type: Numeric},
	)
	if err == nil {
		t.Fatal("expected error for case-insensitive duplicate attribute")
	}
}

func TestNewSchemaRejectsEmptyName(t *testing.T) {
	if _, err := NewSchema(Attribute{Name: "", Type: Numeric}); err == nil {
		t.Fatal("expected error for empty attribute name")
	}
}

func TestSchemaLookupCaseInsensitive(t *testing.T) {
	s := homesSchema(t)
	for _, name := range []string{"price", "PRICE", "Price"} {
		i, ok := s.Lookup(name)
		if !ok || i != 1 {
			t.Errorf("Lookup(%q) = %d,%v; want 1,true", name, i, ok)
		}
	}
	if _, ok := s.Lookup("missing"); ok {
		t.Error("Lookup(missing) should fail")
	}
}

func TestSchemaTypeOf(t *testing.T) {
	s := homesSchema(t)
	if typ, ok := s.TypeOf("neighborhood"); !ok || typ != Categorical {
		t.Errorf("TypeOf(neighborhood) = %v,%v", typ, ok)
	}
	if typ, ok := s.TypeOf("price"); !ok || typ != Numeric {
		t.Errorf("TypeOf(price) = %v,%v", typ, ok)
	}
	if _, ok := s.TypeOf("nope"); ok {
		t.Error("TypeOf(nope) should fail")
	}
}

func TestTypeString(t *testing.T) {
	if Categorical.String() != "categorical" || Numeric.String() != "numeric" {
		t.Errorf("Type.String: got %q, %q", Categorical, Numeric)
	}
	if got := Type(9).String(); !strings.Contains(got, "9") {
		t.Errorf("unknown type string = %q", got)
	}
}

func TestAppendWidthMismatch(t *testing.T) {
	r := New("homes", homesSchema(t))
	if err := r.Append(Tuple{StringValue("x")}); err == nil {
		t.Fatal("expected width-mismatch error")
	}
}

func TestSelectNilPredicate(t *testing.T) {
	r := homesRelation(t)
	idx := r.Select(nil)
	if len(idx) != r.Len() {
		t.Fatalf("Select(nil) returned %d rows, want %d", len(idx), r.Len())
	}
	for i, v := range idx {
		if v != i {
			t.Fatalf("Select(nil)[%d] = %d; want row order", i, v)
		}
	}
}

func TestSelectWithPredicates(t *testing.T) {
	r := homesRelation(t)
	tests := []struct {
		name string
		pred Predicate
		want []int
	}{
		{"in-bellevue", NewIn("neighborhood", "Bellevue, WA"), []int{0, 3}},
		{"price-range", NewRange("price", 200000, 260000), []int{0, 1, 4}},
		{"closed-range", NewClosedRange("bedrooms", 3, 4), []int{0, 2, 4}},
		{"conjunction", NewAnd(NewIn("neighborhood", "Bellevue, WA"), NewRange("price", 260000, 300000)), []int{3}},
		{"true", True{}, []int{0, 1, 2, 3, 4}},
		{"empty-and", NewAnd(), []int{0, 1, 2, 3, 4}},
		{"no-match", NewIn("neighborhood", "Kirkland, WA"), []int{}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := r.Select(tc.pred)
			if len(got) != len(tc.want) {
				t.Fatalf("Select = %v; want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("Select = %v; want %v", got, tc.want)
				}
			}
		})
	}
}

func TestPredicateUnknownAttribute(t *testing.T) {
	r := homesRelation(t)
	if n := len(r.Select(NewIn("nope", "x"))); n != 0 {
		t.Errorf("In over unknown attribute matched %d rows", n)
	}
	if n := len(r.Select(NewRange("nope", 0, 1))); n != 0 {
		t.Errorf("Range over unknown attribute matched %d rows", n)
	}
}

func TestPredicateTypeMismatch(t *testing.T) {
	r := homesRelation(t)
	// In over a numeric attribute and Range over a categorical one never match.
	if n := len(r.Select(NewIn("price", "250000"))); n != 0 {
		t.Errorf("In over numeric attribute matched %d rows", n)
	}
	if n := len(r.Select(NewRange("neighborhood", 0, 1e9))); n != 0 {
		t.Errorf("Range over categorical attribute matched %d rows", n)
	}
}

func TestRangeHalfOpenVsClosed(t *testing.T) {
	s := homesSchema(t)
	tup := Tuple{StringValue("Bellevue, WA"), NumberValue(300000), NumberValue(3)}
	if NewRange("price", 200000, 300000).Matches(s, tup) {
		t.Error("half-open range should exclude upper bound")
	}
	if !NewClosedRange("price", 200000, 300000).Matches(s, tup) {
		t.Error("closed range should include upper bound")
	}
}

func TestInOverlaps(t *testing.T) {
	a := NewIn("n", "x", "y")
	b := NewIn("n", "y", "z")
	c := NewIn("n", "w")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b share y; should overlap (symmetric)")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Error("a and c are disjoint; should not overlap")
	}
}

func TestRangeOverlaps(t *testing.T) {
	tests := []struct {
		name string
		a, b *Range
		want bool
	}{
		{"disjoint", NewRange("p", 0, 10), NewRange("p", 20, 30), false},
		{"nested", NewRange("p", 0, 100), NewRange("p", 20, 30), true},
		{"touching-halfopen", NewRange("p", 0, 10), NewRange("p", 10, 20), false},
		{"touching-closed", NewClosedRange("p", 0, 10), NewRange("p", 10, 20), true},
		{"identical", NewRange("p", 5, 9), NewRange("p", 5, 9), true},
		{"point-inside", NewClosedRange("p", 5, 5), NewRange("p", 0, 10), true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.Overlaps(tc.b); got != tc.want {
				t.Errorf("Overlaps = %v; want %v", got, tc.want)
			}
			if got := tc.b.Overlaps(tc.a); got != tc.want {
				t.Errorf("reverse Overlaps = %v; want %v (must be symmetric)", got, tc.want)
			}
		})
	}
}

func TestPredicateStrings(t *testing.T) {
	tests := []struct {
		pred Predicate
		want string
	}{
		{True{}, "TRUE"},
		{NewAnd(), "TRUE"},
		{NewIn("neighborhood", "B", "A"), "neighborhood IN ('A','B')"},
		{NewRange("price", 200000, 300000), "price >= 200000 AND price < 300000"},
		{NewClosedRange("price", 200000, 300000), "price >= 200000 AND price <= 300000"},
		{&Range{Attr: "price", Lo: math.Inf(-1), Hi: 300000}, "price < 300000"},
		{&Range{Attr: "price", Lo: 200000, Hi: math.Inf(1)}, "price >= 200000"},
		{&Range{Attr: "price", Lo: math.Inf(-1), Hi: math.Inf(1)}, "TRUE"},
		{NewAnd(NewIn("n", "x"), NewRange("p", 1, 2)), "n IN ('x') AND p >= 1 AND p < 2"},
	}
	for _, tc := range tests {
		if got := tc.pred.String(); got != tc.want {
			t.Errorf("String() = %q; want %q", got, tc.want)
		}
	}
}

func TestInStringQuotesEmbeddedQuote(t *testing.T) {
	got := NewIn("n", "O'Brien").String()
	want := "n IN ('O''Brien')"
	if got != want {
		t.Errorf("String() = %q; want %q", got, want)
	}
}

func TestNewAndFlattens(t *testing.T) {
	inner := NewAnd(NewIn("a", "x"), True{})
	outer := NewAnd(inner, NewRange("b", 0, 1), nil)
	if len(outer.Preds) != 2 {
		t.Fatalf("flattened conjunction has %d conjuncts; want 2", len(outer.Preds))
	}
}

func TestDistinctStrings(t *testing.T) {
	r := homesRelation(t)
	all := r.Select(nil)
	got, err := r.DistinctStrings("neighborhood", all)
	if err != nil {
		t.Fatalf("DistinctStrings: %v", err)
	}
	want := []string{"Bellevue, WA", "Issaquah, WA", "Redmond, WA", "Seattle, WA"}
	if len(got) != len(want) {
		t.Fatalf("DistinctStrings = %v; want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("DistinctStrings = %v; want %v", got, want)
		}
	}
	if _, err := r.DistinctStrings("price", all); err == nil {
		t.Error("DistinctStrings over numeric attribute should error")
	}
	if _, err := r.DistinctStrings("nope", all); err == nil {
		t.Error("DistinctStrings over missing attribute should error")
	}
}

func TestNumRange(t *testing.T) {
	r := homesRelation(t)
	lo, hi, ok := r.NumRange("price", r.Select(nil))
	if !ok || lo != 205000 || hi != 310000 {
		t.Fatalf("NumRange = %v,%v,%v; want 205000,310000,true", lo, hi, ok)
	}
	if _, _, ok := r.NumRange("price", nil); ok {
		t.Error("NumRange over empty index should report !ok")
	}
	if _, _, ok := r.NumRange("neighborhood", r.Select(nil)); ok {
		t.Error("NumRange over categorical attribute should report !ok")
	}
}

func TestGrow(t *testing.T) {
	r := New("homes", homesSchema(t))
	r.MustAppend(Tuple{StringValue("a"), NumberValue(1), NumberValue(2)})
	r.Grow(100)
	if r.Len() != 1 {
		t.Fatalf("Grow changed Len to %d", r.Len())
	}
	if got := r.Row(0)[0].Str; got != "a" {
		t.Fatalf("Grow lost data: row0 = %q", got)
	}
}
