package relation

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadCSV loads a relation from CSV with a header row. When schema is nil,
// column types are inferred from the data: a column is Numeric iff every
// non-empty cell parses as a float64 (header names become attribute names).
// When schema is given, the header must contain exactly its attributes (in
// any order) and cells are converted per the declared types; a numeric cell
// that fails to parse is an error.
func ReadCSV(name string, r io.Reader, schema *Schema) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = false
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	if len(header) == 0 {
		return nil, fmt.Errorf("relation: empty CSV header")
	}
	for _, h := range header {
		if !validHeaderName(h) {
			return nil, fmt.Errorf("relation: invalid CSV column name %q", h)
		}
	}
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV rows: %w", err)
	}
	if schema == nil {
		schema, err = inferSchema(header, records)
		if err != nil {
			return nil, err
		}
	}
	// Map schema position -> CSV column.
	colOf := make([]int, schema.Len())
	for i := range colOf {
		colOf[i] = -1
	}
	for ci, h := range header {
		if pos, ok := schema.Lookup(h); ok {
			if colOf[pos] != -1 {
				return nil, fmt.Errorf("relation: duplicate CSV column %q", h)
			}
			colOf[pos] = ci
		}
	}
	for i, c := range colOf {
		if c == -1 {
			return nil, fmt.Errorf("relation: CSV is missing attribute %q", schema.Attr(i).Name)
		}
	}
	rel := New(name, schema)
	rel.Grow(len(records))
	for ri, rec := range records {
		tuple := make(Tuple, schema.Len())
		for i := range tuple {
			cell := rec[colOf[i]]
			if schema.Attr(i).Type == Categorical {
				tuple[i] = StringValue(cell)
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("relation: row %d, attribute %q: %q is not numeric",
					ri+1, schema.Attr(i).Name, cell)
			}
			tuple[i] = NumberValue(v)
		}
		rel.MustAppend(tuple)
	}
	return rel, nil
}

// validHeaderName rejects attribute names that cannot survive SQL rendering
// or CSV round-trips (control characters, including the CR/LF sequences
// encoding/csv normalizes inside quoted fields).
func validHeaderName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		if r < 0x20 || r == 0x7f {
			return false
		}
	}
	return true
}

// inferSchema types each column Numeric iff every non-empty cell parses as a
// number; empty columns default to Categorical.
func inferSchema(header []string, records [][]string) (*Schema, error) {
	attrs := make([]Attribute, len(header))
	for ci, h := range header {
		numeric := false
		sawValue := false
		allNumeric := true
		for _, rec := range records {
			if ci >= len(rec) || rec[ci] == "" {
				continue
			}
			sawValue = true
			if _, err := strconv.ParseFloat(rec[ci], 64); err != nil {
				allNumeric = false
				break
			}
		}
		numeric = sawValue && allNumeric
		typ := Categorical
		if numeric {
			typ = Numeric
		}
		attrs[ci] = Attribute{Name: h, Type: typ}
	}
	s, err := NewSchema(attrs...)
	if err != nil {
		return nil, fmt.Errorf("relation: inferring CSV schema: %w", err)
	}
	return s, nil
}

// WriteCSV writes the relation as CSV with a header row, the inverse of
// ReadCSV. Unlike encoding/csv's writer it quotes a record that is a single
// empty field (which would otherwise serialize as a blank line that readers
// skip), so every relation round-trips.
func (r *Relation) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	header := make([]string, r.schema.Len())
	for i := range header {
		header[i] = r.schema.Attr(i).Name
	}
	if err := writeCSVRecord(bw, header); err != nil {
		return fmt.Errorf("relation: writing CSV header: %w", err)
	}
	record := make([]string, r.schema.Len())
	for i := 0; i < r.Len(); i++ {
		row := r.Row(i)
		for j := range record {
			if r.schema.Attr(j).Type == Categorical {
				record[j] = row[j].Str
			} else {
				record[j] = strconv.FormatFloat(row[j].Num, 'f', -1, 64)
			}
		}
		if err := writeCSVRecord(bw, record); err != nil {
			return fmt.Errorf("relation: writing CSV row %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("relation: flushing CSV: %w", err)
	}
	return nil
}

// WriteCSVRecord emits one record in exactly the dialect WriteCSV produces,
// so streaming writers (internal/datagen.StreamCSV) can emit byte-identical
// output without materializing a relation.
func WriteCSVRecord(w *bufio.Writer, fields []string) error {
	return writeCSVRecord(w, fields)
}

// writeCSVRecord emits one RFC-4180 record.
func writeCSVRecord(w *bufio.Writer, fields []string) error {
	for i, f := range fields {
		if i > 0 {
			if err := w.WriteByte(','); err != nil {
				return err
			}
		}
		needQuote := strings.ContainsAny(f, ",\"\r\n") ||
			(len(fields) == 1 && f == "")
		if !needQuote {
			if _, err := w.WriteString(f); err != nil {
				return err
			}
			continue
		}
		if err := w.WriteByte('"'); err != nil {
			return err
		}
		if _, err := w.WriteString(strings.ReplaceAll(f, `"`, `""`)); err != nil {
			return err
		}
		if err := w.WriteByte('"'); err != nil {
			return err
		}
	}
	return w.WriteByte('\n')
}
