package relation

import "sort"

// Zone maps (DESIGN.md §14). Every sealed segment can summarize each
// attribute once — numeric min/max over its span, the sorted distinct value
// set for a categorical — and the conjunct-bitmap builders (vselect.go)
// consult the summary to skip whole segments before touching a word of
// bitmap algebra. Pruning must be *conservative*: a segment is skipped only
// when the summary proves no row in it can match, under exactly the
// comparator semantics of Predicate.Matches (PR3's discipline):
//
//   - NaN values never match a Range (both `v <= Hi` and `v < Hi` are false
//     for NaN), so min/max are computed over non-NaN values only and a
//     segment of pure NaNs is always prunable for ranges;
//   - a NaN upper bound makes `v <= Hi` false for every v, so every segment
//     is prunable; a NaN lower bound makes `!(v < Lo)` true for every v, so
//     it constrains nothing;
//   - ±0 compare equal, so whether min/max recorded -0 or +0 the pruning
//     comparisons give the same verdict the row comparison would;
//   - ±Inf are ordinary ordered values and need no special casing.
//
// Zone maps are built lazily, once per (segment, attribute), from spans
// that are sealed and therefore can never change — they are never
// invalidated, which is the point.

// numZone summarizes one numeric attribute over one sealed segment.
type numZone struct {
	min, max float64 // over non-NaN values; meaningless when !hasVal
	hasVal   bool    // any non-NaN value present
}

// catZone summarizes one categorical attribute over one sealed segment:
// the sorted distinct values of its span. Values (not dictionary codes) so
// the summary survives global-dictionary remaps unchanged.
type catZone struct {
	vals []string
}

// numZone returns the segment's zone map for the attribute key, building it
// from the column span on first use. col must cover the segment.
func (s *segment) numZone(key string, col []float64) *numZone {
	s.mu.Lock()
	defer s.mu.Unlock()
	if z, ok := s.nums[key]; ok {
		return z
	}
	z := &numZone{}
	for _, v := range col[s.lo:s.hi] {
		if v != v { // NaN: excluded from the ordered summary
			continue
		}
		if !z.hasVal {
			z.min, z.max, z.hasVal = v, v, true
			continue
		}
		if v < z.min {
			z.min = v
		}
		if v > z.max {
			z.max = v
		}
	}
	if s.nums == nil {
		s.nums = make(map[string]*numZone)
	}
	s.nums[key] = z
	return z
}

// catZone returns the segment's zone map for the attribute key, building it
// from the dictionary-coded span on first use. col must cover the segment.
func (s *segment) catZone(key string, col *CatColumn) *catZone {
	s.mu.Lock()
	defer s.mu.Unlock()
	if z, ok := s.cats[key]; ok {
		return z
	}
	present := make(map[uint32]struct{}, 16)
	for _, c := range col.Codes[s.lo:s.hi] {
		present[c] = struct{}{}
	}
	vals := make([]string, 0, len(present))
	for c := range present {
		vals = append(vals, col.Dict[c])
	}
	sort.Strings(vals)
	z := &catZone{vals: vals}
	if s.cats == nil {
		s.cats = make(map[string]*catZone)
	}
	s.cats[key] = z
	return z
}

// canMatchRange reports whether any value in the zone can satisfy
// !(v < lo) && (v <= hi | v < hi). Exactly mirrors Range.Matches for
// non-NaN v; NaN values never match, so a segment with no non-NaN value is
// always prunable.
func (z *numZone) canMatchRange(lo, hi float64, hiInc bool) bool {
	if !z.hasVal {
		return false
	}
	if hi != hi { // NaN upper bound: v <= NaN is false for every v
		return false
	}
	if lo == lo && z.max < lo { // NaN lower bound constrains nothing
		return false
	}
	if hiInc {
		if z.min > hi {
			return false
		}
	} else if z.min >= hi {
		return false
	}
	return true
}

// canMatchIn reports whether any of the (sorted) member values occurs in
// the segment.
func (z *catZone) canMatchIn(members []string) bool {
	// Walk the shorter list, binary-search the longer.
	short, long := members, z.vals
	if len(long) < len(short) {
		short, long = long, short
	}
	for _, v := range short {
		i := sort.SearchStrings(long, v)
		if i < len(long) && long[i] == v {
			return true
		}
	}
	return false
}

// span is one half-open scan range of a bitmap build.
type span struct{ lo, hi int }

// zoneSpans plans the scan of rows [lo, hi): sealed segments fully inside
// the window whose zone map proves no match are cut out, the surviving
// ranges are expanded to word (64-row) boundaries within the window so the
// scan kernels' word writes never straddle two spans, and touching spans
// merge. Expansion re-evaluates up to 63 rows of a pruned neighbor — safe,
// because pruning means those rows evaluate to no match — and the kernels
// OR into the bitmap, so re-evaluated rows are idempotent.
//
// canMatch is consulted only for segments fully inside the window
// (partially covered segments are always scanned); a false verdict prunes
// the segment. It also feeds the pruned/scanned counters.
func (r *Relation) zoneSpans(lo, hi int, canMatch func(*segment) bool) []span {
	if lo >= hi {
		return nil
	}
	var out []span
	cur := lo
	if canMatch != nil {
		for _, seg := range r.sealedSegments() {
			if seg.hi <= lo || seg.lo >= hi {
				continue
			}
			if seg.lo < lo || seg.hi > hi {
				continue // partially covered: scan it
			}
			if canMatch(seg) {
				r.seg.zoneScanned.Add(1)
				continue
			}
			r.seg.zonePruned.Add(1)
			if seg.lo > cur {
				out = append(out, span{cur, seg.lo})
			}
			cur = seg.hi
		}
	}
	if cur < hi {
		out = append(out, span{cur, hi})
	}
	// Word-align within [lo, hi) and merge spans that now touch.
	merged := out[:0]
	for _, s := range out {
		s.lo = max(s.lo&^63, lo)
		if up := (s.hi + 63) &^ 63; up < hi {
			s.hi = up
		} else {
			s.hi = hi
		}
		if n := len(merged); n > 0 && s.lo <= merged[n-1].hi {
			if s.hi > merged[n-1].hi {
				merged[n-1].hi = s.hi
			}
			continue
		}
		merged = append(merged, s)
	}
	return merged
}
