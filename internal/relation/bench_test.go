package relation

import (
	"fmt"
	"testing"
)

// BenchmarkBuildColumns measures the columnar projection build: one
// dictionary-encoded categorical column plus two dense numeric columns.
func BenchmarkBuildColumns(b *testing.B) {
	for _, n := range []int{1000, 20000} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			r := relationOfSize(n, 7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.dropColumns()
				if err := r.BuildColumns(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSortByValue measures the pair-sort that backs every numeric
// partitioning: project, pack, pdqsort, unpack.
func BenchmarkSortByValue(b *testing.B) {
	for _, n := range []int{1000, 20000} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			r := relationOfSize(n, 7)
			col, err := r.NumColumn("price")
			if err != nil {
				b.Fatal(err)
			}
			tset := r.Select(nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, _ := SortByValue(col, tset)
				if len(rows) != n {
					b.Fatal("bad sort")
				}
			}
		})
	}
}

// BenchmarkCatColumnLookup measures the dictionary binary search used to
// rank presentation-ordered values into codes.
func BenchmarkCatColumnLookup(b *testing.B) {
	r := relationOfSize(20000, 7)
	col, err := r.CatColumn("neighborhood")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := col.Code("Seattle, WA"); !ok {
			b.Fatal("missing value")
		}
	}
}

// BenchmarkCatCandidates measures the multi-value IN lookup whose sorted
// posting lists are combined by the pairwise merge ladder.
func BenchmarkCatCandidates(b *testing.B) {
	r := relationOfSize(20000, 7)
	if err := r.BuildIndex(); err != nil {
		b.Fatal(err)
	}
	p := NewIn("neighborhood", "Bellevue, WA", "Redmond, WA", "Seattle, WA")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		list, ok := r.indexes().catCandidates(p)
		if !ok || len(list) == 0 {
			b.Fatal("no candidates")
		}
	}
}

// selectBenchPred is the multi-conjunct selection the BENCH_select.json
// record is built around: a categorical IN plus two numeric ranges over the
// 20k-row home-listing shape.
func selectBenchPred() Predicate {
	return NewAnd(
		NewIn("neighborhood", "Seattle, WA", "Bellevue, WA"),
		NewClosedRange("price", 250000, 350000),
		NewClosedRange("bedrooms", 2, 5),
	)
}

// BenchmarkSelectQuery measures Select on an unindexed relation with a
// repeated multi-conjunct predicate (the serving path's steady state).
func BenchmarkSelectQuery(b *testing.B) {
	b.Run("rows=20000/conjuncts=3", func(b *testing.B) {
		r := relationOfSize(20000, 7)
		pred := selectBenchPred()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(r.Select(pred)) == 0 {
				b.Fatal("empty selection")
			}
		}
	})
	b.Run("rows=20000/conjuncts=1", func(b *testing.B) {
		r := relationOfSize(20000, 7)
		pred := NewIn("neighborhood", "Seattle, WA", "Bellevue, WA")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(r.Select(pred)) == 0 {
				b.Fatal("empty selection")
			}
		}
	})
}

// BenchmarkSelectQueryIndexed is BenchmarkSelectQuery over a relation with
// secondary indexes built.
func BenchmarkSelectQueryIndexed(b *testing.B) {
	b.Run("rows=20000/conjuncts=3", func(b *testing.B) {
		r := relationOfSize(20000, 7)
		if err := r.BuildIndex(); err != nil {
			b.Fatal(err)
		}
		pred := selectBenchPred()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(r.Select(pred)) == 0 {
				b.Fatal("empty selection")
			}
		}
	})
}

// BenchmarkSelectQueryCold measures the per-unique-query cost: the conjunct
// bitmap cache is dropped every iteration, so every conjunct is evaluated
// from scratch (columnar projections stay warm, as they do in serving).
func BenchmarkSelectQueryCold(b *testing.B) {
	b.Run("rows=20000/conjuncts=3", func(b *testing.B) {
		r := relationOfSize(20000, 7)
		pred := selectBenchPred()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.dropConjuncts()
			if len(r.Select(pred)) == 0 {
				b.Fatal("empty selection")
			}
		}
	})
}
