package relation

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Predicate is a boolean condition over a tuple. Category labels, query
// selection conditions, and simulated user interests are all predicates.
type Predicate interface {
	// Matches reports whether tuple t (under schema s) satisfies the
	// predicate. Unknown attributes never match.
	Matches(s *Schema, t Tuple) bool
	// String renders the predicate in the SQL-ish form used for category
	// labels and query reconstruction.
	String() string
}

// True is the predicate satisfied by every tuple.
type True struct{}

// Matches always reports true.
func (True) Matches(*Schema, Tuple) bool { return true }

// String renders the constant predicate.
func (True) String() string { return "TRUE" }

// In is the membership predicate `Attr IN {v1, …, vk}` over a categorical
// attribute.
type In struct {
	Attr   string
	Values map[string]struct{}
}

// NewIn builds an In predicate over the given values.
func NewIn(attr string, values ...string) *In {
	m := make(map[string]struct{}, len(values))
	for _, v := range values {
		m[v] = struct{}{}
	}
	return &In{Attr: attr, Values: m}
}

// Matches reports whether t's value on Attr is one of the member values.
func (p *In) Matches(s *Schema, t Tuple) bool {
	i, ok := s.Lookup(p.Attr)
	if !ok || s.Attr(i).Type != Categorical {
		return false
	}
	_, member := p.Values[t[i].Str]
	return member
}

// SortedValues returns the member values in lexicographic order.
func (p *In) SortedValues() []string {
	out := make([]string, 0, len(p.Values))
	for v := range p.Values {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Overlaps reports whether this predicate shares at least one value with
// other, per the paper's overlap definition for categorical attributes.
func (p *In) Overlaps(other *In) bool {
	small, big := p.Values, other.Values
	if len(big) < len(small) {
		small, big = big, small
	}
	for v := range small {
		if _, ok := big[v]; ok {
			return true
		}
	}
	return false
}

// String renders `Attr IN ('a','b')`.
func (p *In) String() string {
	vals := p.SortedValues()
	quoted := make([]string, len(vals))
	for i, v := range vals {
		quoted[i] = "'" + strings.ReplaceAll(v, "'", "''") + "'"
	}
	return fmt.Sprintf("%s IN (%s)", p.Attr, strings.Join(quoted, ","))
}

// Range is the interval predicate `Lo ≤ Attr < Hi` (or ≤ Hi when HiInc) over
// a numeric attribute. Category labels use half-open [Lo,Hi) buckets; query
// conditions parsed from BETWEEN use closed intervals.
type Range struct {
	Attr  string
	Lo    float64 // math.Inf(-1) when unbounded below
	Hi    float64 // math.Inf(+1) when unbounded above
	HiInc bool    // include Hi itself
}

// NewRange builds the half-open range [lo, hi).
func NewRange(attr string, lo, hi float64) *Range {
	return &Range{Attr: attr, Lo: lo, Hi: hi}
}

// NewClosedRange builds the closed range [lo, hi].
func NewClosedRange(attr string, lo, hi float64) *Range {
	return &Range{Attr: attr, Lo: lo, Hi: hi, HiInc: true}
}

// Matches reports whether t's value on Attr lies inside the interval.
func (p *Range) Matches(s *Schema, t Tuple) bool {
	i, ok := s.Lookup(p.Attr)
	if !ok || s.Attr(i).Type != Numeric {
		return false
	}
	v := t[i].Num
	if v < p.Lo {
		return false
	}
	if p.HiInc {
		return v <= p.Hi
	}
	return v < p.Hi
}

// Overlaps reports whether the two intervals intersect, per the paper's
// overlap definition for numeric attributes.
func (p *Range) Overlaps(other *Range) bool {
	pHi, oHi := p.Hi, other.Hi
	// Treat half-open upper bounds as excluding the endpoint.
	if p.Lo > oHi || (p.Lo == oHi && !other.HiInc) {
		return false
	}
	if other.Lo > pHi || (other.Lo == pHi && !p.HiInc) {
		return false
	}
	return true
}

// String renders `Attr >= lo AND Attr < hi`, eliding infinite bounds.
func (p *Range) String() string {
	var parts []string
	if !math.IsInf(p.Lo, -1) {
		parts = append(parts, fmt.Sprintf("%s >= %s", p.Attr, formatNum(p.Lo)))
	}
	if !math.IsInf(p.Hi, 1) {
		op := "<"
		if p.HiInc {
			op = "<="
		}
		parts = append(parts, fmt.Sprintf("%s %s %s", p.Attr, op, formatNum(p.Hi)))
	}
	if len(parts) == 0 {
		return "TRUE"
	}
	return strings.Join(parts, " AND ")
}

// And is the conjunction of predicates; an empty conjunction is TRUE.
type And struct {
	Preds []Predicate
}

// NewAnd builds a conjunction, flattening nested Ands and dropping Trues.
func NewAnd(preds ...Predicate) *And {
	a := &And{}
	for _, p := range preds {
		switch q := p.(type) {
		case nil:
		case True:
			// drop
		case *And:
			a.Preds = append(a.Preds, q.Preds...)
		default:
			a.Preds = append(a.Preds, p)
		}
	}
	return a
}

// Matches reports whether every conjunct matches.
func (a *And) Matches(s *Schema, t Tuple) bool {
	for _, p := range a.Preds {
		if !p.Matches(s, t) {
			return false
		}
	}
	return true
}

// String renders the conjuncts joined by AND.
func (a *And) String() string {
	if len(a.Preds) == 0 {
		return "TRUE"
	}
	parts := make([]string, len(a.Preds))
	for i, p := range a.Preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, " AND ")
}

// formatNum renders a float64 without unnecessary fraction digits, so
// integral domain values print as integers in labels and SQL.
func formatNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
