package relation

import (
	"fmt"
	"slices"
	"sort"
)

// Secondary indexes accelerate Select: a hash index per categorical
// attribute (value → sorted row ids) and a sorted index per numeric
// attribute. Selection picks the most selective indexed conjunct to produce
// a candidate list and verifies the full predicate on the candidates, so
// results are always identical to a full scan. The paper's system sits on a
// commercial DBMS that does the same; this is our substrate's version.

type catIndex map[string][]int

type numIndex struct {
	vals []float64 // sorted
	rows []int     // parallel to vals
	// hasNaN records whether any value is NaN: NaN breaks the total order
	// binary search assumes, so the vectorized range path (vselect.go)
	// skips the index and scans the dense column instead.
	hasNaN bool
}

// indexSet is the immutable bundle of secondary indexes published behind
// Relation.idx. Readers load the whole set once per operation and never
// observe a half-built or half-dropped state; BuildIndex assembles a fresh
// set privately and publishes it with a single atomic store.
//
// n records the row count the set covers. Append no longer drops indexes
// (DESIGN.md §14): a set whose n lags the relation is extended on the next
// indexed read — appended rows merge into copied runs while the sorted
// sealed prefix is reused, never re-sorted — and the successor set is
// published in its place.
type indexSet struct {
	cat map[string]catIndex
	num map[string]*numIndex
	n   int // rows covered by every index in the set
}

// indexes returns the current published index set, or nil when the relation
// is not indexed (never built, or dropped by a mutation).
func (r *Relation) indexes() *indexSet { return r.idx.Load() }

// BuildIndex builds secondary indexes on the named attributes (all
// attributes when none are given), and materializes the columnar
// projections (column.go) for the same attributes so the categorizer's hot
// path never builds them lazily under load. Appending rows afterwards does
// not drop them: indexes extend incrementally over the appended suffix on
// the next indexed read.
func (r *Relation) BuildIndex(attrs ...string) error {
	if err := r.BuildColumns(attrs...); err != nil {
		return err
	}
	if len(attrs) == 0 {
		attrs = make([]string, r.schema.Len())
		for i := range attrs {
			attrs[i] = r.schema.Attr(i).Name
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rows := r.snapshot()
	// Copy-on-write: extend a private clone of the current set, then publish
	// the whole successor. Concurrent readers keep whichever set they loaded.
	// A clone lagging the row count is brought current first, so attributes
	// not being rebuilt keep full coverage under the successor's stamp.
	next := &indexSet{cat: make(map[string]catIndex), num: make(map[string]*numIndex), n: len(rows)}
	if cur := r.indexes(); cur != nil {
		if cur.n < len(rows) {
			cur = extendIndexSet(cur, rows, r.schema)
		}
		for k, v := range cur.cat {
			next.cat[k] = v
		}
		for k, v := range cur.num {
			next.num[k] = v
		}
	}
	for _, attr := range attrs {
		pos, ok := r.schema.Lookup(attr)
		if !ok {
			return fmt.Errorf("relation %s: no attribute %q to index", r.Name, attr)
		}
		key := r.schema.Attr(pos).Name
		if r.schema.Attr(pos).Type == Categorical {
			idx := make(catIndex)
			for i, row := range rows {
				v := row[pos].Str
				idx[v] = append(idx[v], i)
			}
			next.cat[lower(key)] = idx
			continue
		}
		next.num[lower(key)] = rebuildNumIndex(rows, pos)
	}
	r.idx.Store(next)
	return nil
}

// Indexed reports whether the attribute currently has a secondary index.
func (r *Relation) Indexed(attr string) bool {
	idx := r.indexes()
	if idx == nil {
		return false
	}
	key := lower(attr)
	if _, ok := idx.cat[key]; ok {
		return true
	}
	_, ok := idx.num[key]
	return ok
}

// dropIndexes invalidates all secondary indexes. No longer on the Append
// path (stale sets extend instead); retained as the drop-everything
// baseline for the segment benchmarks.
func (r *Relation) dropIndexes() {
	r.idx.Store(nil)
}

// currentIndexes returns the published index set brought current with the
// row count: a set lagging appended rows is extended — sorted runs merged
// with the suffix, sealed prefix reused — and the successor published.
// Returns nil when the relation was never indexed.
func (r *Relation) currentIndexes() *indexSet {
	set := r.indexes()
	if set == nil || set.n >= r.Len() {
		return set
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	set = r.indexes()
	rows := r.snapshot()
	if set == nil || set.n >= len(rows) {
		return set
	}
	next := extendIndexSet(set, rows, r.schema)
	r.idx.Store(next)
	return next
}

// extendIndexSet returns a successor of set covering all of rows. Shared
// structure is reused copy-on-write: categorical value lists gaining rows
// are copied-then-appended (row ids grow monotonically, so order is
// preserved); numeric indexes sort only the suffix and merge it with the
// existing run. Holders of the old set are unaffected.
func extendIndexSet(set *indexSet, rows []Tuple, schema *Schema) *indexSet {
	n0, n := set.n, len(rows)
	next := &indexSet{
		cat: make(map[string]catIndex, len(set.cat)),
		num: make(map[string]*numIndex, len(set.num)),
		n:   n,
	}
	for key, old := range set.cat {
		pos, ok := schema.Lookup(key)
		if !ok {
			next.cat[key] = old
			continue
		}
		idx := make(catIndex, len(old)+8)
		for v, l := range old {
			idx[v] = l
		}
		touched := make(map[string]bool, 8)
		for i := n0; i < n; i++ {
			v := rows[i][pos].Str
			if !touched[v] {
				// First touch in this extension: copy the shared list before
				// appending to it.
				l := idx[v]
				nl := make([]int, len(l), len(l)+(n-n0)/4+4)
				copy(nl, l)
				idx[v] = nl
				touched[v] = true
			}
			idx[v] = append(idx[v], i)
		}
		next.cat[key] = idx
	}
	for key, old := range set.num {
		pos, ok := schema.Lookup(key)
		if !ok {
			next.num[key] = old
			continue
		}
		next.num[key] = extendNumIndex(old, rows, pos, n0)
	}
	return next
}

// extendNumIndex merges the sorted (value, row) suffix into an existing
// sorted run. The merge prefers the existing run on equal values, so ties
// stay in ascending row order — the same placement the full stable rebuild
// produces. A NaN anywhere falls back to the full rebuild: NaN breaks the
// total order a merge assumes, and a hasNaN index is skipped by the range
// paths regardless.
func extendNumIndex(old *numIndex, rows []Tuple, pos, n0 int) *numIndex {
	n := len(rows)
	suffixNaN := false
	pairs := make([]valRow, n-n0)
	for j := range pairs {
		v := rows[n0+j][pos].Num
		if v != v {
			suffixNaN = true
			break
		}
		pairs[j] = valRow{v: v, row: int32(n0 + j)}
	}
	if old.hasNaN || suffixNaN || n > int(int32max) {
		return rebuildNumIndex(rows, pos)
	}
	slices.SortStableFunc(pairs, func(a, b valRow) int {
		switch {
		case a.v < b.v:
			return -1
		case b.v < a.v:
			return 1
		default:
			return 0
		}
	})
	idx := &numIndex{vals: make([]float64, n), rows: make([]int, n)}
	i, j, k := 0, 0, 0
	for i < len(old.vals) && j < len(pairs) {
		if old.vals[i] <= pairs[j].v {
			idx.vals[k], idx.rows[k] = old.vals[i], old.rows[i]
			i++
		} else {
			idx.vals[k], idx.rows[k] = pairs[j].v, int(pairs[j].row)
			j++
		}
		k++
	}
	for ; i < len(old.vals); i, k = i+1, k+1 {
		idx.vals[k], idx.rows[k] = old.vals[i], old.rows[i]
	}
	for ; j < len(pairs); j, k = j+1, k+1 {
		idx.vals[k], idx.rows[k] = pairs[j].v, int(pairs[j].row)
	}
	return idx
}

const int32max = 1<<31 - 1

// rebuildNumIndex is the from-scratch numeric index build BuildIndex uses.
func rebuildNumIndex(rows []Tuple, pos int) *numIndex {
	idx := &numIndex{vals: make([]float64, len(rows)), rows: make([]int, len(rows))}
	order := make([]int, len(rows))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return rows[order[a]][pos].Num < rows[order[b]][pos].Num
	})
	for k, i := range order {
		v := rows[i][pos].Num
		idx.vals[k] = v
		idx.rows[k] = i
		if v != v {
			idx.hasNaN = true
		}
	}
	return idx
}

// candidates returns a sorted row-id list guaranteed to contain every row
// matching pred, using an index on one of pred's conjuncts, or ok=false
// when no indexed conjunct applies. The index set is loaded once so every
// conjunct is answered against the same snapshot; a set lagging appended
// rows is extended first, so candidates always cover the current rows.
func (r *Relation) candidates(pred Predicate) (list []int, ok bool) {
	set := r.currentIndexes()
	if set == nil {
		return nil, false
	}
	best, bestLen := []int(nil), -1
	consider := func(p Predicate) {
		var l []int
		var usable bool
		switch q := p.(type) {
		case *In:
			l, usable = set.catCandidates(q)
		case *Range:
			l, usable = set.numCandidates(q)
		}
		if usable && (bestLen == -1 || len(l) < bestLen) {
			best, bestLen = l, len(l)
		}
	}
	switch p := pred.(type) {
	case *And:
		for _, c := range p.Preds {
			consider(c)
		}
	default:
		consider(pred)
	}
	if bestLen == -1 {
		return nil, false
	}
	return best, true
}

func (set *indexSet) catCandidates(p *In) ([]int, bool) {
	idx, ok := set.cat[lower(p.Attr)]
	if !ok {
		return nil, false
	}
	if len(p.Values) == 1 {
		for v := range p.Values {
			return idx[v], true
		}
	}
	var lists [][]int
	for v := range p.Values {
		if l := idx[v]; len(l) > 0 {
			lists = append(lists, l)
		}
	}
	// Value lists are disjoint (one value per row) and individually sorted,
	// so a pairwise merge ladder yields the sorted union in O(n log k)
	// without re-sorting.
	return mergeSorted(lists), true
}

// mergeSorted merges sorted, disjoint int lists bottom-up, pairwise.
func mergeSorted(lists [][]int) []int {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		out := make([]int, len(lists[0]))
		copy(out, lists[0])
		return out
	}
	for len(lists) > 1 {
		next := lists[:0]
		for i := 0; i+1 < len(lists); i += 2 {
			next = append(next, merge2(lists[i], lists[i+1]))
		}
		if len(lists)%2 == 1 {
			next = append(next, lists[len(lists)-1])
		}
		lists = next
	}
	return lists[0]
}

// merge2 merges two sorted int lists into a new sorted list.
func merge2(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func (set *indexSet) numCandidates(p *Range) ([]int, bool) {
	idx, ok := set.num[lower(p.Attr)]
	if !ok {
		return nil, false
	}
	lo := sort.SearchFloat64s(idx.vals, p.Lo)
	var hi int
	if p.HiInc {
		hi = sort.Search(len(idx.vals), func(i int) bool { return idx.vals[i] > p.Hi })
	} else {
		hi = sort.SearchFloat64s(idx.vals, p.Hi)
	}
	if hi < lo {
		hi = lo
	}
	out := make([]int, hi-lo)
	copy(out, idx.rows[lo:hi])
	sort.Ints(out)
	return out, true
}

func lower(s string) string {
	b := []byte(s)
	changed := false
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
			changed = true
		}
	}
	if !changed {
		return s
	}
	return string(b)
}
