package relation

import (
	"bytes"
	"strings"
	"testing"
)

const sampleCSV = `neighborhood,price,bedrooms
"Bellevue, WA",250000,3
"Seattle, WA",310000,4
"Redmond, WA",220000,2
`

func TestReadCSVInferred(t *testing.T) {
	r, err := ReadCSV("homes", strings.NewReader(sampleCSV), nil)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	if typ, _ := r.Schema().TypeOf("neighborhood"); typ != Categorical {
		t.Error("neighborhood should infer categorical")
	}
	if typ, _ := r.Schema().TypeOf("price"); typ != Numeric {
		t.Error("price should infer numeric")
	}
	if got := r.Row(0)[0].Str; got != "Bellevue, WA" {
		t.Errorf("row0 neighborhood = %q", got)
	}
	if got := r.Row(1)[1].Num; got != 310000 {
		t.Errorf("row1 price = %v", got)
	}
}

func TestReadCSVExplicitSchema(t *testing.T) {
	// Force price to be categorical: cells stay strings.
	schema := MustSchema(
		Attribute{Name: "price", Type: Categorical},
		Attribute{Name: "neighborhood", Type: Categorical},
		Attribute{Name: "bedrooms", Type: Numeric},
	)
	r, err := ReadCSV("homes", strings.NewReader(sampleCSV), schema)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	// Schema order differs from CSV order; mapping is by name.
	if got := r.Row(0)[0].Str; got != "250000" {
		t.Errorf("price cell = %q; want string \"250000\"", got)
	}
	if got := r.Row(0)[1].Str; got != "Bellevue, WA" {
		t.Errorf("neighborhood cell = %q", got)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("x", strings.NewReader(""), nil); err == nil {
		t.Error("empty input should error")
	}
	schema := MustSchema(Attribute{Name: "missing", Type: Numeric})
	if _, err := ReadCSV("x", strings.NewReader(sampleCSV), schema); err == nil {
		t.Error("missing attribute should error")
	}
	bad := "a,b\n1,notnum\n"
	schemaNum := MustSchema(
		Attribute{Name: "a", Type: Numeric},
		Attribute{Name: "b", Type: Numeric},
	)
	if _, err := ReadCSV("x", strings.NewReader(bad), schemaNum); err == nil {
		t.Error("non-numeric cell under numeric schema should error")
	}
	dup := "a,a\n1,2\n"
	if _, err := ReadCSV("x", strings.NewReader(dup), nil); err == nil {
		t.Error("duplicate columns should error")
	}
	ragged := "a,b\n1\n"
	if _, err := ReadCSV("x", strings.NewReader(ragged), nil); err == nil {
		t.Error("ragged CSV should error")
	}
}

func TestReadCSVMixedColumnFallsBackToCategorical(t *testing.T) {
	src := "col\n1\ntwo\n3\n"
	r, err := ReadCSV("x", strings.NewReader(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	if typ, _ := r.Schema().TypeOf("col"); typ != Categorical {
		t.Error("mixed column must infer categorical")
	}
}

func TestReadCSVEmptyColumnCategorical(t *testing.T) {
	src := "a,b\n,1\n,2\n"
	r, err := ReadCSV("x", strings.NewReader(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	if typ, _ := r.Schema().TypeOf("a"); typ != Categorical {
		t.Error("all-empty column must default to categorical")
	}
	if typ, _ := r.Schema().TypeOf("b"); typ != Numeric {
		t.Error("numeric column mis-inferred")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig, err := ReadCSV("homes", strings.NewReader(sampleCSV), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV("homes", &buf, orig.Schema())
	if err != nil {
		t.Fatalf("re-read: %v", err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("round-trip lost rows: %d vs %d", back.Len(), orig.Len())
	}
	for i := 0; i < back.Len(); i++ {
		for j := range back.Row(i) {
			if back.Row(i)[j] != orig.Row(i)[j] {
				t.Fatalf("row %d col %d: %v vs %v", i, j, back.Row(i)[j], orig.Row(i)[j])
			}
		}
	}
}

func TestWriteCSVPropagatesError(t *testing.T) {
	r, _ := ReadCSV("homes", strings.NewReader(sampleCSV), nil)
	if err := r.WriteCSV(&failingWriter{}); err == nil {
		t.Fatal("write error not propagated")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) {
	return 0, errWriteFailed
}

var errWriteFailed = &csvWriteError{}

type csvWriteError struct{}

func (*csvWriteError) Error() string { return "write failed" }
