// Package relation implements a small typed, in-memory relational substrate:
// schemas with categorical and numeric attributes, tuples, relations, and
// selection evaluation. It is the storage and execution layer underneath the
// query-result categorizer: the categorizer consumes a Relation holding the
// result set R of an SPJ query and partitions it with label predicates.
package relation

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Type classifies an attribute's domain. The categorizer treats the two
// kinds differently: categorical attributes are partitioned into
// single-value categories, numeric attributes into ranges.
type Type int

const (
	// Categorical attributes hold string values from a discrete domain.
	Categorical Type = iota
	// Numeric attributes hold float64 values from an ordered domain.
	Numeric
)

// String returns "categorical" or "numeric".
func (t Type) String() string {
	switch t {
	case Categorical:
		return "categorical"
	case Numeric:
		return "numeric"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Attribute describes one column of a relation.
type Attribute struct {
	Name string
	Type Type
}

// Schema is an ordered list of attributes with name-based lookup.
type Schema struct {
	attrs []Attribute
	index map[string]int // lower-cased name -> position
}

// NewSchema builds a schema from the given attributes. Attribute names are
// case-insensitive and must be unique.
func NewSchema(attrs ...Attribute) (*Schema, error) {
	s := &Schema{
		attrs: make([]Attribute, len(attrs)),
		index: make(map[string]int, len(attrs)),
	}
	copy(s.attrs, attrs)
	for i, a := range attrs {
		key := strings.ToLower(a.Name)
		if key == "" {
			return nil, fmt.Errorf("relation: attribute %d has empty name", i)
		}
		if _, dup := s.index[key]; dup {
			return nil, fmt.Errorf("relation: duplicate attribute %q", a.Name)
		}
		s.index[key] = i
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error. Intended for tests and
// static schemas.
func MustSchema(attrs ...Attribute) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.attrs) }

// Attr returns the attribute at position i.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attribute {
	out := make([]Attribute, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Lookup returns the position of the named attribute (case-insensitive) and
// whether it exists.
func (s *Schema) Lookup(name string) (int, bool) {
	i, ok := s.index[strings.ToLower(name)]
	return i, ok
}

// TypeOf returns the type of the named attribute. The second result is false
// if the attribute does not exist.
func (s *Schema) TypeOf(name string) (Type, bool) {
	i, ok := s.Lookup(name)
	if !ok {
		return 0, false
	}
	return s.attrs[i].Type, true
}

// Value is a single cell: either a categorical string or a numeric float64,
// according to the attribute's declared type. The zero Value is a
// categorical empty string.
type Value struct {
	Str string
	Num float64
}

// StringValue makes a categorical value.
func StringValue(s string) Value { return Value{Str: s} }

// NumberValue makes a numeric value.
func NumberValue(n float64) Value { return Value{Num: n} }

// Tuple is one row, with cells positionally aligned to a Schema.
type Tuple []Value

// Relation is an in-memory table: a schema plus rows. Rows are stored by
// value; tuple identity within a relation is the row index, which the
// categorizer uses to keep tuple-sets as index slices.
//
// Concurrency: readers never block. The row store is published RCU-style —
// an immutable slice header behind an atomic pointer that every read
// operation loads once — and writers (Append, Grow, BuildIndex) serialize on
// an internal mutex, mutate a private copy or the spare capacity beyond the
// published length, and publish with one atomic store. Readers racing a
// writer keep whichever snapshot they loaded; row indices obtained from an
// older snapshot stay valid against newer ones because rows are only ever
// appended.
type Relation struct {
	Name   string
	schema *Schema

	// mu serializes writers; readers go through rows.Load() only.
	mu   sync.Mutex
	rows atomic.Pointer[[]Tuple]

	// Secondary indexes (see index.go), published as one immutable set
	// behind an atomic pointer; nil means "not indexed".
	idx atomic.Pointer[indexSet]

	// Cached columnar projections (see column.go); maintained incrementally
	// across Appends — sealed spans are never rebuilt.
	cols columnCache

	// Segmented-storage state (see segment.go): the sealed-segment list and
	// the storage counters behind healthz's "storage" block.
	seg segState

	// Vectorized selection state (see vselect.go): the bounded
	// conjunct-bitmap cache and the selection counters.
	vsel vselState

	// dataGen counts mutations; every Append increments it. Derived
	// artifacts (conjunct bitmaps, memoized trees) are stamped with the
	// generation they were built against.
	dataGen atomic.Uint64
}

// New creates an empty relation with the given name and schema.
func New(name string, schema *Schema) *Relation {
	return &Relation{Name: name, schema: schema}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// snapshot returns the current immutable row slice. One load per read
// operation: a reader works against a consistent row set even while a
// writer publishes a successor.
func (r *Relation) snapshot() []Tuple {
	if p := r.rows.Load(); p != nil {
		return *p
	}
	return nil
}

// Len returns the number of rows.
func (r *Relation) Len() int { return len(r.snapshot()) }

// Row returns the i-th tuple. The returned slice must not be modified.
func (r *Relation) Row(i int) Tuple { return r.snapshot()[i] }

// Append adds a row. It returns an error if the tuple width does not match
// the schema. Append is safe to call concurrently with readers (Select,
// Categorize, the column builders): the new row lands in spare capacity
// beyond the published length — invisible to holders of the old snapshot —
// and then a new slice header is published atomically.
//
// Append only touches the active tail of the segmented store (segment.go):
// it bumps the data generation and seals any segment spans the tail now
// covers. Nothing derived is invalidated — columnar projections, cached
// conjunct bitmaps, and secondary indexes all extend over just the appended
// rows on their next read (column.go, vselect.go, index.go), so per-row
// maintenance cost is independent of the total row count.
func (r *Relation) Append(t Tuple) error {
	if len(t) != r.schema.Len() {
		return fmt.Errorf("relation %s: tuple has %d cells, schema has %d", r.Name, len(t), r.schema.Len())
	}
	r.mu.Lock()
	rows := append(r.snapshot(), t)
	r.rows.Store(&rows)
	r.dataGen.Add(1)
	prevHi := r.sealedRows()
	r.maybeSeal(len(rows))
	newHi := r.sealedRows()
	hook := r.seg.sealHook
	r.mu.Unlock()
	if hook != nil && newHi > prevHi {
		// Outside the writer mutex: the span is already sealed and
		// immutable, so the hook may read rows [prevHi, newHi) freely —
		// the durable store spills them to disk from here.
		hook(prevHi, newHi)
	}
	return nil
}

// MustAppend is Append but panics on error; for tests and generators whose
// width is statically correct.
func (r *Relation) MustAppend(t Tuple) {
	if err := r.Append(t); err != nil {
		panic(err)
	}
}

// Grow pre-allocates capacity for n additional rows.
func (r *Relation) Grow(n int) {
	r.mu.Lock()
	rows := r.snapshot()
	if need := len(rows) + n; need > cap(rows) {
		grown := make([]Tuple, len(rows), need)
		copy(grown, rows)
		r.rows.Store(&grown)
	}
	r.mu.Unlock()
}

// Select returns the indices of all rows satisfying pred, in row order.
// A nil predicate selects every row; that identity list is cached with the
// projections and shared across calls — callers must not modify it.
//
// Non-nil predicates evaluate through the vectorized bitmap engine
// (vselect.go) when every conjunct is a supported In/Range shape, and fall
// back to the row-wise scan otherwise; the result is identical either way.
func (r *Relation) Select(pred Predicate) []int {
	if pred == nil {
		return r.identityRows()
	}
	//lint:ignore hottime one clock read per Select (not per row), amortized over the whole scan; feeds SelectStats.SelectNanos in healthz
	start := time.Now()
	r.vsel.selects.Add(1)
	//lint:ignore hottime paired with the start read above; deliberate one-shot instrumentation
	defer func() { r.vsel.nanos.Add(uint64(time.Since(start))) }()
	if out, ok := r.vectorSelect(pred); ok {
		r.vsel.vectorized.Add(1)
		return out
	}
	r.vsel.fallback.Add(1)
	return r.scanSelect(pred)
}

// scanSelect is the row-wise evaluation path: when a secondary index covers
// one of the predicate's conjuncts, the scan is restricted to the index's
// candidates; otherwise every tuple is tested through Predicate.Matches.
func (r *Relation) scanSelect(pred Predicate) []int {
	rows := r.snapshot()
	if cands, ok := r.candidates(pred); ok {
		out := make([]int, 0, len(cands))
		for _, i := range cands {
			if i >= len(rows) {
				// The index extension raced an Append past our snapshot;
				// candidates are sorted, so everything after is newer too.
				break
			}
			if pred.Matches(r.schema, rows[i]) {
				out = append(out, i)
			}
		}
		return out
	}
	out := make([]int, 0, len(rows)/4+1)
	for i, t := range rows {
		if pred.Matches(r.schema, t) {
			out = append(out, i)
		}
	}
	return out
}

// DistinctStrings returns the distinct categorical values of attribute attr
// among the rows named by idx, sorted lexicographically. It returns an error
// if attr is missing or not categorical.
//
// When the attribute's dictionary-coded projection is already built, the
// distinct set is computed as code presence over the sorted value table —
// no string hashing, and the dictionary order supplies the sort for free.
// Without a built column the raw rows are hashed as before (building a
// whole-relation projection just to answer a small idx would cost more).
func (r *Relation) DistinctStrings(attr string, idx []int) ([]string, error) {
	pos, ok := r.schema.Lookup(attr)
	if !ok {
		return nil, fmt.Errorf("relation %s: no attribute %q", r.Name, attr)
	}
	if r.schema.Attr(pos).Type != Categorical {
		return nil, fmt.Errorf("relation %s: attribute %q is not categorical", r.Name, attr)
	}
	if col := r.catColumnIfBuilt(pos); col != nil {
		present := make([]bool, len(col.Dict))
		n := 0
		for _, i := range idx {
			if c := col.Codes[i]; !present[c] {
				present[c] = true
				n++
			}
		}
		out := make([]string, 0, n)
		for code, p := range present {
			if p {
				out = append(out, col.Dict[code]) // Dict is sorted ascending
			}
		}
		return out, nil
	}
	rows := r.snapshot()
	seen := make(map[string]struct{})
	for _, i := range idx {
		seen[rows[i][pos].Str] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out, nil
}

// NumRange returns the min and max numeric value of attribute attr among the
// rows named by idx. ok is false when idx is empty or attr is not numeric.
func (r *Relation) NumRange(attr string, idx []int) (lo, hi float64, ok bool) {
	pos, found := r.schema.Lookup(attr)
	if !found || r.schema.Attr(pos).Type != Numeric || len(idx) == 0 {
		return 0, 0, false
	}
	rows := r.snapshot()
	lo = rows[idx[0]][pos].Num
	hi = lo
	for _, i := range idx[1:] {
		v := rows[i][pos].Num
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi, true
}
