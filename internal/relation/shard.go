package relation

// Sharding. A Shard is an immutable view of a contiguous span of a
// Relation's rows — no data is copied. Shards exist so the categorizer can
// fan per-node counting work out across GOMAXPROCS workers and merge the
// per-shard results exactly (the partition counts and cost sums it computes
// are associative; see internal/category/shard.go and DESIGN.md §12).
//
// Contiguous spans rather than hash partitions keep every shared artifact
// reusable as a plain subslice: the dictionary codes of a CatColumn, the
// dense values of a NumColumn, and a sorted row list all restrict to a shard
// by slicing [Lo, Hi). Conjunct bitmaps and the bounded bitmap cache stay on
// the parent relation — Shard.Select runs the parent's vectorized engine
// once and slices the (sorted) result to the span, so shards share cache
// hits instead of each paying a build.
//
// Shards are snapshots in the same sense as the RCU row store: a shard set
// taken before an Append keeps describing the rows it was taken over.

// Shard is a view of rows [Lo, Hi) of a relation.
type Shard struct {
	rel *Relation
	Lo  int // first row of the span
	Hi  int // one past the last row of the span
}

// Shards splits the relation's current rows into n contiguous spans of
// near-equal size (the first len%n spans get one extra row). n is clamped to
// at least 1; n larger than the row count yields empty trailing shards,
// which are valid views selecting nothing.
//
// At segment scale — every shard spanning at least alignMinSegments sealed
// segments — the near-equal cuts snap to segment boundaries, so each shard
// reads whole segment-local column pages and zone-map spans with zero
// re-slicing. Each cut moves at most half a segment, so a shard's size
// skews by at most one segment — a ≤ 1/alignMinSegments imbalance; below
// that scale the historical near-equal split is kept unchanged (pinned by
// TestShardSpans).
func (r *Relation) Shards(n int) []Shard {
	if n < 1 {
		n = 1
	}
	total := r.Len()
	segRows := r.segmentRows()
	align := n > 1 && segRows > 0 && total/n >= segRows*alignMinSegments
	out := make([]Shard, n)
	lo := 0
	for i := 0; i < n; i++ {
		hi := lo + total/n
		if i < total%n {
			hi++
		}
		if align && i < n-1 {
			// Snap to the nearest segment boundary, staying monotone and
			// inside [lo, total].
			hi = (hi + segRows/2) / segRows * segRows
			hi = max(min(hi, total), lo)
		}
		out[i] = Shard{rel: r, Lo: lo, Hi: hi}
		lo = hi
	}
	out[n-1].Hi = total
	return out
}

// Relation returns the parent relation the shard views.
func (s Shard) Relation() *Relation { return s.rel }

// Len returns the number of rows in the span.
func (s Shard) Len() int { return s.Hi - s.Lo }

// Codes restricts a parent CatColumn's dictionary codes to the span. The
// returned slice shares the parent's backing array and dictionary: code c
// means the same value in every shard.
func (s Shard) Codes(col *CatColumn) []uint32 { return col.Codes[s.Lo:s.Hi:s.Hi] }

// NumSpan restricts a parent NumColumn to the span.
func (s Shard) NumSpan(col []float64) []float64 { return col[s.Lo:s.Hi:s.Hi] }

// Select returns the indices of the span's rows satisfying pred, in row
// order, numbered in the parent relation's row space. The predicate is
// evaluated once by the parent's selection engine (vectorized bitmaps,
// conjunct cache, secondary indexes all apply); the sorted result is then
// cut to [Lo, Hi), so k shards selecting the same predicate cost one
// evaluation plus k binary searches — and their concatenation, shard by
// shard, is exactly the parent's Select result.
func (s Shard) Select(pred Predicate) []int {
	all := s.rel.Select(pred)
	return cutSorted(all, s.Lo, s.Hi)
}

// cutSorted returns the subslice of the sorted list covering [lo, hi).
func cutSorted(sorted []int, lo, hi int) []int {
	a := searchInts(sorted, lo)
	b := searchInts(sorted, hi)
	return sorted[a:b:b]
}

func searchInts(s []int, v int) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
