package relation

import (
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"
)

// selectReference is the trusted oracle: the plain tuple-at-a-time scan with
// no index, no columns, no bitmaps.
func selectReference(r *Relation, pred Predicate) []int {
	out := []int{}
	for i := 0; i < r.Len(); i++ {
		if pred.Matches(r.Schema(), r.Row(i)) {
			out = append(out, i)
		}
	}
	return out
}

func sameRows(t *testing.T, got, want []int, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d rows, want %d\ngot:  %v\nwant: %v", what, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d = %d, want %d", what, i, got[i], want[i])
		}
	}
}

func TestBitmapBasics(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 130} {
		b := NewBitmap(n)
		if b.Count() != 0 || b.Len() != n {
			t.Fatalf("n=%d: fresh bitmap count=%d len=%d", n, b.Count(), b.Len())
		}
		b.SetAll()
		if b.Count() != n {
			t.Fatalf("n=%d: SetAll count=%d", n, b.Count())
		}
		rows := b.Rows()
		if len(rows) != n {
			t.Fatalf("n=%d: Rows len=%d", n, len(rows))
		}
		for i, v := range rows {
			if v != i {
				t.Fatalf("n=%d: Rows[%d]=%d", n, i, v)
			}
		}
	}
	b := NewBitmap(200)
	set := []int{0, 1, 63, 64, 127, 128, 199}
	for _, i := range set {
		b.Set(i)
	}
	for _, i := range set {
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Get(2) || b.Get(150) {
		t.Fatal("unset bit reads as set")
	}
	if got := b.Rows(); !reflect.DeepEqual(got, set) {
		t.Fatalf("Rows = %v, want %v", got, set)
	}
	o := NewBitmap(200)
	o.Set(63)
	o.Set(64)
	o.Set(100)
	c := b.Clone()
	if n := c.And(o); n != 2 {
		t.Fatalf("And count = %d, want 2", n)
	}
	if got := c.Rows(); !reflect.DeepEqual(got, []int{63, 64}) {
		t.Fatalf("And rows = %v", got)
	}
	c2 := b.Clone()
	if n := c2.AndNot(o); n != 5 {
		t.Fatalf("AndNot count = %d, want 5", n)
	}
	if got := c2.Rows(); !reflect.DeepEqual(got, []int{0, 1, 127, 128, 199}) {
		t.Fatalf("AndNot rows = %v", got)
	}
	// Clone independence.
	if b.Count() != 7 {
		t.Fatalf("source bitmap mutated by clone ops: count=%d", b.Count())
	}
}

// TestVectorSelectMatchesReference drives the vectorized engine across the
// supported conjunct shapes — with and without secondary indexes — and
// checks exact row-list equality with the naive scan, twice per predicate so
// the warm (conjunct-cache hit) path is verified too.
func TestVectorSelectMatchesReference(t *testing.T) {
	for _, indexed := range []bool{false, true} {
		r := relationOfSize(700, 11)
		if indexed {
			if err := r.BuildIndex(); err != nil {
				t.Fatal(err)
			}
		}
		preds := []Predicate{
			NewIn("neighborhood", "Seattle, WA"),
			NewIn("neighborhood", "Seattle, WA", "Bellevue, WA", "Nowhere"),
			NewIn("NEIGHBORHOOD", "Issaquah, WA"), // case-insensitive attr
			NewIn("neighborhood"),                 // empty IN list
			NewIn("missing", "x"),                 // unknown attribute
			NewIn("price", "200000"),              // type mismatch
			NewRange("price", 210000, 300000),
			NewClosedRange("price", 210000, 300000),
			NewRange("price", math.Inf(-1), 250000),
			NewClosedRange("price", 250000, math.Inf(1)),
			NewClosedRange("price", 300000, 200000), // empty interval
			NewClosedRange("bedrooms", 2, 4),
			NewRange("missing", 0, 1),
			NewRange("neighborhood", 0, 1), // type mismatch
			NewAnd(NewIn("neighborhood", "Seattle, WA", "Redmond, WA"), NewClosedRange("price", 220000, 340000)),
			NewAnd(NewIn("neighborhood", "Seattle, WA"), NewClosedRange("price", 220000, 340000), NewClosedRange("bedrooms", 1, 3)),
			NewAnd(), // empty conjunction = TRUE
			NewAnd(True{}, NewClosedRange("bedrooms", 2, 2)),
			NewAnd(NewRange("price", 200000, 260000), NewRange("price", 240000, 320000)), // same attr twice
		}
		for _, pred := range preds {
			want := selectReference(r, pred)
			for pass := 0; pass < 2; pass++ {
				got, ok := r.vectorSelect(pred)
				if !ok {
					t.Fatalf("indexed=%v: vectorSelect rejected supported predicate %v", indexed, pred)
				}
				sameRows(t, got, want, pred.String())
				sameRows(t, r.Select(pred), want, "Select: "+pred.String())
			}
		}
		// True alone goes through Select's nil-free path too.
		sameRows(t, r.Select(True{}), selectReference(r, True{}), "TRUE")
	}
}

// TestVectorSelectFallback pins the fallback rule: a predicate kind the
// engine does not know must be rejected and answered by the row-wise scan.
type oddPred struct{}

func (oddPred) Matches(s *Schema, t Tuple) bool { return false }
func (oddPred) String() string                  { return "ODD" }

func TestVectorSelectFallback(t *testing.T) {
	r := relationOfSize(50, 3)
	if _, ok := r.vectorSelect(oddPred{}); ok {
		t.Fatal("vectorSelect accepted an unknown predicate kind")
	}
	if _, ok := r.vectorSelect(NewAnd(NewIn("neighborhood", "Seattle, WA"), oddPred{})); ok {
		t.Fatal("vectorSelect accepted a conjunction containing an unknown kind")
	}
	before := r.SelectStats().Fallback
	if got := r.Select(oddPred{}); len(got) != 0 {
		t.Fatalf("fallback select = %v", got)
	}
	if after := r.SelectStats().Fallback; after != before+1 {
		t.Fatalf("fallback counter %d -> %d", before, after)
	}
}

// TestConjunctCacheHitMissEviction exercises the bounded LRU: repeated
// conjuncts hit, distinct conjuncts past the cap evict coldest-first, and
// the counters track it all.
func TestConjunctCacheHitMissEviction(t *testing.T) {
	r := relationOfSize(300, 5)
	pred := NewAnd(NewIn("neighborhood", "Seattle, WA"), NewClosedRange("price", 210000, 320000))
	want := selectReference(r, pred)

	sameRows(t, r.Select(pred), want, "cold")
	s := r.SelectStats()
	if s.ConjunctMisses != 2 || s.ConjunctHits != 0 || s.ConjunctEntries != 2 {
		t.Fatalf("after cold select: %+v", s)
	}
	sameRows(t, r.Select(pred), want, "warm")
	s = r.SelectStats()
	if s.ConjunctHits != 2 || s.ConjunctMisses != 2 {
		t.Fatalf("after warm select: %+v", s)
	}
	// A spelling-variant of the same conjuncts must hit, not miss: the cache
	// keys on canonical signatures.
	variant := NewAnd(NewClosedRange("PRICE", 210000, 320000), NewIn("NeighborHood", "Seattle, WA", "Seattle, WA"))
	sameRows(t, r.Select(variant), want, "variant")
	s = r.SelectStats()
	if s.ConjunctHits != 4 || s.ConjunctMisses != 2 {
		t.Fatalf("spelling variant missed the cache: %+v", s)
	}

	// Flood with distinct range conjuncts to exceed the cap.
	for i := 0; i <= maxConjunctBitmaps; i++ {
		r.Select(NewClosedRange("price", float64(i), float64(i+1)))
	}
	s = r.SelectStats()
	if s.ConjunctEntries != maxConjunctBitmaps {
		t.Fatalf("cache occupancy %d, want cap %d", s.ConjunctEntries, maxConjunctBitmaps)
	}
	// The original conjuncts were the coldest; they must have been evicted,
	// so re-selecting misses and recomputes — and still answers correctly.
	missesBefore := s.ConjunctMisses
	sameRows(t, r.Select(pred), want, "post-eviction")
	if s = r.SelectStats(); s.ConjunctMisses != missesBefore+2 {
		t.Fatalf("evicted conjuncts did not miss: %+v", s)
	}
}

// TestAppendExtendsEverything is the incremental-maintenance regression
// test (DESIGN.md §14): Append must bump the data generation but must NOT
// drop projections, indexes, the identity list, or cached conjunct bitmaps
// — every derived artifact extends over just the appended rows on its next
// read, and results stay exactly correct.
func TestAppendExtendsEverything(t *testing.T) {
	r := relationOfSize(120, 9)
	if err := r.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	pred := NewAnd(NewIn("neighborhood", "Bellevue, WA"), NewClosedRange("price", 200000, 400000))
	id := r.Select(nil)
	if len(id) != 120 {
		t.Fatalf("identity length %d", len(id))
	}
	if &id[0] != &r.Select(nil)[0] {
		t.Fatal("identity list not cached between calls")
	}
	r.Select(pred) // populate the conjunct cache
	entries := r.SelectStats().ConjunctEntries
	if entries == 0 {
		t.Fatal("conjunct cache empty after select")
	}
	gen := r.DataGeneration()

	r.MustAppend(Tuple{StringValue("Bellevue, WA"), NumberValue(250000), NumberValue(3)})

	if r.DataGeneration() != gen+1 {
		t.Fatalf("data generation %d, want %d", r.DataGeneration(), gen+1)
	}
	if !r.Indexed("price") || !r.Indexed("neighborhood") {
		t.Fatal("Append must not drop secondary indexes")
	}
	col := r.catColumnIfBuilt(0)
	if col == nil {
		t.Fatal("Append must not drop columnar projections")
	}
	if len(col.Codes) != 121 {
		t.Fatalf("projection not extended over the appended row: %d codes", len(col.Codes))
	}
	if s := r.SelectStats(); s.ConjunctEntries != entries {
		t.Fatalf("Append must keep conjunct bitmaps for extension: %d entries, want %d", s.ConjunctEntries, entries)
	}
	id2 := r.Select(nil)
	if len(id2) != 121 || id2[120] != 120 {
		t.Fatalf("identity not extended after Append: len=%d", len(id2))
	}
	if &id[0] != &id2[0] {
		t.Fatal("identity extension should reuse the backing array in place")
	}
	// Correctness after the mutation: the cached conjuncts must extend (not
	// rebuild, not miss) and cover the appended matching row.
	want := selectReference(r, pred)
	if want[len(want)-1] != 120 {
		t.Fatal("test setup: appended row should match the predicate")
	}
	ext := r.SelectStats().ConjunctExtended
	sameRows(t, r.Select(pred), want, "post-append")
	if s := r.SelectStats(); s.ConjunctExtended != ext+2 {
		t.Fatalf("stale conjuncts should extend, got %d extensions (was %d): %+v", s.ConjunctExtended, ext, s)
	}
	sameRows(t, r.Select(pred), want, "post-append warm")
	if err := r.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	sameRows(t, r.Select(pred), want, "post-append post-rebuild")
}

// TestDistinctStringsDictionaryPath checks the code-presence fast path
// against the map fallback, including subset idx lists.
func TestDistinctStringsDictionaryPath(t *testing.T) {
	r := relationOfSize(200, 13)
	idx := []int{0, 5, 9, 44, 101, 150, 199}
	slow, err := r.DistinctStrings("neighborhood", idx) // no column yet: map path
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.CatColumn("neighborhood"); err != nil {
		t.Fatal(err)
	}
	fast, err := r.DistinctStrings("neighborhood", idx) // dictionary path
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(slow, fast) {
		t.Fatalf("dictionary path %v != map path %v", fast, slow)
	}
	all, err := r.DistinctStrings("neighborhood", r.Select(nil))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(all); i++ {
		if all[i] <= all[i-1] {
			t.Fatalf("distinct values not sorted: %v", all)
		}
	}
	if _, err := r.DistinctStrings("price", idx); err == nil {
		t.Fatal("numeric attribute must error")
	}
	if _, err := r.DistinctStrings("nope", idx); err == nil {
		t.Fatal("missing attribute must error")
	}
}

// TestChunkScanParallel forces multi-worker chunking (the 1-CPU CI box would
// otherwise run it sequentially) and checks word-aligned boundaries cover
// [0, n) exactly once.
func TestChunkScanParallel(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	n := parallelScanRows + 1000
	var mu sync.Mutex
	covered := make([]bool, n)
	chunkScan(n, func(lo, hi int) {
		if lo%64 != 0 {
			t.Errorf("chunk start %d not word-aligned", lo)
		}
		mu.Lock()
		defer mu.Unlock()
		for i := lo; i < hi; i++ {
			if covered[i] {
				t.Fatalf("row %d covered twice", i)
			}
			covered[i] = true
		}
	})
	for i, c := range covered {
		if !c {
			t.Fatalf("row %d never covered", i)
		}
	}
	// And the engine stays correct when scans actually fan out.
	r := relationOfSize(parallelScanRows+500, 17)
	pred := NewAnd(NewIn("neighborhood", "Seattle, WA", "Redmond, WA"), NewClosedRange("price", 220000, 340000))
	sameRows(t, r.Select(pred), selectReference(r, pred), "parallel scan")
}

// TestVectorSelectConcurrent hammers one relation from several goroutines —
// cache hits, misses, and evictions interleaved — and checks every result.
// `make check` runs this under -race.
func TestVectorSelectConcurrent(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	r := relationOfSize(2000, 23)
	preds := make([]Predicate, 0, 24)
	hoods := []string{"Bellevue, WA", "Redmond, WA", "Seattle, WA", "Issaquah, WA"}
	for i := 0; i < 12; i++ {
		preds = append(preds,
			NewAnd(NewIn("neighborhood", hoods[i%4], hoods[(i+1)%4]), NewClosedRange("price", float64(200000+i*5000), float64(300000+i*5000))),
			NewClosedRange("bedrooms", float64(1+i%3), float64(3+i%3)),
		)
	}
	wants := make([][]int, len(preds))
	for i, p := range preds {
		wants[i] = selectReference(r, p)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for k := 0; k < 60; k++ {
				i := rng.Intn(len(preds))
				got := r.Select(preds[i])
				if !reflect.DeepEqual(got, wants[i]) {
					t.Errorf("goroutine %d: predicate %d wrong result", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSelectStatsTiming checks the wall-time and path counters move.
func TestSelectStatsTiming(t *testing.T) {
	r := relationOfSize(500, 29)
	r.Select(NewIn("neighborhood", "Seattle, WA"))
	s := r.SelectStats()
	if s.Selects != 1 || s.Vectorized != 1 {
		t.Fatalf("counters: %+v", s)
	}
	if s.SelectNanos == 0 {
		t.Fatal("SelectNanos did not accumulate")
	}
}
