package relation

import (
	"fmt"
	"strings"
)

// Join materializes the equi-join of a fact table with one dimension table —
// the star-schema flattening the paper assumes (footnote 6: workload queries
// "are equivalent to select queries on the wide table obtained by joining
// the fact table with the dimension tables"). It is an inner hash join on
// fact.factKey = dim.dimKey: fact rows without a dimension match are
// dropped, and a duplicated dimension key is an error (dimensions are keyed).
// Dimension attributes (except the key) are appended to the fact schema; on
// a name collision the dimension attribute is prefixed with "<dim name>_".
func Join(fact *Relation, factKey string, dim *Relation, dimKey string) (*Relation, error) {
	fPos, ok := fact.schema.Lookup(factKey)
	if !ok {
		return nil, fmt.Errorf("relation: fact table %s has no attribute %q", fact.Name, factKey)
	}
	dPos, ok := dim.schema.Lookup(dimKey)
	if !ok {
		return nil, fmt.Errorf("relation: dimension table %s has no attribute %q", dim.Name, dimKey)
	}
	fType := fact.schema.Attr(fPos).Type
	if dType := dim.schema.Attr(dPos).Type; fType != dType {
		return nil, fmt.Errorf("relation: join key type mismatch: %s.%s is %v, %s.%s is %v",
			fact.Name, factKey, fType, dim.Name, dimKey, dType)
	}

	// Output schema: all fact attributes, then dim attributes minus the key.
	attrs := fact.schema.Attrs()
	taken := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		taken[strings.ToLower(a.Name)] = true
	}
	var dimCols []int
	for i := 0; i < dim.schema.Len(); i++ {
		if i == dPos {
			continue
		}
		a := dim.schema.Attr(i)
		name := a.Name
		if taken[strings.ToLower(name)] {
			name = dim.Name + "_" + name
			if taken[strings.ToLower(name)] {
				return nil, fmt.Errorf("relation: cannot disambiguate joined attribute %q", a.Name)
			}
		}
		taken[strings.ToLower(name)] = true
		attrs = append(attrs, Attribute{Name: name, Type: a.Type})
		dimCols = append(dimCols, i)
	}
	schema, err := NewSchema(attrs...)
	if err != nil {
		return nil, fmt.Errorf("relation: joined schema: %w", err)
	}

	// Build the dimension hash table.
	dimRows := dim.snapshot()
	dimByKey := make(map[Value]int, len(dimRows))
	for i, row := range dimRows {
		key := row[dPos]
		if _, dup := dimByKey[key]; dup {
			return nil, fmt.Errorf("relation: dimension %s has duplicate key %v", dim.Name, key)
		}
		dimByKey[key] = i
	}

	out := New(fact.Name+"_"+dim.Name, schema)
	factRows := fact.snapshot()
	out.Grow(len(factRows))
	for _, fRow := range factRows {
		dRow, ok := dimByKey[fRow[fPos]]
		if !ok {
			continue // inner join: unmatched fact rows are dropped
		}
		tuple := make(Tuple, 0, schema.Len())
		tuple = append(tuple, fRow...)
		for _, c := range dimCols {
			tuple = append(tuple, dimRows[dRow][c])
		}
		out.MustAppend(tuple)
	}
	return out, nil
}

// Project returns a new relation containing only the named attributes, in
// the given order. Row order is preserved; cell values are shared.
func Project(r *Relation, cols ...string) (*Relation, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("relation: projection needs at least one attribute")
	}
	attrs := make([]Attribute, len(cols))
	pos := make([]int, len(cols))
	for i, c := range cols {
		p, ok := r.schema.Lookup(c)
		if !ok {
			return nil, fmt.Errorf("relation %s: no attribute %q to project", r.Name, c)
		}
		attrs[i] = r.schema.Attr(p)
		pos[i] = p
	}
	schema, err := NewSchema(attrs...)
	if err != nil {
		return nil, fmt.Errorf("relation: projected schema: %w", err)
	}
	out := New(r.Name, schema)
	rows := r.snapshot()
	out.Grow(len(rows))
	for _, row := range rows {
		tuple := make(Tuple, len(pos))
		for j, p := range pos {
			tuple[j] = row[p]
		}
		out.MustAppend(tuple)
	}
	return out, nil
}
