package relation

import (
	"container/list"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Vectorized selection (DESIGN.md §9). Relation.Select's hot path evaluates
// each conjunct of a WHERE clause directly over the columnar projections
// (column.go) instead of tuple-at-a-time through Predicate.Matches, which
// pays a schema lookup plus a map probe per row per conjunct:
//
//   - IN conjuncts resolve their member strings to dictionary codes once,
//     then run a branch-light pass over the []uint32 code column testing
//     membership in a code bitset;
//   - Range conjuncts either scan the dense []float64 column or, when a
//     sorted secondary index exists and the interval is selective, slice the
//     index with two binary searches and set the covered rows;
//   - each conjunct materializes as a word-packed Bitmap; conjuncts combine
//     cheapest-selectivity-first with word-wise AND, and the final bitmap
//     unpacks to the ascending row list the categorizer consumes.
//
// Conjunct bitmaps are memoized in a small bounded per-relation LRU keyed by
// the conjunct's canonical signature (the same canonical spelling
// internal/sqlparse uses for query signatures — see SigNum), so distinct
// queries sharing a conjunct — the star-schema workload pattern the paper
// targets — reuse its bitmap. Entries are stamped with the relation's data
// generation and the whole cache is dropped on Append, mirroring how the
// serving path's tree cache is invalidated by generation stamping.
//
// Predicate shapes the engine does not understand (anything beyond
// And/In/Range/True) fall back to the row-wise scan, so results are always
// identical to the naive path.

// maxConjunctBitmaps bounds the per-relation conjunct-bitmap cache. At the
// paper's 20k-row scale one bitmap is ~2.5 KiB, so the cache tops out around
// 320 KiB per relation.
const maxConjunctBitmaps = 128

// parallelScanRows is the row threshold above which full-column scans fan
// out across GOMAXPROCS goroutines in word-aligned chunks.
const parallelScanRows = 16384

// sortedIndexMaxFrac: the sorted-index path is chosen when the interval
// covers at most 1/sortedIndexMaxFrac of the rows; wider intervals scan the
// dense column sequentially instead of scattering writes.
const sortedIndexMaxFrac = 4

// SelectStats is a point-in-time snapshot of a relation's selection
// counters, surfaced through the server's healthz endpoint.
type SelectStats struct {
	// Selects counts non-nil-predicate Select calls; Vectorized and
	// Fallback split them by evaluation path.
	Selects    uint64 `json:"selects"`
	Vectorized uint64 `json:"vectorized"`
	Fallback   uint64 `json:"fallback"`
	// SelectNanos is the cumulative wall time spent inside Select.
	SelectNanos uint64 `json:"selectNanos"`
	// ConjunctHits / ConjunctMisses count conjunct-bitmap cache lookups;
	// ConjunctEntries is the cache's current occupancy.
	ConjunctHits    uint64 `json:"conjunctHits"`
	ConjunctMisses  uint64 `json:"conjunctMisses"`
	ConjunctEntries int    `json:"conjunctEntries"`
}

// vselState is the vectorized engine's per-relation mutable state: the
// bounded conjunct-bitmap LRU and the selection counters.
type vselState struct {
	mu    sync.Mutex
	ll    *list.List // front = most recently used
	table map[string]*list.Element

	selects    atomic.Uint64
	vectorized atomic.Uint64
	fallback   atomic.Uint64
	nanos      atomic.Uint64
	hits       atomic.Uint64
	misses     atomic.Uint64
}

// conjEntry is one cached conjunct bitmap. gen stamps the relation data
// generation the bitmap was built against; a stale stamp is treated as a
// miss even if the entry survived (it cannot, in practice: Append drops the
// whole cache, but the stamp keeps the invariant local).
type conjEntry struct {
	sig   string
	bm    *Bitmap
	count int
	gen   uint64
}

// SelectStats returns a snapshot of the selection counters.
func (r *Relation) SelectStats() SelectStats {
	s := SelectStats{
		Selects:        r.vsel.selects.Load(),
		Vectorized:     r.vsel.vectorized.Load(),
		Fallback:       r.vsel.fallback.Load(),
		SelectNanos:    r.vsel.nanos.Load(),
		ConjunctHits:   r.vsel.hits.Load(),
		ConjunctMisses: r.vsel.misses.Load(),
	}
	r.vsel.mu.Lock()
	if r.vsel.ll != nil {
		s.ConjunctEntries = r.vsel.ll.Len()
	}
	r.vsel.mu.Unlock()
	return s
}

// DataGeneration returns the relation's mutation counter: it increments on
// every Append, so derived artifacts (projections, indexes, conjunct
// bitmaps, memoized trees) can be stamped against the data they were built
// from.
func (r *Relation) DataGeneration() uint64 { return r.dataGen.Load() }

// dropConjuncts empties the conjunct-bitmap cache (rows changed).
func (r *Relation) dropConjuncts() {
	r.vsel.mu.Lock()
	if r.vsel.ll != nil {
		r.vsel.ll.Init()
		clear(r.vsel.table)
	}
	r.vsel.mu.Unlock()
}

// vectorSelect evaluates pred through the vectorized engine. ok is false
// when the predicate contains a shape the engine does not support; the
// caller then falls back to the row-wise scan. When ok, rows is exactly the
// ascending row list the naive scan would produce.
func (r *Relation) vectorSelect(pred Predicate) (rows []int, ok bool) {
	conjs, ok := flattenConjuncts(pred, nil)
	if !ok {
		return nil, false
	}
	if len(conjs) == 0 {
		// TRUE / empty conjunction: every row matches. Copy the cached
		// identity so the caller still owns its slice.
		id := r.identityRows()
		out := make([]int, len(id))
		copy(out, id)
		return out, true
	}
	bms := make([]*conjEntry, 0, len(conjs))
	for _, c := range conjs {
		e, supported := r.conjunctBitmap(c)
		if !supported {
			return nil, false
		}
		if e == nil {
			// The conjunct references a missing or mistyped attribute:
			// Matches rejects every row, so the selection is empty.
			return []int{}, true
		}
		if e.count == 0 {
			return []int{}, true
		}
		bms = append(bms, e)
	}
	if len(bms) == 1 {
		return bms[0].bm.Rows(), true
	}
	// AND cheapest-selectivity-first: starting from the sparsest bitmap
	// keeps the running intersection small and lets an empty intermediate
	// short-circuit the rest.
	sort.Slice(bms, func(i, j int) bool { return bms[i].count < bms[j].count })
	res := bms[0].bm.Clone()
	n := bms[0].count
	for _, e := range bms[1:] {
		n = res.And(e.bm)
		if n == 0 {
			return []int{}, true
		}
	}
	return res.AppendRows(make([]int, 0, n)), true
}

// flattenConjuncts decomposes pred into its And-flattened conjunct list,
// dropping TRUEs. ok is false when any piece is not an In, Range, And, or
// True.
func flattenConjuncts(pred Predicate, dst []Predicate) ([]Predicate, bool) {
	switch p := pred.(type) {
	case True:
		return dst, true
	case *In, *Range:
		return append(dst, pred), true
	case *And:
		var ok bool
		for _, c := range p.Preds {
			if dst, ok = flattenConjuncts(c, dst); !ok {
				return nil, false
			}
		}
		return dst, true
	default:
		return nil, false
	}
}

// conjunctBitmap returns the conjunct's bitmap entry, from the cache when
// possible. supported is false for predicate kinds the engine cannot
// evaluate; a nil entry with supported=true means the conjunct can never
// match (missing or mistyped attribute).
func (r *Relation) conjunctBitmap(c Predicate) (e *conjEntry, supported bool) {
	var sig string
	switch p := c.(type) {
	case *In:
		pos, ok := r.schema.Lookup(p.Attr)
		if !ok || r.schema.Attr(pos).Type != Categorical {
			return nil, true
		}
		sig = inSignature(p)
	case *Range:
		pos, ok := r.schema.Lookup(p.Attr)
		if !ok || r.schema.Attr(pos).Type != Numeric {
			return nil, true
		}
		sig = rangeSignature(p)
	default:
		return nil, false
	}
	gen := r.dataGen.Load()
	if e := r.cachedConjunct(sig, gen); e != nil {
		return e, true
	}
	var bm *Bitmap
	switch p := c.(type) {
	case *In:
		bm = r.buildInBitmap(p)
	case *Range:
		bm = r.buildRangeBitmap(p)
	}
	e = &conjEntry{sig: sig, bm: bm, count: bm.Count(), gen: gen}
	r.insertConjunct(e)
	return e, true
}

// cachedConjunct looks the signature up in the LRU, refreshing recency.
func (r *Relation) cachedConjunct(sig string, gen uint64) *conjEntry {
	r.vsel.mu.Lock()
	defer r.vsel.mu.Unlock()
	if r.vsel.table == nil {
		r.vsel.misses.Add(1)
		return nil
	}
	el, ok := r.vsel.table[sig]
	if !ok {
		r.vsel.misses.Add(1)
		return nil
	}
	e := el.Value.(*conjEntry)
	if e.gen != gen {
		r.vsel.ll.Remove(el)
		delete(r.vsel.table, sig)
		r.vsel.misses.Add(1)
		return nil
	}
	r.vsel.ll.MoveToFront(el)
	r.vsel.hits.Add(1)
	return e
}

// insertConjunct stores a freshly built entry, evicting from the cold end
// past the cap. Concurrent misses on one signature may both build; the
// second insert wins, which is harmless — the bitmaps are identical.
func (r *Relation) insertConjunct(e *conjEntry) {
	r.vsel.mu.Lock()
	defer r.vsel.mu.Unlock()
	if r.vsel.ll == nil {
		r.vsel.ll = list.New()
		r.vsel.table = make(map[string]*list.Element)
	}
	if el, ok := r.vsel.table[e.sig]; ok {
		el.Value = e
		r.vsel.ll.MoveToFront(el)
		return
	}
	r.vsel.table[e.sig] = r.vsel.ll.PushFront(e)
	for r.vsel.ll.Len() > maxConjunctBitmaps {
		cold := r.vsel.ll.Back()
		r.vsel.ll.Remove(cold)
		delete(r.vsel.table, cold.Value.(*conjEntry).sig)
	}
}

// buildInBitmap evaluates an IN conjunct over the dictionary-coded column:
// member strings resolve to codes once (binary search in the sorted value
// table), then one pass over the code column tests membership in a
// dict-sized bitset — no string hashing per row.
func (r *Relation) buildInBitmap(p *In) *Bitmap {
	col, err := r.CatColumn(p.Attr)
	if err != nil {
		// Unreachable: the caller validated the attribute.
		return NewBitmap(r.Len())
	}
	bm := NewBitmap(len(col.Codes))
	if len(p.Values) == 0 {
		return bm
	}
	memberCodes := make([]uint64, (len(col.Dict)+63)>>6)
	any := false
	for v := range p.Values {
		if c, ok := col.Code(v); ok {
			memberCodes[c>>6] |= 1 << (c & 63)
			any = true
		}
	}
	if !any {
		return bm
	}
	codes := col.Codes
	chunkScan(len(codes), func(lo, hi int) {
		for base := lo; base < hi; base += 64 {
			end := min(base+64, hi)
			var w uint64
			for i := base; i < end; i++ {
				c := codes[i]
				w |= (memberCodes[c>>6] >> (c & 63) & 1) << (uint(i) & 63)
			}
			bm.words[base>>6] = w
		}
	})
	return bm
}

// buildRangeBitmap evaluates a Range conjunct. When a sorted secondary
// index exists, the column is NaN-free, the bounds are well-ordered, and
// the interval is selective, two binary searches slice the index and the
// covered rows are set directly; otherwise one dense pass over the
// []float64 column replicates Range.Matches' comparisons exactly (NaN
// values and NaN bounds included).
func (r *Relation) buildRangeBitmap(p *Range) *Bitmap {
	var idx *numIndex
	if set := r.indexes(); set != nil {
		idx = set.num[lower(p.Attr)]
	}
	if idx != nil && !idx.hasNaN &&
		!math.IsNaN(p.Lo) && !math.IsNaN(p.Hi) {
		lo := sort.SearchFloat64s(idx.vals, p.Lo)
		var hi int
		if p.HiInc {
			hi = sort.Search(len(idx.vals), func(i int) bool { return idx.vals[i] > p.Hi })
		} else {
			hi = sort.SearchFloat64s(idx.vals, p.Hi)
		}
		if hi < lo {
			hi = lo
		}
		if (hi-lo)*sortedIndexMaxFrac <= len(idx.vals) {
			bm := NewBitmap(len(idx.vals))
			for _, row := range idx.rows[lo:hi] {
				bm.Set(row)
			}
			return bm
		}
	}
	col, err := r.NumColumn(p.Attr)
	if err != nil {
		// Unreachable: the caller validated the attribute.
		return NewBitmap(r.Len())
	}
	bm := NewBitmap(len(col))
	pLo, pHi, hiInc := p.Lo, p.Hi, p.HiInc
	chunkScan(len(col), func(a, b int) {
		for base := a; base < b; base += 64 {
			end := min(base+64, b)
			var w uint64
			if hiInc {
				for i := base; i < end; i++ {
					v := col[i]
					// Exactly Range.Matches: !(v < Lo) && v <= Hi.
					if !(v < pLo) && v <= pHi {
						w |= 1 << (uint(i) & 63)
					}
				}
			} else {
				for i := base; i < end; i++ {
					v := col[i]
					if !(v < pLo) && v < pHi {
						w |= 1 << (uint(i) & 63)
					}
				}
			}
			bm.words[base>>6] = w
		}
	})
	return bm
}

// chunkScan runs fn over [0, n) — sequentially below the parallel
// threshold, otherwise split into word-aligned chunks across GOMAXPROCS
// goroutines. Chunk boundaries are multiples of 64, so concurrent chunks
// never share a bitmap word.
func chunkScan(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if n < parallelScanRows || workers <= 1 {
		fn(0, n)
		return
	}
	words := (n + 63) >> 6
	chunk := (words + workers - 1) / workers << 6
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// inSignature renders an IN conjunct canonically — lowercased attribute,
// members deduplicated and sorted — in the same spelling
// internal/sqlparse's Query.Signature uses for categorical conditions, so a
// conjunct shared across differently-spelled queries keys one cache slot.
func inSignature(p *In) string {
	var b strings.Builder
	b.Grow(32)
	b.WriteString(strings.ToLower(p.Attr))
	b.WriteString("\x1din")
	for _, v := range p.SortedValues() {
		b.WriteByte('\x1f')
		b.WriteString(v)
	}
	return b.String()
}

// rangeSignature renders a Range conjunct in the spelling-independent
// interval form of internal/sqlparse's signatures. Relation ranges always
// include their lower bound, so the bracket is fixed.
func rangeSignature(p *Range) string {
	var b strings.Builder
	b.Grow(32)
	b.WriteString(strings.ToLower(p.Attr))
	b.WriteString("\x1drg\x1f")
	if math.IsInf(p.Lo, -1) {
		b.WriteString("(-inf")
	} else {
		b.WriteByte('[')
		b.WriteString(SigNum(p.Lo))
	}
	b.WriteByte(',')
	if math.IsInf(p.Hi, 1) {
		b.WriteString("+inf")
	} else {
		b.WriteString(SigNum(p.Hi))
	}
	// The bracket always reflects HiInc: even at Hi=+Inf the two variants
	// differ (a +Inf value matches `<= +Inf` but not `< +Inf`), so they must
	// not share a cache slot. sqlparse-built predicates with an unbounded
	// upper end always carry HiInc=false, matching its `+inf)` spelling.
	if p.HiInc {
		b.WriteByte(']')
	} else {
		b.WriteByte(')')
	}
	return b.String()
}

// SigNum renders a float64 canonically for signature keys: -0 folds into 0,
// integral values print without exponent or trailing zeros, and everything
// else uses the shortest round-trip form. internal/sqlparse uses this for
// query signatures and the conjunct-bitmap cache for its keys, so the two
// cache layers agree on canonical spelling.
func SigNum(v float64) string {
	if v == 0 {
		v = 0 // collapse -0
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
