package relation

import (
	"container/list"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Vectorized selection (DESIGN.md §9). Relation.Select's hot path evaluates
// each conjunct of a WHERE clause directly over the columnar projections
// (column.go) instead of tuple-at-a-time through Predicate.Matches, which
// pays a schema lookup plus a map probe per row per conjunct:
//
//   - IN conjuncts resolve their member strings to dictionary codes once,
//     then run a branch-light pass over the []uint32 code column testing
//     membership in a code bitset;
//   - Range conjuncts either scan the dense []float64 column or, when a
//     sorted secondary index exists and the interval is selective, slice the
//     index with two binary searches and set the covered rows;
//   - each conjunct materializes as a word-packed Bitmap; conjuncts combine
//     cheapest-selectivity-first with word-wise AND, and the final bitmap
//     unpacks to the ascending row list the categorizer consumes.
//
// Conjunct bitmaps are memoized in a small bounded per-relation LRU keyed by
// the conjunct's canonical signature (the same canonical spelling
// internal/sqlparse uses for query signatures — see SigNum), so distinct
// queries sharing a conjunct — the star-schema workload pattern the paper
// targets — reuse its bitmap. Entries are stamped with the relation's data
// generation; an entry whose stamp lags the current generation is not
// dropped but *extended* — the builder copies its words and evaluates only
// the rows appended since (DESIGN.md §14), so append churn costs O(new
// rows) per cached conjunct instead of a full rebuild.
//
// Before scanning, the builders consult the sealed segments' zone maps
// (zonemap.go): a sealed segment whose summary proves no row can match the
// conjunct is skipped outright, and the surviving spans are scanned with
// word-aligned OR kernels.
//
// Predicate shapes the engine does not understand (anything beyond
// And/In/Range/True) fall back to the row-wise scan, so results are always
// identical to the naive path.

// maxConjunctBitmaps bounds the per-relation conjunct-bitmap cache. At the
// paper's 20k-row scale one bitmap is ~2.5 KiB, so the cache tops out around
// 320 KiB per relation.
const maxConjunctBitmaps = 128

// parallelScanRows is the row threshold above which full-column scans fan
// out across GOMAXPROCS goroutines in word-aligned chunks.
const parallelScanRows = 16384

// sortedIndexMaxFrac: the sorted-index path is chosen when the interval
// covers at most 1/sortedIndexMaxFrac of the rows; wider intervals scan the
// dense column sequentially instead of scattering writes.
const sortedIndexMaxFrac = 4

// SelectStats is a point-in-time snapshot of a relation's selection
// counters, surfaced through the server's healthz endpoint.
type SelectStats struct {
	// Selects counts non-nil-predicate Select calls; Vectorized and
	// Fallback split them by evaluation path.
	Selects    uint64 `json:"selects"`
	Vectorized uint64 `json:"vectorized"`
	Fallback   uint64 `json:"fallback"`
	// SelectNanos is the cumulative wall time spent inside Select.
	SelectNanos uint64 `json:"selectNanos"`
	// ConjunctHits / ConjunctMisses count conjunct-bitmap cache lookups;
	// ConjunctExtended counts lookups that found a stale entry and extended
	// it over appended rows; ConjunctEntries is the cache's occupancy.
	ConjunctHits     uint64 `json:"conjunctHits"`
	ConjunctMisses   uint64 `json:"conjunctMisses"`
	ConjunctExtended uint64 `json:"conjunctExtended"`
	ConjunctEntries  int    `json:"conjunctEntries"`
}

// vselState is the vectorized engine's per-relation mutable state: the
// bounded conjunct-bitmap LRU and the selection counters.
type vselState struct {
	mu sync.Mutex
	//lint:guardedby mu
	ll *list.List // front = most recently used
	//lint:guardedby mu
	table map[string]*list.Element

	selects    atomic.Uint64
	vectorized atomic.Uint64
	fallback   atomic.Uint64
	nanos      atomic.Uint64
	hits       atomic.Uint64
	misses     atomic.Uint64
	extended   atomic.Uint64
}

// conjEntry is one cached conjunct bitmap. gen stamps the relation data
// generation the bitmap was built against; a stale stamp means rows were
// appended since — the entry's bitmap then seeds an extension build that
// evaluates only the rows past its coverage.
type conjEntry struct {
	sig   string
	bm    *Bitmap
	count int
	gen   uint64
}

// SelectStats returns a snapshot of the selection counters.
func (r *Relation) SelectStats() SelectStats {
	s := SelectStats{
		Selects:          r.vsel.selects.Load(),
		Vectorized:       r.vsel.vectorized.Load(),
		Fallback:         r.vsel.fallback.Load(),
		SelectNanos:      r.vsel.nanos.Load(),
		ConjunctHits:     r.vsel.hits.Load(),
		ConjunctMisses:   r.vsel.misses.Load(),
		ConjunctExtended: r.vsel.extended.Load(),
	}
	r.vsel.mu.Lock()
	if r.vsel.ll != nil {
		s.ConjunctEntries = r.vsel.ll.Len()
	}
	r.vsel.mu.Unlock()
	return s
}

// DataGeneration returns the relation's mutation counter: it increments on
// every Append, so derived artifacts (projections, indexes, conjunct
// bitmaps, memoized trees) can be stamped against the data they were built
// from.
func (r *Relation) DataGeneration() uint64 { return r.dataGen.Load() }

// dropConjuncts empties the conjunct-bitmap cache. No longer on the Append
// path (stale entries extend instead); retained as the drop-everything
// baseline for the segment benchmarks and invalidation tests.
func (r *Relation) dropConjuncts() {
	r.vsel.mu.Lock()
	if r.vsel.ll != nil {
		r.vsel.ll.Init()
		clear(r.vsel.table)
	}
	r.vsel.mu.Unlock()
}

// vectorSelect evaluates pred through the vectorized engine. ok is false
// when the predicate contains a shape the engine does not support; the
// caller then falls back to the row-wise scan. When ok, rows is exactly the
// ascending row list the naive scan would produce.
func (r *Relation) vectorSelect(pred Predicate) (rows []int, ok bool) {
	conjs, ok := flattenConjuncts(pred, nil)
	if !ok {
		return nil, false
	}
	if len(conjs) == 0 {
		// TRUE / empty conjunction: every row matches. Copy the cached
		// identity so the caller still owns its slice.
		id := r.identityRows()
		out := make([]int, len(id))
		copy(out, id)
		return out, true
	}
	bms := make([]*conjEntry, 0, len(conjs))
	for _, c := range conjs {
		e, supported := r.conjunctBitmap(c)
		if !supported {
			return nil, false
		}
		if e == nil {
			// The conjunct references a missing or mistyped attribute:
			// Matches rejects every row, so the selection is empty.
			return []int{}, true
		}
		if e.count == 0 {
			return []int{}, true
		}
		bms = append(bms, e)
	}
	if len(bms) == 1 {
		return bms[0].bm.Rows(), true
	}
	// AND cheapest-selectivity-first: starting from the sparsest bitmap
	// keeps the running intersection small and lets an empty intermediate
	// short-circuit the rest.
	sort.Slice(bms, func(i, j int) bool { return bms[i].count < bms[j].count })
	res := bms[0].bm.Clone()
	n := bms[0].count
	for _, e := range bms[1:] {
		n = res.And(e.bm)
		if n == 0 {
			return []int{}, true
		}
	}
	return res.AppendRows(make([]int, 0, n)), true
}

// flattenConjuncts decomposes pred into its And-flattened conjunct list,
// dropping TRUEs. ok is false when any piece is not an In, Range, And, or
// True.
func flattenConjuncts(pred Predicate, dst []Predicate) ([]Predicate, bool) {
	switch p := pred.(type) {
	case True:
		return dst, true
	case *In, *Range:
		return append(dst, pred), true
	case *And:
		var ok bool
		for _, c := range p.Preds {
			if dst, ok = flattenConjuncts(c, dst); !ok {
				return nil, false
			}
		}
		return dst, true
	default:
		return nil, false
	}
}

// conjunctBitmap returns the conjunct's bitmap entry, from the cache when
// possible. supported is false for predicate kinds the engine cannot
// evaluate; a nil entry with supported=true means the conjunct can never
// match (missing or mistyped attribute).
func (r *Relation) conjunctBitmap(c Predicate) (e *conjEntry, supported bool) {
	var sig string
	switch p := c.(type) {
	case *In:
		pos, ok := r.schema.Lookup(p.Attr)
		if !ok || r.schema.Attr(pos).Type != Categorical {
			return nil, true
		}
		sig = inSignature(p)
	case *Range:
		pos, ok := r.schema.Lookup(p.Attr)
		if !ok || r.schema.Attr(pos).Type != Numeric {
			return nil, true
		}
		sig = rangeSignature(p)
	default:
		return nil, false
	}
	// The generation is read BEFORE the column snapshot inside the builder:
	// if an Append races the build, the entry is stamped with the older
	// generation and the next lookup extends it again (a cheap no-op when
	// the bitmap already covers the rows). Stamping after the snapshot could
	// publish a fresh-looking entry missing rows.
	gen := r.dataGen.Load()
	prevE := r.lookupConjunct(sig)
	if prevE != nil && prevE.gen == gen {
		r.vsel.hits.Add(1)
		return prevE, true
	}
	var prev *Bitmap
	if prevE != nil {
		prev = prevE.bm
		r.vsel.extended.Add(1)
	} else {
		r.vsel.misses.Add(1)
	}
	var bm *Bitmap
	switch p := c.(type) {
	case *In:
		bm = r.buildInBitmap(p, prev)
	case *Range:
		bm = r.buildRangeBitmap(p, prev)
	}
	e = &conjEntry{sig: sig, bm: bm, count: bm.Count(), gen: gen}
	r.insertConjunct(e)
	return e, true
}

// lookupConjunct returns the signature's entry regardless of generation
// staleness (the caller decides between hit, extension, and miss),
// refreshing LRU recency.
func (r *Relation) lookupConjunct(sig string) *conjEntry {
	r.vsel.mu.Lock()
	defer r.vsel.mu.Unlock()
	if r.vsel.table == nil {
		return nil
	}
	el, ok := r.vsel.table[sig]
	if !ok {
		return nil
	}
	r.vsel.ll.MoveToFront(el)
	return el.Value.(*conjEntry)
}

// insertConjunct stores a freshly built entry, evicting from the cold end
// past the cap. Concurrent misses on one signature may both build; the
// second insert wins, which is harmless — the bitmaps are identical.
func (r *Relation) insertConjunct(e *conjEntry) {
	r.vsel.mu.Lock()
	defer r.vsel.mu.Unlock()
	if r.vsel.ll == nil {
		r.vsel.ll = list.New()
		r.vsel.table = make(map[string]*list.Element)
	}
	if el, ok := r.vsel.table[e.sig]; ok {
		el.Value = e
		r.vsel.ll.MoveToFront(el)
		return
	}
	r.vsel.table[e.sig] = r.vsel.ll.PushFront(e)
	for r.vsel.ll.Len() > maxConjunctBitmaps {
		cold := r.vsel.ll.Back()
		r.vsel.ll.Remove(cold)
		delete(r.vsel.table, cold.Value.(*conjEntry).sig)
	}
}

// seedExtension copies prev's words into bm and returns the first row the
// build must evaluate: 0 for a cold build, prev's coverage for an
// extension. prev's universe never exceeds bm's (rows are only appended),
// but a racing seal makes the guard cheap insurance.
func seedExtension(bm, prev *Bitmap) int {
	if prev == nil || prev.n > bm.n {
		return 0
	}
	copy(bm.words, prev.words)
	return prev.n
}

// buildInBitmap evaluates an IN conjunct over the dictionary-coded column:
// member strings resolve to codes once (binary search in the sorted value
// table), then a pass over the code column tests membership in a dict-sized
// bitset — no string hashing per row. With a prev bitmap, only rows past
// its coverage are evaluated (a member-value verdict never changes for a
// sealed row, and dictionary remaps renumber codes, not values). Sealed
// segments whose zone map contains no member value are skipped.
func (r *Relation) buildInBitmap(p *In, prev *Bitmap) *Bitmap {
	col, err := r.CatColumn(p.Attr)
	if err != nil {
		// Unreachable: the caller validated the attribute.
		return NewBitmap(r.Len())
	}
	bm := NewBitmap(len(col.Codes))
	start := seedExtension(bm, prev)
	if len(p.Values) == 0 {
		return bm
	}
	memberCodes := make([]uint64, (len(col.Dict)+63)>>6)
	any := false
	for v := range p.Values {
		if c, ok := col.Code(v); ok {
			memberCodes[c>>6] |= 1 << (c & 63)
			any = true
		}
	}
	if !any {
		return bm
	}
	members := p.SortedValues()
	key := lower(p.Attr)
	spans := r.zoneSpans(start, len(col.Codes), func(seg *segment) bool {
		return seg.catZone(key, col).canMatchIn(members)
	})
	codes := col.Codes
	for _, sp := range spans {
		scanSpan(sp.lo, sp.hi, func(a, b int) {
			for i := a; i < b; {
				wi := i >> 6
				end := min((wi+1)<<6, b)
				var w uint64
				for ; i < end; i++ {
					c := codes[i]
					w |= (memberCodes[c>>6] >> (c & 63) & 1) << (uint(i) & 63)
				}
				bm.words[wi] |= w
			}
		})
	}
	return bm
}

// buildRangeBitmap evaluates a Range conjunct. On a cold build, when a
// sorted secondary index exists, the column is NaN-free, the bounds are
// well-ordered, and the interval is selective, two binary searches slice
// the index and the covered rows are set directly. Otherwise the dense
// []float64 column is scanned, replicating Range.Matches' comparisons
// exactly (NaN values and NaN bounds included) — skipping sealed segments
// whose min/max zone proves no row can match, and, with a prev bitmap,
// evaluating only rows past its coverage.
func (r *Relation) buildRangeBitmap(p *Range, prev *Bitmap) *Bitmap {
	if prev == nil {
		var idx *numIndex
		// Peek only: an index set lagging appended rows would slice to a
		// short universe, so the dense path takes over until candidates (or
		// BuildIndex) brings the set current.
		if set := r.indexes(); set != nil && set.n >= r.Len() {
			idx = set.num[lower(p.Attr)]
		}
		if idx != nil && !idx.hasNaN &&
			!math.IsNaN(p.Lo) && !math.IsNaN(p.Hi) {
			lo := sort.SearchFloat64s(idx.vals, p.Lo)
			var hi int
			if p.HiInc {
				hi = sort.Search(len(idx.vals), func(i int) bool { return idx.vals[i] > p.Hi })
			} else {
				hi = sort.SearchFloat64s(idx.vals, p.Hi)
			}
			if hi < lo {
				hi = lo
			}
			if (hi-lo)*sortedIndexMaxFrac <= len(idx.vals) {
				bm := NewBitmap(len(idx.vals))
				for _, row := range idx.rows[lo:hi] {
					bm.Set(row)
				}
				return bm
			}
		}
	}
	col, err := r.NumColumn(p.Attr)
	if err != nil {
		// Unreachable: the caller validated the attribute.
		return NewBitmap(r.Len())
	}
	bm := NewBitmap(len(col))
	start := seedExtension(bm, prev)
	pLo, pHi, hiInc := p.Lo, p.Hi, p.HiInc
	key := lower(p.Attr)
	spans := r.zoneSpans(start, len(col), func(seg *segment) bool {
		return seg.numZone(key, col).canMatchRange(pLo, pHi, hiInc)
	})
	for _, sp := range spans {
		scanSpan(sp.lo, sp.hi, func(a, b int) {
			for i := a; i < b; {
				wi := i >> 6
				end := min((wi+1)<<6, b)
				var w uint64
				if hiInc {
					for ; i < end; i++ {
						v := col[i]
						// Exactly Range.Matches: !(v < Lo) && v <= Hi.
						if !(v < pLo) && v <= pHi {
							w |= 1 << (uint(i) & 63)
						}
					}
				} else {
					for ; i < end; i++ {
						v := col[i]
						if !(v < pLo) && v < pHi {
							w |= 1 << (uint(i) & 63)
						}
					}
				}
				bm.words[wi] |= w
			}
		})
	}
	return bm
}

// chunkScan runs fn over [0, n) — sequentially below the parallel
// threshold, otherwise split into word-aligned chunks across GOMAXPROCS
// goroutines. Chunk boundaries are multiples of 64, so concurrent chunks
// never share a bitmap word.
func chunkScan(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if n < parallelScanRows || workers <= 1 {
		fn(0, n)
		return
	}
	words := (n + 63) >> 6
	chunk := (words + workers - 1) / workers << 6
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// scanSpan is chunkScan over an arbitrary window [a, b): sequential below
// the parallel threshold, otherwise split at *absolute* multiples of 64 so
// concurrent chunks never share a bitmap word even when a is mid-word (an
// extension build starts at the previous bitmap's coverage).
func scanSpan(a, b int, fn func(lo, hi int)) {
	if a >= b {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if b-a < parallelScanRows || workers <= 1 {
		fn(a, b)
		return
	}
	words := (b - a + 63) >> 6
	chunk := (words + workers - 1) / workers << 6
	var wg sync.WaitGroup
	for lo := a; lo < b; {
		hi := min((lo&^63)+chunk, b)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}

// inSignature renders an IN conjunct canonically — lowercased attribute,
// members deduplicated and sorted — in the same spelling
// internal/sqlparse's Query.Signature uses for categorical conditions, so a
// conjunct shared across differently-spelled queries keys one cache slot.
func inSignature(p *In) string {
	var b strings.Builder
	b.Grow(32)
	b.WriteString(strings.ToLower(p.Attr))
	b.WriteString("\x1din")
	for _, v := range p.SortedValues() {
		b.WriteByte('\x1f')
		b.WriteString(v)
	}
	return b.String()
}

// rangeSignature renders a Range conjunct in the spelling-independent
// interval form of internal/sqlparse's signatures. Relation ranges always
// include their lower bound, so the bracket is fixed.
func rangeSignature(p *Range) string {
	var b strings.Builder
	b.Grow(32)
	b.WriteString(strings.ToLower(p.Attr))
	b.WriteString("\x1drg\x1f")
	if math.IsInf(p.Lo, -1) {
		b.WriteString("(-inf")
	} else {
		b.WriteByte('[')
		b.WriteString(SigNum(p.Lo))
	}
	b.WriteByte(',')
	if math.IsInf(p.Hi, 1) {
		b.WriteString("+inf")
	} else {
		b.WriteString(SigNum(p.Hi))
	}
	// The bracket always reflects HiInc: even at Hi=+Inf the two variants
	// differ (a +Inf value matches `<= +Inf` but not `< +Inf`), so they must
	// not share a cache slot. sqlparse-built predicates with an unbounded
	// upper end always carry HiInc=false, matching its `+inf)` spelling.
	if p.HiInc {
		b.WriteByte(']')
	} else {
		b.WriteByte(')')
	}
	return b.String()
}

// SigNum renders a float64 canonically for signature keys: -0 folds into 0,
// integral values print without exponent or trailing zeros, and everything
// else uses the shortest round-trip form. internal/sqlparse uses this for
// query signatures and the conjunct-bitmap cache for its keys, so the two
// cache layers agree on canonical spelling.
func SigNum(v float64) string {
	if v == 0 {
		v = 0 // collapse -0
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
