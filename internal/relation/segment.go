package relation

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Segmented storage (DESIGN.md §14). The row store is divided into sealed
// segments — immutable, contiguous spans of DefaultSegmentRows rows whose
// derived artifacts (zone maps, columnar page spans) are built once and
// never invalidated — plus one active tail holding the rows appended since
// the last seal. Append only touches the tail: it lands the row, bumps the
// data generation, and, when the tail reaches the segment size, seals the
// full spans by publishing new segment descriptors. Nothing about the
// sealed prefix is recomputed.
//
// The physical layout stays the flat, contiguous arrays the categorizer and
// the vectorized engine already consume (rows behind the RCU pointer, one
// projection array per attribute): a segment is a logical [lo, hi) span over
// them, not a separate allocation. What sealing freezes is the *maintenance
// contract* — the columnar prefix covering sealed rows is append-only (the
// one exception, a dictionary remap when a brand-new categorical value
// arrives, rewrites codes without re-reading any sealed row), per-segment
// zone maps are computed once, and cached conjunct bitmaps extend by
// evaluating only rows past their previous coverage. The drop-everything
// invalidation that made every Append cost O(total rows) on the next read is
// gone; see column.go and vselect.go for the incremental paths.
//
// Secondary indexes (index.go) follow the same discipline: Append no longer
// drops them; a set lagging the row count is extended on the next indexed
// read by sorting only the appended suffix and merging it with the existing
// sorted runs — the sealed prefix is reused, never re-sorted.

// DefaultSegmentRows is the sealed-segment span when SetSegmentRows was not
// called. A multiple of 64 keeps segment boundaries word-aligned in the
// bitmap kernels; 4096 rows × 8 bytes is one 32 KiB column page per numeric
// attribute — small enough that a single segment scan stays in L1/L2, large
// enough that zone-map metadata is negligible next to the data.
const DefaultSegmentRows = 4096

// alignMinSegments gates shard/segment boundary alignment (shard.go): shard
// cuts snap to segment boundaries only when every shard spans at least this
// many segments, so the rounding skew stays under ~1/(2·alignMinSegments)
// and small-relation shard balance — pinned by TestShardSpans — is
// untouched.
const alignMinSegments = 8

// segState is a relation's segment bookkeeping: the sealed-segment list
// behind an RCU pointer (readers load it once per operation, Append
// publishes successors under the writer mutex) and the storage counters.
type segState struct {
	// rowsPerSeg is the configured segment size; 0 means DefaultSegmentRows.
	// Writable only while the relation is empty (SetSegmentRows).
	rowsPerSeg atomic.Int64
	// sealed is the published list of sealed segments, ordered by span,
	// covering [0, sealedRows) exactly. nil until the first seal.
	sealed atomic.Pointer[[]*segment]
	// seals counts seal events; zonePruned/zoneScanned count per-conjunct
	// zone-map decisions over fully-covered sealed segments.
	seals       atomic.Uint64
	zonePruned  atomic.Uint64
	zoneScanned atomic.Uint64
	// sealHook, when set, is invoked by Append after the writer mutex is
	// released, once per append that sealed rows, with the newly sealed
	// span [lo, hi). Written only via SetSealHook while the relation is
	// empty; read under the writer mutex.
	sealHook func(lo, hi int)
}

// segment is one sealed span [lo, hi). The descriptor is immutable; the
// zone maps hanging off it are built lazily, once per attribute, from data
// that can no longer change.
type segment struct {
	lo, hi int

	// mu guards the lazily-built zone maps below. Contention is one map
	// lookup per (conjunct build, segment); builds happen once.
	mu sync.Mutex
	//lint:guardedby mu
	nums map[string]*numZone
	//lint:guardedby mu
	cats map[string]*catZone
}

// segmentRows returns the relation's segment size.
func (r *Relation) segmentRows() int {
	if n := r.seg.rowsPerSeg.Load(); n > 0 {
		return int(n)
	}
	return DefaultSegmentRows
}

// SetSegmentRows fixes the sealed-segment size. It must be called before
// any row is appended: segment boundaries are immutable once rows exist.
// The default (also reachable by never calling this) is DefaultSegmentRows.
// Small sizes are intended for tests; production relations should keep the
// default.
func (r *Relation) SetSegmentRows(n int) error {
	if n < 1 {
		return fmt.Errorf("relation %s: segment size %d, want >= 1", r.Name, n)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.Len() > 0 {
		return fmt.Errorf("relation %s: cannot change segment size with %d rows present", r.Name, r.Len())
	}
	r.seg.rowsPerSeg.Store(int64(n))
	return nil
}

// SetSealHook registers fn to be called after every Append that seals one
// or more segment spans, with the newly sealed range [lo, hi) (a multiple
// of the segment size). The call happens on the appending goroutine, after
// the writer mutex is released; the sealed rows are immutable by then, so
// fn may read them without synchronization. The durable store (durable
// package) uses this to spill sealed spans to disk in lockstep with the
// in-memory seal. Like SetSegmentRows, the hook must be installed before
// any row is appended, and there is at most one.
func (r *Relation) SetSealHook(fn func(lo, hi int)) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.Len() > 0 {
		return fmt.Errorf("relation %s: cannot install seal hook with %d rows present", r.Name, r.Len())
	}
	r.seg.sealHook = fn
	return nil
}

// sealedSegments returns the published sealed-segment list (never written
// in place; successors are whole new slices).
func (r *Relation) sealedSegments() []*segment {
	if p := r.seg.sealed.Load(); p != nil {
		return *p
	}
	return nil
}

// sealedRows returns the number of rows covered by sealed segments.
func (r *Relation) sealedRows() int {
	segs := r.sealedSegments()
	if len(segs) == 0 {
		return 0
	}
	return segs[len(segs)-1].hi
}

// maybeSeal seals every full segment span the tail now covers. Called with
// r.mu held by Append, after the new row list is published.
func (r *Relation) maybeSeal(total int) {
	segRows := r.segmentRows()
	cur := r.sealedSegments()
	hi := 0
	if len(cur) > 0 {
		hi = cur[len(cur)-1].hi
	}
	if total-hi < segRows {
		return
	}
	next := make([]*segment, len(cur), len(cur)+(total-hi)/segRows)
	copy(next, cur)
	for total-hi >= segRows {
		next = append(next, &segment{lo: hi, hi: hi + segRows})
		hi += segRows
		r.seg.seals.Add(1)
	}
	r.seg.sealed.Store(&next)
}

// StorageStats is a point-in-time snapshot of the segmented store,
// surfaced through the server's healthz endpoint alongside SelectStats.
type StorageStats struct {
	// SegmentRows is the sealed-segment span size.
	SegmentRows int `json:"segmentRows"`
	// Segments is the number of sealed segments; SealedRows the rows they
	// cover; TailRows the active tail beyond them.
	Segments   int `json:"segments"`
	SealedRows int `json:"sealedRows"`
	TailRows   int `json:"tailRows"`
	// SealedBytes approximates the bytes of columnar artifacts covering the
	// sealed prefix: projection pages plus zone-map metadata.
	SealedBytes uint64 `json:"sealedBytes"`
	// Seals counts seal events since the relation was created.
	Seals uint64 `json:"seals"`
	// ZonePruned / ZoneScanned count zone-map decisions: sealed segments
	// skipped outright vs scanned, summed over all conjunct-bitmap builds.
	ZonePruned  uint64 `json:"zonePruned"`
	ZoneScanned uint64 `json:"zoneScanned"`
}

// StorageStats returns a snapshot of the segmented store's counters.
func (r *Relation) StorageStats() StorageStats {
	segs := r.sealedSegments()
	sealed := 0
	if len(segs) > 0 {
		sealed = segs[len(segs)-1].hi
	}
	s := StorageStats{
		SegmentRows: r.segmentRows(),
		Segments:    len(segs),
		SealedRows:  sealed,
		TailRows:    r.Len() - sealed,
		SealedBytes: r.sealedBytes(segs, sealed),
		Seals:       r.seg.seals.Load(),
		ZonePruned:  r.seg.zonePruned.Load(),
		ZoneScanned: r.seg.zoneScanned.Load(),
	}
	if s.TailRows < 0 { // racing a concurrent seal; clamp rather than lie
		s.TailRows = 0
	}
	return s
}

// sealedBytes approximates the sealed prefix's columnar footprint: the
// projection spans covering sealed rows plus the zone-map metadata.
func (r *Relation) sealedBytes(segs []*segment, sealed int) uint64 {
	var b uint64
	r.cols.mu.Lock()
	for _, e := range r.cols.num {
		b += 8 * uint64(min(len(e.col), sealed))
	}
	for _, e := range r.cols.cat {
		b += 4 * uint64(min(len(e.col.Codes), sealed))
		for _, v := range e.col.Dict {
			b += uint64(len(v)) + 16
		}
	}
	for _, s := range r.cols.sorted {
		b += 16 * uint64(min(len(s.rows), sealed))
	}
	r.cols.mu.Unlock()
	for _, seg := range segs {
		seg.mu.Lock()
		b += 32 * uint64(len(seg.nums))
		for _, z := range seg.cats {
			for _, v := range z.vals {
				b += uint64(len(v)) + 16
			}
		}
		seg.mu.Unlock()
	}
	return b
}
