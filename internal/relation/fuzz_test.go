package relation

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV feeds arbitrary bytes to the CSV loader with schema
// inference: it must never panic, and whatever it accepts must survive a
// write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,x\n2,y\n")
	f.Add("a\n\n")
	f.Add("h1,h2,h3\n1,2,3\n4,5,6\n")
	f.Add("\"q,uoted\",n\nv,1\n")
	f.Add("a,a\n1,2\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		r, err := ReadCSV("fuzz", strings.NewReader(src), nil)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := r.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted input failed to serialize: %v", err)
		}
		back, err := ReadCSV("fuzz", &buf, r.Schema())
		if err != nil {
			t.Fatalf("round trip failed: %v\ninput: %q\nwritten: %q", err, src, buf.String())
		}
		if back.Len() != r.Len() {
			t.Fatalf("round trip changed row count %d -> %d", r.Len(), back.Len())
		}
	})
}
