package relation

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// FuzzReadCSV feeds arbitrary bytes to the CSV loader with schema
// inference: it must never panic, and whatever it accepts must survive a
// write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,x\n2,y\n")
	f.Add("a\n\n")
	f.Add("h1,h2,h3\n1,2,3\n4,5,6\n")
	f.Add("\"q,uoted\",n\nv,1\n")
	f.Add("a,a\n1,2\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		r, err := ReadCSV("fuzz", strings.NewReader(src), nil)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := r.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted input failed to serialize: %v", err)
		}
		back, err := ReadCSV("fuzz", &buf, r.Schema())
		if err != nil {
			t.Fatalf("round trip failed: %v\ninput: %q\nwritten: %q", err, src, buf.String())
		}
		if back.Len() != r.Len() {
			t.Fatalf("round trip changed row count %d -> %d", r.Len(), back.Len())
		}
	})
}

// FuzzVectorizedSelect is the vectorized engine's equivalence fuzz: random
// schemas, random data (NaN, ±0, ±Inf included), random segment sizes, and
// random conjunct sets (empty IN lists, unknown attributes, type
// mismatches, NaN bounds) — the vectorized Select must return exactly the
// same row ids as the naive row-wise scan, cold and warm, with and without
// secondary indexes, and across mid-run appends that seal segments and
// force conjunct/projection/index extension.
func FuzzVectorizedSelect(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(50), false)
	f.Add(int64(2), uint8(1), uint8(0), true)
	f.Add(int64(3), uint8(4), uint8(200), true)
	f.Add(int64(-9), uint8(2), uint8(130), false)
	f.Fuzz(func(t *testing.T, seed int64, nAttrs, nRows uint8, buildIndex bool) {
		rng := rand.New(rand.NewSource(seed))
		// Segment size and mid-run appends draw from their own stream so the
		// main stream — and everything the checked-in corpus generates from
		// it — is untouched.
		segRng := rand.New(rand.NewSource(seed ^ 0x5e95e9))
		segSizes := []int{1, 2, 63, 64, 100, DefaultSegmentRows}
		attrs := make([]Attribute, 1+int(nAttrs)%4)
		names := []string{"Alpha", "beta", "GAMMA", "dElTa"}
		for i := range attrs {
			typ := Categorical
			if rng.Intn(2) == 0 {
				typ = Numeric
			}
			attrs[i] = Attribute{Name: names[i], Type: typ}
		}
		r := New("fuzz", MustSchema(attrs...))
		if err := r.SetSegmentRows(segSizes[segRng.Intn(len(segSizes))]); err != nil {
			t.Fatal(err)
		}
		catPalette := []string{"", "a", "b", "cc", "d'd", "Ee"}
		numPalette := []float64{0, math.Copysign(0, -1), 1, -1, 2.5, 1e9, -1e9,
			math.NaN(), math.Inf(1), math.Inf(-1), 41.99999999999999, 42}
		randTuple := func(rng *rand.Rand) Tuple {
			tup := make(Tuple, len(attrs))
			for j, a := range attrs {
				if a.Type == Categorical {
					tup[j] = StringValue(catPalette[rng.Intn(len(catPalette))])
				} else {
					tup[j] = NumberValue(numPalette[rng.Intn(len(numPalette))])
				}
			}
			return tup
		}
		for i := 0; i < int(nRows); i++ {
			r.MustAppend(randTuple(rng))
		}
		if buildIndex {
			if err := r.BuildIndex(); err != nil {
				t.Fatal(err)
			}
		}
		attrPool := append([]string{}, names[:len(attrs)]...)
		attrPool = append(attrPool, "missing")
		for trial := 0; trial < 10; trial++ {
			if trial > 0 && segRng.Intn(3) == 0 {
				// Mid-run appends: cached conjunct bitmaps, projections, and
				// indexes built by earlier trials must extend, and may cross a
				// seal boundary.
				for k := segRng.Intn(3) + 1; k > 0; k-- {
					r.MustAppend(randTuple(segRng))
				}
			}
			nConj := 1 + rng.Intn(4)
			conjs := make([]Predicate, 0, nConj)
			for c := 0; c < nConj; c++ {
				attr := attrPool[rng.Intn(len(attrPool))]
				if rng.Intn(2) == 0 {
					vals := make([]string, rng.Intn(4)) // may be empty
					for k := range vals {
						vals[k] = catPalette[rng.Intn(len(catPalette))]
					}
					conjs = append(conjs, NewIn(attr, vals...))
				} else {
					lo := numPalette[rng.Intn(len(numPalette))]
					hi := numPalette[rng.Intn(len(numPalette))]
					conjs = append(conjs, &Range{Attr: attr, Lo: lo, Hi: hi, HiInc: rng.Intn(2) == 0})
				}
			}
			var pred Predicate = NewAnd(conjs...)
			if len(conjs) == 1 && rng.Intn(2) == 0 {
				pred = conjs[0]
			}
			want := []int{}
			for i := 0; i < r.Len(); i++ {
				if pred.Matches(r.Schema(), r.Row(i)) {
					want = append(want, i)
				}
			}
			for pass := 0; pass < 2; pass++ { // cold, then conjunct-cache warm
				got, ok := r.vectorSelect(pred)
				if !ok {
					t.Fatalf("vectorSelect rejected supported predicate %v", pred)
				}
				if len(got) != len(want) {
					t.Fatalf("pass %d: %v: got %d rows, want %d\ngot:  %v\nwant: %v",
						pass, pred, len(got), len(want), got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("pass %d: %v: row %d = %d, want %d", pass, pred, i, got[i], want[i])
					}
				}
			}
		}
	})
}
