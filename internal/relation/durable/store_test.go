package durable

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/relation"
)

func TestRoundTrip(t *testing.T) {
	const n, segRows = 1000, 64
	dir := t.TempDir()
	st, err := Create(dir, testSchema(), Options{SegmentRows: segRows})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ingest(st, 0, n); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	mem := memRelation(t, n, segRows)
	assertStoreMatches(t, st2, mem, true)

	stats := st2.Stats()
	if want := n / segRows; stats.Segments != want {
		t.Errorf("segments = %d, want %d", stats.Segments, want)
	}
	if want := (n / segRows) * segRows; stats.SealedRows != want {
		t.Errorf("sealedRows = %d, want %d", stats.SealedRows, want)
	}
	if want := n % segRows; stats.TailRows != want {
		t.Errorf("tailRows = %d, want %d", stats.TailRows, want)
	}
	if stats.Degraded || stats.RecoveredTorn {
		t.Errorf("clean reopen reports degraded=%v torn=%v", stats.Degraded, stats.RecoveredTorn)
	}
	if stats.SyncPolicy != "batch" {
		t.Errorf("sync policy = %q, want batch", stats.SyncPolicy)
	}
}

// TestTrackedIngestMatchesUntracked pins that the relation-hook-driven
// spill (Create with Track) and the buffered-tail spill (untracked) produce
// byte-identical segment files and manifests — the on-disk format is a pure
// function of the row sequence.
func TestTrackedIngestMatchesUntracked(t *testing.T) {
	const n, segRows = 530, 32
	dirA, dirB := t.TempDir(), t.TempDir()

	stA, err := Create(dirA, testSchema(), Options{SegmentRows: segRows})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ingest(stA, 0, n); err != nil {
		t.Fatal(err)
	}
	if err := stA.Close(); err != nil {
		t.Fatal(err)
	}

	schema := testSchema()
	rel := relation.New("ListProperty", schema)
	stB, err := Create(dirB, schema, Options{SegmentRows: segRows, Track: rel})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ingest(stB, 0, n); err != nil {
		t.Fatal(err)
	}
	if rel.Len() != n {
		t.Fatalf("tracked relation has %d rows, want %d", rel.Len(), n)
	}
	if ss := rel.StorageStats(); ss.SealedRows != (n/segRows)*segRows {
		t.Fatalf("tracked relation sealed %d rows, want %d", ss.SealedRows, (n/segRows)*segRows)
	}
	if err := stB.Close(); err != nil {
		t.Fatal(err)
	}

	entsA, err := os.ReadDir(dirA)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entsA {
		a, err := os.ReadFile(filepath.Join(dirA, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, e.Name()))
		if err != nil {
			t.Fatalf("tracked ingest did not produce %s: %v", e.Name(), err)
		}
		if string(a) != string(b) {
			t.Errorf("%s differs between tracked and untracked ingest", e.Name())
		}
	}

	st2, err := Open(dirB, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	assertStoreMatches(t, st2, memRelation(t, n, segRows), false)
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncBatch, SyncNone} {
		t.Run(pol.String(), func(t *testing.T) {
			const n, segRows = 300, 64
			dir := t.TempDir()
			st, err := Create(dir, testSchema(), Options{SegmentRows: segRows, Sync: pol, SyncEvery: 10})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ingest(st, 0, n); err != nil {
				t.Fatal(err)
			}
			// Graceful close syncs regardless of policy: nothing is lost.
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			st2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			assertStoreMatches(t, st2, memRelation(t, n, segRows), false)
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"always": SyncAlways, "batch": SyncBatch, "": SyncBatch, "none": SyncNone, "NONE": SyncNone} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("ParseSyncPolicy accepted junk")
	}
}

func TestReopenAndContinueAppending(t *testing.T) {
	const segRows = 16
	dir := t.TempDir()
	st, err := Create(dir, testSchema(), Options{SegmentRows: segRows})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ingest(st, 0, 40); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ingest(st2, 40, 100); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	assertStoreMatches(t, st3, memRelation(t, 100, segRows), true)
}

func TestReadOnlyOpen(t *testing.T) {
	const segRows = 16
	dir := t.TempDir()
	st, err := Create(dir, testSchema(), Options{SegmentRows: segRows})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ingest(st, 0, 50); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the WAL tail; a read-only open must serve the intact prefix
	// without repairing the file.
	wal := dirFile(t, dir, "wal-")
	fi, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wal, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if err := st2.Append(testTuple(0)); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("read-only append: err = %v", err)
	}
	assertStoreMatches(t, st2, memRelation(t, 49, segRows), false)
	if !st2.Stats().RecoveredTorn {
		t.Error("torn tail not reported")
	}
	fi2, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if fi2.Size() != fi.Size()-3 {
		t.Errorf("read-only open modified the WAL: %d -> %d bytes", fi.Size()-3, fi2.Size())
	}
}

func TestCreateRefusesExistingStore(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, testSchema(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := Create(dir, testSchema(), Options{}); err == nil {
		t.Fatal("Create over an existing store succeeded")
	}
}

func TestOpenMissingStore(t *testing.T) {
	_, err := Open(t.TempDir(), Options{})
	if err == nil || !IsNotExist(err) {
		t.Fatalf("Open of empty dir: err = %v, want IsNotExist", err)
	}
}

// TestLazySelectLoadsOnlyReferencedColumns pins the out-of-core contract:
// a selective Select on a reopened store must not page in every column of
// every segment.
func TestLazySelectLoadsOnlyReferencedColumns(t *testing.T) {
	const n, segRows = 4096, 128
	dir := t.TempDir()
	st, err := Create(dir, testSchema(), Options{SegmentRows: segRows})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ingest(st, 0, n); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	// One conjunct, one attribute: at most one column page per surviving
	// segment may be loaded.
	pred := relation.NewClosedRange("price", 250000, 250000)
	mem := memRelation(t, n, segRows)
	got, err := st2.Select(pred)
	if err != nil {
		t.Fatal(err)
	}
	if want := mem.Select(pred); !sameInts(got, want) {
		t.Fatalf("select returned %d rows, want %d", len(got), len(want))
	}
	stats := st2.Stats()
	segs := n / segRows
	if stats.ColumnLoads > uint64(segs) {
		t.Errorf("one-attribute select loaded %d column pages over %d segments", stats.ColumnLoads, segs)
	}
	if stats.ColumnLoads == 0 {
		t.Error("select loaded no columns at all — it cannot have evaluated anything")
	}
	var diskBytes uint64
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if fi, err := e.Info(); err == nil {
			diskBytes += uint64(fi.Size())
		}
	}
	if stats.LoadedBytes*2 >= diskBytes {
		t.Errorf("selective select loaded %d of %d on-disk bytes", stats.LoadedBytes, diskBytes)
	}
}

// TestZonePruning pins that the persisted zone maps actually prune: a
// range matching no segment must touch no column pages.
func TestZonePruning(t *testing.T) {
	const n, segRows = 2048, 128
	dir := t.TempDir()
	st, err := Create(dir, testSchema(), Options{SegmentRows: segRows})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ingest(st, 0, n); err != nil {
		t.Fatal(err)
	}
	st.Close()
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	// bedrooms spans 1..6 in every segment; price cannot prune here because
	// the generator salts ±Inf rows into each segment's price column.
	got, err := st2.Select(relation.NewRange("bedrooms", 100, 200))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("impossible range matched %d rows", len(got))
	}
	stats := st2.Stats()
	if stats.ColumnLoads != 0 {
		t.Errorf("fully-prunable select loaded %d column pages", stats.ColumnLoads)
	}
	if stats.LazyPruned == 0 {
		t.Error("no segments recorded as zone-pruned")
	}
}

func TestAppendAfterFailureRejected(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, testSchema(), Options{SegmentRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Append(relation.Tuple{relation.StringValue("x")}); err == nil {
		t.Fatal("width-mismatched tuple accepted")
	}
	// Width errors are not failures; the store still works.
	if _, err := ingest(st, 0, 10); err != nil {
		t.Fatal(err)
	}
}
