package durable

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/resilience/faultinject"
)

// The manifest is the store's single source of truth: which segment files
// exist, in what order, and which WAL carries the tail. It is replaced —
// never edited — by the classic atomic protocol:
//
//	write MANIFEST.tmp (one checksummed page)
//	fsync MANIFEST.tmp
//	rename MANIFEST.tmp → MANIFEST
//	fsync the directory
//
// rename(2) is atomic on POSIX filesystems, so a reader (or a recovery
// after a crash at any of the four steps) sees either the complete old
// manifest or the complete new one. The fsync before the rename keeps the
// filesystem from reordering the rename ahead of the tmp file's data; the
// directory fsync makes the new name itself durable.
//
// Generations are dense and increasing; every seal bumps the generation and
// rotates the WAL, so wal-<generation>.log pairs with the manifest that
// references it and everything else in the directory is inert garbage.

const manifestName = "MANIFEST"

// segMeta is one spilled segment as recorded in the manifest.
type segMeta struct {
	File  string `json:"file"`
	Lo    int    `json:"lo"`
	Hi    int    `json:"hi"`
	Bytes int64  `json:"bytes"`
}

// manifest is the MANIFEST payload.
type manifest struct {
	Magic       string     `json:"magic"`
	Generation  uint64     `json:"generation"`
	SegmentRows int        `json:"segmentRows"`
	Schema      []attrMeta `json:"schema"`
	Segments    []segMeta  `json:"segments"`
	WAL         string     `json:"wal"`
	WALAfter    int        `json:"walAfterRows"`
}

const manifestMagic = "DMAN1"

// writeManifest atomically replaces the store's MANIFEST with m.
func (s *Store) writeManifest(ctx context.Context, m *manifest) error {
	if err := faultinject.Inject(ctx, faultinject.SiteDurableManifest); err != nil {
		return err
	}
	payload, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := s.writeAll(ctx, f, framePage(nil, payload)); err != nil {
		f.Close()
		return err
	}
	if err := s.fsyncFile(ctx, f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		return err
	}
	return s.fsyncDir(ctx, s.dir)
}

// readManifest loads and validates the MANIFEST in dir. os.ErrNotExist
// means the directory holds no store; a torn or corrupt manifest is an
// error — the rename protocol guarantees a crash cannot produce one, so its
// presence means external damage to the one file that locates everything
// else, and guessing would present data loss as an empty store.
func readManifest(dir string) (*manifest, error) {
	f, err := os.Open(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	payload, err := readPage(f)
	if err != nil {
		return nil, fmt.Errorf("durable: manifest unreadable: %w", errOrTorn(err))
	}
	var m manifest
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("durable: manifest unreadable: %w: %v", ErrCorrupt, err)
	}
	if m.Magic != manifestMagic {
		return nil, fmt.Errorf("durable: manifest unreadable: %w: magic %q", ErrCorrupt, m.Magic)
	}
	if m.SegmentRows < 1 || m.WAL == "" || len(m.Schema) == 0 {
		return nil, fmt.Errorf("durable: manifest unreadable: %w: incomplete fields", ErrCorrupt)
	}
	hi := 0
	for _, sm := range m.Segments {
		if sm.Lo != hi || sm.Hi <= sm.Lo {
			return nil, fmt.Errorf("durable: manifest unreadable: %w: segment %q spans [%d,%d) after %d", ErrCorrupt, sm.File, sm.Lo, sm.Hi, hi)
		}
		hi = sm.Hi
	}
	if m.WALAfter != hi {
		return nil, fmt.Errorf("durable: manifest unreadable: %w: WAL afterRows %d, segments cover %d", ErrCorrupt, m.WALAfter, hi)
	}
	return &m, nil
}

// IsNotExist reports whether err from Open means "no store here" (no
// manifest in the directory) — the signal for first-boot callers to Create
// instead.
func IsNotExist(err error) bool { return errors.Is(err, os.ErrNotExist) }
