package durable

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/relation"
)

// The write-ahead log protects the active tail: rows appended since the
// last seal. Each manifest generation owns exactly one WAL file,
// wal-<generation>.log, whose header page records the generation, the
// schema, and afterRows — the number of sealed rows the log's records come
// after. Every Append writes one framed record (the tuple codec of
// format.go) before the row is acknowledged; the sync policy decides when
// fsync makes it durable.
//
// A seal rotates the WAL: the fresh log (afterRows = new sealed high-water
// mark) is created and fsynced *before* the manifest flips to reference it,
// so a crash between the two leaves the old manifest + old WAL — a complete,
// consistent view. The superseded log becomes garbage, deleted best-effort
// and ignored by recovery.
//
// Replay reads records until the first torn or corrupt page and stops
// there: a torn final record is the normal crash signature (the row was
// never acknowledged under SyncAlways), and anything after a bad page is
// unordered noise. Recovery reports the byte offset of the last good record
// so a writable Open can truncate the tear off and keep appending.

const walMagic = "DWAL1"

// walHeader is the header page payload of a WAL file.
type walHeader struct {
	Magic      string     `json:"magic"`
	Generation uint64     `json:"generation"`
	AfterRows  int        `json:"afterRows"`
	Schema     []attrMeta `json:"schema"`
}

func walName(gen uint64) string { return fmt.Sprintf("wal-%010d.log", gen) }

// walWriter is the open, appendable log for the store's current generation.
type walWriter struct {
	f         *os.File
	name      string // basename within the store directory
	afterRows int
	unsynced  int // acknowledged appends not yet covered by an fsync
}

// createWAL writes a fresh log with its header page and makes it durable
// (header fsynced, directory entry fsynced) before returning: the manifest
// that will reference it must never win the race against its creation.
func (s *Store) createWAL(ctx context.Context, gen uint64, afterRows int) (*walWriter, error) {
	name := walName(gen)
	path := filepath.Join(s.dir, name)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	hdr, err := json.Marshal(walHeader{
		Magic:      walMagic,
		Generation: gen,
		AfterRows:  afterRows,
		Schema:     schemaMeta(s.schema),
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := s.writeAll(ctx, f, framePage(nil, hdr)); err != nil {
		f.Close()
		return nil, err
	}
	if err := s.fsyncFile(ctx, f); err != nil {
		f.Close()
		return nil, err
	}
	if err := s.fsyncDir(ctx, s.dir); err != nil {
		f.Close()
		return nil, err
	}
	return &walWriter{f: f, name: name, afterRows: afterRows}, nil
}

// append writes one row record. The caller (Store.Append) holds the store
// mutex and applies the sync policy afterwards.
func (s *Store) walAppend(ctx context.Context, w *walWriter, t relation.Tuple) error {
	rec := framePage(nil, appendTuple(nil, s.schema, t))
	if err := s.writeAll(ctx, w.f, rec); err != nil {
		return err
	}
	w.unsynced++
	s.walRecords.Add(1)
	return nil
}

// walSync applies the sync policy to the log's unsynced records. force
// makes it unconditional (seal, Sync, Close).
func (s *Store) walSync(ctx context.Context, w *walWriter, force bool) error {
	if w.unsynced == 0 {
		return nil
	}
	switch {
	case force, s.opts.Sync == SyncAlways:
	case s.opts.Sync == SyncBatch && w.unsynced >= s.opts.SyncEvery:
	default:
		return nil
	}
	if err := s.fsyncFile(ctx, w.f); err != nil {
		return err
	}
	w.unsynced = 0
	return nil
}

// replayWAL reads the log at path and returns the rows of every intact
// record, in order. good is the byte offset just past the last intact page
// (header included) — the truncation point for tail repair. torn reports
// whether anything (torn or corrupt) was cut off after it. A missing,
// empty, or header-damaged file replays as zero rows with good == 0: the
// tail is simply gone, which for a zero-length WAL (crash between file
// creation and header write... impossible here since createWAL fsyncs, but
// reachable via external truncation) is the correct, empty answer.
func replayWAL(path string, schema *relation.Schema, wantGen uint64, wantAfter int) (rows []relation.Tuple, good int64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, 0, true, nil
		}
		return nil, 0, false, err
	}
	defer f.Close()

	r := &countingReader{r: bufio.NewReader(f)}
	hdrPayload, err := readPage(r)
	if err != nil {
		// io.EOF (zero-length file), ErrTorn, ErrCorrupt: no usable header,
		// no usable records. Not an Open error — the tail is empty.
		return nil, 0, true, nil
	}
	var hdr walHeader
	if err := json.Unmarshal(hdrPayload, &hdr); err != nil || hdr.Magic != walMagic {
		return nil, 0, true, nil
	}
	if hdr.Generation != wantGen || hdr.AfterRows != wantAfter || !sameSchema(hdr.Schema, schemaMeta(schema)) {
		return nil, 0, false, fmt.Errorf("durable: WAL header (gen %d, afterRows %d) does not match manifest (gen %d, afterRows %d)",
			hdr.Generation, hdr.AfterRows, wantGen, wantAfter)
	}
	good = r.n
	for {
		payload, err := readPage(r)
		if err == io.EOF {
			return rows, good, false, nil
		}
		if err != nil {
			// Torn or corrupt record: replay stops at the last good one.
			return rows, good, true, nil
		}
		t, err := decodeTuple(payload, schema)
		if err != nil {
			// The page checksummed clean but decodes wrong — only possible
			// if a correctly-framed foreign page landed here. Treat as the
			// end of the intact prefix, like a corrupt page.
			return rows, good, true, nil
		}
		rows = append(rows, t)
		good = r.n
	}
}

// countingReader tracks the byte offset of an io.Reader, so replay can name
// the truncation point.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
