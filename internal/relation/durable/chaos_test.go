package durable

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/relation"
	"repro/internal/resilience/faultinject"
)

// The crash-recovery chaos suite: count a clean ingest's I/O operations at
// every durable fault site, then replay the ingest once per operation with
// a rule that kills it exactly there (alternating plain EIO and torn
// ShortWrite), recover, and hold the recovered store to the full
// equivalence contract against the in-memory prefix. `make crashchaos`
// runs this under -race with the CRASHCHAOS scale tests enabled.

var errBoom = errors.New("injected crash")

// chaosSites are the sites an *ingest* reaches; durable.recover only fires
// inside Open and gets its own double-crash coverage (recovery_test.go and
// the sampled sweep below).
var chaosSites = []string{
	faultinject.SiteDurableWrite,
	faultinject.SiteDurableFsync,
	faultinject.SiteDurableManifest,
}

// cleanHits ingests rows [0, total) cleanly and returns each site's hit
// count — the number of distinct crash points the chaos loop must cover.
func cleanHits(t *testing.T, total, segRows int, sync SyncPolicy) map[string]uint64 {
	t.Helper()
	inj := faultinject.New(1)
	restore := faultinject.Activate(inj)
	defer restore()
	st, err := Create(t.TempDir(), testSchema(), Options{SegmentRows: segRows, Sync: sync})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ingest(st, 0, total); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	hits := make(map[string]uint64)
	for _, site := range chaosSites {
		hits[site] = inj.Hits(site)
		if hits[site] == 0 {
			t.Fatalf("clean ingest never reached %s — the chaos loop would cover nothing", site)
		}
	}
	return hits
}

// crashAt replays the ingest with a rule killing the k-th operation at
// site, recovers, and asserts the contract. checkTrees gates the (heavier)
// category-tree equivalence.
func crashAt(t *testing.T, site string, k uint64, shortWrite bool, total, segRows int, sync SyncPolicy, syncEvery int, checkTrees bool) {
	t.Helper()
	dir := t.TempDir()
	inj := faultinject.New(int64(7 + k))
	inj.Set(site, faultinject.Rule{Err: errBoom, SkipFirst: k, ShortWrite: shortWrite})
	restore := faultinject.Activate(inj)

	acked := 0
	st, err := Create(dir, testSchema(), Options{SegmentRows: segRows, Sync: sync, SyncEvery: syncEvery})
	if err == nil {
		var ierr error
		acked, ierr = ingest(st, 0, total)
		if ierr == nil {
			// The k-th operation lands in Close; everything was acked.
			st.Close()
		}
		st.Abandon()
	}
	restore()

	st2, err := Open(dir, Options{})
	if err != nil {
		if IsNotExist(err) && acked == 0 {
			return // crashed before the store came into existence
		}
		t.Fatalf("site %s k=%d short=%v: recovery failed: %v", site, k, shortWrite, err)
	}
	defer st2.Close()
	stats := st2.Stats()
	got := stats.SealedRows + stats.TailRows
	if got > total {
		t.Fatalf("site %s k=%d: recovered %d rows, only %d ever appended", site, k, got, total)
	}
	floor := acked
	if sync == SyncBatch {
		floor = acked - syncEvery
	}
	if got < floor {
		t.Fatalf("site %s k=%d short=%v: recovered %d rows, %d acknowledged (floor %d)", site, k, shortWrite, got, acked, floor)
	}
	assertStoreMatches(t, st2, memRelation(t, got, segRows), checkTrees)
}

func TestCrashChaosKillAtEveryPoint(t *testing.T) {
	const total, segRows = 120, 16
	hits := cleanHits(t, total, segRows, SyncAlways)
	for _, site := range chaosSites {
		site := site
		t.Run(site, func(t *testing.T) {
			for k := uint64(0); k < hits[site]; k++ {
				// Alternate plain errors with torn writes; verify trees at
				// every 7th point and at the first and last.
				shortWrite := site == faultinject.SiteDurableWrite && k%2 == 1
				trees := k%7 == 0 || k == hits[site]-1
				crashAt(t, site, k, shortWrite, total, segRows, SyncAlways, 0, trees)
			}
		})
	}
}

// TestCrashChaosRecoverCrash kills recovery itself at every durable.recover
// point after a torn-ingest crash, then recovers cleanly — the double-crash
// sweep.
func TestCrashChaosRecoverCrash(t *testing.T) {
	const total, segRows = 90, 16
	for _, tearKind := range []bool{false, true} {
		dir := t.TempDir()
		inj := faultinject.New(3)
		inj.Set(faultinject.SiteDurableWrite, faultinject.Rule{Err: errBoom, ShortWrite: tearKind, SkipFirst: 60})
		restore := faultinject.Activate(inj)
		st, err := Create(dir, testSchema(), Options{SegmentRows: segRows, Sync: SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		acked, ierr := ingest(st, 0, total)
		if ierr == nil {
			t.Fatal("ingest survived the injected crash")
		}
		st.Abandon()
		restore()

		for k := uint64(0); k < 3; k++ {
			inj := faultinject.New(int64(17 + k))
			inj.Set(faultinject.SiteDurableRecover, faultinject.Rule{Err: errBoom, SkipFirst: k})
			restore := faultinject.Activate(inj)
			_, err := Open(dir, Options{})
			restore()
			if err != nil && !errors.Is(err, errBoom) {
				t.Fatalf("recover crash k=%d: unexpected error %v", k, err)
			}
		}
		st2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("final recovery: %v", err)
		}
		stats := st2.Stats()
		got := stats.SealedRows + stats.TailRows
		if got < acked {
			t.Fatalf("recovered %d rows, %d acknowledged", got, acked)
		}
		assertStoreMatches(t, st2, memRelation(t, got, segRows), true)
		st2.Close()
	}
}

// TestCrashChaosTruncationSweep covers page-cache-loss shapes fault
// injection cannot: the WAL truncated at every byte offset. Every
// truncation must open (read-only, so the seeded directory survives the
// sweep) to an exact prefix of the ingested rows.
func TestCrashChaosTruncationSweep(t *testing.T) {
	const total, segRows = 70, 16
	dir := t.TempDir()
	seedStore(t, dir, total, segRows)
	wal := dirFile(t, dir, "wal-")
	orig, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	sealed := (total / segRows) * segRows
	prevRows := -1
	for cut := len(orig); cut >= 0; cut-- {
		if err := os.WriteFile(wal, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir, Options{ReadOnly: true})
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		stats := st.Stats()
		got := stats.SealedRows + stats.TailRows
		if got < sealed || got > total {
			t.Fatalf("cut=%d: %d rows outside [%d,%d]", cut, got, sealed, total)
		}
		if prevRows >= 0 && got > prevRows {
			t.Fatalf("cut=%d: shrinking the WAL grew the tail (%d -> %d rows)", cut, prevRows, got)
		}
		prevRows = got
		// Full equivalence on a sample; row-count monotonicity everywhere.
		if cut%25 == 0 {
			assertStoreMatches(t, st, memRelation(t, got, segRows), false)
		}
		st.Close()
	}
	if prevRows != sealed {
		t.Fatalf("empty WAL recovered %d rows, want the sealed %d", prevRows, sealed)
	}
}

// TestCrashChaosSegmentTruncationSweep truncates a sealed segment file at
// sampled offsets: every cut must quarantine that segment (size mismatch
// at Open) and serve the surviving rows.
func TestCrashChaosSegmentTruncationSweep(t *testing.T) {
	const total, segRows = 80, 16
	dir := t.TempDir()
	seedStore(t, dir, total, segRows)
	seg := segFileName(segRows, 2*segRows)
	orig, err := os.ReadFile(dirFile(t, dir, seg))
	if err != nil {
		t.Fatal(err)
	}
	mem := memRelation(t, total, segRows)
	for cut := 0; cut < len(orig); cut += 97 {
		if err := os.WriteFile(dirFile(t, dir, seg), orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir, Options{ReadOnly: true})
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if !st.Degraded() {
			t.Fatalf("cut=%d: truncated segment not quarantined", cut)
		}
		rel, err := st.Relation("ListProperty")
		if err != nil {
			t.Fatal(err)
		}
		if want := total - segRows; rel.Len() != want {
			t.Fatalf("cut=%d: %d surviving rows, want %d", cut, rel.Len(), want)
		}
		for i := 0; i < rel.Len(); i++ {
			j := i
			if i >= segRows {
				j = i + segRows
			}
			if !sameTuple(rel.Row(i), mem.Row(j)) {
				t.Fatalf("cut=%d: surviving row %d != reference row %d", cut, i, j)
			}
		}
		st.Close()
	}
	if err := os.WriteFile(dirFile(t, dir, seg), orig, 0o644); err != nil {
		t.Fatal(err)
	}
}

// canonicalWAL builds one WAL file's bytes (plus its expected rows) for the
// fuzz target, once.
var canonicalWAL struct {
	once  sync.Once
	bytes []byte
	rows  int
	gen   uint64
	after int
}

func canonicalWALBytes(tb testing.TB) ([]byte, int) {
	canonicalWAL.once.Do(func() {
		dir, err := os.MkdirTemp("", "durable-fuzz")
		if err != nil {
			tb.Fatal(err)
		}
		defer os.RemoveAll(dir)
		st, err := Create(dir, testSchema(), Options{SegmentRows: 1 << 20})
		if err != nil {
			tb.Fatal(err)
		}
		const n = 40
		if _, err := ingest(st, 0, n); err != nil {
			tb.Fatal(err)
		}
		if err := st.Close(); err != nil {
			tb.Fatal(err)
		}
		b, err := os.ReadFile(dirFile(tb, dir, "wal-"))
		if err != nil {
			tb.Fatal(err)
		}
		canonicalWAL.bytes, canonicalWAL.rows = b, n
		canonicalWAL.gen, canonicalWAL.after = 1, 0
	})
	return canonicalWAL.bytes, canonicalWAL.rows
}

// FuzzWALReplay mutates a real WAL (truncation + byte flip) and holds
// replay to its contract: never panic, never error, and every returned row
// is an exact prefix of the original sequence.
func FuzzWALReplay(f *testing.F) {
	orig, _ := canonicalWALBytes(f)
	f.Add(uint16(len(orig)), uint16(0), byte(0))
	f.Add(uint16(0), uint16(0), byte(1))
	f.Add(uint16(len(orig)/2), uint16(10), byte(0x80))
	f.Fuzz(func(t *testing.T, cut, flipOff uint16, flipMask byte) {
		orig, n := canonicalWALBytes(t)
		b := append([]byte(nil), orig...)
		if int(cut) < len(b) {
			b = b[:cut]
		}
		if len(b) > 0 {
			b[int(flipOff)%len(b)] ^= flipMask
		}
		path := t.TempDir() + "/wal-fuzz.log"
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		rows, good, _, err := replayWAL(path, testSchema(), canonicalWAL.gen, canonicalWAL.after)
		if err != nil {
			// Only a header/manifest mismatch errors, and that needs the
			// flip to forge a consistent header — fine either way, as long
			// as it is an error and not a panic.
			return
		}
		if len(rows) > n {
			t.Fatalf("replay invented rows: %d > %d", len(rows), n)
		}
		if good > int64(len(b)) {
			t.Fatalf("good offset %d past file end %d", good, len(b))
		}
		for i, r := range rows {
			if !sameTuple(r, testTuple(i)) {
				// A flip can only corrupt one record, and its checksum must
				// catch it; surviving rows must be the exact prefix.
				t.Fatalf("replayed row %d differs from the ingested sequence", i)
			}
		}
	})
}

// FuzzTupleCodec round-trips arbitrary cell contents through the WAL
// record codec.
func FuzzTupleCodec(f *testing.F) {
	f.Add("a", 1.5, 2.0, "b")
	f.Add("", 0.0, -0.0, "\x00\xff")
	f.Fuzz(func(t *testing.T, s1 string, n1, n2 float64, s2 string) {
		schema := testSchema()
		in := relation.Tuple{
			relation.StringValue(s1), relation.NumberValue(n1),
			relation.NumberValue(n2), relation.StringValue(s2),
		}
		out, err := decodeTuple(appendTuple(nil, schema, in), schema)
		if err != nil {
			t.Fatalf("roundtrip: %v", err)
		}
		if !sameTuple(in, out) {
			t.Fatalf("roundtrip changed the tuple: %v -> %v", in, out)
		}
	})
}

// --- CRASHCHAOS-gated scale tests (make crashchaos) ---

func requireCrashChaos(t *testing.T) {
	if os.Getenv("CRASHCHAOS") == "" {
		t.Skip("scale test: set CRASHCHAOS=1 (make crashchaos)")
	}
}

// TestCrashChaosScale100k is the acceptance-scale sweep: a 100k-row
// streamed ingest killed at crash points sampled across every durable
// site's full hit range, recovered and verified each time.
func TestCrashChaosScale100k(t *testing.T) {
	requireCrashChaos(t)
	const total, segRows, syncEvery = 100_000, relation.DefaultSegmentRows, 256
	hits := cleanHits(t, total, segRows, SyncBatch)
	const samples = 12
	for _, site := range chaosSites {
		site := site
		t.Run(site, func(t *testing.T) {
			n := hits[site]
			for i := uint64(0); i < samples; i++ {
				k := i * (n - 1) / (samples - 1)
				shortWrite := site == faultinject.SiteDurableWrite && i%2 == 1
				crashAt(t, site, k, shortWrite, total, segRows, SyncBatch, syncEvery, i == samples-1)
			}
		})
	}
}

// scaleTuple generates the 1.7M-row dataset with price correlated to the
// row index, so zone maps genuinely prune a selective range.
func scaleTuple(i int) relation.Tuple {
	return relation.Tuple{
		relation.StringValue(testHoods[i%len(testHoods)]),
		relation.NumberValue(100000 + float64(i)),
		relation.NumberValue(float64(1 + i%6)),
		relation.StringValue(testTypes[i%3]),
	}
}

// TestScaleLazySelect1M7 pins the out-of-core read path: a reopened
// 1.7M-row spilled dataset answers a selective Select touching only the
// zone-surviving segments' referenced column pages — a small fraction of
// the bytes on disk.
func TestScaleLazySelect1M7(t *testing.T) {
	requireCrashChaos(t)
	const total, segRows = 1_700_000, relation.DefaultSegmentRows
	dir := t.TempDir()
	st, err := Create(dir, testSchema(), Options{SegmentRows: segRows, Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		if err := st.Append(scaleTuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	// price = 100000 + i: this range selects exactly rows [500000, 520000).
	pred := relation.NewRange("price", 600000, 620000)
	got, err := st2.Select(pred)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20000 || got[0] != 500000 || got[len(got)-1] != 519999 {
		t.Fatalf("selective select: %d rows [%d..%d], want 20000 [500000..519999]",
			len(got), got[0], got[len(got)-1])
	}
	stats := st2.Stats()
	var diskBytes uint64
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if fi, err := e.Info(); err == nil {
			diskBytes += uint64(fi.Size())
		}
	}
	if stats.LoadedBytes*10 > diskBytes {
		t.Errorf("selective select loaded %d of %d on-disk bytes (want <10%%)", stats.LoadedBytes, diskBytes)
	}
	segs := total / segRows
	if stats.LazyPruned < uint64(segs)*9/10 {
		t.Errorf("only %d of %d segments zone-pruned", stats.LazyPruned, segs)
	}
	t.Logf("1.7M-row lazy select: %d/%d segments pruned, %s of %s loaded",
		stats.LazyScanned, segs, fmtBytes(stats.LoadedBytes), fmtBytes(diskBytes))
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
