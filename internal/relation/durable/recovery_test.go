package durable

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/resilience/faultinject"
)

// The recovery edge cases the tentpole names explicitly: zero-length WAL,
// torn final record, bit-flipped segment page, manifest pointing at a
// missing file, and a double crash during recovery itself. Each must
// either recover cleanly or degrade with the quarantined range reported —
// never refuse to start, never serve wrong rows.

// seedStore ingests rows [0, n) at segRows and closes cleanly.
func seedStore(t *testing.T, dir string, n, segRows int) {
	t.Helper()
	st, err := Create(dir, testSchema(), Options{SegmentRows: segRows})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ingest(st, 0, n); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryZeroLengthWAL(t *testing.T) {
	const n, segRows = 50, 16
	dir := t.TempDir()
	seedStore(t, dir, n, segRows)
	if err := os.Truncate(dirFile(t, dir, "wal-"), 0); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("zero-length WAL must not fail Open: %v", err)
	}
	// The tail (rows past the last seal) is gone; the sealed prefix serves.
	assertStoreMatches(t, st, memRelation(t, (n/segRows)*segRows, segRows), false)
	stats := st.Stats()
	if !stats.RecoveredTorn || stats.RecoveredTailRows != 0 {
		t.Errorf("stats = torn:%v tail:%d, want torn:true tail:0", stats.RecoveredTorn, stats.RecoveredTailRows)
	}
	// The writable open rotated to a fresh, appendable log.
	if _, err := ingest(st, (n/segRows)*segRows, n); err != nil {
		t.Fatalf("append after zero-length-WAL recovery: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	assertStoreMatches(t, st2, memRelation(t, n, segRows), true)
}

func TestRecoveryTornFinalRecord(t *testing.T) {
	const n, segRows = 53, 16
	dir := t.TempDir()
	seedStore(t, dir, n, segRows)
	wal := dirFile(t, dir, "wal-")
	fi, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wal, fi.Size()-1); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("torn final record must not fail Open: %v", err)
	}
	assertStoreMatches(t, st, memRelation(t, n-1, segRows), false)
	if !st.Stats().RecoveredTorn {
		t.Error("torn tail not reported")
	}
	// Repair truncated the tear; appending continues from row n-1.
	if _, err := ingest(st, n-1, n+10); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	assertStoreMatches(t, st2, memRelation(t, n+10, segRows), false)
}

func TestRecoveryBitFlippedSegmentPage(t *testing.T) {
	const n, segRows = 100, 16
	dir := t.TempDir()
	seedStore(t, dir, n, segRows)
	// Flip a byte near the end of the second segment file: a column page,
	// not the header — quarantine must happen lazily, on first map-in.
	corrupt(t, filepath.Join(dir, segFileName(segRows, 2*segRows)), -2)

	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("bit-flipped segment must not fail Open: %v", err)
	}
	defer st.Close()
	if st.Degraded() {
		t.Fatal("column-page damage detected before any page was mapped in")
	}
	rel, err := st.Relation("ListProperty")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Degraded() {
		t.Fatal("corrupt column page not quarantined on map-in")
	}
	// Surviving rows: all but the quarantined segment's span.
	mem := memRelation(t, n, segRows)
	wantLen := n - segRows
	if rel.Len() != wantLen {
		t.Fatalf("surviving relation has %d rows, want %d", rel.Len(), wantLen)
	}
	for i := 0; i < rel.Len(); i++ {
		j := i
		if i >= segRows {
			j = i + segRows // skip the quarantined span in the reference
		}
		if !sameTuple(rel.Row(i), mem.Row(j)) {
			t.Fatalf("surviving row %d != reference row %d", i, j)
		}
	}
	q := st.Quarantined()
	if len(q) != 1 || q[0].Lo != segRows || q[0].Hi != 2*segRows {
		t.Fatalf("quarantine records = %+v, want one spanning [%d,%d)", q, segRows, 2*segRows)
	}
	if !strings.Contains(q[0].Reason, "checksum") && !strings.Contains(q[0].Reason, "corrupt") {
		t.Errorf("quarantine reason %q does not name the corruption", q[0].Reason)
	}
	stats := st.Stats()
	if !stats.Degraded || stats.QuarantinedRows != segRows {
		t.Errorf("stats degraded=%v quarantinedRows=%d, want true/%d", stats.Degraded, stats.QuarantinedRows, segRows)
	}
}

func TestRecoveryBitFlippedSegmentHeader(t *testing.T) {
	const n, segRows = 64, 16
	dir := t.TempDir()
	seedStore(t, dir, n, segRows)
	// Byte 6 sits inside the header page payload: quarantined eagerly at Open.
	corrupt(t, filepath.Join(dir, segFileName(0, segRows)), 6)
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("bit-flipped header must not fail Open: %v", err)
	}
	defer st.Close()
	if !st.Degraded() {
		t.Fatal("corrupt header not quarantined at Open")
	}
	rel, err := st.Relation("ListProperty")
	if err != nil {
		t.Fatal(err)
	}
	if want := n - segRows; rel.Len() != want {
		t.Fatalf("surviving relation has %d rows, want %d", rel.Len(), want)
	}
}

func TestRecoveryManifestPointsAtMissingFile(t *testing.T) {
	const n, segRows = 100, 16
	dir := t.TempDir()
	seedStore(t, dir, n, segRows)
	missing := segFileName(2*segRows, 3*segRows)
	if err := os.Remove(filepath.Join(dir, missing)); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("missing segment file must not fail Open: %v", err)
	}
	defer st.Close()
	q := st.Quarantined()
	if len(q) != 1 || q[0].File != missing || !strings.Contains(q[0].Reason, "missing") {
		t.Fatalf("quarantine records = %+v, want one naming %s as missing", q, missing)
	}
	rel, err := st.Relation("ListProperty")
	if err != nil {
		t.Fatal(err)
	}
	if want := n - segRows; rel.Len() != want {
		t.Fatalf("surviving relation has %d rows, want %d", rel.Len(), want)
	}
}

func TestRecoveryCorruptManifestIsAnError(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 40, 16)
	corrupt(t, filepath.Join(dir, manifestName), 10)
	_, err := Open(dir, Options{})
	if err == nil {
		t.Fatal("Open accepted a corrupt manifest")
	}
	if !errors.Is(err, ErrCorrupt) && !strings.Contains(err.Error(), "manifest") {
		t.Errorf("error %v does not identify the manifest", err)
	}
}

func TestRecoveryMissingWAL(t *testing.T) {
	const n, segRows = 40, 16
	dir := t.TempDir()
	seedStore(t, dir, n, segRows)
	if err := os.Remove(dirFile(t, dir, "wal-")); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("missing WAL must not fail Open: %v", err)
	}
	defer st.Close()
	assertStoreMatches(t, st, memRelation(t, (n/segRows)*segRows, segRows), false)
}

// TestRecoveryDoubleCrash crashes an ingest with a torn write, then
// crashes recovery itself (at both durable.recover fire points), then
// recovers for real. No attempt may lose acknowledged rows or serve a
// non-prefix.
func TestRecoveryDoubleCrash(t *testing.T) {
	const segRows = 16
	dir := t.TempDir()
	boom := errors.New("injected crash")

	// Crash the ingest mid-WAL-record at append #41's write.
	inj := faultinject.New(11)
	inj.Set(faultinject.SiteDurableWrite, faultinject.Rule{Err: boom, ShortWrite: true, SkipFirst: walWriteHitsBefore(t, 41, segRows)})
	restore := faultinject.Activate(inj)
	st, err := Create(dir, testSchema(), Options{SegmentRows: segRows, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	acked, err := ingest(st, 0, 1000)
	if err == nil {
		t.Fatal("ingest survived the injected crash")
	}
	st.Abandon()
	restore()

	// Crash recovery itself at each of its fire points, twice over.
	for k := uint64(0); k < 2; k++ {
		inj := faultinject.New(13)
		inj.Set(faultinject.SiteDurableRecover, faultinject.Rule{Err: boom, SkipFirst: k})
		restore := faultinject.Activate(inj)
		_, err := Open(dir, Options{})
		restore()
		if err == nil {
			// Only the torn-tail repair point exists when the tear landed
			// exactly on a record boundary; a successful open is fine then.
			continue
		}
		if !errors.Is(err, boom) {
			t.Fatalf("recovery crash %d: unexpected error %v", k, err)
		}
	}

	// Third attempt: clean. Everything acknowledged must be there.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("final recovery failed: %v", err)
	}
	defer st2.Close()
	got := st2.Stats().SealedRows + st2.Stats().TailRows
	if got < acked {
		t.Fatalf("recovered %d rows, %d were acknowledged under SyncAlways", got, acked)
	}
	assertStoreMatches(t, st2, memRelation(t, got, segRows), true)
}

// walWriteHitsBefore counts durable.write hits a clean ingest of n appends
// makes before append #n's own WAL record write, so tests can target it.
func walWriteHitsBefore(t *testing.T, n, segRows int) uint64 {
	t.Helper()
	inj := faultinject.New(1)
	restore := faultinject.Activate(inj)
	defer restore()
	dir := t.TempDir()
	st, err := Create(dir, testSchema(), Options{SegmentRows: segRows, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ingest(st, 0, n-1); err != nil {
		t.Fatal(err)
	}
	hits := inj.Hits(faultinject.SiteDurableWrite)
	st.Abandon()
	return hits
}
