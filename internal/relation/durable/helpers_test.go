package durable

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/category"
	"repro/internal/relation"
	"repro/internal/workload"
)

// The durable tests drive everything through one deterministic row
// generator so every assertion reduces to "the recovered store equals the
// in-memory relation built from rows [0, n)". The generator deliberately
// hits the codec's edge cases on a fixed cadence: NaN and ±Inf prices,
// negative zero, empty strings, and multi-byte values.

func testSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Attribute{Name: "neighborhood", Type: relation.Categorical},
		relation.Attribute{Name: "price", Type: relation.Numeric},
		relation.Attribute{Name: "bedrooms", Type: relation.Numeric},
		relation.Attribute{Name: "propertytype", Type: relation.Categorical},
	)
}

var testHoods = []string{"Bellevue, WA", "Redmond, WA", "Seattle, WA", "Issaquah, WA", "Kirkland, WA"}
var testTypes = []string{"Single Family", "Condo", "Townhouse", "", "Ünïcodé 'quoted'"}

// testTuple is row i of the canonical test dataset.
func testTuple(i int) relation.Tuple {
	price := 200000 + float64((i*7919)%20)*5000
	switch {
	case i%97 == 43:
		price = math.NaN()
	case i%89 == 21:
		price = math.Inf(1)
	case i%83 == 11:
		price = math.Inf(-1)
	case i%79 == 5:
		price = math.Copysign(0, -1)
	}
	return relation.Tuple{
		relation.StringValue(testHoods[(i*31)%len(testHoods)]),
		relation.NumberValue(price),
		relation.NumberValue(float64(1 + (i*13)%6)),
		relation.StringValue(testTypes[(i*17)%len(testTypes)]),
	}
}

// memRelation builds the in-memory reference for rows [0, n).
func memRelation(tb testing.TB, n, segRows int) *relation.Relation {
	tb.Helper()
	r := relation.New("ListProperty", testSchema())
	if err := r.SetSegmentRows(segRows); err != nil {
		tb.Fatal(err)
	}
	r.Grow(n)
	for i := 0; i < n; i++ {
		r.MustAppend(testTuple(i))
	}
	return r
}

// testPredicates is the equivalence battery: membership, half-open and
// closed ranges, conjunctions, NaN bounds, unknown and mistyped attributes.
func testPredicates() []relation.Predicate {
	return []relation.Predicate{
		nil,
		relation.True{},
		relation.NewIn("neighborhood", "Bellevue, WA", "Seattle, WA"),
		relation.NewIn("propertytype", ""),
		relation.NewIn("propertytype", "Condo", "no-such-type"),
		relation.NewIn("neighborhood"),
		relation.NewRange("price", 225000, 260000),
		relation.NewClosedRange("price", 250000, 250000),
		relation.NewRange("price", math.Inf(-1), math.Inf(1)),
		relation.NewClosedRange("price", math.Inf(-1), math.Inf(1)),
		relation.NewRange("bedrooms", 2, 4),
		relation.NewRange("price", math.NaN(), 250000),
		relation.NewRange("price", 200000, math.NaN()),
		relation.NewClosedRange("price", -1, math.Copysign(0, -1)),
		relation.NewAnd(
			relation.NewIn("neighborhood", "Redmond, WA", "Kirkland, WA"),
			relation.NewClosedRange("price", 210000, 280000),
			relation.NewRange("bedrooms", 1, 5),
		),
		relation.NewIn("price", "225000"),       // mistyped: numeric attr
		relation.NewRange("neighborhood", 0, 1), // mistyped: categorical attr
		relation.NewIn("nosuchattr", "x"),       // unknown attr
		relation.NewAnd(relation.NewIn("nope"), relation.NewRange("price", 0, 1e9)),
	}
}

// assertStoreMatches pins the full contract between st and the in-memory
// prefix mem: identical surviving rows, identical Select answers on the
// whole predicate battery (lazily against the store, vectorized against
// both relations), and — when trees is true — byte-identical category
// trees.
func assertStoreMatches(tb testing.TB, st *Store, mem *relation.Relation, trees bool) {
	tb.Helper()
	rel, err := st.Relation("ListProperty")
	if err != nil {
		tb.Fatalf("materialize: %v", err)
	}
	if rel.Len() != mem.Len() {
		tb.Fatalf("recovered %d rows, want %d", rel.Len(), mem.Len())
	}
	for i := 0; i < mem.Len(); i++ {
		if !sameTuple(rel.Row(i), mem.Row(i)) {
			tb.Fatalf("row %d: recovered %v, want %v", i, rel.Row(i), mem.Row(i))
		}
	}
	for pi, p := range testPredicates() {
		want := mem.Select(p)
		lazy, err := st.Select(p)
		if err != nil {
			tb.Fatalf("pred %d: lazy select: %v", pi, err)
		}
		if !sameInts(lazy, want) {
			tb.Fatalf("pred %d (%v): lazy select %d rows, want %d", pi, p, len(lazy), len(want))
		}
		if got := rel.Select(p); !sameInts(got, want) {
			tb.Fatalf("pred %d (%v): materialized select differs from reference", pi, p)
		}
	}
	if trees {
		assertSameTrees(tb, rel, mem)
	}
}

func sameTuple(a, b relation.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Str != b[i].Str || math.Float64bits(a[i].Num) != math.Float64bits(b[i].Num) {
			return false
		}
	}
	return true
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// testWorkload mirrors the category package's canonical workload: hot
// neighborhood/price, warm bedrooms, cold propertytype.
func testWorkload(tb testing.TB) *workload.Stats {
	tb.Helper()
	var queries []string
	hot := []string{"Bellevue, WA", "Redmond, WA"}
	for i := 0; i < 60; i++ {
		queries = append(queries, fmt.Sprintf(
			"SELECT * FROM ListProperty WHERE neighborhood IN ('%s') AND price BETWEEN %d AND %d",
			hot[i%2], 200000+25000*(i%3), 225000+25000*(i%3)))
	}
	for i := 0; i < 25; i++ {
		queries = append(queries, fmt.Sprintf(
			"SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA') AND bedrooms BETWEEN %d AND %d",
			2+i%2, 4))
	}
	for i := 0; i < 15; i++ {
		queries = append(queries, "SELECT * FROM ListProperty WHERE propertytype = 'Condo'")
	}
	w, err := workload.ParseStrings(queries)
	if err != nil {
		tb.Fatalf("workload: %v", err)
	}
	return workload.Preprocess(w, workload.Config{
		Table:     "ListProperty",
		Intervals: map[string]float64{"price": 25000, "bedrooms": 1},
	})
}

// assertSameTrees categorizes both relations with identical deterministic
// options and requires byte-identical flattened trees.
func assertSameTrees(tb testing.TB, got, want *relation.Relation) {
	tb.Helper()
	stats := testWorkload(tb)
	build := func(r *relation.Relation) []byte {
		c := category.NewCategorizer(stats, category.Options{})
		tree, err := c.Categorize(r, nil)
		if err != nil {
			tb.Fatalf("categorize: %v", err)
		}
		type flat struct {
			Depth int
			Label string
			P, Pw float64
			Tset  []int
		}
		var nodes []flat
		tree.Root.Walk(func(n *category.Node, depth int) bool {
			nodes = append(nodes, flat{Depth: depth, Label: n.Label.String(), P: n.P, Pw: n.Pw, Tset: n.Tset})
			return true
		})
		b, err := json.Marshal(struct {
			Levels []string
			Nodes  []flat
		}{tree.LevelAttrs, nodes})
		if err != nil {
			tb.Fatal(err)
		}
		return b
	}
	g, w := build(got), build(want)
	if string(g) != string(w) {
		tb.Fatalf("category trees differ:\nrecovered: %s\nreference: %s", g, w)
	}
}

// ingest appends rows [from, to) to st, returning the index of the first
// append that failed (== to when none did).
func ingest(st *Store, from, to int) (acked int, err error) {
	for i := from; i < to; i++ {
		if err := st.Append(testTuple(i)); err != nil {
			return i, err
		}
	}
	return to, nil
}

// corrupt flips one byte of the file at off (negative: from the end).
func corrupt(tb testing.TB, path string, off int64) {
	tb.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		tb.Fatal(err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		tb.Fatal(err)
	}
	if off < 0 {
		off += fi.Size()
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		tb.Fatal(err)
	}
	b[0] ^= 0x41
	if _, err := f.WriteAt(b[:], off); err != nil {
		tb.Fatal(err)
	}
}

// dirFile returns the path of the single file in dir matching prefix.
func dirFile(tb testing.TB, dir, prefix string) string {
	tb.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		tb.Fatal(err)
	}
	var match []string
	for _, e := range ents {
		if len(e.Name()) >= len(prefix) && e.Name()[:len(prefix)] == prefix {
			match = append(match, e.Name())
		}
	}
	if len(match) != 1 {
		tb.Fatalf("want one %q* file in %s, found %v", prefix, dir, match)
	}
	return filepath.Join(dir, match[0])
}
