package durable

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/relation"
)

// A segment file is one sealed span [lo, hi), spilled at seal time and
// immutable forever after. Layout: a header page, then one column page per
// attribute, in schema order.
//
//	header page  JSON: span, schema, zone maps, column-page directory
//	column page  numeric:     hi-lo × 8-byte LE float64 bits (a dense block)
//	             categorical: u32 dictCount, dictCount × (u32 len + bytes)
//	                          of the segment-local sorted dictionary, then
//	                          hi-lo × u32 codes into it
//
// Every page carries the format.go framing (length + CRC32C). Column-page
// offsets in the directory are relative to the end of the header page —
// the header cannot know its own encoded size before it is encoded.
//
// Dictionaries are per-segment and sorted: a spilled segment never hears
// about the in-memory global dictionary's remaps, and the sorted value list
// doubles as the categorical zone map. Zone maps for numeric columns record
// min/max over non-NaN values (as float bits — JSON cannot carry NaN/Inf),
// mirroring zonemap.go's conservative semantics exactly.
//
// Spill is atomic per segment: write seg-….tmp, fsync, rename into place,
// fsync the directory. The manifest flips to reference the segment only
// after all of that, so a crash mid-spill leaves an orphan .tmp the next
// Open sweeps away.

const segMagic = "DSEG1"

// segZone is one attribute's zone map as stored in the segment header.
type segZone struct {
	// Numeric: min/max over non-NaN values as math.Float64bits; HasVal is
	// false when every value in the span is NaN (always prunable).
	MinBits uint64 `json:"minBits,omitempty"`
	MaxBits uint64 `json:"maxBits,omitempty"`
	HasVal  bool   `json:"hasVal,omitempty"`
	// Categorical: the segment-local dictionary, sorted — every distinct
	// value in the span.
	Vals []string `json:"vals,omitempty"`
}

// segPage locates one column page: offset relative to the end of the header
// page, and the framed length.
type segPage struct {
	Off int64 `json:"off"`
	Len int64 `json:"len"`
}

// segHeader is the header page payload.
type segHeader struct {
	Magic  string     `json:"magic"`
	Lo     int        `json:"lo"`
	Hi     int        `json:"hi"`
	Schema []attrMeta `json:"schema"`
	Zones  []segZone  `json:"zones"` // positionally aligned to Schema
	Pages  []segPage  `json:"pages"` // positionally aligned to Schema
}

func segFileName(lo, hi int) string { return fmt.Sprintf("seg-%010d-%010d.seg", lo, hi) }

// segColumn is one decoded column page: exactly one of nums or codes+dict.
type segColumn struct {
	nums  []float64
	dict  []string
	codes []uint32
}

func (c *segColumn) bytes() uint64 {
	b := 8*uint64(len(c.nums)) + 4*uint64(len(c.codes))
	for _, v := range c.dict {
		b += uint64(len(v)) + 16
	}
	return b
}

// encodeSegColumns builds the column-page payloads and zone maps for rows
// row(lo)…row(hi-1), fetched through row (so both tail buffers and tracked
// relations can feed a spill without copying into a common shape).
func encodeSegColumns(schema *relation.Schema, lo, hi int, row func(i int) relation.Tuple) (pages [][]byte, zones []segZone) {
	n := schema.Len()
	pages = make([][]byte, n)
	zones = make([]segZone, n)
	for a := 0; a < n; a++ {
		if schema.Attr(a).Type == relation.Numeric {
			payload := make([]byte, 0, 8*(hi-lo))
			z := segZone{}
			min, max := math.Inf(1), math.Inf(-1)
			for i := lo; i < hi; i++ {
				v := row(i)[a].Num
				var b [8]byte
				binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
				payload = append(payload, b[:]...)
				if !math.IsNaN(v) {
					z.HasVal = true
					if v < min {
						min = v
					}
					if v > max {
						max = v
					}
				}
			}
			if z.HasVal {
				z.MinBits = math.Float64bits(min)
				z.MaxBits = math.Float64bits(max)
			}
			pages[a], zones[a] = payload, z
			continue
		}
		// Categorical: collect the span's distinct values, sort them into
		// the local dictionary, then emit codes against it.
		seen := make(map[string]uint32)
		vals := make([]string, 0, 16)
		for i := lo; i < hi; i++ {
			s := row(i)[a].Str
			if _, ok := seen[s]; !ok {
				seen[s] = 0
				vals = append(vals, s)
			}
		}
		sort.Strings(vals)
		for c, v := range vals {
			seen[v] = uint32(c)
		}
		payload := make([]byte, 0, 4+4*(hi-lo))
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(len(vals)))
		payload = append(payload, b[:]...)
		for _, v := range vals {
			binary.LittleEndian.PutUint32(b[:], uint32(len(v)))
			payload = append(payload, b[:]...)
			payload = append(payload, v...)
		}
		for i := lo; i < hi; i++ {
			binary.LittleEndian.PutUint32(b[:], seen[row(i)[a].Str])
			payload = append(payload, b[:]...)
		}
		pages[a], zones[a] = payload, segZone{Vals: vals}
	}
	return pages, zones
}

// writeSegment spills rows [lo, hi) into a new segment file and returns its
// basename and on-disk size. The file lands via the tmp/fsync/rename/
// fsync-dir protocol; it is durable when writeSegment returns, but invisible
// to recovery until the manifest references it.
func (s *Store) writeSegment(ctx context.Context, lo, hi int, row func(i int) relation.Tuple) (name string, size int64, err error) {
	pages, zones := encodeSegColumns(s.schema, lo, hi, row)
	hdr := segHeader{
		Magic:  segMagic,
		Lo:     lo,
		Hi:     hi,
		Schema: schemaMeta(s.schema),
		Zones:  zones,
		Pages:  make([]segPage, len(pages)),
	}
	off := int64(0)
	for a, p := range pages {
		hdr.Pages[a] = segPage{Off: off, Len: framedLen(len(p))}
		off += framedLen(len(p))
	}
	hdrPayload, err := json.Marshal(hdr)
	if err != nil {
		return "", 0, err
	}
	buf := framePage(nil, hdrPayload)
	for _, p := range pages {
		buf = framePage(buf, p)
	}

	name = segFileName(lo, hi)
	tmp := filepath.Join(s.dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", 0, err
	}
	if err := s.writeAll(ctx, f, buf); err != nil {
		f.Close()
		return "", 0, err
	}
	if err := s.fsyncFile(ctx, f); err != nil {
		f.Close()
		return "", 0, err
	}
	if err := f.Close(); err != nil {
		return "", 0, err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, name)); err != nil {
		return "", 0, err
	}
	if err := s.fsyncDir(ctx, s.dir); err != nil {
		return "", 0, err
	}
	return name, int64(len(buf)), nil
}

// readSegHeader reads and validates the header page of the segment file at
// path. ErrTorn/ErrCorrupt surface for quarantine decisions.
func readSegHeader(path string, schema *relation.Schema) (*segHeader, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	r := &countingReader{r: f}
	payload, err := readPage(r)
	if err != nil {
		return nil, 0, fmt.Errorf("segment header: %w", errOrTorn(err))
	}
	var hdr segHeader
	if err := json.Unmarshal(payload, &hdr); err != nil {
		return nil, 0, fmt.Errorf("segment header: %w: %v", ErrCorrupt, err)
	}
	if hdr.Magic != segMagic {
		return nil, 0, fmt.Errorf("segment header: %w: magic %q", ErrCorrupt, hdr.Magic)
	}
	if !sameSchema(hdr.Schema, schemaMeta(schema)) {
		return nil, 0, fmt.Errorf("segment header: %w: schema mismatch", ErrCorrupt)
	}
	if len(hdr.Pages) != schema.Len() || len(hdr.Zones) != schema.Len() {
		return nil, 0, fmt.Errorf("segment header: %w: %d pages, %d zones, schema has %d attrs",
			ErrCorrupt, len(hdr.Pages), len(hdr.Zones), schema.Len())
	}
	return &hdr, r.n, nil
}

// errOrTorn maps io.EOF (empty file or page past the end) onto ErrTorn so
// callers see exactly the two quarantine-relevant shapes.
func errOrTorn(err error) error {
	if err == io.EOF {
		return ErrTorn
	}
	return err
}

// readSegColumn loads, checksums, and decodes one column page of a segment
// file. hdrEnd is the header page's on-disk size (column offsets are
// relative to it).
func readSegColumn(path string, hdr *segHeader, hdrEnd int64, attr int, schema *relation.Schema) (*segColumn, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	pg := hdr.Pages[attr]
	sec := io.NewSectionReader(f, hdrEnd+pg.Off, pg.Len)
	payload, err := readPage(sec)
	if err != nil {
		return nil, fmt.Errorf("column %q page: %w", schema.Attr(attr).Name, errOrTorn(err))
	}
	rows := hdr.Hi - hdr.Lo
	if schema.Attr(attr).Type == relation.Numeric {
		if len(payload) != 8*rows {
			return nil, fmt.Errorf("column %q page: %w: %d bytes for %d rows", schema.Attr(attr).Name, ErrCorrupt, len(payload), rows)
		}
		nums := make([]float64, rows)
		for i := range nums {
			nums[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
		}
		return &segColumn{nums: nums}, nil
	}
	if len(payload) < 4 {
		return nil, fmt.Errorf("column %q page: %w: short dictionary header", schema.Attr(attr).Name, ErrCorrupt)
	}
	nvals := int(binary.LittleEndian.Uint32(payload))
	payload = payload[4:]
	dict := make([]string, 0, nvals)
	for i := 0; i < nvals; i++ {
		if len(payload) < 4 {
			return nil, fmt.Errorf("column %q page: %w: truncated dictionary", schema.Attr(attr).Name, ErrCorrupt)
		}
		n := int(binary.LittleEndian.Uint32(payload))
		payload = payload[4:]
		if n > len(payload) {
			return nil, fmt.Errorf("column %q page: %w: dictionary entry overruns page", schema.Attr(attr).Name, ErrCorrupt)
		}
		dict = append(dict, string(payload[:n]))
		payload = payload[n:]
	}
	if len(payload) != 4*rows {
		return nil, fmt.Errorf("column %q page: %w: %d code bytes for %d rows", schema.Attr(attr).Name, ErrCorrupt, len(payload), rows)
	}
	codes := make([]uint32, rows)
	for i := range codes {
		c := binary.LittleEndian.Uint32(payload[4*i:])
		if int(c) >= len(dict) {
			return nil, fmt.Errorf("column %q page: %w: code %d outside dictionary of %d", schema.Attr(attr).Name, ErrCorrupt, c, len(dict))
		}
		codes[i] = c
	}
	return &segColumn{dict: dict, codes: codes}, nil
}
