package durable

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/relation"
	"repro/internal/resilience/faultinject"
)

// SyncPolicy decides when acknowledged WAL appends become fsync-durable.
// Structural writes (segment spill, WAL rotation, manifest replace) always
// fsync regardless of policy — the policy only trades the durability window
// of the active tail against append throughput.
type SyncPolicy int

const (
	// SyncBatch fsyncs the WAL every Options.SyncEvery appends (and on
	// seal, Sync, Close). A crash can lose up to SyncEvery acknowledged
	// tail rows, never anything sealed. The default.
	SyncBatch SyncPolicy = iota
	// SyncAlways fsyncs after every append: an acknowledged row survives
	// any crash.
	SyncAlways
	// SyncNone never fsyncs the WAL on the append path (seal, Sync, and
	// Close still do): the OS decides the tail's durability window.
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return "batch"
	}
}

// ParseSyncPolicy maps the -fsync flag values onto a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return SyncAlways, nil
	case "batch", "":
		return SyncBatch, nil
	case "none":
		return SyncNone, nil
	}
	return SyncBatch, fmt.Errorf("durable: unknown sync policy %q (want always|batch|none)", s)
}

// Options configures Create/Open.
type Options struct {
	// SegmentRows is the sealed-segment span (Create only; Open takes it
	// from the manifest). 0 means relation.DefaultSegmentRows.
	SegmentRows int
	// Sync is the WAL durability policy.
	Sync SyncPolicy
	// SyncEvery is SyncBatch's fsync interval in appends; 0 means 256.
	SyncEvery int
	// ReadOnly opens without tail repair, WAL rotation, garbage sweeping,
	// or append support — safe on a directory another process owns.
	ReadOnly bool
	// Track mirrors every Append into this relation and lets the
	// relation's own seal events drive segment spilling (Create only; the
	// relation must be empty). The tracked relation must only be appended
	// through the store, or rows would exist that the WAL never saw.
	Track *relation.Relation
}

// Quarantine records one segment excluded from service: its manifest span
// and why. Quarantined rows are absent from Relation()/Select() results;
// the surviving rows close ranks.
type Quarantine struct {
	File   string `json:"file"`
	Lo     int    `json:"lo"`
	Hi     int    `json:"hi"`
	Reason string `json:"reason"`
}

// diskSegment is one manifest-listed segment file plus its lazily-loaded
// state. The header (zone maps, page directory) loads on first touch —
// eagerly at Open — and individual column pages load, checksum-verified, on
// first map-in by a Select or materialization.
type diskSegment struct {
	meta segMeta

	mu sync.Mutex
	//lint:guardedby mu
	hdr *segHeader
	//lint:guardedby mu
	hdrEnd int64
	//lint:guardedby mu
	cols []*segColumn // by attribute index; nil until loaded
	//lint:guardedby mu
	bad bool
	//lint:guardedby mu
	reason string
}

// Store is a crash-consistent on-disk segment store. One writer (or any
// number of read-only openers) per directory; Append/Sync/Close serialize
// on an internal mutex, Select and Relation take snapshots under it and do
// their page I/O outside.
type Store struct {
	dir    string
	schema *relation.Schema
	opts   Options

	mu sync.Mutex
	//lint:guardedby mu
	gen uint64
	//lint:guardedby mu
	segRows int
	//lint:guardedby mu
	segs []*diskSegment
	//lint:guardedby mu
	tail []relation.Tuple // untracked mode; tracked mode reads rel
	rel  *relation.Relation
	//lint:guardedby mu
	wal *walWriter
	//lint:guardedby mu
	closed bool
	//lint:guardedby mu
	failed bool
	// sealCtx/sealErr thread the Append context and any spill failure
	// through the tracked relation's seal hook, whose signature cannot
	// carry them. Only touched with mu held, by the appending goroutine.
	//lint:guardedby mu
	sealCtx context.Context
	//lint:guardedby mu
	sealErr error

	quarMu sync.Mutex
	//lint:guardedby quarMu
	quar []Quarantine

	recoveredRows int
	recoveredTorn bool

	pageWrites   atomic.Uint64
	fsyncs       atomic.Uint64
	walRecords   atomic.Uint64
	bytesWritten atomic.Uint64
	colLoads     atomic.Uint64
	loadedBytes  atomic.Uint64
	lazyPruned   atomic.Uint64
	lazyScanned  atomic.Uint64
}

func (o *Options) normalize() {
	if o.SegmentRows <= 0 {
		o.SegmentRows = relation.DefaultSegmentRows
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 256
	}
}

// Create initializes a new store in dir (created if missing, must not
// already hold one) and leaves it open for appends.
func Create(dir string, schema *relation.Schema, opts Options) (*Store, error) {
	opts.normalize()
	if opts.ReadOnly {
		return nil, fmt.Errorf("durable: cannot Create read-only")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("durable: %s already holds a store; use Open", dir)
	}
	s := &Store{dir: dir, schema: schema, opts: opts, gen: 1, segRows: opts.SegmentRows}
	if opts.Track != nil {
		if opts.Track.Len() != 0 {
			return nil, fmt.Errorf("durable: tracked relation already has %d rows", opts.Track.Len())
		}
		if opts.Track.Schema() != schema {
			return nil, fmt.Errorf("durable: tracked relation schema differs from store schema")
		}
		if err := opts.Track.SetSegmentRows(opts.SegmentRows); err != nil {
			return nil, err
		}
		s.rel = opts.Track
		if err := s.rel.SetSealHook(s.onSeal); err != nil {
			return nil, err
		}
	}
	ctx := context.Background()
	wal, err := s.createWAL(ctx, s.gen, 0)
	if err != nil {
		return nil, err
	}
	s.wal = wal
	if err := s.writeManifest(ctx, s.manifestLocked()); err != nil {
		wal.f.Close()
		return nil, err
	}
	return s, nil
}

// manifestLocked renders the store's current state as a manifest payload.
// Caller holds s.mu (or is still single-threaded in Create/Open).
func (s *Store) manifestLocked() *manifest {
	m := &manifest{
		Magic:       manifestMagic,
		Generation:  s.gen,
		SegmentRows: s.segRows,
		Schema:      schemaMeta(s.schema),
		Segments:    make([]segMeta, len(s.segs)),
		WAL:         s.wal.name,
		WALAfter:    s.wal.afterRows,
	}
	for i, seg := range s.segs {
		m.Segments[i] = seg.meta
	}
	return m
}

// Open recovers the store in dir: load the manifest, validate every listed
// segment (quarantining rather than failing), replay the WAL up to the
// first torn or corrupt record, and — unless ReadOnly — repair the torn
// tail, sweep garbage, and finish any seal the crash interrupted. The
// durable.recover fault site fires before the replay and before the repair
// truncation, so the chaos suite can crash recovery itself.
func Open(dir string, opts Options) (*Store, error) {
	opts.normalize()
	if opts.Track != nil {
		return nil, fmt.Errorf("durable: Track is a Create option; materialize an opened store with Relation()")
	}
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	schema, err := metaSchema(m.Schema)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, schema: schema, opts: opts, gen: m.Generation, segRows: m.SegmentRows}
	ctx := context.Background()

	for _, sm := range m.Segments {
		seg := &diskSegment{meta: sm}
		s.segs = append(s.segs, seg)
		path := filepath.Join(dir, sm.File)
		fi, err := os.Stat(path)
		switch {
		case err != nil:
			s.quarantine(seg, fmt.Sprintf("segment file missing: %v", err))
			continue
		case fi.Size() != sm.Bytes:
			s.quarantine(seg, fmt.Sprintf("segment file is %d bytes, manifest recorded %d", fi.Size(), sm.Bytes))
			continue
		}
		// Header (zone maps, page directory) verifies now; column pages
		// verify lazily on first map-in.
		if _, err := s.ensureHeader(seg); err != nil {
			continue // quarantined inside
		}
	}

	if err := faultinject.Inject(ctx, faultinject.SiteDurableRecover); err != nil {
		return nil, err
	}
	walPath := filepath.Join(dir, m.WAL)
	rows, good, torn, err := replayWAL(walPath, schema, m.Generation, m.WALAfter)
	if err != nil {
		return nil, err
	}
	s.tail = rows
	s.recoveredRows = len(rows)
	s.recoveredTorn = torn
	// Bookkeeping-only writer (afterRows, name); the writable paths below
	// replace it with one holding an open file.
	s.wal = &walWriter{name: m.WAL, afterRows: m.WALAfter}

	if opts.ReadOnly {
		return s, nil
	}

	// Writable: make the in-memory view and the directory agree again.
	// Each step is idempotent — a crash in here replays at the next Open.
	if torn && good > 0 {
		// Torn tail: cut the damage off so the log is appendable again.
		if err := faultinject.Inject(ctx, faultinject.SiteDurableRecover); err != nil {
			return nil, err
		}
		f, err := os.OpenFile(walPath, os.O_WRONLY, 0)
		if err != nil {
			return nil, err
		}
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, err
		}
		if err := s.fsyncFile(ctx, f); err != nil {
			f.Close()
			return nil, err
		}
		f.Close()
	}
	if torn && good == 0 {
		// The WAL itself is unusable (missing, empty, or header-damaged):
		// rotate to a fresh log under a new generation.
		wal, err := s.createWAL(ctx, s.gen+1, m.WALAfter)
		if err != nil {
			return nil, err
		}
		s.wal = wal
		s.gen++
		if err := s.writeManifest(ctx, s.manifestLocked()); err != nil {
			wal.f.Close()
			return nil, err
		}
	} else {
		f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			return nil, err
		}
		s.wal = &walWriter{f: f, name: m.WAL, afterRows: m.WALAfter}
	}
	s.sweepGarbage()
	// Finish a seal the crash interrupted: the WAL holds >= a full segment.
	if err := s.sealFullLocked(ctx); err != nil {
		s.wal.f.Close()
		return nil, err
	}
	return s, nil
}

// sweepGarbage removes files no consistent view can reference: tmp files
// from interrupted atomic writes, superseded WALs, and segment files the
// manifest does not list (orphans of interrupted seals). Best-effort.
func (s *Store) sweepGarbage() {
	live := map[string]bool{manifestName: true, s.wal.name: true}
	for _, seg := range s.segs {
		live[seg.meta.File] = true
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if live[name] || e.IsDir() {
			continue
		}
		if strings.HasSuffix(name, ".tmp") || strings.HasPrefix(name, "wal-") || strings.HasPrefix(name, "seg-") {
			os.Remove(filepath.Join(s.dir, name))
		}
	}
}

// quarantine marks seg excluded from service and records why.
func (s *Store) quarantine(seg *diskSegment, reason string) {
	seg.bad = true
	seg.reason = reason
	s.quarMu.Lock()
	s.quar = append(s.quar, Quarantine{File: seg.meta.File, Lo: seg.meta.Lo, Hi: seg.meta.Hi, Reason: reason})
	s.quarMu.Unlock()
}

// ensureHeader loads seg's header page if not yet present, quarantining on
// damage, and returns it. Caller must not hold seg.mu; the returned header
// is immutable, so callers read it without the lock.
func (s *Store) ensureHeader(seg *diskSegment) (*segHeader, error) {
	seg.mu.Lock()
	defer seg.mu.Unlock()
	if err := s.ensureHeaderLocked(seg); err != nil {
		return nil, err
	}
	return seg.hdr, nil
}

func (s *Store) ensureHeaderLocked(seg *diskSegment) error {
	if seg.bad {
		return fmt.Errorf("durable: segment %s quarantined: %s", seg.meta.File, seg.reason)
	}
	if seg.hdr != nil {
		return nil
	}
	hdr, hdrEnd, err := readSegHeader(filepath.Join(s.dir, seg.meta.File), s.schema)
	if err != nil {
		s.quarantine(seg, err.Error())
		return err
	}
	if hdr.Lo != seg.meta.Lo || hdr.Hi != seg.meta.Hi {
		err := fmt.Errorf("segment header spans [%d,%d), manifest recorded [%d,%d)", hdr.Lo, hdr.Hi, seg.meta.Lo, seg.meta.Hi)
		s.quarantine(seg, err.Error())
		return err
	}
	seg.hdr, seg.hdrEnd = hdr, hdrEnd
	seg.cols = make([]*segColumn, s.schema.Len())
	return nil
}

// ensureColumn maps in one column page, verifying its checksum on first
// touch. A bad page quarantines the whole segment — its other pages are no
// longer trusted either.
func (s *Store) ensureColumn(seg *diskSegment, attr int) (*segColumn, error) {
	seg.mu.Lock()
	defer seg.mu.Unlock()
	if err := s.ensureHeaderLocked(seg); err != nil {
		return nil, err
	}
	if c := seg.cols[attr]; c != nil {
		return c, nil
	}
	c, err := readSegColumn(filepath.Join(s.dir, seg.meta.File), seg.hdr, seg.hdrEnd, attr, s.schema)
	if err != nil {
		s.quarantine(seg, err.Error())
		return nil, err
	}
	seg.cols[attr] = c
	s.colLoads.Add(1)
	s.loadedBytes.Add(c.bytes())
	return c, nil
}

// Append adds one row: WAL record first (made durable per the sync
// policy), then the in-memory tail — and, at segment boundaries, the seal
// sequence (spill, WAL rotation, manifest flip). An error means the row is
// not acknowledged and the store is failed: like a crash, the only way
// forward is Close and re-Open, which recovers every acknowledged durable
// row.
func (s *Store) Append(t relation.Tuple) error {
	return s.AppendContext(context.Background(), t)
}

// AppendContext is Append with a caller context (fault-injection rules
// with Stall honor its deadline).
func (s *Store) AppendContext(ctx context.Context, t relation.Tuple) error {
	if len(t) != s.schema.Len() {
		return fmt.Errorf("durable: tuple has %d cells, schema has %d", len(t), s.schema.Len())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return fmt.Errorf("durable: store is closed")
	case s.failed:
		return fmt.Errorf("durable: store failed mid-write; re-Open to recover")
	case s.opts.ReadOnly:
		return fmt.Errorf("durable: store is read-only")
	}
	if err := s.walAppend(ctx, s.wal, t); err != nil {
		s.failed = true
		return err
	}
	if err := s.walSync(ctx, s.wal, false); err != nil {
		s.failed = true
		return err
	}
	if s.rel != nil {
		// Tracked mode: the relation's seal hook (onSeal) fires inside
		// this call at segment boundaries and runs the spill under the
		// mutex we already hold.
		s.sealCtx = ctx
		err := s.rel.Append(t)
		s.sealCtx = nil
		if err == nil {
			err = s.sealErr
			s.sealErr = nil
		}
		if err != nil {
			s.failed = true
			return err
		}
		return nil
	}
	s.tail = append(s.tail, t)
	if err := s.sealFullLocked(ctx); err != nil {
		s.failed = true
		return err
	}
	return nil
}

// onSeal is the tracked relation's seal hook: spill the newly sealed
// span(s), one segment file per segRows. It runs synchronously inside
// Store.Append (which holds s.mu), reading rows straight from the
// relation's RCU snapshot — the relation package invokes it, so lockguard
// cannot see the locked call site; the holds assertion records the contract.
//
//lint:holds mu
func (s *Store) onSeal(lo, hi int) {
	ctx := s.sealCtx
	if ctx == nil {
		ctx = context.Background()
	}
	for x := lo; x < hi && s.sealErr == nil; x += s.segRows {
		if err := s.sealLocked(ctx, x, x+s.segRows, s.rel.Row); err != nil {
			s.sealErr = err
		}
	}
}

// sealFullLocked spills every full segment the buffered tail covers
// (untracked mode, and Open's interrupted-seal completion).
func (s *Store) sealFullLocked(ctx context.Context) error {
	for len(s.tail) >= s.segRows {
		lo := s.wal.afterRows
		span := s.tail[:s.segRows]
		if err := s.sealLocked(ctx, lo, lo+s.segRows, func(i int) relation.Tuple { return span[i-lo] }); err != nil {
			return err
		}
		// Reslice into a fresh array so the spilled prefix is collectable —
		// the constant-memory contract of the -spill ingest path.
		s.tail = append([]relation.Tuple(nil), s.tail[s.segRows:]...)
	}
	return nil
}

// sealLocked runs the seal sequence for span [lo, hi): spill the segment
// file (durable before it is referenced), rotate the WAL to a fresh log
// whose afterRows is the new sealed high-water mark, flip the manifest,
// and retire the old log. A crash between any two steps leaves the old
// manifest + old WAL fully consistent; the new files are garbage until the
// manifest names them.
func (s *Store) sealLocked(ctx context.Context, lo, hi int, row func(i int) relation.Tuple) error {
	if err := s.walSync(ctx, s.wal, true); err != nil {
		return err
	}
	name, size, err := s.writeSegment(ctx, lo, hi, row)
	if err != nil {
		return err
	}
	wal, err := s.createWAL(ctx, s.gen+1, hi)
	if err != nil {
		return err
	}
	seg := &diskSegment{meta: segMeta{File: name, Lo: lo, Hi: hi, Bytes: size}}
	oldWAL := s.wal
	s.segs = append(s.segs, seg)
	s.wal = wal
	s.gen++
	if err := s.writeManifest(ctx, s.manifestLocked()); err != nil {
		// Roll the in-memory view back so it matches the manifest on disk;
		// the already-written files are garbage for the next Open to sweep.
		s.segs = s.segs[:len(s.segs)-1]
		s.wal = oldWAL
		s.gen--
		wal.f.Close()
		return err
	}
	oldWAL.f.Close()
	os.Remove(filepath.Join(s.dir, oldWAL.name))
	return nil
}

// Sync forces the WAL durable regardless of policy.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.opts.ReadOnly || s.failed {
		return nil
	}
	return s.walSync(context.Background(), s.wal, true)
}

// Close syncs the WAL and releases the store. Further Appends fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.wal == nil || s.opts.ReadOnly {
		return nil
	}
	var err error
	if !s.failed {
		err = s.walSync(context.Background(), s.wal, true)
	}
	if cerr := s.wal.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abandon releases the store WITHOUT syncing — the in-process equivalent
// of pulling the power mid-ingest. Rows acknowledged but not yet fsynced
// may or may not survive, exactly as after a real crash; the chaos suite
// pairs this with fault-injected short writes to cover both.
func (s *Store) Abandon() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if s.wal != nil && !s.opts.ReadOnly {
		s.wal.f.Close()
	}
}

// SealedRows returns the rows covered by manifest-listed segments
// (quarantined or not); TailRows the replayed/buffered rows beyond them.
func (s *Store) SealedRows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.afterRows
}

// Schema returns the store's schema (from the manifest, for Open).
func (s *Store) Schema() *relation.Schema { return s.schema }

// Degraded reports whether any segment is quarantined.
func (s *Store) Degraded() bool {
	s.quarMu.Lock()
	defer s.quarMu.Unlock()
	return len(s.quar) > 0
}

// Quarantined returns a copy of the quarantine records.
func (s *Store) Quarantined() []Quarantine {
	s.quarMu.Lock()
	defer s.quarMu.Unlock()
	return append([]Quarantine(nil), s.quar...)
}

// snapshot returns the segment list, tail, and segment size under the
// mutex; page I/O happens outside it.
func (s *Store) snapshot() (segs []*diskSegment, tail []relation.Tuple, segRows int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	segRows = s.segRows
	segs = append(segs, s.segs...)
	if s.rel != nil {
		n := s.rel.Len()
		for i := s.wal.afterRows; i < n; i++ {
			tail = append(tail, s.rel.Row(i))
		}
		return segs, tail, segRows
	}
	return segs, s.tail[:len(s.tail):len(s.tail)], segRows
}

// Relation materializes the surviving rows — every non-quarantined sealed
// segment in span order, then the tail — into a fresh relation configured
// with the store's segment size. Column pages checksum-verify as they are
// read; a segment failing here is quarantined and skipped, so the result
// is always the best currently-servable view.
func (s *Store) Relation(name string) (*relation.Relation, error) {
	segs, tail, segRows := s.snapshot()
	rel := relation.New(name, s.schema)
	if err := rel.SetSegmentRows(segRows); err != nil {
		return nil, err
	}
	total := 0
	for _, seg := range segs {
		total += seg.meta.Hi - seg.meta.Lo
	}
	rel.Grow(total + len(tail))
	for _, seg := range segs {
		rows, ok := s.segmentTuples(seg)
		if !ok {
			continue
		}
		for _, t := range rows {
			rel.MustAppend(t)
		}
	}
	for _, t := range tail {
		rel.MustAppend(t)
	}
	return rel, nil
}

// segmentTuples loads every column of seg and reassembles its tuples.
// ok=false means the segment is (now) quarantined.
func (s *Store) segmentTuples(seg *diskSegment) ([]relation.Tuple, bool) {
	n := s.schema.Len()
	cols := make([]*segColumn, n)
	for a := 0; a < n; a++ {
		c, err := s.ensureColumn(seg, a)
		if err != nil {
			return nil, false
		}
		cols[a] = c
	}
	rows := seg.meta.Hi - seg.meta.Lo
	out := make([]relation.Tuple, rows)
	for i := 0; i < rows; i++ {
		t := make(relation.Tuple, n)
		for a := 0; a < n; a++ {
			if c := cols[a]; c.nums != nil {
				t[a] = relation.NumberValue(c.nums[i])
			} else {
				t[a] = relation.StringValue(c.dict[c.codes[i]])
			}
		}
		out[i] = t
	}
	return out, true
}

// Select evaluates pred over the surviving rows without materializing the
// dataset: per-segment zone maps (persisted in segment headers) prune
// segments that provably cannot match, and only the surviving segments'
// referenced column pages are read — checksum-verified on first map-in.
// Results are indices into the surviving row sequence, i.e. positions in
// the relation Relation() would build at the same quarantine state.
func (s *Store) Select(pred relation.Predicate) ([]int, error) {
	segs, tail, _ := s.snapshot()
	conj, supported := flattenPred(pred)

	idx := []int{}
	base := 0 // surviving-row offset of the current segment
	for _, seg := range segs {
		rows := seg.meta.Hi - seg.meta.Lo
		seg.mu.Lock()
		bad := seg.bad
		seg.mu.Unlock()
		if bad {
			continue
		}
		if supported {
			match, err := s.selectSegment(seg, conj, base)
			if err != nil {
				continue // quarantined during load; rows drop out
			}
			idx = append(idx, match...)
		} else {
			tuples, ok := s.segmentTuples(seg)
			if !ok {
				continue
			}
			for i, t := range tuples {
				if pred == nil || pred.Matches(s.schema, t) {
					idx = append(idx, base+i)
				}
			}
		}
		base += rows
	}
	for i, t := range tail {
		if pred == nil || pred.Matches(s.schema, t) {
			idx = append(idx, base+i)
		}
	}
	return idx, nil
}

// flattenPred decomposes pred into conjuncts the zone-pruned path can
// evaluate columnar (True/In/Range, possibly under And). supported=false
// falls back to whole-segment materialization + row-wise Matches.
func flattenPred(pred relation.Predicate) ([]relation.Predicate, bool) {
	switch p := pred.(type) {
	case nil, relation.True:
		return nil, true
	case *relation.In, *relation.Range:
		return []relation.Predicate{p}, true
	case *relation.And:
		out := make([]relation.Predicate, 0, len(p.Preds))
		for _, q := range p.Preds {
			sub, ok := flattenPred(q)
			if !ok {
				return nil, false
			}
			out = append(out, sub...)
		}
		return out, true
	}
	return nil, false
}

// selectSegment evaluates the conjuncts over one segment: zone-prune
// first, then load only the referenced columns and intersect row-wise.
func (s *Store) selectSegment(seg *diskSegment, conj []relation.Predicate, base int) ([]int, error) {
	hdr, err := s.ensureHeader(seg)
	if err != nil {
		return nil, err
	}
	rows := hdr.Hi - hdr.Lo
	for _, p := range conj {
		prune, empty := s.zonePrunes(hdr, p)
		if empty {
			return nil, nil // a conjunct no row anywhere can satisfy
		}
		if prune {
			s.lazyPruned.Add(1)
			return nil, nil
		}
	}
	s.lazyScanned.Add(1)
	keep := make([]bool, rows)
	for i := range keep {
		keep[i] = true
	}
	for _, p := range conj {
		switch q := p.(type) {
		case *relation.In:
			a, _ := s.schema.Lookup(q.Attr)
			col, err := s.ensureColumn(seg, a)
			if err != nil {
				return nil, err
			}
			member := make([]bool, len(col.dict))
			for _, v := range q.SortedValues() {
				if j := sort.SearchStrings(col.dict, v); j < len(col.dict) && col.dict[j] == v {
					member[j] = true
				}
			}
			for i, c := range col.codes {
				keep[i] = keep[i] && member[c]
			}
		case *relation.Range:
			a, _ := s.schema.Lookup(q.Attr)
			col, err := s.ensureColumn(seg, a)
			if err != nil {
				return nil, err
			}
			for i, v := range col.nums {
				// Mirrors Range.Matches exactly, NaN semantics included.
				ok := !(v < q.Lo)
				if q.HiInc {
					ok = ok && v <= q.Hi
				} else {
					ok = ok && v < q.Hi
				}
				keep[i] = keep[i] && ok
			}
		}
	}
	var idx []int
	for i, k := range keep {
		if k {
			idx = append(idx, base+i)
		}
	}
	return idx, nil
}

// zonePrunes consults hdr's persisted zone map for conjunct p. prune means
// this segment provably has no match; empty means no row in ANY segment
// can match (the conjunct references a missing or mistyped attribute —
// Matches would return false everywhere).
func (s *Store) zonePrunes(hdr *segHeader, p relation.Predicate) (prune, empty bool) {
	switch q := p.(type) {
	case relation.True:
		return false, false
	case *relation.In:
		a, ok := s.schema.Lookup(q.Attr)
		if !ok || s.schema.Attr(a).Type != relation.Categorical {
			return false, true
		}
		z := hdr.Zones[a]
		for _, v := range q.SortedValues() {
			if j := sort.SearchStrings(z.Vals, v); j < len(z.Vals) && z.Vals[j] == v {
				return false, false
			}
		}
		return true, false
	case *relation.Range:
		a, ok := s.schema.Lookup(q.Attr)
		if !ok || s.schema.Attr(a).Type != relation.Numeric {
			return false, true
		}
		z := hdr.Zones[a]
		if !z.HasVal {
			return true, false // all-NaN span: Range never matches NaN
		}
		min, max := math.Float64frombits(z.MinBits), math.Float64frombits(z.MaxBits)
		if math.IsNaN(q.Hi) {
			return true, false // v <= NaN / v < NaN is false for every v
		}
		if !math.IsNaN(q.Lo) && max < q.Lo {
			return true, false
		}
		if q.HiInc {
			if min > q.Hi {
				return true, false
			}
		} else if min >= q.Hi {
			return true, false
		}
		return false, false
	}
	return false, false
}

// Stats is the durability snapshot behind healthz's "durability" block.
type Stats struct {
	Generation  uint64 `json:"generation"`
	SegmentRows int    `json:"segmentRows"`
	Segments    int    `json:"segments"`
	SealedRows  int    `json:"sealedRows"`
	TailRows    int    `json:"tailRows"`
	SyncPolicy  string `json:"syncPolicy"`
	ReadOnly    bool   `json:"readOnly"`

	Degraded        bool         `json:"degraded"`
	Quarantined     []Quarantine `json:"quarantined,omitempty"`
	QuarantinedRows int          `json:"quarantinedRows"`

	RecoveredTailRows int  `json:"recoveredTailRows"`
	RecoveredTorn     bool `json:"recoveredTorn"`

	PageWrites   uint64 `json:"pageWrites"`
	BytesWritten uint64 `json:"bytesWritten"`
	Fsyncs       uint64 `json:"fsyncs"`
	WALRecords   uint64 `json:"walRecords"`
	ColumnLoads  uint64 `json:"columnLoads"`
	LoadedBytes  uint64 `json:"loadedBytes"`
	LazyPruned   uint64 `json:"lazyPruned"`
	LazyScanned  uint64 `json:"lazyScanned"`
}

// Stats returns a point-in-time durability snapshot.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	tailRows := len(s.tail)
	if s.rel != nil {
		tailRows = s.rel.Len() - s.wal.afterRows
		if tailRows < 0 {
			tailRows = 0
		}
	}
	st := Stats{
		Generation:        s.gen,
		SegmentRows:       s.segRows,
		Segments:          len(s.segs),
		SealedRows:        s.wal.afterRows,
		TailRows:          tailRows,
		SyncPolicy:        s.opts.Sync.String(),
		ReadOnly:          s.opts.ReadOnly,
		RecoveredTailRows: s.recoveredRows,
		RecoveredTorn:     s.recoveredTorn,
	}
	s.mu.Unlock()
	st.Quarantined = s.Quarantined()
	st.Degraded = len(st.Quarantined) > 0
	for _, q := range st.Quarantined {
		st.QuarantinedRows += q.Hi - q.Lo
	}
	st.PageWrites = s.pageWrites.Load()
	st.BytesWritten = s.bytesWritten.Load()
	st.Fsyncs = s.fsyncs.Load()
	st.WALRecords = s.walRecords.Load()
	st.ColumnLoads = s.colLoads.Load()
	st.LoadedBytes = s.loadedBytes.Load()
	st.LazyPruned = s.lazyPruned.Load()
	st.LazyScanned = s.lazyScanned.Load()
	return st
}
