// Package durable is the crash-consistent on-disk half of the segmented
// store (DESIGN.md §15). Sealed segments spill to immutable per-segment
// files (dense numeric blocks, local dictionary pages, zone-map metadata in
// the header), the active tail is protected by a length-prefixed checksummed
// append WAL, and a generation-numbered manifest is replaced atomically
// (write-temp, fsync, rename, fsync-dir) so exactly one consistent view of
// the dataset is ever visible, no matter where a crash lands.
//
// Every byte that reaches disk travels inside a *page*: a u32 little-endian
// payload length, the payload, and a u32 CRC32C (Castagnoli) of the payload.
// A torn write leaves a page whose length header outruns the file or whose
// checksum fails; recovery treats either as "the record never happened".
//
// All writes flow through the store's injected helpers (writeAll, fsyncFile,
// fsyncDir) so the crash chaos suite can kill an ingest at any individual
// I/O operation — including mid-page, via faultinject's ShortWrite rules —
// and assert byte-identical recovery of the durable prefix.
package durable

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/relation"
	"repro/internal/resilience/faultinject"
)

// castagnoli is the CRC32C polynomial table; hardware-accelerated on amd64
// and arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxPagePayload bounds a single page. It exists so a corrupt length header
// (e.g. a bit flip turning 4 KiB into 4 GiB) fails fast as ErrCorrupt
// instead of driving a giant allocation.
const maxPagePayload = 1 << 28

// ErrTorn marks a page cut short by a crash: the length header or payload
// extends past the end of the file. For the WAL's final record this is the
// expected crash signature, not corruption.
var ErrTorn = errors.New("durable: torn page")

// ErrCorrupt marks a page whose bytes are all present but wrong: checksum
// mismatch or an absurd length header. Unlike a torn tail this means data
// loss inside the durable prefix, so callers quarantine rather than truncate.
var ErrCorrupt = errors.New("durable: corrupt page")

// framePage wraps payload into its on-disk framing, appending to dst.
func framePage(dst, payload []byte) []byte {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.Checksum(payload, castagnoli))
	return append(dst, sum[:]...)
}

// framedLen returns the on-disk size of a page holding n payload bytes.
func framedLen(n int) int64 { return int64(n) + 8 }

// readPage reads one page from r. It distinguishes the three outcomes
// recovery cares about: (payload, nil) for a good page, io.EOF exactly at a
// page boundary (clean end), ErrTorn when the file ends mid-page, and
// ErrCorrupt when the page is complete but fails its checksum or declares an
// absurd length.
func readPage(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, ErrTorn
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxPagePayload {
		return nil, fmt.Errorf("%w: page declares %d payload bytes", ErrCorrupt, n)
	}
	payload := make([]byte, int(n))
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, ErrTorn
	}
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, ErrTorn
	}
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(sum[:]); got != want {
		return nil, fmt.Errorf("%w: checksum %08x, want %08x", ErrCorrupt, got, want)
	}
	return payload, nil
}

// Tuple codec. A tuple encodes positionally against the schema: numeric
// cells as 8 little-endian bytes of math.Float64bits (NaN and ±0 survive
// exactly), categorical cells as a u32 length + raw bytes.

// appendTuple appends t's encoding to dst.
func appendTuple(dst []byte, schema *relation.Schema, t relation.Tuple) []byte {
	for i := 0; i < schema.Len(); i++ {
		if schema.Attr(i).Type == relation.Numeric {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(t[i].Num))
			dst = append(dst, b[:]...)
			continue
		}
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(t[i].Str)))
		dst = append(dst, n[:]...)
		dst = append(dst, t[i].Str...)
	}
	return dst
}

// decodeTuple decodes one tuple from b, which must hold exactly one
// encoding (a WAL record's full payload).
func decodeTuple(b []byte, schema *relation.Schema) (relation.Tuple, error) {
	t := make(relation.Tuple, schema.Len())
	for i := 0; i < schema.Len(); i++ {
		if schema.Attr(i).Type == relation.Numeric {
			if len(b) < 8 {
				return nil, fmt.Errorf("%w: tuple truncated at cell %d", ErrCorrupt, i)
			}
			t[i] = relation.NumberValue(math.Float64frombits(binary.LittleEndian.Uint64(b)))
			b = b[8:]
			continue
		}
		if len(b) < 4 {
			return nil, fmt.Errorf("%w: tuple truncated at cell %d", ErrCorrupt, i)
		}
		n := int(binary.LittleEndian.Uint32(b))
		b = b[4:]
		if n > len(b) {
			return nil, fmt.Errorf("%w: string cell %d declares %d bytes, %d remain", ErrCorrupt, i, n, len(b))
		}
		t[i] = relation.StringValue(string(b[:n]))
		b = b[n:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after tuple", ErrCorrupt, len(b))
	}
	return t, nil
}

// attrMeta is the schema as serialized into WAL headers, segment headers,
// and the manifest; the three copies cross-check at Open.
type attrMeta struct {
	Name string `json:"name"`
	Type string `json:"type"` // "cat" | "num"
}

func schemaMeta(s *relation.Schema) []attrMeta {
	out := make([]attrMeta, s.Len())
	for i := 0; i < s.Len(); i++ {
		a := s.Attr(i)
		out[i] = attrMeta{Name: a.Name, Type: "cat"}
		if a.Type == relation.Numeric {
			out[i].Type = "num"
		}
	}
	return out
}

func metaSchema(attrs []attrMeta) (*relation.Schema, error) {
	as := make([]relation.Attribute, len(attrs))
	for i, a := range attrs {
		as[i] = relation.Attribute{Name: a.Name, Type: relation.Categorical}
		switch a.Type {
		case "num":
			as[i].Type = relation.Numeric
		case "cat":
		default:
			return nil, fmt.Errorf("durable: unknown attribute type %q", a.Type)
		}
	}
	return relation.NewSchema(as...)
}

func sameSchema(a, b []attrMeta) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Injected I/O helpers. Every data write and every fsync the store issues
// goes through these, so the chaos suite can count a clean ingest's I/O
// operations (Injector.Hits) and then kill a replay at each one.

// writeAll writes b to f through the durable.write fault site. A ShortWrite
// rule persists a strict prefix before the error surfaces — the torn-write
// crash signature.
func (s *Store) writeAll(ctx context.Context, f *os.File, b []byte) error {
	keep, err := faultinject.InjectWrite(ctx, faultinject.SiteDurableWrite, len(b))
	if err != nil {
		if keep > 0 {
			f.Write(b[:keep]) // crash mid-record: the prefix reached disk
		}
		return err
	}
	if _, err := f.Write(b); err != nil {
		return err
	}
	s.pageWrites.Add(1)
	s.bytesWritten.Add(uint64(len(b)))
	return nil
}

// fsyncFile syncs f through the durable.fsync fault site.
func (s *Store) fsyncFile(ctx context.Context, f *os.File) error {
	if err := faultinject.Inject(ctx, faultinject.SiteDurableFsync); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	s.fsyncs.Add(1)
	return nil
}

// fsyncDir syncs the directory entry metadata — the half of the rename
// protocol that makes a rename durable, not just atomic.
func (s *Store) fsyncDir(ctx context.Context, dir string) error {
	if err := faultinject.Inject(ctx, faultinject.SiteDurableFsync); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return err
	}
	s.fsyncs.Add(1)
	return nil
}
