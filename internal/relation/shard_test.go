package relation

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"
)

func shardTestRelation(t testing.TB, n int) *Relation {
	t.Helper()
	s, err := NewSchema(
		Attribute{Name: "city", Type: Categorical},
		Attribute{Name: "price", Type: Numeric},
		Attribute{Name: "beds", Type: Numeric},
	)
	if err != nil {
		t.Fatal(err)
	}
	r := New("ListProperty", s)
	cities := []string{"Seattle", "Redmond", "Bellevue", "Kirkland", "Tacoma"}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		r.MustAppend(Tuple{
			StringValue(cities[rng.Intn(len(cities))]),
			NumberValue(float64(rng.Intn(500)) * 1000),
			NumberValue(float64(rng.Intn(6))),
		})
	}
	return r
}

// TestShardSpans pins the span arithmetic: near-equal contiguous spans that
// cover [0, Len) exactly, with the remainder spread over the leading shards,
// empty trailing shards when n exceeds the row count, and n<1 clamped to 1.
func TestShardSpans(t *testing.T) {
	cases := []struct {
		rows, n int
	}{
		{100, 4}, {101, 4}, {103, 4}, {7, 3}, {5, 8}, {0, 3}, {40, 1}, {40, -2},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("rows=%d/n=%d", tc.rows, tc.n), func(t *testing.T) {
			r := shardTestRelation(t, tc.rows)
			shards := r.Shards(tc.n)
			wantN := tc.n
			if wantN < 1 {
				wantN = 1
			}
			if len(shards) != wantN {
				t.Fatalf("got %d shards, want %d", len(shards), wantN)
			}
			pos := 0
			minLen, maxLen := tc.rows+1, 0
			for i, s := range shards {
				if s.Lo != pos {
					t.Fatalf("shard %d starts at %d, want %d (spans must be contiguous)", i, s.Lo, pos)
				}
				if s.Hi < s.Lo {
					t.Fatalf("shard %d has Hi=%d < Lo=%d", i, s.Hi, s.Lo)
				}
				if l := s.Len(); l > maxLen {
					maxLen = l
				}
				if l := s.Len(); l < minLen {
					minLen = l
				}
				pos = s.Hi
			}
			if pos != tc.rows {
				t.Fatalf("spans cover [0,%d), want [0,%d)", pos, tc.rows)
			}
			if maxLen-minLen > 1 {
				t.Errorf("span lengths differ by %d, want at most 1", maxLen-minLen)
			}
		})
	}
}

// TestShardCodesAndNumSpan checks that the per-shard views are exactly the
// parent columns cut at the span boundaries — the zero-copy reuse the
// sharded counting sort depends on.
func TestShardCodesAndNumSpan(t *testing.T) {
	r := shardTestRelation(t, 257)
	col, err := r.CatColumn("city")
	if err != nil {
		t.Fatal(err)
	}
	num, err := r.NumColumn("price")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range r.Shards(4) {
		codes := s.Codes(col)
		if !reflect.DeepEqual(codes, col.Codes[s.Lo:s.Hi]) {
			t.Fatalf("shard [%d,%d): Codes is not the parent subslice", s.Lo, s.Hi)
		}
		span := s.NumSpan(num)
		if !reflect.DeepEqual(span, num[s.Lo:s.Hi]) {
			t.Fatalf("shard [%d,%d): NumSpan is not the parent subslice", s.Lo, s.Hi)
		}
		if s.Relation() != r {
			t.Fatal("Relation() must return the parent")
		}
	}
}

// TestShardSelect checks that per-shard selection equals the span cut of the
// parent's selection, so sharded scans and whole-relation scans agree.
func TestShardSelect(t *testing.T) {
	r := shardTestRelation(t, 301)
	pred := NewAnd(
		NewIn("city", "Seattle", "Tacoma"),
		NewClosedRange("beds", 1, 4),
	)
	all := r.Select(pred)
	for _, n := range []int{1, 3, 8} {
		merged := []int{}
		for _, s := range r.Shards(n) {
			got := s.Select(pred)
			for _, row := range got {
				if row < s.Lo || row >= s.Hi {
					t.Fatalf("shards=%d: row %d outside span [%d,%d)", n, row, s.Lo, s.Hi)
				}
			}
			merged = append(merged, got...)
		}
		if !reflect.DeepEqual(merged, all) {
			t.Fatalf("shards=%d: concatenated selection differs from parent (%d vs %d rows)",
				n, len(merged), len(all))
		}
	}
}

// TestShardSortByValueDeterministic pins that the per-node numeric sort is a
// pure function of its input — including NaNs, which defeat `<` — so the
// (never-sharded) numeric path yields the same projection in every build
// regardless of the shard count.
func TestShardSortByValueDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, size := range []int{0, 1, 17, 1000, 5000} {
		col := make([]float64, size)
		tset := make([]int, size)
		for i := range col {
			col[i] = float64(rng.Intn(20)) // heavy ties on purpose
			if rng.Intn(10) == 0 {
				col[i] = math.NaN()
			}
			tset[i] = i
		}
		wantRows, wantVals := SortByValue(col, tset)
		for rep := 0; rep < 3; rep++ {
			gotRows, gotVals := SortByValue(col, tset)
			if !reflect.DeepEqual(gotRows, wantRows) {
				t.Fatalf("size=%d rep=%d: sort permutation is not deterministic", size, rep)
			}
			for i := range wantVals {
				// Bitwise comparison: NaN == NaN is false but the values
				// must still agree position by position.
				if math.Float64bits(gotVals[i]) != math.Float64bits(wantVals[i]) {
					t.Fatalf("size=%d rep=%d: vals[%d] = %v, want %v", size, rep, i, gotVals[i], wantVals[i])
				}
			}
		}
	}
}

// TestShardConcurrentAppendSelect races appends against snapshot readers;
// run under -race (ci.sh's shard pass does). Readers must always see a
// consistent prefix: each operation works off one RCU snapshot, so rows
// appended mid-scan are simply not visible to it.
func TestShardConcurrentAppendSelect(t *testing.T) {
	r := shardTestRelation(t, 500)
	pred := NewClosedRange("beds", 2, 5)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Bounded so the relation (and the per-iteration column rebuilds the
		// appends invalidate) stays small; plenty for the race detector.
		for i := 0; i < 5000; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.MustAppend(Tuple{StringValue("Seattle"), NumberValue(float64(i)), NumberValue(3)})
			runtime.Gosched()
		}
	}()

	for i := 0; i < 50; i++ {
		n := r.Len()
		for _, s := range r.Shards(4) {
			rows := s.Select(pred)
			for _, row := range rows {
				if row >= s.Hi {
					t.Fatalf("row %d beyond shard span %d", row, s.Hi)
				}
			}
		}
		if got := r.Len(); got < n {
			t.Fatalf("relation shrank: %d -> %d", n, got)
		}
		if _, err := r.CatColumn("city"); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
