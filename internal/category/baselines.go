package category

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/relation"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

// Technique names the categorization techniques compared in §6.
type Technique int

const (
	// CostBased is the paper's technique: cost-based attribute selection and
	// cost-based partitioning (Figure 6).
	CostBased Technique = iota
	// AttrCost selects the categorizing attribute by cost but partitions
	// naively (arbitrary categorical order, equi-width numeric buckets).
	AttrCost
	// NoCost selects attributes in a predefined arbitrary order and
	// partitions naively.
	NoCost
)

// String returns the technique's paper name.
func (t Technique) String() string {
	switch t {
	case CostBased:
		return "Cost-based"
	case AttrCost:
		return "Attr-cost"
	case NoCost:
		return "No cost"
	default:
		return fmt.Sprintf("Technique(%d)", int(t))
	}
}

// Baseline builds category trees with the comparison techniques of §6.1.
// Both baselines use the same level-by-level loop as the cost-based
// algorithm but replace one or both cost-guided choices with naive ones.
type Baseline struct {
	Stats *workload.Stats
	Opts  Options
	// Kind selects AttrCost or NoCost; CostBased is rejected (use
	// Categorizer).
	Kind Technique
	// Counters, when non-nil, accumulates shard-parallel telemetry (see
	// Categorizer.Counters). Shared by pointer; nil is fine.
	Counters *ShardCounters
}

// Categorize builds the baseline tree for result set r of query q. The
// candidate attribute set comes from Opts.CandidateAttrs (the "predefined
// set" of §6.1) or, when empty, from the workload's retained attributes.
func (b *Baseline) Categorize(r *relation.Relation, q *sqlparse.Query) (*Tree, error) {
	return b.CategorizeRows(r, q, r.Select(nil))
}

// CategorizeRows is Categorize over an explicit tuple-set.
func (b *Baseline) CategorizeRows(r *relation.Relation, q *sqlparse.Query, rows []int) (*Tree, error) {
	if b.Kind != AttrCost && b.Kind != NoCost {
		return nil, fmt.Errorf("category: baseline kind must be AttrCost or NoCost, got %v", b.Kind)
	}
	if b.Stats == nil {
		return nil, fmt.Errorf("category: baseline has no workload statistics")
	}
	opts := b.Opts.withDefaults()
	est := &Estimator{Stats: b.Stats}
	lc := &levelContext{
		r: r, q: q, stats: b.Stats, est: est, opts: opts,
		shards: EffectiveShards(opts.Shards), counters: b.Counters,
	}

	candidates := opts.CandidateAttrs
	if candidates == nil {
		candidates = b.Stats.Retained(opts.X)
	}
	candidates = presentInSchema(candidates, r)

	tree := &Tree{Root: &Node{Label: Label{Kind: LabelAll}, Tset: append([]int(nil), rows...), P: 1, Pw: 1}, R: r, K: opts.K}
	frontier := []*Node{tree.Root}

	for level := 1; ; level++ {
		if opts.MaxLevels > 0 && level > opts.MaxLevels {
			break
		}
		s := oversized(frontier, opts.M)
		if len(s) == 0 || len(candidates) == 0 {
			break
		}
		lc.resetLevel()
		var best *plan
		if b.Kind == NoCost {
			// Arbitrary choice without replacement (§6.1): a deterministic
			// pseudo-random pick among the remaining predefined candidates,
			// blind to cost — seeded by the level and result size so repeated
			// runs reproduce, mirroring a technique that ignores the workload.
			h := arbitraryHash(level, len(rows), len(candidates))
			for off := 0; off < len(candidates) && best == nil; off++ {
				attr := candidates[(h+off)%len(candidates)]
				best = lc.naivePlanFor(attr, s)
			}
		} else {
			best = bestPlan(candidates, s, lc, lc.naivePlanFor)
		}
		if best == nil {
			break
		}
		frontier = lc.attach(best, s)
		tree.LevelAttrs = append(tree.LevelAttrs, best.attr)
		candidates = removeAttr(candidates, best.attr)
	}
	return tree, nil
}

// arbitraryHash mixes the level and result-set size into a stable index for
// the No-cost technique's blind attribute pick.
func arbitraryHash(level, resultLen, n int) int {
	h := uint32(2166136261)
	for _, v := range []int{level, resultLen, n} {
		h ^= uint32(v)
		h *= 16777619
	}
	return int(h % uint32(n))
}

// naivePlanFor builds the §6.1 baseline partitioning for one attribute:
// single-value categories in arbitrary (lexicographic) order, or equi-width
// numeric buckets of 5× the splitpoint separation interval; empty categories
// are removed.
func (lc *levelContext) naivePlanFor(attr string, s []*Node) *plan {
	typ, ok := lc.r.Schema().TypeOf(attr)
	if !ok {
		return nil
	}
	var pl *plan
	if typ == relation.Categorical {
		pl = lc.naiveCategoricalPlan(attr, s)
	} else {
		pl = lc.naiveNumericPlan(attr, s)
	}
	if pl == nil || !pl.partitions() {
		return nil
	}
	return pl
}

func (lc *levelContext) naiveCategoricalPlan(attr string, s []*Node) *plan {
	values := lc.domainValues(attr, s)
	if len(values) == 0 {
		return nil
	}
	sort.Strings(values) // arbitrary order: lexicographic, ignoring occ(v)
	return lc.codePartition(attr, values, s)
}

func (lc *levelContext) naiveNumericPlan(attr string, s []*Node) *plan {
	vmin, vmax, ok := lc.domainRange(attr, s)
	if !ok || vmin >= vmax {
		return nil
	}
	// Equi-width boundaries at every multiple of width strictly inside
	// (vmin, vmax) — computed once for the level (§6.1).
	var globalCuts []float64
	if !lc.opts.EquiDepth {
		width := lc.equiWidth(attr, vmin, vmax)
		first := math.Floor(vmin/width)*width + width
		for v := first; v < vmax; v += width {
			if v > vmin {
				globalCuts = append(globalCuts, v)
			}
		}
	}
	nAttr := lc.stats.NAttr(attr)
	pos, _ := lc.r.Schema().Lookup(attr)
	col, err := lc.r.NumColumn(attr)
	if err != nil {
		return nil
	}
	pl := &plan{attr: attr, children: make([][]childSpec, len(s))}
	for si, n := range s {
		sp := lc.sortedProjection(n, pos, col)
		idx := make([]int, len(sp.idx)) // buildBuckets takes ownership
		copy(idx, sp.idx)
		cuts := globalCuts
		if lc.opts.EquiDepth {
			cuts = equiDepthCuts(sp.vals, lc.opts.MaxBuckets)
		}
		pl.children[si] = lc.buildBuckets(attr, vmin, vmax, cuts, sp.vals, idx, nAttr)
	}
	return pl
}

// equiDepthCuts places cuts at the quantiles of the node's sorted values —
// the classic equi-depth histogram boundary rule (§2's histogram
// comparison): every bucket holds roughly the same number of tuples,
// regardless of what past users asked for.
func equiDepthCuts(vals []float64, buckets int) []float64 {
	if buckets < 2 || len(vals) < 2 {
		return nil
	}
	var cuts []float64
	per := float64(len(vals)) / float64(buckets)
	for b := 1; b < buckets; b++ {
		i := int(per * float64(b))
		if i <= 0 || i >= len(vals) {
			continue
		}
		cut := vals[i]
		if len(cuts) > 0 && cuts[len(cuts)-1] >= cut {
			continue // duplicate value runs collapse a boundary
		}
		if cut <= vals[0] {
			continue
		}
		cuts = append(cuts, cut)
	}
	return cuts
}

// equiWidth returns the §6.1 bucket width: 5× the attribute's splitpoint
// separation interval (e.g. price splits at every multiple of 25000), with a
// span-derived fallback when the workload never ranges over the attribute.
func (lc *levelContext) equiWidth(attr string, vmin, vmax float64) float64 {
	if st := lc.stats.Splits(attr); st != nil && st.Interval > 0 {
		return 5 * st.Interval
	}
	return (vmax - vmin) / 5
}
