package category

import (
	"math"
	"strings"
	"testing"

	"repro/internal/relation"
	"repro/internal/workload"
)

// corrWorkload builds a workload with a hard neighborhood↔price
// correlation: Bellevue buyers want 200-245k, Seattle buyers want 255-300k,
// in equal volume. (The bands deliberately stop short of 250k: a closed
// BETWEEN endpoint *at* a bucket boundary legitimately overlaps both
// buckets under the paper's overlap definition, which would blur the
// correlation this fixture exists to expose. The 25k splitpoint grid snaps
// both 245k and 255k to the 250k splitpoint.)
func corrWorkload(t *testing.T) (*workload.Stats, *workload.CondIndex) {
	t.Helper()
	var queries []string
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			queries = append(queries,
				"SELECT * FROM ListProperty WHERE neighborhood IN ('Bellevue, WA') AND price BETWEEN 200000 AND 245000")
		} else {
			queries = append(queries,
				"SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA') AND price BETWEEN 255000 AND 300000")
		}
	}
	w, err := workload.ParseStrings(queries)
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.Config{Table: "ListProperty", Intervals: map[string]float64{"price": 25000}}
	return workload.Preprocess(w, cfg), workload.NewCondIndex(w, cfg)
}

// corrRelation puts homes of all prices in both neighborhoods.
func corrRelation() *relation.Relation {
	r := relation.New("ListProperty", testSchema())
	hoods := []string{"Bellevue, WA", "Seattle, WA"}
	for i := 0; i < 200; i++ {
		r.MustAppend(relation.Tuple{
			relation.StringValue(hoods[i%2]),
			relation.NumberValue(200000 + float64(i%20)*5000),
			relation.NumberValue(3),
			relation.StringValue("Condo"),
		})
	}
	return r
}

func TestConditionalProbabilitiesReflectCorrelation(t *testing.T) {
	stats, idx := corrWorkload(t)
	r := corrRelation()
	c := &Categorizer{
		Stats: stats,
		Corr:  idx,
		Opts:  Options{M: 10, X: 0.1, MaxBuckets: 2, MinBucket: 1, MinCondSupport: 5},
	}
	tree, err := c.Categorize(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, tree)
	if len(tree.LevelAttrs) < 2 {
		t.Fatalf("want 2 levels, got %v", tree.LevelAttrs)
	}
	// Find the Bellevue node and its price buckets.
	var bellevue *Node
	tree.Root.Walk(func(n *Node, _ int) bool {
		if n.Label.Kind == LabelValue && n.Label.Value == "Bellevue, WA" {
			bellevue = n
		}
		return true
	})
	if bellevue == nil || bellevue.IsLeaf() || !strings.EqualFold(bellevue.SubAttr, "price") {
		t.Fatalf("expected Bellevue node subcategorized by price, got %+v", bellevue)
	}
	// Under the independence assumption both buckets would get P ≈ 0.5
	// (half the price conditions overlap each). With correlation, the low
	// bucket's P under Bellevue must be far higher than the high bucket's.
	var lowP, highP float64
	for _, ch := range bellevue.Children {
		if ch.Label.Lo < 250000 {
			lowP = math.Max(lowP, ch.P)
		} else {
			highP = math.Max(highP, ch.P)
		}
	}
	if lowP < 0.9 {
		t.Errorf("P(low bucket | Bellevue) = %v; want ≈1 under correlation", lowP)
	}
	if highP > 0.3 {
		t.Errorf("P(high bucket | Bellevue) = %v; want ≈0 under correlation", highP)
	}
}

func TestIndependentModelMissesCorrelation(t *testing.T) {
	stats, _ := corrWorkload(t)
	r := corrRelation()
	c := NewCategorizer(stats, Options{M: 10, X: 0.1, MaxBuckets: 2, MinBucket: 1})
	tree, err := c.Categorize(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	var bellevue *Node
	tree.Root.Walk(func(n *Node, _ int) bool {
		if n.Label.Kind == LabelValue && n.Label.Value == "Bellevue, WA" {
			bellevue = n
		}
		return true
	})
	if bellevue == nil || bellevue.IsLeaf() {
		t.Skip("tree shape differs; nothing to compare")
	}
	for _, ch := range bellevue.Children {
		if ch.Label.Kind != LabelRange {
			continue
		}
		// Independent: every bucket overlapping half the workload price
		// conditions gets P ≈ 0.5 regardless of the neighborhood above it.
		if ch.P < 0.3 || ch.P > 0.7 {
			t.Errorf("independent P = %v for %q; want ≈0.5", ch.P, ch.Label)
		}
	}
}

func TestConditionalCostBelowIndependentOnCorrelatedWorkload(t *testing.T) {
	stats, idx := corrWorkload(t)
	r := corrRelation()
	opts := Options{M: 10, X: 0.1, MaxBuckets: 2, MinBucket: 1, MinCondSupport: 5}
	indep, err := NewCategorizer(stats, opts).Categorize(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	cond, err := (&Categorizer{Stats: stats, Corr: idx, Opts: opts}).Categorize(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Cost each tree under its own probability annotations: the conditional
	// model prunes better (the user interested in Bellevue explores one
	// price bucket, not an expected half of each).
	if ci, cc := TreeCostAll(indep), TreeCostAll(cond); cc > ci+1e-9 {
		t.Errorf("conditional estimated cost %v exceeds independent %v", cc, ci)
	}
}

func TestAnnotateConditionalMatchesConstruction(t *testing.T) {
	stats, idx := corrWorkload(t)
	r := corrRelation()
	opts := Options{M: 10, X: 0.1, MaxBuckets: 2, MinBucket: 1, MinCondSupport: 5}
	tree, err := (&Categorizer{Stats: stats, Corr: idx, Opts: opts}).Categorize(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	type snap struct{ p, pw float64 }
	snaps := map[*Node]snap{}
	tree.Root.Walk(func(n *Node, _ int) bool {
		snaps[n] = snap{n.P, n.Pw}
		n.P, n.Pw = -1, -1
		return true
	})
	(&Estimator{Stats: stats}).AnnotateConditional(tree, idx, opts.MinCondSupport)
	tree.Root.Walk(func(n *Node, _ int) bool {
		want := snaps[n]
		if diff(n.P, want.p) > 1e-12 || diff(n.Pw, want.pw) > 1e-12 {
			t.Errorf("node %q: annotate (%v,%v) != construction (%v,%v)",
				n.Label, n.P, n.Pw, want.p, want.pw)
		}
		return true
	})
}

func TestAnnotateConditionalNilIndexFallsBack(t *testing.T) {
	r := testRelation(300)
	stats := testStats(t)
	tree, _ := NewCategorizer(stats, Options{M: 20}).Categorize(r, nil)
	a := &Estimator{Stats: stats}
	a.AnnotateConditional(tree, nil, 0)
	// Must equal plain Annotate.
	var bad bool
	tree.Root.Walk(func(n *Node, _ int) bool {
		if diff(n.P, a.ExploreProb(n.Label)) > 1e-12 {
			bad = true
		}
		return true
	})
	if bad {
		t.Fatal("nil-index AnnotateConditional diverged from Annotate")
	}
}

func TestConditionalFallsBackOnThinSupport(t *testing.T) {
	stats, idx := corrWorkload(t)
	r := corrRelation()
	// MinCondSupport larger than the workload: conditional model never
	// applies, so the tree must match the independent one.
	opts := Options{M: 10, X: 0.1, MaxBuckets: 2, MinBucket: 1, MinCondSupport: 10000}
	cond, err := (&Categorizer{Stats: stats, Corr: idx, Opts: opts}).Categorize(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	indep, err := NewCategorizer(stats, opts).Categorize(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if TreeCostAll(cond) != TreeCostAll(indep) {
		t.Fatalf("thin support should reproduce the independent tree: %v vs %v",
			TreeCostAll(cond), TreeCostAll(indep))
	}
}

// TestConditionalTreeStillValid fuzz-checks invariants with the correlation
// model on.
func TestConditionalTreeStillValid(t *testing.T) {
	stats, idx := corrWorkload(t)
	for _, m := range []int{5, 10, 50} {
		r := corrRelation()
		c := &Categorizer{Stats: stats, Corr: idx,
			Opts: Options{M: m, X: 0.1, MinBucket: 1, MinCondSupport: 5}}
		tree, err := c.Categorize(r, nil)
		if err != nil {
			t.Fatal(err)
		}
		mustValidate(t, tree)
	}
}
