package category

import "sort"

// This file implements the category-ordering results of §5.1.2 and
// Appendix A. The ALL-scenario cost is order-invariant; the ONE-scenario
// cost is minimized by presenting subcategories in increasing
// 1/P(Cᵢ) + CostOne(Cᵢ). Because CostOne(Cᵢ) is expensive to maintain in a
// multilevel search, the paper's algorithm orders by decreasing P(Cᵢ)
// (equivalently increasing 1/P); both orders are exposed so the ablation
// bench can compare them.

// OrderByP reorders n's children by decreasing exploration probability — the
// heuristic the multilevel algorithm uses for categorical levels. The sort
// is stable so equal-probability categories keep their prior order.
func OrderByP(n *Node) {
	sort.SliceStable(n.Children, func(i, j int) bool {
		return n.Children[i].P > n.Children[j].P
	})
}

// OrderOptimalOne reorders n's children by increasing K/P(Cᵢ)+CostOne(Cᵢ),
// the optimal order for the ONE scenario. (Appendix A states the criterion
// as 1/P+Cost; redoing its swap argument with the label-examination cost K
// kept symbolic gives K/P+Cost, which reduces to the paper's form at K = 1.)
// Children with P = 0 sort last (their key is +Inf conceptually; we compare
// by cost among them).
func OrderOptimalOne(n *Node, k, frac float64) {
	type keyed struct {
		child *Node
		zero  bool
		key   float64
	}
	keys := make([]keyed, len(n.Children))
	for i, c := range n.Children {
		cost := CostOne(c, k, frac)
		if c.P == 0 {
			keys[i] = keyed{child: c, zero: true, key: cost}
		} else {
			keys[i] = keyed{child: c, key: k/c.P + cost}
		}
	}
	sort.SliceStable(keys, func(i, j int) bool {
		if keys[i].zero != keys[j].zero {
			return !keys[i].zero
		}
		return keys[i].key < keys[j].key
	})
	for i, kc := range keys {
		n.Children[i] = kc.child
	}
}

// OrderTreeOptimalOne applies OrderOptimalOne bottom-up to every node; child
// costs must be final before a parent is ordered, hence post-order.
func OrderTreeOptimalOne(t *Tree, frac float64) {
	var rec func(n *Node)
	rec = func(n *Node) {
		for _, c := range n.Children {
			rec(c)
		}
		OrderOptimalOne(n, t.K, frac)
	}
	rec(t.Root)
}

// BestOrderBruteForce returns the minimum CostOne achievable by permuting
// n's immediate children, found by exhaustive search. It is exponential and
// exists to verify the Appendix-A theorem in tests and ablations; n's child
// order is left unchanged.
func BestOrderBruteForce(n *Node, k, frac float64) float64 {
	children := append([]*Node(nil), n.Children...)
	defer func() { n.Children = children }()
	best := 0.0
	first := true
	permute(n.Children, 0, func() {
		c := CostOne(n, k, frac)
		if first || c < best {
			best, first = c, false
		}
	})
	return best
}

// permute enumerates permutations of s[i:] in place, calling f for each.
func permute(s []*Node, i int, f func()) {
	if i == len(s) {
		f()
		return
	}
	for j := i; j < len(s); j++ {
		s[i], s[j] = s[j], s[i]
		permute(s, i+1, f)
		s[i], s[j] = s[j], s[i]
	}
}
