package category

// This file implements the analytical cost models of §4.1: the expected
// number of items (category labels + data tuples) a user examines while
// exploring a tree, for the ALL scenario (find every relevant tuple, Eq. 1)
// and the ONE scenario (stop at the first relevant tuple, Eq. 2). Both
// consume the probabilities P (explore) and Pw (SHOWTUPLES) annotated on
// each node by an Estimator.

// CostAll evaluates Eq. (1) on the subtree rooted at n:
//
//	CostAll(C) = Pw(C)·|tset(C)| + (1−Pw(C))·(K·n + Σᵢ P(Cᵢ)·CostAll(Cᵢ))
//
// with CostAll(C) = |tset(C)| at leaves (Pw = 1 there). K is the cost of
// examining one category label relative to one data tuple.
func CostAll(n *Node, k float64) float64 {
	if n.IsLeaf() {
		return float64(n.Size())
	}
	showcat := k * float64(len(n.Children))
	for _, c := range n.Children {
		showcat += c.P * CostAll(c, k)
	}
	return n.Pw*float64(n.Size()) + (1-n.Pw)*showcat
}

// CostOne evaluates Eq. (2) on the subtree rooted at n:
//
//	CostOne(C) = Pw(C)·frac(C)·|tset(C)|
//	           + (1−Pw(C))·Σᵢ (Πⱼ<ᵢ (1−P(Cⱼ))) · P(Cᵢ) · (K·i + CostOne(Cᵢ))
//
// frac is the expected fraction of a tuple list scanned before the first
// relevant tuple (the paper leaves its estimator open; 0.5 is the uniform
// default).
func CostOne(n *Node, k, frac float64) float64 {
	if n.IsLeaf() {
		return frac * float64(n.Size())
	}
	var (
		sum       float64
		noneSoFar = 1.0
	)
	for i, c := range n.Children {
		sum += noneSoFar * c.P * (k*float64(i+1) + CostOne(c, k, frac))
		noneSoFar *= 1 - c.P
	}
	return n.Pw*frac*float64(n.Size()) + (1-n.Pw)*sum
}

// TreeCostAll is CostAll of the whole tree (the root is always explored).
func TreeCostAll(t *Tree) float64 { return CostAll(t.Root, t.K) }

// TreeCostOne is CostOne of the whole tree with the given frac.
func TreeCostOne(t *Tree, frac float64) float64 { return CostOne(t.Root, t.K, frac) }

// twoLevelCostAll evaluates Eq. (1) for the candidate two-level tree
// Tree(C, A) the level-by-level search builds during attribute selection
// (Figure 6): C as root with SHOWTUPLES probability pw = 1−NAttr(A)/N, and
// the proposed children as leaves. Passing child sizes and exploration
// probabilities directly avoids materializing throw-away nodes in the inner
// loop of the search.
func twoLevelCostAll(parentSize int, pw, k float64, childSizes []int, childP []float64) float64 {
	showcat := k * float64(len(childSizes))
	for i, sz := range childSizes {
		showcat += childP[i] * float64(sz)
	}
	return pw*float64(parentSize) + (1-pw)*showcat
}

// twoLevelCostAllSpecs is twoLevelCostAll reading sizes and probabilities
// straight from a plan's childSpecs, so the search's inner loop does not
// re-materialize them as throw-away slices.
func twoLevelCostAllSpecs(parentSize int, pw, k float64, specs []childSpec) float64 {
	showcat := k * float64(len(specs))
	for i := range specs {
		showcat += specs[i].p * float64(len(specs[i].tset))
	}
	return pw*float64(parentSize) + (1-pw)*showcat
}
