package category

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/relation"
)

// forceSharding drops the shard gate so even the small test relations take
// the parallel path, and restores it afterwards.
func forceSharding(t testing.TB) {
	t.Helper()
	old := shardMinTset
	shardMinTset = 1
	t.Cleanup(func() { shardMinTset = old })
}

// TestShardedGoldenEquivalence rebuilds every golden scenario with
// Options.Shards 2, 3, and 8 (shardMinTset forced to 1 so every node takes
// the parallel path; 600 rows is non-divisible by 8) and requires each tree
// to be identical — structure, labels, child order, tuple order,
// probabilities, costs — to the Shards=1 sequential build.
func TestShardedGoldenEquivalence(t *testing.T) {
	forceSharding(t)
	base := goldenScenariosWith(t, func(o Options) Options {
		o.Shards = 1
		return o
	})
	for _, shards := range []int{2, 3, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			got := goldenScenariosWith(t, func(o Options) Options {
				o.Shards = shards
				return o
			})
			if len(got) != len(base) {
				t.Fatalf("scenario count %d, want %d", len(got), len(base))
			}
			for i := range base {
				compareGolden(t, base[i], got[i])
			}
		})
	}
}

// TestShardedEmptySpans pins the empty-shard edge: with more shards than any
// node has tuples, the trailing spans are zero-length and must contribute
// nothing — the tree still matches the sequential build exactly.
func TestShardedEmptySpans(t *testing.T) {
	forceSharding(t)
	stats := testStats(t)
	r := testRelation(40) // every node is far smaller than 64 shards
	build := func(shards int) goldenTree {
		tree, err := NewCategorizer(stats, Options{M: 5, X: 0.1, Shards: shards}).Categorize(r, nil)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		mustValidate(t, tree)
		return flattenTree("empty-spans", tree)
	}
	base := build(1)
	for _, shards := range []int{8, 64} {
		got := build(shards)
		compareGolden(t, base, got)
	}
}

// TestShardCountersAccumulate checks the telemetry plumbing: a sharded build
// with a wired Counters must record sharded nodes and span tasks, and the
// snapshot must reflect the effective configuration.
func TestShardCountersAccumulate(t *testing.T) {
	forceSharding(t)
	stats := testStats(t)
	r := testRelation(600)
	c := NewCategorizer(stats, Options{M: 20, X: 0.1, Shards: 4})
	c.Counters = &ShardCounters{}
	if _, err := c.Categorize(r, nil); err != nil {
		t.Fatal(err)
	}
	st := c.Counters.Snapshot(4)
	if st.Shards != 4 {
		t.Errorf("snapshot shards = %d, want 4", st.Shards)
	}
	if st.GOMAXPROCS < 1 {
		t.Errorf("snapshot GOMAXPROCS = %d", st.GOMAXPROCS)
	}
	if st.ShardedNodes == 0 {
		t.Error("no sharded nodes recorded despite forced sharding")
	}
	if st.ShardTasks < st.ShardedNodes {
		t.Errorf("shardTasks=%d < shardedNodes=%d", st.ShardTasks, st.ShardedNodes)
	}
	// A nil counter set must be a no-op, not a crash, and snapshot cleanly.
	var nilc *ShardCounters
	if got := nilc.Snapshot(0); got.ShardedNodes != 0 || got.Shards < 1 {
		t.Errorf("nil snapshot = %+v", got)
	}
}

// TestConcurrentCategorizeAppend races categorization builds against row
// appends — and therefore segment seals and incremental projection/index
// extension — on a shared relation; run under -race (ci.sh's shard pass
// does). The RCU row store guarantees each build sees a consistent
// snapshot: row indices drawn from an older snapshot stay valid because
// rows only append. Runs at segment sizes 1 (every append seals), 64
// (seals race mid-build), and the default (tail-only churn).
func TestConcurrentCategorizeAppend(t *testing.T) {
	forceSharding(t)
	stats := testStats(t)
	for _, segRows := range []int{1, 64, 0} {
		t.Run(fmt.Sprintf("segRows=%d", segRows), func(t *testing.T) {
			forceSegmentRows(t, segRows)
			r := testRelation(600)
			template := r.Row(0)

			var wg sync.WaitGroup
			stop := make(chan struct{})
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Bounded: an unthrottled append loop grows the relation by
				// millions of rows and the builds never finish. 2000 appends
				// racing 8 builds is plenty for the race detector.
				for i := 0; i < 2000; i++ {
					select {
					case <-stop:
						return
					default:
					}
					row := append(relation.Tuple(nil), template...)
					r.MustAppend(row)
					runtime.Gosched()
				}
			}()

			for i := 0; i < 8; i++ {
				c := NewCategorizer(stats, Options{M: 20, X: 0.1, Shards: 4, Parallel: i%2 == 0})
				tree, err := c.Categorize(r, nil)
				if err != nil {
					t.Fatalf("build %d: %v", i, err)
				}
				if err := tree.Validate(); err != nil {
					t.Fatalf("build %d: %v", i, err)
				}
			}
			close(stop)
			wg.Wait()
		})
	}
}

// TestSegmentGoldenEquivalence is the iron contract at the tree layer: the
// full golden scenario set rebuilt at segment sizes 1 and 64 — where the
// 600-row test relation seals 600 and 9 segments respectively — must be
// identical in every field to the default-segment build (which never seals
// at this scale).
func TestSegmentGoldenEquivalence(t *testing.T) {
	base := goldenScenarios(t)
	for _, segRows := range []int{1, 64} {
		t.Run(fmt.Sprintf("segRows=%d", segRows), func(t *testing.T) {
			forceSegmentRows(t, segRows)
			got := goldenScenarios(t)
			if len(got) != len(base) {
				t.Fatalf("scenario count %d, want %d", len(got), len(base))
			}
			for i := range base {
				compareGolden(t, base[i], got[i])
			}
		})
	}
}

// FuzzShardEquivalence drives random (rows, M, shards) triples through both
// build paths and requires identical trees. The interesting space is small
// relations with shard counts around and above node sizes — exactly where
// span bookkeeping can go wrong.
func FuzzShardEquivalence(f *testing.F) {
	f.Add(uint16(60), uint8(5), uint8(2))
	f.Add(uint16(137), uint8(10), uint8(3))
	f.Add(uint16(600), uint8(20), uint8(8))
	f.Add(uint16(23), uint8(3), uint8(7))
	f.Add(uint16(301), uint8(12), uint8(16))

	old := shardMinTset
	shardMinTset = 1
	f.Cleanup(func() { shardMinTset = old })

	stats := testStats(f)
	f.Fuzz(func(t *testing.T, rows uint16, m, shards uint8) {
		nRows := int(rows)%1000 + 20
		optM := int(m)%30 + 2
		nShards := int(shards)%32 + 2
		r := testRelation(nRows)
		build := func(s int) string {
			tree, err := NewCategorizer(stats, Options{M: optM, X: 0.1, Shards: s}).Categorize(r, nil)
			if err != nil {
				t.Fatalf("shards=%d: %v", s, err)
			}
			data, err := json.Marshal(flattenTree("fuzz", tree))
			if err != nil {
				t.Fatal(err)
			}
			return string(data)
		}
		seq := build(1)
		par := build(nShards)
		if seq != par {
			t.Errorf("rows=%d M=%d shards=%d: sharded tree differs from sequential\nseq: %s\npar: %s",
				nRows, optM, nShards, seq, par)
		}
	})
}
