package category

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/sqlparse"
	"repro/internal/workload"
)

// The repair tests pin the tentpole invariant of DESIGN.md §13: a tree
// repaired from an old snapshot's trace under new statistics is byte-identical
// — labels, child order, tuple order, probabilities — to a from-scratch build
// under the new statistics. Comparison is exact (float bit-equality via ==),
// stricter than the golden fixture's 1e-9 tolerance, because repair reuses the
// same arithmetic, not merely approximates it.

var repairCfg = workload.Config{
	Table:     "ListProperty",
	Intervals: map[string]float64{"price": 25000, "bedrooms": 1},
}

// learnSeqs are deterministic stand-ins for randomized Learn traffic: each is
// a sequence of queries folded into a cloned snapshot with AddQuery, the exact
// mutation the adaptive serving layer performs.
var learnSeqs = map[string][]string{
	"empty": {},
	"hoodburst": {
		"SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA')",
		"SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA')",
		"SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA')",
		"SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA')",
		"SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA')",
	},
	"pricedrift": {
		"SELECT * FROM ListProperty WHERE price BETWEEN 210000 AND 260000",
	},
	"newattr": {
		"SELECT * FROM ListProperty WHERE sqft BETWEEN 1000 AND 2000",
	},
	"mixed": {
		"SELECT * FROM ListProperty WHERE bedrooms BETWEEN 1 AND 3",
		"SELECT * FROM ListProperty WHERE propertytype = 'Townhouse'",
		"SELECT * FROM ListProperty WHERE neighborhood IN ('Kirkland, WA') AND price BETWEEN 240000 AND 280000",
	},
}

func init() {
	// storm: 25 queries cycling through every attribute — enough drift to
	// exercise the divergence path on most configurations.
	var storm []string
	for i := 0; i < 25; i++ {
		switch i % 4 {
		case 0:
			storm = append(storm, fmt.Sprintf(
				"SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA') AND price BETWEEN %d AND %d",
				200000+5000*i, 250000+5000*i))
		case 1:
			storm = append(storm, "SELECT * FROM ListProperty WHERE bedrooms BETWEEN 3 AND 5")
		case 2:
			storm = append(storm, "SELECT * FROM ListProperty WHERE propertytype = 'House'")
		default:
			storm = append(storm, fmt.Sprintf(
				"SELECT * FROM ListProperty WHERE price BETWEEN %d AND %d", 205000+7000*i, 230000+7000*i))
		}
	}
	learnSeqs["storm"] = storm
}

type repairScenario struct {
	name string
	opts Options
	sql  string // optional query; empty means browse (whole relation)
}

// repairScenarios mirrors the golden scenario table's cost-based
// configurations (repair applies only to the cost-based technique under the
// independence model) plus shard and depth-bound variants.
func repairScenarios() []repairScenario {
	return []repairScenario{
		{name: "costbased-seq", opts: Options{M: 20, X: 0.1}},
		{name: "costbased-parallel", opts: Options{M: 20, X: 0.1, Parallel: true}},
		{name: "costbased-maxcat", opts: Options{M: 10, X: 0.1, MaxCategories: 3}},
		{name: "costbased-autobuckets", opts: Options{M: 12, X: 0.1, AutoBuckets: true, MaxBuckets: 4}},
		{name: "costbased-query", opts: Options{M: 15, X: 0.1},
			sql: "SELECT * FROM ListProperty WHERE neighborhood IN " +
				"('Bellevue, WA','Redmond, WA','Seattle, WA') AND price BETWEEN 200000 AND 290000"},
		{name: "costbased-sharded", opts: Options{M: 20, X: 0.1, Shards: 4}},
		{name: "costbased-shallow", opts: Options{M: 20, X: 0.1, MaxLevels: 1}},
	}
}

// learnedStats folds seq into a clone of base, the way AdaptiveSystem.learn
// does.
func learnedStats(t *testing.T, base *workload.Stats, seq []string) *workload.Stats {
	t.Helper()
	next := base.Clone()
	for _, sql := range seq {
		q, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		next.AddQuery(q, repairCfg)
	}
	return next
}

// assertSameTree compares two trees exactly: identical structure and bitwise
// identical floats.
func assertSameTree(t *testing.T, label string, want, got *Tree) {
	t.Helper()
	w := flattenTree(label, want)
	g := flattenTree(label, got)
	if !reflect.DeepEqual(w, g) {
		if len(w.Nodes) != len(g.Nodes) {
			t.Fatalf("%s: repaired tree has %d nodes, rebuild has %d", label, len(g.Nodes), len(w.Nodes))
		}
		for i := range w.Nodes {
			if !reflect.DeepEqual(w.Nodes[i], g.Nodes[i]) {
				t.Fatalf("%s: node %d differs:\nrepair:  %+v\nrebuild: %+v", label, i, g.Nodes[i], w.Nodes[i])
			}
		}
		t.Fatalf("%s: trees differ: levelAttrs repair=%v rebuild=%v costAll repair=%v rebuild=%v",
			label, g.LevelAttrs, w.LevelAttrs, g.CostAll, w.CostAll)
	}
}

func TestRepairEquivalence(t *testing.T) {
	base := testStats(t)
	r := testRelation(600)
	for _, sc := range repairScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			var q *sqlparse.Query
			rows := r.Select(nil)
			if sc.sql != "" {
				var err error
				q, err = sqlparse.Parse(sc.sql)
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				rows = r.Select(q.Predicate())
			}
			c0 := NewCategorizer(base, sc.opts)
			c0.RecordTrace = true
			old, err := c0.CategorizeRows(r, q, rows)
			if err != nil {
				t.Fatalf("build old: %v", err)
			}
			if old.Trace == nil {
				t.Fatalf("RecordTrace build produced no trace")
			}
			for seqName, seq := range learnSeqs {
				next := learnedStats(t, base, seq)
				diff := workload.DiffStats(base, next, 0)
				c1 := NewCategorizer(next, sc.opts)
				c1.RecordTrace = true
				repaired, info, err := c1.Repair(r, q, old, diff)
				if err != nil {
					t.Fatalf("%s: repair: %v", seqName, err)
				}
				if !info.OK || repaired == nil {
					t.Fatalf("%s: repair declined (info=%+v)", seqName, info)
				}
				want, err := c1.CategorizeRows(r, q, rows)
				if err != nil {
					t.Fatalf("%s: rebuild: %v", seqName, err)
				}
				mustValidate(t, repaired)
				assertSameTree(t, sc.name+"/"+seqName, want, repaired)
				if got := info.CopiedNodes + info.RebuiltNodes; got != repaired.NodeCount() {
					t.Errorf("%s: info counts %d+%d != %d nodes",
						seqName, info.CopiedNodes, info.RebuiltNodes, repaired.NodeCount())
				}
				if len(seq) == 0 {
					if !diff.Same {
						t.Fatalf("empty learn sequence diffs as changed")
					}
					if info.RebuiltNodes != 0 {
						t.Errorf("identical stats rebuilt %d nodes; want pure copy", info.RebuiltNodes)
					}
				}
			}
		})
	}
}

// TestRepairChained verifies the trace a repair records is itself
// repair-grade: a second learn step repairs the repaired tree, not a fresh
// build.
func TestRepairChained(t *testing.T) {
	base := testStats(t)
	r := testRelation(600)
	rows := r.Select(nil)
	opts := Options{M: 20, X: 0.1}

	c0 := NewCategorizer(base, opts)
	c0.RecordTrace = true
	t0, err := c0.CategorizeRows(r, nil, rows)
	if err != nil {
		t.Fatal(err)
	}

	s1 := learnedStats(t, base, learnSeqs["hoodburst"])
	c1 := NewCategorizer(s1, opts)
	c1.RecordTrace = true
	t1, info, err := c1.Repair(r, nil, t0, workload.DiffStats(base, s1, 0))
	if err != nil || !info.OK {
		t.Fatalf("first repair: info=%+v err=%v", info, err)
	}
	if t1.Trace == nil {
		t.Fatalf("repair produced no trace")
	}

	s2 := learnedStats(t, s1, learnSeqs["pricedrift"])
	c2 := NewCategorizer(s2, opts)
	c2.RecordTrace = true
	t2, info, err := c2.Repair(r, nil, t1, workload.DiffStats(s1, s2, 0))
	if err != nil || !info.OK {
		t.Fatalf("chained repair: info=%+v err=%v", info, err)
	}
	want, err := c2.CategorizeRows(r, nil, rows)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, t2)
	assertSameTree(t, "chained", want, t2)
}

func TestRepairDeclines(t *testing.T) {
	base := testStats(t)
	r := testRelation(600)
	rows := r.Select(nil)
	opts := Options{M: 20, X: 0.1}
	next := learnedStats(t, base, learnSeqs["hoodburst"])
	diff := workload.DiffStats(base, next, 0)

	traced := func() *Tree {
		c := NewCategorizer(base, opts)
		c.RecordTrace = true
		tree, err := c.CategorizeRows(r, nil, rows)
		if err != nil {
			t.Fatal(err)
		}
		return tree
	}

	t.Run("traceless", func(t *testing.T) {
		plain, err := NewCategorizer(base, opts).CategorizeRows(r, nil, rows)
		if err != nil {
			t.Fatal(err)
		}
		tree, info, err := NewCategorizer(next, opts).Repair(r, nil, plain, diff)
		if err != nil || tree != nil || info.OK {
			t.Fatalf("traceless repair did not decline: tree=%v info=%+v err=%v", tree, info, err)
		}
	})

	t.Run("nil-diff", func(t *testing.T) {
		tree, info, err := NewCategorizer(next, opts).Repair(r, nil, traced(), nil)
		if err != nil || tree != nil || info.OK {
			t.Fatalf("nil-diff repair did not decline: tree=%v info=%+v err=%v", tree, info, err)
		}
	})

	t.Run("correlated", func(t *testing.T) {
		corrStats, corrIdx := corrWorkload(t)
		c := &Categorizer{Stats: corrStats, Corr: corrIdx, Opts: opts.withDefaults()}
		tree, info, err := c.Repair(r, nil, traced(), diff)
		if err != nil || tree != nil || info.OK {
			t.Fatalf("correlated repair did not decline: tree=%v info=%+v err=%v", tree, info, err)
		}
	})

	t.Run("budget", func(t *testing.T) {
		c := NewCategorizer(base, opts) // identical stats: pure copy path
		c.RecordTrace = true
		c.RepairBudget = 1
		tree, info, err := c.Repair(r, nil, traced(), workload.DiffStats(base, base.Clone(), 0))
		if err != nil || tree != nil || info.OK {
			t.Fatalf("over-budget repair did not decline: tree=%v info=%+v err=%v", tree, info, err)
		}
	})
}

// FuzzRepairEquivalence interprets fuzz bytes as a learn sequence — each byte
// picks one query from a fixed pool — and checks repair(old, diff) ≡
// rebuild(new) exactly.
func FuzzRepairEquivalence(f *testing.F) {
	pool := []string{
		"SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA')",
		"SELECT * FROM ListProperty WHERE neighborhood IN ('Kirkland, WA')",
		"SELECT * FROM ListProperty WHERE price BETWEEN 210000 AND 260000",
		"SELECT * FROM ListProperty WHERE price BETWEEN 230000 AND 235000",
		"SELECT * FROM ListProperty WHERE bedrooms BETWEEN 1 AND 2",
		"SELECT * FROM ListProperty WHERE bedrooms BETWEEN 4 AND 6",
		"SELECT * FROM ListProperty WHERE propertytype = 'House'",
		"SELECT * FROM ListProperty WHERE sqft BETWEEN 900 AND 1800",
	}
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{2, 2, 2})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7})

	base := testStats(f)
	r := testRelation(300)
	rows := r.Select(nil)
	opts := Options{M: 15, X: 0.1}
	c0 := NewCategorizer(base, opts)
	c0.RecordTrace = true
	old, err := c0.CategorizeRows(r, nil, rows)
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 24 {
			ops = ops[:24]
		}
		next := base.Clone()
		for _, b := range ops {
			q, err := sqlparse.Parse(pool[int(b)%len(pool)])
			if err != nil {
				t.Fatal(err)
			}
			next.AddQuery(q, repairCfg)
		}
		diff := workload.DiffStats(base, next, 0)
		c1 := NewCategorizer(next, opts)
		c1.RecordTrace = true
		repaired, info, err := c1.Repair(r, nil, old, diff)
		if err != nil {
			t.Fatalf("repair: %v", err)
		}
		if !info.OK || repaired == nil {
			t.Fatalf("repair declined: %+v", info)
		}
		want, err := c1.CategorizeRows(r, nil, rows)
		if err != nil {
			t.Fatalf("rebuild: %v", err)
		}
		assertSameTree(t, "fuzz", want, repaired)
	})
}
