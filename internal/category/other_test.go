package category

import (
	"strings"
	"testing"

	"repro/internal/relation"
	"repro/internal/sqlparse"
)

// otherTree builds a tree with MaxCategories=3 over the 5-neighborhood test
// relation, forcing an "Other" category on the neighborhood level.
func otherTree(t *testing.T) *Tree {
	t.Helper()
	r := testRelation(600)
	c := NewCategorizer(testStats(t), Options{
		M: 20, X: 0.1, MaxCategories: 3,
		CandidateAttrs: []string{"neighborhood", "price"},
	})
	tree, err := c.Categorize(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, tree)
	return tree
}

func findValueSet(tree *Tree) *Node {
	var other *Node
	tree.Root.Walk(func(n *Node, _ int) bool {
		if other == nil && n.Label.Kind == LabelValueSet {
			other = n
		}
		return other == nil
	})
	return other
}

func TestMaxCategoriesCreatesOther(t *testing.T) {
	tree := otherTree(t)
	// The neighborhood level must have at most 3 children per node.
	tree.Root.Walk(func(n *Node, _ int) bool {
		if !n.IsLeaf() && strings.EqualFold(n.SubAttr, "neighborhood") && len(n.Children) > 3 {
			t.Errorf("node %q has %d children; MaxCategories=3", n.Label, len(n.Children))
		}
		return true
	})
	other := findValueSet(tree)
	if other == nil {
		t.Fatal("no Other category created (5 neighborhoods, max 3)")
	}
	if len(other.Label.Values) != 3 {
		t.Fatalf("Other holds %d values; want 3 (5 hoods − 2 singles)", len(other.Label.Values))
	}
}

func TestOtherLabelRendering(t *testing.T) {
	short := Label{Kind: LabelValueSet, Attr: "Neighborhood", Values: []string{"Bellevue", "Redmond"}}
	if got := short.String(); got != "Neighborhood: Bellevue, Redmond" {
		t.Errorf("short set label = %q", got)
	}
	long := Label{Kind: LabelValueSet, Attr: "n", Values: []string{"a", "b", "c", "d", "e"}}
	if got := long.String(); got != "n: Other (5 values)" {
		t.Errorf("long set label = %q", got)
	}
}

func TestOtherPredicateMatchesMembers(t *testing.T) {
	tree := otherTree(t)
	other := findValueSet(tree)
	if other == nil {
		t.Skip("no Other category")
	}
	pred := other.Label.Predicate()
	for _, i := range other.Tset {
		if !pred.Matches(tree.R.Schema(), tree.R.Row(i)) {
			t.Fatalf("Other tuple %d does not satisfy its label", i)
		}
	}
}

func TestOtherKeepsSingleValueCategoriesHot(t *testing.T) {
	// The head categories (before Other) must be the most-requested values:
	// Bellevue and Redmond dominate the testStats workload.
	tree := otherTree(t)
	var hoodParent *Node
	tree.Root.Walk(func(n *Node, _ int) bool {
		if hoodParent == nil && strings.EqualFold(n.SubAttr, "neighborhood") {
			hoodParent = n
		}
		return hoodParent == nil
	})
	if hoodParent == nil {
		t.Skip("neighborhood not a level")
	}
	singles := map[string]bool{}
	for _, ch := range hoodParent.Children {
		if ch.Label.Kind == LabelValue {
			singles[ch.Label.Value] = true
		}
	}
	if !singles["Bellevue, WA"] || !singles["Redmond, WA"] {
		t.Errorf("hot values not kept as single categories: %v", singles)
	}
}

func TestOtherExplorationProbability(t *testing.T) {
	tree := otherTree(t)
	other := findValueSet(tree)
	if other == nil {
		t.Skip("no Other category")
	}
	if other.P < 0 || other.P > 1 {
		t.Fatalf("Other P = %v; want [0,1]", other.P)
	}
}

func TestOtherRefines(t *testing.T) {
	tree := otherTree(t)
	other := findValueSet(tree)
	if other == nil {
		t.Skip("no Other category")
	}
	// Locate the path to the Other node.
	var path []int
	var walk func(n *Node, p []int) bool
	walk = func(n *Node, p []int) bool {
		if n == other {
			path = append([]int(nil), p...)
			return true
		}
		for i, c := range n.Children {
			if walk(c, append(p, i)) {
				return true
			}
		}
		return false
	}
	walk(tree.Root, nil)
	refined, err := tree.RefineQuery(nil, path)
	if err != nil {
		t.Fatalf("RefineQuery: %v", err)
	}
	got := tree.R.Select(refined.Predicate())
	if len(got) != other.Size() {
		t.Fatalf("refined query selects %d rows; Other holds %d\nsql: %s", len(got), other.Size(), refined)
	}
	if _, err := sqlparse.Parse(refined.String()); err != nil {
		t.Fatalf("refined SQL unparseable: %v", err)
	}
}

func TestMaxCategoriesZeroUnbounded(t *testing.T) {
	r := testRelation(600)
	c := NewCategorizer(testStats(t), Options{M: 20, X: 0.1, CandidateAttrs: []string{"neighborhood", "price"}})
	tree, err := c.Categorize(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if findValueSet(tree) != nil {
		t.Fatal("unbounded categorization must not create Other categories")
	}
}

func TestMaxCategoriesOneIsIgnored(t *testing.T) {
	// MaxCategories ≤ 1 cannot partition anything; treated as unbounded.
	r := testRelation(200)
	c := NewCategorizer(testStats(t), Options{M: 20, X: 0.1, MaxCategories: 1, CandidateAttrs: []string{"neighborhood"}})
	tree, err := c.Categorize(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, tree)
	if !tree.Root.IsLeaf() && len(tree.Root.Children) <= 1 {
		t.Fatal("MaxCategories=1 should be ignored, not produce single-child levels")
	}
}

func TestOtherWithConditionalModel(t *testing.T) {
	stats, idx := corrWorkload(t)
	r := relation.New("ListProperty", testSchema())
	hoods := []string{"Bellevue, WA", "Seattle, WA", "Kirkland, WA", "Renton, WA"}
	for i := 0; i < 300; i++ {
		r.MustAppend(relation.Tuple{
			relation.StringValue(hoods[i%4]),
			relation.NumberValue(200000 + float64(i%20)*5000),
			relation.NumberValue(3),
			relation.StringValue("Condo"),
		})
	}
	c := &Categorizer{Stats: stats, Corr: idx, Opts: Options{
		M: 10, X: 0.1, MaxCategories: 3, MinBucket: 1, MinCondSupport: 5,
		CandidateAttrs: []string{"neighborhood", "price"},
	}}
	tree, err := c.Categorize(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, tree)
}
