package category

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/relation"
)

// Trees serialize without their relation: the structure (labels, tuple-set
// indices, probabilities) is written, and LoadTree re-binds it to the
// relation the indices refer to. This lets a service cache categorizations
// of hot queries across restarts next to the persisted count tables.

type nodeWire struct {
	Label    Label
	Tset     []int
	SubAttr  string
	P, Pw    float64
	Children []nodeWire
}

type treeWire struct {
	Root       nodeWire
	LevelAttrs []string
	K          float64
}

// Save writes the tree structure to w.
func (t *Tree) Save(w io.Writer) error {
	if t.Root == nil {
		return fmt.Errorf("category: cannot save a rootless tree")
	}
	wire := treeWire{Root: toWire(t.Root), LevelAttrs: t.LevelAttrs, K: t.K}
	if err := gob.NewEncoder(w).Encode(&wire); err != nil {
		return fmt.Errorf("category: encoding tree: %w", err)
	}
	return nil
}

func toWire(n *Node) nodeWire {
	out := nodeWire{Label: n.Label, Tset: n.Tset, SubAttr: n.SubAttr, P: n.P, Pw: n.Pw}
	for _, c := range n.Children {
		out.Children = append(out.Children, toWire(c))
	}
	return out
}

// LoadTree reads a tree written by Save and binds it to rel. The loaded
// tree is validated: its tuple indices must be within rel and the structural
// invariants (§3.1) must hold against rel's current contents — a changed
// relation invalidates a cached tree.
func LoadTree(r io.Reader, rel *relation.Relation) (*Tree, error) {
	var wire treeWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("category: decoding tree: %w", err)
	}
	t := &Tree{Root: fromWire(&wire.Root), LevelAttrs: wire.LevelAttrs, K: wire.K, R: rel}
	var bad error
	t.Root.Walk(func(n *Node, _ int) bool {
		for _, i := range n.Tset {
			if i < 0 || i >= rel.Len() {
				bad = fmt.Errorf("category: tree references tuple %d outside relation of %d rows", i, rel.Len())
				return false
			}
		}
		return true
	})
	if bad != nil {
		return nil, bad
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("category: loaded tree does not match the relation: %w", err)
	}
	return t, nil
}

func fromWire(w *nodeWire) *Node {
	n := &Node{Label: w.Label, Tset: w.Tset, SubAttr: w.SubAttr, P: w.P, Pw: w.Pw}
	for i := range w.Children {
		n.Children = append(n.Children, fromWire(&w.Children[i]))
	}
	return n
}
