package category

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/relation"
	"repro/internal/resilience/faultinject"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

// Options tunes the categorizer. The zero value is usable: Defaults are
// applied per field (paper values where the paper gives them).
type Options struct {
	// M is the maximum tuples per category before it must be subcategorized
	// (§5.2). Default 20, the paper's user-study setting.
	M int
	// K is the cost of examining one category label relative to one data
	// tuple (§4.1). Default 1.
	K float64
	// X is the attribute-elimination threshold of §5.1.1: attributes used by
	// fewer than X·N workload queries are discarded. Default 0.4, the
	// paper's home-search setting.
	X float64
	// MaxBuckets is m, the number of buckets a numeric partitioning may
	// produce (§5.1.3). Default 8.
	MaxBuckets int
	// MinBucket is the "too few tuples" bound making a splitpoint
	// unnecessary. Default max(1, M/4).
	MinBucket int
	// Frac is frac(C) for the ONE-scenario cost model: the expected fraction
	// of a tuple list scanned before the first relevant tuple. Default 0.5.
	Frac float64
	// AutoBuckets lets splitpoint goodness determine m: every candidate
	// scoring above 5% of the best is eligible (§5.1.3's closing remark).
	AutoBuckets bool
	// CandidateAttrs overrides workload-based attribute elimination with an
	// explicit candidate set (used by the baseline techniques, which draw
	// from a predefined set).
	CandidateAttrs []string
	// MaxZeroCandidates caps how many zero-goodness grid points are admitted
	// as fallback splitpoints per level. Default 64.
	MaxZeroCandidates int
	// MaxLevels bounds tree depth; 0 means no bound beyond the 1:1
	// level-attribute rule.
	MaxLevels int
	// EquiDepth switches the baseline techniques' naive numeric partitioner
	// from the paper's equi-width buckets to equi-depth (quantile) buckets —
	// the classic histogram boundary rule, exposed for the splitpoint
	// ablation. Ignored by the cost-based technique.
	EquiDepth bool
	// Parallel evaluates the candidate attributes of each level
	// concurrently (one goroutine per candidate). The chosen tree is
	// identical to the sequential one: all candidates are costed and ties
	// break on candidate order.
	Parallel bool
	// MaxCategories bounds a categorical level's fan-out: when a node would
	// get more than MaxCategories children, the least-requested values are
	// merged into one trailing multi-value "Other" category (rendered like
	// Figure 1's "Neighborhood: Redmond, Bellevue"). 0 means unbounded, the
	// paper's single-value-only behaviour (§5.1.2).
	MaxCategories int
	// MinCondSupport is the minimum number of path-compatible workload
	// queries (and of those, queries filtering on the candidate attribute)
	// required before the correlation model overrides the independent
	// estimates; below it the paper's independence assumption is used.
	// Default 8. Only meaningful when the Categorizer has a CondIndex.
	MinCondSupport int
	// Shards is the shard-parallel fan-out for per-node partition work
	// (shard.go): nodes with at least shardMinTset tuples are counted and
	// filled by this many concurrent span workers, and large numeric sorts
	// go through the chunked merge. The resulting tree is byte-identical to
	// the unsharded build at every shard count. 0 means one shard per
	// available CPU (resolved at categorization time); 1 disables sharding.
	Shards int
}

func (o Options) withDefaults() Options {
	if o.M == 0 {
		o.M = 20
	}
	if o.K == 0 {
		o.K = 1
	}
	if o.X == 0 {
		o.X = 0.4
	}
	if o.MaxBuckets == 0 {
		o.MaxBuckets = 8
	}
	if o.MinBucket == 0 {
		o.MinBucket = o.M / 4
		if o.MinBucket < 1 {
			o.MinBucket = 1
		}
	}
	if o.Frac == 0 {
		o.Frac = 0.5
	}
	if o.MaxZeroCandidates == 0 {
		o.MaxZeroCandidates = 64
	}
	if o.MinCondSupport == 0 {
		o.MinCondSupport = 8
	}
	return o
}

// Categorizer builds min-cost category trees over query results using
// workload statistics (the paper's cost-based technique, Figure 6).
type Categorizer struct {
	Stats *workload.Stats
	Opts  Options
	// Corr, when non-nil, replaces the paper's attribute-independence
	// assumption with path-conditional probabilities computed from the
	// retained workload conditions (§5.2's proposed correlation
	// refinement). Falls back to the independent estimates wherever the
	// conditional sample is smaller than Opts.MinCondSupport.
	Corr *workload.CondIndex
	// Ctx, when non-nil, lets a serving layer abandon a categorization
	// mid-build: the level loop, the candidate fan-out, and the shard
	// workers poll it and return ctx's error instead of completing the
	// tree. Trees are never returned partially built.
	Ctx context.Context
	// Counters, when non-nil, accumulates shard-parallel telemetry across
	// builds (healthz's "sharding" block). Shared by pointer; nil is fine.
	Counters *ShardCounters
	// RecordTrace makes the build record a BuildTrace on the tree — the
	// structural record Repair consumes (DESIGN.md §13). Off by default: the
	// trace costs allocations proportional to candidates × levels, which
	// one-shot builds never amortize. The serving layer turns it on for
	// cacheable cost-based builds.
	RecordTrace bool
	// RepairBudget bounds how many old-tree nodes one Repair call may copy
	// before giving up in favor of a full rebuild; 0 means
	// DefaultRepairBudget.
	RepairBudget int
}

// NewCategorizer returns a Categorizer over the given workload statistics
// with the paper's default parameters.
func NewCategorizer(stats *workload.Stats, opts Options) *Categorizer {
	return &Categorizer{Stats: stats, Opts: opts.withDefaults()}
}

// Categorize builds the category tree for result set r of query q
// level-by-level (Figure 6): at each level it evaluates every retained,
// unused attribute's best partitioning of the oversized categories and
// commits the one minimizing Σ P(C)·CostAll(Tree(C,A)). q may be nil for
// browsing applications (the whole relation is the result set); it supplies
// the value domains when present.
func (c *Categorizer) Categorize(r *relation.Relation, q *sqlparse.Query) (*Tree, error) {
	return c.categorize(r, q, r.Select(nil))
}

// CategorizeRows is Categorize over an explicit tuple-set (row indices into
// r), for callers that have already executed the selection.
func (c *Categorizer) CategorizeRows(r *relation.Relation, q *sqlparse.Query, rows []int) (*Tree, error) {
	return c.categorize(r, q, rows)
}

func (c *Categorizer) categorize(r *relation.Relation, q *sqlparse.Query, rows []int) (*Tree, error) {
	if c.Stats == nil {
		return nil, fmt.Errorf("category: categorizer has no workload statistics")
	}
	opts := c.Opts.withDefaults()
	est := &Estimator{Stats: c.Stats}
	ctx := c.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if err := faultinject.Inject(ctx, faultinject.SiteCategorizeStart); err != nil {
		return nil, fmt.Errorf("category: categorization abandoned: %w", err)
	}
	lc := &levelContext{
		r: r, q: q, stats: c.Stats, est: est, opts: opts, corr: c.Corr, ctx: ctx,
		shards: EffectiveShards(opts.Shards), counters: c.Counters,
	}

	candidates := opts.CandidateAttrs
	if candidates == nil {
		candidates = c.Stats.Retained(opts.X)
	}
	candidates = presentInSchema(candidates, r)

	// The root owns a copy: callers keep their slice, and later in-place
	// reorderings of the tree (ranking) cannot reach the caller's data.
	tree := &Tree{Root: &Node{Label: Label{Kind: LabelAll}, Tset: append([]int(nil), rows...), P: 1, Pw: 1}, R: r, K: opts.K}
	if c.RecordTrace && c.Corr == nil {
		// Traces serve repair, and repair only applies under the independence
		// model: the correlation refinement's probabilities depend on the
		// retained per-query conditions, which the trace does not capture.
		tree.Trace = &BuildTrace{Candidates: append([]string(nil), candidates...)}
	}
	frontier := []*Node{tree.Root}
	if c.Corr != nil {
		lc.compat = map[*Node][]int{tree.Root: c.Corr.AllIDs()}
	}
	if err := c.runLevels(lc, tree, frontier, candidates, 1); err != nil {
		return nil, err
	}
	return tree, nil
}

// runLevels executes the level-greedy loop (Figure 6) from startLevel,
// mutating tree in place: per level it evaluates every remaining candidate's
// best partitioning of the oversized frontier and commits the argmin. It is
// the shared tail of categorize and of Repair's divergence path (the repair
// pass copies stable levels, then hands the remaining levels to the exact
// loop a rebuild would run).
func (c *Categorizer) runLevels(lc *levelContext, tree *Tree, frontier []*Node, candidates []string, startLevel int) error {
	opts := lc.opts
	ctx := lc.ctx
	for level := startLevel; ; level++ {
		if opts.MaxLevels > 0 && level > opts.MaxLevels {
			break
		}
		if err := faultinject.Inject(ctx, faultinject.SiteCategorizeLevel); err != nil {
			return fmt.Errorf("category: categorization abandoned: %w", err)
		}
		s := oversized(frontier, opts.M)
		if len(s) == 0 || len(candidates) == 0 {
			break
		}
		lc.resetLevel()
		best, all := bestPlanAll(candidates, s, lc, lc.planFor, tree.Trace != nil)
		if err := ctxExpired(ctx); err != nil {
			// A cancellation mid-fan-out may have skipped candidates; the
			// surviving plan would be valid but not necessarily the best, so
			// the whole build is abandoned rather than committed.
			return fmt.Errorf("category: categorization abandoned: %w", err)
		}
		if tree.Trace != nil {
			lt := LevelTrace{
				Candidates: append([]string(nil), candidates...),
				Sketches:   make([]*planSketch, len(candidates)),
			}
			for i, pl := range all {
				if pl != nil {
					lt.Sketches[i] = sketchPlan(pl, s)
				}
			}
			if best != nil {
				lt.Chosen = best.attr
			}
			tree.Trace.Levels = append(tree.Trace.Levels, lt)
		}
		if best == nil {
			break // no attribute partitions anything at this level
		}
		frontier = lc.attach(best, s)
		tree.LevelAttrs = append(tree.LevelAttrs, best.attr)
		candidates = removeAttr(candidates, best.attr)
	}
	return nil
}

// bestPlan evaluates every candidate attribute's partitioning of S with
// build and returns the plan minimizing the Figure 6 objective, or nil if
// none partitions anything. With Options.Parallel the candidates are
// evaluated by a bounded worker pool (at most GOMAXPROCS goroutines pulling
// candidates off a shared counter), so a wide candidate set cannot fan out
// into unbounded goroutines; selection is order-deterministic either way
// (all candidates are costed and ties break on candidate-list position).
func bestPlan(candidates []string, s []*Node, lc *levelContext, build func(string, []*Node) *plan) *plan {
	best, _ := bestPlanAll(candidates, s, lc, build, false)
	return best
}

// bestPlanAll is bestPlan optionally exposing every candidate's plan (parallel
// to candidates; nil where the candidate produced none) so a tracing build can
// sketch the losing plans before they are discarded.
func bestPlanAll(candidates []string, s []*Node, lc *levelContext, build func(string, []*Node) *plan, wantAll bool) (*plan, []*plan) {
	type scored struct {
		pl   *plan
		cost float64
	}
	results := make([]scored, len(candidates))
	eval := func(i int) {
		if ctxExpired(lc.ctx) != nil {
			return // abandoned build; categorize discards the level
		}
		if pl := build(candidates[i], s); pl != nil {
			results[i] = scored{pl, lc.planCost(pl, s)}
		}
	}
	if lc.opts.Parallel && len(candidates) > 1 {
		workers := runtime.GOMAXPROCS(0)
		if workers > len(candidates) {
			workers = len(candidates)
		}
		var next int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1)) - 1
					if i >= len(candidates) {
						return
					}
					eval(i)
				}
			}()
		}
		wg.Wait()
	} else {
		for i := range candidates {
			eval(i)
		}
	}
	var best *plan
	bestCost := 0.0
	for _, r := range results {
		if r.pl == nil {
			continue
		}
		if best == nil || r.cost < bestCost {
			best, bestCost = r.pl, r.cost
		}
	}
	if !wantAll {
		return best, nil
	}
	all := make([]*plan, len(candidates))
	for i := range results {
		all[i] = results[i].pl
	}
	return best, all
}

// ctxExpired is ctx.Err() plus a wall-clock check of the deadline. A
// deadline's runtime timer needs a free P to be delivered; with a CPU-bound
// build saturating the scheduler (GOMAXPROCS=1 in the limit) delivery can lag
// by the length of the build itself, which would let a soft-budgeted build
// run arbitrarily past its deadline. Reading the clock needs no timer.
func ctxExpired(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
		return context.DeadlineExceeded
	}
	return nil
}

// oversized filters the frontier to the categories that must be partitioned:
// |tset(C)| > M (§5.2).
func oversized(frontier []*Node, m int) []*Node {
	s := make([]*Node, 0, len(frontier))
	for _, n := range frontier {
		if n.Size() > m {
			s = append(s, n)
		}
	}
	return s
}

// presentInSchema keeps the candidate attributes that exist in r's schema.
func presentInSchema(attrs []string, r *relation.Relation) []string {
	var out []string
	for _, a := range attrs {
		if _, ok := r.Schema().Lookup(a); ok {
			out = append(out, a)
		}
	}
	return out
}

// removeAttr returns attrs without attr (case-insensitively). It always
// allocates a fresh slice: attrs may be the caller's Options.CandidateAttrs,
// whose backing array must survive the level loop untouched.
func removeAttr(attrs []string, attr string) []string {
	out := make([]string, 0, len(attrs))
	for _, a := range attrs {
		if !strings.EqualFold(a, attr) {
			out = append(out, a)
		}
	}
	return out
}
