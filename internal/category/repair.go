package category

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/relation"
	"repro/internal/resilience/faultinject"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

// This file implements incremental tree repair (DESIGN.md §13): given a tree
// built under an older statistics snapshot, its build trace, and the diff
// between the snapshots, rebuild only the levels whose level-greedy choice
// could actually have flipped and copy the rest. The repaired tree is
// byte-identical to a from-scratch build under the new snapshot — the same
// equivalence discipline as the columnar (PR 1) and shard-parallel (PR 6)
// rewrites, pinned by golden and fuzz tests.
//
// Per level, three regimes, cheapest first:
//
//  1. Winner provably stable (diff.WinnerStable over the candidates plus the
//     ancestors feeding the frontier probabilities, and an identical
//     candidate list): nothing any cost reads moved, so the argmin cannot
//     have; copy the old level without evaluating anything.
//  2. Structure stable per candidate (diff.StructStable): the candidate's
//     child partition is unchanged, so its cost is re-derived from the
//     recorded sketch with table lookups — no partition work. Candidates
//     whose occ/splits tables moved (or that are new) are rebuilt live. The
//     argmin runs over the mixed costs in candidate order, bit-identical to
//     the rebuild's.
//  3. Divergence: the winner changed (or was never stable). The winning live
//     plan is attached and the remaining levels run through the standard
//     level loop — from here down this IS a rebuild, reusing nothing.
//
// Copied nodes share the old tree's tuple-set slices (immutable, and
// generation-independent while the relation's data generation is unchanged —
// the caller guarantees that by keying repairs on the data generation) but
// re-derive every probability from the new snapshot, so even "untouched"
// subtrees are re-stamped with the new P/Pw.

// DefaultRepairBudget bounds how many old-tree nodes one repair may copy
// before giving up: past the budget, the copying itself rivals a rebuild's
// partition work and the serving path is better off paying the cold build.
const DefaultRepairBudget = 1 << 17

// RepairInfo reports what a Repair call did.
type RepairInfo struct {
	// OK is false when repair was not applicable (no trace, correlation
	// model active, budget exceeded, or a structural inconsistency between
	// the trace and the diff) and the caller must fall back to a rebuild.
	OK bool
	// CopiedNodes counts nodes reused (structure-copied and re-stamped) from
	// the old tree; RebuiltNodes counts nodes built fresh after a
	// divergence. Their sum is the repaired tree's node count.
	CopiedNodes, RebuiltNodes int
}

// Repair revalidates old — a cost-based tree built for (r, q) under an older
// statistics snapshot — against the Categorizer's current statistics, using
// diff = DiffStats(oldStats, c.Stats, 0). On success the returned tree is
// byte-identical to c.CategorizeRows(r, q, rows) with the same row set, at a
// fraction of the partition work when the statistics drift is local. The old
// tree is never mutated (it may be serving concurrently). A (nil, info, nil)
// return with !info.OK means "not applicable, rebuild"; errors are
// context-cancellation only.
func (c *Categorizer) Repair(r *relation.Relation, q *sqlparse.Query, old *Tree, diff *workload.StatsDiff) (*Tree, RepairInfo, error) {
	var info RepairInfo
	if c.Stats == nil || r == nil || old == nil || old.Root == nil || old.Trace == nil || diff == nil || c.Corr != nil {
		return nil, info, nil
	}
	opts := c.Opts.withDefaults()
	est := &Estimator{Stats: c.Stats}
	ctx := c.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	// Repair is a build entry point like categorize: it passes the same
	// chaos sites, so the fault-injection suite's invariants (a certain
	// panic is contained, a stall is cancellable) cover the repair path too.
	if err := faultinject.Inject(ctx, faultinject.SiteCategorizeStart); err != nil {
		return nil, info, fmt.Errorf("category: repair abandoned: %w", err)
	}
	budget := c.RepairBudget
	if budget <= 0 {
		budget = DefaultRepairBudget
	}
	lc := &levelContext{
		r: r, q: q, stats: c.Stats, est: est, opts: opts, ctx: ctx,
		shards: EffectiveShards(opts.Shards), counters: c.Counters,
	}

	// The candidate list a rebuild would start from, under the new snapshot.
	candidates := opts.CandidateAttrs
	if candidates == nil {
		candidates = c.Stats.Retained(opts.X)
	}
	candidates = presentInSchema(candidates, r)

	tree := &Tree{
		Root: &Node{Label: Label{Kind: LabelAll}, Tset: old.Root.Tset, P: 1, Pw: 1},
		R:    r, K: opts.K,
		Trace: &BuildTrace{Candidates: append([]string(nil), candidates...)},
	}
	frontier := []*Node{tree.Root}
	oldFrontier := []*Node{old.Root}

	for level := 1; ; level++ {
		if opts.MaxLevels > 0 && level > opts.MaxLevels {
			break
		}
		if err := faultinject.Inject(ctx, faultinject.SiteCategorizeLevel); err != nil {
			return nil, info, fmt.Errorf("category: repair abandoned: %w", err)
		}
		if err := ctxExpired(ctx); err != nil {
			return nil, info, fmt.Errorf("category: repair abandoned: %w", err)
		}
		s := oversized(frontier, opts.M)
		if len(s) == 0 || len(candidates) == 0 {
			break
		}
		oldS := oversized(oldFrontier, opts.M)
		if len(oldS) != len(s) {
			return nil, RepairInfo{}, nil // trace/tree inconsistency; rebuild
		}
		var lt *LevelTrace
		if level-1 < len(old.Trace.Levels) {
			lt = &old.Trace.Levels[level-1]
		}

		// Regime 1: winner provably stable — copy without evaluating.
		if lt != nil && sameStrings(candidates, lt.Candidates) &&
			diff.WinnerStable(append(append([]string(nil), tree.LevelAttrs...), candidates...)) {
			if lt.Chosen == "" {
				tree.Trace.Levels = append(tree.Trace.Levels, LevelTrace{
					Candidates: append([]string(nil), candidates...),
					Sketches:   lt.Sketches,
				})
				break
			}
			next, oldNext, ok := c.copyLevel(tree, est, s, oldS, lt.Chosen, budget, &info)
			if !ok {
				return nil, RepairInfo{}, nil
			}
			tree.Trace.Levels = append(tree.Trace.Levels, LevelTrace{
				Chosen:     lt.Chosen,
				Candidates: append([]string(nil), candidates...),
				Sketches:   lt.Sketches,
			})
			frontier, oldFrontier = next, oldNext
			tree.LevelAttrs = append(tree.LevelAttrs, lt.Chosen)
			candidates = removeAttr(candidates, lt.Chosen)
			continue
		}

		// Regime 2: per-candidate evaluation — sketch re-cost where the
		// structure is stable, live build where it is not. Selection mirrors
		// bestPlanAll: strict-less argmin in candidate order.
		lc.resetLevel()
		sketches := make([]*planSketch, len(candidates))
		var (
			bestIdx      = -1
			bestCost     float64
			bestPl       *plan // nil when the winner came from a sketch
			bestIsSketch bool
		)
		for i, attr := range candidates {
			if err := ctxExpired(ctx); err != nil {
				return nil, info, fmt.Errorf("category: repair abandoned: %w", err)
			}
			var cost float64
			var pl *plan
			var sk *planSketch
			fromSketch := false
			if prev := traceSketch(lt, attr); lt != nil && traceHas(lt, attr) && diff.StructStable(attr) && (prev == nil || prev.matches(s)) {
				// Structure unchanged: a nil recorded sketch means the
				// candidate produced no plan then — and therefore now.
				if prev == nil {
					continue
				}
				sk, cost, fromSketch = prev, prev.cost(s, est, attr, opts.K), true
			}
			if !fromSketch {
				pl = lc.planFor(attr, s)
				if pl == nil {
					continue
				}
				cost = lc.planCost(pl, s)
				sk = sketchPlan(pl, s)
			}
			sketches[i] = sk
			if bestIdx < 0 || cost < bestCost {
				bestIdx, bestCost, bestPl, bestIsSketch = i, cost, pl, fromSketch
			}
		}
		if bestIdx < 0 {
			tree.Trace.Levels = append(tree.Trace.Levels, LevelTrace{
				Candidates: append([]string(nil), candidates...),
				Sketches:   sketches,
			})
			break
		}
		chosen := candidates[bestIdx]
		if bestIsSketch && lt != nil && chosen == lt.Chosen {
			// Winner unchanged and structurally stable: copy the old level.
			next, oldNext, ok := c.copyLevel(tree, est, s, oldS, chosen, budget, &info)
			if !ok {
				return nil, RepairInfo{}, nil
			}
			tree.Trace.Levels = append(tree.Trace.Levels, LevelTrace{
				Chosen:     chosen,
				Candidates: append([]string(nil), candidates...),
				Sketches:   sketches,
			})
			frontier, oldFrontier = next, oldNext
			tree.LevelAttrs = append(tree.LevelAttrs, chosen)
			candidates = removeAttr(candidates, chosen)
			continue
		}

		// Regime 3: divergence — attach the live winner and run the standard
		// level loop for everything below.
		if bestPl == nil {
			bestPl = lc.planFor(chosen, s)
			if bestPl == nil {
				return nil, RepairInfo{}, nil // stability said plan exists; it doesn't
			}
			sketches[bestIdx] = sketchPlan(bestPl, s)
		}
		frontier = lc.attach(bestPl, s)
		tree.Trace.Levels = append(tree.Trace.Levels, LevelTrace{
			Chosen:     bestPl.attr,
			Candidates: append([]string(nil), candidates...),
			Sketches:   sketches,
		})
		tree.LevelAttrs = append(tree.LevelAttrs, bestPl.attr)
		candidates = removeAttr(candidates, bestPl.attr)
		if err := c.runLevels(lc, tree, frontier, candidates, level+1); err != nil {
			return nil, info, err
		}
		info.OK = true
		info.RebuiltNodes = tree.NodeCount() - info.CopiedNodes
		return tree, info, nil
	}
	info.OK = true
	info.RebuiltNodes = tree.NodeCount() - info.CopiedNodes
	return tree, info, nil
}

// copyLevel reuses one old level wholesale: every oversized node's children
// are copied (fresh Node structs sharing the immutable label and tuple-set
// payloads) and re-stamped with probabilities derived from the NEW snapshot —
// exactly what attach would have assigned. Returns the new and old child
// frontiers, or ok=false when the copy would blow the node budget.
func (c *Categorizer) copyLevel(tree *Tree, est *Estimator, s, oldS []*Node, chosen string, budget int, info *RepairInfo) (frontier, oldFrontier []*Node, ok bool) {
	total := 0
	for _, on := range oldS {
		total += len(on.Children)
	}
	if info.CopiedNodes+total > budget {
		return nil, nil, false
	}
	info.CopiedNodes += total
	indepPw := est.ShowTuplesProb(chosen)
	arena := make([]Node, total)
	frontier = make([]*Node, 0, total)
	oldFrontier = make([]*Node, 0, total)
	k := 0
	for si, n := range s {
		on := oldS[si]
		if len(on.Children) == 0 {
			continue // stayed a leaf at this level
		}
		n.SubAttr = on.SubAttr
		n.Pw = indepPw
		n.Children = make([]*Node, 0, len(on.Children))
		for _, oc := range on.Children {
			child := &arena[k]
			k++
			*child = Node{Label: oc.Label, Tset: oc.Tset, P: est.ExploreProb(oc.Label), Pw: 1}
			n.Children = append(n.Children, child)
			frontier = append(frontier, child)
			oldFrontier = append(oldFrontier, oc)
		}
	}
	return frontier, oldFrontier, true
}

// traceSketch returns the recorded sketch for attr at this level, nil when
// absent (no trace, candidate not evaluated then, or it produced no plan).
func traceSketch(lt *LevelTrace, attr string) *planSketch {
	if lt == nil {
		return nil
	}
	for i, a := range lt.Candidates {
		if strings.EqualFold(a, attr) {
			return lt.Sketches[i]
		}
	}
	return nil
}

// traceHas reports whether the level evaluated attr at all (distinguishing
// "evaluated, produced no plan" from "not a candidate then").
func traceHas(lt *LevelTrace, attr string) bool {
	for _, a := range lt.Candidates {
		if strings.EqualFold(a, attr) {
			return true
		}
	}
	return false
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
