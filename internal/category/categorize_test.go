package category

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/relation"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

func TestCategorizeProducesValidTree(t *testing.T) {
	r := testRelation(500)
	c := NewCategorizer(testStats(t), Options{M: 20})
	tree, err := c.Categorize(r, nil)
	if err != nil {
		t.Fatalf("Categorize: %v", err)
	}
	mustValidate(t, tree)
	if tree.Depth() < 1 {
		t.Fatal("tree has no levels")
	}
}

func TestCategorizeRespectsM(t *testing.T) {
	r := testRelation(500)
	c := NewCategorizer(testStats(t), Options{M: 20})
	tree, err := c.Categorize(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	// With enough attributes every leaf must have ≤ M tuples — unless all
	// partitioning attributes are exhausted on its path.
	tree.Root.Walk(func(n *Node, depth int) bool {
		if n.IsLeaf() && n.Size() > 20 && depth < len(tree.LevelAttrs) {
			t.Errorf("leaf %q at depth %d has %d tuples (> M) with levels remaining", n.Label, depth, n.Size())
		}
		return true
	})
}

func TestCategorizeSelectsHotAttributeFirst(t *testing.T) {
	// neighborhood is the most-selective high-usage attribute; the cost
	// model should never pick the cold propertytype for level 1.
	r := testRelation(500)
	c := NewCategorizer(testStats(t), Options{M: 20})
	tree, _ := c.Categorize(r, nil)
	if len(tree.LevelAttrs) == 0 {
		t.Fatal("no levels chosen")
	}
	if strings.EqualFold(tree.LevelAttrs[0], "propertytype") {
		t.Fatalf("level 1 attribute = %q; cold attribute should not win", tree.LevelAttrs[0])
	}
}

func TestCategorizeAttributeEliminationByX(t *testing.T) {
	stats := testStats(t)
	// usage: neighborhood 85/100, price 60/100, bedrooms 25/100, ptype 15/100
	retained := stats.Retained(0.4)
	want := map[string]bool{"neighborhood": true, "price": true}
	if len(retained) != 2 || !want[strings.ToLower(retained[0])] || !want[strings.ToLower(retained[1])] {
		t.Fatalf("Retained(0.4) = %v; want neighborhood+price", retained)
	}
	r := testRelation(500)
	c := NewCategorizer(stats, Options{M: 20, X: 0.4})
	tree, _ := c.Categorize(r, nil)
	for _, a := range tree.LevelAttrs {
		if !want[strings.ToLower(a)] {
			t.Fatalf("eliminated attribute %q used as a level", a)
		}
	}
}

func TestCategorizeNoAttributeRepeats(t *testing.T) {
	r := testRelation(1000)
	c := NewCategorizer(testStats(t), Options{M: 5, X: 0.1})
	tree, _ := c.Categorize(r, nil)
	seen := map[string]bool{}
	for _, a := range tree.LevelAttrs {
		key := strings.ToLower(a)
		if seen[key] {
			t.Fatalf("attribute %q used at two levels: %v", a, tree.LevelAttrs)
		}
		seen[key] = true
	}
	mustValidate(t, tree)
}

func TestCategorizeSmallResultStaysFlat(t *testing.T) {
	r := testRelation(10) // fewer than M tuples: no partitioning needed
	c := NewCategorizer(testStats(t), Options{M: 20})
	tree, _ := c.Categorize(r, nil)
	if !tree.Root.IsLeaf() {
		t.Fatalf("result with %d ≤ M tuples should not be partitioned", r.Len())
	}
}

func TestCategorizeEmptyResult(t *testing.T) {
	r := relation.New("ListProperty", testSchema())
	c := NewCategorizer(testStats(t), Options{M: 20})
	tree, err := c.Categorize(r, nil)
	if err != nil {
		t.Fatalf("Categorize(empty): %v", err)
	}
	if !tree.Root.IsLeaf() || tree.Root.Size() != 0 {
		t.Fatal("empty result should yield a bare root")
	}
}

func TestCategorizeNilStats(t *testing.T) {
	c := &Categorizer{}
	if _, err := c.Categorize(testRelation(10), nil); err == nil {
		t.Fatal("expected error without workload statistics")
	}
}

func TestCategorizeUsesQueryDomains(t *testing.T) {
	r := testRelation(500)
	q := sqlparse.MustParse("SELECT * FROM ListProperty WHERE neighborhood IN ('Bellevue, WA','Redmond, WA','Seattle, WA') AND price BETWEEN 200000 AND 300000")
	rows := r.Select(q.Predicate())
	c := NewCategorizer(testStats(t), Options{M: 20})
	tree, err := c.CategorizeRows(r, q, rows)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, tree)
	// Every level-1 neighborhood category must be one of the IN values.
	if strings.EqualFold(tree.LevelAttrs[0], "neighborhood") {
		for _, ch := range tree.Root.Children {
			v := ch.Label.Value
			if v != "Bellevue, WA" && v != "Redmond, WA" && v != "Seattle, WA" {
				t.Errorf("unexpected neighborhood category %q", v)
			}
		}
	}
	// Numeric buckets must stay inside the query range.
	tree.Root.Walk(func(n *Node, _ int) bool {
		if n.Label.Kind == LabelRange && strings.EqualFold(n.Label.Attr, "price") {
			if n.Label.Lo < 200000 || n.Label.Hi > 300000 {
				t.Errorf("price bucket %q outside query range", n.Label)
			}
		}
		return true
	})
}

func TestCategoricalChildrenOrderedByOcc(t *testing.T) {
	r := testRelation(800)
	stats := testStats(t)
	c := NewCategorizer(stats, Options{M: 20})
	tree, _ := c.Categorize(r, nil)
	var hoodNode *Node
	if strings.EqualFold(tree.LevelAttrs[0], "neighborhood") {
		hoodNode = tree.Root
	} else {
		tree.Root.Walk(func(n *Node, _ int) bool {
			if hoodNode == nil && strings.EqualFold(n.SubAttr, "neighborhood") {
				hoodNode = n
			}
			return hoodNode == nil
		})
	}
	if hoodNode == nil {
		t.Skip("neighborhood not used at any level in this tree")
	}
	for i := 1; i < len(hoodNode.Children); i++ {
		prev := stats.Occ("neighborhood", hoodNode.Children[i-1].Label.Value)
		cur := stats.Occ("neighborhood", hoodNode.Children[i].Label.Value)
		if cur > prev {
			t.Fatalf("categorical children not in decreasing occ order: %d before %d", prev, cur)
		}
	}
}

func TestNumericBucketsAscending(t *testing.T) {
	r := testRelation(800)
	c := NewCategorizer(testStats(t), Options{M: 20, X: 0.1})
	tree, _ := c.Categorize(r, nil)
	tree.Root.Walk(func(n *Node, _ int) bool {
		var lastHi float64
		for i, ch := range n.Children {
			if ch.Label.Kind != LabelRange {
				return true
			}
			if i > 0 && ch.Label.Lo < lastHi {
				t.Errorf("numeric buckets of %q not ascending/disjoint", n.Label)
			}
			if ch.Label.Lo >= ch.Label.Hi {
				t.Errorf("degenerate bucket %q", ch.Label)
			}
			lastHi = ch.Label.Hi
		}
		return true
	})
}

func TestNumericLastBucketClosed(t *testing.T) {
	r := testRelation(800)
	c := NewCategorizer(testStats(t), Options{M: 20, X: 0.1})
	tree, _ := c.Categorize(r, nil)
	tree.Root.Walk(func(n *Node, _ int) bool {
		for i, ch := range n.Children {
			if ch.Label.Kind != LabelRange {
				return true
			}
			last := i == len(n.Children)-1
			if last && !ch.Label.HiInc {
				t.Errorf("last bucket %q must close its upper bound", ch.Label)
			}
		}
		return true
	})
	mustValidate(t, tree)
}

func TestSplitpointGoodnessDrivesCuts(t *testing.T) {
	// Workload ranges all break at 250000; the level-1 price partitioning of
	// a price-only categorizer must cut there.
	queries := make([]string, 50)
	for i := range queries {
		if i%2 == 0 {
			queries[i] = "SELECT * FROM ListProperty WHERE price BETWEEN 200000 AND 250000"
		} else {
			queries[i] = "SELECT * FROM ListProperty WHERE price BETWEEN 250000 AND 300000"
		}
	}
	w, _ := workload.ParseStrings(queries)
	stats := workload.Preprocess(w, workload.Config{Intervals: map[string]float64{"price": 5000}})
	r := testRelation(400)
	c := NewCategorizer(stats, Options{M: 20, MaxBuckets: 2, CandidateAttrs: []string{"price"}})
	tree, _ := c.Categorize(r, nil)
	if len(tree.Root.Children) != 2 {
		t.Fatalf("want 2 buckets, got %d", len(tree.Root.Children))
	}
	if tree.Root.Children[0].Label.Hi != 250000 {
		t.Fatalf("cut at %v; want 250000 (the unanimous workload splitpoint)", tree.Root.Children[0].Label.Hi)
	}
}

func TestMinBucketSkipsThinSplitpoints(t *testing.T) {
	// All goodness mass at 290000 but only ~5% of tuples above it; with
	// MinBucket forcing ≥ 40% of 100 tuples per side, the 290000 cut is
	// unnecessary and the partitioner must fall back to a lesser splitpoint.
	queries := make([]string, 40)
	for i := range queries {
		if i < 30 {
			queries[i] = "SELECT * FROM ListProperty WHERE price BETWEEN 200000 AND 290000"
		} else {
			queries[i] = "SELECT * FROM ListProperty WHERE price BETWEEN 200000 AND 250000"
		}
	}
	w, _ := workload.ParseStrings(queries)
	stats := workload.Preprocess(w, workload.Config{Intervals: map[string]float64{"price": 5000}})

	r := relation.New("ListProperty", testSchema())
	for i := 0; i < 100; i++ {
		price := 200000.0 + float64(i%19)*5000 // 200k..290k, dense below 290k
		r.MustAppend(relation.Tuple{
			relation.StringValue("Bellevue, WA"),
			relation.NumberValue(price),
			relation.NumberValue(3),
			relation.StringValue("Condo"),
		})
	}
	c := NewCategorizer(stats, Options{M: 20, MaxBuckets: 2, MinBucket: 40, CandidateAttrs: []string{"price"}})
	tree, _ := c.Categorize(r, nil)
	if len(tree.Root.Children) != 2 {
		t.Fatalf("want 2 buckets, got %d", len(tree.Root.Children))
	}
	cut := tree.Root.Children[0].Label.Hi
	if cut == 290000 {
		t.Fatal("290000 splitpoint should be unnecessary (thin right bucket)")
	}
	if cut != 250000 {
		t.Fatalf("fallback cut = %v; want next-best splitpoint 250000", cut)
	}
}

func TestBaselineNoCostValid(t *testing.T) {
	r := testRelation(500)
	b := &Baseline{Stats: testStats(t), Kind: NoCost, Opts: Options{
		M: 20, CandidateAttrs: []string{"neighborhood", "propertytype", "bedrooms", "price"}}}
	tree, err := b.Categorize(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, tree)
	// NoCost takes candidates in the predefined order: neighborhood first.
	if !strings.EqualFold(tree.LevelAttrs[0], "neighborhood") {
		t.Fatalf("NoCost level 1 = %q; want first predefined attribute", tree.LevelAttrs[0])
	}
}

func TestBaselineNoCostLexicographicOrder(t *testing.T) {
	r := testRelation(500)
	b := &Baseline{Stats: testStats(t), Kind: NoCost, Opts: Options{
		M: 20, CandidateAttrs: []string{"neighborhood"}}}
	tree, _ := b.Categorize(r, nil)
	ch := tree.Root.Children
	for i := 1; i < len(ch); i++ {
		if ch[i].Label.Value < ch[i-1].Label.Value {
			t.Fatalf("NoCost categorical order not lexicographic: %q after %q",
				ch[i].Label.Value, ch[i-1].Label.Value)
		}
	}
}

func TestBaselineAttrCostValid(t *testing.T) {
	r := testRelation(500)
	b := &Baseline{Stats: testStats(t), Kind: AttrCost, Opts: Options{
		M: 20, CandidateAttrs: []string{"propertytype", "bedrooms", "neighborhood", "price"}}}
	tree, err := b.Categorize(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, tree)
	// Attr-cost picks by cost, so the cold first-listed attribute should
	// not automatically win level 1.
	if strings.EqualFold(tree.LevelAttrs[0], "propertytype") {
		t.Fatalf("Attr-cost chose the cold predefined-first attribute %q", tree.LevelAttrs[0])
	}
}

func TestBaselineEquiwidthBuckets(t *testing.T) {
	r := testRelation(500)
	b := &Baseline{Stats: testStats(t), Kind: NoCost, Opts: Options{
		M: 20, CandidateAttrs: []string{"price"}}}
	tree, _ := b.Categorize(r, nil)
	// Interval 25000 -> width 125000; domain 200000..295000 has one interior
	// multiple of 125000 at 250000.
	ch := tree.Root.Children
	if len(ch) != 2 {
		t.Fatalf("want 2 equiwidth buckets, got %d", len(ch))
	}
	if ch[0].Label.Hi != 250000 {
		t.Fatalf("equiwidth boundary = %v; want 250000 (multiple of 5×interval)", ch[0].Label.Hi)
	}
	mustValidate(t, tree)
}

func TestBaselineRejectsCostBasedKind(t *testing.T) {
	b := &Baseline{Stats: testStats(t), Kind: CostBased}
	if _, err := b.Categorize(testRelation(50), nil); err == nil {
		t.Fatal("Baseline with CostBased kind should error")
	}
}

func TestCostBasedBeatsBaselinesOnEstimatedCost(t *testing.T) {
	r := testRelation(2000)
	stats := testStats(t)
	attrs := []string{"propertytype", "bedrooms", "price", "neighborhood"}
	opts := Options{M: 20, CandidateAttrs: attrs}

	cb, err := NewCategorizer(stats, opts).Categorize(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := (&Baseline{Stats: stats, Kind: AttrCost, Opts: opts}).Categorize(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	nc, err := (&Baseline{Stats: stats, Kind: NoCost, Opts: opts}).Categorize(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	est := &Estimator{Stats: stats}
	est.Annotate(ac)
	est.Annotate(nc)
	cbCost, acCost, ncCost := TreeCostAll(cb), TreeCostAll(ac), TreeCostAll(nc)
	if cbCost > acCost+1e-9 || cbCost > ncCost+1e-9 {
		t.Fatalf("cost-based (%.1f) should not exceed Attr-cost (%.1f) or No-cost (%.1f)",
			cbCost, acCost, ncCost)
	}
}

func TestMaxLevelsBound(t *testing.T) {
	r := testRelation(2000)
	c := NewCategorizer(testStats(t), Options{M: 5, X: 0.1, MaxLevels: 1})
	tree, _ := c.Categorize(r, nil)
	if tree.Depth() > 1 {
		t.Fatalf("Depth = %d; want ≤ 1 with MaxLevels=1", tree.Depth())
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.M != 20 || o.K != 1 || o.X != 0.4 || o.MaxBuckets != 8 || o.MinBucket != 5 || o.Frac != 0.5 {
		t.Fatalf("defaults = %+v", o)
	}
	o2 := Options{M: 2}.withDefaults()
	if o2.MinBucket != 1 {
		t.Fatalf("MinBucket floor = %d; want 1", o2.MinBucket)
	}
}

// TestCategorizeInvariantsProperty fuzzes dataset shapes and parameters,
// checking DESIGN.md invariants 1-4 via Validate plus the leaf-size bound.
func TestCategorizeInvariantsProperty(t *testing.T) {
	stats := testStats(t)
	cfg := &quick.Config{MaxCount: 40}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(500)
		r := relation.New("ListProperty", testSchema())
		hoods := []string{"Bellevue, WA", "Redmond, WA", "Seattle, WA", "Issaquah, WA"}
		types := []string{"Single Family", "Condo"}
		for i := 0; i < n; i++ {
			r.MustAppend(relation.Tuple{
				relation.StringValue(hoods[rng.Intn(len(hoods))]),
				relation.NumberValue(150000 + float64(rng.Intn(50))*5000),
				relation.NumberValue(float64(1 + rng.Intn(7))),
				relation.StringValue(types[rng.Intn(len(types))]),
			})
		}
		m := 5 + rng.Intn(30)
		c := NewCategorizer(stats, Options{
			M: m, X: 0.05, MaxBuckets: 2 + rng.Intn(6), MinBucket: 1,
		})
		tree, err := c.Categorize(r, nil)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := tree.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	r := testRelation(1500)
	stats := testStats(t)
	seq, err := NewCategorizer(stats, Options{M: 10, X: 0.1}).Categorize(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewCategorizer(stats, Options{M: 10, X: 0.1, Parallel: true}).Categorize(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.LevelAttrs) != len(par.LevelAttrs) {
		t.Fatalf("level count differs: %v vs %v", seq.LevelAttrs, par.LevelAttrs)
	}
	for i := range seq.LevelAttrs {
		if !strings.EqualFold(seq.LevelAttrs[i], par.LevelAttrs[i]) {
			t.Fatalf("levels differ: %v vs %v", seq.LevelAttrs, par.LevelAttrs)
		}
	}
	if TreeCostAll(seq) != TreeCostAll(par) {
		t.Fatalf("costs differ: %v vs %v", TreeCostAll(seq), TreeCostAll(par))
	}
	if seq.NodeCount() != par.NodeCount() {
		t.Fatalf("node counts differ: %d vs %d", seq.NodeCount(), par.NodeCount())
	}
	mustValidate(t, par)
}

func TestParallelBaselineMatchesSequential(t *testing.T) {
	r := testRelation(1500)
	stats := testStats(t)
	attrs := []string{"propertytype", "bedrooms", "neighborhood", "price"}
	seq, err := (&Baseline{Stats: stats, Kind: AttrCost, Opts: Options{M: 10, CandidateAttrs: attrs}}).Categorize(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := (&Baseline{Stats: stats, Kind: AttrCost, Opts: Options{M: 10, CandidateAttrs: attrs, Parallel: true}}).Categorize(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq.NodeCount() != par.NodeCount() || len(seq.LevelAttrs) != len(par.LevelAttrs) {
		t.Fatalf("parallel Attr-cost differs: %v/%d vs %v/%d",
			seq.LevelAttrs, seq.NodeCount(), par.LevelAttrs, par.NodeCount())
	}
}

// TestLevelChoiceIsArgmin: the level-1 attribute the greedy commits must
// yield an estimated cost no worse than forcing any single candidate.
func TestLevelChoiceIsArgmin(t *testing.T) {
	r := testRelation(800)
	stats := testStats(t)
	candidates := []string{"neighborhood", "price", "bedrooms", "propertytype"}
	opts := Options{M: 20, MaxLevels: 1, CandidateAttrs: candidates, X: 0.01}
	chosen, err := NewCategorizer(stats, opts).Categorize(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	chosenCost := TreeCostAll(chosen)
	for _, attr := range candidates {
		forced := opts
		forced.CandidateAttrs = []string{attr}
		tree, err := NewCategorizer(stats, forced).Categorize(r, nil)
		if err != nil {
			t.Fatal(err)
		}
		if tree.Root.IsLeaf() {
			continue // attribute cannot partition; not a real alternative
		}
		if cost := TreeCostAll(tree); chosenCost > cost+1e-9 {
			t.Errorf("greedy chose %v (cost %.2f) but forcing %q gives %.2f",
				chosen.LevelAttrs, chosenCost, attr, cost)
		}
	}
}

// TestProbabilityBounds: every probability the construction assigns lies in
// [0, 1], across techniques and feature combinations.
func TestProbabilityBounds(t *testing.T) {
	r := testRelation(1200)
	stats := testStats(t)
	trees := []*Tree{}
	cb, err := NewCategorizer(stats, Options{M: 10, X: 0.05, MaxCategories: 4}).Categorize(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	trees = append(trees, cb)
	for _, kind := range []Technique{AttrCost, NoCost} {
		tree, err := (&Baseline{Stats: stats, Kind: kind, Opts: Options{
			M: 10, CandidateAttrs: []string{"propertytype", "price", "neighborhood", "bedrooms"}}}).Categorize(r, nil)
		if err != nil {
			t.Fatal(err)
		}
		(&Estimator{Stats: stats}).Annotate(tree)
		trees = append(trees, tree)
	}
	for ti, tree := range trees {
		tree.Root.Walk(func(n *Node, _ int) bool {
			if n.P < 0 || n.P > 1 || n.Pw < 0 || n.Pw > 1 {
				t.Errorf("tree %d node %q: P=%v Pw=%v outside [0,1]", ti, n.Label, n.P, n.Pw)
			}
			return true
		})
	}
}

// TestCandidateAttrsNotMutated guards the removeAttr fix: the level loop
// narrows the candidate set as attributes are used, and an in-place
// removal (append over attrs[:0]) would scribble over the caller's
// Options.CandidateAttrs backing array — corrupting the caller's slice and
// any later categorization sharing it.
func TestCandidateAttrsNotMutated(t *testing.T) {
	r := testRelation(500)
	cands := []string{"neighborhood", "price", "bedrooms", "propertytype"}
	want := append([]string(nil), cands...)
	c := NewCategorizer(testStats(t), Options{M: 20, CandidateAttrs: cands})
	tree, err := c.Categorize(r, nil)
	if err != nil {
		t.Fatalf("Categorize: %v", err)
	}
	if len(tree.LevelAttrs) < 2 {
		t.Fatalf("want >= 2 levels so removeAttr runs more than once, got %v", tree.LevelAttrs)
	}
	for i := range cands {
		if cands[i] != want[i] {
			t.Fatalf("caller's CandidateAttrs mutated: got %v, want %v", cands, want)
		}
	}
	// A second run over the same Options must see the full candidate set.
	tree2, err := c.Categorize(r, nil)
	if err != nil {
		t.Fatalf("second Categorize: %v", err)
	}
	if len(tree2.LevelAttrs) != len(tree.LevelAttrs) {
		t.Fatalf("second run built a different tree: %v vs %v", tree2.LevelAttrs, tree.LevelAttrs)
	}
}
