package category

import (
	"math"
	"reflect"
	"testing"
)

func TestEquiDepthCuts(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	cuts := equiDepthCuts(vals, 4)
	want := []float64{3, 5, 7}
	if !reflect.DeepEqual(cuts, want) {
		t.Fatalf("cuts = %v; want %v", cuts, want)
	}
}

func TestEquiDepthCutsDuplicateRuns(t *testing.T) {
	vals := []float64{1, 1, 1, 1, 1, 1, 9}
	cuts := equiDepthCuts(vals, 4)
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			t.Fatalf("cuts not strictly increasing: %v", cuts)
		}
	}
	for _, c := range cuts {
		if c <= vals[0] {
			t.Fatalf("cut %v at or below minimum", c)
		}
	}
}

func TestEquiDepthCutsDegenerate(t *testing.T) {
	if got := equiDepthCuts(nil, 4); got != nil {
		t.Fatalf("nil vals: %v", got)
	}
	if got := equiDepthCuts([]float64{1}, 4); got != nil {
		t.Fatalf("single val: %v", got)
	}
	if got := equiDepthCuts([]float64{1, 2, 3}, 1); got != nil {
		t.Fatalf("single bucket: %v", got)
	}
}

func TestBaselineEquiDepthValidAndBalanced(t *testing.T) {
	r := testRelation(600)
	b := &Baseline{Stats: testStats(t), Kind: NoCost, Opts: Options{
		M: 20, MaxBuckets: 4, EquiDepth: true, CandidateAttrs: []string{"price"}}}
	tree, err := b.Categorize(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, tree)
	ch := tree.Root.Children
	if len(ch) < 2 {
		t.Fatalf("equi-depth produced %d buckets", len(ch))
	}
	// Buckets should be roughly balanced: max/min ≤ 4 (value ties distort).
	minSz, maxSz := math.MaxInt32, 0
	for _, c := range ch {
		if c.Size() < minSz {
			minSz = c.Size()
		}
		if c.Size() > maxSz {
			maxSz = c.Size()
		}
	}
	if maxSz > 4*minSz {
		t.Fatalf("equi-depth buckets unbalanced: %d..%d", minSz, maxSz)
	}
}

func TestEquiDepthIgnoredByCostBased(t *testing.T) {
	r := testRelation(600)
	stats := testStats(t)
	a, _ := NewCategorizer(stats, Options{M: 20, X: 0.1}).Categorize(r, nil)
	b, _ := NewCategorizer(stats, Options{M: 20, X: 0.1, EquiDepth: true}).Categorize(r, nil)
	if TreeCostAll(a) != TreeCostAll(b) {
		t.Fatal("EquiDepth must not affect the cost-based technique")
	}
}
