package category

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/workload"
)

// testSchema is a miniature ListProperty.
func testSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Attribute{Name: "neighborhood", Type: relation.Categorical},
		relation.Attribute{Name: "price", Type: relation.Numeric},
		relation.Attribute{Name: "bedrooms", Type: relation.Numeric},
		relation.Attribute{Name: "propertytype", Type: relation.Categorical},
	)
}

// testSegmentRows, when non-zero, sets the sealed-segment size of every
// relation testRelation builds — the segment-equivalence tests rebuild
// goldens and race categorization against seals at sizes 1, 64, and the
// default. Zero leaves relation.DefaultSegmentRows in effect.
var testSegmentRows = 0

// forceSegmentRows pins testRelation's segment size for one test.
func forceSegmentRows(t testing.TB, n int) {
	t.Helper()
	old := testSegmentRows
	testSegmentRows = n
	t.Cleanup(func() { testSegmentRows = old })
}

// testRelation builds a deterministic homes table with n rows spread over
// the Seattle-area neighborhoods, price 200k-300k, 1-6 bedrooms.
func testRelation(n int) *relation.Relation {
	r := relation.New("ListProperty", testSchema())
	if testSegmentRows > 0 {
		if err := r.SetSegmentRows(testSegmentRows); err != nil {
			panic(err)
		}
	}
	hoods := []string{"Bellevue, WA", "Redmond, WA", "Seattle, WA", "Issaquah, WA", "Kirkland, WA"}
	types := []string{"Single Family", "Condo", "Townhouse"}
	rng := rand.New(rand.NewSource(7))
	r.Grow(n)
	for i := 0; i < n; i++ {
		r.MustAppend(relation.Tuple{
			relation.StringValue(hoods[rng.Intn(len(hoods))]),
			relation.NumberValue(200000 + float64(rng.Intn(20))*5000),
			relation.NumberValue(float64(1 + rng.Intn(6))),
			relation.StringValue(types[rng.Intn(len(types))]),
		})
	}
	return r
}

// testStats builds workload statistics where neighborhood and price are hot
// attributes (usage > 0.4), bedrooms warm, propertytype cold. Price ranges
// cluster on 225k/250k/275k boundaries so those are high-goodness
// splitpoints.
func testStats(t testing.TB) *workload.Stats {
	t.Helper()
	var queries []string
	hot := []string{"Bellevue, WA", "Redmond, WA"}
	for i := 0; i < 60; i++ {
		hood := hot[i%2]
		queries = append(queries, fmt.Sprintf(
			"SELECT * FROM ListProperty WHERE neighborhood IN ('%s') AND price BETWEEN %d AND %d",
			hood, 200000+25000*(i%3), 225000+25000*(i%3)))
	}
	for i := 0; i < 25; i++ {
		queries = append(queries, fmt.Sprintf(
			"SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA') AND bedrooms BETWEEN %d AND %d",
			2+i%2, 4))
	}
	for i := 0; i < 15; i++ {
		queries = append(queries, "SELECT * FROM ListProperty WHERE propertytype = 'Condo'")
	}
	w, err := workload.ParseStrings(queries)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	return workload.Preprocess(w, workload.Config{
		Table:     "ListProperty",
		Intervals: map[string]float64{"price": 25000, "bedrooms": 1},
	})
}

// mustValidate fails the test when the tree breaks a structural invariant.
func mustValidate(t *testing.T, tree *Tree) {
	t.Helper()
	if err := tree.Validate(); err != nil {
		t.Fatalf("invalid tree: %v", err)
	}
}

// leafSizes returns the sizes of all leaf categories.
func leafSizes(tree *Tree) []int {
	var out []int
	tree.Root.Walk(func(n *Node, _ int) bool {
		if n.IsLeaf() {
			out = append(out, n.Size())
		}
		return true
	})
	return out
}
