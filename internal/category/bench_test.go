package category

import (
	"fmt"
	"testing"
)

// BenchmarkCategorize measures tree construction over growing results;
// rows=20000 is the large synthetic dataset the columnar substrate is
// sized against.
func BenchmarkCategorize(b *testing.B) {
	stats := testStats(b)
	for _, n := range []int{200, 1000, 4000, 20000} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			r := testRelation(n)
			c := NewCategorizer(stats, Options{M: 20, X: 0.1})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Categorize(r, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCategorizeParallel measures the same construction with the
// bounded worker pool evaluating candidate attributes concurrently.
func BenchmarkCategorizeParallel(b *testing.B) {
	stats := testStats(b)
	for _, n := range []int{4000, 20000} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			r := testRelation(n)
			c := NewCategorizer(stats, Options{M: 20, X: 0.1, Parallel: true})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Categorize(r, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCategorizeSharded sweeps the shard-parallel fan-out on the large
// dataset. shards=1 is the sequential no-regression baseline against
// BENCH_categorize.json's BenchmarkCategorize/rows=20000; the 2/4/8 points
// record the scaling curve BENCH_shard.json captures (`make shardbench`).
func BenchmarkCategorizeSharded(b *testing.B) {
	stats := testStats(b)
	r := testRelation(20000)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c := NewCategorizer(stats, Options{M: 20, X: 0.1, Shards: shards})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Categorize(r, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTreeCostAll measures one evaluation of Eq. 1 over a real tree.
func BenchmarkTreeCostAll(b *testing.B) {
	r := testRelation(4000)
	c := NewCategorizer(testStats(b), Options{M: 20, X: 0.1})
	tree, err := c.Categorize(r, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TreeCostAll(tree)
	}
}

// BenchmarkValidate measures the invariant checker.
func BenchmarkValidate(b *testing.B) {
	r := testRelation(4000)
	c := NewCategorizer(testStats(b), Options{M: 20, X: 0.1})
	tree, err := c.Categorize(r, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}
