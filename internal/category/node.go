// Package category implements the paper's core contribution: labeled
// hierarchical categorization of query results driven by an analytical
// information-overload cost model (Chakrabarti, Chaudhuri, Hwang,
// "Automatic Categorization of Query Results", SIGMOD 2004).
//
// A category tree (§3.1) recursively partitions the result set R: each level
// uses a single categorizing attribute, each node carries a label predicate
// (single value for categorical attributes, half-open range for numeric
// ones) and the tuple-set satisfying the conjunction of labels on its root
// path. The Categorizer searches the space of such trees for the one
// minimizing the expected number of items a user examines (§4-§5); baseline
// builders (NoCost, AttrCost) reproduce the comparison techniques of §6.1.
package category

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/relation"
)

// LabelKind distinguishes the three label shapes.
type LabelKind int

const (
	// LabelAll is the implicit root label containing every tuple.
	LabelAll LabelKind = iota
	// LabelValue is a single-value categorical label `A = v` (§5.1.2).
	LabelValue
	// LabelRange is a numeric bucket label `lo ≤ A < hi` (§5.1.3); the
	// topmost bucket closes the upper bound so the data maximum is covered.
	LabelRange
	// LabelValueSet is a multi-value categorical label `A ∈ B` — the form
	// Figure 1 renders as "Neighborhood: Redmond, Bellevue". The algorithm
	// produces it only as the trailing "Other" category when
	// Options.MaxCategories bounds a level's fan-out.
	LabelValueSet
)

// Label is a category label: the predicate that solely and unambiguously
// tells the user which of the parent's tuples appear under the node.
type Label struct {
	Kind   LabelKind
	Attr   string
	Value  string   // LabelValue
	Values []string // LabelValueSet, sorted
	Lo     float64  // LabelRange
	Hi     float64  // LabelRange
	HiInc  bool     // LabelRange: include Hi (last bucket)
}

// Predicate converts the label to an executable predicate.
func (l Label) Predicate() relation.Predicate {
	switch l.Kind {
	case LabelValue:
		return relation.NewIn(l.Attr, l.Value)
	case LabelValueSet:
		return relation.NewIn(l.Attr, l.Values...)
	case LabelRange:
		return &relation.Range{Attr: l.Attr, Lo: l.Lo, Hi: l.Hi, HiInc: l.HiInc}
	default:
		return relation.True{}
	}
}

// String renders the label the way Figure 1 does: "Price: 200000-225000" or
// "Neighborhood: Redmond, Bellevue".
func (l Label) String() string {
	switch l.Kind {
	case LabelValue:
		return fmt.Sprintf("%s: %s", l.Attr, l.Value)
	case LabelValueSet:
		if len(l.Values) <= 3 {
			return fmt.Sprintf("%s: %s", l.Attr, strings.Join(l.Values, ", "))
		}
		return fmt.Sprintf("%s: Other (%d values)", l.Attr, len(l.Values))
	case LabelRange:
		dash := "-"
		if l.HiInc {
			dash = "-" // rendering is identical; inclusivity shows in Predicate
		}
		return fmt.Sprintf("%s: %s%s%s", l.Attr, fmtLabelNum(l.Lo), dash, fmtLabelNum(l.Hi))
	default:
		return "ALL"
	}
}

func fmtLabelNum(v float64) string {
	if math.IsInf(v, -1) {
		return "min"
	}
	if math.IsInf(v, 1) {
		return "max"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Node is one category. Children are ordered: the exploration models assume
// the user reads child labels top to bottom, so child order is part of the
// categorization (§5.1.2, Appendix A).
type Node struct {
	Label    Label
	Children []*Node
	// Tset holds the indices (into the result relation) of the tuples in
	// tset(C): those satisfying the conjunction of labels from the root.
	Tset []int
	// SubAttr is the categorizing attribute of the children; empty for
	// leaves. There is a 1:1 association between tree level and attribute.
	SubAttr string
	// P is the exploration probability P(C) (§4.2); 1 for the root.
	P float64
	// Pw is the SHOWTUPLES probability Pw(C); 1 for leaves.
	Pw float64
}

// IsLeaf reports whether the node has no subcategories.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Size returns |tset(C)|.
func (n *Node) Size() int { return len(n.Tset) }

// Walk visits the subtree rooted at n in depth-first pre-order, passing the
// node's depth (n itself is depth 0). Returning false prunes the subtree.
func (n *Node) Walk(visit func(node *Node, depth int) bool) {
	n.walk(0, visit)
}

func (n *Node) walk(depth int, visit func(*Node, int) bool) {
	if !visit(n, depth) {
		return
	}
	for _, c := range n.Children {
		c.walk(depth+1, visit)
	}
}

// Tree is a complete categorization of a result relation.
type Tree struct {
	Root *Node
	// R is the categorized result set.
	R *relation.Relation
	// LevelAttrs maps level l (1-based) to its categorizing attribute.
	LevelAttrs []string
	// K is the label-examination cost (relative to one tuple) the tree was
	// built and should be costed with.
	K float64
	// Trace, when the build recorded one (Categorizer.RecordTrace), is the
	// stats-independent structural record of the level-greedy search that
	// produced this tree — the input Repair needs to revalidate the tree
	// under a later statistics snapshot (DESIGN.md §13). Nil for baseline
	// builds, loaded trees, and untraced builds; Repair then falls back to a
	// full rebuild.
	Trace *BuildTrace
}

// NodeCount returns the number of category nodes, excluding the root.
func (t *Tree) NodeCount() int {
	count := -1
	t.Root.Walk(func(*Node, int) bool { count++; return true })
	return count
}

// LeafCount returns the number of leaf categories (including the root when
// the tree is trivial).
func (t *Tree) LeafCount() int {
	count := 0
	t.Root.Walk(func(n *Node, _ int) bool {
		if n.IsLeaf() {
			count++
		}
		return true
	})
	return count
}

// Depth returns the number of levels below the root.
func (t *Tree) Depth() int {
	max := 0
	t.Root.Walk(func(_ *Node, d int) bool {
		if d > max {
			max = d
		}
		return true
	})
	return max
}

// Validate checks the structural invariants of a valid hierarchical
// categorization (§3.1, DESIGN.md §6): children partition the parent's
// tuple-set, every tuple satisfies its node's label, each level uses one
// attribute, and no attribute repeats across levels.
func (t *Tree) Validate() error {
	if t.Root == nil {
		return fmt.Errorf("category: tree has no root")
	}
	if t.Root.Label.Kind != LabelAll {
		return fmt.Errorf("category: root label must be ALL, got %v", t.Root.Label)
	}
	seen := map[string]int{}
	levelAttr := map[int]string{}
	var verr error
	t.Root.Walk(func(n *Node, depth int) bool {
		if verr != nil {
			return false
		}
		if n.Label.Kind != LabelAll {
			key := strings.ToLower(n.Label.Attr)
			if prev, ok := levelAttr[depth]; ok && prev != key {
				verr = fmt.Errorf("category: level %d uses two attributes %q and %q", depth, prev, key)
				return false
			}
			levelAttr[depth] = key
			if prevDepth, ok := seen[key]; ok && prevDepth != depth {
				verr = fmt.Errorf("category: attribute %q used at levels %d and %d", key, prevDepth, depth)
				return false
			}
			seen[key] = depth
			pred := n.Label.Predicate()
			for _, i := range n.Tset {
				if !pred.Matches(t.R.Schema(), t.R.Row(i)) {
					verr = fmt.Errorf("category: tuple %d in %q violates its label", i, n.Label)
					return false
				}
			}
		}
		if !n.IsLeaf() {
			union := make(map[int]struct{}, len(n.Tset))
			total := 0
			for _, c := range n.Children {
				if !strings.EqualFold(c.Label.Attr, n.SubAttr) {
					verr = fmt.Errorf("category: child %q of %q does not use subcategorizing attribute %q",
						c.Label, n.Label, n.SubAttr)
					return false
				}
				total += len(c.Tset)
				for _, i := range c.Tset {
					union[i] = struct{}{}
				}
			}
			if total != len(union) {
				verr = fmt.Errorf("category: children of %q overlap (%d tuples, %d distinct)", n.Label, total, len(union))
				return false
			}
			if len(union) != len(n.Tset) {
				verr = fmt.Errorf("category: children of %q cover %d of %d tuples", n.Label, len(union), len(n.Tset))
				return false
			}
			for _, i := range n.Tset {
				if _, ok := union[i]; !ok {
					verr = fmt.Errorf("category: tuple %d of %q missing from children", i, n.Label)
					return false
				}
			}
		}
		return true
	})
	return verr
}

// PathPredicate returns the conjunction of labels from the root to the node
// reached by following child indexes path. It errors on an invalid path.
func (t *Tree) PathPredicate(path []int) (relation.Predicate, error) {
	preds := []relation.Predicate{}
	n := t.Root
	for _, i := range path {
		if i < 0 || i >= len(n.Children) {
			return nil, fmt.Errorf("category: path step %d out of range (node has %d children)", i, len(n.Children))
		}
		n = n.Children[i]
		preds = append(preds, n.Label.Predicate())
	}
	return relation.NewAnd(preds...), nil
}
