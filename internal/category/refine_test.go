package category

import (
	"testing"

	"repro/internal/sqlparse"
)

func refineFixture(t *testing.T) (*Tree, *sqlparse.Query) {
	t.Helper()
	r := testRelation(500)
	q := sqlparse.MustParse("SELECT * FROM ListProperty WHERE price BETWEEN 200000 AND 300000")
	rows := r.Select(q.Predicate())
	c := NewCategorizer(testStats(t), Options{M: 20, X: 0.1})
	tree, err := c.CategorizeRows(r, q, rows)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.IsLeaf() {
		t.Fatal("fixture tree is trivial")
	}
	return tree, q
}

// TestRefineQuerySelectsExactlyTset: the refined query must select exactly
// the tuples in the addressed node's tuple-set.
func TestRefineQuerySelectsExactlyTset(t *testing.T) {
	tree, base := refineFixture(t)
	paths := [][]int{{0}, {len(tree.Root.Children) - 1}}
	if !tree.Root.Children[0].IsLeaf() {
		paths = append(paths, []int{0, 0})
	}
	for _, path := range paths {
		refined, err := tree.RefineQuery(base, path)
		if err != nil {
			t.Fatalf("RefineQuery(%v): %v", path, err)
		}
		node := tree.Root
		for _, i := range path {
			node = node.Children[i]
		}
		got := tree.R.Select(refined.Predicate())
		want := map[int]bool{}
		for _, i := range node.Tset {
			want[i] = true
		}
		if len(got) != len(want) {
			t.Fatalf("path %v: refined query selects %d rows, tset has %d\nsql: %s",
				path, len(got), len(want), refined)
		}
		for _, i := range got {
			if !want[i] {
				t.Fatalf("path %v: refined query selects row %d outside tset", path, i)
			}
		}
	}
}

func TestRefineQueryParsesBack(t *testing.T) {
	tree, base := refineFixture(t)
	refined, err := tree.RefineQuery(base, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sqlparse.Parse(refined.String()); err != nil {
		t.Fatalf("refined SQL does not parse: %v\n%s", err, refined)
	}
}

func TestRefineQueryNilBase(t *testing.T) {
	tree, _ := refineFixture(t)
	refined, err := tree.RefineQuery(nil, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if refined.Table != "ListProperty" {
		t.Fatalf("table = %q", refined.Table)
	}
	if len(refined.Conds) == 0 {
		t.Fatal("refined query has no conditions")
	}
}

func TestRefineQueryEmptyPath(t *testing.T) {
	tree, base := refineFixture(t)
	refined, err := tree.RefineQuery(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if refined.String() != base.String() {
		t.Fatalf("empty path should reproduce the base query: %s vs %s", refined, base)
	}
	// And must be a copy, not the same object.
	refined.RemoveCond("price")
	if base.Cond("price") == nil {
		t.Fatal("RefineQuery mutated the base query")
	}
}

func TestRefineQueryBadPath(t *testing.T) {
	tree, base := refineFixture(t)
	if _, err := tree.RefineQuery(base, []int{999}); err == nil {
		t.Fatal("out-of-range path should error")
	}
	if _, err := tree.RefineQuery(base, []int{-1}); err == nil {
		t.Fatal("negative path should error")
	}
}

func TestRefineQueryMergesRangeWithBase(t *testing.T) {
	tree, base := refineFixture(t)
	// Find a range-labeled node at level 1 or 2.
	var path []int
	var found *Node
	for i, c := range tree.Root.Children {
		if c.Label.Kind == LabelRange {
			path, found = []int{i}, c
			break
		}
		for j, g := range c.Children {
			if g.Label.Kind == LabelRange {
				path, found = []int{i, j}, g
				break
			}
		}
		if found != nil {
			break
		}
	}
	if found == nil {
		t.Skip("no range label in fixture tree")
	}
	refined, err := tree.RefineQuery(base, path)
	if err != nil {
		t.Fatal(err)
	}
	cond := refined.Cond(found.Label.Attr)
	if cond == nil || !cond.IsRange {
		t.Fatalf("refined condition on %s missing: %s", found.Label.Attr, refined)
	}
	// The refined interval must sit inside the base interval when both
	// constrain the same attribute.
	if baseCond := base.Cond(found.Label.Attr); baseCond != nil {
		lo, hi := cond.Interval()
		blo, bhi := baseCond.Interval()
		if lo < blo || hi > bhi {
			t.Fatalf("refined interval [%v,%v] outside base [%v,%v]", lo, hi, blo, bhi)
		}
	}
}
