package category

// This file records the *structure* of a cost-based build so a later
// statistics snapshot can revalidate the tree without redoing the partition
// work (DESIGN.md §13). The key observation: a candidate plan's children —
// which labels exist, their presentation order, and their tuple-sets — depend
// on the statistics only through the occurrence and splitpoint tables, while
// every probability (and therefore every cost) is a pure function of the
// statistics given that structure. So a trace that remembers, per level, each
// candidate's child labels and sizes can re-cost the whole level under new
// statistics with a handful of table lookups per child, and only candidates
// whose occ/splits tables actually moved need a live rebuild.
//
// Traces deliberately retain no tuple-sets: a cached trace must not pin the
// partition arenas of losing plans in memory. Labels are shared with the tree
// (immutable after construction).

// BuildTrace is the stats-independent record of one level-greedy search.
type BuildTrace struct {
	// Candidates is the initial candidate-attribute list (after workload
	// elimination and schema filtering), in evaluation order.
	Candidates []string
	// Levels holds one entry per executed level iteration, including a
	// terminal entry with empty Chosen when the search ended because no
	// candidate partitioned anything.
	Levels []LevelTrace
}

// LevelTrace records one level's candidate evaluation.
type LevelTrace struct {
	// Chosen is the winning attribute; empty when the level found no plan
	// (the search stopped here).
	Chosen string
	// Candidates is the level's candidate list in evaluation order (ties in
	// the cost argmin break on this order).
	Candidates []string
	// Sketches is parallel to Candidates; a nil entry means the candidate
	// produced no plan at this level.
	Sketches []*planSketch
}

// planSketch is the structure of one candidate plan: per oversized frontier
// node, the parent size and the ordered child labels and sizes.
type planSketch struct {
	perNode []nodeSketch
}

type nodeSketch struct {
	parentSize int
	labels     []Label
	sizes      []int
}

// sketchPlan captures a plan's structure against the frontier s it was built
// for. Labels are shared (immutable); tuple-sets are dropped.
func sketchPlan(pl *plan, s []*Node) *planSketch {
	ps := &planSketch{perNode: make([]nodeSketch, len(s))}
	for si, n := range s {
		specs := pl.children[si]
		ns := nodeSketch{
			parentSize: n.Size(),
			labels:     make([]Label, len(specs)),
			sizes:      make([]int, len(specs)),
		}
		for i := range specs {
			ns.labels[i] = specs[i].label
			ns.sizes[i] = len(specs[i].tset)
		}
		ps.perNode[si] = ns
	}
	return ps
}

// matches reports whether the sketch was taken against a frontier shaped like
// s (same node count, same parent sizes) — the precondition for re-costing it
// in s's place.
func (ps *planSketch) matches(s []*Node) bool {
	if len(ps.perNode) != len(s) {
		return false
	}
	for si, n := range s {
		if ps.perNode[si].parentSize != n.Size() {
			return false
		}
	}
	return true
}

// cost re-evaluates the Figure 6 objective for the sketched plan under new
// statistics. It mirrors planCost/twoLevelCostAllSpecs operation for
// operation — same accumulation order, same intermediate expressions — so a
// structurally-stable candidate re-costed from its sketch lands on the
// bit-identical float a live rebuild would compute; the argmin over
// sketch-costed and live-costed candidates is therefore exactly the rebuild's
// argmin. Valid only under the independence model (no correlation index):
// child probabilities come from Estimator.ExploreProb, which reproduces the
// construction-time spec probabilities bitwise.
func (ps *planSketch) cost(s []*Node, est *Estimator, attr string, k float64) float64 {
	indepPw := est.ShowTuplesProb(attr)
	total := 0.0
	for si, n := range s {
		ns := &ps.perNode[si]
		showcat := k * float64(len(ns.sizes))
		for i, sz := range ns.sizes {
			showcat += est.ExploreProb(ns.labels[i]) * float64(sz)
		}
		total += n.P * (indepPw*float64(n.Size()) + (1-indepPw)*showcat)
	}
	return total
}

// bytes approximates the sketch's resident size for cache accounting.
func (ps *planSketch) bytes() int64 {
	size := int64(24) // struct + slice header
	for i := range ps.perNode {
		ns := &ps.perNode[i]
		size += 64 + int64(len(ns.sizes))*8
		for _, l := range ns.labels {
			size += 80 + int64(len(l.Attr)+len(l.Value))
			for _, v := range l.Values {
				size += int64(len(v)) + 16
			}
		}
	}
	return size
}

// traceBytes approximates a whole trace's resident size.
func traceBytes(tr *BuildTrace) int64 {
	if tr == nil {
		return 0
	}
	size := int64(48)
	for _, a := range tr.Candidates {
		size += int64(len(a)) + 16
	}
	for _, lt := range tr.Levels {
		size += 72 + int64(len(lt.Chosen))
		for _, a := range lt.Candidates {
			size += int64(len(a)) + 16
		}
		for _, ps := range lt.Sketches {
			if ps != nil {
				size += ps.bytes()
			}
		}
	}
	return size
}

// TraceBytes reports the approximate resident size of the tree's build trace
// (0 when untraced), for the serving layer's cache accounting.
func (t *Tree) TraceBytes() int64 { return traceBytes(t.Trace) }
