package category

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

func TestLabelString(t *testing.T) {
	tests := []struct {
		l    Label
		want string
	}{
		{Label{Kind: LabelAll}, "ALL"},
		{Label{Kind: LabelValue, Attr: "Neighborhood", Value: "Redmond, WA"}, "Neighborhood: Redmond, WA"},
		{Label{Kind: LabelRange, Attr: "Price", Lo: 200000, Hi: 225000}, "Price: 200000-225000"},
		{Label{Kind: LabelRange, Attr: "Price", Lo: 1.5, Hi: 2.25}, "Price: 1.5-2.25"},
	}
	for _, tc := range tests {
		if got := tc.l.String(); got != tc.want {
			t.Errorf("String() = %q; want %q", got, tc.want)
		}
	}
}

func TestLabelPredicate(t *testing.T) {
	s := testSchema()
	inBucket := relation.Tuple{
		relation.StringValue("Bellevue, WA"), relation.NumberValue(210000),
		relation.NumberValue(3), relation.StringValue("Condo"),
	}
	atUpper := relation.Tuple{
		relation.StringValue("Bellevue, WA"), relation.NumberValue(225000),
		relation.NumberValue(3), relation.StringValue("Condo"),
	}
	open := Label{Kind: LabelRange, Attr: "price", Lo: 200000, Hi: 225000}
	closed := Label{Kind: LabelRange, Attr: "price", Lo: 200000, Hi: 225000, HiInc: true}
	if !open.Predicate().Matches(s, inBucket) {
		t.Error("interior tuple must match half-open bucket")
	}
	if open.Predicate().Matches(s, atUpper) {
		t.Error("upper bound must not match half-open bucket")
	}
	if !closed.Predicate().Matches(s, atUpper) {
		t.Error("upper bound must match closed (last) bucket")
	}
	val := Label{Kind: LabelValue, Attr: "neighborhood", Value: "Bellevue, WA"}
	if !val.Predicate().Matches(s, inBucket) {
		t.Error("value label must match its value")
	}
	all := Label{Kind: LabelAll}
	if !all.Predicate().Matches(s, inBucket) {
		t.Error("ALL label matches everything")
	}
}

func TestWalkOrderAndPrune(t *testing.T) {
	a := &Node{Label: Label{Kind: LabelValue, Attr: "x", Value: "a"}}
	b := &Node{Label: Label{Kind: LabelValue, Attr: "x", Value: "b"}}
	a1 := &Node{Label: Label{Kind: LabelValue, Attr: "y", Value: "a1"}}
	a.Children = []*Node{a1}
	a.SubAttr = "y"
	root := &Node{Label: Label{Kind: LabelAll}, Children: []*Node{a, b}, SubAttr: "x"}

	var order []string
	root.Walk(func(n *Node, d int) bool {
		order = append(order, n.Label.String())
		return true
	})
	want := "ALL|x: a|y: a1|x: b"
	if got := strings.Join(order, "|"); got != want {
		t.Fatalf("walk order = %q; want %q", got, want)
	}

	order = nil
	root.Walk(func(n *Node, d int) bool {
		order = append(order, n.Label.String())
		return n.Label.Value != "a" // prune under a
	})
	want = "ALL|x: a|x: b"
	if got := strings.Join(order, "|"); got != want {
		t.Fatalf("pruned walk = %q; want %q", got, want)
	}
}

func TestTreeCounts(t *testing.T) {
	r := testRelation(500)
	c := NewCategorizer(testStats(t), Options{M: 20})
	tree, _ := c.Categorize(r, nil)
	nodes := tree.NodeCount()
	leaves := tree.LeafCount()
	if nodes <= 0 || leaves <= 0 || leaves > nodes+1 {
		t.Fatalf("NodeCount=%d LeafCount=%d inconsistent", nodes, leaves)
	}
	if tree.Depth() != len(tree.LevelAttrs) && tree.Depth() > len(tree.LevelAttrs) {
		t.Fatalf("Depth %d exceeds levels %d", tree.Depth(), len(tree.LevelAttrs))
	}
}

func TestValidateDetectsOverlap(t *testing.T) {
	r := testRelation(10)
	rows := r.Select(nil)
	child1 := &Node{Label: Label{Kind: LabelValue, Attr: "neighborhood", Value: r.Row(0)[0].Str}, Tset: rows[:6]}
	child2 := &Node{Label: Label{Kind: LabelValue, Attr: "neighborhood", Value: r.Row(5)[0].Str}, Tset: rows[5:]}
	// Force overlap at index 5 and make labels lie.
	root := &Node{Label: Label{Kind: LabelAll}, Tset: rows, SubAttr: "neighborhood", Children: []*Node{child1, child2}}
	tree := &Tree{Root: root, R: r}
	if err := tree.Validate(); err == nil {
		t.Fatal("Validate should reject overlapping children")
	}
}

func TestValidateDetectsLabelViolation(t *testing.T) {
	r := testRelation(10)
	rows := r.Select(nil)
	// A single child claiming all tuples belong to one neighborhood.
	child := &Node{Label: Label{Kind: LabelValue, Attr: "neighborhood", Value: "Nowhere"}, Tset: rows}
	root := &Node{Label: Label{Kind: LabelAll}, Tset: rows, SubAttr: "neighborhood", Children: []*Node{child}}
	tree := &Tree{Root: root, R: r}
	if err := tree.Validate(); err == nil {
		t.Fatal("Validate should reject tuples violating their label")
	}
}

func TestValidateDetectsMissingCoverage(t *testing.T) {
	r := testRelation(20)
	rows := r.Select(nil)
	hood := r.Row(0)[0].Str
	var sub []int
	for _, i := range rows {
		if r.Row(i)[0].Str == hood {
			sub = append(sub, i)
		}
	}
	child := &Node{Label: Label{Kind: LabelValue, Attr: "neighborhood", Value: hood}, Tset: sub}
	root := &Node{Label: Label{Kind: LabelAll}, Tset: rows, SubAttr: "neighborhood", Children: []*Node{child}}
	tree := &Tree{Root: root, R: r}
	if err := tree.Validate(); err == nil {
		t.Fatal("Validate should reject children not covering the parent")
	}
}

func TestValidateDetectsRepeatedAttribute(t *testing.T) {
	r := testRelation(30)
	rows := r.Select(nil)
	hood := r.Row(0)[0].Str
	var sub []int
	var rest []int
	for _, i := range rows {
		if r.Row(i)[0].Str == hood {
			sub = append(sub, i)
		} else {
			rest = append(rest, i)
		}
	}
	grand := &Node{Label: Label{Kind: LabelValue, Attr: "neighborhood", Value: hood}, Tset: sub}
	child1 := &Node{Label: Label{Kind: LabelValue, Attr: "neighborhood", Value: hood},
		Tset: sub, SubAttr: "neighborhood", Children: []*Node{grand}}
	others := map[string][]int{}
	for _, i := range rest {
		others[r.Row(i)[0].Str] = append(others[r.Row(i)[0].Str], i)
	}
	children := []*Node{child1}
	for v, ts := range others {
		children = append(children, &Node{Label: Label{Kind: LabelValue, Attr: "neighborhood", Value: v}, Tset: ts})
	}
	root := &Node{Label: Label{Kind: LabelAll}, Tset: rows, SubAttr: "neighborhood", Children: children}
	tree := &Tree{Root: root, R: r}
	if err := tree.Validate(); err == nil {
		t.Fatal("Validate should reject an attribute used at two levels")
	}
}

func TestValidateNilRoot(t *testing.T) {
	if err := (&Tree{}).Validate(); err == nil {
		t.Fatal("Validate should reject a rootless tree")
	}
}

func TestPathPredicate(t *testing.T) {
	r := testRelation(500)
	c := NewCategorizer(testStats(t), Options{M: 20})
	tree, _ := c.Categorize(r, nil)
	if tree.Root.IsLeaf() {
		t.Skip("trivial tree")
	}
	pred, err := tree.PathPredicate([]int{0})
	if err != nil {
		t.Fatalf("PathPredicate: %v", err)
	}
	child := tree.Root.Children[0]
	for _, i := range child.Tset {
		if !pred.Matches(r.Schema(), r.Row(i)) {
			t.Fatalf("tuple %d of child 0 fails its path predicate", i)
		}
	}
	if _, err := tree.PathPredicate([]int{99}); err == nil {
		t.Fatal("out-of-range path should error")
	}
	empty, err := tree.PathPredicate(nil)
	if err != nil || !empty.Matches(r.Schema(), r.Row(0)) {
		t.Fatal("empty path should yield TRUE predicate")
	}
}

func TestTechniqueString(t *testing.T) {
	if CostBased.String() != "Cost-based" || AttrCost.String() != "Attr-cost" || NoCost.String() != "No cost" {
		t.Fatalf("technique names: %v %v %v", CostBased, AttrCost, NoCost)
	}
	if !strings.Contains(Technique(9).String(), "9") {
		t.Fatal("unknown technique should render its number")
	}
}

func TestEstimatorAnnotate(t *testing.T) {
	r := testRelation(500)
	stats := testStats(t)
	c := NewCategorizer(stats, Options{M: 20})
	tree, _ := c.Categorize(r, nil)
	// Zero out and re-annotate; construction-time values must be recovered.
	type snap struct{ p, pw float64 }
	snaps := map[*Node]snap{}
	tree.Root.Walk(func(n *Node, _ int) bool {
		snaps[n] = snap{n.P, n.Pw}
		n.P, n.Pw = -1, -1
		return true
	})
	(&Estimator{Stats: stats}).Annotate(tree)
	tree.Root.Walk(func(n *Node, _ int) bool {
		want := snaps[n]
		if diff(n.P, want.p) > 1e-12 || diff(n.Pw, want.pw) > 1e-12 {
			t.Errorf("node %q: annotate (%v,%v) != construction (%v,%v)",
				n.Label, n.P, n.Pw, want.p, want.pw)
		}
		return true
	})
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestEstimatorUnknownAttribute(t *testing.T) {
	e := &Estimator{Stats: testStats(t)}
	if p := e.ExploreProb(Label{Kind: LabelValue, Attr: "never-queried", Value: "x"}); p != 1 {
		t.Fatalf("ExploreProb over unmined attribute = %v; want 1", p)
	}
	if pw := e.ShowTuplesProb("never-queried"); pw != 1 {
		t.Fatalf("ShowTuplesProb = %v; want 1", pw)
	}
	if pw := e.ShowTuplesProb(""); pw != 1 {
		t.Fatalf("leaf ShowTuplesProb = %v; want 1", pw)
	}
}
