package category

import (
	"fmt"
	"math"

	"repro/internal/sqlparse"
)

// RefineQuery turns an explored category path into a focused SQL query: the
// base query's conditions conjoined with the labels on the path from the
// root to the addressed node. This supports the reformulation loop the
// paper's introduction describes — after browsing the tree, the user
// narrows the query to the category she found interesting. base may be nil
// (browsing); path is a sequence of child indexes from the root.
func (t *Tree) RefineQuery(base *sqlparse.Query, path []int) (*sqlparse.Query, error) {
	q := &sqlparse.Query{Table: t.R.Name}
	if base != nil {
		q = base.Clone()
	}
	n := t.Root
	for step, i := range path {
		if i < 0 || i >= len(n.Children) {
			return nil, fmt.Errorf("category: path step %d (%d) out of range: node %q has %d children",
				step, i, n.Label, len(n.Children))
		}
		n = n.Children[i]
		cond, err := labelCondition(n.Label)
		if err != nil {
			return nil, err
		}
		if existing := q.Cond(cond.Attr); existing != nil {
			if err := existing.Merge(cond); err != nil {
				return nil, fmt.Errorf("category: refining on %q: %w", n.Label, err)
			}
		} else {
			q.SetCond(cond)
		}
	}
	return q, nil
}

// labelCondition converts a category label into a selection condition.
func labelCondition(l Label) (*sqlparse.Condition, error) {
	switch l.Kind {
	case LabelValue:
		return &sqlparse.Condition{Attr: l.Attr, Values: []string{l.Value}}, nil
	case LabelValueSet:
		return &sqlparse.Condition{Attr: l.Attr, Values: append([]string(nil), l.Values...)}, nil
	case LabelRange:
		c := &sqlparse.Condition{Attr: l.Attr, IsRange: true}
		if !math.IsInf(l.Lo, -1) {
			c.Lo, c.LoSet = l.Lo, true
		}
		if !math.IsInf(l.Hi, 1) {
			c.Hi, c.HiSet = l.Hi, true
			c.HiStrict = !l.HiInc
		}
		return c, nil
	default:
		return nil, fmt.Errorf("category: cannot refine on label %q", l)
	}
}
