package category

import (
	"math"

	"repro/internal/workload"
)

// Estimator derives the exploration and SHOWTUPLES probabilities of §4.2
// from preprocessed workload statistics:
//
//	Pw(C) = 1 − NAttr(SA(C))/N      (SHOWTUPLES probability; 1 at leaves)
//	P(C)  = NOverlap(C)/NAttr(CA(C)) (exploration probability; 1 at the root)
//
// where SA(C) is the subcategorizing attribute of C and CA(C) the
// categorizing attribute of C's own label.
type Estimator struct {
	Stats *workload.Stats
}

// ExploreProb returns P(C) for a node labeled l.
func (e *Estimator) ExploreProb(l Label) float64 {
	if l.Kind == LabelAll {
		return 1
	}
	nAttr := e.Stats.NAttr(l.Attr)
	if nAttr == 0 {
		// The workload never filters on this attribute: no evidence to
		// discriminate among its values, so every label is equally (fully)
		// plausible. This matches Pw = 1 for such attributes — the SHOWCAT
		// branch carrying P is then weighted by zero anyway.
		return 1
	}
	var overlap int
	switch l.Kind {
	case LabelValue:
		overlap = e.Stats.Occ(l.Attr, l.Value)
	case LabelValueSet:
		set := make(map[string]struct{}, len(l.Values))
		for _, v := range l.Values {
			set[v] = struct{}{}
		}
		overlap = e.Stats.NOverlapValues(l.Attr, set)
	case LabelRange:
		hi := l.Hi
		if l.HiInc {
			hi = math.Nextafter(hi, math.Inf(1))
		}
		overlap = e.Stats.NOverlapRange(l.Attr, l.Lo, hi)
	}
	p := float64(overlap) / float64(nAttr)
	if p > 1 {
		p = 1
	}
	return p
}

// ShowTuplesProb returns Pw(C) for a node whose children are categorized by
// subAttr; pass "" for leaves.
func (e *Estimator) ShowTuplesProb(subAttr string) float64 {
	if subAttr == "" {
		return 1
	}
	return 1 - e.Stats.UsageFraction(subAttr)
}

// Annotate fills P and Pw on every node of the tree from the workload
// statistics. Builders that construct trees without cost guidance (the
// baselines of §6.1) produce unannotated structures; annotating them lets
// the same cost model estimate any tree's information overload.
func (e *Estimator) Annotate(t *Tree) {
	t.Root.Walk(func(n *Node, _ int) bool {
		n.P = e.ExploreProb(n.Label)
		n.Pw = e.ShowTuplesProb(n.SubAttr)
		return true
	})
}

// AnnotateConditional fills P and Pw on every node using the
// path-conditional model over the retained workload conditions, falling
// back to the independent estimates where the conditional sample has fewer
// than minSupport queries. It reproduces the probabilities a Categorizer
// with the same CondIndex assigns during construction.
func (e *Estimator) AnnotateConditional(t *Tree, idx *workload.CondIndex, minSupport int) {
	if idx == nil {
		e.Annotate(t)
		return
	}
	if minSupport <= 0 {
		minSupport = 8
	}
	var rec func(n *Node, ids []int)
	rec = func(n *Node, ids []int) {
		n.Pw = e.ShowTuplesProb(n.SubAttr)
		if n.IsLeaf() {
			return
		}
		preds := make([]workload.PathPred, len(n.Children))
		for i, c := range n.Children {
			preds[i] = pathPred(c.Label)
		}
		attrN, overlap := 0, []int(nil)
		conditional := len(ids) >= minSupport
		if conditional {
			attrN, overlap = idx.CountChildren(ids, n.SubAttr, preds)
			conditional = attrN >= minSupport
		}
		if conditional {
			n.Pw = 1 - float64(attrN)/float64(len(ids))
		}
		for i, c := range n.Children {
			if conditional {
				c.P = float64(overlap[i]) / float64(attrN)
			} else {
				c.P = e.ExploreProb(c.Label)
			}
			rec(c, idx.FilterCompatible(ids, preds[i]))
		}
	}
	t.Root.P = 1
	rec(t.Root, idx.AllIDs())
}
