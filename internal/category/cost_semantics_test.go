package category

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// These tests validate the *semantics* of the cost recursions: CostAll and
// CostOne are expectations over the non-deterministic user choices of
// Figures 2 and 3 (SHOWTUPLES w.p. Pw; each subcategory explored w.p. P,
// independently). We enumerate every behaviour profile of a small tree,
// weight each profile's deterministic item count by its probability, and
// compare the sum against the recursion.

// expectedAll computes E[items examined] for the ALL scenario by exhaustive
// expansion of the choice tree rooted at n (conditioned on n being
// explored).
func expectedAll(n *Node, k float64) float64 {
	if n.IsLeaf() {
		return float64(n.Size())
	}
	// With probability Pw: SHOWTUPLES (all tuples).
	exp := n.Pw * float64(n.Size())
	// With probability 1-Pw: SHOWCAT — read all child labels; each child is
	// explored independently, so expectations add per child.
	showcat := k * float64(len(n.Children))
	for _, c := range n.Children {
		// Explored w.p. c.P contributing its own expected subtree cost.
		showcat += c.P * expectedAll(c, k)
	}
	return exp + (1-n.Pw)*showcat
}

// enumeratedAll computes the same expectation the hard way: enumerate every
// (SHOWTUPLES/SHOWCAT, explore/ignore…) profile with its probability.
func enumeratedAll(n *Node, k float64) float64 {
	if n.IsLeaf() {
		return float64(n.Size())
	}
	total := n.Pw * float64(n.Size())
	// SHOWCAT branch: enumerate explore/ignore masks over children.
	var rec func(i int, prob, cost float64) float64
	rec = func(i int, prob, cost float64) float64 {
		if i == len(n.Children) {
			return prob * cost
		}
		c := n.Children[i]
		ignored := rec(i+1, prob*(1-c.P), cost)
		explored := rec(i+1, prob*c.P, cost+enumeratedAll(c, k))
		return ignored + explored
	}
	base := k * float64(len(n.Children))
	total += (1 - n.Pw) * rec(0, 1, base)
	return total
}

// enumeratedOne: the ONE scenario. In SHOWCAT the user reads labels until
// the first explored child (probability chain of Figure 3); in SHOWTUPLES
// she reads frac·|tset|.
func enumeratedOne(n *Node, k, frac float64) float64 {
	if n.IsLeaf() {
		return frac * float64(n.Size())
	}
	total := n.Pw * frac * float64(n.Size())
	noneSoFar := 1.0
	sum := 0.0
	for i, c := range n.Children {
		sum += noneSoFar * c.P * (k*float64(i+1) + enumeratedOne(c, k, frac))
		noneSoFar *= 1 - c.P
	}
	total += (1 - n.Pw) * sum
	return total
}

// buildRandomSemTree builds a random ≤3-level annotated tree.
func buildRandomSemTree(r *rand.Rand, depth int) *Node {
	n := &Node{Label: Label{Kind: LabelAll}, P: 0.1 + 0.9*r.Float64(), Pw: 1}
	if depth < 2 && r.Intn(3) > 0 {
		k := 1 + r.Intn(3)
		total := 0
		n.SubAttr = "a"
		n.Pw = r.Float64()
		for i := 0; i < k; i++ {
			c := buildRandomSemTree(r, depth+1)
			total += c.Size()
			n.Children = append(n.Children, c)
		}
		n.Tset = make([]int, total)
	} else {
		n.Tset = make([]int, 1+r.Intn(25))
	}
	return n
}

// TestCostAllIsTheEnumeratedExpectation checks CostAll == the brute-force
// expectation over all behaviour profiles.
func TestCostAllIsTheEnumeratedExpectation(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		root := buildRandomSemTree(r, 0)
		k := 0.5 + r.Float64()*2
		got := CostAll(root, k)
		want := enumeratedAll(root, k)
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Logf("seed %d: CostAll=%v enumerated=%v", seed, got, want)
			return false
		}
		// And the per-child linearity shortcut agrees too.
		if alt := expectedAll(root, k); math.Abs(got-alt) > 1e-9*(1+math.Abs(alt)) {
			t.Logf("seed %d: CostAll=%v linear-expectation=%v", seed, got, alt)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCostOneIsTheEnumeratedExpectation does the same for Eq. 2.
func TestCostOneIsTheEnumeratedExpectation(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		root := buildRandomSemTree(r, 0)
		k := 0.5 + r.Float64()*2
		frac := 0.1 + 0.8*r.Float64()
		got := CostOne(root, k, frac)
		want := enumeratedOne(root, k, frac)
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Logf("seed %d: CostOne=%v enumerated=%v", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCostAllDegenerateProbabilities pins the boundary behaviours: P=0
// children contribute nothing beyond their label; Pw=1 collapses to a scan.
func TestCostAllDegenerateProbabilities(t *testing.T) {
	child := leaf(50, 0)
	root := &Node{Label: Label{Kind: LabelAll}, Children: []*Node{child},
		Tset: make([]int, 50), SubAttr: "a", P: 1, Pw: 0}
	if got := CostAll(root, 2); got != 2 {
		t.Fatalf("P=0 child: CostAll = %v; want label cost only (2)", got)
	}
	if got := CostOne(root, 2, 0.5); got != 0 {
		// No child is ever explored and SHOWTUPLES never happens: the Fig. 3
		// walk reads... the model says she reads label i only en route to an
		// explored child, so expected cost is 0 here.
		t.Fatalf("P=0 child: CostOne = %v; want 0", got)
	}
}
