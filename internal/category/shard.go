package category

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/relation"
)

// Shard-parallel categorization (DESIGN.md §12). The per-node work of a
// categorical level — a stable counting sort of the node's tuple-set by
// dictionary code — decomposes exactly: cut the tuple-set into contiguous
// spans, count each span independently, and merge by addition. Bucket sizes,
// presentation ranks, and therefore every cost sum the level-greedy search
// evaluates are functions of the merged counts, so the sharded build commits
// the same plan as the sequential one; the leaf tuple-lists are written by a
// second parallel pass into per-(span, code) cursors whose concatenation is
// the sequential Tset order. The tree is byte-identical, the wall clock is
// divided by the shard count.
//
// Numeric levels are deliberately NOT sharded: splitpoint bucketing reads a
// sorted projection whose tie order is pdqsort's (deterministic, but not a
// total order), and a chunk-sort-and-merge would need a tie-breaking
// comparator that costs more than it saves (see sortedProjection). Since the
// numeric path never depends on the shard count, its output is trivially
// shard-invariant.

// shardMinTset gates the shard-parallel path per node: below this size the
// goroutine handoff and merge overhead beat the saved work, so small nodes
// stay sequential. A var so tests can force tiny nodes through the sharded
// path and pin its equivalence.
var shardMinTset = 2048

// EffectiveShards resolves an Options.Shards value to the fan-out actually
// used: 0 (or negative) means one shard per available CPU.
func EffectiveShards(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ShardCounters accumulates shard-parallel build telemetry. One instance is
// shared by every build of a serving System (like the resilience counters),
// so healthz can report how much of the categorization work actually fans
// out. Pass by pointer; the zero value is ready to use and a nil receiver
// is a no-op, so unwired callers pay nothing.
type ShardCounters struct {
	shardedNodes atomic.Uint64 // nodes partitioned by the parallel path
	seqNodes     atomic.Uint64 // nodes below shardMinTset (or shards=1)
	shardTasks   atomic.Uint64 // span workers launched
}

func (sc *ShardCounters) addShardedNode() {
	if sc != nil {
		sc.shardedNodes.Add(1)
	}
}

func (sc *ShardCounters) addSeqNode() {
	if sc != nil {
		sc.seqNodes.Add(1)
	}
}

func (sc *ShardCounters) addShardTasks(n int) {
	if sc != nil {
		sc.shardTasks.Add(uint64(n))
	}
}

// ShardingStats is the JSON snapshot of ShardCounters plus the effective
// configuration, reported under healthz's "sharding" key.
type ShardingStats struct {
	// GOMAXPROCS is the process's scheduler width — the default shard count.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Shards is the active shard count builds run with.
	Shards int `json:"shards"`
	// ShardedNodes counts tree nodes partitioned by the parallel path.
	ShardedNodes uint64 `json:"shardedNodes"`
	// SeqNodes counts tree nodes partitioned sequentially (too small).
	SeqNodes uint64 `json:"seqNodes"`
	// ShardTasks counts span workers launched across all sharded nodes.
	ShardTasks uint64 `json:"shardTasks"`
}

// Snapshot returns the current counter values with the given configuration.
// Safe on a nil receiver (all counters zero).
func (sc *ShardCounters) Snapshot(shards int) ShardingStats {
	st := ShardingStats{GOMAXPROCS: runtime.GOMAXPROCS(0), Shards: EffectiveShards(shards)}
	if sc != nil {
		st.ShardedNodes = sc.shardedNodes.Load()
		st.SeqNodes = sc.seqNodes.Load()
		st.ShardTasks = sc.shardTasks.Load()
	}
	return st
}

// span is a contiguous range of positions [lo, hi) in a node's Tset.
type span struct{ lo, hi int }

// tsetSpans cuts n positions into k near-equal contiguous spans (the first
// n%k spans get one extra position). Zero-length spans are valid and occur
// when k > n — the merge just sees nothing from them.
func tsetSpans(n, k int) []span {
	spans := make([]span, k)
	lo := 0
	for i := 0; i < k; i++ {
		hi := lo + n/k
		if i < n%k {
			hi++
		}
		spans[i] = span{lo: lo, hi: hi}
		lo = hi
	}
	return spans
}

// useShards reports whether a node's tuple-set is worth fanning out.
func (lc *levelContext) useShards(tsetLen int) bool {
	return lc.shards > 1 && tsetLen >= shardMinTset
}

// shardedPartitionNode is the shard-parallel replacement for codePartition's
// per-node body. Phase A counts each span independently and records each
// span's first-encounter code list; a sequential merge walks the spans in
// order, adding counts and assigning global presentation ranks at exactly
// the positions the sequential scan would (a code's global first encounter
// is its local first encounter in the earliest span containing it). Phase B
// fills the bucket arena in parallel through per-(span, code) cursors
// start(c) + Σ_{j'<j} count(j', c), so within every bucket the rows land in
// Tset order — the same stable order the sequential counting sort emits.
//
// sc carries the cross-node counting state (counts all-zero on entry and
// exit, orderOf/rank persistent across the level's nodes) exactly as the
// sequential path does, so sharded and sequential nodes interleave freely.
func (lc *levelContext) shardedPartitionNode(col *relation.CatColumn, attr string, nAttr int, n *Node, sc *catScratch, rank *int32) []childSpec {
	k := lc.shards
	card := col.Card()
	spans := tsetSpans(len(n.Tset), k)
	cnts := make([][]int32, k)
	firsts := make([][]uint32, k)

	// The browsing-mode root's Tset is the identity permutation, so its
	// spans are row spans of the relation itself: count straight off the
	// shard view's code subslices (relation.Shard), skipping the Tset
	// indirection on the largest node of the whole build.
	identity := len(n.Tset) == lc.r.Len() && isIdentity(n.Tset)
	var shView []relation.Shard
	if identity {
		shView = lc.r.Shards(k)
	}

	var wg sync.WaitGroup
	for j := range spans {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			if ctxExpired(lc.ctx) != nil {
				return // abandoned build; categorize discards the level
			}
			cnt := make([]int32, card)
			var first []uint32
			if identity {
				for _, c := range shView[j].Codes(col) {
					if cnt[c] == 0 {
						first = append(first, c)
					}
					cnt[c]++
				}
			} else {
				for _, row := range n.Tset[spans[j].lo:spans[j].hi] {
					c := col.Codes[row]
					if cnt[c] == 0 {
						first = append(first, c)
					}
					cnt[c]++
				}
			}
			cnts[j], firsts[j] = cnt, first
		}(j)
	}
	lc.counters.addShardTasks(k)
	wg.Wait()

	// Merge: spans in order, codes in local first-encounter order — the
	// global first-encounter order of the sequential scan.
	present := sc.present[:0]
	for j := range spans {
		for _, c := range firsts[j] {
			if sc.counts[c] == 0 {
				if sc.orderOf[c] < 0 {
					sc.orderOf[c] = *rank
					*rank++
				}
				present = append(present, c)
			}
			sc.counts[c] += cnts[j][c]
		}
	}
	sc.present = present // keep any growth for the next node
	sc.ranks = codesByRank{codes: present, rank: sc.orderOf}
	sort.Sort(&sc.ranks)

	// Bucket layout and specs: identical to the sequential path. counts[c]
	// becomes the start offset of value c's bucket.
	arena := make([]int, len(n.Tset))
	specs := make([]childSpec, len(present))
	off := int32(0)
	for i, c := range present {
		v := col.Dict[c]
		p := 1.0
		if nAttr > 0 {
			p = float64(lc.stats.Occ(attr, v)) / float64(nAttr)
			if p > 1 {
				p = 1
			}
		}
		specs[i] = childSpec{label: Label{Kind: LabelValue, Attr: attr, Value: v}, p: p}
		cnt := sc.counts[c]
		sc.counts[c] = off
		off += cnt
	}
	// Turn each span's counts into its write cursor: span j's occurrences of
	// code c start at start(c) plus everything earlier spans will write.
	// After this walk counts[c] is the end offset of c's bucket.
	for j := range spans {
		for _, c := range firsts[j] {
			t := cnts[j][c]
			cnts[j][c] = sc.counts[c]
			sc.counts[c] += t
		}
	}

	for j := range spans {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			if ctxExpired(lc.ctx) != nil {
				return // abandoned build; categorize discards the level
			}
			cur := cnts[j]
			if cur == nil {
				return // phase A bailed on cancellation; nothing to place
			}
			if identity {
				sh := shView[j]
				for i, c := range sh.Codes(col) {
					arena[cur[c]] = sh.Lo + i
					cur[c]++
				}
			} else {
				for _, row := range n.Tset[spans[j].lo:spans[j].hi] {
					c := col.Codes[row]
					arena[cur[c]] = row
					cur[c]++
				}
			}
		}(j)
	}
	lc.counters.addShardTasks(k)
	wg.Wait()

	start := int32(0)
	for i, c := range present {
		end := sc.counts[c]
		specs[i].tset = arena[start:end:end]
		start = end
		sc.counts[c] = 0 // restore the all-zero invariant
	}
	lc.counters.addShardedNode()
	return specs
}
