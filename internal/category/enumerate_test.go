package category

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/workload"
)

// enumFixture builds a small instance whose greedy cut choices fall inside
// the enumerated space (per-node cut selection degenerates to the global
// top-goodness cuts when MinBucket is 1).
func enumFixture(t *testing.T) (*relation.Relation, *workload.Stats, Options) {
	t.Helper()
	var queries []string
	for i := 0; i < 30; i++ {
		switch i % 3 {
		case 0:
			queries = append(queries, "SELECT * FROM T WHERE neighborhood IN ('Bellevue, WA') AND price BETWEEN 200000 AND 250000")
		case 1:
			queries = append(queries, "SELECT * FROM T WHERE neighborhood IN ('Seattle, WA') AND price BETWEEN 250000 AND 290000")
		default:
			queries = append(queries, "SELECT * FROM T WHERE bedrooms BETWEEN 2 AND 4")
		}
	}
	w, err := workload.ParseStrings(queries)
	if err != nil {
		t.Fatal(err)
	}
	stats := workload.Preprocess(w, workload.Config{
		Intervals: map[string]float64{"price": 5000, "bedrooms": 1},
	})

	r := relation.New("T", testSchema())
	hoods := []string{"Bellevue, WA", "Seattle, WA", "Redmond, WA"}
	for i := 0; i < 90; i++ {
		r.MustAppend(relation.Tuple{
			relation.StringValue(hoods[i%3]),
			relation.NumberValue(200000 + float64(i%18)*5000),
			relation.NumberValue(float64(1 + i%5)),
			relation.StringValue("Condo"),
		})
	}
	opts := Options{
		M: 10, X: 0.05, MaxBuckets: 3, MinBucket: 1,
		CandidateAttrs: []string{"neighborhood", "price", "bedrooms"},
	}
	return r, stats, opts
}

func TestOptimalCostAllBasics(t *testing.T) {
	r, stats, opts := enumFixture(t)
	c := NewCategorizer(stats, opts)
	best, trees, err := c.OptimalCostAll(r, nil, EnumerateLimits{MaxSplitpoints: 4})
	if err != nil {
		t.Fatalf("OptimalCostAll: %v", err)
	}
	if trees < 10 {
		t.Fatalf("only %d trees enumerated; the space should be richer", trees)
	}
	if best <= 0 || best > float64(r.Len()) {
		t.Fatalf("optimal cost %v outside (0, |R|]", best)
	}
	t.Logf("enumerated %d trees, optimal CostAll = %.2f", trees, best)
}

// TestGreedyNearOptimal is the §5 fidelity check: the Figure 6 greedy must
// get close to the bounded exhaustive optimum.
func TestGreedyNearOptimal(t *testing.T) {
	r, stats, opts := enumFixture(t)
	c := NewCategorizer(stats, opts)
	tree, err := c.Categorize(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	greedy := TreeCostAll(tree)
	best, trees, err := c.OptimalCostAll(r, nil, EnumerateLimits{MaxSplitpoints: 4})
	if err != nil {
		t.Fatal(err)
	}
	if greedy < best-1e-9 {
		// The greedy searching outside the bounded space is possible in
		// principle (per-node cuts), but with MinBucket=1 it should not be.
		t.Fatalf("greedy (%v) beat the enumerated optimum (%v): enumeration space too small", greedy, best)
	}
	if greedy > 1.3*best {
		t.Fatalf("greedy cost %v more than 1.3× the optimum %v (%d trees)", greedy, best, trees)
	}
	t.Logf("greedy %.2f vs optimal %.2f over %d trees (ratio %.3f)", greedy, best, trees, greedy/best)
}

func TestOptimalCostAllLimits(t *testing.T) {
	r, stats, opts := enumFixture(t)
	c := NewCategorizer(stats, opts)
	if _, _, err := c.OptimalCostAll(r, nil, EnumerateLimits{MaxTrees: 3}); err == nil {
		t.Fatal("tree budget should abort the search")
	}
	if _, _, err := (&Categorizer{}).OptimalCostAll(r, nil, EnumerateLimits{}); err == nil {
		t.Fatal("nil stats should error")
	}
}

func TestSubsets(t *testing.T) {
	got := subsets(3, 2)
	// {0},{0,1},{0,2},{1},{1,2},{2}
	if len(got) != 6 {
		t.Fatalf("subsets(3,2) = %v", got)
	}
	seen := map[string]bool{}
	for _, s := range got {
		key := ""
		for _, v := range s {
			key += string(rune('0' + v))
		}
		if seen[key] {
			t.Fatalf("duplicate subset %v", s)
		}
		seen[key] = true
		if len(s) == 0 || len(s) > 2 {
			t.Fatalf("subset size out of bounds: %v", s)
		}
	}
}
