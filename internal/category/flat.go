package category

import "repro/internal/relation"

// FlatTree builds the paper's degenerate no-categorization presentation
// (§3.2's SHOWTUPLES on the whole result): a single root category holding
// every result tuple, no levels, no labels. It is the bottom rung of the
// serving path's degradation ladder — always valid, O(|R|) to build, and
// costable (root probabilities are trivially 1, so TreeCostAll is simply the
// scan cost of R).
func FlatTree(r *relation.Relation, rows []int, opts Options) *Tree {
	opts = opts.withDefaults()
	return &Tree{
		Root: &Node{Label: Label{Kind: LabelAll}, Tset: append([]int(nil), rows...), P: 1, Pw: 1},
		R:    r,
		K:    opts.K,
	}
}
