package category

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// leaf builds a leaf node with the given size and exploration probability.
func leaf(size int, p float64) *Node {
	return &Node{Label: Label{Kind: LabelValue, Attr: "a", Value: "v"}, Tset: make([]int, size), P: p, Pw: 1}
}

func TestCostAllLeaf(t *testing.T) {
	if got := CostAll(leaf(17, 0.3), 1); got != 17 {
		t.Fatalf("CostAll(leaf) = %v; want 17 (= |tset|)", got)
	}
}

// TestCostAllExample41 reproduces Example 4.1's arithmetic: a root with 3
// subcategories, the first having 3 subcategories of which the middle one
// holds 20 tuples. With deterministic choices (P=1 on the explored path,
// Pw=0 on internal nodes until the SHOWTUPLES leaf) the cost is
// 3 + 3 + 20 = 26.
func TestCostAllExample41(t *testing.T) {
	priceMid := leaf(20, 1) // "Price: 225K-250K", explored via SHOWTUPLES
	priceLo := leaf(30, 0)  // ignored
	priceHi := leaf(40, 0)  // ignored
	hood1 := &Node{
		Label:    Label{Kind: LabelValue, Attr: "neighborhood", Value: "Redmond, Bellevue"},
		Children: []*Node{priceLo, priceMid, priceHi},
		Tset:     make([]int, 90),
		SubAttr:  "price",
		P:        1, // explored
		Pw:       0, // SHOWCAT
	}
	hood2 := leaf(50, 0) // ignored
	hood3 := leaf(60, 0) // ignored
	root := &Node{
		Label:    Label{Kind: LabelAll},
		Children: []*Node{hood1, hood2, hood3},
		Tset:     make([]int, 200),
		SubAttr:  "neighborhood",
		P:        1,
		Pw:       0,
	}
	if got := CostAll(root, 1); got != 26 {
		t.Fatalf("CostAll = %v; want 26 (Example 4.1)", got)
	}
}

func TestCostAllShowTuplesDominates(t *testing.T) {
	// With Pw=1 at the root the cost is exactly |tset(root)| regardless of
	// the subtree.
	root := &Node{
		Label:    Label{Kind: LabelAll},
		Children: []*Node{leaf(5, 1), leaf(5, 1)},
		Tset:     make([]int, 10),
		SubAttr:  "a",
		P:        1,
		Pw:       1,
	}
	if got := CostAll(root, 1); got != 10 {
		t.Fatalf("CostAll = %v; want 10", got)
	}
}

func TestCostAllMixedProbability(t *testing.T) {
	// Hand-computed: Pw=0.25, |tset|=100, two children (sizes 60/40,
	// P 0.5/0.1), K=2.
	// SHOWCAT = 2*2 + 0.5*60 + 0.1*40 = 38; cost = 0.25*100 + 0.75*38 = 53.5
	root := &Node{
		Label:    Label{Kind: LabelAll},
		Children: []*Node{leaf(60, 0.5), leaf(40, 0.1)},
		Tset:     make([]int, 100),
		SubAttr:  "a",
		P:        1,
		Pw:       0.25,
	}
	if got := CostAll(root, 2); math.Abs(got-53.5) > 1e-12 {
		t.Fatalf("CostAll = %v; want 53.5", got)
	}
}

func TestCostOneLeaf(t *testing.T) {
	if got := CostOne(leaf(40, 1), 1, 0.5); got != 20 {
		t.Fatalf("CostOne(leaf) = %v; want 20 (= frac·|tset|)", got)
	}
}

func TestCostOneHandComputed(t *testing.T) {
	// Root: Pw=0, two children: C1 (P=0.5, 10 tuples), C2 (P=1, 30 tuples),
	// K=1, frac=0.5. CostOne(C1)=5, CostOne(C2)=15.
	// Σ = P(C1)*(K*1 + 5) + (1-P(C1))*P(C2)*(K*2 + 15)
	//   = 0.5*6 + 0.5*1*17 = 3 + 8.5 = 11.5
	root := &Node{
		Label:    Label{Kind: LabelAll},
		Children: []*Node{leaf(10, 0.5), leaf(30, 1)},
		Tset:     make([]int, 40),
		SubAttr:  "a",
		P:        1,
		Pw:       0,
	}
	if got := CostOne(root, 1, 0.5); math.Abs(got-11.5) > 1e-12 {
		t.Fatalf("CostOne = %v; want 11.5", got)
	}
}

func TestCostOneShowTuplesBranch(t *testing.T) {
	// Pw=1: cost = frac*|tset| regardless of children.
	root := &Node{
		Label:    Label{Kind: LabelAll},
		Children: []*Node{leaf(10, 1)},
		Tset:     make([]int, 10),
		SubAttr:  "a",
		P:        1,
		Pw:       1,
	}
	if got := CostOne(root, 1, 0.25); got != 2.5 {
		t.Fatalf("CostOne = %v; want 2.5", got)
	}
}

// randomTwoLevel builds a root with n leaf children having random sizes and
// probabilities.
func randomTwoLevel(r *rand.Rand, n int) *Node {
	children := make([]*Node, n)
	total := 0
	for i := range children {
		size := 1 + r.Intn(50)
		total += size
		children[i] = leaf(size, float64(1+r.Intn(100))/100)
	}
	return &Node{
		Label:    Label{Kind: LabelAll},
		Children: children,
		Tset:     make([]int, total),
		SubAttr:  "a",
		P:        1,
		Pw:       r.Float64(),
	}
}

// TestAppendixAOrderingOptimal verifies the Appendix-A theorem: ordering
// children by increasing 1/P + CostOne achieves the brute-force minimum
// CostOne over all child permutations (DESIGN.md invariant 5).
func TestAppendixAOrderingOptimal(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5) // ≤6 children keeps 720 permutations cheap
		root := randomTwoLevel(r, n)
		k := float64(1+r.Intn(3)) / 2
		frac := 0.5
		best := BestOrderBruteForce(root, k, frac)
		OrderOptimalOne(root, k, frac)
		got := CostOne(root, k, frac)
		if got > best+1e-9 {
			t.Logf("seed %d: optimal ordering cost %v > brute-force best %v", seed, got, best)
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCostAllOrderInvariant checks §5.1.2's observation that the ALL cost
// does not depend on child order.
func TestCostAllOrderInvariant(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		root := randomTwoLevel(r, 2+r.Intn(6))
		before := CostAll(root, 1)
		perm := r.Perm(len(root.Children))
		shuffled := make([]*Node, len(root.Children))
		for i, j := range perm {
			shuffled[i] = root.Children[j]
		}
		root.Children = shuffled
		after := CostAll(root, 1)
		return math.Abs(before-after) < 1e-9
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestOrderByPMatchesOptimalWhenCostsEqual: when all child costs are equal,
// decreasing P equals increasing 1/P + cost, so the heuristic is optimal.
func TestOrderByPMatchesOptimalWhenCostsEqual(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		children := make([]*Node, n)
		for i := range children {
			children[i] = leaf(10, float64(1+r.Intn(100))/100) // same size => same CostOne
		}
		root := &Node{Label: Label{Kind: LabelAll}, Children: children,
			Tset: make([]int, 10*n), SubAttr: "a", P: 1, Pw: 0}
		best := BestOrderBruteForce(root, 1, 0.5)
		OrderByP(root)
		got := CostOne(root, 1, 0.5)
		return math.Abs(got-best) < 1e-9
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCostsNonNegativeFinite is DESIGN.md invariant 6 on random trees.
func TestCostsNonNegativeFinite(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		root := randomDeepTree(r, 0)
		a := CostAll(root, 1)
		o := CostOne(root, 1, 0.5)
		return a >= 0 && o >= 0 && !math.IsInf(a, 1) && !math.IsInf(o, 1) &&
			!math.IsNaN(a) && !math.IsNaN(o)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func randomDeepTree(r *rand.Rand, depth int) *Node {
	n := &Node{Label: Label{Kind: LabelAll}, P: r.Float64(), Pw: 1}
	if depth < 3 && r.Intn(2) == 0 {
		k := 1 + r.Intn(4)
		total := 0
		n.SubAttr = "a"
		n.Pw = r.Float64()
		for i := 0; i < k; i++ {
			c := randomDeepTree(r, depth+1)
			total += c.Size()
			n.Children = append(n.Children, c)
		}
		n.Tset = make([]int, total)
	} else {
		n.Tset = make([]int, r.Intn(30))
	}
	return n
}

func TestOrderOptimalOneZeroProbabilityLast(t *testing.T) {
	z := leaf(5, 0)
	hot := leaf(5, 0.9)
	root := &Node{Label: Label{Kind: LabelAll}, Children: []*Node{z, hot},
		Tset: make([]int, 10), SubAttr: "a", P: 1, Pw: 0}
	OrderOptimalOne(root, 1, 0.5)
	if root.Children[0] != hot {
		t.Fatal("zero-probability child should sort after hot child")
	}
}

func TestOrderTreeOptimalOneRecurses(t *testing.T) {
	inner := &Node{
		Label:    Label{Kind: LabelValue, Attr: "a", Value: "x"},
		Children: []*Node{leaf(100, 0.1), leaf(2, 0.9)},
		Tset:     make([]int, 102), SubAttr: "b", P: 0.5, Pw: 0,
	}
	// Give the inner children distinct Attr to satisfy nothing; ordering only.
	inner.Children[0].Label.Attr = "b"
	inner.Children[1].Label.Attr = "b"
	root := &Node{Label: Label{Kind: LabelAll}, Children: []*Node{inner},
		Tset: make([]int, 102), SubAttr: "a", P: 1, Pw: 0}
	tree := &Tree{Root: root, K: 1}
	OrderTreeOptimalOne(tree, 0.5)
	if inner.Children[0].Size() != 2 {
		t.Fatal("inner children not reordered bottom-up (small high-P child should lead)")
	}
}

func TestTreeCostWrappers(t *testing.T) {
	root := randomTwoLevel(rand.New(rand.NewSource(1)), 3)
	tree := &Tree{Root: root, K: 1}
	if got, want := TreeCostAll(tree), CostAll(root, 1); got != want {
		t.Errorf("TreeCostAll = %v; want %v", got, want)
	}
	if got, want := TreeCostOne(tree, 0.5), CostOne(root, 1, 0.5); got != want {
		t.Errorf("TreeCostOne = %v; want %v", got, want)
	}
}

func TestTwoLevelCostAllMatchesGeneral(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		root := randomTwoLevel(r, 1+r.Intn(6))
		sizes := make([]int, len(root.Children))
		ps := make([]float64, len(root.Children))
		for i, c := range root.Children {
			sizes[i] = c.Size()
			ps[i] = c.P
		}
		k := 1.5
		want := CostAll(root, k)
		got := twoLevelCostAll(root.Size(), root.Pw, k, sizes, ps)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
