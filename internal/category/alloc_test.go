package category

import (
	"testing"

	"repro/internal/relation"
)

// allocLC builds a warmed levelContext over r: columns materialized, level
// caches initialized — the state every partitioner sees inside the level
// loop.
func allocLC(t *testing.T, r *relation.Relation) *levelContext {
	t.Helper()
	stats := testStats(t)
	lc := &levelContext{r: r, stats: stats, est: &Estimator{Stats: stats}, opts: Options{}.withDefaults()}
	if err := r.BuildColumns(); err != nil {
		t.Fatalf("BuildColumns: %v", err)
	}
	lc.resetLevel()
	return lc
}

// TestCategoricalPlanAllocs pins the counting-sort partitioner's allocation
// profile: one arena per node plus the plan skeleton, independent of the
// result size. The seed's map-of-slices bucketing allocated per distinct
// value per node (hundreds of allocations on this input).
func TestCategoricalPlanAllocs(t *testing.T) {
	r := testRelation(2000)
	lc := allocLC(t, r)
	root := &Node{Label: Label{Kind: LabelAll}, Tset: r.Select(nil), P: 1, Pw: 1}
	s := []*Node{root}

	allocs := testing.AllocsPerRun(20, func() {
		if pl := lc.categoricalPlan("neighborhood", s); pl == nil {
			t.Fatal("categoricalPlan returned nil")
		}
	})
	// Plan skeleton + per-node tset arena + spec slices; generous headroom
	// over the measured count (~10) but far below the seed's per-value cost.
	if allocs > 25 {
		t.Errorf("categoricalPlan allocations = %.0f, want <= 25", allocs)
	}
}

// TestNumericPlanAllocs pins the bucket partitioner's allocation profile
// with a warm per-level sort cache — the state inside bestPlan's fan-out,
// where every candidate evaluation of the same (node, attribute) pair reuses
// one cached permutation. Only the plan skeleton and the idx copy handed to
// the tree may allocate.
func TestNumericPlanAllocs(t *testing.T) {
	r := testRelation(2000)
	lc := allocLC(t, r)
	root := &Node{Label: Label{Kind: LabelAll}, Tset: r.Select(nil), P: 1, Pw: 1}
	s := []*Node{root}

	// Prime the (node, price) permutation once, as the first candidate
	// evaluation of a level does.
	if pl := lc.numericPlan("price", s); pl == nil {
		t.Fatal("numericPlan returned nil")
	}
	allocs := testing.AllocsPerRun(20, func() {
		if pl := lc.numericPlan("price", s); pl == nil {
			t.Fatal("numericPlan returned nil")
		}
	})
	// Plan skeleton + one idx copy + spec slice per node; the seed re-sorted
	// the tuple-set on every evaluation (O(n) allocations via sort.Slice's
	// closure machinery plus per-bucket slices).
	if allocs > 25 {
		t.Errorf("numericPlan allocations = %.0f, want <= 25", allocs)
	}
}

// TestSortByValueAllocs pins the pair-sort's transient buffer pooling: only
// the returned rows/vals slices may allocate.
func TestSortByValueAllocs(t *testing.T) {
	r := testRelation(2000)
	col, err := r.NumColumn("price")
	if err != nil {
		t.Fatal(err)
	}
	tset := r.Select(nil)
	allocs := testing.AllocsPerRun(20, func() {
		rows, vals := relation.SortByValue(col, tset)
		if len(rows) != len(tset) || len(vals) != len(tset) {
			t.Fatal("bad SortByValue result")
		}
	})
	if allocs > 4 {
		t.Errorf("SortByValue allocations = %.0f, want <= 4", allocs)
	}
}
