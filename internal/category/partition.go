package category

import (
	"context"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/relation"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

// childSpec is a proposed subcategory: its label, tuple-set, and exploration
// probability. Plans are built per candidate attribute per level and only
// the winning attribute's plan is attached to the tree.
type childSpec struct {
	label Label
	tset  []int
	p     float64
}

// plan is the proposed partitioning of every node in S (the level's
// oversized categories) by one candidate attribute.
type plan struct {
	attr     string
	children [][]childSpec // parallel to S
	// pw holds per-node conditional SHOWTUPLES probabilities (parallel to
	// S) when the correlation model applied; entries < 0 (and a nil slice)
	// mean "use the independent estimate".
	pw []float64
}

// nodePw returns the SHOWTUPLES probability to use for node si given the
// independent fallback.
func (p *plan) nodePw(si int, independent float64) float64 {
	if si < len(p.pw) && p.pw[si] >= 0 {
		return p.pw[si]
	}
	return independent
}

// partitions reports whether the plan actually subdivides at least one node
// (a plan that leaves every node with ≤1 child is useless as a level).
func (p *plan) partitions() bool {
	for _, ch := range p.children {
		if len(ch) > 1 {
			return true
		}
	}
	return false
}

// levelContext carries the per-level inputs shared by all partitioners.
type levelContext struct {
	r     *relation.Relation
	q     *sqlparse.Query // the user query (may be nil for browsing)
	stats *workload.Stats
	est   *Estimator
	opts  Options

	// corr enables the path-conditional probability model (§5.2's
	// correlation refinement); nil keeps the paper's independence
	// assumption. compat then holds, per frontier node, the workload
	// queries compatible with the node's root path.
	corr   *workload.CondIndex
	compat map[*Node][]int

	// ctx aborts the build early when the serving layer abandons it.
	ctx context.Context

	// shards is the resolved shard-parallel fan-out for per-node partition
	// work (see shard.go): nodes at least shardMinTset large are counted and
	// filled by this many span workers. 1 disables sharding. counters (may
	// be nil) accumulates the fan-out telemetry healthz reports.
	shards   int
	counters *ShardCounters

	// perms caches each frontier node's tuple-set sorted by a numeric
	// attribute, shared across the bestPlan fan-out (and across the
	// enumerator's many cut-set plans) so no candidate evaluation ever
	// re-sorts a (node, attribute) pair. Reset per level via resetLevel.
	permMu sync.Mutex
	perms  map[permKey]*sortedProj

	// scratch pools counting-sort arenas for categorical plans so the
	// bounded worker pool reuses buffers instead of allocating
	// O(candidates × nodes) garbage per level.
	scratch sync.Pool // holds *catScratch
}

// permKey identifies one (frontier node, numeric attribute) sort.
type permKey struct {
	n   *Node
	pos int // attribute position in the schema
}

// sortedProj is a node's tuple-set sorted by one numeric attribute: idx is
// the permutation of the node's Tset, vals the parallel ascending values.
// Both are cache-owned; callers must copy idx before handing slices of it
// to a tree.
type sortedProj struct {
	idx  []int
	vals []float64
}

// resetLevel clears the per-level caches; call whenever the frontier the
// partitioners see changes.
func (lc *levelContext) resetLevel() {
	lc.permMu.Lock()
	if lc.perms == nil {
		lc.perms = make(map[permKey]*sortedProj)
	} else {
		clear(lc.perms) // reuse the buckets level over level
	}
	lc.permMu.Unlock()
}

// sortedProjection returns the cached value-sorted permutation of n's
// tuple-set for the numeric attribute at schema position pos (col is that
// attribute's columnar projection), computing and caching it on first use.
// Safe for concurrent use by the candidate workers; each (node, attribute)
// pair is sorted at most once per level.
func (lc *levelContext) sortedProjection(n *Node, pos int, col []float64) *sortedProj {
	key := permKey{n, pos}
	lc.permMu.Lock()
	sp, ok := lc.perms[key]
	lc.permMu.Unlock()
	if ok {
		return sp
	}
	// The browsing-mode root categorizes the whole relation in row order;
	// its sort is identical on every request, so serve it from the
	// relation's cached full-table projection instead of re-sorting.
	if len(n.Tset) == lc.r.Len() && isIdentity(n.Tset) {
		attr := lc.r.Schema().Attr(pos).Name
		if rows, vals, err := lc.r.NumSorted(attr); err == nil {
			sp = &sortedProj{idx: rows, vals: vals}
			return lc.storePerm(key, sp)
		}
	}
	// Sort outside the lock: distinct (node, attribute) pairs proceed in
	// parallel. The numeric sort is deliberately NOT sharded: pdqsort's tie
	// order is deterministic for a fixed input but not total, so a chunked
	// sort-and-merge would need a tie-breaking comparator, which defeats
	// pdqsort's equal-element partitioning and costs >2x on low-cardinality
	// columns. One sequential sort keeps ties — and the golden-pinned trees —
	// identical at every shard count (DESIGN.md §12).
	idx, vals := relation.SortByValue(col, n.Tset)
	return lc.storePerm(key, &sortedProj{idx: idx, vals: vals})
}

// storePerm publishes a computed projection, keeping the first one stored
// if another worker raced us to the same (node, attribute) pair.
func (lc *levelContext) storePerm(key permKey, sp *sortedProj) *sortedProj {
	lc.permMu.Lock()
	if prev, ok := lc.perms[key]; ok {
		sp = prev
	} else if lc.perms != nil {
		lc.perms[key] = sp
	}
	lc.permMu.Unlock()
	return sp
}

// isIdentity reports whether tset is exactly 0,1,2,…,len-1.
func isIdentity(tset []int) bool {
	for k, v := range tset {
		if v != k {
			return false
		}
	}
	return true
}

// catScratch is a reusable counting-sort arena for categorical plans. The
// counts slice is kept all-zero between uses (each user resets only the
// entries it touched); orderOf and the rest are overwritten per plan.
type catScratch struct {
	counts  []int32  // per code: bucket size, then fill cursor; zeroed after
	orderOf []int32  // per code: presentation rank; -1 = not yet ranked
	present []uint32 // distinct codes of the current node
	ranks   codesByRank
}

// codesByRank sorts a node's present codes by presentation rank without
// allocating (sort.Sort on a pooled pointer receiver).
type codesByRank struct {
	codes []uint32
	rank  []int32
}

func (s *codesByRank) Len() int           { return len(s.codes) }
func (s *codesByRank) Less(i, j int) bool { return s.rank[s.codes[i]] < s.rank[s.codes[j]] }
func (s *codesByRank) Swap(i, j int)      { s.codes[i], s.codes[j] = s.codes[j], s.codes[i] }

// catScratchFor checks a scratch arena out of the pool, sized for a
// dictionary of card codes. Return it with lc.scratch.Put.
func (lc *levelContext) catScratchFor(card int) *catScratch {
	sc, _ := lc.scratch.Get().(*catScratch)
	if sc == nil {
		sc = &catScratch{}
	}
	if cap(sc.counts) < card {
		sc.counts = make([]int32, card)
	} else {
		sc.counts = sc.counts[:card]
	}
	if cap(sc.orderOf) < card {
		sc.orderOf = make([]int32, card)
	} else {
		sc.orderOf = sc.orderOf[:card]
	}
	for i := range sc.orderOf {
		sc.orderOf[i] = -1
	}
	return sc
}

// pathPred converts a label into the workload-side path predicate; closed
// upper bounds are widened by one ulp so overlap semantics match the
// estimator's.
func pathPred(l Label) workload.PathPred {
	switch l.Kind {
	case LabelValue:
		return workload.PathPred{Attr: l.Attr, Value: l.Value}
	case LabelValueSet:
		return workload.PathPred{Attr: l.Attr, Values: l.Values}
	case LabelRange:
		hi := l.Hi
		if l.HiInc {
			hi = math.Nextafter(hi, math.Inf(1))
		}
		return workload.PathPred{Attr: l.Attr, IsRange: true, Lo: l.Lo, Hi: hi}
	default:
		return workload.PathPred{}
	}
}

// conditionalProbs overwrites the plan's probabilities for node si with
// path-conditional estimates when the compatible set gives enough support;
// it returns the node's conditional SHOWTUPLES probability and whether the
// conditional model applied.
func (lc *levelContext) conditionalProbs(n *Node, specs []childSpec) (pw float64, ok bool) {
	if lc.corr == nil {
		return 0, false
	}
	ids := lc.compat[n]
	if len(ids) < lc.opts.MinCondSupport {
		return 0, false
	}
	preds := make([]workload.PathPred, len(specs))
	for i, sp := range specs {
		preds[i] = pathPred(sp.label)
	}
	attr := ""
	if len(specs) > 0 {
		attr = specs[0].label.Attr
	}
	attrN, overlap := lc.corr.CountChildren(ids, attr, preds)
	if attrN < lc.opts.MinCondSupport {
		return 0, false
	}
	for i := range specs {
		specs[i].p = float64(overlap[i]) / float64(attrN)
	}
	return 1 - float64(attrN)/float64(len(ids)), true
}

// domainValues returns the candidate single-value categories for a
// categorical attribute, ordered by occurrence count descending (§5.1.2):
// the values of the query's IN clause when present, otherwise the distinct
// values appearing in the union of the level's tuple-sets.
func (lc *levelContext) domainValues(attr string, s []*Node) []string {
	var values []string
	if lc.q != nil {
		if c := lc.q.Cond(attr); c != nil && !c.IsRange {
			values = append(values, c.Values...)
		}
	}
	if values == nil {
		col, err := lc.r.CatColumn(attr)
		if err != nil {
			return nil
		}
		seen := make([]bool, col.Card())
		distinct := 0
		for _, n := range s {
			for _, i := range n.Tset {
				if c := col.Codes[i]; !seen[c] {
					seen[c] = true
					distinct++
				}
			}
		}
		values = make([]string, 0, distinct)
		for c, hit := range seen {
			if hit {
				values = append(values, col.Dict[c])
			}
		}
	}
	sort.Slice(values, func(i, j int) bool {
		oi, oj := lc.stats.Occ(attr, values[i]), lc.stats.Occ(attr, values[j])
		if oi != oj {
			return oi > oj
		}
		return values[i] < values[j]
	})
	return values
}

// domainRange returns the numeric domain [vmin, vmax] the level partitions:
// the query's range condition when fully bounded (§5.1.3), otherwise the
// data min/max across the level's tuple-sets.
func (lc *levelContext) domainRange(attr string, s []*Node) (vmin, vmax float64, ok bool) {
	if lc.q != nil {
		if c := lc.q.Cond(attr); c != nil && c.IsRange && c.LoSet && c.HiSet {
			return c.Lo, c.Hi, true
		}
	}
	vmin, vmax = math.Inf(1), math.Inf(-1)
	col, err := lc.r.NumColumn(attr)
	if err != nil {
		return 0, 0, false
	}
	any := false
	for _, n := range s {
		for _, i := range n.Tset {
			v := col[i]
			if v < vmin {
				vmin = v
			}
			if v > vmax {
				vmax = v
			}
			any = true
		}
	}
	return vmin, vmax, any
}

// categoricalPlan implements §5.1.2: single-value categories, one per domain
// value, presented in decreasing occurrence-count order; empty categories
// are dropped per node.
func (lc *levelContext) categoricalPlan(attr string, s []*Node) *plan {
	scl := lc.domainValues(attr, s)
	if len(scl) == 0 {
		return nil
	}
	nAttr := lc.stats.NAttr(attr)
	pl := lc.codePartition(attr, scl, s)
	if pl == nil {
		return nil
	}
	for si, n := range s {
		specs := lc.mergeOther(attr, pl.children[si], nAttr)
		lc.applyConditional(pl, si, n, specs)
		pl.children[si] = specs
	}
	return pl
}

// codePartition partitions every node in S by the attribute's dictionary
// codes with a counting sort, emitting one single-value childSpec per
// occurring value, ordered by the value's rank in scl (values outside scl —
// only possible when a query's IN clause understates the data — rank after
// it, in first-encounter order). Bucket tuple order is the node's Tset
// order, and each node's tuple-sets share one arena allocation. The
// exploration probability of value v is occ(v)/NAttr capped at 1 (1 when
// the workload never uses the attribute) — the independent estimate both
// the cost-based and the baseline partitioners use.
func (lc *levelContext) codePartition(attr string, scl []string, s []*Node) *plan {
	col, err := lc.r.CatColumn(attr)
	if err != nil {
		return nil
	}
	nAttr := lc.stats.NAttr(attr)
	sc := lc.catScratchFor(col.Card())
	defer lc.scratch.Put(sc)
	rank := int32(0)
	for _, v := range scl {
		if c, ok := col.Code(v); ok {
			sc.orderOf[c] = rank
		}
		rank++
	}
	pl := &plan{attr: attr, children: make([][]childSpec, len(s))}
	for si, n := range s {
		// Large nodes take the shard-parallel path (shard.go): per-span
		// counts merged by addition, ranks assigned at the same points,
		// buckets filled through per-span cursors — same specs, same order,
		// same tuple-sets. Counting state (counts/orderOf/rank) is shared,
		// so sharded and sequential nodes interleave freely within a level.
		if lc.useShards(len(n.Tset)) {
			pl.children[si] = lc.shardedPartitionNode(col, attr, nAttr, n, sc, &rank)
			continue
		}
		lc.counters.addSeqNode()
		present := sc.present[:0]
		for _, row := range n.Tset {
			c := col.Codes[row]
			if sc.counts[c] == 0 {
				if sc.orderOf[c] < 0 {
					sc.orderOf[c] = rank
					rank++
				}
				present = append(present, c)
			}
			sc.counts[c]++
		}
		sc.present = present // keep any growth for the next node
		sc.ranks = codesByRank{codes: present, rank: sc.orderOf}
		sort.Sort(&sc.ranks)

		// Lay the buckets out consecutively in one arena; counts[c] becomes
		// the fill cursor of value c's bucket. The arena is freshly
		// allocated because the winning plan's tuple-sets live on in the
		// tree.
		arena := make([]int, len(n.Tset))
		specs := make([]childSpec, len(present))
		off := int32(0)
		for k, c := range present {
			v := col.Dict[c]
			p := 1.0
			if nAttr > 0 {
				p = float64(lc.stats.Occ(attr, v)) / float64(nAttr)
				if p > 1 {
					p = 1
				}
			}
			specs[k] = childSpec{label: Label{Kind: LabelValue, Attr: attr, Value: v}, p: p}
			cnt := sc.counts[c]
			sc.counts[c] = off
			off += cnt
		}
		for _, row := range n.Tset {
			c := col.Codes[row]
			arena[sc.counts[c]] = row
			sc.counts[c]++
		}
		// After the fill, counts[c] is the end offset of c's bucket and the
		// buckets are consecutive, so bucket k spans [end(k−1), end(k)). The
		// three-index slice keeps a later append (mergeOther) from spilling
		// into the neighbouring bucket.
		start := int32(0)
		for k, c := range present {
			end := sc.counts[c]
			specs[k].tset = arena[start:end:end]
			start = end
			sc.counts[c] = 0 // restore the all-zero invariant
		}
		pl.children[si] = specs
	}
	return pl
}

// mergeOther enforces Options.MaxCategories: the tail of the occ-ordered
// single-value categories collapses into one multi-value "Other" category
// whose exploration probability is the capped sum of its members'.
func (lc *levelContext) mergeOther(attr string, specs []childSpec, nAttr int) []childSpec {
	max := lc.opts.MaxCategories
	if max <= 1 || len(specs) <= max {
		return specs
	}
	head := specs[:max-1]
	tail := specs[max-1:]
	values := make([]string, 0, len(tail))
	var tset []int
	occSum := 0
	for _, sp := range tail {
		values = append(values, sp.label.Value)
		tset = append(tset, sp.tset...)
		occSum += lc.stats.Occ(attr, sp.label.Value)
	}
	sort.Strings(values)
	sort.Ints(tset)
	p := 1.0
	if nAttr > 0 {
		if occSum > nAttr {
			occSum = nAttr
		}
		p = float64(occSum) / float64(nAttr)
	}
	other := childSpec{
		label: Label{Kind: LabelValueSet, Attr: attr, Values: values},
		tset:  tset,
		p:     p,
	}
	return append(head, other)
}

// applyConditional records the conditional probabilities for node si when
// the correlation model has enough support, keeping categories ordered by
// decreasing (now conditional) exploration probability for categorical
// levels. Numeric buckets keep their ascending-value order per §5.1.3.
func (lc *levelContext) applyConditional(pl *plan, si int, n *Node, specs []childSpec) {
	pw, ok := lc.conditionalProbs(n, specs)
	if !ok {
		return
	}
	if pl.pw == nil {
		pl.pw = make([]float64, len(pl.children))
		for i := range pl.pw {
			pl.pw[i] = -1
		}
	}
	pl.pw[si] = pw
	if len(specs) > 0 && specs[0].label.Kind == LabelValue {
		sort.SliceStable(specs, func(a, b int) bool { return specs[a].p > specs[b].p })
	}
}

// numericPlan implements §5.1.3: per node, choose the top (m−1) necessary
// splitpoints by workload goodness and emit the resulting buckets in
// ascending value order. The splitpoint list is computed once per level; the
// necessity test — each adjacent bucket keeps at least MinBucket tuples — is
// per node.
func (lc *levelContext) numericPlan(attr string, s []*Node) *plan {
	vmin, vmax, ok := lc.domainRange(attr, s)
	if !ok || vmin >= vmax {
		return nil
	}
	st := lc.stats.Splits(attr)
	var spl []workload.Splitpoint
	if st != nil {
		spl = st.Candidates(vmin, vmax, true, lc.opts.MaxZeroCandidates)
	}
	nAttr := lc.stats.NAttr(attr)
	pl := &plan{attr: attr, children: make([][]childSpec, len(s))}
	pos, _ := lc.r.Schema().Lookup(attr)
	col, err := lc.r.NumColumn(attr)
	if err != nil {
		return nil
	}
	for si, n := range s {
		sp := lc.sortedProjection(n, pos, col)
		// buildBuckets takes ownership of idx (the tree keeps slices of it),
		// so hand it a copy and leave the cached permutation untouched.
		idx := make([]int, len(sp.idx))
		copy(idx, sp.idx)
		cuts := selectSplitpoints(spl, sp.vals, lc.maxBuckets(spl)-1, lc.opts.MinBucket)
		specs := lc.buildBuckets(attr, vmin, vmax, cuts, sp.vals, idx, nAttr)
		lc.applyConditional(pl, si, n, specs)
		pl.children[si] = specs
	}
	return pl
}

// maxBuckets returns m for this level: the configured maximum, or — with
// AutoBuckets — as many splitpoints as score at least 5% of the best
// goodness (the paper notes goodness may determine m automatically).
func (lc *levelContext) maxBuckets(spl []workload.Splitpoint) int {
	m := lc.opts.MaxBuckets
	if !lc.opts.AutoBuckets || len(spl) == 0 || spl[0].Goodness == 0 {
		return m
	}
	threshold := spl[0].Goodness / 20
	count := 0
	for _, sp := range spl {
		if sp.Goodness > threshold {
			count++
		}
	}
	if count+1 > m {
		m = count + 1
	}
	return m
}

// selectSplitpoints walks the goodness-ordered candidates and keeps the
// first need splitpoints that are necessary: within the currently chosen cut
// set, both buckets adjacent to the new cut must retain at least minBucket
// tuples (vals is the node's sorted value list). It returns the chosen cuts
// in ascending order.
func selectSplitpoints(spl []workload.Splitpoint, vals []float64, need, minBucket int) []float64 {
	if need <= 0 || len(vals) == 0 {
		return nil
	}
	cuts := make([]float64, 0, need)      // kept sorted
	countIn := func(lo, hi float64) int { // tuples with lo <= v < hi
		return sort.SearchFloat64s(vals, hi) - sort.SearchFloat64s(vals, lo)
	}
	for _, cand := range spl {
		if len(cuts) >= need {
			break
		}
		pos := sort.SearchFloat64s(cuts, cand.Value)
		if pos < len(cuts) && cuts[pos] == cand.Value {
			continue
		}
		lo, hi := math.Inf(-1), math.Inf(1)
		if pos > 0 {
			lo = cuts[pos-1]
		}
		if pos < len(cuts) {
			hi = cuts[pos]
		}
		if countIn(lo, cand.Value) < minBucket || countIn(cand.Value, hi) < minBucket {
			continue // unnecessary: a side would be too thin (§5.1.3)
		}
		cuts = append(cuts, 0)
		copy(cuts[pos+1:], cuts[pos:])
		cuts[pos] = cand.Value
	}
	return cuts
}

// buildBuckets materializes the ascending bucket children for one node from
// the chosen cuts. idx/vals are the node's tuples sorted by attribute value;
// buildBuckets takes ownership of idx — the buckets are disjoint contiguous
// ranges of it, so each tuple-set is a subslice and the caller must not
// reuse or modify idx afterwards. Empty buckets are dropped; the last kept
// bucket closes its upper bound so vmax is covered.
func (lc *levelContext) buildBuckets(attr string, vmin, vmax float64, cuts, vals []float64, idx []int, nAttr int) []childSpec {
	bounds := make([]float64, 0, len(cuts)+2)
	bounds = append(bounds, vmin)
	bounds = append(bounds, cuts...)
	bounds = append(bounds, vmax)
	specs := make([]childSpec, 0, len(bounds)-1)
	for b := 0; b+1 < len(bounds); b++ {
		lo, hi := bounds[b], bounds[b+1]
		last := b+2 == len(bounds)
		var start, end int
		start = sort.SearchFloat64s(vals, lo)
		if last {
			end = len(vals)
		} else {
			end = sort.SearchFloat64s(vals, hi)
		}
		if start == end {
			continue
		}
		label := Label{Kind: LabelRange, Attr: attr, Lo: lo, Hi: hi, HiInc: last}
		p := 1.0
		if nAttr > 0 {
			phi := hi
			if last {
				phi = math.Nextafter(hi, math.Inf(1))
			}
			p = float64(lc.stats.NOverlapRange(attr, lo, phi)) / float64(nAttr)
			if p > 1 {
				p = 1
			}
		}
		specs = append(specs, childSpec{label: label, tset: idx[start:end:end], p: p})
	}
	return specs
}

// planFor dispatches on the attribute's type. It returns nil when the
// attribute is absent from the schema or yields no partition.
func (lc *levelContext) planFor(attr string, s []*Node) *plan {
	typ, ok := lc.r.Schema().TypeOf(attr)
	if !ok {
		return nil
	}
	var pl *plan
	if typ == relation.Categorical {
		pl = lc.categoricalPlan(attr, s)
	} else {
		pl = lc.numericPlan(attr, s)
	}
	if pl == nil || !pl.partitions() {
		return nil
	}
	return pl
}

// planCost evaluates the Figure 6 objective for a plan:
//
//	COST_A = Σ_{C∈S} P(C) · CostAll(Tree(C, A))
//
// where Tree(C, A) is the two-level tree with C as root (SHOWTUPLES
// probability 1−NAttr(A)/N) and the proposed children as leaves.
func (lc *levelContext) planCost(pl *plan, s []*Node) float64 {
	indepPw := lc.est.ShowTuplesProb(pl.attr)
	total := 0.0
	for si, n := range s {
		total += n.P * twoLevelCostAllSpecs(n.Size(), pl.nodePw(si, indepPw), lc.opts.K, pl.children[si])
	}
	return total
}

// attach materializes the winning plan: each node in S gets the plan's
// children, its SubAttr, and its non-leaf SHOWTUPLES probability; the new
// children start as leaves (Pw = 1). All of the level's nodes come from one
// arena allocation — a level attaches hundreds of categories at paper
// scale, and one &Node{} per category was the categorizer's single largest
// allocation source. It returns the new frontier.
func (lc *levelContext) attach(pl *plan, s []*Node) []*Node {
	indepPw := lc.est.ShowTuplesProb(pl.attr)
	total := 0
	for _, specs := range pl.children {
		if len(specs) > 1 {
			total += len(specs)
		}
	}
	arena := make([]Node, total)
	frontier := make([]*Node, 0, total)
	k := 0
	for si, n := range s {
		specs := pl.children[si]
		if len(specs) <= 1 {
			continue // not worth a level for this node; stays a leaf
		}
		n.SubAttr = pl.attr
		n.Pw = pl.nodePw(si, indepPw)
		if cap(n.Children) < len(specs) {
			n.Children = make([]*Node, 0, len(specs))
		}
		for _, sp := range specs {
			child := &arena[k]
			k++
			*child = Node{Label: sp.label, Tset: sp.tset, P: sp.p, Pw: 1}
			n.Children = append(n.Children, child)
			frontier = append(frontier, child)
			if lc.corr != nil {
				lc.compat[child] = lc.corr.FilterCompatible(lc.compat[n], pathPred(child.Label))
			}
		}
		if lc.corr != nil {
			delete(lc.compat, n) // parent set no longer needed
		}
	}
	return frontier
}

// equalFoldContains reports whether list contains s case-insensitively.
func equalFoldContains(list []string, s string) bool {
	for _, v := range list {
		if strings.EqualFold(v, s) {
			return true
		}
	}
	return false
}
