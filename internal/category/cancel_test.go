package category

import (
	"context"
	"errors"
	"testing"
	"time"
)

// Cancellation tests for the cost-based categorizer: a dead context abandons
// the build, and — the case that matters under a saturated scheduler — so
// does a context whose deadline has elapsed even when the runtime timer that
// would close Done has not been delivered yet. Trees are never returned
// partially built; abandonment is an error, not a truncated result.

func TestCategorizeAbandonsOnCanceledContext(t *testing.T) {
	r := testRelation(400)
	c := NewCategorizer(testStats(t), Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c.Ctx = ctx
	tree, err := c.Categorize(r, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want context.Canceled", err)
	}
	if tree != nil {
		t.Fatal("canceled build returned a tree")
	}
}

// starvedCtx models a context whose deadline has passed but whose timer has
// not fired: Done never closes and Err stays nil. On GOMAXPROCS=1 a
// CPU-bound build holds the only P, so the real runtime behaves exactly like
// this for the length of the build — the categorizer must read the clock
// rather than wait for the timer.
type starvedCtx struct {
	context.Context
	deadline time.Time
}

func (s starvedCtx) Deadline() (time.Time, bool) { return s.deadline, true }
func (s starvedCtx) Done() <-chan struct{}       { return nil }
func (s starvedCtx) Err() error                  { return nil }

func TestCategorizeObservesElapsedDeadlineWithoutTimer(t *testing.T) {
	r := testRelation(400)
	c := NewCategorizer(testStats(t), Options{})
	c.Ctx = starvedCtx{Context: context.Background(), deadline: time.Now().Add(-time.Second)}
	tree, err := c.Categorize(r, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v; want context.DeadlineExceeded despite an undelivered timer", err)
	}
	if tree != nil {
		t.Fatal("deadline-elapsed build returned a tree")
	}
}
