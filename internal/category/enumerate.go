package category

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/relation"
	"repro/internal/sqlparse"
)

// This file implements the enumerative algorithm the paper's §5 opens with:
// "we can enumerate all the permissible category trees on R, compute their
// costs and pick the tree Topt with the minimum cost. This enumerative
// algorithm will produce the cost-optimal tree but could be prohibitively
// expensive." It exists to measure how close the Figure 6 greedy gets —
// usable only on small inputs, guarded by explicit limits.
//
// The enumeration covers the same space the greedy searches level by level:
// a permutation of candidate attributes across levels, and for each numeric
// level a subset of the workload's candidate splitpoints (shared by the
// level's nodes, as in the greedy); categorical levels have the fixed
// single-value partitioning of §5.1.2. CostAll is order-invariant, so child
// order is irrelevant to the optimum.

// EnumerateLimits bounds the exhaustive search.
type EnumerateLimits struct {
	// MaxAttrs caps the candidate attributes considered. Default 3.
	MaxAttrs int
	// MaxSplitpoints caps the splitpoint candidates per numeric attribute
	// (taken in goodness order). Default 5; subsets of size < MaxBuckets are
	// enumerated, so the per-level choice count is C(MaxSplitpoints, ≤m−1).
	MaxSplitpoints int
	// MaxTrees aborts the search after this many complete trees. Default
	// 200000.
	MaxTrees int
}

func (l EnumerateLimits) withDefaults() EnumerateLimits {
	if l.MaxAttrs == 0 {
		l.MaxAttrs = 3
	}
	if l.MaxSplitpoints == 0 {
		l.MaxSplitpoints = 5
	}
	if l.MaxTrees == 0 {
		l.MaxTrees = 200000
	}
	return l
}

// OptimalCostAll exhaustively searches the bounded tree space and returns
// the minimum CostAll along with the number of trees evaluated. It errors
// when the limits are exceeded.
func (c *Categorizer) OptimalCostAll(r *relation.Relation, q *sqlparse.Query, limits EnumerateLimits) (float64, int, error) {
	if c.Stats == nil {
		return 0, 0, fmt.Errorf("category: categorizer has no workload statistics")
	}
	limits = limits.withDefaults()
	opts := c.Opts.withDefaults()
	est := &Estimator{Stats: c.Stats}
	lc := &levelContext{r: r, q: q, stats: c.Stats, est: est, opts: opts}

	candidates := opts.CandidateAttrs
	if candidates == nil {
		candidates = c.Stats.Retained(opts.X)
	}
	candidates = presentInSchema(candidates, r)
	if len(candidates) > limits.MaxAttrs {
		candidates = candidates[:limits.MaxAttrs]
	}

	rows := r.Select(q2pred(q))
	root := &Node{Label: Label{Kind: LabelAll}, Tset: rows, P: 1, Pw: 1}

	e := &enumerator{lc: lc, limits: limits, best: math.Inf(1), root: root}
	if err := e.search([]*Node{root}, candidates); err != nil {
		return 0, e.trees, err
	}
	if e.trees == 0 {
		return 0, 0, fmt.Errorf("category: enumeration produced no trees")
	}
	return e.best, e.trees, nil
}

func q2pred(q *sqlparse.Query) relation.Predicate {
	if q == nil {
		return nil
	}
	return q.Predicate()
}

type enumerator struct {
	lc     *levelContext
	limits EnumerateLimits
	best   float64
	trees  int
	root   *Node
}

// search extends the tree by one level in every permissible way. frontier
// holds the current deepest nodes; when no oversized node remains (or no
// attribute), the tree is complete and its cost is taken from the root.
// Nodes carry their P/Pw as in the greedy; cost is computed at the end via
// CostAll over the materialized tree, then the level is torn down
// (backtracking mutates the shared nodes).
func (e *enumerator) search(frontier []*Node, attrs []string) error {
	s := oversized(frontier, e.lc.opts.M)
	if len(s) == 0 || len(attrs) == 0 {
		return e.complete(frontier)
	}
	// Fresh per-level sort cache: every cut-set plan of this level reuses
	// the same (node, attribute) permutations instead of re-sorting.
	e.lc.resetLevel()
	extended := false
	for ai, attr := range attrs {
		plans, err := e.levelChoices(attr, s)
		if err != nil {
			return err
		}
		rest := remaining(attrs, ai)
		for _, pl := range plans {
			if !pl.partitions() {
				continue
			}
			extended = true
			newFrontier := e.lc.attach(pl, s)
			if err := e.search(newFrontier, rest); err != nil {
				return err
			}
			detach(s)
		}
	}
	if !extended {
		return e.complete(frontier)
	}
	return nil
}

// complete scores the current (fully materialized) tree.
func (e *enumerator) complete([]*Node) error {
	e.trees++
	if e.trees > e.limits.MaxTrees {
		return fmt.Errorf("category: enumeration exceeded %d trees", e.limits.MaxTrees)
	}
	if cost := CostAll(e.root, e.lc.opts.K); cost < e.best {
		e.best = cost
	}
	return nil
}

// levelChoices builds every permissible partitioning plan of S by attr: the
// single categorical plan, or one numeric plan per splitpoint subset.
func (e *enumerator) levelChoices(attr string, s []*Node) ([]*plan, error) {
	typ, ok := e.lc.r.Schema().TypeOf(attr)
	if !ok {
		return nil, nil
	}
	if typ == relation.Categorical {
		pl := e.lc.categoricalPlan(attr, s)
		if pl == nil {
			return nil, nil
		}
		return []*plan{pl}, nil
	}
	vmin, vmax, ok := e.lc.domainRange(attr, s)
	if !ok || vmin >= vmax {
		return nil, nil
	}
	st := e.lc.stats.Splits(attr)
	if st == nil {
		return nil, nil
	}
	cands := st.Candidates(vmin, vmax, true, e.lc.opts.MaxZeroCandidates)
	if len(cands) > e.limits.MaxSplitpoints {
		cands = cands[:e.limits.MaxSplitpoints]
	}
	maxCuts := e.lc.opts.MaxBuckets - 1
	var plans []*plan
	for _, subset := range subsets(len(cands), maxCuts) {
		cuts := make([]float64, 0, len(subset))
		for _, i := range subset {
			cuts = append(cuts, cands[i].Value)
		}
		sort.Float64s(cuts)
		pl := e.numericPlanWithCuts(attr, s, vmin, vmax, cuts)
		if pl != nil {
			plans = append(plans, pl)
		}
	}
	return plans, nil
}

// numericPlanWithCuts materializes the bucket plan for a fixed cut set,
// reusing the level's cached value-sorted permutations.
func (e *enumerator) numericPlanWithCuts(attr string, s []*Node, vmin, vmax float64, cuts []float64) *plan {
	lc := e.lc
	nAttr := lc.stats.NAttr(attr)
	pos, _ := lc.r.Schema().Lookup(attr)
	col, err := lc.r.NumColumn(attr)
	if err != nil {
		return nil
	}
	pl := &plan{attr: attr, children: make([][]childSpec, len(s))}
	for si, n := range s {
		sp := lc.sortedProjection(n, pos, col)
		idx := make([]int, len(sp.idx)) // buildBuckets takes ownership
		copy(idx, sp.idx)
		pl.children[si] = lc.buildBuckets(attr, vmin, vmax, cuts, sp.vals, idx, nAttr)
	}
	return pl
}

// subsets enumerates the non-empty subsets of {0..n-1} of size ≤ k, plus the
// empty set is excluded (no cuts means no partition).
func subsets(n, k int) [][]int {
	var out [][]int
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) > 0 {
			out = append(out, append([]int(nil), cur...))
		}
		if len(cur) == k {
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(cur, i))
		}
	}
	rec(0, nil)
	return out
}

func remaining(attrs []string, skip int) []string {
	out := make([]string, 0, len(attrs)-1)
	for i, a := range attrs {
		if i != skip {
			out = append(out, a)
		}
	}
	return out
}

// detach removes the children attached by the last level, restoring leaves.
func detach(s []*Node) {
	for _, n := range s {
		n.Children = nil
		n.SubAttr = ""
		n.Pw = 1
	}
}
