package category

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sqlparse"
)

// The golden-tree test pins the categorizer's exact output — labels, child
// order, tuple-sets, probabilities, and costs — across representative
// configurations. It exists so structural rewrites of the partition hot path
// (row-wise → columnar, sequential → pooled workers) can prove the chosen
// trees are byte-identical, tie-breaking included. Regenerate with
//
//	go test ./internal/category -run TestGoldenTrees -update-golden
//
// only when an intentional behaviour change is being made.

var updateGolden = flag.Bool("update-golden", false, "rewrite golden tree fixtures")

type goldenNode struct {
	Depth   int     `json:"depth"`
	Label   string  `json:"label"`
	SubAttr string  `json:"subAttr,omitempty"`
	P       float64 `json:"p"`
	Pw      float64 `json:"pw"`
	Tset    []int   `json:"tset"`
}

type goldenTree struct {
	Name       string       `json:"name"`
	LevelAttrs []string     `json:"levelAttrs"`
	CostAll    float64      `json:"costAll"`
	CostOne    float64      `json:"costOne"`
	Nodes      []goldenNode `json:"nodes"`
}

func flattenTree(name string, tree *Tree) goldenTree {
	g := goldenTree{Name: name, LevelAttrs: append([]string(nil), tree.LevelAttrs...),
		CostAll: TreeCostAll(tree), CostOne: TreeCostOne(tree, 0.5)}
	tree.Root.Walk(func(n *Node, depth int) bool {
		g.Nodes = append(g.Nodes, goldenNode{
			Depth: depth, Label: n.Label.String(), SubAttr: n.SubAttr,
			P: n.P, Pw: n.Pw, Tset: append([]int{}, n.Tset...),
		})
		return true
	})
	return g
}

// goldenScenarios builds every pinned tree. All inputs are deterministic.
func goldenScenarios(t *testing.T) []goldenTree {
	return goldenScenariosWith(t, func(o Options) Options { return o })
}

// goldenScenariosWith builds the pinned scenarios with each scenario's
// options passed through mod — the shard-equivalence tests rebuild the whole
// set under different Options.Shards and require byte-identical trees.
func goldenScenariosWith(t *testing.T, mod func(Options) Options) []goldenTree {
	t.Helper()
	stats := testStats(t)
	r := testRelation(600)
	attrs := []string{"neighborhood", "price", "bedrooms", "propertytype"}

	mustTree := func(name string, tree *Tree, err error) goldenTree {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mustValidate(t, tree)
		return flattenTree(name, tree)
	}

	var out []goldenTree

	tree, err := NewCategorizer(stats, mod(Options{M: 20, X: 0.1})).Categorize(r, nil)
	out = append(out, mustTree("costbased-seq", tree, err))

	tree, err = NewCategorizer(stats, mod(Options{M: 20, X: 0.1, Parallel: true})).Categorize(r, nil)
	out = append(out, mustTree("costbased-parallel", tree, err))

	tree, err = NewCategorizer(stats, mod(Options{M: 10, X: 0.1, MaxCategories: 3})).Categorize(r, nil)
	out = append(out, mustTree("costbased-maxcat", tree, err))

	tree, err = NewCategorizer(stats, mod(Options{M: 12, X: 0.1, AutoBuckets: true, MaxBuckets: 4})).Categorize(r, nil)
	out = append(out, mustTree("costbased-autobuckets", tree, err))

	q, err := sqlparse.Parse("SELECT * FROM ListProperty WHERE neighborhood IN " +
		"('Bellevue, WA','Redmond, WA','Seattle, WA') AND price BETWEEN 200000 AND 290000")
	if err != nil {
		t.Fatalf("parse query: %v", err)
	}
	rows := r.Select(q.Predicate())
	tree, err = NewCategorizer(stats, mod(Options{M: 15, X: 0.1})).CategorizeRows(r, q, rows)
	out = append(out, mustTree("costbased-query", tree, err))

	tree, err = (&Baseline{Stats: stats, Kind: AttrCost,
		Opts: mod(Options{M: 20, CandidateAttrs: attrs})}).Categorize(r, nil)
	out = append(out, mustTree("attrcost", tree, err))

	tree, err = (&Baseline{Stats: stats, Kind: AttrCost,
		Opts: mod(Options{M: 20, CandidateAttrs: attrs, EquiDepth: true})}).Categorize(r, nil)
	out = append(out, mustTree("attrcost-equidepth", tree, err))

	tree, err = (&Baseline{Stats: stats, Kind: NoCost,
		Opts: mod(Options{M: 20, CandidateAttrs: attrs})}).Categorize(r, nil)
	out = append(out, mustTree("nocost", tree, err))

	corrStats, corrIdx := corrWorkload(t)
	tree, err = (&Categorizer{Stats: corrStats, Corr: corrIdx,
		Opts: mod(Options{M: 10, X: 0.1, MaxBuckets: 2, MinBucket: 1, MinCondSupport: 5})}).Categorize(corrRelation(), nil)
	out = append(out, mustTree("costbased-corr", tree, err))

	return out
}

func goldenPath() string { return filepath.Join("testdata", "golden_trees.json") }

func TestGoldenTrees(t *testing.T) {
	got := goldenScenarios(t)

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d scenarios", goldenPath(), len(got))
		return
	}

	data, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("reading golden fixture (regenerate with -update-golden): %v", err)
	}
	var want []goldenTree
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("decoding golden fixture: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("scenario count changed: got %d, golden has %d", len(got), len(want))
	}
	for i := range want {
		compareGolden(t, want[i], got[i])
	}
}

// compareGolden checks structural fields exactly and float fields to 1e-9.
func compareGolden(t *testing.T, want, got goldenTree) {
	t.Helper()
	if got.Name != want.Name {
		t.Errorf("scenario %q: name changed to %q", want.Name, got.Name)
		return
	}
	name := want.Name
	if len(got.LevelAttrs) != len(want.LevelAttrs) {
		t.Errorf("%s: level attrs %v, want %v", name, got.LevelAttrs, want.LevelAttrs)
		return
	}
	for i := range want.LevelAttrs {
		if got.LevelAttrs[i] != want.LevelAttrs[i] {
			t.Errorf("%s: level %d attr %q, want %q", name, i+1, got.LevelAttrs[i], want.LevelAttrs[i])
		}
	}
	if !closeTo(got.CostAll, want.CostAll) {
		t.Errorf("%s: CostAll %v, want %v", name, got.CostAll, want.CostAll)
	}
	if !closeTo(got.CostOne, want.CostOne) {
		t.Errorf("%s: CostOne %v, want %v", name, got.CostOne, want.CostOne)
	}
	if len(got.Nodes) != len(want.Nodes) {
		t.Errorf("%s: %d nodes, want %d", name, len(got.Nodes), len(want.Nodes))
		return
	}
	for i := range want.Nodes {
		w, g := want.Nodes[i], got.Nodes[i]
		if g.Depth != w.Depth || g.Label != w.Label || g.SubAttr != w.SubAttr {
			t.Errorf("%s: node %d is depth=%d %q sub=%q, want depth=%d %q sub=%q",
				name, i, g.Depth, g.Label, g.SubAttr, w.Depth, w.Label, w.SubAttr)
			continue
		}
		if !closeTo(g.P, w.P) || !closeTo(g.Pw, w.Pw) {
			t.Errorf("%s: node %d %q has P=%v Pw=%v, want P=%v Pw=%v", name, i, w.Label, g.P, g.Pw, w.P, w.Pw)
		}
		if len(g.Tset) != len(w.Tset) {
			t.Errorf("%s: node %d %q has %d tuples, want %d", name, i, w.Label, len(g.Tset), len(w.Tset))
			continue
		}
		for k := range w.Tset {
			if g.Tset[k] != w.Tset[k] {
				t.Errorf("%s: node %d %q tset[%d]=%d, want %d (tuple order must be preserved)",
					name, i, w.Label, k, g.Tset[k], w.Tset[k])
				break
			}
		}
	}
}

func closeTo(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9
}
