package category

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/relation"
)

func TestTreeSaveLoadRoundTrip(t *testing.T) {
	r := testRelation(500)
	c := NewCategorizer(testStats(t), Options{M: 20, X: 0.1})
	tree, err := c.Categorize(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadTree(&buf, r)
	if err != nil {
		t.Fatalf("LoadTree: %v", err)
	}
	if loaded.NodeCount() != tree.NodeCount() || loaded.Depth() != tree.Depth() {
		t.Fatalf("structure changed: %d/%d vs %d/%d",
			loaded.NodeCount(), loaded.Depth(), tree.NodeCount(), tree.Depth())
	}
	if got, want := TreeCostAll(loaded), TreeCostAll(tree); got != want {
		t.Fatalf("cost changed: %v vs %v", got, want)
	}
	if strings.Join(loaded.LevelAttrs, ",") != strings.Join(tree.LevelAttrs, ",") {
		t.Fatalf("levels changed: %v vs %v", loaded.LevelAttrs, tree.LevelAttrs)
	}
	var a, b []string
	tree.Root.Walk(func(n *Node, _ int) bool { a = append(a, n.Label.String()); return true })
	loaded.Root.Walk(func(n *Node, _ int) bool { b = append(b, n.Label.String()); return true })
	if strings.Join(a, "|") != strings.Join(b, "|") {
		t.Fatal("labels changed across round trip")
	}
}

func TestLoadTreeRejectsWrongRelation(t *testing.T) {
	r := testRelation(500)
	c := NewCategorizer(testStats(t), Options{M: 20, X: 0.1})
	tree, err := c.Categorize(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// A smaller relation: indices out of range.
	small := testRelation(10)
	if _, err := LoadTree(bytes.NewReader(buf.Bytes()), small); err == nil {
		t.Fatal("loading against a smaller relation should fail")
	}
	// A same-size relation with different contents: label validation fails.
	other := testRelation(500)
	// testRelation is deterministic; perturb one tuple the tree references.
	row := other.Row(tree.Root.Tset[0])
	if row[0].Str == "Bellevue, WA" {
		row[0] = relation.StringValue("Seattle, WA")
	} else {
		row[0] = relation.StringValue("Bellevue, WA")
	}
	if _, err := LoadTree(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("loading against changed data should fail validation")
	}
}

func TestSaveRootless(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Tree{}).Save(&buf); err == nil {
		t.Fatal("rootless tree should not save")
	}
}

func TestLoadTreeGarbage(t *testing.T) {
	if _, err := LoadTree(strings.NewReader("junk"), testRelation(5)); err == nil {
		t.Fatal("garbage input should fail to decode")
	}
}
