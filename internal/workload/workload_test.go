package workload

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sqlparse"
)

// miniWorkload mirrors the shape of Figure 4: neighborhood is the most-used
// attribute, price ranges cluster on round endpoints.
var miniLog = []string{
	"SELECT * FROM ListProperty WHERE neighborhood IN ('Bellevue, WA','Redmond, WA') AND price BETWEEN 200000 AND 300000",
	"SELECT * FROM ListProperty WHERE neighborhood IN ('Bellevue, WA') AND bedrooms >= 3",
	"SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA') AND price <= 300000",
	"SELECT * FROM ListProperty WHERE price BETWEEN 250000 AND 300000",
	"SELECT * FROM ListProperty WHERE neighborhood IN ('Kirkland, WA','Bellevue, WA')",
	"SELECT * FROM ListProperty WHERE bedrooms BETWEEN 2 AND 4",
	"SELECT * FROM OtherTable WHERE price BETWEEN 1 AND 2",
}

func miniStats(t *testing.T) *Stats {
	t.Helper()
	w, err := ParseStrings(miniLog)
	if err != nil {
		t.Fatalf("ParseStrings: %v", err)
	}
	return Preprocess(w, Config{
		Table:     "ListProperty",
		Intervals: map[string]float64{"price": 50000, "bedrooms": 1},
	})
}

func TestPreprocessCounts(t *testing.T) {
	s := miniStats(t)
	if s.N() != 6 {
		t.Fatalf("N = %d; want 6 (OtherTable filtered out)", s.N())
	}
	if got := s.NAttr("neighborhood"); got != 4 {
		t.Errorf("NAttr(neighborhood) = %d; want 4", got)
	}
	if got := s.NAttr("PRICE"); got != 3 {
		t.Errorf("NAttr(PRICE) = %d; want 3 (case-insensitive)", got)
	}
	if got := s.NAttr("bedrooms"); got != 2 {
		t.Errorf("NAttr(bedrooms) = %d; want 2", got)
	}
	if got := s.NAttr("sqft"); got != 0 {
		t.Errorf("NAttr(sqft) = %d; want 0", got)
	}
}

func TestOccurrenceCounts(t *testing.T) {
	s := miniStats(t)
	tests := []struct {
		v    string
		want int
	}{
		{"Bellevue, WA", 3},
		{"Redmond, WA", 1},
		{"Seattle, WA", 1},
		{"Kirkland, WA", 1},
		{"Nowhere", 0},
	}
	for _, tc := range tests {
		if got := s.Occ("neighborhood", tc.v); got != tc.want {
			t.Errorf("Occ(%q) = %d; want %d", tc.v, got, tc.want)
		}
	}
}

func TestUsageFraction(t *testing.T) {
	s := miniStats(t)
	if got, want := s.UsageFraction("neighborhood"), 4.0/6.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("UsageFraction = %v; want %v", got, want)
	}
	empty := Preprocess(&Workload{}, Config{})
	if empty.UsageFraction("x") != 0 {
		t.Error("empty workload should give 0 usage fraction")
	}
}

func TestRetained(t *testing.T) {
	s := miniStats(t)
	// fractions: neighborhood 4/6, price 3/6, bedrooms 2/6
	got := s.Retained(0.4)
	want := []string{"neighborhood", "price"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Retained(0.4) = %v; want %v", got, want)
	}
	if got := s.Retained(0); len(got) != 3 {
		t.Fatalf("Retained(0) = %v; want all 3", got)
	}
}

func TestAttrsByUsageOrder(t *testing.T) {
	s := miniStats(t)
	got := s.AttrsByUsage()
	want := []string{"neighborhood", "price", "bedrooms"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("AttrsByUsage = %v; want %v", got, want)
	}
}

func TestSplitTableGoodness(t *testing.T) {
	s := miniStats(t)
	st := s.Splits("price")
	if st == nil {
		t.Fatal("no split table for price")
	}
	// starts: 200000 (q1), 250000 (q4); ends: 300000 (q1, q3, q4)
	if got, _ := st.StartEnd(200000); got != 1 {
		t.Errorf("start(200000) = %d; want 1", got)
	}
	if _, got := st.StartEnd(300000); got != 3 {
		t.Errorf("end(300000) = %d; want 3", got)
	}
	if got := st.Goodness(300000); got != 3 {
		t.Errorf("Goodness(300000) = %d; want 3", got)
	}
	if got := st.Goodness(250000); got != 1 {
		t.Errorf("Goodness(250000) = %d; want 1", got)
	}
	if got := st.Goodness(123456); got != 0 {
		t.Errorf("Goodness(off-grid) = %d; want 0", got)
	}
}

func TestSplitTableSnapping(t *testing.T) {
	w, err := ParseStrings([]string{"SELECT * FROM T WHERE price BETWEEN 199999 AND 301234"})
	if err != nil {
		t.Fatal(err)
	}
	s := Preprocess(w, Config{Intervals: map[string]float64{"price": 50000}})
	st := s.Splits("price")
	if got := st.Goodness(200000); got != 1 {
		t.Errorf("Goodness(200000) = %d; want 1 (199999 snaps up)", got)
	}
	if got := st.Goodness(300000); got != 1 {
		t.Errorf("Goodness(300000) = %d; want 1 (301234 snaps down)", got)
	}
}

func TestCandidatesOrdering(t *testing.T) {
	s := miniStats(t)
	st := s.Splits("price")
	cands := st.Candidates(0, 1e9, false, 0)
	if len(cands) < 3 {
		t.Fatalf("candidates = %v; want at least 3", cands)
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].Goodness > cands[i-1].Goodness {
			t.Fatalf("candidates not sorted by goodness desc: %v", cands)
		}
		if cands[i].Goodness == cands[i-1].Goodness && cands[i].Value < cands[i-1].Value {
			t.Fatalf("tie not broken by ascending value: %v", cands)
		}
	}
	if cands[0].Value != 300000 {
		t.Fatalf("best candidate = %v; want 300000", cands[0])
	}
}

func TestCandidatesRangeExclusive(t *testing.T) {
	s := miniStats(t)
	st := s.Splits("price")
	for _, c := range st.Candidates(200000, 300000, false, 0) {
		if c.Value <= 200000 || c.Value >= 300000 {
			t.Fatalf("candidate %v outside open interval (200000,300000)", c)
		}
	}
}

func TestCandidatesIncludeZero(t *testing.T) {
	s := miniStats(t)
	st := s.Splits("price")
	with := st.Candidates(0, 500000, true, 100)
	without := st.Candidates(0, 500000, false, 0)
	if len(with) <= len(without) {
		t.Fatalf("includeZero added no candidates: %d vs %d", len(with), len(without))
	}
	if cap := st.Candidates(0, 500000, true, 3); len(cap) > len(without)+4 {
		t.Fatalf("maxZero cap not respected: got %d candidates", len(cap))
	}
}

func TestNOverlapRange(t *testing.T) {
	s := miniStats(t)
	// price ranges: [200000,300000], (-inf,300000], [250000,300000]
	tests := []struct {
		lo, hi float64
		want   int
	}{
		{0, 100000, 1},      // only the open-below query
		{200000, 250000, 2}, // q1 and the ≤300000 query
		{250000, 300000, 3}, // all three
		{300000, 400000, 3}, // all include 300000 exactly
		{300001, 400000, 0}, // none extend past 300000
		{0, math.Inf(1), 3}, // everything
		{500000, 400000, 0}, // inverted interval
	}
	for _, tc := range tests {
		if got := s.NOverlapRange("price", tc.lo, tc.hi); got != tc.want {
			t.Errorf("NOverlapRange(%v,%v) = %d; want %d", tc.lo, tc.hi, got, tc.want)
		}
	}
	if got := s.NOverlapRange("unknown", 0, 1); got != 0 {
		t.Errorf("NOverlapRange(unknown) = %d; want 0", got)
	}
}

func TestNOverlapValues(t *testing.T) {
	s := miniStats(t)
	one := map[string]struct{}{"Bellevue, WA": {}}
	if got := s.NOverlapValues("neighborhood", one); got != 3 {
		t.Errorf("single-value overlap = %d; want 3", got)
	}
	all := map[string]struct{}{
		"Bellevue, WA": {}, "Redmond, WA": {}, "Seattle, WA": {}, "Kirkland, WA": {},
	}
	// Sum of occs is 6 but only 4 queries filter on neighborhood: capped.
	if got := s.NOverlapValues("neighborhood", all); got != 4 {
		t.Errorf("multi-value overlap = %d; want 4 (capped at NAttr)", got)
	}
}

// TestNOverlapRangeMatchesBruteForce is the property test for the
// binary-search overlap counter (DESIGN.md invariant 7).
func TestNOverlapRangeMatchesBruteForce(t *testing.T) {
	type rng struct{ lo, hi float64 }
	cfg := &quick.Config{MaxCount: 200}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		ranges := make([]rng, n)
		lines := make([]string, n)
		for i := range ranges {
			lo := float64(r.Intn(100))
			hi := lo + float64(r.Intn(100))
			ranges[i] = rng{lo, hi}
			lines[i] = "SELECT * FROM T WHERE p BETWEEN " +
				strconv.FormatFloat(lo, 'f', -1, 64) + " AND " + strconv.FormatFloat(hi, 'f', -1, 64)
		}
		w, err := ParseStrings(lines)
		if err != nil {
			t.Logf("parse: %v", err)
			return false
		}
		s := Preprocess(w, Config{Intervals: map[string]float64{"p": 1}})
		for trial := 0; trial < 20; trial++ {
			lo := float64(r.Intn(120)) - 10
			hi := lo + float64(r.Intn(120))
			want := 0
			for _, rg := range ranges {
				if rg.lo < hi && rg.hi >= lo && lo < hi {
					want++
				}
			}
			if got := s.NOverlapRange("p", lo, hi); got != want {
				t.Logf("seed %d: NOverlapRange(%v,%v) = %d; brute force %d", seed, lo, hi, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestParseLogSkipsMalformed(t *testing.T) {
	log := strings.Join([]string{
		"SELECT * FROM T WHERE p >= 1",
		"-- a comment line",
		"",
		"DELETE FROM T",
		"SELECT * FROM T WHERE p <= 2",
	}, "\n")
	w, skipped, err := ParseLog(strings.NewReader(log))
	if err != nil {
		t.Fatalf("ParseLog: %v", err)
	}
	if w.Len() != 2 || skipped != 1 {
		t.Fatalf("Len = %d skipped = %d; want 2, 1", w.Len(), skipped)
	}
}

func TestSplit(t *testing.T) {
	w, err := ParseStrings(miniLog)
	if err != nil {
		t.Fatal(err)
	}
	kept, held := w.Split(func(i int) bool { return i%2 == 0 })
	if kept.Len()+held.Len() != w.Len() {
		t.Fatalf("split loses queries: %d + %d != %d", kept.Len(), held.Len(), w.Len())
	}
	if kept.Len() != 4 || held.Len() != 3 {
		t.Fatalf("kept %d held %d; want 4, 3", kept.Len(), held.Len())
	}
}

func TestStatsSaveLoadRoundTrip(t *testing.T) {
	s := miniStats(t)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadStats(&buf)
	if err != nil {
		t.Fatalf("LoadStats: %v", err)
	}
	if loaded.N() != s.N() {
		t.Errorf("N = %d; want %d", loaded.N(), s.N())
	}
	if got, want := loaded.NAttr("neighborhood"), s.NAttr("neighborhood"); got != want {
		t.Errorf("NAttr = %d; want %d", got, want)
	}
	if got, want := loaded.Occ("neighborhood", "Bellevue, WA"), 3; got != want {
		t.Errorf("Occ = %d; want %d", got, want)
	}
	if got, want := loaded.NOverlapRange("price", 250000, 300000), s.NOverlapRange("price", 250000, 300000); got != want {
		t.Errorf("NOverlapRange = %d; want %d", got, want)
	}
	if got, want := loaded.Splits("price").Goodness(300000), 3; got != want {
		t.Errorf("Goodness = %d; want %d", got, want)
	}
	if !reflect.DeepEqual(loaded.AttrsByUsage(), s.AttrsByUsage()) {
		t.Errorf("AttrsByUsage = %v; want %v", loaded.AttrsByUsage(), s.AttrsByUsage())
	}
}

func TestLoadStatsRejectsGarbage(t *testing.T) {
	if _, err := LoadStats(strings.NewReader("not gob")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestDefaultInterval(t *testing.T) {
	w, _ := ParseStrings([]string{"SELECT * FROM T WHERE p BETWEEN 3 AND 7"})
	s := Preprocess(w, Config{})
	if st := s.Splits("p"); st == nil || st.Interval != 1 {
		t.Fatalf("default interval not applied: %+v", st)
	}
}

// TestAddQueryMatchesPreprocess: folding queries in one at a time must give
// exactly the same statistics as batch preprocessing.
func TestAddQueryMatchesPreprocess(t *testing.T) {
	cfg := Config{Table: "ListProperty", Intervals: map[string]float64{"price": 50000, "bedrooms": 1}}
	w, err := ParseStrings(miniLog)
	if err != nil {
		t.Fatal(err)
	}
	batch := Preprocess(w, cfg)
	inc := Preprocess(&Workload{}, cfg)
	for _, q := range w.Queries {
		inc.AddQuery(q, cfg)
	}
	if inc.N() != batch.N() {
		t.Fatalf("N = %d; want %d", inc.N(), batch.N())
	}
	if !reflect.DeepEqual(inc.AttrsByUsage(), batch.AttrsByUsage()) {
		t.Fatalf("AttrsByUsage = %v; want %v", inc.AttrsByUsage(), batch.AttrsByUsage())
	}
	for _, a := range []string{"neighborhood", "price", "bedrooms"} {
		if inc.NAttr(a) != batch.NAttr(a) {
			t.Errorf("NAttr(%s) = %d; want %d", a, inc.NAttr(a), batch.NAttr(a))
		}
	}
	if inc.Occ("neighborhood", "Bellevue, WA") != batch.Occ("neighborhood", "Bellevue, WA") {
		t.Error("Occ mismatch")
	}
	for _, tc := range [][2]float64{{200000, 250000}, {250000, 300000}, {0, 1e9}} {
		if got, want := inc.NOverlapRange("price", tc[0], tc[1]), batch.NOverlapRange("price", tc[0], tc[1]); got != want {
			t.Errorf("NOverlapRange(%v,%v) = %d; want %d", tc[0], tc[1], got, want)
		}
	}
	if got, want := inc.Splits("price").Goodness(300000), batch.Splits("price").Goodness(300000); got != want {
		t.Errorf("Goodness = %d; want %d", got, want)
	}
	if !reflect.DeepEqual(inc.Retained(0.4), batch.Retained(0.4)) {
		t.Errorf("Retained = %v; want %v", inc.Retained(0.4), batch.Retained(0.4))
	}
}

func TestAddQueryRespectsTableFilter(t *testing.T) {
	cfg := Config{Table: "ListProperty"}
	s := Preprocess(&Workload{}, cfg)
	q, _ := sqlparse.Parse("SELECT * FROM OtherTable WHERE price >= 1")
	s.AddQuery(q, cfg)
	if s.N() != 0 {
		t.Fatalf("filtered query counted: N = %d", s.N())
	}
}

func TestAddQueryAfterLoad(t *testing.T) {
	cfg := Config{Table: "ListProperty", Intervals: map[string]float64{"price": 50000, "bedrooms": 1}}
	w, _ := ParseStrings(miniLog)
	s := Preprocess(w, cfg)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStats(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := sqlparse.Parse("SELECT * FROM ListProperty WHERE sqft BETWEEN 1000 AND 2000")
	loaded.AddQuery(q, cfg)
	if loaded.NAttr("sqft") != 1 {
		t.Fatalf("NAttr(sqft) = %d after incremental add on loaded stats", loaded.NAttr("sqft"))
	}
	if loaded.N() != s.N()+1 {
		t.Fatalf("N = %d; want %d", loaded.N(), s.N()+1)
	}
	// The new attribute shows up in the frequency order.
	found := false
	for _, a := range loaded.AttrsByUsage() {
		if a == "sqft" {
			found = true
		}
	}
	if !found {
		t.Fatal("sqft missing from AttrsByUsage after incremental add")
	}
}

// TestRangeIndexInsertProperty: incremental inserts must answer overlap
// queries identically to batch building.
func TestRangeIndexInsertProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{Intervals: map[string]float64{"p": 1}}
		inc := Preprocess(&Workload{}, cfg)
		var lines []string
		n := 1 + rng.Intn(30)
		for i := 0; i < n; i++ {
			lo := rng.Intn(100)
			hi := lo + rng.Intn(100)
			sql := "SELECT * FROM T WHERE p BETWEEN " + strconv.Itoa(lo) + " AND " + strconv.Itoa(hi)
			lines = append(lines, sql)
			q, err := sqlparse.Parse(sql)
			if err != nil {
				return false
			}
			inc.AddQuery(q, cfg)
		}
		w, err := ParseStrings(lines)
		if err != nil {
			return false
		}
		batch := Preprocess(w, cfg)
		for trial := 0; trial < 15; trial++ {
			lo := float64(rng.Intn(120) - 10)
			hi := lo + float64(rng.Intn(120))
			if inc.NOverlapRange("p", lo, hi) != batch.NOverlapRange("p", lo, hi) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
