package workload

import "repro/internal/sqlparse"

// Clone support for the snapshot-swapped serving path: an online-learning
// system never mutates published statistics in place. Instead the writer
// clones the current tables off the hot path, folds the new queries into the
// clone with AddQuery, and publishes the clone with a single atomic store —
// readers keep using the old snapshot, unlocked, until they next load.

// Clone returns a deep copy of the statistics: mutating the copy (AddQuery)
// never touches the original, so a published original stays safe for
// lock-free concurrent readers.
func (s *Stats) Clone() *Stats {
	out := &Stats{
		n:          s.n,
		attrUsage:  make(map[string]int, len(s.attrUsage)),
		occ:        make(map[string]map[string]int, len(s.occ)),
		splits:     make(map[string]*SplitTable, len(s.splits)),
		ranges:     make(map[string]*rangeIndex, len(s.ranges)),
		attrByFreq: append([]string(nil), s.attrByFreq...),
		caseOf:     make(map[string]string, len(s.caseOf)),
	}
	for k, v := range s.attrUsage {
		out.attrUsage[k] = v
	}
	for k, m := range s.occ {
		mm := make(map[string]int, len(m))
		for v, n := range m {
			mm[v] = n
		}
		out.occ[k] = mm
	}
	for k, st := range s.splits {
		out.splits[k] = st.clone()
	}
	for k, ri := range s.ranges {
		out.ranges[k] = &rangeIndex{
			los: append([]float64(nil), ri.los...),
			his: append([]float64(nil), ri.his...),
		}
	}
	for k, v := range s.caseOf {
		out.caseOf[k] = v
	}
	return out
}

func (st *SplitTable) clone() *SplitTable {
	out := &SplitTable{
		Interval: st.Interval,
		start:    make(map[float64]int, len(st.start)),
		end:      make(map[float64]int, len(st.end)),
	}
	for v, n := range st.start {
		out.start[v] = n
	}
	for v, n := range st.end {
		out.end[v] = n
	}
	return out
}

// Clone returns a copy of the index sharing the (immutable) parsed queries
// but owning its slice, so Add on the copy never reallocates under a reader
// of the original.
func (idx *CondIndex) Clone() *CondIndex {
	return &CondIndex{queries: append([]*sqlparse.Query(nil), idx.queries...)}
}

// Clone returns a copy of the workload owning its query slice. The parsed
// queries themselves are shared: they are immutable once mined.
func (w *Workload) Clone() *Workload {
	return &Workload{Queries: append([]*sqlparse.Query(nil), w.Queries...)}
}
