// Package workload implements the paper's workload mining layer (§4.2, §5):
// it holds a log of past SQL queries and preprocesses it into the three
// kinds of count tables the categorizer consults at query time —
//
//   - AttributeUsageCounts: NAttr(A), how many queries filter on A (Fig 4a);
//   - OccurrenceCounts: occ(v), per categorical attribute, how many queries
//     mention value v in an IN clause (Fig 4b);
//   - SplitPoints: per numeric attribute, how many query ranges start or end
//     at each grid point, whose sum is the splitpoint "goodness" (Fig 5b).
//
// It additionally maintains, per numeric attribute, a sorted range index so
// NOverlap(C) — the number of workload ranges overlapping a label bucket —
// is answered with two binary searches.
package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/sqlparse"
)

// Workload is an ordered log of parsed queries.
type Workload struct {
	Queries []*sqlparse.Query
}

// ParseLog parses one query per non-empty line from r. Lines that fail to
// parse are skipped and counted; real query logs contain noise and the
// paper's pipeline only needs the parseable majority.
func ParseLog(r io.Reader) (*Workload, int, error) {
	w := &Workload{}
	skipped := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		q, err := sqlparse.Parse(line)
		if err != nil {
			skipped++
			continue
		}
		w.Queries = append(w.Queries, q)
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, fmt.Errorf("workload: reading log: %w", err)
	}
	return w, skipped, nil
}

// ParseStrings parses a workload from SQL strings, failing on the first
// malformed query. Use ParseLog for tolerant ingestion.
func ParseStrings(queries []string) (*Workload, error) {
	w := &Workload{Queries: make([]*sqlparse.Query, 0, len(queries))}
	for i, s := range queries {
		q, err := sqlparse.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("workload: query %d: %w", i, err)
		}
		w.Queries = append(w.Queries, q)
	}
	return w, nil
}

// Len returns the number of queries N in the workload.
func (w *Workload) Len() int { return len(w.Queries) }

// Split partitions the workload into the queries whose index satisfies keep
// and the rest. It is the cross-validation primitive of §6.2: hold out a
// subset as synthetic explorations, build count tables on the remainder.
func (w *Workload) Split(keep func(i int) bool) (kept, held *Workload) {
	kept, held = &Workload{}, &Workload{}
	for i, q := range w.Queries {
		if keep(i) {
			kept.Queries = append(kept.Queries, q)
		} else {
			held.Queries = append(held.Queries, q)
		}
	}
	return kept, held
}

// Merge returns a new workload containing every query of base plus the
// personal queries repeated weight times. This is the simple integer-weight
// form of the personalization the paper's footnote 4 leaves open: biasing
// the aggregate statistics toward one user's own history so "the average
// user" drifts toward *this* user. weight < 1 is treated as 1.
func Merge(base, personal *Workload, weight int) *Workload {
	if weight < 1 {
		weight = 1
	}
	out := &Workload{Queries: make([]*sqlparse.Query, 0, base.Len()+weight*personal.Len())}
	out.Queries = append(out.Queries, base.Queries...)
	for i := 0; i < weight; i++ {
		out.Queries = append(out.Queries, personal.Queries...)
	}
	return out
}

// Config controls preprocessing.
type Config struct {
	// Table restricts mining to queries over this table (case-insensitive).
	// Empty means all queries.
	Table string
	// Intervals gives the separation interval between potential splitpoints
	// for each numeric attribute (the paper uses 5000 for price, 100 for
	// square footage, 5 for year-built). Attributes without an entry fall
	// back to DefaultInterval.
	Intervals map[string]float64
	// DefaultInterval is the splitpoint grid spacing for numeric attributes
	// not listed in Intervals. Zero means 1.
	DefaultInterval float64
}

// Stats is the preprocessed form of a workload: the count tables plus range
// indexes. Build it once (offline, per the paper) and share it across
// queries; it is read-only after construction and safe for concurrent use.
type Stats struct {
	n          int
	attrUsage  map[string]int            // lower(attr) -> NAttr
	occ        map[string]map[string]int // lower(attr) -> value -> occ
	splits     map[string]*SplitTable    // lower(attr) -> splitpoint table
	ranges     map[string]*rangeIndex    // lower(attr) -> sorted range ends
	attrByFreq []string                  // attrs sorted by NAttr desc (original case of first sight)
	caseOf     map[string]string         // lower(attr) -> original case
}

// Preprocess scans the workload once and builds the count tables.
func Preprocess(w *Workload, cfg Config) *Stats {
	s := &Stats{
		n:         0,
		attrUsage: make(map[string]int),
		occ:       make(map[string]map[string]int),
		splits:    make(map[string]*SplitTable),
		ranges:    make(map[string]*rangeIndex),
		caseOf:    make(map[string]string),
	}
	caseOf := s.caseOf
	for _, q := range w.Queries {
		if cfg.Table != "" && !strings.EqualFold(q.Table, cfg.Table) {
			continue
		}
		s.n++
		for _, c := range q.Conds {
			key := strings.ToLower(c.Attr)
			if _, ok := caseOf[key]; !ok {
				caseOf[key] = c.Attr
			}
			s.attrUsage[key]++
			if !c.IsRange {
				m := s.occ[key]
				if m == nil {
					m = make(map[string]int)
					s.occ[key] = m
				}
				for _, v := range c.Values {
					m[v]++
				}
				continue
			}
			st := s.splits[key]
			if st == nil {
				iv := cfg.Intervals[key]
				if iv == 0 {
					iv = cfg.Intervals[c.Attr]
				}
				if iv == 0 {
					iv = cfg.DefaultInterval
				}
				if iv == 0 {
					iv = 1
				}
				st = &SplitTable{Interval: iv, start: make(map[float64]int), end: make(map[float64]int)}
				s.splits[key] = st
			}
			lo, hi := c.Interval()
			if !math.IsInf(lo, -1) {
				st.start[st.snap(lo)]++
			}
			if !math.IsInf(hi, 1) {
				st.end[st.snap(hi)]++
			}
			ri := s.ranges[key]
			if ri == nil {
				ri = &rangeIndex{}
				s.ranges[key] = ri
			}
			elo, ehi := lo, hi
			if c.LoStrict {
				elo = math.Nextafter(elo, math.Inf(1))
			}
			if c.HiStrict {
				ehi = math.Nextafter(ehi, math.Inf(-1))
			}
			ri.los = append(ri.los, elo)
			ri.his = append(ri.his, ehi)
		}
	}
	for _, ri := range s.ranges {
		sort.Float64s(ri.los)
		sort.Float64s(ri.his)
	}
	s.resortByFreq()
	return s
}

// resortByFreq rebuilds attrByFreq from the usage counts.
func (s *Stats) resortByFreq() {
	s.attrByFreq = s.attrByFreq[:0]
	for key := range s.attrUsage {
		name := s.caseOf[key]
		if name == "" {
			name = key
		}
		s.attrByFreq = append(s.attrByFreq, name)
	}
	sort.Slice(s.attrByFreq, func(i, j int) bool {
		ui := s.attrUsage[strings.ToLower(s.attrByFreq[i])]
		uj := s.attrUsage[strings.ToLower(s.attrByFreq[j])]
		if ui != uj {
			return ui > uj
		}
		return strings.ToLower(s.attrByFreq[i]) < strings.ToLower(s.attrByFreq[j])
	})
}

// N returns the number of mined queries.
func (s *Stats) N() int { return s.n }

// NAttr returns the number of workload queries carrying a selection
// condition on attr (case-insensitive).
func (s *Stats) NAttr(attr string) int { return s.attrUsage[strings.ToLower(attr)] }

// UsageFraction returns NAttr(attr)/N, the fraction of users interested in
// only a few values of attr — the SHOWCAT probability when attr
// subcategorizes a node. It is 0 for an empty workload.
func (s *Stats) UsageFraction(attr string) float64 {
	if s.n == 0 {
		return 0
	}
	return float64(s.NAttr(attr)) / float64(s.n)
}

// Occ returns occ(v): how many workload queries mention value v of the
// categorical attribute attr in an IN clause (or equality).
func (s *Stats) Occ(attr, v string) int {
	m := s.occ[strings.ToLower(attr)]
	if m == nil {
		return 0
	}
	return m[v]
}

// Splits returns the splitpoint table for the numeric attribute attr, or nil
// if the workload contains no range condition on it.
func (s *Stats) Splits(attr string) *SplitTable { return s.splits[strings.ToLower(attr)] }

// NOverlapValues counts workload queries whose IN condition on attr mentions
// at least one value in set. For the single-value categories the algorithm
// builds this equals Occ; the general form supports multi-value labels.
func (s *Stats) NOverlapValues(attr string, set map[string]struct{}) int {
	if len(set) == 1 {
		for v := range set {
			return s.Occ(attr, v)
		}
	}
	// Without per-query inverted lists, bound the overlap count by the sum
	// of member occurrence counts capped at NAttr. Exact counting for
	// multi-value labels would require retaining query-id lists; the
	// algorithm only creates single-value categorical labels (§5.1.2).
	sum := 0
	for v := range set {
		sum += s.Occ(attr, v)
	}
	if na := s.NAttr(attr); sum > na {
		return na
	}
	return sum
}

// NOverlapRange counts workload queries whose range condition on attr
// overlaps the half-open label bucket [lo, hi).
func (s *Stats) NOverlapRange(attr string, lo, hi float64) int {
	ri := s.ranges[strings.ToLower(attr)]
	if ri == nil {
		return 0
	}
	return ri.countOverlapping(lo, hi)
}

// AttrsByUsage returns all attributes seen in the workload, most-used first.
func (s *Stats) AttrsByUsage() []string {
	return append([]string(nil), s.attrByFreq...)
}

// Retained returns the attributes surviving the elimination heuristic of
// §5.1.1: those with NAttr(A)/N ≥ x, most-used first.
func (s *Stats) Retained(x float64) []string {
	var out []string
	for _, a := range s.attrByFreq {
		if s.UsageFraction(a) >= x {
			out = append(out, a)
		}
	}
	return out
}

// rangeIndex answers "how many ranges overlap [lo, hi)" by binary search
// over the sorted lower and upper bounds of all mined ranges on one
// attribute. A range [l, h] overlaps [lo, hi) iff l < hi and h >= lo; the
// complement (h < lo, or l >= hi) is countable from the sorted slices, and
// the two failure modes are mutually exclusive when lo < hi.
type rangeIndex struct {
	los, his []float64 // sorted; ±Inf for open bounds
}

func (ri *rangeIndex) countOverlapping(lo, hi float64) int {
	if hi <= lo {
		return 0
	}
	endsBefore := sort.SearchFloat64s(ri.his, lo)                // ranges with h < lo
	startsAfter := len(ri.los) - sort.SearchFloat64s(ri.los, hi) // ranges with l >= hi
	return len(ri.los) - endsBefore - startsAfter
}

// SplitTable is the per-attribute splitpoints table of Figure 5(b):
// potential splitpoints lie on a fixed grid of spacing Interval, and each
// carries the number of workload ranges starting and ending there.
type SplitTable struct {
	Interval   float64
	start, end map[float64]int
}

// snap rounds v to the nearest grid point.
func (st *SplitTable) snap(v float64) float64 {
	return math.Round(v/st.Interval) * st.Interval
}

// Goodness returns the splitpoint score SUM(start_v, end_v) of grid point v
// (§5.1.3). Non-grid values score 0.
func (st *SplitTable) Goodness(v float64) int {
	return st.start[v] + st.end[v]
}

// StartEnd returns the raw start and end counts at grid point v.
func (st *SplitTable) StartEnd(v float64) (start, end int) {
	return st.start[v], st.end[v]
}

// Splitpoint is a candidate splitpoint with its goodness score.
type Splitpoint struct {
	Value    float64
	Goodness int
}

// Candidates returns the potential splitpoints strictly inside (lo, hi),
// ordered by goodness descending (value ascending on ties). Grid points with
// zero goodness are included only when includeZero is set — they allow the
// partitioner to fall back to arbitrary interior points when the workload
// offers too few scored points — and the enumeration is capped at maxZero
// zero-goodness points spread evenly across the range.
func (st *SplitTable) Candidates(lo, hi float64, includeZero bool, maxZero int) []Splitpoint {
	var out []Splitpoint
	seen := make(map[float64]struct{})
	add := func(v float64, g int) {
		if v <= lo || v >= hi {
			return
		}
		if _, dup := seen[v]; dup {
			return
		}
		seen[v] = struct{}{}
		out = append(out, Splitpoint{Value: v, Goodness: g})
	}
	for v := range st.start {
		add(v, st.Goodness(v))
	}
	for v := range st.end {
		add(v, st.Goodness(v))
	}
	if includeZero && maxZero > 0 {
		first := math.Floor(lo/st.Interval)*st.Interval + st.Interval
		total := int((hi - first) / st.Interval)
		if total > 0 {
			step := 1
			if total > maxZero {
				step = (total + maxZero - 1) / maxZero
			}
			for i := 0; i <= total; i += step {
				add(first+float64(i)*st.Interval, st.Goodness(first+float64(i)*st.Interval))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Goodness != out[j].Goodness {
			return out[i].Goodness > out[j].Goodness
		}
		return out[i].Value < out[j].Value
	})
	return out
}
