package workload

import (
	"math"
	"sort"
	"strings"

	"repro/internal/sqlparse"
)

// AddQuery folds one more query into the count tables incrementally — the
// online form of Preprocess for systems that learn from the query stream
// they serve. It applies the same table filter and interval configuration
// the Stats were built with (pass the original Config). AddQuery is not
// safe for concurrent use with readers; callers that serve while learning
// must serialize access (see the repro facade's AdaptiveSystem). All reader
// methods stay strictly read-only, so any number of readers may run between
// (externally serialized) AddQuery calls.
func (s *Stats) AddQuery(q *sqlparse.Query, cfg Config) {
	if cfg.Table != "" && !strings.EqualFold(q.Table, cfg.Table) {
		return
	}
	defer s.resortByFreq()
	s.n++
	for _, c := range q.Conds {
		key := strings.ToLower(c.Attr)
		if s.caseOf == nil {
			s.caseOf = make(map[string]string)
		}
		if _, ok := s.caseOf[key]; !ok {
			s.caseOf[key] = c.Attr
		}
		s.attrUsage[key]++
		if !c.IsRange {
			m := s.occ[key]
			if m == nil {
				m = make(map[string]int)
				s.occ[key] = m
			}
			for _, v := range c.Values {
				m[v]++
			}
			continue
		}
		st := s.splits[key]
		if st == nil {
			iv := cfg.Intervals[key]
			if iv == 0 {
				iv = cfg.Intervals[c.Attr]
			}
			if iv == 0 {
				iv = cfg.DefaultInterval
			}
			if iv == 0 {
				iv = 1
			}
			st = &SplitTable{Interval: iv, start: make(map[float64]int), end: make(map[float64]int)}
			s.splits[key] = st
		}
		lo, hi := c.Interval()
		if !math.IsInf(lo, -1) {
			st.start[st.snap(lo)]++
		}
		if !math.IsInf(hi, 1) {
			st.end[st.snap(hi)]++
		}
		ri := s.ranges[key]
		if ri == nil {
			ri = &rangeIndex{}
			s.ranges[key] = ri
		}
		elo, ehi := lo, hi
		if c.LoStrict {
			elo = math.Nextafter(elo, math.Inf(1))
		}
		if c.HiStrict {
			ehi = math.Nextafter(ehi, math.Inf(-1))
		}
		ri.insert(elo, ehi)
	}
}

// insert adds one range keeping the bound slices sorted.
func (ri *rangeIndex) insert(lo, hi float64) {
	i := sort.SearchFloat64s(ri.los, lo)
	ri.los = append(ri.los, 0)
	copy(ri.los[i+1:], ri.los[i:])
	ri.los[i] = lo
	j := sort.SearchFloat64s(ri.his, hi)
	ri.his = append(ri.his, 0)
	copy(ri.his[j+1:], ri.his[j:])
	ri.his[j] = hi
}
