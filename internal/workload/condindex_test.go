package workload

import (
	"testing"
)

// corrLog has a strong neighborhood↔price correlation: Bellevue buyers shop
// 200-250k, Seattle buyers 250-300k.
var corrLog = []string{
	"SELECT * FROM T WHERE n IN ('Bellevue') AND p BETWEEN 200 AND 250",
	"SELECT * FROM T WHERE n IN ('Bellevue') AND p BETWEEN 200 AND 250",
	"SELECT * FROM T WHERE n IN ('Bellevue') AND p BETWEEN 200 AND 250",
	"SELECT * FROM T WHERE n IN ('Seattle') AND p BETWEEN 250 AND 300",
	"SELECT * FROM T WHERE n IN ('Seattle') AND p BETWEEN 250 AND 300",
	"SELECT * FROM T WHERE n IN ('Seattle')",
	"SELECT * FROM T WHERE p BETWEEN 200 AND 300",
	"SELECT * FROM OtherTable WHERE p BETWEEN 1 AND 2",
}

func corrIndex(t *testing.T) *CondIndex {
	t.Helper()
	w, err := ParseStrings(corrLog)
	if err != nil {
		t.Fatal(err)
	}
	return NewCondIndex(w, Config{Table: "T"})
}

func TestCondIndexFiltersTable(t *testing.T) {
	idx := corrIndex(t)
	if idx.N() != 7 {
		t.Fatalf("N = %d; want 7 (OtherTable excluded)", idx.N())
	}
	if got := len(idx.AllIDs()); got != 7 {
		t.Fatalf("AllIDs = %d", got)
	}
}

func TestFilterCompatibleValue(t *testing.T) {
	idx := corrIndex(t)
	bellevue := idx.FilterCompatible(idx.AllIDs(), PathPred{Attr: "n", Value: "Bellevue"})
	// 3 Bellevue queries + the price-only query (no condition on n).
	if len(bellevue) != 4 {
		t.Fatalf("Bellevue-compatible = %d; want 4", len(bellevue))
	}
	seattle := idx.FilterCompatible(idx.AllIDs(), PathPred{Attr: "n", Value: "Seattle"})
	if len(seattle) != 4 {
		t.Fatalf("Seattle-compatible = %d; want 4", len(seattle))
	}
}

func TestFilterCompatibleRange(t *testing.T) {
	idx := corrIndex(t)
	low := idx.FilterCompatible(idx.AllIDs(), PathPred{Attr: "p", IsRange: true, Lo: 200, Hi: 250})
	// 3 Bellevue + broad-price + the hood-only Seattle query (no p cond).
	if len(low) != 5 {
		t.Fatalf("low-price-compatible = %d; want 5", len(low))
	}
}

func TestCountChildrenConditional(t *testing.T) {
	idx := corrIndex(t)
	bellevue := idx.FilterCompatible(idx.AllIDs(), PathPred{Attr: "n", Value: "Bellevue"})
	children := []PathPred{
		{Attr: "p", IsRange: true, Lo: 200, Hi: 250},
		{Attr: "p", IsRange: true, Lo: 250, Hi: 300.0000001},
	}
	attrN, overlap := idx.CountChildren(bellevue, "p", children)
	// Among Bellevue-compatible queries, 4 have a price condition (3
	// Bellevue + the broad one).
	if attrN != 4 {
		t.Fatalf("attrN = %d; want 4", attrN)
	}
	// Low bucket: all 4 overlap (3 Bellevue bands + broad). High bucket:
	// only the broad one (and the Bellevue bands' closed upper endpoint 250
	// touches [250,300) — BETWEEN 200 AND 250 includes 250, so it overlaps).
	if overlap[0] != 4 {
		t.Errorf("low-bucket overlap = %d; want 4", overlap[0])
	}
	if overlap[1] != 4 {
		// 3 Bellevue bands include the closed endpoint 250, which lies in
		// [250, 300); plus the broad query.
		t.Errorf("high-bucket overlap = %d; want 4 (closed endpoints touch)", overlap[1])
	}
	// With buckets that don't touch the band endpoints, the correlation is
	// crisp:
	children = []PathPred{
		{Attr: "p", IsRange: true, Lo: 200, Hi: 249},
		{Attr: "p", IsRange: true, Lo: 251, Hi: 300},
	}
	_, overlap = idx.CountChildren(bellevue, "p", children)
	if overlap[0] != 4 || overlap[1] != 1 {
		t.Fatalf("crisp overlap = %v; want [4 1]", overlap)
	}
}

func TestPathPredNoConditionMatches(t *testing.T) {
	idx := corrIndex(t)
	// Every query matches a path over an attribute nobody filters on.
	all := idx.FilterCompatible(idx.AllIDs(), PathPred{Attr: "bedrooms", IsRange: true, Lo: 0, Hi: 10})
	if len(all) != idx.N() {
		t.Fatalf("unfiltered attribute should keep all queries: %d", len(all))
	}
}

func TestPathPredKindMismatchPermissive(t *testing.T) {
	idx := corrIndex(t)
	// A value pred on the numeric-filtered attribute p: kind mismatch keeps
	// the query.
	got := idx.FilterCompatible(idx.AllIDs(), PathPred{Attr: "p", Value: "x"})
	if len(got) != idx.N() {
		t.Fatalf("kind mismatch should be permissive: %d of %d", len(got), idx.N())
	}
}
