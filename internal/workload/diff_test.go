package workload

import (
	"testing"

	"repro/internal/sqlparse"
)

func diffTestStats(t *testing.T, extra ...string) *Stats {
	t.Helper()
	base := []string{
		"SELECT * FROM ListProperty WHERE neighborhood IN ('Bellevue, WA') AND price BETWEEN 200000 AND 250000",
		"SELECT * FROM ListProperty WHERE neighborhood IN ('Redmond, WA')",
		"SELECT * FROM ListProperty WHERE bedrooms BETWEEN 2 AND 4",
		"SELECT * FROM ListProperty WHERE propertytype = 'Condo'",
	}
	w, err := ParseStrings(append(base, extra...))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Preprocess(w, Config{
		Table:     "ListProperty",
		Intervals: map[string]float64{"price": 25000, "bedrooms": 1},
	})
}

func TestDiffStatsIdentical(t *testing.T) {
	a := diffTestStats(t)
	b := diffTestStats(t)
	d := DiffStats(a, b, 0)
	if !d.Same {
		t.Fatalf("identical snapshots diff as changed: %+v", d.Changed)
	}
	if len(d.Changed) != 0 {
		t.Fatalf("Changed = %+v, want empty", d.Changed)
	}
	if !d.WinnerStable([]string{"neighborhood", "price", "bedrooms", "propertytype"}) {
		t.Fatalf("WinnerStable = false on identical snapshots")
	}
}

func TestDiffStatsCloneIsSame(t *testing.T) {
	a := diffTestStats(t)
	d := DiffStats(a, a.Clone(), 0)
	if !d.Same {
		t.Fatalf("clone diffs as changed: %+v", d.Changed)
	}
}

func TestDiffStatsOccChange(t *testing.T) {
	a := diffTestStats(t)
	b := diffTestStats(t, "SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA')")
	d := DiffStats(a, b, 0)
	if d.Same {
		t.Fatalf("diff reports Same across an added query")
	}
	ad := d.Delta("neighborhood")
	if !ad.UsageChanged || !ad.OccChanged {
		t.Fatalf("neighborhood delta = %+v, want usage+occ changed", ad)
	}
	if ad.SplitsChanged || ad.RangesChanged {
		t.Fatalf("neighborhood delta = %+v, numeric tables should be untouched", ad)
	}
	if d.StructStable("neighborhood") {
		t.Fatalf("StructStable(neighborhood) = true despite occ change")
	}
	// Attributes the new query does not mention stay structurally stable.
	if !d.StructStable("price") || !d.StructStable("bedrooms") {
		t.Fatalf("untouched attributes not StructStable: price=%v bedrooms=%v",
			d.StructStable("price"), d.StructStable("bedrooms"))
	}
	// But N moved, so no winner is provably stable.
	if d.WinnerStable([]string{"price"}) {
		t.Fatalf("WinnerStable = true despite N changing %d -> %d", d.NOld, d.NNew)
	}
}

func TestDiffStatsRangeChange(t *testing.T) {
	a := diffTestStats(t)
	b := diffTestStats(t, "SELECT * FROM ListProperty WHERE price BETWEEN 225000 AND 275000")
	d := DiffStats(a, b, 0)
	ad := d.Delta("price")
	if !ad.UsageChanged || !ad.SplitsChanged || !ad.RangesChanged {
		t.Fatalf("price delta = %+v, want usage+splits+ranges changed", ad)
	}
	if ad.OccChanged {
		t.Fatalf("price delta reports occ change for a range query")
	}
	if d.StructStable("price") {
		t.Fatalf("StructStable(price) = true despite splitpoint change")
	}
}

func TestDiffStatsNewAttribute(t *testing.T) {
	a := diffTestStats(t)
	b := diffTestStats(t, "SELECT * FROM ListProperty WHERE sqft BETWEEN 1000 AND 2000")
	d := DiffStats(a, b, 0)
	if !d.Delta("sqft").Any() {
		t.Fatalf("newly-seen attribute not reported changed")
	}
	// And symmetrically when the attribute disappears.
	d = DiffStats(b, a, 0)
	if !d.Delta("sqft").Any() {
		t.Fatalf("dropped attribute not reported changed")
	}
}

func TestDiffStatsEpsilonTolerates(t *testing.T) {
	// 100 identical queries vs 101: a 1% drift on every neighborhood count.
	var base, more []string
	for i := 0; i < 100; i++ {
		base = append(base, "SELECT * FROM ListProperty WHERE neighborhood IN ('Bellevue, WA')")
	}
	more = append(append([]string(nil), base...),
		"SELECT * FROM ListProperty WHERE neighborhood IN ('Bellevue, WA')")
	wa, _ := ParseStrings(base)
	wb, _ := ParseStrings(more)
	a := Preprocess(wa, Config{Table: "ListProperty"})
	b := Preprocess(wb, Config{Table: "ListProperty"})
	if d := DiffStats(a, b, 0); d.Same {
		t.Fatalf("exact diff misses the extra query")
	}
	if d := DiffStats(a, b, 0.05); !d.Same {
		t.Fatalf("5%% relative epsilon should absorb a 1%% count drift: %+v", d.Changed)
	}
}

func TestDiffStatsAfterAddQuery(t *testing.T) {
	// The incremental AddQuery path and a from-scratch Preprocess over the
	// extended log must compare equal — the invariant that lets serve-time
	// repair diff a learned clone against a cached snapshot's stats.
	extra := "SELECT * FROM ListProperty WHERE neighborhood IN ('Kirkland, WA') AND price BETWEEN 250000 AND 300000"
	inc := diffTestStats(t).Clone()
	q, err := sqlparse.Parse(extra)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	inc.AddQuery(q, Config{Table: "ListProperty", Intervals: map[string]float64{"price": 25000, "bedrooms": 1}})
	full := diffTestStats(t, extra)
	if d := DiffStats(inc, full, 0); !d.Same {
		t.Fatalf("AddQuery clone diverges from full Preprocess: %+v", d.Changed)
	}
}
