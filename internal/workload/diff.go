package workload

import (
	"math"
	"strings"
)

// This file implements the stats-diff layer behind incremental tree repair
// (DESIGN.md §13): given two generation-stamped Stats snapshots, report which
// attributes' count tables actually moved. The categorizer consumes the diff
// to decide, per level, whether the old tree's structure can be reused
// (occurrence/splitpoint tables unchanged ⇒ identical partitions) and whether
// the level's winning attribute is provably unchanged (nothing any candidate's
// cost depends on moved ⇒ identical costs, identical argmin).

// AttrDelta reports which of one attribute's tables changed between two
// snapshots. The zero value means "nothing changed".
type AttrDelta struct {
	// UsageChanged: NAttr(A) moved — every ShowTuplesProb(A) and
	// ExploreProb denominator shifts.
	UsageChanged bool
	// OccChanged: the per-value occurrence counts moved — categorical
	// presentation order and probabilities may shift.
	OccChanged bool
	// SplitsChanged: the splitpoint start/end tables moved — numeric cut
	// selection may shift.
	SplitsChanged bool
	// RangesChanged: the sorted range index moved — NOverlapRange (range
	// label probabilities) may shift.
	RangesChanged bool
}

// Any reports whether any table of the attribute changed.
func (d AttrDelta) Any() bool {
	return d.UsageChanged || d.OccChanged || d.SplitsChanged || d.RangesChanged
}

// StatsDiff is the comparison of two Stats snapshots.
type StatsDiff struct {
	// Same is true when N and every attribute table compare equal under the
	// epsilon. With epsilon 0 this means the snapshots are content-identical:
	// every probability the categorizer derives is bitwise the same, so an
	// old tree IS the new tree.
	Same bool
	// NOld and NNew are the workload sizes of the two snapshots. N enters
	// every SHOWTUPLES probability (1 − NAttr/N), so two snapshots with any
	// learning between them differ here even when an attribute's own tables
	// did not move.
	NOld, NNew int
	// Changed maps lower-cased attribute names to what moved. Attributes
	// absent from the map are unchanged in every table.
	Changed map[string]AttrDelta
}

// DiffStats compares two snapshots. epsilon is a relative tolerance on the
// counts: |a−b| ≤ epsilon·max(|a|,|b|) compares equal. Pass 0 for the exact
// diff repair requires; a small positive epsilon gives the advisory diff the
// pre-warmer uses to skip cycles whose statistics barely moved.
func DiffStats(old, new *Stats, epsilon float64) *StatsDiff {
	d := &StatsDiff{NOld: old.n, NNew: new.n, Changed: make(map[string]AttrDelta)}
	for key := range old.attrUsage {
		d.compareAttr(old, new, key, epsilon)
	}
	for key := range new.attrUsage {
		if _, seen := old.attrUsage[key]; !seen {
			d.compareAttr(old, new, key, epsilon)
		}
	}
	d.Same = len(d.Changed) == 0 && !differInt(old.n, new.n, epsilon)
	return d
}

func (d *StatsDiff) compareAttr(old, new *Stats, key string, eps float64) {
	var ad AttrDelta
	ad.UsageChanged = differInt(old.attrUsage[key], new.attrUsage[key], eps) ||
		old.caseOf[key] != new.caseOf[key]
	ad.OccChanged = occDiffer(old.occ[key], new.occ[key], eps)
	ad.SplitsChanged = splitsDiffer(old.splits[key], new.splits[key], eps)
	ad.RangesChanged = rangesDiffer(old.ranges[key], new.ranges[key], eps)
	if ad.Any() {
		d.Changed[key] = ad
	}
}

// Delta returns the attribute's delta (zero when unchanged).
func (d *StatsDiff) Delta(attr string) AttrDelta {
	return d.Changed[strings.ToLower(attr)]
}

// StructStable reports whether the attribute's partition *structure* is
// provably unchanged: the occurrence and splitpoint tables — the only
// statistics that influence which children a plan produces, their order, and
// their tuple-sets — compare equal. Probabilities (which additionally depend
// on N, NAttr, and the range index) may still have moved; the repair pass
// recomputes those from the new snapshot.
func (d *StatsDiff) StructStable(attr string) bool {
	ad := d.Delta(attr)
	return !ad.OccChanged && !ad.SplitsChanged
}

// WinnerStable is the cheap per-level "winner unchanged?" predicate: when the
// workload size is identical and none of the listed attributes changed in any
// table, every plan any of them produces — structure, probabilities, and
// therefore cost — is bitwise identical between the snapshots, so the
// level-greedy argmin cannot have flipped. Callers must pass every attribute
// the level's costs read: the level's candidates plus the ancestors whose
// labels set the frontier's exploration probabilities.
func (d *StatsDiff) WinnerStable(attrs []string) bool {
	if d.NOld != d.NNew {
		return false
	}
	for _, a := range attrs {
		if d.Delta(a).Any() {
			return false
		}
	}
	return true
}

// differInt compares two counts under the relative epsilon.
func differInt(a, b int, eps float64) bool {
	if a == b {
		return false
	}
	if eps <= 0 {
		return true
	}
	m := math.Max(math.Abs(float64(a)), math.Abs(float64(b)))
	return math.Abs(float64(a)-float64(b)) > eps*m
}

func differFloat(a, b float64, eps float64) bool {
	if a == b {
		return false
	}
	if eps <= 0 {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) > eps*m
}

func occDiffer(a, b map[string]int, eps float64) bool {
	for v, ca := range a {
		if differInt(ca, b[v], eps) {
			return true
		}
	}
	for v, cb := range b {
		if _, seen := a[v]; !seen && differInt(0, cb, eps) {
			return true
		}
	}
	return false
}

func splitsDiffer(a, b *SplitTable, eps float64) bool {
	if a == nil || b == nil {
		return boundaryDiffer(a, b)
	}
	if a.Interval != b.Interval {
		return true
	}
	return gridDiffer(a.start, b.start, eps) || gridDiffer(a.end, b.end, eps)
}

// boundaryDiffer handles a nil-vs-present table: a table only exists once the
// workload carries a range condition on the attribute, so nil vs non-empty is
// a change; nil vs nil (or a somehow-empty table) is not.
func boundaryDiffer(a, b *SplitTable) bool {
	count := func(t *SplitTable) int {
		if t == nil {
			return 0
		}
		return len(t.start) + len(t.end)
	}
	return count(a) != count(b)
}

func gridDiffer(a, b map[float64]int, eps float64) bool {
	for v, ca := range a {
		if differInt(ca, b[v], eps) {
			return true
		}
	}
	for v, cb := range b {
		if _, seen := a[v]; !seen && differInt(0, cb, eps) {
			return true
		}
	}
	return false
}

func rangesDiffer(a, b *rangeIndex, eps float64) bool {
	la, lb := 0, 0
	if a != nil {
		la = len(a.los)
	}
	if b != nil {
		lb = len(b.los)
	}
	if la != lb {
		// The number of mined ranges moved. Under a positive epsilon, tolerate
		// a relative drift in the count (the advisory diff only needs "did the
		// overlap landscape move materially").
		return differInt(la, lb, eps)
	}
	if la == 0 {
		return false
	}
	for i := range a.los {
		if differFloat(a.los[i], b.los[i], eps) || differFloat(a.his[i], b.his[i], eps) {
			return true
		}
	}
	return false
}
