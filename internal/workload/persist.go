package workload

import (
	"encoding/gob"
	"fmt"
	"io"
	"strings"
)

// statsWire is the gob-serializable mirror of Stats. The paper's system
// persists the count tables in database tables so query-time categorization
// never touches the raw workload; we persist them as a single gob stream.
type statsWire struct {
	N          int
	AttrUsage  map[string]int
	Occ        map[string]map[string]int
	Splits     map[string]*splitWire
	Ranges     map[string]*rangeWire
	AttrByFreq []string
}

type splitWire struct {
	Interval   float64
	Start, End map[float64]int
}

type rangeWire struct {
	Los, His []float64
}

// Save writes the preprocessed count tables to w.
func (s *Stats) Save(w io.Writer) error {
	wire := statsWire{
		N:          s.n,
		AttrUsage:  s.attrUsage,
		Occ:        s.occ,
		Splits:     make(map[string]*splitWire, len(s.splits)),
		Ranges:     make(map[string]*rangeWire, len(s.ranges)),
		AttrByFreq: s.attrByFreq,
	}
	for k, st := range s.splits {
		wire.Splits[k] = &splitWire{Interval: st.Interval, Start: st.start, End: st.end}
	}
	for k, ri := range s.ranges {
		wire.Ranges[k] = &rangeWire{Los: ri.los, His: ri.his}
	}
	if err := gob.NewEncoder(w).Encode(&wire); err != nil {
		return fmt.Errorf("workload: encoding stats: %w", err)
	}
	return nil
}

// LoadStats reads count tables previously written by Save.
func LoadStats(r io.Reader) (*Stats, error) {
	var wire statsWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("workload: decoding stats: %w", err)
	}
	s := &Stats{
		n:          wire.N,
		attrUsage:  wire.AttrUsage,
		occ:        wire.Occ,
		splits:     make(map[string]*SplitTable, len(wire.Splits)),
		ranges:     make(map[string]*rangeIndex, len(wire.Ranges)),
		attrByFreq: wire.AttrByFreq,
		caseOf:     make(map[string]string, len(wire.AttrByFreq)),
	}
	for _, a := range wire.AttrByFreq {
		s.caseOf[strings.ToLower(a)] = a
	}
	if s.attrUsage == nil {
		s.attrUsage = make(map[string]int)
	}
	if s.occ == nil {
		s.occ = make(map[string]map[string]int)
	}
	for k, sw := range wire.Splits {
		st := &SplitTable{Interval: sw.Interval, start: sw.Start, end: sw.End}
		if st.start == nil {
			st.start = make(map[float64]int)
		}
		if st.end == nil {
			st.end = make(map[float64]int)
		}
		s.splits[k] = st
	}
	for k, rw := range wire.Ranges {
		s.ranges[k] = &rangeIndex{los: rw.Los, his: rw.His}
	}
	return s, nil
}
