package workload

import (
	"strings"

	"repro/internal/sqlparse"
)

// CondIndex retains the workload's per-query selection conditions so that
// conditional (path-aware) probabilities can be computed at query time. The
// count tables of Stats assume the §5.2 independence of attributes; this
// index supports the paper's proposed refinement — "leveraging the
// correlations captured in the workload" — by answering questions of the
// form "among users interested in the path so far, how many are interested
// in this label?".
//
// Callers maintain the path incrementally: start from AllIDs (every query is
// compatible with the empty path), and derive a child's compatible set with
// FilterCompatible as the tree grows. CountChildren then answers the
// conditional numerators/denominators in one pass over the compatible set.
type CondIndex struct {
	queries []*sqlparse.Query
}

// NewCondIndex builds the index over the workload's queries (filtered by
// cfg.Table like Preprocess).
func NewCondIndex(w *Workload, cfg Config) *CondIndex {
	idx := &CondIndex{}
	for _, q := range w.Queries {
		if cfg.Table != "" && !strings.EqualFold(q.Table, cfg.Table) {
			continue
		}
		idx.queries = append(idx.queries, q)
	}
	return idx
}

// N returns the number of indexed queries.
func (idx *CondIndex) N() int { return len(idx.queries) }

// Add appends one more query to the index (the online-learning companion of
// Stats.AddQuery). Not safe for concurrent use with readers.
func (idx *CondIndex) Add(q *sqlparse.Query, cfg Config) {
	if cfg.Table != "" && !strings.EqualFold(q.Table, cfg.Table) {
		return
	}
	idx.queries = append(idx.queries, q)
}

// AllIDs returns the identifiers of every indexed query — the compatible
// set of the empty path. The returned slice is fresh and owned by the
// caller.
func (idx *CondIndex) AllIDs() []int {
	ids := make([]int, len(idx.queries))
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// PathPred describes one step of a category path as a predicate over a
// workload query's condition on Attr. Exactly one of the value or range
// fields is meaningful, selected by IsRange.
type PathPred struct {
	Attr    string
	IsRange bool
	Value   string   // single-value categorical label
	Values  []string // multi-value categorical label ("Other" categories)
	Lo, Hi  float64  // numeric bucket [Lo, Hi); pass an epsilon-adjusted Hi for closed buckets
}

// Matches reports whether query q is compatible with the path step: a query
// without a condition on the attribute is interested in all its values
// (§4.2), so it matches; otherwise its condition must overlap the label.
func (p PathPred) Matches(q *sqlparse.Query) bool {
	c := q.Cond(p.Attr)
	if c == nil {
		return true
	}
	if p.IsRange {
		if !c.IsRange {
			return true // kind mismatch cannot arise from one schema; permissive
		}
		return c.OverlapsInterval(p.Lo, p.Hi)
	}
	if c.IsRange {
		return true
	}
	if len(p.Values) > 0 {
		for _, qv := range c.Values {
			for _, pv := range p.Values {
				if qv == pv {
					return true
				}
			}
		}
		return false
	}
	for _, v := range c.Values {
		if v == p.Value {
			return true
		}
	}
	return false
}

// FilterCompatible narrows a compatible set by one more path step. ids must
// be a set previously produced by AllIDs or FilterCompatible.
func (idx *CondIndex) FilterCompatible(ids []int, step PathPred) []int {
	out := make([]int, 0, len(ids))
	for _, qi := range ids {
		if step.Matches(idx.queries[qi]) {
			out = append(out, qi)
		}
	}
	return out
}

// CountChildren counts, within the path-compatible set ids, the queries
// carrying a condition on attr (attrN — the denominator of the conditional
// exploration probabilities, and the numerator of the conditional SHOWCAT
// probability over len(ids)), and how many of those overlap each child
// label.
func (idx *CondIndex) CountChildren(ids []int, attr string, children []PathPred) (attrN int, overlap []int) {
	overlap = make([]int, len(children))
	for _, qi := range ids {
		q := idx.queries[qi]
		if q.Cond(attr) == nil {
			continue
		}
		attrN++
		for i := range children {
			// Matches treats "no condition" as overlap, but every query here
			// has a condition on attr, so this is true label overlap.
			if children[i].Matches(q) {
				overlap[i]++
			}
		}
	}
	return attrN, overlap
}
