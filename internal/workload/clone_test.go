package workload

import (
	"reflect"
	"testing"

	"repro/internal/sqlparse"
)

func TestStatsCloneIsDeepAndEquivalent(t *testing.T) {
	w, err := ParseStrings([]string{
		"SELECT * FROM T WHERE a IN ('x','y') AND p BETWEEN 10 AND 20",
		"SELECT * FROM T WHERE p >= 15",
		"SELECT * FROM T WHERE a = 'x'",
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{DefaultInterval: 5}
	orig := Preprocess(w, cfg)
	cl := orig.Clone()

	// Equivalence on every reader surface.
	if cl.N() != orig.N() || cl.NAttr("a") != orig.NAttr("a") || cl.Occ("a", "x") != orig.Occ("a", "x") {
		t.Fatal("clone disagrees with original")
	}
	if !reflect.DeepEqual(cl.AttrsByUsage(), orig.AttrsByUsage()) {
		t.Fatalf("attr order: %v vs %v", cl.AttrsByUsage(), orig.AttrsByUsage())
	}
	if cl.NOverlapRange("p", 10, 20) != orig.NOverlapRange("p", 10, 20) {
		t.Fatal("range index disagrees")
	}

	// Deepness: mutating the clone must not leak into the original.
	beforeN, beforeOcc := orig.N(), orig.Occ("a", "x")
	beforeOverlap := orig.NOverlapRange("p", 0, 100)
	beforeGoodness := orig.Splits("p").Goodness(15)
	cl.AddQuery(sqlparse.MustParse("SELECT * FROM T WHERE a = 'x' AND p = 15"), cfg)
	if orig.N() != beforeN || orig.Occ("a", "x") != beforeOcc {
		t.Fatal("AddQuery on clone mutated original counts")
	}
	if orig.NOverlapRange("p", 0, 100) != beforeOverlap {
		t.Fatal("AddQuery on clone mutated original range index")
	}
	if orig.Splits("p").Goodness(15) != beforeGoodness {
		t.Fatal("AddQuery on clone mutated original splitpoints")
	}
	if cl.N() != beforeN+1 {
		t.Fatal("clone did not learn")
	}
}

func TestCondIndexAndWorkloadClone(t *testing.T) {
	w, err := ParseStrings([]string{"SELECT * FROM T WHERE a = 'x'"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{}
	idx := NewCondIndex(w, cfg)
	ic := idx.Clone()
	ic.Add(sqlparse.MustParse("SELECT * FROM T WHERE a = 'y'"), cfg)
	if idx.N() != 1 || ic.N() != 2 {
		t.Fatalf("index clone not independent: %d, %d", idx.N(), ic.N())
	}
	wc := w.Clone()
	wc.Queries = append(wc.Queries, sqlparse.MustParse("SELECT * FROM T"))
	if w.Len() != 1 || wc.Len() != 2 {
		t.Fatalf("workload clone not independent: %d, %d", w.Len(), wc.Len())
	}
}
