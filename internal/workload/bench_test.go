package workload

import (
	"fmt"
	"testing"
)

func benchWorkload(b *testing.B, n int) *Workload {
	b.Helper()
	queries := make([]string, n)
	for i := range queries {
		queries[i] = fmt.Sprintf(
			"SELECT * FROM T WHERE neighborhood IN ('Hood %d') AND price BETWEEN %d AND %d",
			i%40, 100000+(i%20)*25000, 200000+(i%20)*25000)
	}
	w, err := ParseStrings(queries)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkPreprocess measures count-table construction per workload size.
func BenchmarkPreprocess(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("queries=%d", n), func(b *testing.B) {
			w := benchWorkload(b, n)
			cfg := Config{Intervals: map[string]float64{"price": 5000}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Preprocess(w, cfg)
			}
		})
	}
}

// BenchmarkNOverlapRange measures the binary-search overlap counter.
func BenchmarkNOverlapRange(b *testing.B) {
	w := benchWorkload(b, 10000)
	s := Preprocess(w, Config{Intervals: map[string]float64{"price": 5000}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.NOverlapRange("price", 150000, 400000)
	}
}

// BenchmarkAddQuery measures the incremental (online-learning) update. The
// stats are rebuilt periodically: the sorted-range insert is O(n), so an
// unbounded accumulation across b.N iterations would measure growth, not
// the per-update cost at a realistic workload size.
func BenchmarkAddQuery(b *testing.B) {
	w := benchWorkload(b, 1000)
	cfg := Config{Intervals: map[string]float64{"price": 5000}}
	s := Preprocess(w, cfg)
	q := w.Queries[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%5000 == 4999 {
			b.StopTimer()
			s = Preprocess(w, cfg)
			b.StartTimer()
		}
		s.AddQuery(q, cfg)
	}
}
