package lint

import (
	"go/ast"
	"go/types"
)

// checkHotTime guards the clock discipline of the categorizer hot path
// (PR4's timer-starvation fix): deadline handling in the hot packages goes
// through the approved soft-budget poll (category.ctxExpired), which reads
// the wall clock against ctx.Deadline precisely because runtime timers
// starve under a CPU-saturated scheduler. Ad-hoc time.Now/time.Since/timer
// construction in these packages either duplicates that subtlety wrongly or
// adds per-row clock reads to loops that run millions of times. Deliberate
// one-shot instrumentation is suppressed inline with a recorded reason.
var checkHotTime = &Check{
	Name: "hottime",
	Doc:  "no raw time.Now/time.Since/timers in categorizer hot packages outside approved soft-budget sites",
	Run:  runHotTime,
}

var hotTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

func runHotTime(pass *Pass) {
	if !matchPkg(pass.Path, pass.Cfg.HotPkgs) {
		return
	}
	eachFunc(pass.Package, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
		if lit != nil {
			return // literal bodies belong to their declaring function
		}
		if fn, ok := pass.Info.Defs[decl.Name].(*types.Func); ok &&
			matchFunc(qualifiedName(fn), pass.Cfg.HotApprovedFuncs) {
			return
		}
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn != nil && funcPkgPath(fn) == "time" && hotTimeFuncs[fn.Name()] {
				pass.Reportf(call.Pos(),
					"raw time.%s in hot-path package %s; poll deadlines via ctxExpired (suppress with a reason if this is deliberate one-shot instrumentation)",
					fn.Name(), pass.Pkg.Name())
			}
			return true
		})
	})
}
