package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// checkNoCopy is the copylocks-style guard for the serving path: types whose
// values embed a mutex or a sync/atomic value (treecache.Cache, the
// conjunct-LRU state, the admission Limiter, the stats counters) — and the
// listed reference-semantics types like relation.Bitmap — must move by
// pointer. Passing or returning one by value forks its lock or counter
// state (or, for Bitmap, silently aliases half and copies half), which the
// race detector only catches if both halves happen to be exercised. go
// vet's copylocks stops at sync.Locker; this extends the rule to atomics
// and to the repo's own no-copy types, at every function signature on the
// serving path.
var checkNoCopy = &Check{
	Name: "nocopy",
	Doc:  "mutex/atomic-bearing and designated reference types never pass or return by value on the serving path",
	Run:  runNoCopy,
}

func runNoCopy(pass *Pass) {
	if !matchPkg(pass.Path, pass.Cfg.NoCopyPkgs) {
		return
	}
	memo := make(map[types.Type]string)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Recv != nil {
				checkNoCopyFields(pass, memo, fd.Recv, "receiver")
			}
			checkNoCopyFields(pass, memo, fd.Type.Params, "parameter")
			checkNoCopyFields(pass, memo, fd.Type.Results, "result")
		}
	}
}

func checkNoCopyFields(pass *Pass, memo map[types.Type]string, fields *ast.FieldList, role string) {
	if fields == nil {
		return
	}
	for _, field := range fields.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok {
			continue
		}
		if why := noCopyReason(pass, memo, tv.Type); why != "" {
			pass.Reportf(field.Type.Pos(), "%s passes %s by value; it %s — pass a pointer", role, typeString(tv.Type), why)
		}
	}
}

func typeString(t types.Type) string {
	if pkg, name, ok := namedFrom(t); ok {
		if pkg == "" {
			return name
		}
		return fmt.Sprintf("%s.%s", pkgBase(pkg), name)
	}
	return t.String()
}

func pkgBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// noCopyReason reports why t must not be copied ("" when copying is fine):
// it is a designated no-copy type, or its value (recursively through
// structs and arrays, not through pointers/slices/maps) contains a sync or
// sync/atomic state-bearing type.
func noCopyReason(pass *Pass, memo map[types.Type]string, t types.Type) string {
	if why, ok := memo[t]; ok {
		return why
	}
	memo[t] = "" // cycle guard: a type reached through itself adds nothing new
	why := noCopyReasonUncached(pass, memo, t)
	memo[t] = why
	return why
}

func noCopyReasonUncached(pass *Pass, memo map[types.Type]string, t types.Type) string {
	if pkg, name, ok := namedFrom(t); ok {
		qualified := pkg + "." + name
		if matchFunc(qualified, pass.Cfg.NoCopyTypes) {
			return "is a designated no-copy reference type"
		}
		switch pkg {
		case "sync":
			switch name {
			case "Mutex", "RWMutex", "Once", "WaitGroup", "Cond", "Map", "Pool":
				return fmt.Sprintf("contains sync.%s state", name)
			}
		case "sync/atomic":
			return fmt.Sprintf("contains atomic.%s state", name)
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if why := noCopyReason(pass, memo, u.Field(i).Type()); why != "" {
				return why
			}
		}
	case *types.Array:
		return noCopyReason(pass, memo, u.Elem())
	}
	return ""
}
