package lint

import (
	"go/ast"
	"go/types"
)

// checkWarmGuard guards the pre-warmer/snapshot boundary (PR7): the warmer
// rides behind the learn stream, so warm-path code must take the published
// snapshot through an accessor (System/Snapshot/WarmerStats) and never read
// the snapshot owner's fields directly — a direct read races the publishing
// store and sees a torn view the accessor's atomic load rules out. Methods
// declared ON a snapshot-owner type are exempt: they are the accessors.
var checkWarmGuard = &Check{
	Name: "warmguard",
	Doc:  "warm-path code reads snapshot-owner fields only through atomic accessors",
	Run:  runWarmGuard,
}

func runWarmGuard(pass *Pass) {
	cfg := pass.Cfg
	if cfg.WarmFuncs == nil || len(cfg.SnapshotTypes) == 0 {
		return
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Match on the in-package name (Func or Type.Method), not the
			// import path — a warm-named directory must not drag every
			// function in it under the check.
			if !cfg.WarmFuncs.MatchString(funcDeclName(fd)) {
				continue
			}
			if recvIsSnapshotType(fd, cfg.SnapshotTypes) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s, ok := pass.Info.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					return true
				}
				if named, ok := derefNamed(s.Recv()); ok && nameIn(named.Obj().Name(), cfg.SnapshotTypes) {
					pass.Reportf(sel.Sel.Pos(),
						"warmer code reads %s.%s directly; take the published snapshot through an atomic accessor (System/Snapshot)",
						named.Obj().Name(), sel.Sel.Name)
				}
				return true
			})
		}
	}
}

// recvIsSnapshotType reports whether the declaration is a method whose
// receiver is one of the snapshot-owner types.
func recvIsSnapshotType(fd *ast.FuncDecl, snapshotTypes []string) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	name, ok := recvTypeName(fd.Recv.List[0].Type)
	return ok && nameIn(name, snapshotTypes)
}

func nameIn(name string, set []string) bool {
	for _, s := range set {
		if name == s {
			return true
		}
	}
	return false
}
