package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// callgraph.go builds the per-package call graph the deep checks
// (frozenguard, lockguard) and the effect summaries (summary.go) walk. Nodes
// are function declarations and function literals; edges are resolved call
// sites plus "reference" edges for functions taken as values (method values,
// callbacks), which the analyses treat as potential calls. Resolution is
// go/types-based, so methods, lit-bound locals (x := func(){…}; x()), and
// package-level functions all land on the right node; interface method calls
// and cross-package callees stay out of the graph and are assumed
// effect-free (DESIGN.md §16 records the approximation).

type cgKind int

const (
	cgCall  cgKind = iota // plain call
	cgGo                  // go f(...)
	cgDefer               // defer f(...)
	cgRef                 // f taken as a value (method value, callback arg)
)

// cgNode is one function in the package call graph.
type cgNode struct {
	decl      *ast.FuncDecl // non-nil for declared functions
	lit       *ast.FuncLit  // non-nil for function literals
	obj       types.Object  // the declared func, or the variable a literal is bound to
	body      *ast.BlockStmt
	name      string  // display name ("Type.Method", "f", "f$1")
	enclosing *cgNode // for literals: the node whose body contains them
	out       []*cgEdge
	in        []*cgEdge
}

// cgEdge is one call or reference site.
type cgEdge struct {
	caller *cgNode
	callee *cgNode
	site   *ast.CallExpr // nil for cgRef edges
	pos    token.Pos
	kind   cgKind
}

// callGraph is the package-wide graph plus its resolution indexes.
type callGraph struct {
	pass  *Pass
	nodes []*cgNode
	byObj map[types.Object]*cgNode
	byLit map[*ast.FuncLit]*cgNode
}

// buildCallGraph constructs the graph for the pass's package.
func buildCallGraph(pass *Pass) *callGraph {
	g := &callGraph{
		pass:  pass,
		byObj: make(map[types.Object]*cgNode),
		byLit: make(map[*ast.FuncLit]*cgNode),
	}
	// Pass 1: create nodes for declarations, then for every literal nested
	// inside them (tracking the enclosing node), and bind literals assigned
	// to variables so calls through the variable resolve.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			n := &cgNode{decl: fd, body: fd.Body, name: funcDeclName(fd)}
			if obj := pass.Info.Defs[fd.Name]; obj != nil {
				n.obj = obj
				g.byObj[obj] = n
			}
			g.nodes = append(g.nodes, n)
			g.addLits(n, fd.Body)
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g.bindLit(n)
			return true
		})
	}
	// Pass 2: resolve the edges of every node's own body.
	for _, n := range g.nodes {
		g.buildEdges(n)
	}
	return g
}

// addLits creates a node for every function literal in body, nesting-aware:
// a literal inside another literal gets the inner one as its enclosure.
func (g *callGraph) addLits(owner *cgNode, body *ast.BlockStmt) {
	ord := 0
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ord++
		child := &cgNode{
			lit:       lit,
			body:      lit.Body,
			name:      fmt.Sprintf("%s$%d", owner.name, ord),
			enclosing: owner,
		}
		g.byLit[lit] = child
		g.nodes = append(g.nodes, child)
		g.addLits(child, lit.Body)
		return false
	})
}

// bindLit registers literal-to-variable bindings (x := func(){…},
// var x = func(){…}, x = func(){…}) so calls through the variable resolve to
// the literal's node. Rebinding keeps the last literal — an approximation,
// like ctxpoll's.
func (g *callGraph) bindLit(n ast.Node) {
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
		if !ok {
			return
		}
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := g.pass.Info.Defs[id]
		if obj == nil {
			obj = g.pass.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		if node := g.byLit[lit]; node != nil {
			node.obj = obj
			g.byObj[obj] = node
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i := range n.Rhs {
				bind(n.Lhs[i], n.Rhs[i])
			}
		}
	case *ast.ValueSpec:
		if len(n.Names) == len(n.Values) {
			for i := range n.Values {
				bind(n.Names[i], n.Values[i])
			}
		}
	}
}

// inspectOwn visits the node's own body, skipping nested function-literal
// bodies (each literal is its own node); the literal expression itself is
// still handed to f so launch sites stay visible.
func (n *cgNode) inspectOwn(f func(ast.Node) bool) {
	ast.Inspect(n.body, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok {
			f(lit)
			return false
		}
		return f(x)
	})
}

// resolveCallee maps a call's Fun expression to an in-graph node: a literal
// called inline, a declared function or method, or a lit-bound variable.
// Returns nil for builtins, interface methods, function-typed fields, and
// cross-package callees.
func (g *callGraph) resolveCallee(fun ast.Expr) *cgNode {
	switch fun := ast.Unparen(fun).(type) {
	case *ast.FuncLit:
		return g.byLit[fun]
	case *ast.Ident:
		if obj := g.pass.Info.Uses[fun]; obj != nil {
			return g.byObj[originObj(obj)]
		}
	case *ast.SelectorExpr:
		if obj := g.pass.Info.Uses[fun.Sel]; obj != nil {
			return g.byObj[originObj(obj)]
		}
	case *ast.IndexExpr: // generic instantiation f[T](…)
		return g.resolveCallee(fun.X)
	case *ast.IndexListExpr:
		return g.resolveCallee(fun.X)
	}
	return nil
}

// originObj folds instantiated generic objects back onto their declaration:
// a method used through Cache[tree] is the same node as the one declared on
// Cache[V].
func originObj(obj types.Object) types.Object {
	switch obj := obj.(type) {
	case *types.Func:
		return obj.Origin()
	case *types.Var:
		return obj.Origin()
	}
	return obj
}

// buildEdges resolves the call and reference sites in n's own body.
func (g *callGraph) buildEdges(n *cgNode) {
	kinds := make(map[*ast.CallExpr]cgKind)
	inCall := make(map[ast.Expr]bool)
	skipSel := make(map[*ast.Ident]bool)
	n.inspectOwn(func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.GoStmt:
			kinds[x.Call] = cgGo
		case *ast.DeferStmt:
			kinds[x.Call] = cgDefer
		case *ast.CallExpr:
			inCall[ast.Unparen(x.Fun)] = true
			if callee := g.resolveCallee(x.Fun); callee != nil {
				g.addEdge(n, callee, x, kinds[x])
			}
		case *ast.SelectorExpr:
			skipSel[x.Sel] = true
			if !inCall[x] {
				// Method value (v := x.M) or package-qualified function used
				// as a value: a potential call through the stored value.
				if obj := g.pass.Info.Uses[x.Sel]; obj != nil {
					if callee := g.byObj[originObj(obj)]; callee != nil {
						g.refEdge(n, callee, x.Sel.Pos())
					}
				}
			}
		case *ast.FuncLit:
			if !inCall[ast.Expr(x)] {
				// A literal stored or passed without being called here.
				if callee := g.byLit[x]; callee != nil {
					g.refEdge(n, callee, x.Pos())
				}
			}
		case *ast.Ident:
			if skipSel[x] || inCall[ast.Expr(x)] {
				return true
			}
			if obj := g.pass.Info.Uses[x]; obj != nil {
				if callee := g.byObj[originObj(obj)]; callee != nil {
					g.refEdge(n, callee, x.Pos())
				}
			}
		}
		return true
	})
}

func (g *callGraph) addEdge(caller, callee *cgNode, site *ast.CallExpr, kind cgKind) {
	e := &cgEdge{caller: caller, callee: callee, site: site, pos: site.Pos(), kind: kind}
	caller.out = append(caller.out, e)
	callee.in = append(callee.in, e)
}

func (g *callGraph) refEdge(caller, callee *cgNode, pos token.Pos) {
	e := &cgEdge{caller: caller, callee: callee, pos: pos, kind: cgRef}
	caller.out = append(caller.out, e)
	callee.in = append(callee.in, e)
}
