package lint

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package function, method, or imported function), or nil for builtins,
// function-typed variables, conversions, and anything else.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// funcPkgPath returns the import path of the package a function belongs to
// ("" for builtins and universe functions).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// qualifiedName renders pkgpath.Func or pkgpath.Type.Method for matching
// against Config function patterns.
func qualifiedName(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named, ok := derefNamed(sig.Recv().Type()); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + name
	}
	return name
}

// derefNamed unwraps one pointer level and reports the named type beneath.
func derefNamed(t types.Type) (*types.Named, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return n, ok
}

// namedFrom reports the declaring package path and name of the (possibly
// instantiated generic) named type behind t, without unwrapping pointers.
func namedFrom(t types.Type) (pkgPath, name string, ok bool) {
	n, isNamed := t.(*types.Named)
	if !isNamed {
		if a, isAlias := t.(*types.Alias); isAlias {
			return namedFrom(types.Unalias(a))
		}
		return "", "", false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name(), true
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	pkg, name, ok := namedFrom(t)
	return ok && pkg == "context" && name == "Context"
}

// funcDeclName returns the declared function's qualified name within its
// package ("Func" or "Type.Method").
func funcDeclName(fd *ast.FuncDecl) string {
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if named, ok := recvTypeName(fd.Recv.List[0].Type); ok {
			name = named + "." + name
		}
	}
	return name
}

func recvTypeName(t ast.Expr) (string, bool) {
	switch t := t.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr: // generic receiver Type[T]
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name, true
	}
	return "", false
}

// eachFunc walks every function declaration and function literal in the
// package, reporting the innermost enclosing declared function's name for
// literals.
func eachFunc(pkg *Package, fn func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn(fd, nil, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					fn(fd, lit, lit.Body)
				}
				return true
			})
		}
	}
}
