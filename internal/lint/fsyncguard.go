package lint

import (
	"go/ast"
)

// checkFsyncGuard guards the durable write protocol (PR9): data files that
// survive the process must be written through internal/relation/durable's
// path — length+CRC32C framed pages, fsync before rename, fsync of the
// directory after — because a raw os.Create/os.WriteFile produces a file
// that a crash can tear silently and recovery cannot distinguish from data
// loss. In the library packages, creating a file any other way is a bug
// waiting for the crash-chaos suite to find; the cmd/ tools (CSV exports,
// benchmark JSON) write operator-facing artifacts, not store data, and stay
// unrestricted, as do tests (the loader analyzes only non-test files).
var checkFsyncGuard = &Check{
	Name: "fsyncguard",
	Doc:  "library data files are written only through internal/relation/durable's framed, fsync'd path",
	Run:  runFsyncGuard,
}

func runFsyncGuard(pass *Pass) {
	cfg := pass.Cfg
	if matchPkg(pass.Path, cfg.FsyncAllowPkgs) || !matchPkg(pass.Path, cfg.FsyncPkgs) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || funcPkgPath(fn) != "os" {
				return true
			}
			switch fn.Name() {
			case "Create", "WriteFile":
			case "OpenFile":
				// Opening an existing file read-only or for append is not a
				// data-file write; only creation is guarded.
				if !openFileCreates(call) {
					return true
				}
			default:
				return true
			}
			pass.Reportf(call.Pos(),
				"raw os.%s in %s writes a file outside the durable store's write path (no checksum frame, no fsync, no atomic rename); use internal/relation/durable, or suppress with a reason if this is not persistent data",
				fn.Name(), pass.Pkg.Name())
			return true
		})
	}
}

// openFileCreates reports whether an os.OpenFile call's flag argument
// mentions O_CREATE anywhere in its expression — a syntactic heuristic
// (constants folded elsewhere escape it), which is the right price for
// leaving plain read/append opens alone.
func openFileCreates(call *ast.CallExpr) bool {
	if len(call.Args) < 2 {
		return false
	}
	creates := false
	ast.Inspect(call.Args[1], func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "O_CREATE" {
			creates = true
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == "O_CREATE" {
			creates = true
		}
		return !creates
	})
	return creates
}
