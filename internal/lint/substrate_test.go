package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// The substrate tests type-check small import-free sources in memory and
// probe the call graph and effect summaries directly — the deep checks'
// correctness rests on these two layers resolving methods, closures, method
// values, and generic instantiations, and on the summary fixpoint
// converging over call cycles.

func typeCheckSrc(t *testing.T, src string) *Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{}
	pkg, err := conf.Check("fix", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	var diags []Diagnostic
	return &Pass{
		Package: &Package{Path: "fix", Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info},
		Cfg:     DefaultConfig(),
		check:   "test",
		diags:   &diags,
	}
}

func graphNode(t *testing.T, g *callGraph, name string) *cgNode {
	t.Helper()
	for _, n := range g.nodes {
		if n.name == name {
			return n
		}
	}
	var names []string
	for _, n := range g.nodes {
		names = append(names, n.name)
	}
	t.Fatalf("no node %q in call graph (have %s)", name, strings.Join(names, ", "))
	return nil
}

func hasEdge(from, to *cgNode, kind cgKind) bool {
	for _, e := range from.out {
		if e.callee == to && e.kind == kind {
			return true
		}
	}
	return false
}

func TestCallGraphResolution(t *testing.T) {
	pass := typeCheckSrc(t, `package fix

type node struct{ n int }

func (x *node) bump() { x.n++ }

func plain() {}

// direct covers plain calls, method calls, and an inline literal call.
func direct(x *node) {
	plain()
	x.bump()
	func() { plain() }()
}

// bound covers a lit-bound variable called later, and a method value
// stored and passed as a callback.
func bound(x *node) {
	f := func() { plain() }
	f()
	g := x.bump
	run(g)
}

func run(f func()) { f() }

// spawn covers go/defer edge kinds.
func spawn(x *node) {
	go plain()
	defer x.bump()
}
`)
	g := buildCallGraph(pass)

	direct := graphNode(t, g, "direct")
	plain := graphNode(t, g, "plain")
	bump := graphNode(t, g, "node.bump")
	if !hasEdge(direct, plain, cgCall) {
		t.Errorf("direct -> plain call edge missing")
	}
	if !hasEdge(direct, bump, cgCall) {
		t.Errorf("direct -> node.bump method call edge missing")
	}
	lit := graphNode(t, g, "direct$1")
	if !hasEdge(direct, lit, cgCall) {
		t.Errorf("direct -> its inline literal call edge missing")
	}
	if !hasEdge(lit, plain, cgCall) {
		t.Errorf("literal -> plain call edge missing")
	}

	bound := graphNode(t, g, "bound")
	blit := graphNode(t, g, "bound$1")
	if !hasEdge(bound, blit, cgCall) {
		t.Errorf("bound -> lit-bound variable call edge missing")
	}
	if !hasEdge(bound, bump, cgRef) {
		t.Errorf("bound -> node.bump method-value ref edge missing")
	}

	spawn := graphNode(t, g, "spawn")
	if !hasEdge(spawn, plain, cgGo) {
		t.Errorf("spawn -> plain go edge missing")
	}
	if !hasEdge(spawn, bump, cgDefer) {
		t.Errorf("spawn -> node.bump defer edge missing")
	}
}

// TestCallGraphGenerics pins the Origin() normalization: a method called on
// an instantiated generic type must resolve to the node of its generic
// declaration (the real tree's Cache[V].insertLocked regression).
func TestCallGraphGenerics(t *testing.T) {
	pass := typeCheckSrc(t, `package fix

type box[T any] struct{ v T }

func (b *box[T]) set(v T) { b.v = v }

func use() {
	b := &box[int]{}
	b.set(1)
}
`)
	g := buildCallGraph(pass)
	use := graphNode(t, g, "use")
	set := graphNode(t, g, "box.set")
	if !hasEdge(use, set, cgCall) {
		t.Fatalf("use -> box.set edge missing: instantiated method did not resolve to its generic declaration")
	}
}

// TestSummaryFixpoint checks that mutation effects propagate through a call
// cycle to a fixpoint: a and b call each other, only b writes through the
// parameter, and both must end up summarized as mutating slot 0. leaf
// writes nothing and must stay clean.
func TestSummaryFixpoint(t *testing.T) {
	pass := typeCheckSrc(t, `package fix

func a(p *int, depth int) {
	if depth > 0 {
		b(p, depth-1)
	}
}

func b(p *int, depth int) {
	if depth > 1 {
		a(p, depth-1)
		return
	}
	*p = 1
}

func leaf(p *int) int { return *p }
`)
	an := pass.substrate()
	for _, name := range []string{"a", "b"} {
		n := graphNode(t, an.graph, name)
		sum := an.sums[n]
		if sum == nil || len(sum.mutates) == 0 || !sum.mutates[0] {
			t.Errorf("%s: expected slot 0 summarized as mutated, got %+v", name, sum)
		}
	}
	leaf := graphNode(t, an.graph, "leaf")
	if sum := an.sums[leaf]; sum != nil && len(sum.mutates) > 0 && sum.mutates[0] {
		t.Errorf("leaf: read-only function summarized as mutating")
	}
}

// TestSummaryReceiverSlot checks that a method's receiver occupies slot 0
// and a write through it is charged there.
func TestSummaryReceiverSlot(t *testing.T) {
	pass := typeCheckSrc(t, `package fix

type counter struct{ n int }

func (c *counter) inc() { c.n++ }

func (c *counter) get() int { return c.n }
`)
	an := pass.substrate()
	inc := graphNode(t, an.graph, "counter.inc")
	if sum := an.sums[inc]; sum == nil || len(sum.mutates) == 0 || !sum.mutates[0] {
		t.Errorf("counter.inc: receiver write not summarized on slot 0: %+v", sum)
	}
	get := graphNode(t, an.graph, "counter.get")
	if sum := an.sums[get]; sum != nil && len(sum.mutates) > 0 && sum.mutates[0] {
		t.Errorf("counter.get: read-only method summarized as mutating")
	}
}

func TestSelectChecks(t *testing.T) {
	all, err := SelectChecks("")
	if err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	if len(all) != len(Checks()) {
		t.Fatalf("empty spec selected %d checks, want %d", len(all), len(Checks()))
	}

	got, err := SelectChecks("lockguard, frozenguard")
	if err != nil {
		t.Fatalf("valid spec: %v", err)
	}
	if len(got) != 2 || got[0].Name != "lockguard" || got[1].Name != "frozenguard" {
		t.Fatalf("valid spec selected %v", got)
	}

	_, err = SelectChecks("lockguard,nosuch")
	if err == nil {
		t.Fatalf("unknown check name did not error")
	}
	if !strings.Contains(err.Error(), `unknown check "nosuch"`) {
		t.Errorf("error %q does not name the unknown check", err)
	}
	if !strings.Contains(err.Error(), "lockguard") {
		t.Errorf("error %q does not list the valid checks", err)
	}
}

func TestDedupDiagnostics(t *testing.T) {
	diags := []Diagnostic{
		{Check: "lockguard", File: "a.go", Line: 3, Col: 4, Message: "first"},
		{Check: "lockguard", File: "a.go", Line: 3, Col: 4, Message: "second pass, same finding"},
		{Check: "frozenguard", File: "a.go", Line: 3, Col: 4, Message: "different check survives"},
		{Check: "lockguard", File: "a.go", Line: 3, Col: 9, Message: "different column survives"},
		{Check: "lockguard", File: "b.go", Line: 3, Col: 4, Message: "different file survives"},
	}
	// dedup expects Run's sorted order: position, then check, then message.
	got := dedup([]Diagnostic{diags[0], diags[1], diags[2], diags[3], diags[4]})
	if len(got) != 4 {
		t.Fatalf("dedup kept %d diagnostics, want 4: %v", len(got), got)
	}
	if got[0].Message != "first" {
		t.Errorf("dedup kept %q, want the first of the identical pair", got[0].Message)
	}
}

func TestDiagnosticGitHubFormat(t *testing.T) {
	d := Diagnostic{
		Check:   "lockguard",
		File:    "internal/x/y.go",
		Line:    12,
		Col:     7,
		Message: "bad, worse: 50% broken\nsecond line",
	}
	got := d.GitHub()
	// Properties escape : and , ; the message escapes %, \r, \n only.
	want := "::error file=internal/x/y.go,line=12,col=7::lockguard: bad, worse: 50%25 broken%0Asecond line"
	if got != want {
		t.Fatalf("GitHub() = %q, want %q", got, want)
	}
}
