package lint

import (
	"strings"
)

// ignoreDirective is one parsed `//lint:ignore <checks> <reason>` comment:
// checks is a comma-separated list of check names (or "*"), and a non-empty
// reason is mandatory — a suppression without a recorded justification is
// itself a finding (the driver reports it under the "lint" pseudo-check).
type ignoreDirective struct {
	file   string
	line   int
	checks []string
}

const ignorePrefix = "//lint:ignore "

// collectIgnores parses every suppression directive in the package. A
// malformed directive is reported by appending a synthetic diagnostic via
// the returned slice's companion — here we return directives only; Run
// reports malformed ones through filterIgnored's first pass.
func collectIgnores(pkg *Package) []ignoreDirective {
	var dirs []ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				d := ignoreDirective{file: pos.Filename, line: pos.Line}
				if len(fields) >= 2 {
					d.checks = strings.Split(fields[0], ",")
				}
				// A directive without both a check list and a reason
				// suppresses nothing: its empty checks list never matches,
				// so the underlying diagnostic still surfaces.
				dirs = append(dirs, d)
			}
		}
	}
	return dirs
}

// filterIgnored drops diagnostics covered by a directive on the same line or
// the line immediately above (matching the check name or "*").
func filterIgnored(diags []Diagnostic, dirs []ignoreDirective) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	out := diags[:0]
	for _, d := range diags {
		if !suppressed(d, dirs) {
			out = append(out, d)
		}
	}
	return out
}

func suppressed(d Diagnostic, dirs []ignoreDirective) bool {
	for _, dir := range dirs {
		if !sameFile(dir.file, d.File) || (dir.line != d.Line && dir.line != d.Line-1) {
			continue
		}
		for _, c := range dir.checks {
			if c == "*" || c == d.Check {
				return true
			}
		}
	}
	return false
}

// sameFile compares a directive's (absolute) filename with a diagnostic's
// possibly working-directory-relative one by suffix.
func sameFile(dirFile, diagFile string) bool {
	return dirFile == diagFile || strings.HasSuffix(dirFile, "/"+diagFile)
}
