package lint

import (
	"go/ast"
	"go/types"
)

// checkOptMut guards the invariant PR1 broke: a by-value parameter of a
// caller-owned configuration struct (Options and friends) copies the struct
// header only — its slice and map fields still alias the caller's backing
// storage. removeAttr once filtered Options.CandidateAttrs in place and
// clobbered the caller's slice across the level loop. The check flags every
// in-place mutation that reaches the caller through such a field: element
// writes, delete, append to the field (spare capacity lands in the caller's
// array), in-place sorts, and copy-into.
var checkOptMut = &Check{
	Name: "optmut",
	Doc:  "no in-place mutation of slice/map fields of caller-owned config-struct parameters",
	Run:  runOptMut,
}

func runOptMut(pass *Pass) {
	eachFunc(pass.Package, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
		ft := decl.Type
		if lit != nil {
			ft = lit.Type
		}
		params := optStructParams(pass, ft)
		if len(params) == 0 {
			return
		}
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok && lit == nil && n != body {
				return false // literals get their own eachFunc visit
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if v, field, ok := aliasedWrite(pass, params, lhs); ok {
						pass.Reportf(lhs.Pos(),
							"writes through field %s of by-value %s parameter %s; the backing storage is the caller's",
							field, typeName(v), v.Name())
					}
				}
			case *ast.IncDecStmt:
				if v, field, ok := aliasedWrite(pass, params, n.X); ok {
					pass.Reportf(n.X.Pos(),
						"writes through field %s of by-value %s parameter %s; the backing storage is the caller's",
						field, typeName(v), v.Name())
				}
			case *ast.CallExpr:
				checkOptMutCall(pass, params, n)
			}
			return true
		})
	})
}

// optStructParams collects the function's by-value parameters whose named
// struct type matches Config.OptStructs.
func optStructParams(pass *Pass, ft *ast.FuncType) map[*types.Var]bool {
	var params map[*types.Var]bool
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			v, ok := pass.Info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			_, tn, ok := namedFrom(v.Type())
			if !ok || !pass.Cfg.OptStructs.MatchString(tn) {
				continue
			}
			if _, isStruct := v.Type().Underlying().(*types.Struct); !isStruct {
				continue
			}
			if params == nil {
				params = make(map[*types.Var]bool)
			}
			params[v] = true
		}
	}
	return params
}

// aliasedWrite reports whether writing to expr stores through caller-shared
// storage reached from a tracked parameter: the expression must bottom out
// at the parameter and cross at least one slice index, map index, or pointer
// dereference on the way (a plain field write only touches the local copy).
func aliasedWrite(pass *Pass, params map[*types.Var]bool, expr ast.Expr) (*types.Var, string, bool) {
	crossed := false
	field := ""
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.IndexExpr:
			switch pass.Info.Types[e.X].Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				crossed = true
			}
			expr = e.X
		case *ast.StarExpr:
			crossed = true
			expr = e.X
		case *ast.SelectorExpr:
			if field == "" {
				field = e.Sel.Name
			} else {
				field = e.Sel.Name + "." + field
			}
			if _, ok := pass.Info.Types[e.X].Type.Underlying().(*types.Pointer); ok {
				crossed = true
			}
			expr = e.X
		case *ast.Ident:
			if v, ok := pass.Info.Uses[e].(*types.Var); ok && params[v] && crossed && field != "" {
				return v, field, true
			}
			return nil, "", false
		default:
			return nil, "", false
		}
	}
}

// rootedField reports whether expr is a selector chain param.F(.G…) over a
// tracked parameter, returning the parameter and the dotted field path.
func rootedField(pass *Pass, params map[*types.Var]bool, expr ast.Expr) (*types.Var, string, bool) {
	field := ""
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			if field == "" {
				field = e.Sel.Name
			} else {
				field = e.Sel.Name + "." + field
			}
			expr = e.X
		case *ast.Ident:
			if v, ok := pass.Info.Uses[e].(*types.Var); ok && params[v] && field != "" {
				return v, field, true
			}
			return nil, "", false
		default:
			return nil, "", false
		}
	}
}

// checkOptMutCall flags calls that mutate a tracked parameter's slice/map
// field: delete, append (first argument), copy (destination), and the
// standard in-place sorters.
func checkOptMutCall(pass *Pass, params map[*types.Var]bool, call *ast.CallExpr) {
	report := func(arg ast.Expr, verb string) {
		if v, field, ok := rootedField(pass, params, arg); ok {
			pass.Reportf(call.Pos(), "%s field %s of by-value %s parameter %s in place; the caller sees the mutation",
				verb, field, typeName(v), v.Name())
		}
	}
	switch {
	case isBuiltin(pass.Info, call, "delete") && len(call.Args) == 2:
		report(call.Args[0], "deletes from map")
	case isBuiltin(pass.Info, call, "append") && len(call.Args) > 0:
		// A full slice expression o.F[:len:len] caps capacity, so append
		// reallocates instead of writing into the caller's array.
		if sl, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr); ok && sl.Slice3 {
			return
		}
		report(call.Args[0], "appends to slice")
	case isBuiltin(pass.Info, call, "copy") && len(call.Args) == 2:
		report(call.Args[0], "copies into slice")
	default:
		fn := calleeFunc(pass.Info, call)
		if fn == nil || len(call.Args) == 0 {
			return
		}
		if pkg := funcPkgPath(fn); pkg == "sort" || pkg == "slices" {
			switch fn.Name() {
			case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "SortFunc", "SortStableFunc", "Stable", "Reverse":
				report(call.Args[0], "sorts slice")
			}
		}
	}
}

func typeName(v *types.Var) string {
	_, name, _ := namedFrom(v.Type())
	return name
}
