package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"maps"
	"strings"
)

// frozenguard mechanizes the publish-then-freeze discipline every RCU/COW
// structure in this repository depends on: once a value flows into a publish
// sink — an atomic.Pointer Store/Swap/CompareAndSwap, the treecache insert,
// the durable manifest writer, or anything else registered in
// Config.PublishSinks — concurrent readers hold it, so every byte reachable
// from it is frozen. PR 2 (System snapshots), PR 6 (RCU row store), PR 8
// (shared projection/bitmap extension), and PR 9 (manifest structs) each
// re-derived this rule by hand, and each had a near-miss where a "done"
// object got one more touch-up after the Store. The check walks each
// function in execution order (flow.go), freezing the access paths of
// published values and their aliases, and reports any later write that lands
// inside a frozen path — directly, through a mutating builtin (append/copy/
// clear write shared backing), or through a callee whose effect summary
// (summary.go) says it mutates the argument. Rebinding a frozen variable
// (x = fresh) un-freezes it: re-pointing the name is exactly how COW is
// supposed to continue. Publishing &x is different — the pointee is x
// itself, so even a plain rebind of x is a post-publish write.
var checkFrozenGuard = &Check{
	Name: "frozenguard",
	Doc:  "no writes to a value after it was published to concurrent readers (COW/RCU freeze)",
	Run:  runFrozenGuard,
}

func runFrozenGuard(pass *Pass) {
	if !matchPkg(pass.Path, pass.Cfg.FrozenPkgs) {
		return
	}
	an := pass.substrate()
	for _, n := range an.graph.nodes {
		if n.decl == nil {
			continue // literals are walked inline from their enclosing decl
		}
		w := &frozenWalk{
			pass:   pass,
			an:     an,
			env:    newPathEnv(pass.Info),
			frozen: make(map[string]frozenRec),
		}
		flowWalk(n.body, w.ops())
	}
}

// frozenRec is one published value: where it was published, how to name it
// in diagnostics, and whether its address (rather than its value) escaped —
// in which case even rebinding the variable writes the published pointee.
type frozenRec struct {
	pos  token.Pos
	expr string
	addr bool
}

// frozenState is the flow state: frozen paths plus the pathEnv's alias and
// freshness tables (canonical keys depend on them).
type frozenState struct {
	frozen map[string]frozenRec
	alias  map[types.Object]apath
	fresh  map[types.Object]bool
}

type frozenWalk struct {
	pass   *Pass
	an     *packageAnalysis
	env    *pathEnv
	frozen map[string]frozenRec
}

func (w *frozenWalk) ops() *flowOps {
	return &flowOps{
		visit:   w.visit,
		snap:    func() any { return w.snapState() },
		restore: func(s any) { w.restoreState(s.(*frozenState)) },
		merge:   w.merge,
		isPanic: func(c *ast.CallExpr) bool { return isBuiltin(w.pass.Info, c, "panic") },
	}
}

func (w *frozenWalk) snapState() *frozenState {
	return &frozenState{
		frozen: maps.Clone(w.frozen),
		alias:  maps.Clone(w.env.alias),
		fresh:  maps.Clone(w.env.fresh),
	}
}

// restoreState installs clones — the walker keeps snapshots immutable so a
// branch's sibling can be replayed from the same point.
func (w *frozenWalk) restoreState(s *frozenState) {
	w.frozen = maps.Clone(s.frozen)
	w.env.alias = maps.Clone(s.alias)
	w.env.fresh = maps.Clone(s.fresh)
}

// merge joins branch exits: frozen paths union (a value published on either
// arm is published — earliest site wins the message), aliases and freshness
// intersect (a fact must hold on every arm to survive).
func (w *frozenWalk) merge(outs []any) {
	first := outs[0].(*frozenState)
	frozen := maps.Clone(first.frozen)
	alias := maps.Clone(first.alias)
	fresh := maps.Clone(first.fresh)
	for _, o := range outs[1:] {
		s := o.(*frozenState)
		for k, r := range s.frozen {
			if ex, ok := frozen[k]; !ok || r.pos < ex.pos {
				frozen[k] = r
			}
		}
		for obj, p := range alias {
			if q, ok := s.alias[obj]; !ok || !apathEq(p, q) {
				delete(alias, obj)
			}
		}
		for obj := range fresh {
			if !s.fresh[obj] {
				delete(fresh, obj)
			}
		}
	}
	w.restoreState(&frozenState{frozen: frozen, alias: alias, fresh: fresh})
}

// visit handles one leaf node from the flow walker in source order.
func (w *frozenWalk) visit(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			// The literal runs under some schedule we can't see (deferred,
			// goroutine, stored callback): walk it against a clone of the
			// current state so violations inside are reported but its
			// effects don't leak into this path.
			saved := w.snapState()
			flowWalk(x.Body, w.ops())
			w.restoreState(saved)
			return false
		case *ast.AssignStmt:
			w.assign(x)
		case *ast.DeclStmt:
			w.env.bindStmt(x)
		case *ast.IncDecStmt:
			w.checkWrite(x.X, x.X.Pos())
		case *ast.CallExpr:
			w.call(x)
		}
		return true
	})
}

func (w *frozenWalk) assign(x *ast.AssignStmt) {
	for _, lhs := range x.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			w.rebind(id)
			continue
		}
		w.checkWrite(lhs, lhs.Pos())
	}
	w.env.bindStmt(x)
}

// rebind handles assignment to a plain identifier: if its address was
// published, the rebind writes the published pointee; otherwise a rebind
// re-points the name at new storage, un-freezing it.
func (w *frozenWalk) rebind(id *ast.Ident) {
	if id.Name == "_" {
		return
	}
	obj := w.pass.Info.Uses[id]
	if obj == nil {
		obj = w.pass.Info.Defs[id]
	}
	if obj == nil {
		return
	}
	if _, aliased := w.env.alias[obj]; aliased {
		return // re-points the alias; bindStmt records the new target
	}
	k := w.env.key(apath{root: obj})
	if rec, ok := w.frozen[k]; ok && rec.addr {
		w.pass.Reportf(id.Pos(),
			"write to %s after &%s was published at line %d; published state is frozen (copy-on-write)",
			id.Name, rec.expr, w.line(rec.pos))
		return
	}
	delete(w.frozen, k)
	for fk := range w.frozen { // deeper paths through the old value are gone
		if strings.HasPrefix(fk, k+".") {
			delete(w.frozen, fk)
		}
	}
}

// checkWrite reports a write whose target lies inside a frozen path. An
// exact match on a value-published (non-addr, non-indirect) path is a field
// rebind — the published pointee is untouched — and un-freezes instead.
func (w *frozenWalk) checkWrite(lv ast.Expr, pos token.Pos) {
	p, ok := w.env.resolve(lv)
	if !ok {
		return
	}
	k := w.env.key(p)
	for fk, rec := range w.frozen {
		if fk != k && !strings.HasPrefix(k, fk+".") {
			continue
		}
		if fk == k && !rec.addr && !p.deref {
			delete(w.frozen, k)
			return
		}
		w.pass.Reportf(pos,
			"write to %s mutates %s, published at line %d; published state is frozen (copy-on-write)",
			p.display(), rec.expr, w.line(rec.pos))
		return
	}
}

func (w *frozenWalk) call(x *ast.CallExpr) {
	info := w.pass.Info
	// Mutating builtins write the shared backing of their destination:
	// append into spare capacity, copy and clear in place.
	if isBuiltin(info, x, "append") || isBuiltin(info, x, "copy") || isBuiltin(info, x, "clear") {
		if len(x.Args) > 0 {
			w.checkBacking(x.Args[0], x.Pos())
		}
	}
	// Callee effect summaries: passing a frozen path to a function that
	// writes through that parameter is a post-publish write at a distance.
	if callee := w.an.graph.resolveCallee(x.Fun); callee != nil {
		cs := w.an.sums[callee]
		args := callArgSlots(info, x, callee)
		for i := 0; i < len(cs.mutates) && i < len(args); i++ {
			if args[i] == nil {
				continue
			}
			if cs.mutates[i] {
				w.checkCallArg(args[i], callee.name, x.Pos())
			}
			if cs.publishes[i] {
				w.freeze(args[i], x.Pos())
			}
		}
	}
	// Direct publish sinks freeze their value argument.
	for _, arg := range publishTargets(w.pass, x) {
		w.freeze(arg, x.Pos())
	}
}

// checkBacking reports a mutating builtin whose destination overlaps a
// frozen path (no rebind exemption: the builtin writes through).
func (w *frozenWalk) checkBacking(dst ast.Expr, pos token.Pos) {
	p, ok := w.env.resolve(dst)
	if !ok {
		return
	}
	k := w.env.key(p)
	for fk, rec := range w.frozen {
		if fk == k || strings.HasPrefix(k, fk+".") {
			w.pass.Reportf(pos,
				"append/copy/clear writes the backing of %s, published at line %d; published state is frozen (copy-on-write)",
				p.display(), w.line(rec.pos))
			return
		}
	}
}

func (w *frozenWalk) checkCallArg(arg ast.Expr, callee string, pos token.Pos) {
	p, ok := w.env.resolve(arg)
	if !ok {
		return
	}
	k := w.env.key(p)
	for fk, rec := range w.frozen {
		if fk == k || strings.HasPrefix(k, fk+".") {
			w.pass.Reportf(pos,
				"call to %s mutates %s, published at line %d; published state is frozen (copy-on-write)",
				callee, p.display(), w.line(rec.pos))
			return
		}
	}
}

// freeze records a published value. &x freezes x with addr semantics; a
// value publish freezes the path itself. First publish site wins.
func (w *frozenWalk) freeze(arg ast.Expr, pos token.Pos) {
	e := ast.Unparen(arg)
	addr := false
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		addr = true
		e = u.X
	}
	p, ok := w.env.resolve(e)
	if !ok {
		return
	}
	k := w.env.key(p)
	if _, ok := w.frozen[k]; !ok {
		w.frozen[k] = frozenRec{pos: pos, expr: p.display(), addr: addr}
	}
	delete(w.env.fresh, p.root) // published means shared
}

func (w *frozenWalk) line(pos token.Pos) int {
	return w.pass.Fset.Position(pos).Line
}
