package lint

import (
	"go/ast"
)

// checkRecoverBound guards the panic-isolation architecture (PR4): panics on
// the serving path are demoted to *resilience.PanicError at designated
// boundaries so one poisoned request cannot tear down the process — and so
// every singleflight waiter sees the same error. Two rules follow:
//
//  1. bare recover() belongs only to the approved boundary packages
//     (internal/resilience); everyone else composes resilience.Protect so
//     boundaries stay uniform and countable;
//  2. goroutines spawned in the serving packages must pass through such a
//     boundary — a protect-style call or a deferred recover — because a
//     panic in a bare goroutine skips every enclosing boundary and kills
//     the process no matter how well the request path is protected.
var checkRecoverBound = &Check{
	Name: "recoverbound",
	Doc:  "recover() only in approved boundary packages; serving-path goroutines must run behind a protect boundary",
	Run:  runRecoverBound,
}

func runRecoverBound(pass *Pass) {
	allowRecover := matchPkg(pass.Path, pass.Cfg.RecoverPkgs)
	boundary := matchPkg(pass.Path, pass.Cfg.BoundaryPkgs)
	if allowRecover && !boundary {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if !allowRecover && isBuiltin(pass.Info, n, "recover") {
					pass.Reportf(n.Pos(),
						"bare recover() outside the approved boundary packages; demote panics with resilience.Protect")
				}
			case *ast.GoStmt:
				if boundary && !goHasBoundary(pass, n.Call) {
					pass.Reportf(n.Pos(),
						"goroutine on the serving path lacks a recover boundary; run its body through resilience.Protect or a deferred recover")
				}
			}
			return true
		})
	}
}

// goHasBoundary reports whether the spawned call runs behind a panic
// boundary: its body (function literal, or same-package declared function)
// contains a call to a protect-style function or a deferred recover.
func goHasBoundary(pass *Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return bodyHasBoundary(pass, fun.Body)
	case *ast.Ident:
		if pass.Cfg.ProtectFuncs.MatchString(fun.Name) {
			return true
		}
		if body := declaredBody(pass, fun); body != nil {
			return bodyHasBoundary(pass, body)
		}
	case *ast.SelectorExpr:
		if pass.Cfg.ProtectFuncs.MatchString(fun.Sel.Name) {
			return true
		}
	}
	return false
}

func bodyHasBoundary(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if pass.Cfg.ProtectFuncs.MatchString(fun.Name) {
				found = true
			}
		case *ast.SelectorExpr:
			if pass.Cfg.ProtectFuncs.MatchString(fun.Sel.Name) {
				found = true
			}
		}
		if isBuiltin(pass.Info, call, "recover") {
			found = true
		}
		return !found
	})
	return found
}

// declaredBody resolves an identifier to a same-package function
// declaration's body.
func declaredBody(pass *Pass, id *ast.Ident) *ast.BlockStmt {
	obj := pass.Info.Uses[id]
	if obj == nil {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil && pass.Info.Defs[fd.Name] == obj {
				return fd.Body
			}
		}
	}
	return nil
}
