// Package optmut fixtures the caller-owned-options mutation check: functions
// taking Options-like structs by value must not write through their slice or
// map fields, because the backing stores are shared with the caller.
package optmut

import (
	"sort"
	"strings"
)

type Sub struct {
	Attrs []string
}

type Options struct {
	CandidateAttrs []string
	Weights        map[string]int
	Nested         Sub
	MaxBuckets     int
}

// mutateElement writes through a slice field of a by-value Options: the
// caller's backing array changes. Finding.
func mutateElement(o Options) {
	o.CandidateAttrs[0] = "" // want `writes through field CandidateAttrs of by-value Options parameter o`
}

// mutateSort sorts a slice field in place. Finding.
func mutateSort(o Options) {
	sort.Strings(o.CandidateAttrs) // want `sorts slice field CandidateAttrs of by-value Options parameter o in place`
}

// mutateDelete deletes from a map field. Finding.
func mutateDelete(o Options, k string) {
	delete(o.Weights, k) // want `deletes from map field Weights of by-value Options parameter o`
}

// mutateAppend appends to a slice field: with spare capacity this overwrites
// the caller's elements. Finding.
func mutateAppend(o Options) []string {
	return append(o.CandidateAttrs, "extra") // want `appends to slice field CandidateAttrs of by-value Options parameter o`
}

// mutateNested reaches the shared store through a nested struct field.
// Finding.
func mutateNested(o Options) {
	o.Nested.Attrs[0] = "" // want `writes through field Nested\.Attrs of by-value Options parameter o`
}

// mutateCopyInto copies into a slice field's backing array. Finding.
func mutateCopyInto(o Options, src []string) {
	copy(o.CandidateAttrs, src) // want `copies into slice field CandidateAttrs of by-value Options parameter o`
}

// freshCopy allocates before mutating: the caller's store is untouched.
// Clean.
func freshCopy(o Options) []string {
	out := make([]string, len(o.CandidateAttrs))
	copy(out, o.CandidateAttrs)
	sort.Strings(out)
	return out
}

// cappedAppend uses a full slice expression, so append cannot write into the
// caller's spare capacity. Clean.
func cappedAppend(o Options) []string {
	return append(o.CandidateAttrs[:len(o.CandidateAttrs):len(o.CandidateAttrs)], "extra")
}

// pointerParam takes *Options: mutation through an explicit pointer is the
// caller opting in. Clean.
func pointerParam(o *Options) {
	o.CandidateAttrs[0] = strings.ToLower(o.CandidateAttrs[0])
}

// scalarField assigns a plain value field of the local copy: invisible to the
// caller. Clean.
func scalarField(o Options) Options {
	o.MaxBuckets = 8
	return o
}
