// Package snapshotguard fixtures the atomic-field discipline behind the
// snapshot-swap concurrency model: sync/atomic-typed struct fields may only
// be touched through their methods.
package snapshotguard

import "sync/atomic"

type System struct {
	Gen int
}

type Adaptive struct {
	cur     atomic.Pointer[System]
	learned atomic.Int64
}

// Snapshot loads through the method. Clean.
func (a *Adaptive) Snapshot() *System {
	return a.cur.Load()
}

// Publish stores through the method. Clean.
func (a *Adaptive) Publish(s *System) {
	a.cur.Store(s)
	a.learned.Add(1)
}

// rebind assigns one atomic field to another: both the copy and the source
// read bypass the methods. Two findings on one line.
func rebind(a, b *Adaptive) {
	a.cur = b.cur // want `atomic field cur used outside a method call`
}

// escape smuggles the field's address out, defeating the "methods only"
// contract. Finding.
func escape(a *Adaptive) *atomic.Int64 {
	return &a.learned // want `atomic field learned used outside a method call`
}

// copyOut returns the atomic by value, forking the counter. Finding.
func copyOut(a *Adaptive) int64 {
	v := a.learned // want `atomic field learned used outside a method call`
	return v.Load()
}

// seedLiteral initializes an atomic field from a copied value: the literal
// key and the source read are each findings.
func seedLiteral(b *Adaptive) *Adaptive {
	return &Adaptive{cur: b.cur} // want `composite literal initializes atomic field cur by value` `atomic field cur used outside a method call`
}

// globalCounter is a package-level atomic, not a struct field: the snapshot
// guard does not govern it. Clean.
var globalCounter atomic.Int64

func bump() int64 {
	globalCounter.Add(1)
	return globalCounter.Load()
}
