// Package warmguard fixtures the warmer/snapshot accessor discipline: code
// in warm-named functions must take the current snapshot through an
// accessor, never by reading the snapshot owner's fields directly. The
// mirror types use plain fields — warmguard's point is the accessor
// boundary; the real fields' atomicity is snapshotguard's beat.
package warmguard

type System struct{ Gen int }

// AdaptiveSystem mirrors the real snapshot owner.
type AdaptiveSystem struct {
	cur     *System
	learned int64
}

// System is the accessor warm-path code must go through. Clean (and not
// warm-named anyway).
func (a *AdaptiveSystem) System() *System { return a.cur }

// StopWarmer is warm-named, but its receiver IS the snapshot owner: the
// accessors themselves necessarily touch the fields. Clean.
func (a *AdaptiveSystem) StopWarmer() *System { return a.cur }

type Warmer struct {
	a      *AdaptiveSystem
	cycles int
}

// warmCycle takes the snapshot through the accessor and only then reads it.
// Clean: System is not a snapshot-owner type.
func (w *Warmer) warmCycle() int {
	sys := w.a.System()
	w.cycles++
	return sys.Gen
}

// warmPeek reads the snapshot pointer straight off the owner, racing the
// publishing store. Finding.
func (w *Warmer) warmPeek() *System {
	return w.a.cur // want `warmer code reads AdaptiveSystem.cur directly`
}

// warmCount is a free function on the warm path reading a counter field
// directly. Finding.
func warmCount(a *AdaptiveSystem) int64 {
	return a.learned // want `warmer code reads AdaptiveSystem.learned directly`
}

// warmSpawn hides the direct read inside a goroutine's function literal;
// the literal is still warm-path code. Finding.
func warmSpawn(w *Warmer, out chan<- *System) {
	go func() {
		out <- w.a.cur // want `warmer code reads AdaptiveSystem.cur directly`
	}()
}

// serveTick is not warm-named: direct reads here are outside this check's
// scope (the real owner's atomic fields answer to snapshotguard). Clean.
func serveTick(a *AdaptiveSystem) int64 {
	return a.learned
}
