// Package clean is the all-negative fixture: code adjacent to every check's
// pattern that must produce zero diagnostics, proving the checks stay scoped
// (hottime and ctxpoll to their packages, nocopy to the serving path) and
// that suppressions silence true positives.
package clean

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

type Options struct {
	CandidateAttrs []string
}

// pointerOpts mutates through an explicit *Options: the caller opted in.
func pointerOpts(o *Options) {
	sort.Strings(o.CandidateAttrs)
}

// copyFirst snapshots before sorting: the caller's slice is untouched.
func copyFirst(o Options) []string {
	out := append([]string(nil), o.CandidateAttrs...)
	sort.Strings(out)
	return out
}

// timing reads the raw clock — fine here, this package is not a hot-path
// package.
func timing() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// spawn launches a silent goroutine — fine here, this package neither fans
// out categorizer work nor sits on the serving path.
func spawn() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
}

// suppressedKey formats a float on a key-named path under a recorded
// suppression: the sigfloat finding exists but is silenced with a reason.
func suppressedKey(x float64) string {
	//lint:ignore sigfloat fixture: debug-only key spelling, never fed to a cache
	return fmt.Sprintf("%g", x)
}

// renderFloat formats a float off the signature path: the function name
// matches neither sig nor key, so sigfloat does not apply.
func renderFloat(x float64) string {
	return fmt.Sprintf("%.2f", x)
}
