// Package sigfloat fixtures the signature-float check: functions on the
// signature/cache-key path (name matches (?i)(sig|key)) must not spell floats
// with fmt or strconv float formatting — only the canonical SigNum speller.
package sigfloat

import (
	"fmt"
	"strconv"
	"strings"
)

// cacheKey formats a float with fmt on the key path: %g drops precision and
// collides distinct values. Finding.
func cacheKey(k float64, m int) string {
	return fmt.Sprintf("%d|%g", m, k) // want `fmt\.Sprintf formats a float in a signature/cache-key path`
}

// writeSignature spells a float with strconv on the signature path. Finding.
func writeSignature(b *strings.Builder, x float64) {
	b.WriteString(strconv.FormatFloat(x, 'g', -1, 64)) // want `strconv\.FormatFloat in a signature/cache-key path`
}

// appendKeyPart uses AppendFloat. Finding.
func appendKeyPart(dst []byte, x float64) []byte {
	return strconv.AppendFloat(dst, x, 'g', -1, 64) // want `strconv\.AppendFloat in a signature/cache-key path`
}

// signatureInts formats only integers on the key path. Clean.
func signatureInts(m, n int) string {
	return fmt.Sprintf("%d|%d", m, n)
}

// render is not on the signature path (name matches neither sig nor key), so
// float formatting is fine here. Clean.
func render(x float64) string {
	return fmt.Sprintf("x=%g", x)
}
