// Package segguard fixtures the segment-page immutability boundary: outside
// internal/relation a CatColumn's Codes/Dict slices are read-only views of
// sealed, shared segment pages — writes, appends, and copies into them must
// be flagged, plain reads never.
package segguard

// CatColumn mirrors the real dictionary-encoded column: Codes and Dict alias
// backing arrays shared with every published snapshot of the relation.
type CatColumn struct {
	Codes []uint32
	Dict  []string
}

// decode reads through both guarded fields. Clean: reads are the normal case.
func decode(c *CatColumn, i int) string {
	return c.Dict[c.Codes[i]]
}

// histogram ranges over a guarded field and slices it as a source. Clean.
func histogram(c *CatColumn, lo, hi int) []int {
	counts := make([]int, len(c.Dict))
	for _, code := range c.Codes[lo:hi] {
		counts[code]++
	}
	return counts
}

// snapshotCodes copies OUT of the page into a private buffer. Clean: the
// guarded field is the copy source, not the destination.
func snapshotCodes(c *CatColumn) []uint32 {
	out := make([]uint32, len(c.Codes))
	copy(out, c.Codes)
	return out
}

// stompCode writes an element in place, tearing every reader sharing the
// page. Finding.
func stompCode(c *CatColumn) {
	c.Codes[0] = 7 // want `write through CatColumn\.Codes outside internal/relation`
}

// bumpCode mutates through an IncDecStmt. Finding.
func bumpCode(c *CatColumn, i int) {
	c.Codes[i]++ // want `write through CatColumn\.Codes outside internal/relation`
}

// renameValue rewrites a dictionary entry, silently re-labelling every row
// holding its code. Finding.
func renameValue(c *CatColumn, code uint32) {
	c.Dict[code] = "renamed" // want `write through CatColumn\.Dict outside internal/relation`
}

// rebindCodes swaps the column's page pointer out from under the relation.
// Finding.
func rebindCodes(c *CatColumn, codes []uint32) {
	c.Codes = codes // want `write through CatColumn\.Codes outside internal/relation`
}

// growDict appends into the dictionary — with spare capacity this writes
// into the sealed backing the relation reserved for its own extension path.
// Finding.
func growDict(c *CatColumn) []string {
	return append(c.Dict, "extra") // want `append to CatColumn\.Dict outside internal/relation`
}

// overwritePrefix copies INTO a resliced page. Finding.
func overwritePrefix(c *CatColumn, src []uint32) {
	copy(c.Codes[:len(src)], src) // want `copy into CatColumn\.Codes outside internal/relation`
}

// privateColumn mutates a type that is not a guarded page carrier. Clean.
type privateColumn struct {
	Codes []uint32
}

func stompPrivate(p *privateColumn) {
	p.Codes[0] = 1
}
