// frozen.go seeds the frozenguard fixture: publish-then-write in every
// shape the check must catch — direct writes, writes through an alias,
// mutation at a distance through a callee's effect summary, appends into
// published backing, and rebinds of a variable whose address escaped — plus
// the legal COW idioms (copy-then-publish, rebind-then-continue) that must
// stay quiet.
package relation

import "sync/atomic"

// treeNode mirrors a published category-tree node.
type treeNode struct {
	label string
	kids  []*treeNode
}

// relstate mirrors the RCU publication points of the real Relation.
type relstate struct {
	rows atomic.Pointer[[]int]
	tree atomic.Pointer[treeNode]
}

// publishThenWrite stores the address of rows and then writes an element:
// every reader that loaded the pointer sees the mutation.
func publishThenWrite(r *relstate) {
	next := make([]int, 8)
	r.rows.Store(&next)
	next[0] = 1 // want `write to next mutates next, published at line \d+`
}

// publishThenMutateField publishes a node pointer and then touches a field
// through it.
func publishThenMutateField(r *relstate) {
	n := &treeNode{label: "a"}
	r.tree.Store(n)
	n.label = "b" // want `write to n.label mutates n, published at line \d+`
}

// publishThenAliasWrite mutates the published node through a second name;
// the alias table folds both spellings onto the same storage.
func publishThenAliasWrite(r *relstate) {
	n := &treeNode{}
	other := n
	r.tree.Store(n)
	other.label = "x" // want `write to n.label mutates n, published at line \d+`
}

// zeroInts writes through its parameter: its effect summary marks slot 0 as
// mutated, so passing a frozen slice to it is a post-publish write.
func zeroInts(xs []int) {
	for i := range xs {
		xs[i] = 0
	}
}

// publishThenCallMutator mutates at a distance through the summary.
func publishThenCallMutator(r *relstate) {
	xs := make([]int, 4)
	r.rows.Store(&xs)
	zeroInts(xs) // want `call to zeroInts mutates xs, published at line \d+`
}

// publishThenAppend writes spare capacity shared with the published slice.
func publishThenAppend(r *relstate) {
	xs := make([]int, 0, 8)
	r.rows.Store(&xs)
	_ = append(xs, 1) // want `append/copy/clear writes the backing of xs, published at line \d+`
}

// publishAddrThenRebind rebinds a variable whose address was published:
// readers hold &xs, so the rebind is a write to the published pointee.
func publishAddrThenRebind(r *relstate) {
	xs := make([]int, 1)
	r.rows.Store(&xs)
	xs = nil // want `write to xs after &xs was published at line \d+`
}

// branchPublish publishes on one arm only; the join is a union, because a
// value published on either path is frozen afterwards.
func branchPublish(r *relstate, hot bool) {
	n := &treeNode{}
	if hot {
		r.tree.Store(n)
	}
	n.label = "late" // want `write to n.label mutates n, published at line \d+`
}

// cowExtend is the sanctioned discipline: build the successor completely,
// publish it last, never touch it again. Must stay quiet.
func cowExtend(r *relstate) {
	old := r.tree.Load()
	next := &treeNode{label: "v2"}
	if old != nil {
		next.kids = append(next.kids, old.kids...)
	}
	r.tree.Store(next)
}

// rebindContinues is the other legal idiom: publishing the value and then
// re-pointing the name at fresh storage starts the next COW round.
func rebindContinues(r *relstate) {
	n := &treeNode{label: "gen1"}
	r.tree.Store(n)
	n = &treeNode{label: "gen2"}
	n.label = "gen2-fixup"
	r.tree.Store(n)
}
