package relation

// CatColumn mirrors the real dictionary-encoded column for the segguard
// scoping proof: this package's import path contains "internal/relation", so
// the in-place page writes below are the sanctioned extension path and must
// stay clean.
type CatColumn struct {
	Codes []uint32
	Dict  []string
}

// extendCodes is the relation-side extension idiom: write into spare
// capacity, republish. Clean — segguard exempts this package.
func extendCodes(c *CatColumn, code uint32) {
	c.Codes = append(c.Codes, code)
	c.Codes[len(c.Codes)-1] = code
	c.Dict[0] = c.Dict[0]
}
