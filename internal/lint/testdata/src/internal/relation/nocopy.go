// Package relation is the serving-path fixture mirror for the nocopy and
// sigfloat checks: its import path contains "internal/relation", so Bitmap is
// a designated no-copy type here and SigNum is the approved float speller.
package relation

import (
	"strconv"
	"sync"
	"sync/atomic"
)

// Bitmap mirrors the real dense bitset: words alias on copy while length
// copies by value, so a by-value Bitmap is half-shared, half-forked.
type Bitmap struct {
	words []uint64
	n     int
}

// lruState mirrors the conjunct-LRU bookkeeping guarded by a mutex.
type lruState struct {
	mu    sync.Mutex
	order []string
}

// counters mirrors the selection counters.
type counters struct {
	selects atomic.Uint64
}

// byValueParam takes the designated no-copy type by value. Finding.
func byValueParam(b Bitmap) int { // want `parameter passes relation\.Bitmap by value; it is a designated no-copy reference type`
	return b.n
}

// byValueReceiver and its by-value result double the offense. Two findings on
// one signature line.
func (b Bitmap) byValueReceiver() Bitmap { // want `receiver passes relation\.Bitmap by value` `result passes relation\.Bitmap by value`
	return b
}

// lockByValue forks the mutex. Finding.
func lockByValue(s lruState) int { // want `parameter passes relation\.lruState by value; it contains sync\.Mutex state`
	return len(s.order)
}

// countersByValue forks the atomic counter. Finding.
func countersByValue(c counters) { // want `parameter passes relation\.counters by value; it contains atomic\.Uint64 state`
	_ = c
}

// viaPointer moves everything by pointer. Clean.
func viaPointer(b *Bitmap, s *lruState, c *counters) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return b.n + len(s.order) + int(c.selects.Load())
}

// SigNum mirrors the real canonical float speller: its qualified name matches
// SigNumFuncs, so its strconv.FormatFloat call is the one sanctioned site
// even though the function name matches the sig/key pattern. Clean.
func SigNum(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64)
}
