// Package durable mirrors the real durable store for the fsyncguard
// exemption: this package IS the sanctioned write path, so its direct
// os.Create/os.WriteFile/O_CREATE uses must produce no diagnostics.
package durable

import "os"

// writeSegment creates a segment file the sanctioned way (tmp, fsync,
// rename — elided here; the fixture pins only the scoping). Clean.
func writeSegment(path string, page []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(page); err != nil {
		return err
	}
	return f.Sync()
}

// writeManifestTmp one-shots the manifest temp file. Clean.
func writeManifestTmp(path string, m []byte) error {
	return os.WriteFile(path, m, 0o644)
}

// createWAL opens the log with O_CREATE. Clean.
func createWAL(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}
