package relation

import "os"

// The durable write protocol boundary (fsyncguard): in the library packages
// every persistent file goes through internal/relation/durable; a raw
// os.Create/os.WriteFile/O_CREATE open here ships a file a crash can tear.

// spillRaw creates a data file directly. Finding.
func spillRaw(path string, payload []byte) error {
	f, err := os.Create(path) // want `raw os\.Create in relation writes a file outside the durable store's write path`
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(payload)
	return err
}

// dumpRaw one-shots a data file. Finding.
func dumpRaw(path string, payload []byte) error {
	return os.WriteFile(path, payload, 0o644) // want `raw os\.WriteFile in relation writes a file outside the durable store's write path`
}

// openCreating opens with O_CREATE in a composite flag expression. Finding.
func openCreating(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644) // want `raw os\.OpenFile in relation writes a file outside the durable store's write path`
}

// readBack opens an existing file read-only. Clean: only creation is guarded.
func readBack(path string) (*os.File, error) {
	return os.Open(path)
}

// appendExisting opens an existing file for append without O_CREATE. Clean.
func appendExisting(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
}

// exportRaw is a deliberate non-data write, suppressed with a reason. Clean.
func exportRaw(path string, report []byte) error {
	//lint:ignore fsyncguard operator-facing report, not store data
	return os.WriteFile(path, report, 0o644)
}
