package category

import (
	"context"
	"sync"
)

// fanOutNoPoll spawns workers that never observe cancellation: each spawn is
// a finding.
func fanOutNoPoll(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() { // want `goroutine never polls cancellation`
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// fanOutDirectPoll polls ctx.Err in the worker body: clean.
func fanOutDirectPoll(ctx context.Context, items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
		}()
	}
	wg.Wait()
}

// fanOutViaLocalHelper mirrors the real bestPlan worker pool: the goroutine
// pulls work through a local closure that polls the approved helper. Clean.
func fanOutViaLocalHelper(ctx context.Context, items []int) {
	eval := func(i int) {
		if ctxExpired(ctx) != nil {
			return
		}
		_ = items[i]
	}
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eval(i)
		}()
	}
	wg.Wait()
}

// fanOutNamed launches declared workers: the transitively-polling one is
// clean, the silent one is a finding.
func fanOutNamed(ctx context.Context) {
	go pollingWorker(ctx)
	go silentWorker() // want `goroutine never polls cancellation`
}

func pollingWorker(ctx context.Context) {
	for {
		if ctxExpired(ctx) != nil {
			return
		}
	}
}

func silentWorker() { select {} }

// shardCountNoPoll mirrors the shard-parallel partition fan-out
// (shardedPartitionNode) with the cancellation poll forgotten: each span
// worker is a finding.
func shardCountNoPoll(spans [][2]int, codes []uint32, card int) [][]int32 {
	counts := make([][]int32, len(spans))
	var wg sync.WaitGroup
	for j, sp := range spans {
		wg.Add(1)
		go func() { // want `goroutine never polls cancellation`
			defer wg.Done()
			cnt := make([]int32, card)
			for _, c := range codes[sp[0]:sp[1]] {
				cnt[c]++
			}
			counts[j] = cnt
		}()
	}
	wg.Wait()
	return counts
}

// shardCountPolling is the correct shape: every span worker checks the
// approved helper before touching its span. Clean.
func shardCountPolling(ctx context.Context, spans [][2]int, codes []uint32, card int) [][]int32 {
	counts := make([][]int32, len(spans))
	var wg sync.WaitGroup
	for j, sp := range spans {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if ctxExpired(ctx) != nil {
				return
			}
			cnt := make([]int32, card)
			for _, c := range codes[sp[0]:sp[1]] {
				cnt[c]++
			}
			counts[j] = cnt
		}()
	}
	wg.Wait()
	return counts
}
