// Package category is the hot-path fixture mirror: its import path contains
// "internal/category", so the ctxpoll and hottime checks scope to it exactly
// as they do to the real categorizer.
package category

import (
	"context"
	"time"
)

// ctxExpired mirrors the real approved soft-budget poll site: its qualified
// name matches HotApprovedFuncs, so the wall-clock read is sanctioned.
func ctxExpired(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
		return context.DeadlineExceeded
	}
	return nil
}

// hotLoop reads the raw clock in a hot-path package: both reads are findings.
func hotLoop(rows []int) time.Duration {
	start := time.Now() // want `raw time\.Now in hot-path package`
	for range rows {
		_ = start
	}
	return time.Since(start) // want `raw time\.Since in hot-path package`
}

// timerLoop constructs a runtime timer in a hot-path package: finding.
func timerLoop() {
	t := time.NewTimer(time.Second) // want `raw time\.NewTimer in hot-path package`
	t.Stop()
}

// instrumented carries a justified suppression: the finding is recorded in
// the source but silenced — the negative half of the hottime fixture.
func instrumented(rows []int) int64 {
	//lint:ignore hottime fixture: deliberate one-shot instrumentation with a recorded reason
	start := time.Now()
	n := int64(0)
	for range rows {
		n++
	}
	_ = start
	return n
}
