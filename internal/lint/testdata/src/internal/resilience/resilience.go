// Package resilience is the negative fixture for the recoverbound check: its
// import path contains "internal/resilience", the one place bare recover()
// is the point rather than a smell. Nothing in this file wants a diagnostic.
package resilience

// Guard runs fn and demotes a panic to an error — the approved boundary
// shape. Its bare recover is legal here.
func Guard(fn func() error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = asError(p)
		}
	}()
	return fn()
}

type panicError struct{ v any }

func (p *panicError) Error() string { return "panic" }

func asError(v any) error { return &panicError{v: v} }
