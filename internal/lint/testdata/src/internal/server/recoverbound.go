// Package server is the serving-path fixture mirror for the recoverbound
// check: its import path contains "internal/server", so goroutines spawned
// here must run behind a protect boundary, and bare recover() is still
// forbidden (only internal/resilience may recover directly).
package server

func work() {}

// spawnUnprotected launches a bare goroutine on the serving path: a panic in
// it skips every request-level boundary and kills the process. Finding.
func spawnUnprotected() {
	go func() { // want `goroutine on the serving path lacks a recover boundary`
		work()
	}()
}

// spawnProtected routes the body through a protect-style call. Clean.
func spawnProtected() {
	go func() {
		protectRun(work)
	}()
}

// spawnDeferredRecover carries its own deferred recover: the goroutine is
// bounded, but the bare recover() itself belongs only to the resilience
// package — that line is the finding.
func spawnDeferredRecover() {
	go func() {
		defer func() {
			_ = recover() // want `bare recover\(\) outside the approved boundary packages`
		}()
		work()
	}()
}

// spawnNamed launches declared workers: the one whose body reaches a protect
// call is clean, the bare one is a finding.
func spawnNamed() {
	go protectedWorker()
	go bareWorker() // want `goroutine on the serving path lacks a recover boundary`
}

func protectedWorker() {
	protectRun(work)
}

func bareWorker() {
	work()
}

// protectRun mirrors the resilience.Protect boundary for the fixture; its
// local recover is suppressed with a recorded reason, demonstrating the
// recoverbound suppression path.
func protectRun(fn func()) {
	defer func() {
		//lint:ignore recoverbound fixture: local stand-in for resilience.Protect so the boundary shape is self-contained
		_ = recover()
	}()
	fn()
}
