// Package treecache is the lockguard fixture mirror: a mutex-guarded cache
// shape annotated with //lint:guardedby, seeded with the violations the
// check must catch (unlocked direct access, an unlocked call path into a
// locked-caller helper, goroutine capture without re-locking) and the legal
// idioms that must stay quiet (lock/unlock-on-branch-return, deferred
// unlock, helpers only reached with the lock held, constructors touching
// fresh unshared state).
package treecache

import "sync"

// store mirrors the real cache's guarded interior.
type store struct {
	mu sync.Mutex
	//lint:guardedby mu
	table map[string]int
	//lint:guardedby mu
	hits int
}

// BadDirect touches guarded state with no lock on any path in.
func (s *store) BadDirect() {
	s.table["k"] = 1 // want `store.table is guarded by mu, and no path to this access holds the lock`
}

// bump requires its caller to hold the lock; GoodCaller discharges the
// requirement, BadCaller does not, so the violations surface here.
func (s *store) bump(k string) {
	s.hits++            // want `store.hits is guarded by mu, and no path to this access holds the lock`
	s.table[k] = s.hits // want `store.table is guarded by mu` `store.hits is guarded by mu`
}

// GoodCaller holds the lock across the helper: requirement discharged.
func (s *store) GoodCaller(k string) {
	s.mu.Lock()
	s.bump(k)
	s.mu.Unlock()
}

// BadCaller reaches bump without the lock.
func (s *store) BadCaller(k string) {
	s.bump(k)
}

// Get is the branch-unlock idiom the flow walker must understand: the early
// return leaves the critical section, the fallthrough path unlocks too.
func (s *store) Get(k string) (int, bool) {
	s.mu.Lock()
	if v, ok := s.table[k]; ok {
		s.mu.Unlock()
		return v, true
	}
	s.mu.Unlock()
	return 0, false
}

// Len uses the deferred-unlock idiom: held to function exit.
func (s *store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.table)
}

// protectRun mirrors the resilience boundary the serving path wraps spawned
// goroutines in (recoverbound's contract).
func protectRun(f func()) {
	f()
}

// SpawnBad captures guarded state in a goroutine without re-locking: the
// spawner's (absent) lock would not travel into the goroutine anyway.
func (s *store) SpawnBad() {
	go protectRun(func() {
		s.hits++ // want `goroutine accesses store.hits \(guarded by mu\) without holding the lock`
	})
}

// SpawnGood re-locks inside the goroutine, like the real cache's fill path.
func (s *store) SpawnGood() {
	go protectRun(func() {
		s.mu.Lock()
		s.hits++
		s.mu.Unlock()
	})
}

// NewStore touches fields of a fresh, unshared object — no lock needed —
// and the freshness fact follows the object through the call to seed.
func NewStore() *store {
	s := &store{table: make(map[string]int)}
	s.hits = 1
	s.seed()
	return s
}

// seed is only ever reached with a fresh receiver.
func (s *store) seed() {
	s.table["boot"] = 0
}

// badAnno's annotation names a non-mutex field: the annotation itself is the
// finding, and the field is not registered as guarded.
type badAnno struct {
	mu sync.Mutex
	//lint:guardedby mux
	n int // want `guardedby names "mux", which is not a sync.Mutex/RWMutex field of badAnno`
}

// onEvict mirrors the callback-under-lock idiom (durable.Store.onSeal): it
// is fired from code outside the package while the caller holds s.mu, which
// the call graph cannot see. The holds assertion records that contract, so
// its accesses — and its call into the locked-caller helper — stay quiet.
//
//lint:holds mu
func (s *store) onEvict(k string) {
	s.hits--
	s.bump(k)
}

// badHolds asserts a field that is not a mutex of the receiver: the
// assertion itself is the finding.
//
//lint:holds hits
func (s *store) badHolds() {} // want `lint:holds names "hits", which is not a sync.Mutex/RWMutex field of the receiver`

// rwstore exercises RWMutex read-side locking.
type rwstore struct {
	mu sync.RWMutex
	//lint:guardedby mu
	snap []int
}

// Read holds the read lock via deferred RUnlock: quiet.
func (s *rwstore) Read() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.snap)
}
