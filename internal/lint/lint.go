// Package lint is catlint's engine: a stdlib-only static-analysis driver
// (go/parser, go/ast, go/types) with project-specific checks, each derived
// from a bug class this repository has already shipped a fix for (see
// DESIGN.md §11). The generic analyzer frameworks live outside the stdlib,
// so the driver loads packages itself: `go list -export -deps -json`
// supplies the file sets and the build cache's export data, and go/types
// type-checks the target packages from source against that export data.
//
// Diagnostics are reported per position and can be suppressed line-by-line
// with `//lint:ignore <checks> <reason>` on the offending line or the line
// above it (ignore.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding: a check name, a position, and a message. The
// JSON shape is the `catlint -json` output contract (README "Static
// analysis").
type Diagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Package is one type-checked target package.
type Package struct {
	Path  string // import path
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// analysis caches the interprocedural substrate (call graph + effect
	// summaries) so one build serves every deep check in a Run. Built lazily
	// by Pass.substrate.
	analysis *packageAnalysis
}

// Check is one named analysis run over a type-checked package.
type Check struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass is the per-(check, package) context handed to a check's Run.
type Pass struct {
	*Package
	Cfg   *Config
	check string
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos. File paths are made relative to the
// working directory when possible, matching compiler output.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	file := position.Filename
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Check:   p.check,
		File:    file,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// Checks returns every check in the suite, in stable order. Each one
// mechanizes an invariant a past PR broke and then fixed by hand.
func Checks() []*Check {
	return []*Check{
		checkOptMut,
		checkCtxPoll,
		checkSigFloat,
		checkSnapshotGuard,
		checkRecoverBound,
		checkHotTime,
		checkNoCopy,
		checkWarmGuard,
		checkSegGuard,
		checkFsyncGuard,
		checkFrozenGuard,
		checkLockGuard,
	}
}

// SelectChecks resolves a comma-separated check-name list against the suite.
// An empty spec selects every check. Unknown names are an error that lists
// the valid names — running zero checks because of a typo must not look like
// a clean tree.
func SelectChecks(spec string) ([]*Check, error) {
	all := Checks()
	if spec == "" {
		return all, nil
	}
	byName := make(map[string]*Check, len(all))
	names := make([]string, 0, len(all))
	for _, c := range all {
		byName[c.Name] = c
		names = append(names, c.Name)
	}
	var out []*Check
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		c, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (valid checks: %s)", name, strings.Join(names, ", "))
		}
		out = append(out, c)
	}
	return out, nil
}

// Run executes the checks over the packages, filters suppressed findings
// through the //lint:ignore directives, and returns the survivors sorted by
// position.
func Run(pkgs []*Package, cfg *Config, checks []*Check) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		dirs := collectIgnores(pkg)
		start := len(diags)
		for _, c := range checks {
			c.Run(&Pass{Package: pkg, Cfg: cfg, check: c.Name, diags: &diags})
		}
		diags = append(diags[:start], filterIgnored(diags[start:], dirs)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message // deterministic dedup survivor
	})
	return dedup(diags)
}

// dedup drops diagnostics that repeat an identical (position, check) pair —
// the interprocedural checks can derive the same finding along several call
// paths, and -json output must stay stable regardless of which path reports
// first. The input is position-sorted, so duplicates are adjacent; the first
// (lexically smallest) message wins.
func dedup(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i > 0 {
			p := out[len(out)-1]
			if p.File == d.File && p.Line == d.Line && p.Col == d.Col && p.Check == d.Check {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// GitHub renders the diagnostic as a GitHub Actions workflow command
// (::error file=…) so CI annotates the offending line. Property values and
// the message use the documented %-escapes.
func (d Diagnostic) GitHub() string {
	prop := func(s string) string {
		r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A", ":", "%3A", ",", "%2C")
		return r.Replace(s)
	}
	msg := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A").Replace(d.Check + ": " + d.Message)
	return fmt.Sprintf("::error file=%s,line=%d,col=%d::%s", prop(d.File), d.Line, d.Col, msg)
}
