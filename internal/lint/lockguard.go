package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"maps"
	"strings"
)

// lockguard checks a declared lock discipline interprocedurally. A struct
// field annotated `//lint:guardedby mu` may only be touched while the
// sibling mutex `mu` of the *same* struct value is held. The check walks
// every function in execution order (flow.go) carrying a lockset keyed by
// canonical access path — c.mu.Lock() protects exactly c's guarded fields,
// not some other cache's — with branch forks joining by intersection and
// deferred unlocks keeping the lock to function exit. An unlocked access
// through a parameter becomes a *requirement* (this function must be
// entered with the lock held) that propagates through the call graph: call
// sites holding the right lock, or passing a provably fresh (unescaped,
// just-allocated) object, discharge it; requirements that survive to a
// function no in-package call site reaches are reported at the original
// access. Goroutine launches run with an empty lockset — a `go` statement
// capturing guarded state unlocked is flagged at the access, because the
// spawner's lock does not travel into the goroutine (exactly the bug class
// treecache's fill path works around by re-locking inside the closure).
var checkLockGuard = &Check{
	Name: "lockguard",
	Doc:  "//lint:guardedby fields are accessed only with their mutex held, checked across calls",
	Run:  runLockGuard,
}

// guardInfo describes one annotated field.
type guardInfo struct {
	typ   string // owning struct type, for messages
	field string
	mu    string // sibling mutex field name
}

func runLockGuard(pass *Pass) {
	guarded := collectGuarded(pass)
	if len(guarded) == 0 {
		return
	}
	lg := &lockGuard{
		pass:     pass,
		an:       pass.substrate(),
		guarded:  guarded,
		reqs:     make(map[*cgNode]map[string]lockReq),
		reported: make(map[token.Pos]bool),
	}
	for _, n := range lg.an.graph.nodes {
		if n.decl == nil {
			continue // literals are walked inline from their enclosing decl
		}
		w := &lockWalk{lg: lg, node: n, env: newPathEnv(pass.Info), held: make(map[string]bool)}
		lg.seedHolds(n, w)
		flowWalk(n.body, w.ops())
	}
	lg.propagate()
}

// seedHolds applies `//lint:holds <mutexfield>` assertions from a method's
// doc comment: the caller guarantees the receiver's named mutex is held on
// entry. This is the escape hatch for callbacks invoked under a lock from
// code the call graph cannot see — a hook registered here but fired from
// another package (durable.Store.onSeal runs inside Append, which holds
// s.mu, but the call arrives through the relation's seal hook). The walk
// starts with that lock in the lockset, so the method's accesses and its
// calls to *Locked helpers discharge; an assertion naming a non-mutex (or a
// holds on a plain function) is itself reported.
func (lg *lockGuard) seedHolds(n *cgNode, w *lockWalk) {
	if n.decl.Doc == nil {
		return
	}
	var recv *types.Var
	if r := n.decl.Recv; r != nil && len(r.List) == 1 && len(r.List[0].Names) == 1 {
		recv, _ = lg.pass.Info.Defs[r.List[0].Names[0]].(*types.Var)
	}
	for _, c := range n.decl.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		rest, ok := strings.CutPrefix(text, "lint:holds")
		if !ok {
			continue
		}
		fs := strings.Fields(rest)
		if len(fs) == 0 {
			continue
		}
		name := fs[0]
		if recv == nil || !hasMutexField(recv.Type(), name) {
			lg.pass.Reportf(n.decl.Pos(), "lint:holds names %q, which is not a sync.Mutex/RWMutex field of the receiver", name)
			continue
		}
		w.held[w.env.key(apath{root: recv, fields: []string{name}})] = true
	}
}

// hasMutexField reports whether t (possibly a pointer to a named struct)
// has a direct field called name of type sync.Mutex/RWMutex.
func hasMutexField(t types.Type, name string) bool {
	named, ok := derefNamed(t)
	if !ok {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == name {
			return isMutexType(f.Type())
		}
	}
	return false
}

// collectGuarded reads the //lint:guardedby annotations off struct fields
// and validates that each names a sync.Mutex/RWMutex field of the same
// struct — a typo'd annotation that silently guards nothing is itself a
// finding.
func collectGuarded(pass *Pass) map[*types.Var]guardInfo {
	out := make(map[*types.Var]guardInfo)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			mutexes := make(map[string]bool)
			for _, fd := range st.Fields.List {
				for _, nm := range fd.Names {
					if v, ok := pass.Info.Defs[nm].(*types.Var); ok && isMutexType(v.Type()) {
						mutexes[nm.Name] = true
					}
				}
			}
			for _, fd := range st.Fields.List {
				mu := guardAnnotation(fd)
				if mu == "" {
					continue
				}
				if !mutexes[mu] {
					pass.Reportf(fd.Pos(), "guardedby names %q, which is not a sync.Mutex/RWMutex field of %s", mu, ts.Name.Name)
					continue
				}
				for _, nm := range fd.Names {
					if v, ok := pass.Info.Defs[nm].(*types.Var); ok {
						out[v] = guardInfo{typ: ts.Name.Name, field: nm.Name, mu: mu}
					}
				}
			}
			return true
		})
	}
	return out
}

// guardAnnotation extracts the mutex name from a field's
// `//lint:guardedby <name>` doc or trailing comment.
func guardAnnotation(fd *ast.Field) string {
	scan := func(cg *ast.CommentGroup) string {
		if cg == nil {
			return ""
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if rest, ok := strings.CutPrefix(text, "lint:guardedby"); ok {
				if fs := strings.Fields(rest); len(fs) > 0 {
					return fs[0]
				}
			}
		}
		return ""
	}
	if s := scan(fd.Doc); s != "" {
		return s
	}
	return scan(fd.Comment)
}

func isMutexType(t types.Type) bool {
	named, ok := derefNamed(t)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

// lockOp classifies a call as a mutex operation, returning the receiver
// expression (the mutex path) and the method name, or "".
func lockOp(info *types.Info, call *ast.CallExpr) (ast.Expr, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, ""
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil, ""
	}
	if !isMutexType(s.Recv()) {
		return nil, ""
	}
	return sel.X, sel.Sel.Name
}

// lockReq is an obligation on a function's caller: entering with slot's
// argument (plus rel fields) locked by mu, or the access at origin is a
// violation.
type lockReq struct {
	slot   int
	rel    string // field path from the parameter to the guarded struct
	mu     string
	gi     guardInfo
	origin token.Pos
}

func (r lockReq) key() string {
	return fmt.Sprintf("%d|%s|%s|%d", r.slot, r.rel, r.mu, r.origin)
}

// lockCtx is one recorded call site: resolved canonical argument paths, the
// lockset held at the call, and whether the call launches a goroutine (its
// frame starts lock-free and cannot be discharged upward).
type lockCtx struct {
	caller   *cgNode
	callee   *cgNode
	env      *pathEnv // the caller walk's env: its ids render comparable keys
	args     []apath
	argOK    []bool
	argFresh []bool
	held     map[string]bool
	isGo     bool
}

// lockGuard is the per-package check state shared by all function walks.
type lockGuard struct {
	pass     *Pass
	an       *packageAnalysis
	guarded  map[*types.Var]guardInfo
	reqs     map[*cgNode]map[string]lockReq
	ctxs     []*lockCtx
	reported map[token.Pos]bool
}

func (lg *lockGuard) addReq(n *cgNode, r lockReq) bool {
	m := lg.reqs[n]
	if m == nil {
		m = make(map[string]lockReq)
		lg.reqs[n] = m
	}
	k := r.key()
	if _, ok := m[k]; ok {
		return false
	}
	m[k] = r
	return true
}

func (lg *lockGuard) report(origin token.Pos, gi guardInfo, goCtx bool) {
	if lg.reported[origin] {
		return
	}
	lg.reported[origin] = true
	if goCtx {
		lg.pass.Reportf(origin, "goroutine accesses %s.%s (guarded by %s) without holding the lock", gi.typ, gi.field, gi.mu)
	} else {
		lg.pass.Reportf(origin, "%s.%s is guarded by %s, and no path to this access holds the lock (//lint:guardedby)", gi.typ, gi.field, gi.mu)
	}
}

// propagate runs the requirement fixpoint over the recorded call sites, then
// reports requirements surviving on functions no in-package call reaches.
func (lg *lockGuard) propagate() {
	processed := make(map[*lockCtx]map[string]bool)
	for changed := true; changed; {
		changed = false
		for _, ctx := range lg.ctxs {
			for k, r := range lg.reqs[ctx.callee] {
				done := processed[ctx]
				if done == nil {
					done = make(map[string]bool)
					processed[ctx] = done
				}
				if done[k] {
					continue
				}
				done[k] = true
				changed = true
				lg.handle(ctx, r)
			}
		}
	}
	hasCaller := make(map[*cgNode]bool)
	for _, ctx := range lg.ctxs {
		hasCaller[ctx.callee] = true
	}
	for n, m := range lg.reqs {
		if hasCaller[n] {
			continue // every caller was checked at its own site
		}
		for _, r := range m {
			lg.report(r.origin, r.gi, false)
		}
	}
}

// handle checks one requirement against one call site: discharged by the
// held lockset or a fresh argument, re-raised against the caller's own
// parameters, or reported.
func (lg *lockGuard) handle(ctx *lockCtx, r lockReq) {
	if r.slot >= len(ctx.args) || !ctx.argOK[r.slot] {
		return // unresolvable argument: nothing sound to say, stay quiet
	}
	if ctx.argFresh[r.slot] {
		return // the object was provably unshared at the call
	}
	ap := ctx.args[r.slot]
	fields := append([]string(nil), ap.fields...)
	if r.rel != "" {
		fields = append(fields, strings.Split(r.rel, ".")...)
	}
	lockPath := apath{root: ap.root, fields: append(append([]string(nil), fields...), r.mu)}
	if ctx.held[ctx.env.key(lockPath)] {
		return
	}
	if !ctx.isGo {
		if slot := slotOf(lg.an.slots[ctx.caller], ap.root); slot >= 0 {
			// Bound the relative path so recursive structures (n.child.child…)
			// terminate; beyond the cap we stop tracking rather than guess.
			if len(fields) <= 4 {
				lg.addReq(ctx.caller, lockReq{slot: slot, rel: strings.Join(fields, "."), mu: r.mu, gi: r.gi, origin: r.origin})
			}
			return
		}
	}
	lg.report(r.origin, r.gi, ctx.isGo)
}

// lockState is the flow state of one walk: lockset plus the pathEnv tables.
type lockState struct {
	held  map[string]bool
	alias map[types.Object]apath
	fresh map[types.Object]bool
}

type lockWalk struct {
	lg   *lockGuard
	node *cgNode // the enclosing declaration; requirements attach here
	env  *pathEnv
	held map[string]bool
	inGo bool
}

func (w *lockWalk) ops() *flowOps {
	return &flowOps{
		visit:   w.visit,
		snap:    func() any { return w.snapState() },
		restore: func(s any) { w.restoreState(s.(*lockState)) },
		merge:   w.merge,
		isPanic: func(c *ast.CallExpr) bool { return isBuiltin(w.lg.pass.Info, c, "panic") },
	}
}

func (w *lockWalk) snapState() *lockState {
	return &lockState{
		held:  maps.Clone(w.held),
		alias: maps.Clone(w.env.alias),
		fresh: maps.Clone(w.env.fresh),
	}
}

func (w *lockWalk) restoreState(s *lockState) {
	w.held = maps.Clone(s.held)
	w.env.alias = maps.Clone(s.alias)
	w.env.fresh = maps.Clone(s.fresh)
}

// merge joins branch exits by intersection: a lock (or alias, or freshness
// fact) survives only if every arm that falls through still has it.
func (w *lockWalk) merge(outs []any) {
	first := outs[0].(*lockState)
	held := maps.Clone(first.held)
	alias := maps.Clone(first.alias)
	fresh := maps.Clone(first.fresh)
	for _, o := range outs[1:] {
		s := o.(*lockState)
		for k := range held {
			if !s.held[k] {
				delete(held, k)
			}
		}
		for obj, p := range alias {
			if q, ok := s.alias[obj]; !ok || !apathEq(p, q) {
				delete(alias, obj)
			}
		}
		for obj := range fresh {
			if !s.fresh[obj] {
				delete(fresh, obj)
			}
		}
	}
	w.restoreState(&lockState{held: held, alias: alias, fresh: fresh})
}

// visit handles one leaf node from the flow walker.
func (w *lockWalk) visit(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.GoStmt:
			w.goStmt(x)
			return false
		case *ast.DeferStmt:
			w.deferStmt(x)
			return false
		case *ast.FuncLit:
			// A stored or argument literal: analyze it against the current
			// state (callbacks overwhelmingly run where they're passed), but
			// discard its effects on this path.
			w.walkLit(x, w.held, w.inGo)
			return false
		case *ast.AssignStmt:
			w.env.bindStmt(x)
		case *ast.DeclStmt:
			w.env.bindStmt(x)
		case *ast.CallExpr:
			if recv, op := lockOp(w.lg.pass.Info, x); op != "" {
				if p, ok := w.env.resolve(recv); ok {
					k := w.env.key(p)
					switch op {
					case "Lock", "RLock":
						w.held[k] = true
					default:
						delete(w.held, k)
					}
				}
				return false
			}
			w.call(x)
		case *ast.SelectorExpr:
			w.accessCheck(x)
		}
		return true
	})
}

// accessCheck inspects one selector for a guarded-field access.
func (w *lockWalk) accessCheck(x *ast.SelectorExpr) {
	sel, ok := w.lg.pass.Info.Selections[x]
	if !ok || sel.Kind() != types.FieldVal {
		return
	}
	v, ok := originObj(sel.Obj()).(*types.Var)
	if !ok {
		return
	}
	gi, ok := w.lg.guarded[v]
	if !ok {
		return
	}
	base, ok := w.env.resolve(x.X)
	if !ok {
		return // base rooted in a call result: nothing sound to say
	}
	lockPath := apath{root: base.root, fields: append(append([]string(nil), base.fields...), gi.mu)}
	if w.held[w.env.key(lockPath)] {
		return
	}
	if w.env.isFresh(base) {
		return
	}
	if !w.inGo {
		if slot := slotOf(w.lg.an.slots[w.node], base.root); slot >= 0 {
			w.lg.addReq(w.node, lockReq{
				slot:   slot,
				rel:    strings.Join(base.fields, "."),
				mu:     gi.mu,
				gi:     gi,
				origin: x.Sel.Pos(),
			})
			return
		}
	}
	w.lg.report(x.Sel.Pos(), gi, w.inGo)
}

// call records the site for requirement propagation.
func (w *lockWalk) call(x *ast.CallExpr) {
	callee := w.lg.an.graph.resolveCallee(x.Fun)
	if callee == nil {
		return
	}
	w.recordCtx(x, callee, w.held, w.inGo)
}

func (w *lockWalk) recordCtx(call *ast.CallExpr, callee *cgNode, held map[string]bool, isGo bool) {
	nslots := len(w.lg.an.slots[callee])
	args := callArgSlots(w.lg.pass.Info, call, callee)
	ctx := &lockCtx{
		caller: w.node,
		callee: callee,
		env:    w.env,
		held:   maps.Clone(held),
		isGo:   isGo,
	}
	for i := 0; i < nslots; i++ {
		if i < len(args) && args[i] != nil {
			if p, ok := w.env.resolve(args[i]); ok {
				ctx.args = append(ctx.args, p)
				ctx.argOK = append(ctx.argOK, true)
				ctx.argFresh = append(ctx.argFresh, w.env.isFresh(p))
				continue
			}
		}
		ctx.args = append(ctx.args, apath{})
		ctx.argOK = append(ctx.argOK, false)
		ctx.argFresh = append(ctx.argFresh, false)
	}
	w.lg.ctxs = append(w.lg.ctxs, ctx)
}

// goStmt launches its function with an empty lockset: the spawner's locks do
// not protect the goroutine's accesses. Argument evaluation is synchronous
// and scans under the current state.
func (w *lockWalk) goStmt(x *ast.GoStmt) {
	for _, a := range x.Call.Args {
		// A literal argument (go protect(func(){…})) executes inside the
		// goroutine; plain arguments evaluate synchronously.
		if lit, ok := ast.Unparen(a).(*ast.FuncLit); ok {
			w.walkLit(lit, nil, true)
			continue
		}
		w.visit(a)
	}
	if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
		w.walkLit(lit, nil, true)
		return
	}
	if sel, ok := ast.Unparen(x.Call.Fun).(*ast.SelectorExpr); ok {
		w.visit(sel.X)
	}
	if callee := w.lg.an.graph.resolveCallee(x.Call.Fun); callee != nil {
		w.recordCtx(x.Call, callee, nil, true)
	}
}

// deferStmt: a deferred unlock keeps the lock held to function exit (state
// untouched); a deferred literal or call is approximated as running under
// the state at the defer site.
func (w *lockWalk) deferStmt(x *ast.DeferStmt) {
	if _, op := lockOp(w.lg.pass.Info, x.Call); op != "" {
		return
	}
	for _, a := range x.Call.Args {
		w.visit(a)
	}
	if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
		w.walkLit(lit, w.held, w.inGo)
		return
	}
	if sel, ok := ast.Unparen(x.Call.Fun).(*ast.SelectorExpr); ok {
		w.visit(sel.X)
	}
	if callee := w.lg.an.graph.resolveCallee(x.Call.Fun); callee != nil {
		w.recordCtx(x.Call, callee, w.held, w.inGo)
	}
}

// walkLit analyzes a literal's body under the given lockset (nil = empty)
// and goroutine flag, restoring the outer state afterwards.
func (w *lockWalk) walkLit(lit *ast.FuncLit, held map[string]bool, inGo bool) {
	saved := w.snapState()
	savedGo := w.inGo
	w.held = maps.Clone(held)
	if w.held == nil {
		w.held = make(map[string]bool)
	}
	w.inGo = inGo
	flowWalk(lit.Body, w.ops())
	w.restoreState(saved)
	w.inGo = savedGo
}
