package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// The fixture harness: every fixture file annotates its expected diagnostics
// with `// want `regex`` comments on the offending line (several backquoted
// regexes when one line carries several findings). The test demands an exact
// bidirectional match — every diagnostic hits a want on its line, every want
// is hit by a diagnostic — so a check that over- or under-reports fails
// loudly with positions.

// fixturePatterns names every fixture package directory outright: the go
// command's ... wildcard deliberately skips testdata, so the directories
// cannot be globbed.
func fixturePatterns(t *testing.T) []string {
	t.Helper()
	dirs := make(map[string]bool)
	root := filepath.Join("testdata", "src")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".go") {
			dirs["./"+filepath.ToSlash(filepath.Dir(path))] = true
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking %s: %v", root, err)
	}
	pats := make([]string, 0, len(dirs))
	for d := range dirs {
		pats = append(pats, d)
	}
	sort.Strings(pats)
	if len(pats) == 0 {
		t.Fatal("no fixture packages under testdata/src")
	}
	return pats
}

// Loading type-checks against the build cache via `go list -export`, so do
// it once for the whole test binary.
var (
	fixtureOnce sync.Once
	fixturePkgs []*Package
	fixtureErr  error
)

func loadFixtures(t *testing.T) []*Package {
	t.Helper()
	fixtureOnce.Do(func() {
		fixturePkgs, fixtureErr = Load(fixturePatterns(t))
	})
	if fixtureErr != nil {
		t.Fatalf("loading fixtures: %v", fixtureErr)
	}
	return fixturePkgs
}

type wantKey struct {
	file string // absolute
	line int
}

type want struct {
	re  *regexp.Regexp
	hit bool
}

var wantQuoted = regexp.MustCompile("`([^`]*)`")

const wantPrefix = "// want "

func collectWants(t *testing.T, pkgs []*Package) map[wantKey][]*want {
	t.Helper()
	wants := make(map[wantKey][]*want)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, wantPrefix) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					quoted := wantQuoted.FindAllStringSubmatch(c.Text, -1)
					if len(quoted) == 0 {
						t.Errorf("%s:%d: want comment without a backquoted regex", pos.Filename, pos.Line)
						continue
					}
					key := wantKey{file: pos.Filename, line: pos.Line}
					for _, q := range quoted {
						re, err := regexp.Compile(q[1])
						if err != nil {
							t.Errorf("%s:%d: bad want regex %q: %v", pos.Filename, pos.Line, q[1], err)
							continue
						}
						wants[key] = append(wants[key], &want{re: re})
					}
				}
			}
		}
	}
	return wants
}

func TestFixtureWants(t *testing.T) {
	pkgs := loadFixtures(t)
	diags := Run(pkgs, DefaultConfig(), Checks())
	wants := collectWants(t, pkgs)

	for _, d := range diags {
		abs, err := filepath.Abs(d.File)
		if err != nil {
			t.Fatalf("abs(%q): %v", d.File, err)
		}
		matched := false
		for _, w := range wants[wantKey{file: abs, line: d.Line}] {
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				t.Errorf("%s:%d: no diagnostic matched want %q", key.file, key.line, w.re)
			}
		}
	}
}

// TestEveryCheckFires is the seeded-violation proof: each check in the suite
// must produce at least one diagnostic on the fixtures, so a check that
// silently stops matching cannot rot unnoticed.
func TestEveryCheckFires(t *testing.T) {
	pkgs := loadFixtures(t)
	diags := Run(pkgs, DefaultConfig(), Checks())
	seen := make(map[string]bool)
	for _, d := range diags {
		seen[d.Check] = true
	}
	for _, c := range Checks() {
		if !seen[c.Name] {
			t.Errorf("check %s produced no diagnostics on the fixtures", c.Name)
		}
	}
}

// TestNegativeFixturesQuiet pins the all-clean packages: the scoping rules
// and suppressions must silence every diagnostic in them.
func TestNegativeFixturesQuiet(t *testing.T) {
	pkgs := loadFixtures(t)
	diags := Run(pkgs, DefaultConfig(), Checks())
	for _, d := range diags {
		if strings.Contains(d.File, "testdata/src/clean/") ||
			strings.Contains(d.File, "testdata/src/internal/resilience/") ||
			strings.Contains(d.File, "testdata/src/internal/relation/durable/") {
			t.Errorf("negative fixture produced a diagnostic: %s", d)
		}
	}
}

// TestIgnoreDirectives pins the suppression contract: a directive needs both
// a check list and a reason, covers its own line and the one below, and "*"
// covers every check.
func TestIgnoreDirectives(t *testing.T) {
	src := `package p

func f() {
	//lint:ignore hottime
	_ = 1
	//lint:ignore hottime recorded reason
	_ = 2
	//lint:ignore * recorded reason
	_ = 3
	_ = 4 //lint:ignore ctxpoll,hottime recorded reason
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "ignore_fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	dirs := collectIgnores(&Package{Fset: fset, Files: []*ast.File{f}})
	cases := []struct {
		line       int
		check      string
		suppressed bool
	}{
		{5, "hottime", false}, // directive above has no reason
		{7, "hottime", true},
		{7, "ctxpoll", false}, // wrong check
		{9, "ctxpoll", true},  // wildcard
		{10, "hottime", true}, // same-line directive
		{10, "sigfloat", false},
	}
	for _, c := range cases {
		d := Diagnostic{Check: c.check, File: "ignore_fixture.go", Line: c.line}
		if got := suppressed(d, dirs); got != c.suppressed {
			t.Errorf("line %d check %s: suppressed=%v, want %v", c.line, c.check, got, c.suppressed)
		}
	}
}
