package lint

import (
	"go/ast"
	"go/types"
)

// checkSegGuard guards the segmented-store immutability boundary (PR8): a
// sealed segment's column pages — the dictionary-code and dictionary slices
// behind CatColumn — are shared by every published snapshot, conjunct
// bitmap, and index that was built over them. Inside internal/relation the
// extension paths write only into unpublished spare capacity under the
// relation mutex; anywhere else, a write, append, or copy through those
// fields tears concurrent readers. segguard flags the mutating uses (reads
// are the normal case and stay unrestricted).
var checkSegGuard = &Check{
	Name: "segguard",
	Doc:  "sealed-segment column pages are written only inside internal/relation",
	Run:  runSegGuard,
}

func runSegGuard(pass *Pass) {
	cfg := pass.Cfg
	if len(cfg.SegFields) == 0 || matchPkg(pass.Path, cfg.SegPkgs) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if sel, name := segFieldTarget(pass, lhs); sel != nil {
						pass.Reportf(sel.Sel.Pos(),
							"write through %s outside internal/relation mutates a shared segment page; use the relation's accessors", name)
					}
				}
			case *ast.IncDecStmt:
				if sel, name := segFieldTarget(pass, n.X); sel != nil {
					pass.Reportf(sel.Sel.Pos(),
						"write through %s outside internal/relation mutates a shared segment page; use the relation's accessors", name)
				}
			case *ast.CallExpr:
				if len(n.Args) == 0 {
					return true
				}
				verb := ""
				switch {
				case isBuiltin(pass.Info, n, "append"):
					// Appending to a page slice can write into the sealed
					// backing's spare capacity the relation reserves for its
					// own extension path.
					verb = "append to"
				case isBuiltin(pass.Info, n, "copy"), isBuiltin(pass.Info, n, "clear"):
					verb = "copy into"
					if isBuiltin(pass.Info, n, "clear") {
						verb = "clear of"
					}
				default:
					return true
				}
				if sel, name := segFieldTarget(pass, n.Args[0]); sel != nil {
					pass.Reportf(sel.Sel.Pos(),
						"%s %s outside internal/relation mutates a shared segment page; build a private copy instead", verb, name)
				}
			}
			return true
		})
	}
}

// segFieldTarget unwraps an assignment target or builtin destination down to
// the selector it writes through (x.Codes[i], x.Dict[a:b], (*p).Codes) and
// reports it when the selected field is one of the guarded segment-page
// fields ("Type.Field" in Config.SegFields).
func segFieldTarget(pass *Pass, e ast.Expr) (*ast.SelectorExpr, string) {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.SelectorExpr:
			s, ok := pass.Info.Selections[t]
			if !ok || s.Kind() != types.FieldVal {
				return nil, ""
			}
			named, ok := derefNamed(s.Recv())
			if !ok {
				return nil, ""
			}
			name := named.Obj().Name() + "." + t.Sel.Name
			if nameIn(name, pass.Cfg.SegFields) {
				return t, name
			}
			return nil, ""
		default:
			return nil, ""
		}
	}
}
