package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// summary.go computes per-function effect summaries over the call graph: for
// every parameter slot (receiver first), whether the function writes through
// storage the caller can still see, and whether the argument escapes into a
// publish sink. Effects propagate through call sites to a fixpoint, so
// mutual recursion converges; a literal's writes through free variables are
// attributed straight to the enclosing function that owns them. Alongside
// the summaries live the access-path machinery (apath, resolvePath, pathEnv)
// the flow-sensitive checks share. DESIGN.md §16 documents the lattice.

// apath is an access path: a root object plus the field names selected from
// it, outermost first. Pointer dereferences, indexing, slicing, and type
// assertions are transparent — x, *x, and x[i] all name storage reachable
// from x — but crossing one sets deref, which distinguishes a write into
// shared backing from a plain rebinding of the root.
type apath struct {
	root   types.Object
	fields []string
	deref  bool
}

func apathEq(a, b apath) bool {
	if a.root != b.root || a.deref != b.deref || len(a.fields) != len(b.fields) {
		return false
	}
	for i := range a.fields {
		if a.fields[i] != b.fields[i] {
			return false
		}
	}
	return true
}

// display renders the path for diagnostics (root.f.g).
func (p apath) display() string {
	s := "<?>"
	if p.root != nil {
		s = p.root.Name()
	}
	if len(p.fields) > 0 {
		s += "." + strings.Join(p.fields, ".")
	}
	return s
}

// resolvePath reduces an expression to the access path it names, or reports
// failure for anything rooted in a call result, literal, or non-variable.
// Only real struct fields extend the path; method selections fail.
func resolvePath(info *types.Info, e ast.Expr) (apath, bool) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return resolvePath(info, e.X)
	case *ast.StarExpr:
		p, ok := resolvePath(info, e.X)
		p.deref = true
		return p, ok
	case *ast.IndexExpr:
		p, ok := resolvePath(info, e.X)
		p.deref = true
		return p, ok
	case *ast.SliceExpr:
		p, ok := resolvePath(info, e.X)
		p.deref = true
		return p, ok
	case *ast.TypeAssertExpr:
		return resolvePath(info, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return resolvePath(info, e.X)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if sel.Kind() != types.FieldVal {
				return apath{}, false
			}
			p, ok := resolvePath(info, e.X)
			if !ok {
				return apath{}, false
			}
			p.fields = append(p.fields, e.Sel.Name)
			if sel.Indirect() {
				p.deref = true
			}
			return p, true
		}
		// Package-qualified variable (pkg.Var).
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return apath{root: v}, true
		}
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok {
			return apath{root: v}, true
		}
	}
	return apath{}, false
}

// pathEnv canonicalizes access paths during one function walk: objects get
// stable ids for map keys, locals assigned from another path (snap := r.seg)
// resolve through the alias table so both spellings name the same storage,
// and locals bound to a fresh allocation are tracked as not-yet-shared. The
// alias and fresh tables are flow state — clients clone them at branch forks.
type pathEnv struct {
	info  *types.Info
	ids   map[types.Object]int
	alias map[types.Object]apath
	fresh map[types.Object]bool
}

func newPathEnv(info *types.Info) *pathEnv {
	return &pathEnv{
		info:  info,
		ids:   make(map[types.Object]int),
		alias: make(map[types.Object]apath),
		fresh: make(map[types.Object]bool),
	}
}

// resolve is resolvePath followed by alias canonicalization.
func (e *pathEnv) resolve(x ast.Expr) (apath, bool) {
	p, ok := resolvePath(e.info, x)
	if !ok {
		return p, false
	}
	return e.canon(p), true
}

// canon rewrites the path's root through the alias table. Entries are stored
// canonical, so one step normally suffices; the loop is bounded defensively.
func (e *pathEnv) canon(p apath) apath {
	for i := 0; i < 8; i++ {
		base, ok := e.alias[p.root]
		if !ok {
			return p
		}
		np := apath{root: base.root, deref: p.deref || base.deref}
		np.fields = append(append([]string(nil), base.fields...), p.fields...)
		p = np
	}
	return p
}

// key renders a canonical map key for the path (no deref bit: x and *x share
// storage and must collide).
func (e *pathEnv) key(p apath) string {
	id, ok := e.ids[p.root]
	if !ok {
		id = len(e.ids)
		e.ids[p.root] = id
	}
	if len(p.fields) == 0 {
		return fmt.Sprintf("o%d", id)
	}
	return fmt.Sprintf("o%d.%s", id, strings.Join(p.fields, "."))
}

// isFresh reports whether the path is rooted at a local still known to be
// unshared (bound to a composite literal or new(T) and not re-assigned).
func (e *pathEnv) isFresh(p apath) bool {
	return e.fresh[p.root]
}

// bind records what an assignment to a plain identifier teaches the walk:
// a fresh allocation makes the local unshared, another access path makes it
// an alias, anything else clears both facts.
func (e *pathEnv) bind(lhs *ast.Ident, rhs ast.Expr) {
	if lhs.Name == "_" {
		return
	}
	obj := e.info.Defs[lhs]
	if obj == nil {
		obj = e.info.Uses[lhs]
	}
	if obj == nil {
		return
	}
	delete(e.alias, obj)
	delete(e.fresh, obj)
	if rhs == nil {
		return
	}
	if isFreshExpr(e.info, rhs) {
		e.fresh[obj] = true
		return
	}
	if p, ok := resolvePath(e.info, rhs); ok {
		cp := e.canon(p)
		if cp.root != obj {
			e.alias[obj] = cp
		}
	}
}

// bindStmt applies bind to every ident := path pair in an assignment or var
// declaration the walker hands it.
func (e *pathEnv) bindStmt(n ast.Node) {
	pair := func(lhs, rhs ast.Expr) {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			e.bind(id, rhs)
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i := range n.Lhs {
				pair(n.Lhs[i], n.Rhs[i])
			}
		} else {
			for _, lhs := range n.Lhs { // multi-value rhs: facts unknown
				pair(lhs, nil)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						e.bind(name, vs.Values[i])
					} else {
						e.bind(name, nil)
					}
				}
			}
		}
	}
}

// isFreshExpr reports whether the expression allocates unshared storage: a
// composite literal, its address, or new(T).
func isFreshExpr(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		return e.Op == token.AND && isFreshExpr(info, e.X)
	case *ast.CallExpr:
		return isBuiltin(info, e, "new")
	}
	return false
}

// paramSlots lists a node's parameter objects, receiver first. Unnamed
// parameters hold a nil slot so positions line up with call arguments.
func paramSlots(info *types.Info, n *cgNode) []types.Object {
	var out []types.Object
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if len(f.Names) == 0 {
				out = append(out, nil)
				continue
			}
			for _, name := range f.Names {
				out = append(out, info.Defs[name])
			}
		}
	}
	if n.decl != nil {
		add(n.decl.Recv)
		add(n.decl.Type.Params)
	} else if n.lit != nil {
		add(n.lit.Type.Params)
	}
	return out
}

func slotOf(slots []types.Object, obj types.Object) int {
	if obj == nil {
		return -1
	}
	for i, s := range slots {
		if s != nil && s == obj {
			return i
		}
	}
	return -1
}

// callArgSlots aligns a call's argument expressions with the callee's
// parameter slots: the receiver expression first for method calls (nil when
// it has no usable expression), then the plain arguments. Variadic overflow
// past the declared slots is simply ignored by callers indexing with the
// slot list's length.
func callArgSlots(info *types.Info, call *ast.CallExpr, callee *cgNode) []ast.Expr {
	var out []ast.Expr
	args := call.Args
	if callee.decl != nil && callee.decl.Recv != nil {
		var recv ast.Expr
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, ok := info.Selections[sel]; ok {
				switch s.Kind() {
				case types.MethodVal:
					recv = sel.X
				case types.MethodExpr: // T.M(recv, …)
					if len(args) > 0 {
						recv = args[0]
						args = args[1:]
					}
				}
			}
		}
		out = append(out, recv)
	}
	return append(out, args...)
}

// atomicPublishArg returns the value expression a sync/atomic method call
// publishes (Store/Swap arg 0, CompareAndSwap's new value), or nil.
func atomicPublishArg(info *types.Info, call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil
	}
	named, ok := derefNamed(s.Recv())
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync/atomic" {
		return nil
	}
	switch sel.Sel.Name {
	case "Store", "Swap":
		if len(call.Args) > 0 {
			return call.Args[0]
		}
	case "CompareAndSwap":
		if len(call.Args) > 1 {
			return call.Args[1]
		}
	}
	return nil
}

// publishTargets returns the value expressions this call publishes: the
// sync/atomic publication methods plus the Config.PublishSinks registry.
// Only reference-like values (pointers, slices, maps, chans) are tracked —
// publishing an int copies it, so nothing stays reachable to freeze — and
// self-synchronized objects (structs carrying their own mutex, like the
// Warmer handle) are exempt: they are live service objects published for
// access, not COW snapshots, and their interior mutation is lockguard's
// jurisdiction, not frozenguard's.
func publishTargets(pass *Pass, call *ast.CallExpr) []ast.Expr {
	var out []ast.Expr
	track := func(arg ast.Expr) {
		if refLike(pass.Info, arg) && !selfSynchronized(pass.Info, arg) {
			out = append(out, arg)
		}
	}
	if arg := atomicPublishArg(pass.Info, call); arg != nil {
		track(arg)
	}
	if fn := calleeFunc(pass.Info, call); fn != nil {
		q := qualifiedName(fn)
		for _, s := range pass.Cfg.PublishSinks {
			if strings.Contains(q, s.Func) && s.Arg >= 0 && s.Arg < len(call.Args) {
				track(call.Args[s.Arg])
			}
		}
	}
	return out
}

// selfSynchronized reports whether the expression's (dereferenced) struct
// type directly carries a sync.Mutex/RWMutex field.
func selfSynchronized(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isMutexType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

func refLike(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
		return true
	}
	return false
}

// summary is one node's caller-visible effects, indexed by parameter slot.
type summary struct {
	mutates   []bool // writes storage still reachable from the argument
	publishes []bool // the argument escapes into a publish sink
}

// packageAnalysis is the lazily-built substrate the deep checks share: the
// call graph plus effect summaries and per-node slot lists. It is cached on
// the Package so one build serves every check of a Run; Run holds the Config
// fixed, which keeps the cached sink registry coherent.
type packageAnalysis struct {
	graph *callGraph
	sums  map[*cgNode]*summary
	slots map[*cgNode][]types.Object
}

// substrate returns the package's analysis substrate, building it on first
// use.
func (p *Pass) substrate() *packageAnalysis {
	if p.Package.analysis == nil {
		g := buildCallGraph(p)
		slots := make(map[*cgNode][]types.Object, len(g.nodes))
		for _, n := range g.nodes {
			slots[n] = paramSlots(p.Info, n)
		}
		p.Package.analysis = &packageAnalysis{
			graph: g,
			sums:  computeSummaries(p, g, slots),
			slots: slots,
		}
	}
	return p.Package.analysis
}

// computeSummaries derives direct effects from each node's own body, then
// propagates them through call sites to a fixpoint. A literal's effect on a
// free variable owned by an enclosing function is charged directly to that
// function (the literal runs, at the latest, by the cgRef approximation).
func computeSummaries(pass *Pass, g *callGraph, slots map[*cgNode][]types.Object) map[*cgNode]*summary {
	info := pass.Info
	sums := make(map[*cgNode]*summary, len(g.nodes))
	for _, n := range g.nodes {
		ns := len(slots[n])
		sums[n] = &summary{mutates: make([]bool, ns), publishes: make([]bool, ns)}
	}

	// mark finds the innermost node (starting at n, walking enclosures) that
	// owns root as a parameter and sets the effect there. Reports change.
	mark := func(n *cgNode, root types.Object, publish bool) bool {
		for a := n; a != nil; a = a.enclosing {
			if slot := slotOf(slots[a], root); slot >= 0 {
				s := sums[a]
				if publish {
					if !s.publishes[slot] {
						s.publishes[slot] = true
						return true
					}
				} else if !s.mutates[slot] {
					s.mutates[slot] = true
					return true
				}
				return false
			}
		}
		return false
	}

	// markWrite charges a write through an lvalue. A plain rebinding of the
	// root (x = v) is not a caller-visible effect; a write that crossed an
	// indirection (p.f via pointer, x[i], *p) or a mutating builtin's
	// destination is.
	markWrite := func(n *cgNode, lv ast.Expr, force bool) {
		p, ok := resolvePath(info, lv)
		if !ok {
			return
		}
		if p.deref || force {
			mark(n, p.root, false)
		}
	}

	for _, n := range g.nodes {
		n.inspectOwn(func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					markWrite(n, lhs, false)
				}
			case *ast.IncDecStmt:
				markWrite(n, x.X, false)
			case *ast.CallExpr:
				if isBuiltin(info, x, "append") || isBuiltin(info, x, "copy") || isBuiltin(info, x, "clear") {
					if len(x.Args) > 0 {
						markWrite(n, x.Args[0], true)
					}
				}
				for _, arg := range publishTargets(pass, x) {
					if p, ok := resolvePath(info, arg); ok {
						mark(n, p.root, true)
					}
				}
			}
			return true
		})
	}

	// Propagate through call sites until nothing changes.
	for changed := true; changed; {
		changed = false
		for _, n := range g.nodes {
			for _, e := range n.out {
				if e.site == nil {
					continue
				}
				cs := sums[e.callee]
				args := callArgSlots(info, e.site, e.callee)
				for i := 0; i < len(cs.mutates) && i < len(args); i++ {
					if args[i] == nil || (!cs.mutates[i] && !cs.publishes[i]) {
						continue
					}
					p, ok := resolvePath(info, args[i])
					if !ok {
						continue
					}
					if cs.mutates[i] && mark(n, p.root, false) {
						changed = true
					}
					if cs.publishes[i] && mark(n, p.root, true) {
						changed = true
					}
				}
			}
		}
	}
	return sums
}
