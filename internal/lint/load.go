package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
}

// Load resolves the package patterns with the go command and type-checks
// every matched (non-dependency) package from source. Dependencies — the
// stdlib and module packages outside the patterns — are imported from the
// build cache's export data, which `go list -export` both produces and
// locates; the driver itself stays stdlib-only.
func Load(patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=Dir,ImportPath,Export,Standard,DepOnly,GoFiles",
	}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	var targets []*listPkg
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(exp)
	})

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := typeCheck(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typeCheck parses and type-checks one target package from source.
func typeCheck(fset *token.FileSet, imp types.Importer, t *listPkg) (*Package, error) {
	files := make([]*ast.File, 0, len(t.GoFiles))
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", t.ImportPath, err)
	}
	return &Package{Path: t.ImportPath, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}
