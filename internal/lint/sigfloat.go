package lint

import (
	"go/ast"
	"go/types"
)

// checkSigFloat guards the canonical-spelling invariant of the cache-key
// layers (PR3's fuzz-caught HiInc collision): signatures and cache keys must
// spell floats through relation.SigNum, the single canonical formatter both
// the conjunct-bitmap cache and the query-signature layer share. Ad-hoc
// fmt/strconv float formatting in a signature path can collapse distinct
// predicates (-0 vs 0, 1e15 vs integer spelling, ±Inf) into one cache slot —
// or split identical ones across two.
var checkSigFloat = &Check{
	Name: "sigfloat",
	Doc:  "no fmt/strconv float formatting in signature or cache-key construction; use relation.SigNum",
	Run:  runSigFloat,
}

func runSigFloat(pass *Pass) {
	eachFunc(pass.Package, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
		if lit != nil {
			return // literal bodies are scanned with their enclosing decl
		}
		if !pass.Cfg.SigFuncs.MatchString(decl.Name.Name) {
			return
		}
		if fn, ok := pass.Info.Defs[decl.Name].(*types.Func); ok &&
			matchFunc(qualifiedName(fn), pass.Cfg.SigNumFuncs) {
			return // the canonical formatter itself
		}
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil {
				return true
			}
			switch funcPkgPath(fn) {
			case "fmt":
				for _, arg := range call.Args {
					if tv, ok := pass.Info.Types[arg]; ok && isFloat(tv.Type) {
						pass.Reportf(call.Pos(),
							"fmt.%s formats a float in a signature/cache-key path; spell it with relation.SigNum",
							fn.Name())
						break
					}
				}
			case "strconv":
				if fn.Name() == "FormatFloat" || fn.Name() == "AppendFloat" {
					pass.Reportf(call.Pos(),
						"strconv.%s in a signature/cache-key path; spell floats with relation.SigNum",
						fn.Name())
				}
			}
			return true
		})
	})
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
