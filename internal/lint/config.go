package lint

import (
	"regexp"
	"strings"
)

// Config scopes the checks to the packages and functions they guard.
//
// Package patterns match in two ways: a pattern containing a '/' matches any
// import path that contains it as a substring (so "internal/category" covers
// both the real package and the fixture mirrors under
// internal/lint/testdata/src/internal/category), while a pattern without a
// '/' must equal the whole import path (so the module root "repro" does not
// swallow every subpackage). Function patterns are substrings of the
// fully-qualified "pkgpath.Func" (or "pkgpath.Type.Method") name.
type Config struct {
	// OptStructs names the caller-owned parameter struct types optmut
	// protects: by-value parameters of a matching type must not have their
	// slice/map fields mutated in place (PR1's removeAttr clobbered the
	// caller's Options.CandidateAttrs through exactly such a field).
	OptStructs *regexp.Regexp

	// FanoutPkgs are the packages whose goroutine fan-outs must poll
	// cancellation (ctxpoll); PollFuncs are the approved poll entry points
	// beyond the built-in ctx.Err()/ctx.Done()/faultinject.Inject forms.
	FanoutPkgs []string
	PollFuncs  []string

	// SigFuncs matches the names of functions that build signatures or cache
	// keys; inside them sigfloat bans fmt/strconv float formatting (PR3's
	// HiInc collision came from ad-hoc float spelling). SigNumFuncs are the
	// approved canonical formatters (relation.SigNum itself).
	SigFuncs    *regexp.Regexp
	SigNumFuncs []string

	// RecoverPkgs may contain bare recover() calls (the sanctioned panic
	// boundary); everywhere else recoverbound demands resilience.Protect.
	// BoundaryPkgs are the serving packages whose spawned goroutines must
	// pass through a boundary matching ProtectFuncs or a deferred recover.
	RecoverPkgs  []string
	BoundaryPkgs []string
	ProtectFuncs *regexp.Regexp

	// HotPkgs are the categorizer hot-path packages where hottime bans raw
	// clock reads (PR4: timer starvation made ad-hoc time handling a
	// correctness issue); HotApprovedFuncs are the sanctioned soft-budget
	// poll sites.
	HotPkgs          []string
	HotApprovedFuncs []string

	// WarmFuncs matches warm-path function names ("Func" or "Type.Method");
	// inside them warmguard bans direct field reads of the snapshot-owner
	// types in SnapshotTypes — the pre-warmer (PR7) rides behind the learn
	// stream's snapshot swaps, so it must take the current snapshot through
	// an atomic accessor (System/Snapshot), never through the owner's
	// fields. Methods declared on a snapshot type are exempt: they are the
	// accessors.
	WarmFuncs     *regexp.Regexp
	SnapshotTypes []string

	// SegPkgs are the packages allowed to write segment column pages in
	// place (internal/relation, whose extension paths write only into
	// unpublished spare capacity under the relation mutex). SegFields lists
	// the shared page-carrying fields ("Type.Field") segguard bans writing,
	// appending to, or copying into anywhere else — a sealed segment's
	// Codes/Dict backing is shared by every published column snapshot,
	// conjunct bitmap, and index built over it (PR8). Reads stay free.
	SegPkgs   []string
	SegFields []string

	// FsyncPkgs are the library packages whose file creation must go through
	// the durable store's write path (fsyncguard, PR9): a raw
	// os.Create/os.WriteFile/O_CREATE open there produces a persistent file
	// with no checksum frame, no fsync, and no rename protocol — invisible
	// until a crash tears it. FsyncAllowPkgs implement that write path and
	// are exempt; cmd/ tools and test files are outside FsyncPkgs entirely.
	FsyncPkgs      []string
	FsyncAllowPkgs []string

	// FrozenPkgs are the packages whose publish-then-freeze (COW/RCU)
	// discipline frozenguard enforces: any value that flows into a publish
	// sink — an atomic.Pointer Store/Swap/CompareAndSwap, or a registered
	// PublishSinks entry — is frozen at the publish site, and a later write
	// reachable through it (directly, or via a callee whose effect summary
	// mutates the argument) is flagged. PRs 2/6/8/9 each re-derived this rule
	// by hand for a different structure; one stale-write slip serves a
	// corrupted tree to every concurrent reader.
	FrozenPkgs []string

	// PublishSinks registers in-package publication functions beyond the
	// sync/atomic methods: a call whose qualified name contains Func hands
	// call argument Arg (0-based, receiver not counted) to concurrent
	// readers. The treecache insert and the durable manifest writer are the
	// repository's two non-atomic publication points.
	PublishSinks []PublishSink

	// NoCopyPkgs is the serving path for the copylocks-style nocopy check:
	// types carrying mutexes or atomics — and the reference-semantics types
	// listed in NoCopyTypes ("pkgpath.Type" substrings) — must not be passed
	// or returned by value there.
	NoCopyPkgs  []string
	NoCopyTypes []string
}

// PublishSink names one publication function for frozenguard: calls whose
// qualified name contains Func hand argument Arg (0-based, receiver not
// counted) to concurrent readers.
type PublishSink struct {
	Func string
	Arg  int
}

// DefaultConfig returns the repository's tuned configuration. The testdata
// fixture packages mirror the real layout under
// internal/lint/testdata/src/, so the same substring patterns scope both.
func DefaultConfig() *Config {
	return &Config{
		OptStructs: regexp.MustCompile(`(Options|Config|Policy)$`),

		FanoutPkgs: []string{"internal/category"},
		PollFuncs:  []string{"ctxExpired"},

		SigFuncs:    regexp.MustCompile(`(?i)(sig|key)`),
		SigNumFuncs: []string{"internal/relation.SigNum"},

		RecoverPkgs:  []string{"internal/resilience"},
		BoundaryPkgs: []string{"repro", "internal/server", "internal/treecache"},
		ProtectFuncs: regexp.MustCompile(`(?i)protect`),

		HotPkgs:          []string{"internal/category", "internal/relation"},
		HotApprovedFuncs: []string{"internal/category.ctxExpired"},

		WarmFuncs:     regexp.MustCompile(`(?i)warm`),
		SnapshotTypes: []string{"AdaptiveSystem"},

		SegPkgs:   []string{"internal/relation"},
		SegFields: []string{"CatColumn.Codes", "CatColumn.Dict"},

		FsyncPkgs: []string{
			"repro", "internal/relation", "internal/category", "internal/workload",
			"internal/treecache", "internal/server", "internal/sqlparse",
		},
		FsyncAllowPkgs: []string{"internal/relation/durable"},

		NoCopyPkgs: []string{
			"repro", "internal/server", "internal/treecache",
			"internal/resilience", "internal/relation", "internal/category",
		},
		NoCopyTypes: []string{"internal/relation.Bitmap"},

		FrozenPkgs: []string{
			"repro", "internal/relation", "internal/treecache",
			"internal/server", "internal/resilience",
		},
		PublishSinks: []PublishSink{
			{Func: "treecache.Cache.insertLocked", Arg: 2},
			{Func: "durable.Store.writeManifest", Arg: 1},
		},
	}
}

// matchPkg reports whether the import path matches any pattern under the
// Config matching rules.
func matchPkg(path string, pats []string) bool {
	for _, p := range pats {
		if strings.Contains(p, "/") {
			if strings.Contains(path, p) {
				return true
			}
		} else if path == p {
			return true
		}
	}
	return false
}

// matchFunc reports whether the fully-qualified function name matches any
// pattern (substring).
func matchFunc(qualified string, pats []string) bool {
	for _, p := range pats {
		if strings.Contains(qualified, p) {
			return true
		}
	}
	return false
}
