package lint

import (
	"go/ast"
)

// flow.go is the ordered traversal the two flow-sensitive checks (frozenguard,
// lockguard) share: statements are visited in execution order, branches fork a
// snapshot of the client's state and join afterwards, and a branch that
// provably leaves the function (return, branch statement, panic) is excluded
// from the join — which is exactly what makes the repository's dominant
// critical-section shape, "mu.Lock(); if fast { …; mu.Unlock(); return }; …",
// analyzable without a real CFG. Loop bodies are visited once with the
// loop-entry state and their effects are discarded at the back edge: a lock
// acquired (or a value published) inside an iteration is not assumed to hold
// after the loop, while everything established before the loop still covers
// the body. This is deliberately an approximation — source order stands in
// for execution order inside a single basic block, and gotos terminate their
// path — tuned so the checks stay precise on the shapes this tree actually
// contains (see DESIGN.md §16).
type flowOps struct {
	// visit receives each leaf node — an expression-bearing statement
	// (assignment, send, inc/dec, decl, return, go, defer, expression
	// statement) or a bare condition/tag expression — in execution order.
	// The client inspects it and mutates its own state; nested *ast.FuncLit
	// bodies are the client's to schedule (inline, forked, or fresh-state).
	visit func(n ast.Node)
	// snap / restore / merge manage the client state around branches. merge
	// receives the exit states of every branch that can fall through (at
	// least one) and must install their join as the current state.
	snap    func() any
	restore func(any)
	merge   func(outs []any)
	// isPanic reports whether the call expression is a path terminator
	// (builtin panic); supplied by the client so flow.go stays types-free.
	isPanic func(call *ast.CallExpr) bool
}

// flowWalk traverses body in execution order under ops.
func flowWalk(body *ast.BlockStmt, ops *flowOps) {
	w := &flowWalker{ops: ops}
	w.stmts(body.List)
}

type flowWalker struct {
	ops *flowOps
}

// stmts walks a statement sequence, reporting whether the path terminated
// (every successor statement is unreachable).
func (w *flowWalker) stmts(list []ast.Stmt) bool {
	for _, s := range list {
		if w.stmt(s) {
			return true
		}
	}
	return false
}

func (w *flowWalker) stmt(s ast.Stmt) (terminated bool) {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		return w.stmts(s.List)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt)
	case *ast.ExprStmt:
		w.ops.visit(s.X)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && w.ops.isPanic(call) {
			return true
		}
		return false
	case *ast.ReturnStmt:
		w.ops.visit(s)
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave the current path. Fallthrough does not.
		return s.Tok.String() != "fallthrough"
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.ops.visit(s.Cond)
		pre := w.ops.snap()
		var outs []any
		if !w.stmt(s.Body) {
			outs = append(outs, w.ops.snap())
		}
		w.ops.restore(pre)
		if s.Else != nil {
			if !w.stmt(s.Else) {
				outs = append(outs, w.ops.snap())
			}
			w.ops.restore(pre)
		} else {
			outs = append(outs, pre) // fall through around the if
		}
		if len(outs) == 0 {
			return true
		}
		w.ops.merge(outs)
		return false
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.ops.visit(s.Cond)
		}
		pre := w.ops.snap()
		w.stmt(s.Body)
		if s.Post != nil {
			w.stmt(s.Post)
		}
		w.ops.restore(pre) // loop-body effects don't survive the back edge
		return false
	case *ast.RangeStmt:
		w.ops.visit(s.X)
		pre := w.ops.snap()
		w.stmt(s.Body)
		w.ops.restore(pre)
		return false
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.ops.visit(s.Tag)
		}
		return w.clauses(s.Body.List)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.stmt(s.Assign)
		return w.clauses(s.Body.List)
	case *ast.SelectStmt:
		return w.clauses(s.Body.List)
	default:
		// AssignStmt, IncDecStmt, SendStmt, DeclStmt, GoStmt, DeferStmt,
		// EmptyStmt — leaves the client inspects whole.
		w.ops.visit(s)
		return false
	}
}

// clauses walks the case/comm clauses of a switch or select: each clause runs
// from the pre-switch state, and the states of every clause that can fall out
// join afterwards. Without a default the zero-clause path falls through too.
func (w *flowWalker) clauses(list []ast.Stmt) bool {
	pre := w.ops.snap()
	hasDefault := false
	var outs []any
	for _, cs := range list {
		w.ops.restore(pre)
		var body []ast.Stmt
		switch cs := cs.(type) {
		case *ast.CaseClause:
			if cs.List == nil {
				hasDefault = true
			}
			for _, e := range cs.List {
				w.ops.visit(e)
			}
			body = cs.Body
		case *ast.CommClause:
			if cs.Comm == nil {
				hasDefault = true
			} else {
				w.stmt(cs.Comm)
			}
			body = cs.Body
		default:
			continue
		}
		if !w.stmts(body) {
			outs = append(outs, w.ops.snap())
		}
	}
	w.ops.restore(pre)
	if !hasDefault {
		outs = append(outs, pre)
	}
	if len(outs) == 0 {
		return true
	}
	w.ops.merge(outs)
	return false
}
