package lint

import (
	"go/ast"
	"go/types"
)

// checkSnapshotGuard guards the snapshot-swap concurrency model (PR2):
// fields of sync/atomic types — AdaptiveSystem's atomic.Pointer[System]
// snapshot above all — are only sound when every access goes through their
// methods (Load/Store/Add/CompareAndSwap). Copying such a field, assigning
// to it, or smuggling its address out of a method call defeats the
// atomicity the snapshot design depends on, and a copied atomic silently
// forks the counter. The check flags any use of an atomic-typed field that
// is not the receiver of a method call.
var checkSnapshotGuard = &Check{
	Name: "snapshotguard",
	Doc:  "sync/atomic-typed fields accessed only through their methods (no copy, assignment, or address escape)",
	Run:  runSnapshotGuard,
}

func runSnapshotGuard(pass *Pass) {
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch n := n.(type) {
			case *ast.SelectorExpr:
				sel, ok := pass.Info.Selections[n]
				if !ok || sel.Kind() != types.FieldVal || !isAtomicType(sel.Obj().Type()) {
					return true
				}
				if !atomicUseOK(stack) {
					pass.Reportf(n.Pos(),
						"atomic field %s used outside a method call; go through Load/Store/Add (copying or reassigning an atomic forks its state)",
						n.Sel.Name)
				}
			case *ast.CompositeLit:
				// Struct literals must not seed atomic fields with copied
				// values: {cur: other.cur} copies the atomic.
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					if v, ok := pass.Info.Uses[key].(*types.Var); ok && v.IsField() && isAtomicType(v.Type()) {
						pass.Reportf(kv.Pos(), "composite literal initializes atomic field %s by value; zero-init and Store instead", key.Name)
					}
				}
			}
			return true
		})
	}
}

// atomicUseOK reports whether the innermost selector on the stack (the
// atomic field access) is exactly the receiver of a method call:
// field.Method(...), i.e. CallExpr{Fun: SelectorExpr{X: field}}.
func atomicUseOK(stack []ast.Node) bool {
	if len(stack) < 3 {
		return false
	}
	field := stack[len(stack)-1]
	method, ok := stack[len(stack)-2].(*ast.SelectorExpr)
	if !ok || method.X != field {
		return false
	}
	call, ok := stack[len(stack)-3].(*ast.CallExpr)
	return ok && call.Fun == method
}

// isAtomicType reports whether t is a named type from sync/atomic
// (atomic.Pointer[T], atomic.Int64, atomic.Value, ...).
func isAtomicType(t types.Type) bool {
	pkg, _, ok := namedFrom(t)
	return ok && pkg == "sync/atomic"
}
